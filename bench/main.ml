(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus ablations and Bechamel micro-benchmarks of
   the compiler passes themselves.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table1  -- one experiment
     dune exec bench/main.exe -- table2 table3 figure7 ablation speed

   Absolute numbers come from our TRIPS timing model, not the authors'
   simulator; EXPERIMENTS.md records the shape comparison. *)

open Trips_workloads
open Trips_harness

let section title =
  Fmt.pr "@.==================== %s ====================@." title

(* BENCH_*.json land in the repo root by default; `make bench-diff`
   points TRIPS_BENCH_DIR elsewhere so a fresh run never clobbers the
   committed baselines it is being compared against. *)
let bench_out name =
  match Sys.getenv_opt "TRIPS_BENCH_DIR" with
  | Some d when d <> "" -> Filename.concat d name
  | _ -> name

(* Table 1 rows are reused by Figure 7, so compute them once. *)
let table1_rows = lazy (Table1.run ())

let run_table1 () =
  section "Table 1 — phase orderings (cycle counts, microbenchmarks)";
  Table1.render Fmt.stdout (Lazy.force table1_rows)

let run_table2 () =
  section "Table 2 — block-selection heuristics (cycle counts)";
  Table2.render Fmt.stdout (Table2.run ())

let run_table3 () =
  section "Table 3 — SPEC-like block counts (functional simulation)";
  Table3.render Fmt.stdout (Table3.run ())

let run_figure7 () =
  section "Figure 7 — cycle reduction vs block count reduction";
  Figure7.render Fmt.stdout (Lazy.force table1_rows)

(* Ablations on the design knobs DESIGN.md calls out: head duplication,
   iterative optimization, and the tail-duplication size cap. *)
let run_ablation () =
  section "Ablation — formation design knobs ((IUPO) policy variants)";
  let base = Chf.Policy.edge_default in
  let variants =
    [
      ("baseline (IUPO)", base);
      ("no head duplication", { base with Chf.Policy.enable_head_dup = false });
      ("no tail duplication", { base with Chf.Policy.enable_tail_dup = false });
      ("no iterative opt", { base with Chf.Policy.iterate_opt = false });
      ( "block splitting (§9)",
        { base with Chf.Policy.enable_block_splitting = true } );
      ("tail-dup cap 8", { base with Chf.Policy.max_tail_dup_instrs = 8 });
      ("tail-dup cap 128", { base with Chf.Policy.max_tail_dup_instrs = 128 });
      ("no slack", { base with Chf.Policy.slack = 0 });
      ("slack 32", { base with Chf.Policy.slack = 32 });
    ]
  in
  let kernels =
    List.filter_map Micro.by_name
      [ "ammp_1"; "bzip2_3"; "gzip_1"; "matrix_1"; "sieve"; "parser_1" ]
  in
  (* drive Formation.run directly so every knob is honored verbatim (the
     phase orderings deliberately override head-dup/iterate-opt) *)
  let compile_with config w =
    let profile, _ = Pipeline.profile_workload w in
    let cfg, registers = Pipeline.lower_workload w in
    Trips_opt.Optimizer.optimize_cfg cfg;
    ignore (Chf.Formation.run config cfg profile);
    Trips_opt.Optimizer.optimize_cfg cfg;
    let report = Trips_regalloc.Backend.run cfg in
    let registers =
      List.map
        (fun (r, v) ->
          (Trips_ir.IntMap.find_or ~default:r r
             report.Trips_regalloc.Backend.mapping, v))
        registers
    in
    (cfg, registers)
  in
  Fmt.pr "%-22s" "variant";
  List.iter (fun w -> Fmt.pr " | %-9s" w.Workload.name) kernels;
  Fmt.pr " | avg@.";
  List.iter
    (fun (label, config) ->
      Fmt.pr "%-22s" label;
      let improvements =
        List.map
          (fun w ->
            let bb = Pipeline.compile ~backend:true Chf.Phases.Basic_blocks w in
            let bb_run = Pipeline.run_cycles bb in
            let baseline = Pipeline.run_functional bb in
            let cfg, registers = compile_with config w in
            let memory = Workload.memory w in
            let r = Trips_sim.Cycle_sim.run ~registers ~memory cfg in
            if r.Trips_sim.Cycle_sim.checksum <> baseline.Trips_sim.Func_sim.checksum
            then Fmt.failwith "ablation miscompiled %s" w.Workload.name;
            let imp =
              Stats.percent_improvement ~base:bb_run.Trips_sim.Cycle_sim.cycles
                ~v:r.Trips_sim.Cycle_sim.cycles
            in
            Fmt.pr " | %9.1f" imp;
            imp)
          kernels
      in
      Fmt.pr " | %5.1f@." (Stats.mean improvements))
    variants

(* Placement-quality sensitivity: how much of each configuration's win
   survives an unoptimized (round-robin) SPDI placement. *)
let run_placement () =
  section "Placement — optimized (flat-hop) vs round-robin SPDI placement";
  let kernels =
    List.filter_map Micro.by_name [ "gzip_1"; "matrix_1"; "vadd"; "parser_1" ]
  in
  Fmt.pr "%-14s | %-28s | %-28s@." "benchmark" "optimized placement (IUPO)%"
    "round-robin placement (IUPO)%";
  List.iter
    (fun w ->
      let bb = Pipeline.compile ~backend:true Chf.Phases.Basic_blocks w in
      let c = Pipeline.compile ~backend:true Chf.Phases.Iupo_merged w in
      let measure timing =
        let base = Pipeline.run_cycles ?timing bb in
        let r = Pipeline.run_cycles ?timing c in
        Stats.percent_improvement ~base:base.Trips_sim.Cycle_sim.cycles
          ~v:r.Trips_sim.Cycle_sim.cycles
      in
      let flat = measure None in
      let spatial =
        measure
          (Some
             {
               Trips_sim.Cycle_sim.default_timing with
               Trips_sim.Cycle_sim.spatial_grid = 4;
             })
      in
      Fmt.pr "%-14s | %28.1f | %28.1f@." w.Workload.name flat spatial)
    kernels

(* Bechamel micro-benchmarks of the compiler passes themselves: how long
   formation takes per configuration on a representative kernel. *)
let run_speed () =
  section "Speed — Bechamel timing of the formation passes";
  let kernel = Option.get (Micro.by_name "sieve") in
  let profile, _ = Pipeline.profile_workload kernel in
  let bench_of_ordering ordering =
    Bechamel.Test.make
      ~name:(Chf.Phases.name ordering)
      (Bechamel.Staged.stage (fun () ->
           let cfg, _ = Pipeline.lower_workload kernel in
           ignore (Chf.Phases.apply ordering cfg profile)))
  in
  let test =
    Bechamel.Test.make_grouped ~name:"phases"
      (List.map bench_of_ordering Chf.Phases.all)
  in
  let benchmark () =
    let open Bechamel in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    Benchmark.all cfg instances test
  in
  let raw = benchmark () in
  (* report per-run medians directly from the raw measurements *)
  Hashtbl.fold (fun name (b : Bechamel.Benchmark.t) acc ->
      (name, b.Bechamel.Benchmark.lr) :: acc)
    raw []
  |> List.sort compare
  |> List.iter (fun (name, measurements) ->
         let times =
           Array.to_list measurements
           |> List.map (fun mr ->
                  Bechamel.Measurement_raw.get ~label:"monotonic-clock" mr
                  /. Float.max 1.0 (Bechamel.Measurement_raw.run mr))
         in
         match List.sort compare times with
         | [] -> ()
         | sorted ->
           let median = List.nth sorted (List.length sorted / 2) in
           Fmt.pr "%-24s %10.1f us/run (%d samples)@." name (median /. 1e3)
             (List.length sorted))

(* Cost of the robustness machinery: structural checking of a formed CFG
   and the full per-phase differential verifier, against plain
   compilation of the same kernel. *)
let run_verify () =
  section "Verify — cost of structural and per-phase differential checks";
  let kernel = Option.get (Micro.by_name "sieve") in
  let profile, _ = Pipeline.profile_workload kernel in
  let formed =
    let cfg, _ = Pipeline.lower_workload kernel in
    ignore (Chf.Phases.apply Chf.Phases.Iupo_merged cfg profile);
    cfg
  in
  let tests =
    [
      Bechamel.Test.make ~name:"structural check"
        (Bechamel.Staged.stage (fun () ->
             ignore (Trips_verify.Cfg_verify.check ~allow_unreachable:true formed)));
      Bechamel.Test.make ~name:"compile plain"
        (Bechamel.Staged.stage (fun () ->
             let cfg, _ = Pipeline.lower_workload kernel in
             ignore (Chf.Phases.apply Chf.Phases.Iupo_merged cfg profile)));
      Bechamel.Test.make ~name:"compile + per-phase diff"
        (Bechamel.Staged.stage (fun () ->
             let cfg, registers = Pipeline.lower_workload kernel in
             match
               Trips_verify.Diff_check.run ~registers
                 ~fresh_memory:(fun () -> Workload.memory kernel)
                 Chf.Phases.Iupo_merged cfg profile
             with
             | Ok _ -> ()
             | Error f ->
               Fmt.failwith "diff check failed: %a"
                 Trips_verify.Diff_check.pp_failure f));
    ]
  in
  let test = Bechamel.Test.make_grouped ~name:"verify" tests in
  let raw =
    let open Bechamel in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    Benchmark.all cfg instances test
  in
  Hashtbl.fold (fun name (b : Bechamel.Benchmark.t) acc ->
      (name, b.Bechamel.Benchmark.lr) :: acc)
    raw []
  |> List.sort compare
  |> List.iter (fun (name, measurements) ->
         let times =
           Array.to_list measurements
           |> List.map (fun mr ->
                  Bechamel.Measurement_raw.get ~label:"monotonic-clock" mr
                  /. Float.max 1.0 (Bechamel.Measurement_raw.run mr))
         in
         match List.sort compare times with
         | [] -> ()
         | sorted ->
           let median = List.nth sorted (List.length sorted / 2) in
           Fmt.pr "%-24s %10.1f us/run (%d samples)@." name (median /. 1e3)
             (List.length sorted))

(* Full-sweep benchmark of the staged engine itself: every table and
   figure under three configurations — sequential with every cache off,
   sequential with caches on, and the domain pool with caches on.  The
   rendered outputs must agree byte-for-byte (determinism is part of the
   contract); wall clocks, per-stage timings and cache counters go to
   BENCH_sweep.json. *)
let run_sweep () =
  section "Sweep — staged engine: caching and domain-pool scaling";
  let render_all ~cache ~jobs =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    let t1 = Table1.run ~cache ~jobs () in
    Table1.render fmt t1;
    Figure7.render fmt t1;
    Table2.render fmt (Table2.run ~cache ~jobs ());
    Table3.render fmt (Table3.run ~cache ~jobs ());
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  let measure ~name ~jobs ~cached ~memo =
    (* the gen/kill memo is process-global (formation reads the
       environment), so toggle it around the run *)
    Unix.putenv "TRIPS_NO_LIVENESS_MEMO" (if memo then "" else "1");
    let cache = if cached then Stage.create () else Stage.disabled () in
    Stage.reset_timings ();
    let t0 = Unix.gettimeofday () in
    let output = render_all ~cache ~jobs in
    let wall = Unix.gettimeofday () -. t0 in
    Unix.putenv "TRIPS_NO_LIVENESS_MEMO" "";
    let stats = Stage.stats cache in
    Fmt.pr "%-28s %6.1fs  (%a; cache %d/%d hits)@." name wall Stage.pp_timings
      (Stage.timings ()) stats.Stage.cache_hits
      (stats.Stage.cache_hits + stats.Stage.cache_misses);
    (name, jobs, cached, wall, Stage.timings (), stats, output)
  in
  (* runtime-measured, so the committed JSON says what this machine
     actually had, not what the branch hoped for *)
  let cores = Engine.default_jobs () in
  Fmt.pr "cores: %d@." cores;
  let baseline = measure ~name:"sequential, caches off" ~jobs:1 ~cached:false ~memo:false in
  let seq = measure ~name:"sequential, caches on" ~jobs:1 ~cached:true ~memo:true in
  let par_j2 = measure ~name:"parallel -j2, caches on" ~jobs:2 ~cached:true ~memo:true in
  let par_j4 = measure ~name:"parallel -j4, caches on" ~jobs:4 ~cached:true ~memo:true in
  let par =
    measure
      ~name:(Fmt.str "parallel -j%d, caches on" cores)
      ~jobs:cores ~cached:true ~memo:true
  in
  let configs = [ baseline; seq; par_j2; par_j4; par ] in
  let output_of (_, _, _, _, _, _, o) = o in
  let wall_of (_, _, _, w, _, _, _) = w in
  let identical =
    List.for_all (fun c -> output_of c = output_of baseline) configs
  in
  if not identical then
    Fmt.epr "bench: WARNING: sweep outputs differ across configurations@.";
  Fmt.pr "identical outputs: %b@." identical;
  Fmt.pr "speedup (caching): %.2fx, (caching + domains): %.2fx@."
    (wall_of baseline /. wall_of seq)
    (wall_of baseline /. wall_of par);
  let json =
    let config (name, jobs, cached, wall, (t : Stage.timings), (s : Stage.cache_stats), _) =
      Fmt.str
        "    { \"name\": %S, \"jobs\": %d, \"caches\": %b, \"wall_s\": %.3f,@\n\
        \      \"stages_s\": { \"lower\": %.3f, \"profile\": %.3f, \
         \"formation\": %.3f, \"backend\": %.3f, \"sim\": %.3f },@\n\
        \      \"cache_hits\": %d, \"cache_misses\": %d, \"hit_rate\": %.3f }"
        name jobs cached wall t.Stage.lower_s t.Stage.profile_s
        t.Stage.formation_s t.Stage.backend_s t.Stage.sim_s s.Stage.cache_hits
        s.Stage.cache_misses (Stage.hit_rate s)
    in
    Fmt.str
      "{@\n\
      \  \"cores\": %d,@\n\
      \  \"identical_outputs\": %b,@\n\
      \  \"speedup_caching\": %.3f,@\n\
      \  \"speedup_total\": %.3f,@\n\
      \  \"configs\": [@\n%s@\n  ]@\n}@\n"
      cores identical
      (wall_of baseline /. wall_of seq)
      (wall_of baseline /. wall_of par)
      (String.concat ",\n" (List.map config configs))
  in
  let path = bench_out "BENCH_sweep.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." path

(* Formation fast paths: constraint pre-filter, incremental liveness,
   loop-forest reuse and the indexed candidate pool, each behind its own
   TRIPS_NO_* escape hatch (DESIGN.md §12).  Every table is recompiled
   sequentially with stage caching off so formation really runs for each
   cell; the formation-stage timer isolates the win from the (unchanged)
   lowering/backend/simulation stages.  All configurations must render
   byte-identical outputs — the fast paths are pure strength reductions —
   and wall clocks, per-piece attribution and fast-path hit counters go
   to BENCH_formation.json. *)
let run_formation () =
  section "Formation — fast-path attribution (legacy path vs pre-filter, \
           incremental liveness, loop reuse, indexed pool)";
  let hatches =
    [
      "TRIPS_NO_PREFILTER";
      "TRIPS_NO_INCR_LIVENESS";
      "TRIPS_NO_LOOP_REUSE";
      "TRIPS_NO_CAND_POOL";
      "TRIPS_NO_TRIAL_CACHE";
      "TRIPS_NO_SPEC_TRIALS";
    ]
  in
  (* the store-dense kernels join the 24-kernel set here: their unrolled
     merge estimates blow the 32-slot store budget, which is the regime
     the constraint pre-filter fires in (the paper set's size rejects are
     all instruction-budget driven, so prefilter_hits would read 0) *)
  let micro = Micro.all @ Micro.store_dense in
  let render_all () =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    let cache = Stage.disabled () and jobs = 1 in
    Table1.render fmt (Table1.run ~cache ~jobs ~workloads:micro ());
    Table2.render fmt (Table2.run ~cache ~jobs ~workloads:micro ());
    Table3.render fmt (Table3.run ~cache ~jobs ());
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  (* [on] lists the hatch variables whose fast path stays enabled; the
     rest are set non-empty, which disables them.  [spec] installs a
     resident pool (jobs - 1 workers; the formation loop is the +1) and
     the speculation scheduler for the duration of the run. *)
  let measure ?spec ~name ~on () =
    List.iter
      (fun h -> Unix.putenv h (if List.mem h on then "" else "1"))
      hatches;
    let pool =
      match spec with
      | None -> None
      | Some (jobs, k) ->
        let p = Engine.Pool.create ~workers:(max 0 (jobs - 1)) () in
        Chf.Formation.set_spec_trials k;
        Chf.Formation.set_scheduler (Some (Engine.formation_scheduler p));
        Some p
    in
    Trips_obs.Metrics.reset ();
    Stage.reset_timings ();
    let t0 = Unix.gettimeofday () in
    let output = render_all () in
    let wall = Unix.gettimeofday () -. t0 in
    (match pool with
    | None -> ()
    | Some p ->
      Chf.Formation.set_scheduler None;
      Engine.Pool.shutdown p);
    let formation_s = (Stage.timings ()).Stage.formation_s in
    let snap = Trips_obs.Metrics.snapshot () in
    let counter = Trips_obs.Metrics.counter_value snap in
    let prefilter = counter "formation.prefilter.hits" in
    let incr_live = counter "formation.liveness.incremental" in
    let loops = counter "formation.loops.reuse" in
    let trials =
      ( counter "formation.trials.speculative",
        counter "formation.trials.cached",
        counter "formation.trials.wasted" )
    in
    List.iter (fun h -> Unix.putenv h "") hatches;
    let spec_n, cached_n, wasted_n = trials in
    Fmt.pr
      "%-28s %6.2fs wall  %6.2fs formation  (prefilter %d, incr-live %d, \
       loop-reuse %d, trials %d/%d/%d spec/cached/wasted)@."
      name wall formation_s prefilter incr_live loops spec_n cached_n wasted_n;
    (name, wall, formation_s, (prefilter, incr_live, loops), trials, output)
  in
  let baseline = measure ~name:"fast paths off (legacy)" ~on:[] () in
  let only_pf =
    measure ~name:"pre-filter only" ~on:[ "TRIPS_NO_PREFILTER" ] ()
  in
  let only_il =
    measure ~name:"incremental liveness only" ~on:[ "TRIPS_NO_INCR_LIVENESS" ]
      ()
  in
  let only_lr =
    measure ~name:"loop-forest reuse only" ~on:[ "TRIPS_NO_LOOP_REUSE" ] ()
  in
  let only_cp =
    measure ~name:"indexed pool only" ~on:[ "TRIPS_NO_CAND_POOL" ] ()
  in
  let fast = measure ~name:"all fast paths (default)" ~on:hatches () in
  (* jobs counts working domains: the pool gets jobs - 1 and the
     formation loop helps at join.  All outputs must still be
     byte-identical — speculation only moves work, never changes it. *)
  let spec_j1 =
    measure ~name:"speculative -j1 (K=4)" ~on:hatches ~spec:(1, 4) ()
  in
  let spec_j2 =
    measure ~name:"speculative -j2 (K=4)" ~on:hatches ~spec:(2, 4) ()
  in
  let spec_j4 =
    measure ~name:"speculative -j4 (K=4)" ~on:hatches ~spec:(4, 4) ()
  in
  let configs =
    [
      baseline; only_pf; only_il; only_lr; only_cp; fast; spec_j1; spec_j2;
      spec_j4;
    ]
  in
  let output_of (_, _, _, _, _, o) = o in
  let formation_of (_, _, f, _, _, _) = f in
  let wall_of (_, w, _, _, _, _) = w in
  let identical =
    List.for_all (fun c -> output_of c = output_of baseline) configs
  in
  if not identical then
    Fmt.epr "bench: WARNING: formation outputs differ across fast paths@.";
  let speedup = formation_of baseline /. formation_of fast in
  let spec_speedup_j4 = formation_of fast /. formation_of spec_j4 in
  Fmt.pr "identical outputs: %b@." identical;
  Fmt.pr "formation-stage speedup: %.2fx  (wall: %.2fx)@." speedup
    (wall_of baseline /. wall_of fast);
  Fmt.pr "speculation -j4 vs sequential fast: %.2fx (on %d core(s))@."
    spec_speedup_j4 (Engine.default_jobs ());
  let attribution c = formation_of baseline -. formation_of c in
  let json =
    let config (name, wall, formation_s, (pf, il, lr), (sp, ca, wa), _) =
      Fmt.str
        "    { \"name\": %S, \"wall_s\": %.3f, \"formation_s\": %.3f,@\n\
        \      \"counters\": { \"prefilter_hits\": %d, \
         \"liveness_incremental\": %d, \"loops_reuse\": %d, \
         \"trials_speculative\": %d, \"trials_cached\": %d, \
         \"trials_wasted\": %d } }"
        name wall formation_s pf il lr sp ca wa
    in
    Fmt.str
      "{@\n\
      \  \"cores\": %d,@\n\
      \  \"identical_outputs\": %b,@\n\
      \  \"formation_speedup\": %.3f,@\n\
      \  \"wall_speedup\": %.3f,@\n\
      \  \"spec_speedup_j4\": %.3f,@\n\
      \  \"attribution_s\": { \"prefilter\": %.3f, \"incr_liveness\": %.3f, \
       \"loop_reuse\": %.3f, \"cand_pool\": %.3f },@\n\
      \  \"configs\": [@\n\
       %s@\n\
      \  ]@\n\
       }@\n"
      (Engine.default_jobs ()) identical speedup
      (wall_of baseline /. wall_of fast)
      spec_speedup_j4 (attribution only_pf) (attribution only_il)
      (attribution only_lr) (attribution only_cp)
      (String.concat ",\n" (List.map config configs))
  in
  let path = bench_out "BENCH_formation.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." path

(* The resident service under concurrent load: an in-process daemon on a
   real Unix socket, hammered by client threads replaying a repeated-
   source workload.  Warmup requests populate the shared stores first
   (standard steady-state discipline: measure the service, not its cold
   start), then every measured latency goes through both a Welford
   running stat and the Metrics histogram (nearest-rank p50/p90/p99).
   An overload burst past the admission bound and a past-deadline
   request exercise the shed and timeout paths so BENCH_serve.json
   records nonzero structured-degradation counters, and one served
   compile is byte-compared against the one-shot pipeline. *)
let run_serve () =
  section "Serve — resident compile service under concurrent load";
  let module C = Trips_serve.Client in
  let module P = Trips_serve.Protocol in
  let module S = Trips_serve.Server in
  Trips_obs.Metrics.reset ();
  let socket =
    Filename.concat (Filename.get_temp_dir_name ()) "chfc-bench-serve.sock"
  in
  let workers = min 4 (Engine.default_jobs ()) in
  let queue_depth = 6 in
  (* SLO sentinel armed: a latency bound far above any real machine (the
     code path runs without flipping on p99) and an error-rate bound the
     chaos/overload burst must trip — the bench asserts the Degraded bit
     and the breach counter afterwards. *)
  (* the burst contributes ~17 errors against ~320 requests total, a
     rate just over 5%; 2% keeps the flip robust without firing on the
     healthy measured phase (whose one timeout stays under 0.4%) *)
  let srv =
    S.start ~workers ~queue_depth ~slo_p99_s:3600.0 ~slo_error_rate:0.02
      ~quiet:true ~socket ()
  in
  let names = [| "sieve"; "matrix_1"; "gzip_1"; "vadd" |] in
  let compile ?deadline ?chaos name =
    P.Compile
      {
        P.cs_workload = name;
        cs_ordering = "iupo-merged";
        cs_policy = "bf";
        cs_backend = true;
        cs_verify = false;
        cs_deadline_s = deadline;
        cs_chaos_seed = chaos;
      }
  in
  (* warmup: populate the prefix and output stores for each source *)
  Array.iter
    (fun n -> ignore (C.with_conn ~socket (fun c -> C.rpc c (compile n))))
    names;
  (* measured phase: [clients] threads, persistent connections, every
     request drawn round-robin from the repeated-source pool *)
  let clients = queue_depth in
  let per_client = 50 in
  let latencies = Array.make clients [] in
  let failures = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun tid ->
        Thread.create
          (fun () ->
            C.with_conn ~socket (fun conn ->
                for i = 0 to per_client - 1 do
                  let name = names.(((tid * per_client) + i) mod Array.length names) in
                  let r0 = Unix.gettimeofday () in
                  (match C.rpc conn (compile name) with
                  | Ok _ -> ()
                  | Error _ -> Atomic.incr failures);
                  let dt = Unix.gettimeofday () -. r0 in
                  latencies.(tid) <- dt :: latencies.(tid)
                done))
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let requests = clients * per_client in
  (* merge per-thread samples on the main thread: Welford running stat
     plus the histogram that supplies nearest-rank quantiles *)
  let n = ref 0 and mean = ref 0.0 and m2 = ref 0.0 in
  let mn = ref infinity and mx = ref neg_infinity in
  Array.iter
    (List.iter (fun x ->
         incr n;
         let d = x -. !mean in
         mean := !mean +. (d /. float_of_int !n);
         m2 := !m2 +. (d *. (x -. !mean));
         if x < !mn then mn := x;
         if x > !mx then mx := x;
         Trips_obs.Metrics.observe "serve.request_s" x))
    latencies;
  let stddev =
    if !n > 1 then sqrt (!m2 /. float_of_int (!n - 1)) else 0.0
  in
  let hist =
    List.assoc "serve.request_s" (Trips_obs.Metrics.snapshot ()).Trips_obs.Metrics.histograms
  in
  (* a past-deadline request on a source the stores have not seen: the
     cooperative watchdog must trip inside the pipeline *)
  let timed_out_ok =
    match
      C.with_conn ~socket (fun c ->
          C.rpc c (compile ~deadline:1e-6 "bzip2_3"))
    with
    | Error (P.Timed_out _) -> true
    | Ok _ | Error _ -> false
  in
  (* overload burst: more simultaneous uncacheable (chaos-poisoned)
     requests than the admission bound — the excess must shed *)
  let burst = 16 in
  let shed_replies = Atomic.make 0 in
  let burst_threads =
    List.init burst (fun tid ->
        Thread.create
          (fun () ->
            match
              C.with_conn ~socket (fun c ->
                  C.rpc c (compile ~chaos:(tid + 1) "sieve"))
            with
            | Error (P.Overloaded _) -> Atomic.incr shed_replies
            | Ok _ | Error _ -> ())
          ())
  in
  List.iter Thread.join burst_threads;
  (* served output vs the one-shot pipeline, same bytes required *)
  let served_identical =
    let served =
      C.with_conn ~socket (fun c -> C.rpc c (compile "sieve"))
    in
    let oneshot =
      match Micro.by_name "sieve" with
      | None -> Error "no sieve"
      | Some w ->
        Result.map snd
          (Trips_serve.Worker.compile_report ~ordering:Chf.Phases.Iupo_merged
             ~config:Chf.Policy.edge_default ~backend:true ~verify:false w)
    in
    match (served, oneshot) with
    | Ok a, Ok b -> a = b
    | _ -> false
  in
  let stats = C.with_conn ~socket (fun c -> C.rpc c P.Stats) in
  C.with_conn ~socket (fun c -> C.rpc c P.Shutdown);
  S.wait srv;
  let throughput = float_of_int requests /. wall in
  (* rolling-window latency breakdown (queue wait vs execute vs render)
     and the SLO sentinel's verdict after the burst *)
  let module W = Trips_obs.Telemetry.Window in
  let wq name =
    match W.quantiles stats.P.st_window name with
    | Some q -> (q.W.q_p50, q.W.q_p99)
    | None -> (0.0, 0.0)
  in
  let qw50, qw99 = wq "serve.queue_wait_s" in
  let ex50, ex99 = wq "serve.execute_s" in
  let rd50, rd99 = wq "span.render_s" in
  let _, lat99 = wq "serve.latency_s" in
  let degraded = stats.P.st_degraded in
  let breaches =
    Trips_obs.Metrics.counter_value
      (Trips_obs.Metrics.snapshot ())
      "serve.slo.breach"
  in
  if not degraded then
    Fmt.epr
      "bench: WARNING: SLO sentinel did not flip degraded after the burst@.";
  let store name =
    List.find (fun s -> s.P.sc_name = name) stats.P.st_stores
  in
  let prefix = store "serve.prefix" and output = store "serve.output" in
  let rate s =
    let total = s.P.sc_hits + s.P.sc_misses in
    if total = 0 then 0.0 else float_of_int s.P.sc_hits /. float_of_int total
  in
  Fmt.pr "requests: %d over %d client(s), %d worker domain(s), depth %d@."
    requests clients workers queue_depth;
  Fmt.pr "wall %.2fs, throughput %.0f req/s, failures %d@." wall throughput
    (Atomic.get failures);
  Fmt.pr "latency: mean %.4fs (stddev %.4f), p50 %.4fs, p90 %.4fs, p99 %.4fs@."
    !mean stddev hist.Trips_obs.Metrics.h_p50 hist.Trips_obs.Metrics.h_p90
    hist.Trips_obs.Metrics.h_p99;
  Fmt.pr "stores: prefix %.0f%% hits, output %.0f%% hits@."
    (100.0 *. rate prefix) (100.0 *. rate output);
  Fmt.pr "shed %d (replies %d), timed out %d, crashed %d, deadline trip: %b, \
          served output identical: %b@."
    stats.P.st_shed (Atomic.get shed_replies) stats.P.st_timed_out
    stats.P.st_crashed timed_out_ok served_identical;
  Fmt.pr
    "window: queue-wait p50 %.4fs p99 %.4fs, execute p50 %.4fs p99 %.4fs, \
     render p50 %.4fs p99 %.4fs@."
    qw50 qw99 ex50 ex99 rd50 rd99;
  Fmt.pr "slo: degraded %b after the burst, %d breach(es) recorded@." degraded
    breaches;
  let json =
    Fmt.str
      "{@\n\
      \  \"requests\": %d,@\n\
      \  \"clients\": %d,@\n\
      \  \"workers\": %d,@\n\
      \  \"queue_depth\": %d,@\n\
      \  \"wall_s\": %.3f,@\n\
      \  \"throughput_rps\": %.1f,@\n\
      \  \"latency\": { \"mean_s\": %.6f, \"stddev_s\": %.6f, \"min_s\": \
       %.6f, \"max_s\": %.6f, \"p50_s\": %.6f, \"p90_s\": %.6f, \"p99_s\": \
       %.6f },@\n\
      \  \"prefix_store\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f \
       },@\n\
      \  \"output_store\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f \
       },@\n\
      \  \"shed\": %d,@\n\
      \  \"timed_out\": %d,@\n\
      \  \"crashed\": %d,@\n\
      \  \"deadline_trips\": %b,@\n\
      \  \"served_identical\": %b,@\n\
      \  \"window\": { \"queue_wait_p50_s\": %.6f, \"queue_wait_p99_s\": \
       %.6f, \"execute_p50_s\": %.6f, \"execute_p99_s\": %.6f, \
       \"render_p50_s\": %.6f, \"render_p99_s\": %.6f, \
       \"window_latency_p99_s\": %.6f },@\n\
      \  \"slo\": { \"slo_degraded\": %b, \"slo_breaches\": %d }@\n\
       }@\n"
      requests clients workers queue_depth wall throughput !mean stddev !mn
      !mx hist.Trips_obs.Metrics.h_p50 hist.Trips_obs.Metrics.h_p90
      hist.Trips_obs.Metrics.h_p99 prefix.P.sc_hits prefix.P.sc_misses
      (rate prefix) output.P.sc_hits output.P.sc_misses (rate output)
      stats.P.st_shed stats.P.st_timed_out stats.P.st_crashed timed_out_ok
      served_identical qw50 qw99 ex50 ex99 rd50 rd99 lat99 degraded breaches
  in
  let path = bench_out "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." path

(* Cycle-simulator fast paths: the event-driven ring issue core and the
   repeated-block timing memo, each behind its own TRIPS_NO_SIM_* escape
   hatch (DESIGN.md §16), plus the sampled mode.  Every kernel is
   compiled once outside the measured region, then each configuration
   re-times the whole set; the exact configurations must render
   byte-identical per-kernel results *and* attribution tables, and the
   sampled run's measured drift bound must stay within the stated
   tolerance.  Wall clocks (warmup + Welford over reps), per-piece
   attribution and the fast-path counters go to BENCH_sim.json. *)
let run_sim () =
  section "Sim — cycle-model fast paths (legacy vs ring core, memo, sampled)";
  let hatches = [ "TRIPS_NO_SIM_FAST"; "TRIPS_NO_SIM_MEMO" ] in
  let sample_tolerance = 0.05 in
  let compiled =
    List.map
      (fun w -> Pipeline.compile ~backend:true Chf.Phases.Iupo_merged w)
      (Micro.all @ Micro.store_dense)
  in
  let render ?sample () =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    List.iter
      (fun c ->
        let a = Trips_sim.Attribution.create () in
        let r = Pipeline.run_cycles ?sample ~attribution:a c in
        Fmt.pf fmt
          "%-14s cycles=%d blocks=%d fired=%d fetched=%d mispred=%d \
           acc=%.6f miss=%.6f checksum=%d@."
          c.Pipeline.workload.Workload.name r.Trips_sim.Cycle_sim.cycles
          r.Trips_sim.Cycle_sim.blocks r.Trips_sim.Cycle_sim.instrs_fired
          r.Trips_sim.Cycle_sim.instrs_fetched
          r.Trips_sim.Cycle_sim.mispredictions
          r.Trips_sim.Cycle_sim.predictor_accuracy
          r.Trips_sim.Cycle_sim.cache_miss_rate r.Trips_sim.Cycle_sim.checksum;
        List.iter
          (fun (row : Trips_sim.Attribution.row) ->
            Fmt.pf fmt "  b%d execs=%d fetched=%d fired=%d cycles=%d flushes=%d %a@."
              row.Trips_sim.Attribution.r_block row.Trips_sim.Attribution.r_execs
              row.Trips_sim.Attribution.r_fetched
              row.Trips_sim.Attribution.r_fired
              row.Trips_sim.Attribution.r_cycles
              row.Trips_sim.Attribution.r_flushes
              Fmt.(list ~sep:sp (fun ppf (cls, f, fi) -> pf ppf "%s:%d/%d" cls f fi))
              row.Trips_sim.Attribution.r_classes)
          (Trips_sim.Attribution.rows a))
      compiled;
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  let sim_pass ?sample () =
    List.iter (fun c -> ignore (Pipeline.run_cycles ?sample c)) compiled
  in
  (* [on] lists the hatches whose fast path stays enabled; Welford over
     [reps] timed passes after one warmup (SNIPPETS discipline) *)
  let reps = 5 in
  let measure ~name ~on ?sample () =
    List.iter
      (fun h -> Unix.putenv h (if List.mem h on then "" else "1"))
      hatches;
    sim_pass ?sample ();
    Trips_obs.Metrics.reset ();
    let n = ref 0 and mean = ref 0.0 and m2 = ref 0.0 in
    let mn = ref infinity and mx = ref neg_infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      sim_pass ?sample ();
      let dt = Unix.gettimeofday () -. t0 in
      incr n;
      let d = dt -. !mean in
      mean := !mean +. (d /. float_of_int !n);
      m2 := !m2 +. (d *. (dt -. !mean));
      if dt < !mn then mn := dt;
      if dt > !mx then mx := dt
    done;
    let stddev = if !n > 1 then sqrt (!m2 /. float_of_int (!n - 1)) else 0.0 in
    let snap = Trips_obs.Metrics.snapshot () in
    let counter = Trips_obs.Metrics.counter_value snap in
    let counters =
      ( counter "sim.cycle.memo.hits",
        counter "sim.cycle.memo.misses",
        counter "sim.cycle.ring.grows",
        counter "sim.cycle.ring.capacity" / (reps * List.length compiled),
        counter "sim.cycle.sample.skips" )
    in
    let output = render ?sample () in
    List.iter (fun h -> Unix.putenv h "") hatches;
    let memo_hits, _, _, ring_cap, skips = counters in
    Fmt.pr "%-28s %6.3fs mean (stddev %.3f)  memo-hits %d  ring-cap %d  skips %d@."
      name !mean stddev memo_hits ring_cap skips;
    (name, !mean, stddev, !mn, !mx, counters, output)
  in
  let legacy = measure ~name:"fast paths off (legacy)" ~on:[] () in
  let ring = measure ~name:"ring core only" ~on:[ "TRIPS_NO_SIM_FAST" ] () in
  let memo = measure ~name:"memo only" ~on:[ "TRIPS_NO_SIM_MEMO" ] () in
  let fast = measure ~name:"ring + memo (default)" ~on:hatches () in
  let sampled =
    measure ~name:"sampled 1/8" ~on:hatches ~sample:8 ()
  in
  let output_of (_, _, _, _, _, _, o) = o in
  (* speedups compare best-of-reps: the shared bench machine's load
     spikes inflate means; minima are the uncontended cost *)
  let min_of (_, _, _, mn, _, _, _) = mn in
  let exact = [ legacy; ring; memo; fast ] in
  let identical =
    List.for_all (fun c -> output_of c = output_of legacy) exact
  in
  if not identical then
    Fmt.epr "bench: WARNING: sim outputs differ across fast paths@.";
  (* sampled mode: worst measured drift bound and worst cycle deviation
     from the exact run, across the kernel set *)
  let sample_bound = ref 0.0 and sample_cycle_err = ref 0.0 in
  List.iter
    (fun c ->
      let e = Pipeline.run_cycles c in
      let s = Pipeline.run_cycles ~sample:8 c in
      (match s.Trips_sim.Cycle_sim.sample_error_bound with
      | Some b -> if b > !sample_bound then sample_bound := b
      | None -> ());
      let dev =
        abs_float
          (float_of_int
             (s.Trips_sim.Cycle_sim.cycles - e.Trips_sim.Cycle_sim.cycles))
        /. float_of_int (max 1 e.Trips_sim.Cycle_sim.cycles)
      in
      if dev > !sample_cycle_err then sample_cycle_err := dev)
    compiled;
  let speedup = min_of legacy /. min_of fast in
  Fmt.pr "identical outputs: %b@." identical;
  Fmt.pr "sim-stage speedup: %.2fx (sampled: %.2fx, best-of-%d)@." speedup
    (min_of legacy /. min_of sampled)
    reps;
  Fmt.pr "sampled: worst error bound %.4f, worst cycle deviation %.4f \
          (tolerance %.2f)@."
    !sample_bound !sample_cycle_err sample_tolerance;
  if !sample_bound > sample_tolerance then
    Fmt.epr "bench: WARNING: sampled error bound exceeds tolerance@.";
  let json =
    let config (name, mean, stddev, mn, mx, (mh, mm, rg, rc, sk), _) =
      Fmt.str
        "    { \"name\": %S, \"mean_s\": %.4f, \"stddev_s\": %.4f, \
         \"min_s\": %.4f, \"max_s\": %.4f,@\n\
        \      \"counters\": { \"memo_hits\": %d, \"memo_misses\": %d, \
         \"ring_grows\": %d, \"ring_capacity\": %d, \"sample_skips\": %d } }"
        name mean stddev mn mx mh mm rg rc sk
    in
    Fmt.str
      "{@\n\
      \  \"identical_outputs\": %b,@\n\
      \  \"sim_speedup\": %.3f,@\n\
      \  \"sampled_speedup\": %.3f,@\n\
      \  \"sample_error_bound\": %.5f,@\n\
      \  \"sample_cycle_error\": %.5f,@\n\
      \  \"sample_tolerance\": %.2f,@\n\
      \  \"configs\": [@\n\
       %s@\n\
      \  ]@\n\
       }@\n"
      identical speedup
      (min_of legacy /. min_of sampled)
      !sample_bound !sample_cycle_err sample_tolerance
      (String.concat ",\n"
         (List.map config [ legacy; ring; memo; fast; sampled ]))
  in
  let path = bench_out "BENCH_sim.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." path

let experiments =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("table3", run_table3);
    ("figure7", run_figure7);
    ("ablation", run_ablation);
    ("placement", run_placement);
    ("speed", run_speed);
    ("verify", run_verify);
    ("sweep", run_sweep);
    ("formation", run_formation);
    ("sim", run_sim);
    ("serve", run_serve);
  ]

let () =
  let requested =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> List.map fst experiments
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Fmt.epr "unknown experiment %S (available: %s)@." name
          (String.concat ", " (List.map fst experiments)))
    requested
