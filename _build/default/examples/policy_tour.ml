(* A tour of block-selection policies on the two kernels the paper uses
   to explain Table 2's extremes:

   - bzip2_3: depth-first and VLIW exclude a rare block, so the merge
     block holding the induction-variable update gets tail duplicated and
     the increment becomes data-dependent on the test — slower than basic
     blocks;
   - parser_1: VLIW excludes rarely-taken high-dependence-height paths,
     and the surviving branches mispredict.

     dune exec examples/policy_tour.exe *)

open Trips_workloads
open Trips_harness

let policies =
  let base = Chf.Policy.edge_default in
  [
    ("breadth-first", base);
    ( "depth-first",
      { base with Chf.Policy.heuristic = Chf.Policy.Depth_first { min_merge_prob = 0.12 } } );
    ( "vliw",
      { base with Chf.Policy.heuristic = Chf.Policy.Vliw Chf.Policy.default_vliw } );
  ]

let tour (w : Workload.t) =
  Fmt.pr "=== %s: %s ===@." w.Workload.name w.Workload.description;
  let bb = Pipeline.compile ~backend:true Chf.Phases.Basic_blocks w in
  let bb_run = Pipeline.run_cycles bb in
  let baseline = Pipeline.run_functional bb in
  Fmt.pr "%-14s %9d cycles %6d mispredicts@." "basic-blocks"
    bb_run.Trips_sim.Cycle_sim.cycles bb_run.Trips_sim.Cycle_sim.mispredictions;
  List.iter
    (fun (name, config) ->
      let c = Pipeline.compile ~config ~backend:true Chf.Phases.Iupo_merged w in
      ignore (Pipeline.verify_against ~baseline c);
      let r = Pipeline.run_cycles c in
      Fmt.pr
        "%-14s %9d cycles %6d mispredicts (%+6.1f%%)  m/t/u/p=%a@."
        name r.Trips_sim.Cycle_sim.cycles r.Trips_sim.Cycle_sim.mispredictions
        (100.0
        *. float_of_int
             (bb_run.Trips_sim.Cycle_sim.cycles - r.Trips_sim.Cycle_sim.cycles)
        /. float_of_int bb_run.Trips_sim.Cycle_sim.cycles)
        Chf.Formation.pp_stats c.Pipeline.stats)
    policies;
  Fmt.pr "@."

let () =
  List.iter tour
    (List.filter_map Micro.by_name [ "bzip2_3"; "parser_1"; "gzip_1"; "ammp_1" ])
