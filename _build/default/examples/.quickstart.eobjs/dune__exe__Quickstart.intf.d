examples/quickstart.mli:
