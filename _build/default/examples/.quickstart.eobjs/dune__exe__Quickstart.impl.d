examples/quickstart.ml: Array Ast Chf Cycle_sim Fmt Func_sim List Lower Trips_analysis Trips_ir Trips_lang Trips_regalloc Trips_sim
