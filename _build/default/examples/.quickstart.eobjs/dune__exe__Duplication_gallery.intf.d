examples/duplication_gallery.mli:
