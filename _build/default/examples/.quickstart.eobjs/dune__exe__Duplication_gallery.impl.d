examples/duplication_gallery.ml: Array Ast Cfg Chf Fmt Func_sim Lower Trips_analysis Trips_ir Trips_lang Trips_sim
