examples/policy_tour.ml: Chf Fmt List Micro Pipeline Trips_harness Trips_sim Trips_workloads Workload
