(* Quickstart: write a kernel, compile it with convergent hyperblock
   formation, and compare basic-block vs hyperblock execution on the
   TRIPS timing model.

     dune exec examples/quickstart.exe *)

open Trips_lang
open Trips_sim

(* A small kernel in the mini language: conditional accumulation inside a
   loop — exactly the shape if-conversion loves. *)
let kernel =
  let open Ast in
  {
    prog_name = "quickstart";
    params = [ "n" ];
    body =
      [
        "acc" <-- i 0;
        for_ "j" (i 0) (v "n")
          [
            "x" <-- mem (v "j" % i 256);
            If
              ( v "x" % i 2 = i 0,
                [ "acc" <-- (v "acc" + v "x") ],
                [ "acc" <-- (v "acc" - i 1) ] );
          ];
        Return (Some (v "acc"));
      ];
  }

let fresh_memory () =
  Array.init 256 (fun k -> (k * 37) land 255)

let () =
  (* 1. lower to the RISC-like CFG *)
  let cfg, params = Lower.lower kernel in
  let n_reg = List.assoc "n" params in
  Fmt.pr "=== basic-block CFG (%d blocks) ===@.%a@.@." (Trips_ir.Cfg.num_blocks cfg)
    Trips_ir.Cfg.pp cfg;

  (* 2. profile it *)
  let loops = Trips_analysis.Loops.compute cfg in
  let _, profile =
    Func_sim.run_profiled ~registers:[ (n_reg, 500) ] ~loops
      ~memory:(fresh_memory ()) cfg
  in

  (* 3. baseline cycle count *)
  let bb =
    Cycle_sim.run ~registers:[ (n_reg, 500) ] ~memory:(fresh_memory ()) cfg
  in

  (* 4. convergent hyperblock formation ((IUPO), breadth-first policy) *)
  let cfg2, params2 = Lower.lower kernel in
  let n_reg2 = List.assoc "n" params2 in
  let stats = Chf.Phases.apply Chf.Phases.Iupo_merged cfg2 profile in
  Fmt.pr "=== hyperblocks (%d blocks; merges m/t/u/p = %a) ===@.%a@.@."
    (Trips_ir.Cfg.num_blocks cfg2) Chf.Formation.pp_stats stats
    Trips_ir.Cfg.pp cfg2;

  (* 5. back end: register allocation + fanout *)
  let report = Trips_regalloc.Backend.run cfg2 in
  let n_reg2 =
    Trips_ir.IntMap.find_or ~default:n_reg2 n_reg2
      report.Trips_regalloc.Backend.mapping
  in

  (* 6. cycle-level comparison *)
  let hb =
    Cycle_sim.run ~registers:[ (n_reg2, 500) ] ~memory:(fresh_memory ()) cfg2
  in
  Fmt.pr "basic blocks : %7d cycles, %5d blocks, ret=%a@." bb.Cycle_sim.cycles
    bb.Cycle_sim.blocks
    Fmt.(option int)
    bb.Cycle_sim.ret;
  Fmt.pr "hyperblocks  : %7d cycles, %5d blocks, ret=%a@." hb.Cycle_sim.cycles
    hb.Cycle_sim.blocks
    Fmt.(option int)
    hb.Cycle_sim.ret;
  assert (bb.Cycle_sim.checksum = hb.Cycle_sim.checksum);
  Fmt.pr "speedup      : %.2fx (results verified equal)@."
    (float_of_int bb.Cycle_sim.cycles /. float_of_int hb.Cycle_sim.cycles)
