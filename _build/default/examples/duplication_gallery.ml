(* A gallery of the paper's Figures 2-4: classical tail duplication, head
   duplication implementing peeling, and head duplication implementing
   unrolling — each shown as CFG-before / merged-block-after, driving the
   low-level merge machinery directly.

     dune exec examples/duplication_gallery.exe *)

open Trips_ir
open Trips_lang
open Trips_sim

let show title cfg =
  Fmt.pr "--- %s ---@.%a@.@." title Cfg.pp cfg

(* Run formation restricted to one seed so the transformation sequence is
   easy to follow, and verify semantics against the untouched program. *)
let demo name program memory_init expand_seed =
  Fmt.pr "==================== %s ====================@." name;
  let cfg, _ = Lower.lower program in
  show "original CFG" cfg;
  let loops = Trips_analysis.Loops.compute cfg in
  let memory = Array.init 128 memory_init in
  let baseline, profile = Func_sim.run_profiled ~loops ~memory cfg in
  let cfg2, _ = Lower.lower program in
  let st = Chf.Formation.make Chf.Policy.edge_default cfg2 profile in
  Chf.Formation.expand_block st expand_seed;
  Trips_analysis.Order.prune_unreachable cfg2;
  Cfg.validate cfg2;
  show "after ExpandBlock on the entry" cfg2;
  Fmt.pr "merge statistics m/t/u/p: %a@." Chf.Formation.pp_stats
    st.Chf.Formation.stats;
  let memory2 = Array.init 128 memory_init in
  let r = Func_sim.run ~memory:memory2 cfg2 in
  assert (r.Func_sim.checksum = baseline.Func_sim.checksum);
  Fmt.pr "semantics verified (ret = %a)@.@." Fmt.(option int) r.Func_sim.ret

(* Figure 2: a diamond whose merge point D has two predecessors; merging
   A, B and D forces tail duplication of D. *)
let tail_dup_demo =
  let open Ast in
  {
    prog_name = "fig2_tail_dup";
    params = [];
    body =
      [
        "x" <-- mem (i 0);
        (* A: branch *)
        If (v "x" > i 5, [ "y" <-- (v "x" * i 2) ] (* B *),
           [ "y" <-- (v "x" + i 100) ] (* C *));
        (* D: merge point *)
        "z" <-- (v "y" + i 7);
        Return (Some (v "z"));
      ];
  }

(* Figure 3: B is a loop header entered from A; merging A with B peels an
   iteration via head duplication. *)
let peel_demo =
  let open Ast in
  {
    prog_name = "fig3_peel";
    params = [];
    body =
      [
        "acc" <-- mem (i 1);
        "k" <-- i 0;
        While (v "k" < mem (i 2),
          [ "acc" <-- (v "acc" + v "k"); "k" <-- (v "k" + i 1) ]);
        Return (Some (v "acc"));
      ];
  }

(* Figure 4: after the loop body collapses into its header, the block has
   a self back edge; merging the block with itself unrolls the loop. *)
let unroll_demo =
  let open Ast in
  {
    prog_name = "fig4_unroll";
    params = [];
    body =
      [
        "acc" <-- i 0;
        "k" <-- i 0;
        DoWhile
          ( [ "acc" <-- (v "acc" + mem (v "k")); "k" <-- (v "k" + i 1) ],
            v "k" < i 64 );
        Return (Some (v "acc"));
      ];
  }

let () =
  demo "Figure 2: tail duplication" tail_dup_demo (fun k -> k + 3) 0;
  demo "Figure 3: head duplication as peeling" peel_demo
    (fun k -> (k mod 5) + 2)
    0;
  demo "Figure 4: head duplication as unrolling" unroll_demo (fun k -> k * k) 0
