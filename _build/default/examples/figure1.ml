(* Figure 1 of the paper: an outer loop containing two inner while loops
   (A-I), where profiling says each inner loop usually iterates three
   times.  Convergent hyperblock formation peels and unrolls the inner
   loops with head duplication and converges on densely packed blocks —
   the "ideal" Figure 1d the discrete orderings cannot reach.

     dune exec examples/figure1.exe *)

open Trips_lang
open Trips_sim

(* The Figure 1 CFG, expressed in the mini language:
   A: outer header; B: first inner header; CD: first inner body;
   E: between loops; F: second inner header; G(H): second body; I: exit. *)
let figure1 =
  let open Ast in
  {
    prog_name = "figure1";
    params = [];
    body =
      [
        "acc" <-- i 0;
        "outer" <-- i 0;
        While
          ( v "outer" < i 300,  (* A *)
            [
              "k" <-- i 0;
              "b1" <-- mem (v "outer" % i 512);
              While
                ( v "k" < v "b1",  (* B *)
                  [ "acc" <-- (v "acc" + (v "k" * i 5)); "k" <-- (v "k" + i 1) ]
                  (* CD *) );
              "acc" <-- (v "acc" ^^^ i 21);  (* E *)
              "k" <-- i 0;
              "b2" <-- mem (i 512 + (v "outer" % i 512));
              While
                ( v "k" < v "b2",  (* F *)
                  [ "acc" <-- (v "acc" + mem (v "k")); "k" <-- (v "k" + i 1) ]
                  (* GH *) );
              "outer" <-- (v "outer" + i 1);
            ] );
        Return (Some (v "acc"));  (* I *)
      ];
  }

(* inner trip counts concentrated at 3, like the paper's example *)
let memory () =
  Array.init 1024 (fun k -> match k land 7 with 0 -> 2 | 7 -> 4 | _ -> 3)

let () =
  let cfg, _ = Lower.lower figure1 in
  Fmt.pr "original CFG: %d blocks@." (Trips_ir.Cfg.num_blocks cfg);
  let loops = Trips_analysis.Loops.compute cfg in
  let _, profile = Func_sim.run_profiled ~loops ~memory:(memory ()) cfg in
  List.iter
    (fun (l : Trips_analysis.Loops.loop) ->
      match
        Trips_profile.Profile.dominant_trip_count profile l.Trips_analysis.Loops.header
      with
      | Some t ->
        Fmt.pr "loop at b%d: dominant trip count %d@." l.Trips_analysis.Loops.header t
      | None -> ())
    (Trips_analysis.Loops.all_loops loops);
  let bb = Cycle_sim.run ~memory:(memory ()) cfg in
  List.iter
    (fun ordering ->
      let cfg2, _ = Lower.lower figure1 in
      let stats = Chf.Phases.apply ordering cfg2 profile in
      ignore (Trips_regalloc.Backend.run cfg2);
      let r = Cycle_sim.run ~memory:(memory ()) cfg2 in
      assert (r.Cycle_sim.checksum = bb.Cycle_sim.checksum);
      Fmt.pr
        "%-8s: %2d blocks static, %6d dynamic, %8d cycles (%+.1f%%), m/t/u/p=%a@."
        (Chf.Phases.name ordering)
        (Trips_ir.Cfg.num_blocks cfg2)
        r.Cycle_sim.blocks r.Cycle_sim.cycles
        (100.0
        *. float_of_int (bb.Cycle_sim.cycles - r.Cycle_sim.cycles)
        /. float_of_int bb.Cycle_sim.cycles)
        Chf.Formation.pp_stats stats)
    Chf.Phases.all
