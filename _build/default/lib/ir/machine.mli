(** TRIPS machine parameters (Section 2 of the paper).

    These constants parameterize the structural-constraint checker, the
    register allocator and the simulators.  They follow the TRIPS
    prototype: 128-instruction blocks, 32 load/store identifiers, four
    register banks of 32 registers with 8 reads and 8 writes each per
    block, a 16-wide core and an 8-block in-flight window. *)

val max_instrs : int
(** Maximum number of regular instructions in a block (128). *)

val max_load_store : int
(** Maximum number of load/store identifiers that may issue per block (32). *)

val num_banks : int
(** Number of architectural register banks (4). *)

val regs_per_bank : int
(** Registers per bank (32). *)

val num_arch_regs : int
(** Total architectural registers, [num_banks * regs_per_bank] (128). *)

val max_reads_per_bank : int
(** Maximum register reads per bank per block (8). *)

val max_writes_per_bank : int
(** Maximum register writes per bank per block (8). *)

val max_reads : int
(** Maximum register reads per block (32). *)

val max_writes : int
(** Maximum register writes per block (32). *)

val max_blocks_in_flight : int
(** Blocks concurrently in flight: one non-speculative plus seven
    speculative (8). *)

val issue_width : int
(** Peak instruction issue width of the prototype (16). *)

val max_targets : int
(** Explicit consumer targets one instruction can encode (2); values with
    more consumers need fanout movs. *)

val first_virtual_reg : int
(** First virtual register number.  Architectural registers occupy
    [0 .. num_arch_regs); virtual registers start here. *)

val is_arch : int -> bool
(** [is_arch r] holds when [r] is an architectural register number. *)

val bank_of : int -> int
(** Bank of architectural register [r] (registers are interleaved). *)
