(** Blocks of the TRIPS intermediate language.

    A block is a list of predicated instructions followed by a list of
    predicated exits.  Exactly one exit guard holds on any execution of
    the block — the central dataflow invariant every transformation must
    preserve (the interpreter checks it).  A basic block with a
    conditional branch is two exits guarded on the same register with
    opposite senses; an unconditional block is a single unguarded exit.
    This uniform exit representation is what lets if-conversion merge
    exit lists without distinguishing fall-through from branches. *)

type target = Goto of int | Ret of Instr.operand option

type exit_ = { eguard : Instr.guard option; target : target }

type t = { id : int; instrs : Instr.t list; exits : exit_ list }

val make : int -> Instr.t list -> exit_ list -> t

val successors : t -> int list
(** Successor block ids in exit order, duplicates preserved. *)

val distinct_successors : t -> int list
(** Successor ids with duplicates removed, order preserved. *)

val has_return : t -> bool

val size : t -> int
(** Number of regular instructions (the 128-instruction budget). *)

val num_loads : t -> int
val num_stores : t -> int
val num_load_store : t -> int

val defs : t -> IntSet.t
(** Registers defined anywhere in the block (may-defs). *)

val must_defs : t -> IntSet.t
(** Registers defined by unpredicated instructions only.  A predicated
    definition is conditional: when the guard is false the incoming value
    flows through, so it neither kills the register for liveness nor
    shields later uses. *)

val upward_exposed_uses : t -> IntSet.t
(** Registers used before being unconditionally defined (including exit
    guards and return operands).  A predicated definition of [r] also
    exposes [r], because the block needs [r]'s incoming value when the
    guard is false.  See {!Trips_analysis.Liveness} for the refined,
    implication-aware variant. *)

val exit_uses : t -> IntSet.t
(** Registers read by the exits: guard registers and register return
    operands. *)

val map_targets : (int -> int) -> t -> t
(** Rewrite every [Goto] destination. *)

val pp_target : Format.formatter -> target -> unit
val pp_exit : Format.formatter -> exit_ -> unit
val pp : Format.formatter -> t -> unit
