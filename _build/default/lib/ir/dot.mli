(** Graphviz export of a CFG, for visual inspection of formation results
    ([dot -Tsvg out.dot]).  Nodes show instruction counts and a short
    listing; edge labels show exit guards; the entry is highlighted. *)

val emit : Format.formatter -> Cfg.t -> unit
val to_string : Cfg.t -> string
