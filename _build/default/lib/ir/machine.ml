(* TRIPS machine parameters shared by the constraint checker, the register
   allocator and the simulators.  Values follow the prototype described in
   Section 2 of the paper. *)

(** Maximum number of regular instructions in a block. *)
let max_instrs = 128

(** Maximum number of load/store identifiers that may issue per block. *)
let max_load_store = 32

(** Number of architectural register banks. *)
let num_banks = 4

(** Registers per bank; [num_banks * regs_per_bank = 128] architectural
    registers. *)
let regs_per_bank = 32

(** Total number of architectural registers. *)
let num_arch_regs = num_banks * regs_per_bank

(** Maximum register reads per bank per block. *)
let max_reads_per_bank = 8

(** Maximum register writes per bank per block. *)
let max_writes_per_bank = 8

(** Maximum register reads per block (8 reads x 4 banks). *)
let max_reads = max_reads_per_bank * num_banks

(** Maximum register writes per block. *)
let max_writes = max_writes_per_bank * num_banks

(** Blocks concurrently in flight (one non-speculative + seven
    speculative). *)
let max_blocks_in_flight = 8

(** Peak instruction issue width of the 16-wide prototype. *)
let issue_width = 16

(** Each instruction encodes at most this many explicit targets; a value
    with more consumers needs fanout (mov) instructions. *)
let max_targets = 2

(** Architectural registers are numbered [0 .. num_arch_regs-1].  Virtual
    registers produced by the front end and by the optimizer start here,
    so [is_arch r] distinguishes the two after allocation. *)
let first_virtual_reg = 1024

let is_arch r = r >= 0 && r < num_arch_regs

(** Bank to which architectural register [r] belongs (registers are
    interleaved across banks). *)
let bank_of r = r mod num_banks
