(* Nominal instruction latencies, shared by the VLIW dependence-height
   heuristic and the cycle-level timing model. *)

let of_op (op : Instr.op) =
  match op with
  | Instr.Binop (b, _, _, _) -> (
    match b with
    | Opcode.Mul -> 3
    | Opcode.Div | Opcode.Rem -> 20
    | Opcode.Add | Opcode.Sub | Opcode.And | Opcode.Or | Opcode.Xor
    | Opcode.Shl | Opcode.Shr | Opcode.Asr ->
      1)
  | Instr.Cmp _ -> 1
  | Instr.Mov _ -> 1
  | Instr.Load _ -> 3  (* L1 hit; the cache model adds miss penalties *)
  | Instr.Store _ -> 1
  | Instr.Nullw _ -> 1

(** Longest latency-weighted dependence chain through the block,
    following register dataflow in program order (the VLIW notion of
    schedule height). *)
let dependence_height (b : Block.t) =
  let completion : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let height = ref 0 in
  List.iter
    (fun (i : Instr.t) ->
      let ready =
        List.fold_left
          (fun acc r ->
            max acc (Option.value ~default:0 (Hashtbl.find_opt completion r)))
          0 (Instr.uses i)
      in
      let done_ = ready + of_op i.Instr.op in
      List.iter (fun d -> Hashtbl.replace completion d done_) (Instr.defs i);
      if done_ > !height then height := done_)
    b.Block.instrs;
  !height
