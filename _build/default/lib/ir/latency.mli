(** Nominal instruction latencies, shared by the VLIW dependence-height
    heuristic and the cycle-level timing model. *)

val of_op : Instr.op -> int
(** Latency in cycles (loads assume an L1 hit; the cache model adds miss
    penalties). *)

val dependence_height : Block.t -> int
(** Longest latency-weighted dependence chain through the block,
    following register dataflow in program order — the VLIW notion of
    schedule height. *)
