(* Integer-keyed maps, used for block tables and register environments. *)

include Map.Make (Int)

let keys m = List.map fst (bindings m)
let values m = List.map snd (bindings m)

let find_or ~default k m =
  match find_opt k m with Some v -> v | None -> default
