(** Arithmetic and comparison operators of the RISC-like TRIPS
    intermediate language.

    Semantics are total: division and remainder by zero yield zero, so
    speculatively executed instructions can never fault — mirroring how an
    EDGE machine nullifies mis-speculated work. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** total: [x / 0 = 0] *)
  | Rem  (** total: [x mod 0 = 0] *)
  | And  (** bitwise *)
  | Or  (** bitwise *)
  | Xor  (** bitwise *)
  | Shl
  | Shr  (** logical right shift *)
  | Asr  (** arithmetic right shift *)

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

val eval_binop : binop -> int -> int -> int
(** Evaluate a binary operator; total on all integer inputs. *)

val eval_cmp : cmpop -> int -> int -> int
(** Evaluate a comparison; returns 0 or 1. *)

val negate_cmp : cmpop -> cmpop
(** [negate_cmp op] computes the logical complement:
    [eval_cmp op a b + eval_cmp (negate_cmp op) a b = 1]. *)

val is_commutative : binop -> bool
(** Operators whose operands value numbering may canonically reorder. *)

val binop_to_string : binop -> string
val cmpop_to_string : cmpop -> string
val pp_binop : Format.formatter -> binop -> unit
val pp_cmpop : Format.formatter -> cmpop -> unit
