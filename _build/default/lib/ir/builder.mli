(** Imperative CFG construction helper used by the front end and tests.

    Open a block with {!start_block}, append instructions with
    {!emit}/{!emit_value}, and close it with one of the terminators
    ({!jump}, {!branch}, {!ret}).  Blocks may be reserved ahead of time
    with {!reserve} so forward branches can name their target. *)

type t

val create : ?name:string -> unit -> t
val cfg : t -> Cfg.t

val reserve : t -> int
(** Allocate a block id without opening it, for forward references. *)

val start_block : ?id:int -> t -> int
(** Open a block (fresh id unless [id] was reserved).
    @raise Invalid_argument if a block is already open. *)

val current : t -> int
(** Id of the open block.  @raise Invalid_argument if none is open. *)

val emit : ?guard:Instr.guard -> t -> Instr.op -> unit
(** Append an instruction to the open block. *)

val emit_value : ?guard:Instr.guard -> t -> (Instr.reg -> Instr.op) -> Instr.reg
(** Append an instruction writing a fresh register; returns the
    register. *)

val fresh_reg : t -> Instr.reg

val finish : t -> Block.exit_ list -> unit
(** Close the open block with explicit exits. *)

val jump : t -> int -> unit
(** Close the open block with an unconditional jump. *)

val branch : t -> Instr.reg -> if_true:int -> if_false:int -> unit
(** Close the open block with a two-way branch on a 0/1 register. *)

val ret : ?value:Instr.operand -> t -> unit
(** Close the open block with a return. *)

val set_entry : t -> int -> unit
(** Mark the function's entry block. *)
