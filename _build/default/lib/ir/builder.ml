(* Imperative CFG construction helper used by the front end and by tests.

   Usage: open a block with [start_block], append instructions with
   [emit]/[emit'], close it with one of the terminators ([jump], [branch],
   [ret]).  Blocks may be opened ahead of time with [reserve] so forward
   branches can name their target. *)

type t = {
  cfg : Cfg.t;
  mutable current : int option;
  mutable pending : Instr.t list;  (* reversed *)
}

let create ?name () = { cfg = Cfg.create ?name (); current = None; pending = [] }

let cfg b = b.cfg

(** Allocate a block id without opening it, for forward references. *)
let reserve b = Cfg.fresh_block_id b.cfg

let start_block ?id b =
  (match b.current with
  | Some open_id ->
    Fmt.invalid_arg "Builder.start_block: block b%d still open" open_id
  | None -> ());
  let id = match id with Some id -> id | None -> Cfg.fresh_block_id b.cfg in
  b.current <- Some id;
  b.pending <- [];
  id

let current b =
  match b.current with
  | Some id -> id
  | None -> invalid_arg "Builder: no open block"

(** Append an instruction computing [op]; returns nothing. *)
let emit ?guard b op =
  ignore (current b);
  b.pending <- Cfg.instr ?guard b.cfg op :: b.pending

(** Append a binop/cmp writing a fresh register; returns that register. *)
let emit_value ?guard b make_op =
  let dst = Cfg.fresh_reg b.cfg in
  emit ?guard b (make_op dst);
  dst

let fresh_reg b = Cfg.fresh_reg b.cfg

let finish b exits =
  let id = current b in
  Cfg.set_block b.cfg (Block.make id (List.rev b.pending) exits);
  b.current <- None;
  b.pending <- []

(** Close the open block with an unconditional jump. *)
let jump b target = finish b [ { Block.eguard = None; target = Block.Goto target } ]

(** Close the open block with a two-way branch on register [cond]. *)
let branch b cond ~if_true ~if_false =
  finish b
    [
      {
        Block.eguard = Some { Instr.greg = cond; sense = true };
        target = Block.Goto if_true;
      };
      {
        Block.eguard = Some { Instr.greg = cond; sense = false };
        target = Block.Goto if_false;
      };
    ]

(** Close the open block with a return. *)
let ret ?value b = finish b [ { Block.eguard = None; target = Block.Ret value } ]

(** Mark the entry block of the function. *)
let set_entry b id = b.cfg.Cfg.entry <- id
