(** Integer sets, used pervasively for register and block-id sets. *)

include Set.S with type elt = int

val of_list_fold : int list -> t
val pp : Format.formatter -> t -> unit
