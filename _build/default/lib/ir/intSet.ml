(* Integer sets, used pervasively for register and block-id sets. *)

include Set.Make (Int)

let of_list_fold l = List.fold_left (fun s x -> add x s) empty l
let pp fmt s = Fmt.pf fmt "{%a}" Fmt.(list ~sep:comma int) (elements s)
