(* Blocks of the TRIPS intermediate language.

   A block is a list of predicated instructions followed by a list of
   predicated exits.  Exactly one exit guard holds on any execution of the
   block (the interpreter checks this invariant); a basic block with a
   conditional branch is represented as two exits guarded on the same
   register with opposite senses, an unconditional block as a single
   unguarded exit.  This uniform representation is what lets if-conversion
   merge exit lists without distinguishing fall-through from branches. *)

type target = Goto of int | Ret of Instr.operand option

type exit_ = { eguard : Instr.guard option; target : target }

type t = { id : int; instrs : Instr.t list; exits : exit_ list }

let make id instrs exits = { id; instrs; exits }

(** Ids of successor blocks, in exit order, with duplicates preserved. *)
let successors b =
  List.filter_map
    (fun e -> match e.target with Goto s -> Some s | Ret _ -> None)
    b.exits

(** Successor ids with duplicates removed, order preserved. *)
let distinct_successors b =
  let seen = Hashtbl.create 4 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen s then false
      else begin
        Hashtbl.add seen s ();
        true
      end)
    (successors b)

let has_return b =
  List.exists (fun e -> match e.target with Ret _ -> true | Goto _ -> false)
    b.exits

(** Number of regular instructions (the 128-instruction budget). *)
let size b = List.length b.instrs

let num_loads b = List.length (List.filter Instr.is_load b.instrs)
let num_stores b = List.length (List.filter Instr.is_store b.instrs)
let num_load_store b = num_loads b + num_stores b

(** Registers defined anywhere in the block. *)
let defs b =
  List.fold_left
    (fun acc i -> List.fold_left (fun acc r -> IntSet.add r acc) acc
        (Instr.defs i))
    IntSet.empty b.instrs

(** Registers defined by unpredicated instructions only.  A predicated
    definition is conditional: when the guard is false the incoming value
    flows through, so it neither kills the register for liveness nor
    shields later uses. *)
let must_defs b =
  List.fold_left
    (fun acc i ->
      match i.Instr.guard with
      | Some _ -> acc
      | None ->
        List.fold_left (fun acc r -> IntSet.add r acc) acc (Instr.defs i))
    IntSet.empty b.instrs

(** Registers used before being unconditionally defined in the block
    (upward-exposed), including registers read by exit guards and return
    operands.  A predicated definition of [r] also exposes [r], because
    the block needs [r]'s incoming value when the guard is false. *)
let upward_exposed_uses b =
  let step (defined, exposed) i =
    let expose acc r = if IntSet.mem r defined then acc else IntSet.add r acc in
    let exposed = List.fold_left expose exposed (Instr.uses i) in
    let exposed, defined =
      match i.Instr.guard with
      | Some _ ->
        (* conditional def: exposes the target, defines nothing *)
        (List.fold_left expose exposed (Instr.defs i), defined)
      | None ->
        ( exposed,
          List.fold_left (fun acc r -> IntSet.add r acc) defined
            (Instr.defs i) )
    in
    (defined, exposed)
  in
  let defined, exposed =
    List.fold_left step (IntSet.empty, IntSet.empty) b.instrs
  in
  let add_if_undefined acc r =
    if IntSet.mem r defined then acc else IntSet.add r acc
  in
  List.fold_left
    (fun acc e ->
      let acc =
        match e.eguard with
        | Some g -> add_if_undefined acc g.Instr.greg
        | None -> acc
      in
      match e.target with
      | Ret (Some (Instr.Reg r)) -> add_if_undefined acc r
      | Ret (Some (Instr.Imm _)) | Ret None | Goto _ -> acc)
    exposed b.exits

(** All registers read by exits (guards and return operands), regardless
    of where they were defined. *)
let exit_uses b =
  List.fold_left
    (fun acc e ->
      let acc =
        match e.eguard with
        | Some g -> IntSet.add g.Instr.greg acc
        | None -> acc
      in
      match e.target with
      | Ret (Some (Instr.Reg r)) -> IntSet.add r acc
      | Ret (Some (Instr.Imm _)) | Ret None | Goto _ -> acc)
    IntSet.empty b.exits

(** Replace exit targets with [f] applied to each [Goto] destination. *)
let map_targets f b =
  let exits =
    List.map
      (fun e ->
        match e.target with
        | Goto s -> { e with target = Goto (f s) }
        | Ret _ -> e)
      b.exits
  in
  { b with exits }

let pp_target fmt = function
  | Goto s -> Fmt.pf fmt "b%d" s
  | Ret None -> Fmt.pf fmt "ret"
  | Ret (Some v) -> Fmt.pf fmt "ret %a" Instr.pp_operand v

let pp_exit fmt e =
  match e.eguard with
  | None -> Fmt.pf fmt "br %a" pp_target e.target
  | Some g -> Fmt.pf fmt "%a br %a" Instr.pp_guard g pp_target e.target

let pp fmt b =
  Fmt.pf fmt "@[<v 2>block b%d:" b.id;
  List.iter (fun i -> Fmt.pf fmt "@,%a" Instr.pp i) b.instrs;
  List.iter (fun e -> Fmt.pf fmt "@,%a" pp_exit e) b.exits;
  Fmt.pf fmt "@]"
