(** Integer-keyed maps, used for block tables and register environments. *)

include Map.S with type key = int

val keys : 'a t -> int list
val values : 'a t -> 'a list

val find_or : default:'a -> int -> 'a t -> 'a
(** [find_or ~default k m] is the binding of [k], or [default]. *)
