lib/ir/intSet.ml: Fmt Int List Set
