lib/ir/intMap.ml: Int List Map
