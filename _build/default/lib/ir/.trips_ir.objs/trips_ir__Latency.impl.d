lib/ir/latency.ml: Block Hashtbl Instr List Opcode Option
