lib/ir/intSet.mli: Format Set
