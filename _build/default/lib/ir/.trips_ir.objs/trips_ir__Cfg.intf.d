lib/ir/cfg.mli: Block Format Hashtbl Instr IntMap IntSet
