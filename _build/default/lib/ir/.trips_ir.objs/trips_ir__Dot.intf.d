lib/ir/dot.mli: Cfg Format
