lib/ir/latency.mli: Block Instr
