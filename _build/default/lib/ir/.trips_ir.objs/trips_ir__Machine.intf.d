lib/ir/machine.mli:
