lib/ir/cfg.ml: Block Fmt Hashtbl Instr IntMap IntSet List Machine
