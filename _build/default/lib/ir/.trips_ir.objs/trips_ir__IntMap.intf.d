lib/ir/intMap.mli: Map
