lib/ir/builder.ml: Block Cfg Fmt Instr List
