lib/ir/block.ml: Fmt Hashtbl Instr IntSet List
