lib/ir/block.mli: Format Instr IntSet
