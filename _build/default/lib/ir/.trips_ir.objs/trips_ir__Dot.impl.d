lib/ir/dot.ml: Block Buffer Cfg Fmt Instr List Printf String
