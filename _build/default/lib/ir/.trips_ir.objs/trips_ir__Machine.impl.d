lib/ir/machine.ml:
