lib/ir/builder.mli: Block Cfg Instr
