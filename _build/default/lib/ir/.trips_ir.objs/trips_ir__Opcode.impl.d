lib/ir/opcode.ml: Fmt
