(* Arithmetic and comparison operators of the RISC-like TRIPS intermediate
   language.  Semantics are total: division and remainder by zero yield
   zero so that speculatively executed instructions can never fault, which
   mirrors the way an EDGE machine nullifies mis-speculated work. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Asr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)
  | Asr -> a asr (b land 63)

let eval_cmp op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

(** [negate_cmp op] is the comparison computing the logical complement. *)
let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(** Commutative operators may have their operands swapped by value
    numbering to canonicalize expressions. *)
let is_commutative = function
  | Add | Mul | And | Or | Xor -> true
  | Sub | Div | Rem | Shl | Shr | Asr -> false

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Asr -> "asr"

let cmpop_to_string = function
  | Eq -> "teq"
  | Ne -> "tne"
  | Lt -> "tlt"
  | Le -> "tle"
  | Gt -> "tgt"
  | Ge -> "tge"

let pp_binop fmt op = Fmt.string fmt (binop_to_string op)
let pp_cmpop fmt op = Fmt.string fmt (cmpop_to_string op)
