lib/sim/predictor.ml: Hashtbl
