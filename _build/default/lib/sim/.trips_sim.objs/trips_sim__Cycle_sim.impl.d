lib/sim/cycle_sim.ml: Array Block Cache Fmt Func_sim Hashtbl Instr Latency List Machine Option Predictor Trips_ir
