lib/sim/cache.mli:
