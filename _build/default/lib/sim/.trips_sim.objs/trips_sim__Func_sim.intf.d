lib/sim/func_sim.mli: Block Cfg Instr Trips_analysis Trips_ir Trips_profile
