lib/sim/cycle_sim.mli: Cfg Trips_ir
