lib/sim/func_sim.ml: Array Block Cfg Fmt Hashtbl Instr List Opcode Option Trips_ir Trips_profile
