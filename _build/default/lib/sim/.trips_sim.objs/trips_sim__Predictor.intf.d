lib/sim/predictor.mli:
