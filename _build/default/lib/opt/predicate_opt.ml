(* Predicate optimization: implicit predication.

   On a dataflow machine it suffices to predicate the head of a dependence
   chain; instructions that only feed consumers executing under the same
   or a *stronger* predicate can run speculatively — their results are
   simply never consumed when the predicate is false (Smith et al.,
   "Dataflow predication").  The size benefit is indirect but real: each
   dropped guard removes a consumer of the predicate register, saving
   fanout instructions; the timing benefit is direct, since the
   instruction no longer waits for the predicate to resolve, and dropped
   guards unlock chain folding in value numbering.

   Guard implication is syntactic: q implies g when q = g, or q's
   defining instruction in this block is an unguarded [and] one of whose
   operands implies g (the exact shape repeated if-conversion builds:
   q = g AND c AND c' ...).  Only positively-sensed guards participate.

   Safety conditions for dropping the guard of [i] (which defines [d]):
   - [i] has no side effect (stores keep their guards);
   - [d] is not redefined later in the block;
   - every later use of [d] inside the block is under a guard implying
     [i]'s guard;
   - [d] is neither live out of the block nor read by an exit.

   Executing [i] unconditionally can then only write a value nobody
   observes on the guard-false path; operands holding stale values cannot
   fault because the IR's semantics are total. *)

open Trips_ir
open Trips_analysis

(* The guard under which instruction [j]'s read of [r] can actually be
   observed.  Usually [j]'s own guard — but an *unguarded* conjunction
   [and d, p, r] masks a garbage [r] whenever [p] is false, so the read
   is effectively guarded by [(p, true)].  This is how the predicate
   combination instructions if-conversion emits avoid pinning guards onto
   the tests that feed them. *)
let effective_use_guard (j : Instr.t) r : Instr.guard option =
  match (j.Instr.guard, j.Instr.op) with
  | (Some _ as g), _ -> g
  | None, Instr.Binop (Opcode.And, _, Instr.Reg p, Instr.Reg r') when r' = r && p <> r ->
    Some { Instr.greg = p; sense = true }
  | None, Instr.Binop (Opcode.And, _, Instr.Reg r', Instr.Reg p) when r' = r && p <> r ->
    Some { Instr.greg = p; sense = true }
  | None, _ -> None

(** Drop guards that implicit predication makes unnecessary. *)
let run (b : Block.t) ~live_out : Block.t =
  let exit_reads = Block.exit_uses b in
  let observable = IntSet.union live_out exit_reads in
  let defs = Guard_logic.build_defs b.Block.instrs in
  (* [rest] carries each instruction's index so guard implication can be
     checked positionally *)
  let rec rewrite pos = function
    | [] -> []
    | (i : Instr.t) :: rest ->
      let indexed_rest = List.mapi (fun k j -> (pos + 1 + k, j)) rest in
      let i =
        match (i.Instr.guard, Instr.defs i) with
        | Some g, [ d ]
          when (not (Instr.has_side_effect i)) && droppable g d indexed_rest ->
          { i with Instr.guard = None }
        | _ -> i
      in
      i :: rewrite (pos + 1) rest
  and droppable g d rest = shielded g d rest 0
  and shielded g d rest depth =
    (* scan forward: every use of [d] must be *shielded* with respect to
       [g] — directly under a guard at least as strong as [g], or an
       unguarded side-effect-free instruction whose own (unobservable)
       result is recursively shielded, so a speculative value can never
       reach an observable sink without crossing an implied guard.  An
       unconditional redefinition ends the range (later readers see the
       new value either way); a conditional redefinition merges values,
       so bail out.  If the value survives to the end of the block it
       must not be observable outside it. *)
    let use_shielded pos (j : Instr.t) tail =
      (* A use of [d] as [j]'s own guard register is a *control* use: the
         shielding argument ("when the reader executes the values
         coincide") is circular there, because whether the reader
         executes depends on [d]'s value.  Never drop across it. *)
      match j.Instr.guard with
      | Some q when q.Instr.greg = d -> false
      | _ -> (
        match effective_use_guard j d with
        | Some q -> Guard_logic.implies ~use_pos:pos defs q g
        | None ->
          depth < 6
          && (not (Instr.has_side_effect j))
          && j.Instr.guard = None
          &&
          (match Instr.defs j with
          | [ d2 ] when d2 <> d -> shielded g d2 tail (depth + 1)
          | _ -> false))
    in
    let rec scan = function
      | [] -> not (IntSet.mem d observable)
      | (pos, (j : Instr.t)) :: tail ->
        let uses_d = List.mem d (Instr.uses j) in
        let defs_d = List.mem d (Instr.defs j) in
        if uses_d && not (use_shielded pos j tail) then false
        else if List.mem g.Instr.greg (Instr.defs j) then
          (* the candidate's guard register is redefined here: later
             guards named after it denote a different predicate, so from
             this point [d] may not be read at all and must eventually be
             unconditionally overwritten or be unobservable *)
          (defs_d && j.Instr.guard = None) || scan_no_uses d tail
        else if defs_d then
          (* an unconditional redefinition kills the value outright; a
             guarded one only narrows who can still see it, and the
             shielding requirement on the remaining uses already covers
             every such path *)
          j.Instr.guard = None || scan tail
        else scan tail
    in
    scan rest
  and scan_no_uses d tail =
    (* after the guard register was clobbered: safe only if d is never
       read again, until an unconditional redefinition kills it or the
       block ends with d unobservable *)
    match tail with
    | [] -> not (IntSet.mem d observable)
    | (_, (j : Instr.t)) :: more ->
      if List.mem d (Instr.uses j) then false
      else if List.mem d (Instr.defs j) && j.Instr.guard = None then true
      else scan_no_uses d more
  in
  { b with Block.instrs = rewrite 0 b.Block.instrs }
