(** Guard-aware local value numbering.

    One forward pass over a block performing, simultaneously:
    common-subexpression elimination, constant propagation and folding,
    algebraic simplification, copy propagation (operands canonicalize to
    the oldest register holding the value), store-to-load forwarding,
    guard resolution (constant guards drop or delete instructions and
    resolve exits), linear-chain folding (add/sub-immediate chains such
    as unrolled induction updates rebase onto their ultimate source),
    predicate-aware copy propagation through guarded movs, and
    boolean-predicate simplification
    ([or (p and c) (p and not c) ==> p], gated on proven 0/1 values).

    Predication discipline: a guarded definition is conditional, so the
    defined register's value afterwards is a fresh unknown; a guarded
    computation may be reused only under the same guard, enforced with
    per-register definition stamps. *)

open Trips_ir

val run : Cfg.t -> Block.t -> Block.t
(** Rewrite one block (needs the CFG only for fresh ids). *)
