(* Guard-aware local value numbering.

   One forward pass over a block that performs, simultaneously:
   - common-subexpression elimination (redundant computations become movs,
     which later passes propagate and delete);
   - constant propagation and folding, including comparison folding;
   - algebraic simplification (x+0, x*1, x*0, x-x, ...);
   - copy propagation (operands are canonicalized to the oldest register
     holding the same value);
   - store-to-load forwarding within the block;
   - guard resolution: an instruction whose guard register is a known
     constant either loses its guard or is deleted outright, and an exit
     whose guard is constant-true becomes the block's only exit.

   Predication discipline: a *guarded* definition is conditional, so the
   defined register's value afterwards is unknown (a fresh value number).
   A guarded computation may still be reused — but only by an instruction
   under the *same* guard, checked via a per-register definition stamp
   that invalidates stale table entries.  Unguarded computations are
   reusable anywhere.  This is what lets the pass delete the duplicate
   predicate-combination instructions that repeated merges create, which
   is one of the concrete ways convergent formation packs blocks more
   tightly. *)

open Trips_ir

type state = {
  cfg : Cfg.t;
  mutable next_vn : int;
  cur_vn : (int, int) Hashtbl.t;  (* register -> value number *)
  stamps : (int, int) Hashtbl.t;  (* register -> definition counter *)
  const_vn : (int, int) Hashtbl.t;  (* constant -> its value number *)
  const_of : (int, int) Hashtbl.t;  (* value number -> constant *)
  rep : (int, int * int) Hashtbl.t;  (* value number -> (register, stamp) *)
  exprs : (expr_key, int * int * int) Hashtbl.t;
      (* key -> (register, stamp, value number) *)
  structure : (int, string * int list) Hashtbl.t;
      (* value number -> defining operation, for unconditionally computed
         values; enables boolean-predicate simplification *)
  linear : (int, int * int) Hashtbl.t;
      (* value number -> (base value number, constant offset); collapses
         add/sub-immediate chains such as unrolled induction updates *)
  booleans : (int, unit) Hashtbl.t;
      (* value numbers proven to hold 0/1: comparison results, the
         constants 0 and 1, and and/or/xor combinations of booleans.
         Boolean-predicate simplification applies only to proven
         booleans: bitwise [xor x 1] is NOT logical negation for wide
         values, and user programs can reach these operators *)
  guarded_copy : (int, int * int * int) Hashtbl.t;
      (* reg -> (source reg, source stamp, guard value number) for the
         latest definition of reg when it was [<p> mov reg, source];
         enables predicate-aware copy propagation: a reader whose guard
         implies p may read the source directly *)
  mutable mem_version : int;
}

and expr_key = string * int list * (int * bool) option
(* operation tag, argument value numbers (plus offsets etc.), and the
   guard under which the value was computed (None = unconditional). *)

let create cfg =
  {
    cfg;
    next_vn = 0;
    cur_vn = Hashtbl.create 64;
    stamps = Hashtbl.create 64;
    const_vn = Hashtbl.create 32;
    const_of = Hashtbl.create 32;
    rep = Hashtbl.create 64;
    exprs = Hashtbl.create 64;
    structure = Hashtbl.create 64;
    linear = Hashtbl.create 64;
    booleans = Hashtbl.create 64;
    guarded_copy = Hashtbl.create 32;
    mem_version = 0;
  }

let fresh_vn st =
  let v = st.next_vn in
  st.next_vn <- v + 1;
  v

let stamp st r = Option.value ~default:0 (Hashtbl.find_opt st.stamps r)

let vn_of_reg st r =
  match Hashtbl.find_opt st.cur_vn r with
  | Some v -> v
  | None ->
    let v = fresh_vn st in
    Hashtbl.replace st.cur_vn r v;
    (* the incoming value is represented by the register itself *)
    Hashtbl.replace st.rep v (r, stamp st r);
    v

let vn_of_const st n =
  match Hashtbl.find_opt st.const_vn n with
  | Some v -> v
  | None ->
    let v = fresh_vn st in
    Hashtbl.replace st.const_vn n v;
    Hashtbl.replace st.const_of v n;
    if n = 0 || n = 1 then Hashtbl.replace st.booleans v ();
    v

let is_boolean st v = Hashtbl.mem st.booleans v

let vn_of_operand st = function
  | Instr.Reg r -> vn_of_reg st r
  | Instr.Imm n -> vn_of_const st n

let const_of_vn st v = Hashtbl.find_opt st.const_of v

(* The oldest register currently holding value number [v], if any. *)
let valid_rep st v =
  match Hashtbl.find_opt st.rep v with
  | Some (r, s) when stamp st r = s && Hashtbl.find_opt st.cur_vn r = Some v ->
    Some r
  | Some _ | None -> None

(* Canonicalize an operand: constants become immediates, registers are
   replaced by the canonical holder of their value. *)
let canonical_operand st (o : Instr.operand) =
  match o with
  | Instr.Imm _ -> o
  | Instr.Reg r -> (
    let v = vn_of_reg st r in
    match const_of_vn st v with
    | Some n -> Instr.Imm n
    | None -> (
      match valid_rep st v with
      | Some r' when r' <> r -> Instr.Reg r'
      | Some _ | None -> o))

(* Record that [d] was defined.  An unguarded definition binds [d] to
   [v]; a guarded one leaves [d]'s value unknown. *)
let define st d ~guard ~v =
  Hashtbl.remove st.guarded_copy d;
  Hashtbl.replace st.stamps d (stamp st d + 1);
  (match guard with
  | None ->
    Hashtbl.replace st.cur_vn d v;
    (match valid_rep st v with
    | Some _ -> ()
    | None -> Hashtbl.replace st.rep v (d, stamp st d))
  | Some _ -> Hashtbl.replace st.cur_vn d (fresh_vn st));
  ()

let guard_key st = function
  | None -> None
  | Some g -> Some (vn_of_reg st g.Instr.greg, g.Instr.sense)

(* Try to reuse a previously computed expression: first an unconditional
   computation, then one under the same guard. *)
let lookup_expr st (tag, args, gkey) =
  let try_key k =
    match Hashtbl.find_opt st.exprs k with
    | Some (r, s, v) -> (
      match const_of_vn st v with
      | Some n -> Some (Instr.Imm n, v)
      | None ->
        if stamp st r = s then Some (Instr.Reg r, v) else None)
    | None -> None
  in
  match try_key (tag, args, None) with
  | Some _ as hit -> hit
  | None -> ( match gkey with None -> None | Some _ -> try_key (tag, args, gkey))

let record_expr st key ~reg ~v =
  Hashtbl.replace st.exprs key (reg, stamp st reg, v)

(* Follow the linear-form chain: the ultimate base value number and total
   constant offset of [v]. *)
let linear_base st v =
  match Hashtbl.find_opt st.linear v with
  | Some (base, off) -> (base, off)
  | None -> (v, 0)

(* [complement st x y]: do value numbers [x] and [y] always hold logical
   complements (for 0/1 predicate values)?  Recognizes [y = xor x 1] and
   comparison pairs like [teq a b] vs [tne a b]. *)
(* [structural_complement st x y]: is one of [x], [y] literally
   [xor other 1] (or a comparison-negation pair)?  For arbitrary values c
   this only guarantees y = c XOR 1, which flips bit 0 and nothing else —
   enough for the or-factoring rule below, where only the common factor
   must be boolean: p AND c  OR  p AND (c xor 1) = p AND (c or 1) = p
   when p is 0/1. *)
let structural_complement st x y =
  let one = vn_of_const st 1 in
  let is_xor1 a b =
    match Hashtbl.find_opt st.structure a with
    | Some ("xor", args) -> args = List.sort compare [ b; one ]
    | _ -> false
  in
  let cmp_negation a b =
    match (Hashtbl.find_opt st.structure a, Hashtbl.find_opt st.structure b) with
    | Some (ta, argsa), Some (tb, argsb) when argsa = argsb ->
      let neg t =
        match t with
        | "teq" -> Some "tne"
        | "tne" -> Some "teq"
        | "tlt" -> Some "tge"
        | "tge" -> Some "tlt"
        | "tle" -> Some "tgt"
        | "tgt" -> Some "tle"
        | _ -> None
      in
      neg ta = Some tb
    | _ -> false
  in
  is_xor1 x y || is_xor1 y x || cmp_negation x y

let complement st x y =
  let one = vn_of_const st 1 in
  let is_not a b =
    is_boolean st b
    &&
    match Hashtbl.find_opt st.structure a with
    | Some ("xor", args) -> args = List.sort compare [ b; one ]
    | _ -> false
  in
  let cmp_negation a b =
    match (Hashtbl.find_opt st.structure a, Hashtbl.find_opt st.structure b) with
    | Some (ta, argsa), Some (tb, argsb) when argsa = argsb ->
      let neg t =
        match t with
        | "teq" -> Some "tne"
        | "tne" -> Some "teq"
        | "tlt" -> Some "tge"
        | "tge" -> Some "tlt"
        | "tle" -> Some "tgt"
        | "tgt" -> Some "tle"
        | _ -> None
      in
      neg ta = Some tb
    | _ -> false
  in
  is_not x y || is_not y x || cmp_negation x y

(* Boolean-predicate simplification over value-number structure:
   - or (p and c) (p and not c)  ==>  p
   - or  b (not b)               ==>  1
   - and b (not b)               ==>  0
   - xor (xor u 1) 1             ==>  u
   Sound for the 0/1 predicate registers the front end and if-conversion
   produce; this is what lets the guard of a merge point reached from
   both arms of a converted diamond collapse back to the loop predicate
   (the paper's predicate optimizations [25]). *)
let bool_simplify st op va vb : [ `Vn of int | `Const of int ] option =
  let open Opcode in
  match op with
  | And -> if complement st va vb then Some (`Const 0) else None
  | Or when complement st va vb -> Some (`Const 1)
  | Or -> (
    match (Hashtbl.find_opt st.structure va, Hashtbl.find_opt st.structure vb) with
    | Some ("and", [ a1; a2 ]), Some ("and", [ b1; b2 ]) ->
      let try_factor common ra rb =
        if is_boolean st common && structural_complement st ra rb then
          Some (`Vn common)
        else None
      in
      let candidates =
        [
          (if a1 = b1 then try_factor a1 a2 b2 else None);
          (if a1 = b2 then try_factor a1 a2 b1 else None);
          (if a2 = b1 then try_factor a2 a1 b2 else None);
          (if a2 = b2 then try_factor a2 a1 b1 else None);
        ]
      in
      List.find_map (fun x -> x) candidates
    | _ -> None)
  | Xor -> (
    let one = vn_of_const st 1 in
    let un_negate v =
      match Hashtbl.find_opt st.structure v with
      | Some ("xor", args) -> (
        match List.filter (fun a -> a <> one) args with
        | [ u ] when List.mem one args -> Some (`Vn u)
        | _ -> None)
      | _ -> None
    in
    if va = one then un_negate vb
    else if vb = one then un_negate va
    else None)
  | Add | Sub | Mul | Div | Rem | Shl | Shr | Asr -> None

(* Materialize a value number as an operand, if possible. *)
let operand_of_vn st v =
  match const_of_vn st v with
  | Some n -> Some (Instr.Imm n)
  | None -> (
    match valid_rep st v with
    | Some r -> Some (Instr.Reg r)
    | None -> None)

(* Does guard [g] (positively sensed) imply the condition with value
   number [pvn]?  True when they are the same value, or when [g]'s value
   is structurally a conjunction with [pvn] as one conjunct — exactly the
   shape repeated if-conversion produces (q = p AND c). *)
let guard_implies st (g : Instr.guard option) pvn =
  match g with
  | Some g when g.Instr.sense -> (
    let gv = vn_of_reg st g.Instr.greg in
    gv = pvn
    ||
    match Hashtbl.find_opt st.structure gv with
    | Some ("and", args) -> List.mem pvn args
    | _ -> false)
  | Some _ | None -> false

(* Predicate-aware copy propagation: replace a read of [r] by the source
   of its latest guarded-mov definition when the reading instruction's
   guard implies the mov's guard (so whenever the reader executes, the
   mov executed too and the values coincide). *)
let substitute_guarded_aliases st (i : Instr.t) =
  let subst = function
    | Instr.Reg r as o -> (
      match Hashtbl.find_opt st.guarded_copy r with
      | Some (src, src_stamp, pvn)
        when stamp st src = src_stamp && guard_implies st i.Instr.guard pvn ->
        Instr.Reg src
      | _ -> o)
    | o -> o
  in
  let op =
    match i.Instr.op with
    | Instr.Binop (o, d, a, b) -> Instr.Binop (o, d, subst a, subst b)
    | Instr.Cmp (o, d, a, b) -> Instr.Cmp (o, d, subst a, subst b)
    | Instr.Mov (d, a) -> Instr.Mov (d, subst a)
    | Instr.Load (d, a, off) -> Instr.Load (d, subst a, off)
    | Instr.Store (v, a, off) -> Instr.Store (subst v, subst a, off)
    | Instr.Nullw _ as op -> op
  in
  { i with Instr.op }

(* The rewritten form of one instruction: deleted, or replaced. *)
type rewrite = Delete | Keep of Instr.t

(* Turn a computation into a mov (same guard), handling the
   "already holds this value" deletion. *)
let as_mov st (i : Instr.t) d (src : Instr.operand) ~v =
  let dv = Hashtbl.find_opt st.cur_vn d in
  if dv = Some v then Delete  (* d already holds the value, even guarded *)
  else begin
    define st d ~guard:i.Instr.guard ~v;
    Keep { i with Instr.op = Instr.Mov (d, src) }
  end

let simplify_binop op (a : Instr.operand) (b : Instr.operand) =
  let open Opcode in
  match (op, a, b) with
  | Add, x, Instr.Imm 0 | Add, Instr.Imm 0, x -> Some (`Copy x)
  | Sub, x, Instr.Imm 0 -> Some (`Copy x)
  | Sub, Instr.Reg r1, Instr.Reg r2 when r1 = r2 -> Some (`Const 0)
  | Mul, x, Instr.Imm 1 | Mul, Instr.Imm 1, x -> Some (`Copy x)
  | Mul, _, Instr.Imm 0 | Mul, Instr.Imm 0, _ -> Some (`Const 0)
  | Div, x, Instr.Imm 1 -> Some (`Copy x)
  | And, x, Instr.Reg r when x = Instr.Reg r -> Some (`Copy x)
  | Or, x, Instr.Reg r when x = Instr.Reg r -> Some (`Copy x)
  | Xor, Instr.Reg r1, Instr.Reg r2 when r1 = r2 -> Some (`Const 0)
  | And, _, Instr.Imm 0 | And, Instr.Imm 0, _ -> Some (`Const 0)
  | Or, x, Instr.Imm 0 | Or, Instr.Imm 0, x -> Some (`Copy x)
  | Xor, x, Instr.Imm 0 | Xor, Instr.Imm 0, x -> Some (`Copy x)
  | (Shl | Shr | Asr), x, Instr.Imm 0 -> Some (`Copy x)
  | _ -> None

let rec rewrite_instr st (i : Instr.t) : rewrite =
  (* Resolve constant guards: a guard proven false deletes the
     instruction, a guard proven true is dropped. *)
  match i.Instr.guard with
  | Some g -> (
    match const_of_vn st (vn_of_reg st g.Instr.greg) with
    | Some c when c <> 0 <> g.Instr.sense -> Delete
    | Some _ -> rewrite_instr st { i with Instr.guard = None }
    | None -> (
      (* canonicalize the guard register itself *)
      match valid_rep st (vn_of_reg st g.Instr.greg) with
      | Some r when r <> g.Instr.greg ->
        rewrite_core st { i with Instr.guard = Some { g with Instr.greg = r } }
      | Some _ | None -> rewrite_core st i))
  | None -> rewrite_core st i

and rewrite_core st (i : Instr.t) : rewrite =
    let i = substitute_guarded_aliases st i in
    let gkey = guard_key st i.Instr.guard in
    match i.Instr.op with
    | Instr.Mov (d, x) ->
      let x = canonical_operand st x in
      let v = vn_of_operand st x in
      let result = as_mov st i d x ~v in
      (match (result, i.Instr.guard, x) with
      | Keep _, Some g, Instr.Reg rx when g.Instr.sense ->
        Hashtbl.replace st.guarded_copy d
          (rx, stamp st rx, vn_of_reg st g.Instr.greg)
      | _ -> ());
      result
    | Instr.Binop (op, d, a, b) -> (
      let a = canonical_operand st a and b = canonical_operand st b in
      match (a, b) with
      | Instr.Imm ca, Instr.Imm cb ->
        let n = Opcode.eval_binop op ca cb in
        as_mov st i d (Instr.Imm n) ~v:(vn_of_const st n)
      | _ -> (
        (* collapse add/sub-immediate chains onto their ultimate base:
           j2 = j1 + 1 with j1 = j0 + 1 becomes j2 = j0 + 2, shortening
           the dependence chains unrolling would otherwise serialize *)
        let op, a, b, lin =
          let chain r k =
            let base, off = linear_base st (vn_of_reg st r) in
            let total = off + k in
            match valid_rep st base with
            | Some rb -> (Opcode.Add, Instr.Reg rb, Instr.Imm total, Some (base, total))
            | None -> (op, a, b, Some (base, total))
          in
          match (op, a, b) with
          | Opcode.Add, Instr.Reg r, Instr.Imm k
          | Opcode.Add, Instr.Imm k, Instr.Reg r ->
            chain r k
          | Opcode.Sub, Instr.Reg r, Instr.Imm k -> chain r (-k)
          | _ -> (op, a, b, None)
        in
        match simplify_binop op a b with
        | Some (`Copy x) -> as_mov st i d x ~v:(vn_of_operand st x)
        | Some (`Const n) -> as_mov st i d (Instr.Imm n) ~v:(vn_of_const st n)
        | None -> (
          let va = vn_of_operand st a and vb = vn_of_operand st b in
          match bool_simplify st op va vb with
          | Some (`Const n) -> as_mov st i d (Instr.Imm n) ~v:(vn_of_const st n)
          | Some (`Vn v) when operand_of_vn st v <> None ->
            as_mov st i d (Option.get (operand_of_vn st v)) ~v
          | Some (`Vn _) | None -> (
            let args =
              if Opcode.is_commutative op && va > vb then [ vb; va ]
              else [ va; vb ]
            in
            let key = (Opcode.binop_to_string op, args, gkey) in
            match lookup_expr st key with
            | Some (src, v) -> as_mov st i d src ~v
            | None ->
              let v = fresh_vn st in
              define st d ~guard:i.Instr.guard ~v;
              record_expr st key ~reg:d ~v;
              (match op with
              | Opcode.And ->
                (* bitwise AND with a 0/1 operand yields 0/1 *)
                if is_boolean st va || is_boolean st vb then
                  Hashtbl.replace st.booleans v ()
              | Opcode.Or | Opcode.Xor ->
                if is_boolean st va && is_boolean st vb then
                  Hashtbl.replace st.booleans v ()
              | _ -> ());
              if i.Instr.guard = None then begin
                Hashtbl.replace st.structure v (Opcode.binop_to_string op, args);
                match lin with
                | Some (base, total) -> Hashtbl.replace st.linear v (base, total)
                | None -> ()
              end;
              Keep { i with Instr.op = Instr.Binop (op, d, a, b) }))))
    | Instr.Cmp (op, d, a, b) -> (
      let a = canonical_operand st a and b = canonical_operand st b in
      match (a, b) with
      | Instr.Imm ca, Instr.Imm cb ->
        let n = Opcode.eval_cmp op ca cb in
        as_mov st i d (Instr.Imm n) ~v:(vn_of_const st n)
      | _ -> (
        let va = vn_of_operand st a and vb = vn_of_operand st b in
        let key = (Opcode.cmpop_to_string op, [ va; vb ], gkey) in
        match lookup_expr st key with
        | Some (src, v) -> as_mov st i d src ~v
        | None ->
          let v = fresh_vn st in
          define st d ~guard:i.Instr.guard ~v;
          record_expr st key ~reg:d ~v;
          Hashtbl.replace st.booleans v ();
          if i.Instr.guard = None then
            Hashtbl.replace st.structure v (Opcode.cmpop_to_string op, [ va; vb ]);
          Keep { i with Instr.op = Instr.Cmp (op, d, a, b) }))
    | Instr.Load (d, a, off) -> (
      let a = canonical_operand st a in
      let va = vn_of_operand st a in
      let key = ("ld", [ va; off; st.mem_version ], gkey) in
      match lookup_expr st key with
      | Some (src, v) -> as_mov st i d src ~v
      | None ->
        let v = fresh_vn st in
        define st d ~guard:i.Instr.guard ~v;
        record_expr st key ~reg:d ~v;
        Keep { i with Instr.op = Instr.Load (d, a, off) })
    | Instr.Store (x, a, off) ->
      let x = canonical_operand st x and a = canonical_operand st a in
      st.mem_version <- st.mem_version + 1;
      (* store-to-load forwarding: an unguarded store defines the value a
         subsequent load of the same address would read *)
      (match i.Instr.guard with
      | None ->
        let va = vn_of_operand st a in
        let vx = vn_of_operand st x in
        let key = ("ld", [ va; off; st.mem_version ], None) in
        (match x with
        | Instr.Reg rx -> record_expr st key ~reg:rx ~v:vx
        | Instr.Imm _ ->
          (* record via the constant's value number; lookup resolves
             constants without needing a live register *)
          Hashtbl.replace st.exprs key (-1, -1, vx))
      | Some _ -> ());
      Keep { i with Instr.op = Instr.Store (x, a, off) }
    | Instr.Nullw _ -> Keep i

(* Simplify the exit list with end-of-block knowledge. *)
let rewrite_exits st (exits : Block.exit_ list) =
  let rewrite_target (t : Block.target) =
    match t with
    | Block.Ret (Some v) -> Block.Ret (Some (canonical_operand st v))
    | Block.Ret None | Block.Goto _ -> t
  in
  let resolved =
    List.filter_map
      (fun (e : Block.exit_) ->
        match e.Block.eguard with
        | None -> Some { e with Block.target = rewrite_target e.Block.target }
        | Some g -> (
          match const_of_vn st (vn_of_reg st g.Instr.greg) with
          | Some c ->
            if c <> 0 = g.Instr.sense then
              (* constant-true: by the one-exit invariant, siblings are
                 dead; marking unguarded lets the filter below prune *)
              Some
                {
                  Block.eguard = None;
                  target = rewrite_target e.Block.target;
                }
            else None  (* constant-false exit never fires *)
          | None ->
            let g =
              match valid_rep st (vn_of_reg st g.Instr.greg) with
              | Some r -> { g with Instr.greg = r }
              | None -> g
            in
            Some
              { Block.eguard = Some g; target = rewrite_target e.Block.target }))
      exits
  in
  (* If an unguarded exit exists, every other exit is unreachable. *)
  match List.find_opt (fun e -> e.Block.eguard = None) resolved with
  | Some e -> [ e ]
  | None -> (
    (* A single surviving guarded exit must always fire. *)
    match resolved with
    | [ e ] -> [ { e with Block.eguard = None } ]
    | es -> es)

(** Run local value numbering over [b]; returns the rewritten block. *)
let run cfg (b : Block.t) : Block.t =
  let st = create cfg in
  let instrs =
    List.filter_map
      (fun i -> match rewrite_instr st i with Delete -> None | Keep i -> Some i)
      b.Block.instrs
  in
  let exits = rewrite_exits st b.Block.exits in
  { b with Block.instrs; exits }
