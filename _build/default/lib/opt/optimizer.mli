(** Optimization driver.

    {!optimize_block} is the [Optimize] step from Figure 5 of the paper:
    local value numbering, dead-code elimination and predicate
    optimization iterated to a bounded local fixpoint.  Convergent
    formation calls it after every trial merge; the discrete phase
    orderings call {!optimize_cfg} once as their final "O" phase. *)

open Trips_ir

val optimize_block :
  ?max_rounds:int -> Cfg.t -> Block.t -> live_out:IntSet.t -> Block.t

val optimize_cfg : ?max_rounds:int -> Cfg.t -> unit
(** Optimize every reachable block, recomputing liveness between rounds,
    until nothing changes (bounded). *)
