lib/opt/gvn.ml: Block Cfg Dominators Hashtbl Instr IntMap List Opcode Option Trips_analysis Trips_ir
