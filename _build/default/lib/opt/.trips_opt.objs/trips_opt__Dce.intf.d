lib/opt/dce.mli: Block IntSet Trips_ir
