lib/opt/dce.ml: Block Instr IntSet List Trips_ir
