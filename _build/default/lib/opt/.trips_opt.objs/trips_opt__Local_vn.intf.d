lib/opt/local_vn.mli: Block Cfg Trips_ir
