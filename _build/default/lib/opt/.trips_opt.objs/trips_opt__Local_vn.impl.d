lib/opt/local_vn.ml: Block Cfg Hashtbl Instr List Opcode Option Trips_ir
