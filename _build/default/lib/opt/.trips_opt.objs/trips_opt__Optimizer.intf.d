lib/opt/optimizer.mli: Block Cfg IntSet Trips_ir
