lib/opt/optimizer.ml: Block Cfg Dce Gvn Instr List Liveness Local_vn Predicate_opt Trips_analysis Trips_ir
