lib/opt/predicate_opt.ml: Block Guard_logic Instr IntSet List Opcode Trips_analysis Trips_ir
