lib/opt/gvn.mli: Cfg Trips_ir
