lib/opt/predicate_opt.mli: Block IntSet Trips_ir
