(** Predicate optimization: implicit predication (Smith et al., "Dataflow
    predication").

    On a dataflow machine it suffices to predicate the head of a
    dependence chain; instructions whose results can only reach
    observable sinks across guards at least as strong as their own may
    run speculatively.  Each dropped guard removes a consumer of the
    predicate register (saving fanout instructions) and removes a
    predicate-resolution wait from the critical path.

    The guard of an instruction defining [d] is dropped when every
    dataflow path from [d] to an observable sink (store, exit read,
    live-out register) crosses an implied guard — including transitively
    through unguarded side-effect-free instructions, and through the
    self-masking reads of unguarded [and p, d] predicate combinations.
    A use of [d] as a downstream instruction's own guard register is a
    control use and always blocks the drop. *)

open Trips_ir

val run : Block.t -> live_out:IntSet.t -> Block.t
