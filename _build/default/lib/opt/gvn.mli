(** Dominator-based global value numbering (the paper's Optimize step,
    Section 4.2).

    Walks the dominator tree with a scoped table of available
    expressions; a computation already performed in a dominating block is
    replaced by a copy of its result, which local value numbering and
    copy propagation then fold away.  Without SSA, soundness is obtained
    by restricting the table to registers defined by exactly one
    unguarded instruction in the function (which behave like SSA names)
    whose definitions dominate the point of reuse. *)

open Trips_ir

val run : Cfg.t -> int
(** Rewrite in place; returns the number of computations replaced. *)
