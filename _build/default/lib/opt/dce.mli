(** Dead-code elimination within a block.

    A backward pass with a liveness set seeded from [live_out] and the
    registers the block's exits read.  Stores are always live.  Only an
    unguarded definition kills its register: a guarded definition keeps
    the register live below it, because the incoming value may flow
    through. *)

open Trips_ir

val run : Block.t -> live_out:IntSet.t -> Block.t
