(* Dominator-based global value numbering.

   The paper's Optimize step "applies dominator-based global value
   numbering" (Section 4.2).  This pass walks the dominator tree with a
   scoped table of available expressions: a computation already performed
   in a dominating block is replaced by a copy of its result, which local
   value numbering and copy propagation then fold away.

   Without SSA, reusing a value computed elsewhere is only sound if every
   register involved denotes the same value at both program points.  We
   restrict the table to *stable* registers — defined by exactly one
   unguarded instruction in the whole function — and additionally require
   the defining block of every operand (and of the reused result) to
   dominate the block of the reuse.  Stable registers behave exactly like
   SSA names, and the front end produces them in abundance: every
   expression temporary is freshly named.

   Loads are not globally numbered (any store on any path could
   invalidate them); the block-local pass handles those with its memory
   versioning. *)

open Trips_ir
open Trips_analysis

(* Registers defined by exactly one unguarded instruction in the
   function, with their defining block. *)
let stable_defs cfg =
  let count : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let where : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let guarded : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun d ->
              Hashtbl.replace count d
                (1 + Option.value ~default:0 (Hashtbl.find_opt count d));
              Hashtbl.replace where d b.Block.id;
              if i.Instr.guard <> None then Hashtbl.replace guarded d ())
            (Instr.defs i))
        b.Block.instrs)
    cfg;
  let stable = Hashtbl.create 256 in
  Hashtbl.iter
    (fun r n ->
      if n = 1 && not (Hashtbl.mem guarded r) then
        Hashtbl.replace stable r (Hashtbl.find where r))
    count;
  stable

type expr_key = string * Instr.operand list

let key_of (i : Instr.t) : expr_key option =
  if i.Instr.guard <> None then None
  else
    match i.Instr.op with
    | Instr.Binop (op, _, a, b) ->
      let a, b =
        if Opcode.is_commutative op && compare b a < 0 then (b, a) else (a, b)
      in
      Some (Opcode.binop_to_string op, [ a; b ])
    | Instr.Cmp (op, _, a, b) -> Some (Opcode.cmpop_to_string op, [ a; b ])
    | Instr.Mov _ | Instr.Load _ | Instr.Store _ | Instr.Nullw _ -> None

(** Run global value numbering over the reachable CFG; returns the number
    of computations replaced by copies. *)
let run cfg : int =
  let dom = Dominators.compute cfg in
  let stable = stable_defs cfg in
  let stable_in_scope ~use_block r =
    match Hashtbl.find_opt stable r with
    | Some def_block ->
      (* strict for same-block cases: the block-local pass owns those *)
      def_block <> use_block && Dominators.dominates dom def_block use_block
    | None -> false
  in
  let operand_ok ~use_block = function
    | Instr.Imm _ -> true
    | Instr.Reg r -> stable_in_scope ~use_block r
  in
  let table : (expr_key, int) Hashtbl.t = Hashtbl.create 128 in
  let replaced = ref 0 in
  let rec visit block_id =
    let b = Cfg.block cfg block_id in
    let added = ref [] in
    let defined_here = Hashtbl.create 16 in
    (* explicit left-to-right fold: recording is positional *)
    let step rev_instrs (i : Instr.t) =
      let i' =
        match (key_of i, Instr.defs i) with
        | Some key, [ d ] -> (
          match Hashtbl.find_opt table key with
          | Some r
            when r <> d
                 && stable_in_scope ~use_block:block_id r
                 && List.for_all (operand_ok ~use_block:block_id) (snd key) ->
            incr replaced;
            { i with Instr.op = Instr.Mov (d, Instr.Reg r) }
          | _ ->
            (* make this computation available below in the tree; the
               operands' single definitions must dominate this block or
               sit earlier in it, or the recorded value would not be
               reproducible at descendants *)
            let operand_recordable = function
              | Instr.Imm _ -> true
              | Instr.Reg r -> (
                match Hashtbl.find_opt stable r with
                | Some def_block ->
                  (def_block = block_id && Hashtbl.mem defined_here r)
                  || def_block <> block_id
                     && Dominators.dominates dom def_block block_id
                | None -> false)
            in
            if
              Hashtbl.mem stable d
              && List.for_all operand_recordable (snd key)
              && not (Hashtbl.mem table key)
            then begin
              Hashtbl.replace table key d;
              added := key :: !added
            end;
            i)
        | _ -> i
      in
      List.iter (fun d -> Hashtbl.replace defined_here d ()) (Instr.defs i');
      i' :: rev_instrs
    in
    let instrs = List.rev (List.fold_left step [] b.Block.instrs) in
    Cfg.set_block cfg { b with Block.instrs };
    List.iter visit
      (List.sort compare
         (IntMap.find_or ~default:[] block_id (Dominators.children dom)));
    (* pop this block's scope *)
    List.iter (Hashtbl.remove table) !added
  in
  visit cfg.Cfg.entry;
  !replaced
