(* Dead-code elimination within a block.

   A backward pass over the instruction list with a liveness set seeded
   from [live_out] and the registers the block's exits read.  Stores are
   always live.  Predication discipline: only an *unguarded* definition
   kills its register; a guarded definition keeps the register live below
   it (the incoming value may flow through). *)

open Trips_ir

(** Remove instructions of [b] whose results are never observed, given
    the registers live when the block exits. *)
let run (b : Block.t) ~live_out : Block.t =
  let live = ref (IntSet.union live_out (Block.exit_uses b)) in
  let keep_instr (i : Instr.t) =
    let defs = Instr.defs i in
    let needed =
      Instr.has_side_effect i
      || List.exists (fun d -> IntSet.mem d !live) defs
    in
    if needed then begin
      (match i.Instr.guard with
      | None -> List.iter (fun d -> live := IntSet.remove d !live) defs
      | Some _ -> ());
      List.iter (fun u -> live := IntSet.add u !live) (Instr.uses i);
      true
    end
    else false
  in
  let instrs = List.rev (List.filter keep_instr (List.rev b.Block.instrs)) in
  { b with Block.instrs }
