(* Register allocation for TRIPS.

   Only values live across a block boundary occupy architectural
   registers — intra-block values travel on the operand network in target
   form.  The allocator therefore:

   1. computes boundary liveness;
   2. builds an interference graph whose nodes are the cross-block
      virtual registers, with an edge when two values are simultaneously
      live at some block boundary;
   3. greedily colors nodes (highest degree first) onto the 128
      architectural registers; picking the lowest free color interleaves
      values across the four banks since bank = register mod 4;
   4. rewrites the CFG, renaming colored virtuals to architectural ids
      (block-local temporaries keep their virtual names);
   5. reports, per block, any bank read/write budget violations, which
      the back-end driver repairs by reverse if-conversion.

   With 128 registers and kernel-sized functions true spills are rare
   (the paper says the same); if coloring ever needs more than 128
   colors, [Out_of_registers] is raised and the driver splits the
   worst block and retries. *)

open Trips_ir
open Trips_analysis

exception Out_of_registers

type result = {
  mapping : int IntMap.t;  (* virtual -> architectural *)
  cross_block_values : int;
}

(* Virtual registers live at any block boundary. *)
let boundary_values cfg live =
  List.fold_left
    (fun acc id ->
      IntSet.union acc
        (IntSet.union (Liveness.live_in live id) (Liveness.live_out live id)))
    IntSet.empty (Cfg.block_ids cfg)

(* Interference: one clique per block over live-in UNION live-out UNION
   the block's definitions.  The live-in/live-out union (rather than two
   separate boundary cliques) makes a value defined mid-block conflict
   with a live-in value that is still read after the definition point;
   including *all* definitions matters because under the refined
   predication-aware liveness a guarded definition can be dead (its value
   provably unobservable) yet it still physically writes its register, so
   it must not share a home with anything live in the block.  With 128
   registers the conservatism is harmless.  All boundary-live registers
   participate, so already-allocated architectural registers (from a
   previous round, when allocation repeats after reverse if-conversion)
   act as precolored nodes. *)
let interference cfg live =
  let edges : (int, IntSet.t) Hashtbl.t = Hashtbl.create 64 in
  let add a b =
    if a <> b then
      Hashtbl.replace edges a
        (IntSet.add b (Option.value ~default:IntSet.empty (Hashtbl.find_opt edges a)))
  in
  let clique set =
    IntSet.iter (fun a -> IntSet.iter (fun b -> add a b) set) set
  in
  List.iter
    (fun id ->
      let b = Cfg.block cfg id in
      clique
        (IntSet.union (Block.defs b)
           (IntSet.union (Liveness.live_in live id) (Liveness.live_out live id))))
    (Cfg.block_ids cfg);
  edges

let color values edges =
  let degree r =
    IntSet.cardinal
      (Option.value ~default:IntSet.empty (Hashtbl.find_opt edges r))
  in
  let order =
    List.sort
      (fun a b ->
        match compare (degree b) (degree a) with 0 -> compare a b | c -> c)
      (IntSet.elements values)
  in
  let assignment = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let neighbors =
        Option.value ~default:IntSet.empty (Hashtbl.find_opt edges r)
      in
      let taken =
        IntSet.fold
          (fun n acc ->
            if Machine.is_arch n then IntSet.add n acc  (* precolored *)
            else
              match Hashtbl.find_opt assignment n with
              | Some c -> IntSet.add c acc
              | None -> acc)
          neighbors IntSet.empty
      in
      let rec first_free c =
        if c >= Machine.num_arch_regs then raise Out_of_registers
        else if IntSet.mem c taken then first_free (c + 1)
        else c
      in
      Hashtbl.replace assignment r (first_free 0))
    order;
  assignment

let rewrite cfg mapping =
  let rename r = IntMap.find_or ~default:r r mapping in
  List.iter
    (fun id ->
      let b = Cfg.block cfg id in
      let instrs = List.map (Instr.map_regs rename) b.Block.instrs in
      let exits =
        List.map
          (fun (e : Block.exit_) ->
            let eguard =
              Option.map
                (fun g -> { g with Instr.greg = rename g.Instr.greg })
                e.Block.eguard
            in
            let target =
              match e.Block.target with
              | Block.Ret (Some (Instr.Reg r)) ->
                Block.Ret (Some (Instr.Reg (rename r)))
              | t -> t
            in
            { Block.eguard; target })
          b.Block.exits
      in
      Cfg.set_block cfg { b with Block.instrs; exits })
    (Cfg.block_ids cfg)

(** Allocate architectural registers; rewrites the CFG in place. *)
let run cfg : result =
  let live = Liveness.compute cfg in
  let values =
    IntSet.filter
      (fun r -> not (Machine.is_arch r))
      (boundary_values cfg live)
  in
  let edges = interference cfg live in
  let assignment = color values edges in
  let mapping =
    Hashtbl.fold (fun r c acc -> IntMap.add r c acc) assignment IntMap.empty
  in
  rewrite cfg mapping;
  { mapping; cross_block_values = IntSet.cardinal values }

(* ---- bank-budget checking --------------------------------------------- *)

type violation = { block : int; reads_over : int; writes_over : int }

(* Reads/writes of *architectural* registers per bank for one block. *)
let bank_pressure cfg live id =
  let b = Cfg.block cfg id in
  let arch s = IntSet.filter Machine.is_arch s in
  let reads =
    arch (Liveness.block_inputs b ~live_out:(Liveness.live_out live id))
  in
  let writes =
    arch (IntSet.inter (Block.defs b) (Liveness.live_out live id))
  in
  let per_bank s =
    let a = Array.make Machine.num_banks 0 in
    IntSet.iter (fun r -> a.(Machine.bank_of r) <- a.(Machine.bank_of r) + 1) s;
    a
  in
  (per_bank reads, per_bank writes)

(** Blocks whose per-bank read or write counts exceed the TRIPS budget
    after allocation. *)
let violations cfg : violation list =
  let live = Liveness.compute cfg in
  List.filter_map
    (fun id ->
      let reads, writes = bank_pressure cfg live id in
      let over a limit =
        Array.fold_left (fun acc n -> acc + max 0 (n - limit)) 0 a
      in
      let r = over reads Machine.max_reads_per_bank in
      let w = over writes Machine.max_writes_per_bank in
      if r > 0 || w > 0 then Some { block = id; reads_over = r; writes_over = w }
      else None)
    (Cfg.block_ids cfg)
