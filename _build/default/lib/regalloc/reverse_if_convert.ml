(* Reverse if-conversion (block splitting).

   When a block violates a structural constraint after register
   allocation — typically a bank's read or write budget — the compiler
   splits it and repeats allocation (paper Section 6).  The mechanics
   live in Trips_transform.Split; this module is the back end's entry
   point. *)

(** Split block [id] roughly in half.  Returns the id of the new second
    block, or [None] if the block is too small to split. *)
let split_block cfg id = Trips_transform.Split.split_block cfg id
