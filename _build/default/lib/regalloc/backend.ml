(* Back-end driver: register allocation, reverse if-conversion on
   constraint violations, then fanout insertion — the lower half of the
   compiler flow in Figure 6 of the paper. *)

open Trips_ir

type report = {
  mapping : int IntMap.t;  (* original virtual register -> architectural *)
  cross_block_values : int;
  splits : int;  (* blocks split by reverse if-conversion *)
  fanout_movs : int;
  rounds : int;  (* allocation rounds run *)
}

(** Run the back end on a formed CFG, in place.  Returns the allocation
    report; the [mapping] lets callers translate front-end register names
    (e.g. kernel parameters) to their architectural homes. *)
let run ?(max_rounds = 8) cfg : report =
  let splits = ref 0 in
  let rec allocate mapping round =
    let result = Reg_alloc.run cfg in
    (* compose: earlier names may map through this round's renaming *)
    let mapping =
      IntMap.map
        (fun v -> IntMap.find_or ~default:v v result.Reg_alloc.mapping)
        mapping
      |> IntMap.union (fun _ a _ -> Some a) result.Reg_alloc.mapping
    in
    match Reg_alloc.violations cfg with
    | [] -> (mapping, result.Reg_alloc.cross_block_values, round)
    | viols when round < max_rounds ->
      List.iter
        (fun (v : Reg_alloc.violation) ->
          match Reverse_if_convert.split_block cfg v.Reg_alloc.block with
          | Some _ -> incr splits
          | None -> ())
        viols;
      allocate mapping (round + 1)
    | viols ->
      (* give up: report rather than loop; the cycle model still runs *)
      Logs.warn (fun m ->
          m "%s: %d bank violations remain after %d allocation rounds"
            cfg.Cfg.name (List.length viols) round);
      (mapping, result.Reg_alloc.cross_block_values, round)
  in
  let mapping, cross_block_values, rounds = allocate IntMap.empty 1 in
  let fanout_movs = Fanout.run cfg in
  Cfg.validate cfg;
  { mapping; cross_block_values; splits = !splits; fanout_movs; rounds }
