(** Reverse if-conversion (block splitting).

    When a block violates a structural constraint after register
    allocation — typically a bank's read or write budget — the compiler
    splits it and repeats allocation (paper Section 6).  The first half
    gets a single unconditional exit to a new block holding the second
    half and all original exits; values crossing the split become
    block-boundary values. *)

open Trips_ir

val split_block : Cfg.t -> int -> int option
(** Split a block roughly in half; returns the new second block's id, or
    [None] if the block is too small to split. *)
