(** TRIPS assembly emission.

    Renders post-allocation code in a TASL-like textual form that makes
    the EDGE execution model explicit: each block opens with its register
    read instructions, closes with its write instructions and predicated
    branches, and every producer names its consumers in target form — the
    block's dataflow graph is literally visible.  A faithful
    pretty-printer for auditing block structure, not a binary encoder. *)

open Trips_ir

val emit_block :
  Format.formatter -> Cfg.t -> Trips_analysis.Liveness.t -> Block.t -> unit

val emit : Format.formatter -> Cfg.t -> unit
val to_string : Cfg.t -> string
