(** Register allocation for TRIPS.

    Only values live across a block boundary occupy architectural
    registers — intra-block values travel on the operand network in
    target form.  Boundary-live virtual registers are colored greedily
    onto the 128 architectural registers over per-block interference
    cliques (live-in ∪ live-out ∪ block definitions, so even dead
    guarded definitions cannot clobber a live neighbor); picking the
    lowest free color interleaves values across the four banks.
    Architectural registers from a previous round act as precolored
    nodes when allocation repeats after reverse if-conversion. *)

open Trips_ir

exception Out_of_registers

type result = {
  mapping : int IntMap.t;  (** virtual -> architectural *)
  cross_block_values : int;
}

val run : Cfg.t -> result
(** Allocate and rewrite the CFG in place.
    @raise Out_of_registers if more than 128 values interfere. *)

type violation = { block : int; reads_over : int; writes_over : int }

val violations : Cfg.t -> violation list
(** Blocks whose per-bank read or write counts exceed the TRIPS budget
    after allocation; the back-end driver repairs them by reverse
    if-conversion. *)
