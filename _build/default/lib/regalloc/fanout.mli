(** Fanout insertion.

    A TRIPS instruction encodes at most {!Trips_ir.Machine.max_targets}
    explicit consumers; a value with more consumers needs a tree of mov
    instructions.  This pass runs after register allocation (paper
    Figure 6) and rewrites surplus intra-block consumers to read fresh
    copies arranged as a balanced tree (logarithmic added latency).
    The inserted movs are unguarded, so every consumer observes exactly
    the value it would have read from the original register. *)

open Trips_ir

val run : Cfg.t -> int
(** Insert fanout movs in every block; returns how many were added. *)
