(* TRIPS assembly emission.

   Renders post-allocation code in a TASL-like textual form that makes
   the EDGE execution model explicit: each block opens with its register
   *read* instructions, closes with its *write* instructions and
   predicated branches, and every producer names its consumers in target
   form ("-> I[5].op1") instead of writing a shared register — the
   block's dataflow graph is literally visible.

   The emitter is a faithful pretty-printer, not an encoder: the goal is
   letting a TRIPS-literate reader audit block structure (instruction
   count, read/write/load-store budgets, predicate usage) the way the
   paper's compiler emitted TRIPS assembly for its scheduler. *)

open Trips_ir
open Trips_analysis

(* Consumers of each instruction index's definitions: for every operand
   read, find the producing instruction (last def before the reader);
   reads with no in-block producer come from a register read. *)
let dataflow_targets (b : Block.t) =
  let n = List.length b.Block.instrs in
  let instrs = Array.of_list b.Block.instrs in
  let targets = Array.make n [] in
  (* last def position of each register, scanning forward *)
  let last_def : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let producer_of = Array.make n [] in
  Array.iteri
    (fun k (i : Instr.t) ->
      let sources =
        List.filter_map
          (fun r -> Option.map (fun p -> (r, p)) (Hashtbl.find_opt last_def r))
          (Instr.uses i)
      in
      producer_of.(k) <- sources;
      List.iter
        (fun (_, p) -> targets.(p) <- k :: targets.(p))
        sources;
      List.iter (fun d -> Hashtbl.replace last_def d k) (Instr.defs i))
    instrs;
  (targets, last_def)

let operand_str = function
  | Instr.Reg r when Machine.is_arch r -> Printf.sprintf "G%d" r
  | Instr.Reg r -> Printf.sprintf "t%d" r
  | Instr.Imm n -> Printf.sprintf "#%d" n

let guard_str = function
  | None -> ""
  | Some g ->
    Printf.sprintf "_%c<%s>" (if g.Instr.sense then 't' else 'f')
      (operand_str (Instr.Reg g.Instr.greg))

let op_mnemonic (i : Instr.t) =
  match i.Instr.op with
  | Instr.Binop (op, _, _, _) -> Opcode.binop_to_string op
  | Instr.Cmp (op, _, _, _) -> Opcode.cmpop_to_string op
  | Instr.Mov (_, Instr.Imm _) -> "movi"
  | Instr.Mov (_, _) -> "mov"
  | Instr.Load _ -> "lw"
  | Instr.Store _ -> "sw"
  | Instr.Nullw _ -> "null"

let op_operands (i : Instr.t) =
  match i.Instr.op with
  | Instr.Binop (_, d, a, b) | Instr.Cmp (_, d, a, b) ->
    Printf.sprintf "%s, %s, %s" (operand_str (Instr.Reg d)) (operand_str a)
      (operand_str b)
  | Instr.Mov (d, a) ->
    Printf.sprintf "%s, %s" (operand_str (Instr.Reg d)) (operand_str a)
  | Instr.Load (d, a, off) ->
    Printf.sprintf "%s, %d(%s)" (operand_str (Instr.Reg d)) off (operand_str a)
  | Instr.Store (v, a, off) ->
    Printf.sprintf "%s, %d(%s)" (operand_str v) off (operand_str a)
  | Instr.Nullw r -> operand_str (Instr.Reg r)

(** Emit one block. *)
let emit_block fmt (cfg : Cfg.t) (live : Liveness.t) (b : Block.t) =
  let live_out = Liveness.live_out live b.Block.id in
  let inputs =
    IntSet.filter Machine.is_arch (Liveness.block_inputs b ~live_out)
  in
  let outputs =
    IntSet.filter Machine.is_arch (IntSet.inter (Block.defs b) live_out)
  in
  let targets, _ = dataflow_targets b in
  Fmt.pf fmt ".bbegin %s$b%d@." cfg.Cfg.name b.Block.id;
  (* register reads *)
  List.iteri
    (fun k r -> Fmt.pf fmt "  R[%d]  read  G%d@." k r)
    (IntSet.elements inputs);
  (* regular instructions, with explicit dataflow targets *)
  List.iteri
    (fun k (i : Instr.t) ->
      let tgt =
        match List.sort_uniq compare targets.(k) with
        | [] -> ""
        | l ->
          "  -> "
          ^ String.concat ", " (List.map (Printf.sprintf "I[%d]") l)
      in
      Fmt.pf fmt "  I[%d]  %s%s  %s%s@." k (op_mnemonic i) (guard_str i.Instr.guard)
        (op_operands i) tgt)
    b.Block.instrs;
  (* register writes (block outputs) *)
  List.iteri
    (fun k r -> Fmt.pf fmt "  W[%d]  write G%d@." k r)
    (IntSet.elements outputs);
  (* predicated branches *)
  List.iteri
    (fun k (e : Block.exit_) ->
      let dest =
        match e.Block.target with
        | Block.Goto d -> Printf.sprintf "%s$b%d" cfg.Cfg.name d
        | Block.Ret _ -> "$ret"
      in
      Fmt.pf fmt "  B[%d]  bro%s  %s@." k (guard_str e.Block.eguard) dest)
    b.Block.exits;
  Fmt.pf fmt ".bend  ; %d instrs, %d reads, %d writes, %d load/store@.@."
    (Block.size b) (IntSet.cardinal inputs) (IntSet.cardinal outputs)
    (Block.num_load_store b)

(** Emit the whole function in TASL-like form. *)
let emit fmt (cfg : Cfg.t) =
  let live = Liveness.compute cfg in
  Fmt.pf fmt ";;; TRIPS assembly for %s (%d blocks)@.@." cfg.Cfg.name
    (Cfg.num_blocks cfg);
  Cfg.iter_blocks (fun b -> emit_block fmt cfg live b) cfg

(** Emit to a string. *)
let to_string cfg = Fmt.str "%a" emit cfg
