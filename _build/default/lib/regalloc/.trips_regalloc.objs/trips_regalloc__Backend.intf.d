lib/regalloc/backend.mli: Cfg IntMap Trips_ir
