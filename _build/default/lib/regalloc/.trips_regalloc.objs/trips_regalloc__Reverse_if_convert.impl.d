lib/regalloc/reverse_if_convert.ml: Trips_transform
