lib/regalloc/fanout.ml: Array Block Cfg Hashtbl Instr IntSet List Machine Trips_ir
