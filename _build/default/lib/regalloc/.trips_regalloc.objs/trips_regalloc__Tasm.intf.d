lib/regalloc/tasm.mli: Block Cfg Format Trips_analysis Trips_ir
