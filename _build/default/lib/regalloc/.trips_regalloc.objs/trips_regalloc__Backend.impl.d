lib/regalloc/backend.ml: Cfg Fanout IntMap List Logs Reg_alloc Reverse_if_convert Trips_ir
