lib/regalloc/reg_alloc.mli: Cfg IntMap Trips_ir
