lib/regalloc/reverse_if_convert.mli: Cfg Trips_ir
