lib/regalloc/fanout.mli: Cfg Trips_ir
