lib/regalloc/reg_alloc.ml: Array Block Cfg Hashtbl Instr IntMap IntSet List Liveness Machine Option Trips_analysis Trips_ir
