lib/regalloc/tasm.ml: Array Block Cfg Fmt Hashtbl Instr IntSet List Liveness Machine Opcode Option Printf String Trips_analysis Trips_ir
