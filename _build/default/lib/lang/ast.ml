(* Abstract syntax of the mini language in which workloads are written.

   The language is a small imperative subset (assignments, loads/stores to
   a flat word memory, if/while/do-while/for, break, return) — just enough
   to express the loop-and-branch kernels the paper extracts from SPEC,
   GMTI and Dhrystone.  Functions are written pre-inlined, mirroring the
   Scale pipeline where inlining runs before everything else. *)

open Trips_ir

type expr =
  | Int of int
  | Var of string
  | Load of expr  (* mem[e] *)
  | Binop of Opcode.binop * expr * expr
  | Cmp of Opcode.cmpop * expr * expr
  | Not of expr  (* logical: 1 when e = 0 *)
  | And of expr * expr  (* logical, non-short-circuit, yields 0/1 *)
  | Or of expr * expr
  | Call of string * expr list
      (* call to another kernel in the same compilation unit; the
         front-end inliner eliminates every call before lowering *)

type stmt =
  | Assign of string * expr
  | Store of expr * expr  (* mem[e1] <- e2 *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | DoWhile of stmt list * expr  (* body; repeat while expr *)
  | For of for_loop
  | Break  (* exit the innermost enclosing loop *)
  | Return of expr option

and for_loop = {
  var : string;
  lo : expr;  (* evaluated once at entry *)
  hi : expr;  (* evaluated once at entry; loop runs while var < hi *)
  step : int;  (* positive literal step *)
  body : stmt list;
}

type program = {
  prog_name : string;
  params : string list;  (* bound to fresh registers at function entry *)
  body : stmt list;
}

(* A compilation unit: several kernels, the last of which is the entry
   point (mirroring a C file whose main calls helpers).  The inliner
   flattens a unit into a single program. *)
type compilation_unit = { kernels : program list; entry : string }

(* -- convenience constructors, so kernels read almost like C ----------- *)

let ( + ) a b = Binop (Opcode.Add, a, b)
let ( - ) a b = Binop (Opcode.Sub, a, b)
let ( * ) a b = Binop (Opcode.Mul, a, b)
let ( / ) a b = Binop (Opcode.Div, a, b)
let ( % ) a b = Binop (Opcode.Rem, a, b)
let ( <<< ) a b = Binop (Opcode.Shl, a, b)
let ( >>> ) a b = Binop (Opcode.Asr, a, b)
let ( &&& ) a b = Binop (Opcode.And, a, b)
let ( ||| ) a b = Binop (Opcode.Or, a, b)
let ( ^^^ ) a b = Binop (Opcode.Xor, a, b)
let ( = ) a b = Cmp (Opcode.Eq, a, b)
let ( <> ) a b = Cmp (Opcode.Ne, a, b)
let ( < ) a b = Cmp (Opcode.Lt, a, b)
let ( <= ) a b = Cmp (Opcode.Le, a, b)
let ( > ) a b = Cmp (Opcode.Gt, a, b)
let ( >= ) a b = Cmp (Opcode.Ge, a, b)
let i n = Int n
let v x = Var x
let mem e = Load e
let ( <-- ) x e = Assign (x, e)

let for_ var lo hi ?(step = 1) body = For { var; lo; hi; step; body }

(* -- traversal helpers -------------------------------------------------- *)

let rec map_stmts f stmts = List.concat_map (map_stmt f) stmts

and map_stmt f s =
  match f s with
  | Some replacement -> replacement
  | None -> (
    match s with
    | If (c, t, e) -> [ If (c, map_stmts f t, map_stmts f e) ]
    | While (c, b) -> [ While (c, map_stmts f b) ]
    | DoWhile (b, c) -> [ DoWhile (map_stmts f b, c) ]
    | For l -> [ For { l with body = map_stmts f l.body } ]
    | Assign _ | Store _ | Break | Return _ -> [ s ])

let rec stmt_contains_loop = function
  | While _ | DoWhile _ | For _ -> true
  | If (_, t, e) -> List.exists stmt_contains_loop t || List.exists stmt_contains_loop e
  | Assign _ | Store _ | Break | Return _ -> false

let rec stmt_contains_break = function
  | Break -> true
  | If (_, t, e) ->
    List.exists stmt_contains_break t || List.exists stmt_contains_break e
  | While _ | DoWhile _ | For _ -> false  (* break binds to the inner loop *)
  | Assign _ | Store _ | Return _ -> false

let rec stmt_contains_return = function
  | Return _ -> true
  | If (_, t, e) ->
    List.exists stmt_contains_return t || List.exists stmt_contains_return e
  | While (_, b) | DoWhile (b, _) -> List.exists stmt_contains_return b
  | For l -> List.exists stmt_contains_return l.body
  | Assign _ | Store _ | Break -> false

(* -- pretty printing ---------------------------------------------------- *)

let rec pp_expr fmt = function
  | Int n -> Fmt.int fmt n
  | Var x -> Fmt.string fmt x
  | Load e -> Fmt.pf fmt "mem[%a]" pp_expr e
  | Binop (op, a, b) ->
    Fmt.pf fmt "(%a %s %a)" pp_expr a (Opcode.binop_to_string op) pp_expr b
  | Cmp (op, a, b) ->
    Fmt.pf fmt "(%a %s %a)" pp_expr a (Opcode.cmpop_to_string op) pp_expr b
  | Not e -> Fmt.pf fmt "!%a" pp_expr e
  | And (a, b) -> Fmt.pf fmt "(%a && %a)" pp_expr a pp_expr b
  | Or (a, b) -> Fmt.pf fmt "(%a || %a)" pp_expr a pp_expr b
  | Call (f, args) ->
    Fmt.pf fmt "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args

let rec pp_stmt fmt = function
  | Assign (x, e) -> Fmt.pf fmt "%s = %a;" x pp_expr e
  | Store (a, e) -> Fmt.pf fmt "mem[%a] = %a;" pp_expr a pp_expr e
  | If (c, t, []) -> Fmt.pf fmt "@[<v 2>if %a {%a@]@,}" pp_expr c pp_body t
  | If (c, t, e) ->
    Fmt.pf fmt "@[<v 2>if %a {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr c pp_body
      t pp_body e
  | While (c, b) -> Fmt.pf fmt "@[<v 2>while %a {%a@]@,}" pp_expr c pp_body b
  | DoWhile (b, c) -> Fmt.pf fmt "@[<v 2>do {%a@]@,} while %a;" pp_body b pp_expr c
  | For l ->
    Fmt.pf fmt "@[<v 2>for (%s = %a; %s < %a; %s += %d) {%a@]@,}" l.var
      pp_expr l.lo l.var pp_expr l.hi l.var l.step pp_body l.body
  | Break -> Fmt.string fmt "break;"
  | Return None -> Fmt.string fmt "return;"
  | Return (Some e) -> Fmt.pf fmt "return %a;" pp_expr e

and pp_body fmt stmts = List.iter (fun s -> Fmt.pf fmt "@,%a" pp_stmt s) stmts

let pp_program fmt p =
  Fmt.pf fmt "@[<v 2>%s(%a) {%a@]@,}" p.prog_name
    Fmt.(list ~sep:comma string)
    p.params pp_body p.body
