(* A hand-written lexer and recursive-descent parser for the mini
   language's concrete syntax, so kernels can live in plain text files
   and be compiled by the chfc driver:

     kernel collatz(n) {
       steps = 0;
       while (n != 1) {
         if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
         steps = steps + 1;
       }
       return steps;
     }

   Statements: assignment, mem[e] = e, if/else, while (e) {...},
   do {...} while (e), for (x = e; x < e; x += k) {...}, break,
   return e.  Expressions: integer literals, variables, mem[e],
   arithmetic (+ - * / % << >> & | ^), comparisons (== != < <= > >=),
   logical (&& || !), parentheses.  Line comments start with '#' or
   '//'.  Operator precedence follows C. *)

open Trips_ir

exception Parse_error of string

type token =
  | INT of int
  | IDENT of string
  | KW of string  (* kernel if else while do for break return mem *)
  | OP of string
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | EOF

let keywords = [ "kernel"; "if"; "else"; "while"; "do"; "for"; "break"; "return"; "mem" ]

let error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ---- lexer ------------------------------------------------------------- *)

let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit t = toks := (t, !line) :: !toks in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
  in
  let is_ident c = is_ident_start c || is_digit c in
  let rec go i =
    if i >= n then emit EOF
    else
      match src.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
        incr line;
        go (i + 1)
      | '#' -> skip_line (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' -> skip_line (i + 2)
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | '[' -> emit LBRACKET; go (i + 1)
      | ']' -> emit RBRACKET; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | c when is_digit c ->
        let j = ref i in
        while !j < n && is_digit src.[!j] do incr j done;
        emit (INT (int_of_string (String.sub src i (!j - i))));
        go !j
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident src.[!j] do incr j done;
        let word = String.sub src i (!j - i) in
        emit (if List.mem word keywords then KW word else IDENT word);
        go !j
      | _ ->
        (* multi-character operators, longest first *)
        let three = if i + 2 < n then String.sub src i 3 else "" in
        if three = ">>>" then begin
          emit (OP ">>>");
          go (i + 3)
        end
        else
        let two = if i + 1 < n then String.sub src i 2 else "" in
        let ops2 = [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+=" ] in
        if List.mem two ops2 then begin
          emit (OP two);
          go (i + 2)
        end
        else
          let one = String.make 1 src.[i] in
          let ops1 = [ "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!"; "&"; "|"; "^" ] in
          if List.mem one ops1 then begin
            emit (OP one);
            go (i + 1)
          end
          else error "line %d: unexpected character %C" !line src.[i]
  and skip_line i =
    if i >= n then emit EOF
    else if src.[i] = '\n' then begin
      incr line;
      go (i + 1)
    end
    else skip_line (i + 1)
  in
  go 0;
  List.rev !toks

(* ---- parser ------------------------------------------------------------ *)

type stream = { mutable toks : (token * int) list }

let peek s = match s.toks with (t, _) :: _ -> t | [] -> EOF
let line_of s = match s.toks with (_, l) :: _ -> l | [] -> 0
let advance s = match s.toks with _ :: rest -> s.toks <- rest | [] -> ()

let describe = function
  | INT n -> string_of_int n
  | IDENT x -> x
  | KW k -> k
  | OP o -> o
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | EOF -> "end of input"

let expect s t =
  if peek s = t then advance s
  else error "line %d: expected %s, found %s" (line_of s) (describe t)
      (describe (peek s))

let expect_ident s =
  match peek s with
  | IDENT x -> advance s; x
  | t -> error "line %d: expected identifier, found %s" (line_of s) (describe t)

(* expression parsing with C-like precedence climbing *)
let rec parse_expr s = parse_or s

and parse_or s =
  let lhs = parse_and s in
  if peek s = OP "||" then begin
    advance s;
    Ast.Or (lhs, parse_or s)
  end
  else lhs

and parse_and s =
  let lhs = parse_bitor s in
  if peek s = OP "&&" then begin
    advance s;
    Ast.And (lhs, parse_and s)
  end
  else lhs

and parse_bitor s =
  let rec loop lhs =
    match peek s with
    | OP "|" -> advance s; loop (Ast.Binop (Opcode.Or, lhs, parse_bitxor s))
    | _ -> lhs
  in
  loop (parse_bitxor s)

and parse_bitxor s =
  let rec loop lhs =
    match peek s with
    | OP "^" -> advance s; loop (Ast.Binop (Opcode.Xor, lhs, parse_bitand s))
    | _ -> lhs
  in
  loop (parse_bitand s)

and parse_bitand s =
  let rec loop lhs =
    match peek s with
    | OP "&" -> advance s; loop (Ast.Binop (Opcode.And, lhs, parse_cmp s))
    | _ -> lhs
  in
  loop (parse_cmp s)

and parse_cmp s =
  let lhs = parse_shift s in
  let op o = advance s; Ast.Cmp (o, lhs, parse_shift s) in
  match peek s with
  | OP "==" -> op Opcode.Eq
  | OP "!=" -> op Opcode.Ne
  | OP "<" -> op Opcode.Lt
  | OP "<=" -> op Opcode.Le
  | OP ">" -> op Opcode.Gt
  | OP ">=" -> op Opcode.Ge
  | _ -> lhs

and parse_shift s =
  let rec loop lhs =
    match peek s with
    | OP "<<" -> advance s; loop (Ast.Binop (Opcode.Shl, lhs, parse_add s))
    | OP ">>>" -> advance s; loop (Ast.Binop (Opcode.Shr, lhs, parse_add s))
    | OP ">>" -> advance s; loop (Ast.Binop (Opcode.Asr, lhs, parse_add s))
    | _ -> lhs
  in
  loop (parse_add s)

and parse_add s =
  let rec loop lhs =
    match peek s with
    | OP "+" -> advance s; loop (Ast.Binop (Opcode.Add, lhs, parse_mul s))
    | OP "-" -> advance s; loop (Ast.Binop (Opcode.Sub, lhs, parse_mul s))
    | _ -> lhs
  in
  loop (parse_mul s)

and parse_mul s =
  let rec loop lhs =
    match peek s with
    | OP "*" -> advance s; loop (Ast.Binop (Opcode.Mul, lhs, parse_unary s))
    | OP "/" -> advance s; loop (Ast.Binop (Opcode.Div, lhs, parse_unary s))
    | OP "%" -> advance s; loop (Ast.Binop (Opcode.Rem, lhs, parse_unary s))
    | _ -> lhs
  in
  loop (parse_unary s)

and parse_unary s =
  match peek s with
  | OP "!" ->
    advance s;
    Ast.Not (parse_unary s)
  | OP "-" -> (
    advance s;
    match peek s with
    | INT n ->
      advance s;
      Ast.Int (-n)
    | _ -> Ast.Binop (Opcode.Sub, Ast.Int 0, parse_unary s))
  | _ -> parse_primary s

and parse_primary s =
  match peek s with
  | INT n ->
    advance s;
    Ast.Int n
  | IDENT x -> (
    advance s;
    match peek s with
    | LPAREN ->
      advance s;
      let rec args acc =
        match peek s with
        | RPAREN ->
          advance s;
          List.rev acc
        | _ ->
          let e = parse_expr s in
          if peek s = COMMA then advance s;
          args (e :: acc)
      in
      Ast.Call (x, args [])
    | _ -> Ast.Var x)
  | KW "mem" ->
    advance s;
    expect s LBRACKET;
    let e = parse_expr s in
    expect s RBRACKET;
    Ast.Load e
  | LPAREN ->
    advance s;
    let e = parse_expr s in
    expect s RPAREN;
    e
  | t -> error "line %d: expected expression, found %s" (line_of s) (describe t)

(* statements *)
let rec parse_block s =
  expect s LBRACE;
  let rec loop acc =
    if peek s = RBRACE then begin
      advance s;
      List.rev acc
    end
    else loop (parse_stmt s :: acc)
  in
  loop []

and parse_stmt s : Ast.stmt =
  match peek s with
  | KW "if" ->
    advance s;
    expect s LPAREN;
    let c = parse_expr s in
    expect s RPAREN;
    let then_branch = parse_block s in
    let else_branch =
      if peek s = KW "else" then begin
        advance s;
        if peek s = KW "if" then [ parse_stmt s ] else parse_block s
      end
      else []
    in
    Ast.If (c, then_branch, else_branch)
  | KW "while" ->
    advance s;
    expect s LPAREN;
    let c = parse_expr s in
    expect s RPAREN;
    Ast.While (c, parse_block s)
  | KW "do" ->
    advance s;
    let body = parse_block s in
    expect s (KW "while");
    expect s LPAREN;
    let c = parse_expr s in
    expect s RPAREN;
    expect s SEMI;
    Ast.DoWhile (body, c)
  | KW "for" ->
    (* for (x = lo; x < hi; x += step) { ... } *)
    advance s;
    expect s LPAREN;
    let var = expect_ident s in
    expect s (OP "=");
    let lo = parse_expr s in
    expect s SEMI;
    let var2 = expect_ident s in
    if var2 <> var then
      error "line %d: for-loop tests %s but initializes %s" (line_of s) var2 var;
    expect s (OP "<");
    let hi = parse_expr s in
    expect s SEMI;
    let var3 = expect_ident s in
    if var3 <> var then
      error "line %d: for-loop steps %s but initializes %s" (line_of s) var3 var;
    expect s (OP "+=");
    let step =
      match peek s with
      | INT k ->
        advance s;
        k
      | t -> error "line %d: for-loop step must be a positive literal, found %s"
               (line_of s) (describe t)
    in
    expect s RPAREN;
    let body = parse_block s in
    Ast.For { var; lo; hi; step; body }
  | KW "break" ->
    advance s;
    expect s SEMI;
    Ast.Break
  | KW "return" ->
    advance s;
    if peek s = SEMI then begin
      advance s;
      Ast.Return None
    end
    else begin
      let e = parse_expr s in
      expect s SEMI;
      Ast.Return (Some e)
    end
  | KW "mem" ->
    advance s;
    expect s LBRACKET;
    let addr = parse_expr s in
    expect s RBRACKET;
    expect s (OP "=");
    let v = parse_expr s in
    expect s SEMI;
    Ast.Store (addr, v)
  | IDENT x ->
    advance s;
    expect s (OP "=");
    let e = parse_expr s in
    expect s SEMI;
    Ast.Assign (x, e)
  | t -> error "line %d: expected statement, found %s" (line_of s) (describe t)

let parse_params s =
  expect s LPAREN;
  let rec loop acc =
    match peek s with
    | RPAREN ->
      advance s;
      List.rev acc
    | IDENT x ->
      advance s;
      if peek s = COMMA then advance s;
      loop (x :: acc)
    | t -> error "line %d: expected parameter name, found %s" (line_of s) (describe t)
  in
  loop []

(** Parse a kernel definition from source text. *)
let parse_program (src : string) : Ast.program =
  let s = { toks = tokenize src } in
  expect s (KW "kernel");
  let prog_name = expect_ident s in
  let params = parse_params s in
  let body = parse_block s in
  (match peek s with
  | EOF -> ()
  | t -> error "line %d: trailing input after kernel body: %s" (line_of s) (describe t));
  { Ast.prog_name; params; body }

(** Parse a compilation unit: one or more kernels; the last one is the
    entry point. *)
let parse_unit (src : string) : Ast.compilation_unit =
  let s = { toks = tokenize src } in
  let rec kernels acc =
    match peek s with
    | EOF ->
      if acc = [] then error "empty compilation unit"
      else List.rev acc
    | _ ->
      expect s (KW "kernel");
      let prog_name = expect_ident s in
      let params = parse_params s in
      let body = parse_block s in
      kernels ({ Ast.prog_name; params; body } :: acc)
  in
  let ks = kernels [] in
  { Ast.kernels = ks; entry = (List.nth ks (List.length ks - 1)).Ast.prog_name }

(** Parse a kernel from a file. *)
let parse_file path : Ast.program =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_program src

(* ---- surface printer --------------------------------------------------- *)

(* Fully parenthesized concrete syntax; [parse_program (print_program p)]
   returns [p] exactly (the round-trip property test relies on it). *)

let binop_surface = function
  | Opcode.Add -> "+"
  | Opcode.Sub -> "-"
  | Opcode.Mul -> "*"
  | Opcode.Div -> "/"
  | Opcode.Rem -> "%"
  | Opcode.And -> "&"
  | Opcode.Or -> "|"
  | Opcode.Xor -> "^"
  | Opcode.Shl -> "<<"
  | Opcode.Shr -> ">>>"
  | Opcode.Asr -> ">>"

let cmp_surface = function
  | Opcode.Eq -> "=="
  | Opcode.Ne -> "!="
  | Opcode.Lt -> "<"
  | Opcode.Le -> "<="
  | Opcode.Gt -> ">"
  | Opcode.Ge -> ">="

let rec print_expr buf (e : Ast.expr) =
  match e with
  | Ast.Int n -> Buffer.add_string buf (string_of_int n)
  | Ast.Var x -> Buffer.add_string buf x
  | Ast.Load a ->
    Buffer.add_string buf "mem[";
    print_expr buf a;
    Buffer.add_string buf "]"
  | Ast.Binop (op, a, b) ->
    Buffer.add_char buf '(';
    print_expr buf a;
    Buffer.add_string buf (" " ^ binop_surface op ^ " ");
    print_expr buf b;
    Buffer.add_char buf ')'
  | Ast.Cmp (op, a, b) ->
    Buffer.add_char buf '(';
    print_expr buf a;
    Buffer.add_string buf (" " ^ cmp_surface op ^ " ");
    print_expr buf b;
    Buffer.add_char buf ')'
  | Ast.Not a ->
    Buffer.add_string buf "!(";
    print_expr buf a;
    Buffer.add_char buf ')'
  | Ast.And (a, b) ->
    Buffer.add_char buf '(';
    print_expr buf a;
    Buffer.add_string buf " && ";
    print_expr buf b;
    Buffer.add_char buf ')'
  | Ast.Or (a, b) ->
    Buffer.add_char buf '(';
    print_expr buf a;
    Buffer.add_string buf " || ";
    print_expr buf b;
    Buffer.add_char buf ')'
  | Ast.Call (f, args) ->
    Buffer.add_string buf (f ^ "(");
    List.iteri
      (fun k a ->
        if k > 0 then Buffer.add_string buf ", ";
        print_expr buf a)
      args;
    Buffer.add_char buf ')'

let rec print_stmt buf indent (s : Ast.stmt) =
  let pad () = Buffer.add_string buf (String.make indent ' ') in
  match s with
  | Ast.Assign (x, e) ->
    pad ();
    Buffer.add_string buf (x ^ " = ");
    print_expr buf e;
    Buffer.add_string buf ";\n"
  | Ast.Store (a, e) ->
    pad ();
    Buffer.add_string buf "mem[";
    print_expr buf a;
    Buffer.add_string buf "] = ";
    print_expr buf e;
    Buffer.add_string buf ";\n"
  | Ast.If (c, t, els) ->
    pad ();
    Buffer.add_string buf "if (";
    print_expr buf c;
    Buffer.add_string buf ") {\n";
    List.iter (print_stmt buf (indent + 2)) t;
    pad ();
    if els = [] then Buffer.add_string buf "}\n"
    else begin
      Buffer.add_string buf "} else {\n";
      List.iter (print_stmt buf (indent + 2)) els;
      pad ();
      Buffer.add_string buf "}\n"
    end
  | Ast.While (c, body) ->
    pad ();
    Buffer.add_string buf "while (";
    print_expr buf c;
    Buffer.add_string buf ") {\n";
    List.iter (print_stmt buf (indent + 2)) body;
    pad ();
    Buffer.add_string buf "}\n"
  | Ast.DoWhile (body, c) ->
    pad ();
    Buffer.add_string buf "do {\n";
    List.iter (print_stmt buf (indent + 2)) body;
    pad ();
    Buffer.add_string buf "} while (";
    print_expr buf c;
    Buffer.add_string buf ");\n"
  | Ast.For { var; lo; hi; step; body } ->
    pad ();
    Buffer.add_string buf ("for (" ^ var ^ " = ");
    print_expr buf lo;
    Buffer.add_string buf ("; " ^ var ^ " < ");
    print_expr buf hi;
    Buffer.add_string buf ("; " ^ var ^ " += " ^ string_of_int step ^ ") {\n");
    List.iter (print_stmt buf (indent + 2)) body;
    pad ();
    Buffer.add_string buf "}\n"
  | Ast.Break ->
    pad ();
    Buffer.add_string buf "break;\n"
  | Ast.Return None ->
    pad ();
    Buffer.add_string buf "return;\n"
  | Ast.Return (Some e) ->
    pad ();
    Buffer.add_string buf "return ";
    print_expr buf e;
    Buffer.add_string buf ";\n"

(** Print a program in parseable concrete syntax
    ([parse_program (print_program p) = p]). *)
let print_program (p : Ast.program) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    ("kernel " ^ p.Ast.prog_name ^ "(" ^ String.concat ", " p.Ast.params
   ^ ") {\n");
  List.iter (print_stmt buf 2) p.Ast.body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
