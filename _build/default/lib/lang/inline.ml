(* Front-end inlining.

   The Scale pipeline the paper builds on runs inlining before everything
   else (Figure 6), and the paper's workloads are single inlined
   procedures.  This pass flattens a compilation unit — several kernels,
   the last being the entry point — into one program by substituting
   every call with the callee's renamed body.

   Calls may appear anywhere inside expressions; they are hoisted into
   temporaries first, left to right, with loop conditions handled by
   rotation (a while-loop condition containing a call is re-evaluated at
   the end of each iteration).  A callee is inlinable when it is
   non-recursive and returns only in tail position (the last statement of
   its body or of a trailing if/else); callees with internal control
   returns raise [Not_inlinable]. *)

exception Not_inlinable of string

let error fmt = Fmt.kstr (fun s -> raise (Not_inlinable s)) fmt

(* fresh-name supply shared across the whole flattening *)
type state = { mutable counter : int; kernels : (string, Ast.program) Hashtbl.t }

let fresh st base =
  st.counter <- st.counter + 1;
  Printf.sprintf "$i%d_%s" st.counter base

(* ---- callee preparation ------------------------------------------------ *)

(* Rename every variable of the callee with a per-inlining prefix. *)
let rec rename_expr sub (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Int _ -> e
  | Ast.Var x -> Ast.Var (sub x)
  | Ast.Load a -> Ast.Load (rename_expr sub a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, rename_expr sub a, rename_expr sub b)
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, rename_expr sub a, rename_expr sub b)
  | Ast.Not a -> Ast.Not (rename_expr sub a)
  | Ast.And (a, b) -> Ast.And (rename_expr sub a, rename_expr sub b)
  | Ast.Or (a, b) -> Ast.Or (rename_expr sub a, rename_expr sub b)
  | Ast.Call (f, args) -> Ast.Call (f, List.map (rename_expr sub) args)

let rec rename_stmt sub (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Assign (x, e) -> Ast.Assign (sub x, rename_expr sub e)
  | Ast.Store (a, e) -> Ast.Store (rename_expr sub a, rename_expr sub e)
  | Ast.If (c, t, e) ->
    Ast.If (rename_expr sub c, List.map (rename_stmt sub) t, List.map (rename_stmt sub) e)
  | Ast.While (c, b) -> Ast.While (rename_expr sub c, List.map (rename_stmt sub) b)
  | Ast.DoWhile (b, c) -> Ast.DoWhile (List.map (rename_stmt sub) b, rename_expr sub c)
  | Ast.For l ->
    Ast.For
      {
        Ast.var = sub l.Ast.var;
        lo = rename_expr sub l.Ast.lo;
        hi = rename_expr sub l.Ast.hi;
        step = l.Ast.step;
        body = List.map (rename_stmt sub) l.Ast.body;
      }
  | Ast.Break -> Ast.Break
  | Ast.Return e -> Ast.Return (Option.map (rename_expr sub) e)

(* Replace tail-position returns with assignments to [result].  Returns
   whether every path through [stmts] assigned the result. *)
let rec retarget_returns callee result (stmts : Ast.stmt list) : Ast.stmt list =
  (* non-tail returns anywhere? *)
  let check_no_return (s : Ast.stmt) =
    if Ast.stmt_contains_return s then
      error "%s: return in non-tail position prevents inlining" callee
  in
  match List.rev stmts with
  | [] -> error "%s: callee must end in a return" callee
  | last :: rev_prefix ->
    List.iter check_no_return rev_prefix;
    let last' =
      match last with
      | Ast.Return (Some e) -> [ Ast.Assign (result, e) ]
      | Ast.Return None -> [ Ast.Assign (result, Ast.Int 0) ]
      | Ast.If (c, t, e) when t <> [] && e <> [] ->
        [ Ast.If (c, retarget_returns callee result t,
                  retarget_returns callee result e) ]
      | _ -> error "%s: callee must end in a return" callee
    in
    List.rev_append rev_prefix last'

(* ---- call hoisting + expansion ----------------------------------------- *)

(* Rewrite an expression, hoisting every call into preceding statements;
   returns (prelude, call-free expression). *)
let rec hoist_expr st stack (e : Ast.expr) : Ast.stmt list * Ast.expr =
  match e with
  | Ast.Int _ | Ast.Var _ -> ([], e)
  | Ast.Load a ->
    let p, a = hoist_expr st stack a in
    (p, Ast.Load a)
  | Ast.Binop (op, a, b) ->
    let pa, a = hoist_expr st stack a in
    let pb, b = hoist_expr st stack b in
    (pa @ pb, Ast.Binop (op, a, b))
  | Ast.Cmp (op, a, b) ->
    let pa, a = hoist_expr st stack a in
    let pb, b = hoist_expr st stack b in
    (pa @ pb, Ast.Cmp (op, a, b))
  | Ast.Not a ->
    let p, a = hoist_expr st stack a in
    (p, Ast.Not a)
  | Ast.And (a, b) ->
    let pa, a = hoist_expr st stack a in
    let pb, b = hoist_expr st stack b in
    (pa @ pb, Ast.And (a, b))
  | Ast.Or (a, b) ->
    let pa, a = hoist_expr st stack a in
    let pb, b = hoist_expr st stack b in
    (pa @ pb, Ast.Or (a, b))
  | Ast.Call (f, args) ->
    (* arguments first, left to right *)
    let preludes, args =
      List.fold_left
        (fun (ps, vs) a ->
          let p, a = hoist_expr st stack a in
          (ps @ p, a :: vs))
        ([], []) args
    in
    let args = List.rev args in
    let body, result = expand_call st stack f args in
    (preludes @ body, Ast.Var result)

(* Produce the inlined body of a call and the variable holding its
   result. *)
and expand_call st stack f args : Ast.stmt list * string =
  if List.mem f stack then error "recursive call to %s cannot be inlined" f;
  let callee =
    match Hashtbl.find_opt st.kernels f with
    | Some k -> k
    | None -> error "call to unknown kernel %s" f
  in
  if List.length args <> List.length callee.Ast.params then
    error "%s expects %d arguments, got %d" f
      (List.length callee.Ast.params) (List.length args);
  (* fresh names for every callee variable *)
  let mapping = Hashtbl.create 16 in
  let sub x =
    match Hashtbl.find_opt mapping x with
    | Some y -> y
    | None ->
      let y = fresh st x in
      Hashtbl.add mapping x y;
      y
  in
  let result = fresh st (f ^ "_ret") in
  let param_binds =
    List.map2 (fun p a -> Ast.Assign (sub p, a)) callee.Ast.params args
  in
  let body = List.map (rename_stmt sub) callee.Ast.body in
  let body = retarget_returns f result body in
  (* calls inside the callee are expanded too *)
  let body = inline_stmts st (f :: stack) body in
  (param_binds @ body, result)

(* Rewrite statements so that no expression contains a call. *)
and inline_stmts st stack (stmts : Ast.stmt list) : Ast.stmt list =
  List.concat_map (inline_stmt st stack) stmts

and inline_stmt st stack (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Ast.Assign (x, e) ->
    let p, e = hoist_expr st stack e in
    p @ [ Ast.Assign (x, e) ]
  | Ast.Store (a, e) ->
    let pa, a = hoist_expr st stack a in
    let pe, e = hoist_expr st stack e in
    pa @ pe @ [ Ast.Store (a, e) ]
  | Ast.Return e -> (
    match e with
    | None -> [ s ]
    | Some e ->
      let p, e = hoist_expr st stack e in
      p @ [ Ast.Return (Some e) ])
  | Ast.Break -> [ s ]
  | Ast.If (c, t, els) ->
    let p, c = hoist_expr st stack c in
    p @ [ Ast.If (c, inline_stmts st stack t, inline_stmts st stack els) ]
  | Ast.While (c, body) ->
    let p, c' = hoist_expr st stack c in
    let body = inline_stmts st stack body in
    if p = [] then [ Ast.While (c', body) ]
    else
      (* rotate: evaluate the (call-bearing) condition before entry and at
         the end of every iteration *)
      let t = fresh st "whilecond" in
      p
      @ [ Ast.Assign (t, c');
          Ast.While (Ast.Cmp (Trips_ir.Opcode.Ne, Ast.Var t, Ast.Int 0),
                     body @ p @ [ Ast.Assign (t, c') ]) ]
  | Ast.DoWhile (body, c) ->
    let p, c' = hoist_expr st stack c in
    let body = inline_stmts st stack body in
    if p = [] then [ Ast.DoWhile (body, c') ]
    else
      let t = fresh st "docond" in
      [ Ast.DoWhile (body @ p @ [ Ast.Assign (t, c') ],
                     Ast.Cmp (Trips_ir.Opcode.Ne, Ast.Var t, Ast.Int 0)) ]
  | Ast.For l ->
    (* lo and hi are evaluated once, so plain hoisting is exact *)
    let plo, lo = hoist_expr st stack l.Ast.lo in
    let phi, hi = hoist_expr st stack l.Ast.hi in
    plo @ phi
    @ [ Ast.For { l with Ast.lo; hi; body = inline_stmts st stack l.Ast.body } ]

(** Flatten a compilation unit into a single call-free program by
    inlining every call into the entry kernel.
    @raise Not_inlinable on recursion, unknown callees, arity mismatches
    or non-tail returns in a callee. *)
let program_of_unit (u : Ast.compilation_unit) : Ast.program =
  let st = { counter = 0; kernels = Hashtbl.create 8 } in
  List.iter (fun k -> Hashtbl.replace st.kernels k.Ast.prog_name k) u.Ast.kernels;
  let entry =
    match Hashtbl.find_opt st.kernels u.Ast.entry with
    | Some k -> k
    | None -> error "entry kernel %s not found" u.Ast.entry
  in
  { entry with Ast.body = inline_stmts st [ entry.Ast.prog_name ] entry.Ast.body }
