(** Front-end inlining (the first box of the paper's Figure 6 pipeline).

    Flattens a compilation unit — several kernels, the last being the
    entry point — into one call-free program by substituting every call
    with the callee's renamed body.  Calls are hoisted out of expressions
    left to right; loop conditions containing calls are rotated so they
    are re-evaluated each iteration.  A callee must be non-recursive and
    return only in tail position. *)

exception Not_inlinable of string

val program_of_unit : Ast.compilation_unit -> Ast.program
(** @raise Not_inlinable on recursion, unknown callees, arity mismatches
    or non-tail returns in a callee. *)
