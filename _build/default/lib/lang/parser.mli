(** Lexer and recursive-descent parser for the mini language's concrete
    syntax, so kernels can live in plain text files:

    {[
      kernel collatz(n) {
        steps = 0;
        while (n != 1) {
          if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
          steps = steps + 1;
        }
        return steps;
      }
    ]}

    Statements: assignment, [mem\[e\] = e], [if]/[else], [while],
    [do {..} while (e);], [for (x = lo; x < hi; x += k)], [break],
    [return].  Expressions: integers, variables, [mem\[e\]], C-precedence
    arithmetic, comparisons and logical operators.  Comments start with
    [#] or [//]. *)

exception Parse_error of string
(** Carries a message with a line number. *)

val parse_program : string -> Ast.program
(** Parse a kernel definition from source text.
    @raise Parse_error on malformed input. *)

val parse_unit : string -> Ast.compilation_unit
(** Parse one or more kernels; the last is the entry point.  Calls are
    resolved by {!Inline.program_of_unit}. *)

val parse_file : string -> Ast.program

val print_program : Ast.program -> string
(** Print a program in parseable concrete syntax:
    [parse_program (print_program p) = p]. *)
