lib/lang/lower.mli: Ast Cfg Trips_ir
