lib/lang/inline.ml: Ast Fmt Hashtbl List Option Printf Trips_ir
