lib/lang/ast.ml: Fmt List Opcode Trips_ir
