lib/lang/unroll_for.ml: Ast List Opcode Trips_ir
