lib/lang/lower.ml: Ast Builder Cfg Fmt Hashtbl Instr List Opcode Option Trips_ir
