lib/lang/parser.ml: Ast Buffer Fmt List Opcode String Trips_ir
