lib/lang/unroll_for.mli: Ast
