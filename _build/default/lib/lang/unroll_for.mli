(** Front-end for-loop unrolling.

    Scale unrolls for loops in the front end, before lowering and
    hyperblock formation (paper Figure 6, Section 7.1); this pass is the
    analogue.  A candidate loop's body is replicated [factor] times
    inside a main loop guarded by [var < hi - (factor-1)*step], followed
    by the original loop as the remainder — intermediate tests are
    removed, which is stronger than the while-loop unrolling head
    duplication performs.  Only innermost loops without [break] or
    [return] in their body are unrolled. *)

val eligible : Ast.for_loop -> bool

val apply : factor:int -> Ast.program -> Ast.program
(** Unroll every eligible innermost for loop by [factor] (identity when
    [factor <= 1]). *)
