(* Front-end for-loop unrolling.

   Scale unrolls for loops in the front end, before lowering and
   hyperblock formation (paper Figure 6 and Section 7.1); this pass is the
   analogue.  A candidate loop's body is replicated [factor] times inside
   a main loop guarded by [var < hi - (factor-1)*step], followed by the
   original loop as the remainder.  Because the intermediate tests are
   removed (for-loop trip structure is known), this is stronger than the
   while-loop unrolling head duplication performs — which is exactly why
   the paper observes little extra benefit from head duplication on
   for-loop-dominated kernels.

   Only innermost loops without [break] or [return] in their body are
   unrolled, matching the conservative front-end policy. *)

open Trips_ir

let eligible (l : Ast.for_loop) =
  l.Ast.step > 0
  && (not (List.exists Ast.stmt_contains_loop l.Ast.body))
  && (not (List.exists Ast.stmt_contains_break l.Ast.body))
  && not (List.exists Ast.stmt_contains_return l.Ast.body)

let unroll_loop ~factor (l : Ast.for_loop) : Ast.stmt list =
  let advance =
    Ast.Assign (l.var, Ast.Binop (Opcode.Add, Ast.Var l.var, Ast.Int l.step))
  in
  let one_iteration = l.body @ [ advance ] in
  let unrolled_body = List.concat (List.init factor (fun _ -> one_iteration)) in
  let bound = "$ub_" ^ l.var in
  (* main loop runs while var < hi - (factor-1)*step, i.e. while a full
     group of [factor] iterations remains *)
  let main_cond =
    Ast.Cmp
      ( Opcode.Lt,
        Ast.Var l.var,
        Ast.Binop (Opcode.Sub, Ast.Var bound, Ast.Int ((factor - 1) * l.step)) )
  in
  [
    Ast.Assign (l.var, l.lo);
    Ast.Assign (bound, l.hi);
    Ast.While (main_cond, unrolled_body);
    (* remainder iterations keep the original per-iteration test *)
    Ast.While (Ast.Cmp (Opcode.Lt, Ast.Var l.var, Ast.Var bound), one_iteration);
  ]

(** Unroll every eligible innermost for loop of [p] by [factor].  A factor
    of 1 or less is the identity. *)
let apply ~factor (p : Ast.program) : Ast.program =
  if factor <= 1 then p
  else
    let rewrite = function
      | Ast.For l when eligible l -> Some (unroll_loop ~factor l)
      | _ -> None
    in
    { p with Ast.body = Ast.map_stmts rewrite p.Ast.body }
