(** Lowering from the mini-language AST to the RISC-like CFG.

    Every conditional branch condition is normalized to a 0/1 register,
    so exit guards always read boolean values — the invariant the
    predicate negation ([xor 1]) in if-conversion relies on.  [For] loops
    hoist their bound into a hidden temporary evaluated once; the loop
    itself lowers to the same test-at-top shape as [While]. *)

open Trips_ir

val lower : Ast.program -> Cfg.t * (string * int) list
(** Lower a program.  Returns the validated CFG and the registers
    assigned to the program's parameters (callers initialize them through
    the simulator). *)
