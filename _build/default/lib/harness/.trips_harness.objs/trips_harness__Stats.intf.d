lib/harness/stats.mli:
