lib/harness/table3.mli: Chf Format Trips_workloads Workload
