lib/harness/table1.mli: Chf Format Trips_workloads Workload
