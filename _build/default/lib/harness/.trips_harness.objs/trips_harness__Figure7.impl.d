lib/harness/figure7.ml: Chf Float Fmt List Stats Table1
