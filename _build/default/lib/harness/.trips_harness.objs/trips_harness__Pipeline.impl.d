lib/harness/pipeline.ml: Cfg Chf Cycle_sim Fmt Func_sim IntMap List Trips_analysis Trips_ir Trips_lang Trips_regalloc Trips_sim Trips_workloads Workload
