lib/harness/figure7.mli: Chf Format Stats Table1
