lib/harness/pipeline.mli: Cfg Chf Cycle_sim Func_sim Trips_ir Trips_profile Trips_regalloc Trips_sim Trips_workloads Workload
