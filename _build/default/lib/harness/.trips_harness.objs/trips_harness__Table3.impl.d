lib/harness/table3.ml: Chf Fmt List Option Pipeline Spec_like Stats Trips_sim Trips_workloads Workload
