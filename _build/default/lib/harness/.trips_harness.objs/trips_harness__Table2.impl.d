lib/harness/table2.ml: Chf Fmt List Micro Option Pipeline Stats Trips_sim Trips_workloads Workload
