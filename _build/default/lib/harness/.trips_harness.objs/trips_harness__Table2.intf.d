lib/harness/table2.mli: Chf Format Trips_workloads Workload
