lib/harness/table1.ml: Chf Fmt List Micro Option Pipeline Stats Trips_sim Trips_workloads Workload
