(* The full compiler pipeline of Figure 6, driven per workload:

   front end (for-loop unrolling, lowering) -> profiling run ->
   hyperblock formation under a phase ordering and policy ->
   register allocation / reverse if-conversion / fanout insertion ->
   functional and cycle-level simulation.

   Every compiled configuration is checked against the basic-block
   baseline's functional checksum, so a miscompilation can never silently
   pollute experiment results. *)

open Trips_ir
open Trips_sim
open Trips_workloads

exception Miscompiled of string

type compiled = {
  workload : Workload.t;
  ordering : Chf.Phases.ordering;
  cfg : Cfg.t;
  registers : (int * int) list;  (* post-allocation parameter registers *)
  stats : Chf.Formation.stats;
  backend : Trips_regalloc.Backend.report option;
  static_blocks : int;
  static_instrs : int;
}

(* Lower the workload (with its front-end unroll factor) and bind the
   parameter registers. *)
let lower_workload (w : Workload.t) =
  let program = Trips_lang.Unroll_for.apply ~factor:w.Workload.frontend_unroll w.Workload.program in
  let cfg, params = Trips_lang.Lower.lower program in
  let registers =
    List.map
      (fun (name, value) ->
        match List.assoc_opt name params with
        | Some r -> (r, value)
        | None -> Fmt.invalid_arg "workload %s: unknown parameter %s" w.Workload.name name)
      w.Workload.args
  in
  (cfg, registers)

(** Profile the workload at the basic-block level (edge counts, block
    counts, trip-count histograms). *)
let profile_workload (w : Workload.t) =
  let cfg, registers = lower_workload w in
  let loops = Trips_analysis.Loops.compute cfg in
  let memory = Workload.memory w in
  let result, profile = Func_sim.run_profiled ~registers ~loops ~memory cfg in
  (profile, result)

(** Compile [w] under phase ordering [ordering] (and policy [config]),
    through the back end when [backend] is set. *)
let compile ?(config = Chf.Policy.edge_default) ?(backend = true) ordering
    (w : Workload.t) : compiled =
  let profile, _ = profile_workload w in
  let cfg, registers = lower_workload w in
  let stats = Chf.Phases.apply ~config ordering cfg profile in
  let backend_report =
    if backend then begin
      let report = Trips_regalloc.Backend.run cfg in
      Some report
    end
    else None
  in
  let registers =
    match backend_report with
    | Some r ->
      List.map
        (fun (reg, value) ->
          (IntMap.find_or ~default:reg reg r.Trips_regalloc.Backend.mapping, value))
        registers
    | None -> registers
  in
  {
    workload = w;
    ordering;
    cfg;
    registers;
    stats;
    backend = backend_report;
    static_blocks = Cfg.num_blocks cfg;
    static_instrs = Cfg.total_instrs cfg;
  }

(** Run the compiled workload functionally. *)
let run_functional (c : compiled) : Func_sim.result =
  let memory = Workload.memory c.workload in
  Func_sim.run ~registers:c.registers ~memory c.cfg

(** Run the compiled workload under the cycle-level timing model. *)
let run_cycles ?timing (c : compiled) : Cycle_sim.result =
  let memory = Workload.memory c.workload in
  Cycle_sim.run ?timing ~registers:c.registers ~memory c.cfg

(** Raise [Miscompiled] unless [c] produces the same functional checksum
    as the basic-block baseline result [baseline]. *)
let verify_against ~(baseline : Func_sim.result) (c : compiled) =
  let r = run_functional c in
  if r.Func_sim.checksum <> baseline.Func_sim.checksum then
    raise
      (Miscompiled
         (Fmt.str "%s under %s: checksum %d, baseline %d" c.workload.Workload.name
            (Chf.Phases.name c.ordering) r.Func_sim.checksum
            baseline.Func_sim.checksum));
  r
