(** The full compiler pipeline of the paper's Figure 6, driven per
    workload: front end (for-loop unrolling, lowering) -> profiling run
    -> hyperblock formation under a phase ordering and policy -> register
    allocation / reverse if-conversion / fanout insertion -> functional
    and cycle-level simulation.

    Every compiled configuration can be checked against the basic-block
    baseline's functional checksum ({!verify_against}), so a
    miscompilation can never silently pollute experiment results. *)

open Trips_ir
open Trips_sim
open Trips_workloads

exception Miscompiled of string

type compiled = {
  workload : Workload.t;
  ordering : Chf.Phases.ordering;
  cfg : Cfg.t;
  registers : (int * int) list;  (** post-allocation parameter registers *)
  stats : Chf.Formation.stats;
  backend : Trips_regalloc.Backend.report option;
  static_blocks : int;
  static_instrs : int;
}

val lower_workload : Workload.t -> Cfg.t * (int * int) list
(** Front-end unroll + lowering; returns parameter register bindings. *)

val profile_workload : Workload.t -> Trips_profile.Profile.t * Func_sim.result
(** Profile at the basic-block level (edges, blocks, trip counts). *)

val compile :
  ?config:Chf.Policy.config ->
  ?backend:bool ->
  Chf.Phases.ordering ->
  Workload.t ->
  compiled
(** Compile under a phase ordering (and policy), through the back end
    when [backend] (default true). *)

val run_functional : compiled -> Func_sim.result

val run_cycles : ?timing:Cycle_sim.timing -> compiled -> Cycle_sim.result

val verify_against : baseline:Func_sim.result -> compiled -> Func_sim.result
(** @raise Miscompiled unless the compiled workload reproduces the
    baseline checksum. *)
