(* Table 1: cycle-count improvement of the four phase orderings over the
   basic-block baseline on the 24 microbenchmarks, with m/t/u/p merge
   statistics, under the greedy breadth-first EDGE policy. *)

open Trips_workloads

type cell = {
  ordering : Chf.Phases.ordering;
  cycles : int;
  dyn_blocks : int;  (* dynamic blocks executed *)
  stats : Chf.Formation.stats;
  improvement : float;  (* % cycles saved vs BB *)
}

type row = {
  workload : string;
  bb_cycles : int;
  bb_blocks : int;
  cells : cell list;
}

let orderings =
  [ Chf.Phases.Upio; Chf.Phases.Iupo; Chf.Phases.Iup_o; Chf.Phases.Iupo_merged ]

let run_row ?config (w : Workload.t) : row =
  let bb = Pipeline.compile ?config ~backend:true Chf.Phases.Basic_blocks w in
  let bb_cycle = Pipeline.run_cycles bb in
  let baseline = Pipeline.run_functional bb in
  let cells =
    List.map
      (fun ordering ->
        let c = Pipeline.compile ?config ~backend:true ordering w in
        ignore (Pipeline.verify_against ~baseline c);
        let r = Pipeline.run_cycles c in
        {
          ordering;
          cycles = r.Trips_sim.Cycle_sim.cycles;
          dyn_blocks = r.Trips_sim.Cycle_sim.blocks;
          stats = c.Pipeline.stats;
          improvement =
            Stats.percent_improvement ~base:bb_cycle.Trips_sim.Cycle_sim.cycles
              ~v:r.Trips_sim.Cycle_sim.cycles;
        })
      orderings
  in
  {
    workload = w.Workload.name;
    bb_cycles = bb_cycle.Trips_sim.Cycle_sim.cycles;
    bb_blocks = bb_cycle.Trips_sim.Cycle_sim.blocks;
    cells;
  }

(** Run the Table 1 experiment.  [workloads] defaults to all 24
    microbenchmarks. *)
let run ?config ?(workloads = Micro.all) () : row list =
  List.map (run_row ?config) workloads

let average rows ordering =
  Stats.mean
    (List.filter_map
       (fun r ->
         List.find_opt (fun c -> c.ordering = ordering) r.cells
         |> Option.map (fun c -> c.improvement))
       rows)

let render fmt rows =
  Fmt.pf fmt "Table 1: %% cycle improvement over BB and m/t/u/p statistics@.";
  Fmt.pf fmt "%-16s %10s" "benchmark" "BB cycles";
  List.iter
    (fun o -> Fmt.pf fmt " | %-12s %6s" (Chf.Phases.name o) "%")
    orderings;
  Fmt.pf fmt "@.";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-16s %10d" r.workload r.bb_cycles;
      List.iter
        (fun c ->
          Fmt.pf fmt " | %-12s %6.1f"
            (Fmt.str "%a" Chf.Formation.pp_stats c.stats)
            c.improvement)
        r.cells;
      Fmt.pf fmt "@.")
    rows;
  Fmt.pf fmt "%-16s %10s" "Average" "";
  List.iter
    (fun o -> Fmt.pf fmt " | %-12s %6.1f" "" (average rows o))
    orderings;
  Fmt.pf fmt "@."
