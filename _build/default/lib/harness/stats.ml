(* Small statistics helpers for the experiment reports. *)

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(** Percent improvement of [v] over baseline [base] (positive = better,
    i.e. fewer cycles/blocks). *)
let percent_improvement ~base ~v =
  if base = 0 then 0.0
  else 100.0 *. (float_of_int (base - v) /. float_of_int base)

type regression = { slope : float; intercept : float; r2 : float }

(** Ordinary least squares over (x, y) points, with the coefficient of
    determination the paper quotes for Figure 7. *)
let linear_regression (points : (float * float) list) : regression =
  let n = float_of_int (List.length points) in
  if n < 2.0 then { slope = 0.0; intercept = 0.0; r2 = 0.0 }
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if Float.abs denom < 1e-9 then { slope = 0.0; intercept = mean (List.map snd points); r2 = 0.0 }
    else begin
      let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. n in
      let ybar = sy /. n in
      let ss_tot =
        List.fold_left (fun a (_, y) -> a +. ((y -. ybar) ** 2.0)) 0.0 points
      in
      let ss_res =
        List.fold_left
          (fun a (x, y) ->
            let fy = (slope *. x) +. intercept in
            a +. ((y -. fy) ** 2.0))
          0.0 points
      in
      let r2 = if ss_tot < 1e-9 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
      { slope; intercept; r2 }
    end
  end
