(** Small statistics helpers for the experiment reports. *)

val mean : float list -> float

val percent_improvement : base:int -> v:int -> float
(** Positive = better (fewer cycles / blocks). *)

type regression = { slope : float; intercept : float; r2 : float }

val linear_regression : (float * float) list -> regression
(** Ordinary least squares, with the coefficient of determination the
    paper quotes for Figure 7. *)
