(* Table 2: VLIW, convergent-VLIW, depth-first and breadth-first block
   selection heuristics, all inside convergent hyperblock formation, on
   the 24 microbenchmarks. *)

open Trips_workloads

type column = { label : string; config : Chf.Policy.config; ordering : Chf.Phases.ordering }

let columns =
  let base = Chf.Policy.edge_default in
  [
    (* Mahlke-style path-based selection, discrete final optimization *)
    {
      label = "VLIW";
      config = { base with Chf.Policy.heuristic = Chf.Policy.Vliw Chf.Policy.default_vliw };
      ordering = Chf.Phases.Iup_o;
    };
    (* the same heuristic with iterative optimization inside the loop *)
    {
      label = "ConvVLIW";
      config = { base with Chf.Policy.heuristic = Chf.Policy.Vliw Chf.Policy.default_vliw };
      ordering = Chf.Phases.Iupo_merged;
    };
    {
      label = "DF";
      config =
        { base with Chf.Policy.heuristic = Chf.Policy.Depth_first { min_merge_prob = 0.12 } };
      ordering = Chf.Phases.Iupo_merged;
    };
    { label = "BF"; config = base; ordering = Chf.Phases.Iupo_merged };
  ]

type cell = {
  label : string;
  cycles : int;
  improvement : float;
  mispredictions : int;
  stats : Chf.Formation.stats;
}

type row = { workload : string; bb_cycles : int; cells : cell list }

let run_row (w : Workload.t) : row =
  let bb = Pipeline.compile ~backend:true Chf.Phases.Basic_blocks w in
  let bb_cycle = Pipeline.run_cycles bb in
  let baseline = Pipeline.run_functional bb in
  let cells =
    List.map
      (fun col ->
        let c = Pipeline.compile ~config:col.config ~backend:true col.ordering w in
        ignore (Pipeline.verify_against ~baseline c);
        let r = Pipeline.run_cycles c in
        {
          label = col.label;
          cycles = r.Trips_sim.Cycle_sim.cycles;
          improvement =
            Stats.percent_improvement ~base:bb_cycle.Trips_sim.Cycle_sim.cycles
              ~v:r.Trips_sim.Cycle_sim.cycles;
          mispredictions = r.Trips_sim.Cycle_sim.mispredictions;
          stats = c.Pipeline.stats;
        })
      columns
  in
  { workload = w.Workload.name; bb_cycles = bb_cycle.Trips_sim.Cycle_sim.cycles; cells }

let run ?(workloads = Micro.all) () : row list = List.map run_row workloads

let average rows label =
  Stats.mean
    (List.filter_map
       (fun r ->
         List.find_opt (fun c -> c.label = label) r.cells
         |> Option.map (fun c -> c.improvement))
       rows)

let render fmt rows =
  Fmt.pf fmt
    "Table 2: %% cycle improvement over BB by block-selection heuristic@.";
  Fmt.pf fmt "%-16s %10s" "benchmark" "BB cycles";
  List.iter (fun (col : column) -> Fmt.pf fmt " | %8s" col.label) columns;
  Fmt.pf fmt "@.";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-16s %10d" r.workload r.bb_cycles;
      List.iter (fun c -> Fmt.pf fmt " | %8.1f" c.improvement) r.cells;
      Fmt.pf fmt "@.")
    rows;
  Fmt.pf fmt "%-16s %10s" "Average" "";
  List.iter
    (fun (col : column) -> Fmt.pf fmt " | %8.1f" (average rows col.label))
    columns;
  Fmt.pf fmt "@."
