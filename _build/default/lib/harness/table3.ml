(* Table 3: percent improvement in executed-block counts over basic
   blocks on the 19 SPEC-like workloads, under the fast functional
   simulator (the paper's argument: block counts correlate with cycles,
   and full programs are too slow for cycle-level simulation). *)

open Trips_workloads

type cell = {
  ordering : Chf.Phases.ordering;
  dyn_blocks : int;
  improvement : float;
}

type row = { workload : string; bb_blocks : int; cells : cell list }

let orderings =
  [ Chf.Phases.Upio; Chf.Phases.Iupo; Chf.Phases.Iup_o; Chf.Phases.Iupo_merged ]

let run_row (w : Workload.t) : row =
  (* no back end: Table 3 uses the functional simulator only *)
  let bb = Pipeline.compile ~backend:false Chf.Phases.Basic_blocks w in
  let baseline = Pipeline.run_functional bb in
  let cells =
    List.map
      (fun ordering ->
        let c = Pipeline.compile ~backend:false ordering w in
        let r = Pipeline.verify_against ~baseline c in
        {
          ordering;
          dyn_blocks = r.Trips_sim.Func_sim.blocks_executed;
          improvement =
            Stats.percent_improvement ~base:baseline.Trips_sim.Func_sim.blocks_executed
              ~v:r.Trips_sim.Func_sim.blocks_executed;
        })
      orderings
  in
  {
    workload = w.Workload.name;
    bb_blocks = baseline.Trips_sim.Func_sim.blocks_executed;
    cells;
  }

let run ?(workloads = Spec_like.all) () : row list = List.map run_row workloads

let average rows ordering =
  Stats.mean
    (List.filter_map
       (fun r ->
         List.find_opt (fun c -> c.ordering = ordering) r.cells
         |> Option.map (fun c -> c.improvement))
       rows)

let render fmt rows =
  Fmt.pf fmt "Table 3: %% improvement in executed blocks over BB (SPEC-like)@.";
  Fmt.pf fmt "%-10s %12s" "benchmark" "BB blocks";
  List.iter (fun o -> Fmt.pf fmt " | %7s" (Chf.Phases.name o)) orderings;
  Fmt.pf fmt "@.";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-10s %12d" r.workload r.bb_blocks;
      List.iter (fun c -> Fmt.pf fmt " | %7.1f" c.improvement) r.cells;
      Fmt.pf fmt "@.")
    rows;
  Fmt.pf fmt "%-10s %12s" "Average" "";
  List.iter (fun o -> Fmt.pf fmt " | %7.1f" (average rows o)) orderings;
  Fmt.pf fmt "@."
