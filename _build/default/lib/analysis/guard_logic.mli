(** Syntactic reasoning about guard implication within a block.

    Repeated if-conversion builds guard predicates as conjunction chains
    ([q = p AND c AND c' ...]), so "q implies p" is decidable by walking
    the unguarded, single-definition [and]/[mov] instructions of the
    block.  Used by the refined liveness analysis and by predicate
    optimization.  Sound for arbitrary integer values: a bitwise
    conjunction is nonzero only if both operands are. *)

open Trips_ir

type defs
(** Defining operations of registers defined exactly once in a block, by
    an unguarded instruction. *)

val build_defs : Instr.t list -> defs

val implies : ?use_pos:int -> defs -> Instr.guard -> Instr.guard -> bool
(** [implies ~use_pos defs q g]: whenever guard [q] (read at instruction
    index [use_pos]) holds, [g] holds too.  Exact for equal guard
    reg/sense pairs; otherwise walks conjunction/copy structure of
    positively-sensed guards, accepting only definitions strictly before
    [use_pos].  Callers must separately guarantee that [g]'s register was
    not redefined between [g]'s read and [use_pos]. *)

val option_implies :
  ?use_pos:int -> defs -> Instr.guard option -> Instr.guard -> bool
(** [None] (unconditional) implies nothing but is implied by
    everything. *)
