(* Immediate dominators by the Cooper-Harvey-Kennedy iterative algorithm.

   The result maps each reachable block to its immediate dominator; the
   entry maps to itself.  The algorithm walks blocks in reverse postorder
   intersecting the dominator sets of processed predecessors, which for
   reducible graphs converges in two passes. *)

open Trips_ir

type t = {
  idom : int IntMap.t;  (* block -> immediate dominator; entry -> entry *)
  rpo_index : int IntMap.t;  (* block -> position in reverse postorder *)
  entry : int;
}

let compute cfg =
  let rpo = Order.reverse_postorder cfg in
  let rpo_index =
    List.fold_left
      (fun (i, m) id -> (i + 1, IntMap.add id i m))
      (0, IntMap.empty) rpo
    |> snd
  in
  let preds = Cfg.predecessor_map cfg in
  let entry = cfg.Cfg.entry in
  let idom = ref (IntMap.singleton entry entry) in
  let index id = IntMap.find id rpo_index in
  let rec intersect a b =
    if a = b then a
    else if index a > index b then intersect (IntMap.find a !idom) b
    else intersect a (IntMap.find b !idom)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        if id <> entry then begin
          let ps =
            IntSet.elements (IntMap.find_or ~default:IntSet.empty id preds)
          in
          let processed = List.filter (fun p -> IntMap.mem p !idom) ps in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if IntMap.find_opt id !idom <> Some new_idom then begin
              idom := IntMap.add id new_idom !idom;
              changed := true
            end
        end)
      rpo
  done;
  { idom = !idom; rpo_index; entry }

(** Immediate dominator of [id]; [None] for the entry or unreachable
    blocks. *)
let idom t id =
  if id = t.entry then None
  else IntMap.find_opt id t.idom

(** [dominates t a b] holds when every path from the entry to [b] passes
    through [a] (reflexive). *)
let dominates t a b =
  let rec walk b = a = b || (b <> t.entry && walk (IntMap.find b t.idom)) in
  IntMap.mem b t.idom && walk b

(** Children map of the dominator tree. *)
let children t =
  IntMap.fold
    (fun id parent acc ->
      if id = t.entry then acc
      else
        let kids = IntMap.find_or ~default:[] parent acc in
        IntMap.add parent (id :: kids) acc)
    t.idom IntMap.empty

(** Reachable blocks in a preorder walk of the dominator tree, so every
    block appears after its dominator (used by dominator-based value
    numbering). *)
let tree_preorder t =
  let kids = children t in
  let rec visit id =
    id
    :: List.concat_map visit (List.sort compare (IntMap.find_or ~default:[] id kids))
  in
  visit t.entry
