(* Syntactic reasoning about guard implication within a block.

   Repeated if-conversion builds guard predicates as conjunction chains
   (q = p AND c AND c' ...), so "q implies p" is decidable by walking the
   unguarded, single-definition [and]/[mov] instructions of the block.
   Used by the refined liveness analysis (a guarded definition's
   flow-through value is dead when every later reader's guard implies the
   definition's guard) and by predicate optimization.

   Implication is *positional*: the claim "whenever q (read at position
   [use_pos]) holds, g held at the position where g was read" is only
   sound if every register in the chain received its (unique, unguarded)
   definition before [use_pos], and callers must separately ensure the
   root guard register was not redefined between the two reads (liveness
   poisons stale records; predicate optimization aborts its scan).
   Sound for arbitrary integer values: a bitwise conjunction is nonzero
   only if both operands are. *)

open Trips_ir

type defs = (int, Instr.op * int) Hashtbl.t
(* register -> (defining operation, position), for registers defined
   exactly once in the block by an unguarded instruction *)

let build_defs (instrs : Instr.t list) : defs =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun (i : Instr.t) ->
      List.iter
        (fun d ->
          Hashtbl.replace counts d
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
        (Instr.defs i))
    instrs;
  let defs = Hashtbl.create 32 in
  List.iteri
    (fun pos (i : Instr.t) ->
      match (i.Instr.guard, Instr.defs i) with
      | None, [ d ] when Hashtbl.find_opt counts d = Some 1 ->
        Hashtbl.replace defs d (i.Instr.op, pos)
      | _ -> ())
    instrs;
  defs

let implies ?(use_pos = max_int) (defs : defs) (q : Instr.guard)
    (g : Instr.guard) =
  (q.Instr.greg = g.Instr.greg && q.Instr.sense = g.Instr.sense)
  || q.Instr.sense && g.Instr.sense
     &&
     (* [walk r pos]: the value register [r] holds at position [pos]
        implies g.  Only definitions strictly before [pos] count. *)
     let rec walk r pos depth =
       r = g.Instr.greg
       || depth < 8
          &&
          match Hashtbl.find_opt defs r with
          | Some (op, def_pos) when def_pos < pos -> (
            match op with
            | Instr.Binop (Opcode.And, _, a, b) ->
              let side = function
                | Instr.Reg x -> walk x def_pos (depth + 1)
                | Instr.Imm _ -> false
              in
              side a || side b
            | Instr.Mov (_, Instr.Reg x) -> walk x def_pos (depth + 1)
            | _ -> false)
          | Some _ | None -> false
     in
     walk q.Instr.greg use_pos 0

let option_implies ?use_pos defs (q : Instr.guard option) (g : Instr.guard) =
  match q with Some q -> implies ?use_pos defs q g | None -> false
