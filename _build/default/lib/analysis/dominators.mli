(** Immediate dominators by the Cooper-Harvey-Kennedy iterative
    algorithm. *)

open Trips_ir

type t

val compute : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator of a block; [None] for the entry or unreachable
    blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] holds when every path from the entry to [b] passes
    through [a] (reflexive). *)

val children : t -> int list IntMap.t
(** Children map of the dominator tree. *)

val tree_preorder : t -> int list
(** Reachable blocks in a preorder walk of the dominator tree: every
    block appears after its dominator (used by dominator-based value
    numbering). *)
