(* Depth-first traversal orders over the reachable part of a CFG. *)

open Trips_ir

(** Blocks reachable from the entry, in postorder. *)
let postorder cfg =
  let visited = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      List.iter visit (Cfg.successors cfg id);
      acc := id :: !acc
    end
  in
  visit cfg.Cfg.entry;
  List.rev !acc

(** Blocks reachable from the entry, in reverse postorder: every block
    appears before its successors, except along back edges. *)
let reverse_postorder cfg = List.rev (postorder cfg)

(** Set of block ids reachable from the entry. *)
let reachable cfg = IntSet.of_list_fold (postorder cfg)

(** Remove blocks that cannot be reached from the entry.  Transformations
    such as merging a block's unique predecessor can strand blocks; this
    keeps the graph tidy for analyses and printing. *)
let prune_unreachable cfg =
  let live = reachable cfg in
  List.iter
    (fun id -> if not (IntSet.mem id live) then Cfg.remove_block cfg id)
    (Cfg.block_ids cfg)
