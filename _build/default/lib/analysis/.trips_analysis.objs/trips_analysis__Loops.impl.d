lib/analysis/loops.ml: Cfg Dominators Fmt Hashtbl IntMap IntSet List Option Order Trips_ir
