lib/analysis/dominators.ml: Cfg IntMap IntSet List Order Trips_ir
