lib/analysis/loops.mli: Cfg Format IntSet Trips_ir
