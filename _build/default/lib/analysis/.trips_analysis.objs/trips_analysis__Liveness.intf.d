lib/analysis/liveness.mli: Block Cfg IntSet Trips_ir
