lib/analysis/order.ml: Cfg Hashtbl IntSet List Trips_ir
