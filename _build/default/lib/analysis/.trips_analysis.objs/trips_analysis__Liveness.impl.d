lib/analysis/liveness.ml: Block Cfg Guard_logic Hashtbl Instr IntMap IntSet List Option Order Sys Trips_ir
