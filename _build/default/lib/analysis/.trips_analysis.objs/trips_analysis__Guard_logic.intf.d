lib/analysis/guard_logic.mli: Instr Trips_ir
