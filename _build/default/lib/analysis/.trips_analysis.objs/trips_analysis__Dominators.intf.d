lib/analysis/dominators.mli: Cfg IntMap Trips_ir
