lib/analysis/order.mli: Cfg IntSet Trips_ir
