lib/analysis/guard_logic.ml: Hashtbl Instr List Opcode Option Trips_ir
