(** Depth-first traversal orders over the reachable part of a CFG. *)

open Trips_ir

val postorder : Cfg.t -> int list
(** Blocks reachable from the entry, in postorder. *)

val reverse_postorder : Cfg.t -> int list
(** Blocks reachable from the entry, in reverse postorder: every block
    appears before its successors, except along back edges. *)

val reachable : Cfg.t -> IntSet.t
(** Set of block ids reachable from the entry. *)

val prune_unreachable : Cfg.t -> unit
(** Remove blocks unreachable from the entry.  Transformations such as
    merging a block's unique predecessor strand blocks; this keeps the
    graph tidy for analyses and printing. *)
