lib/workloads/micro.mli: Workload
