lib/workloads/rng.mli:
