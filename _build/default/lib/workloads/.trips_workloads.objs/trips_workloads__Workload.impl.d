lib/workloads/workload.ml: Array Ast Trips_lang
