lib/workloads/spec_like.ml: Ast List Printf Rng Trips_ir Trips_lang Workload
