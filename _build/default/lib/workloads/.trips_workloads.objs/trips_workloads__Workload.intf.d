lib/workloads/workload.mli: Ast Trips_lang
