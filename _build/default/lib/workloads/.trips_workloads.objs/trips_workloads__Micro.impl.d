lib/workloads/micro.ml: Array Ast List Rng Trips_lang Workload
