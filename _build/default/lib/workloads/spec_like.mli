(** Synthetic whole-program workloads standing in for the 19 SPEC2000
    benchmarks of the paper's Table 3.

    Table 3 measures executed-block counts under a fast functional
    simulator, so what matters is each benchmark's control-flow texture:
    loop-nest shape, trip-count distribution, branch density and bias,
    code-size mix.  Each {!recipe} encodes those per benchmark; a seeded
    generator expands a recipe into a deterministic mini-language
    program. *)

type recipe = {
  name : string;
  seed : int;
  outer_iters : int;  (** iterations of the top-level loop *)
  segments : int;  (** independent statement regions in the main loop *)
  branch_density : float;  (** probability a segment is a conditional *)
  branch_bias : float;  (** how lopsided conditionals are (0.5 = even) *)
  while_fraction : float;  (** inner loops that are while (vs for) *)
  trip_choices : int list;  (** inner-loop trip counts *)
  nest_prob : float;  (** probability an inner loop nests another level *)
  stmts_per_block : int;  (** straight-line statements per region *)
}

val generate : recipe -> Workload.t

val recipes : recipe list
(** The 19 per-benchmark recipes. *)

val all : Workload.t list
val by_name : string -> Workload.t option
