(* A workload: a mini-language program plus its inputs.

   [init_memory] must be deterministic (kernels use the shared LCG in
   [Rng]); every run of a workload therefore produces identical results,
   which the semantic-preservation tests rely on. *)

open Trips_lang

type t = {
  name : string;
  description : string;  (* control-flow character being modeled *)
  program : Ast.program;
  args : (string * int) list;  (* parameter values *)
  memory_words : int;
  init_memory : int array -> unit;
  frontend_unroll : int;  (* for-loop unroll factor applied in the front end *)
}

let make ?(args = []) ?(memory_words = 4096) ?(init_memory = fun _ -> ())
    ?(frontend_unroll = 4) ~name ~description program =
  { name; description; program; args; memory_words; init_memory; frontend_unroll }

(** Instantiate the memory image. *)
let memory w =
  let a = Array.make w.memory_words 0 in
  w.init_memory a;
  a
