(* Deterministic linear-congruential generator for workload data and for
   the SPEC-like program generator.  No dependence on [Random] so runs
   are reproducible across OCaml versions. *)

type t = { mutable state : int }

let create seed = { state = (seed lxor 0x9e3779b9) land 0x3fffffff }

let next t =
  t.state <- ((t.state * 1103515245) + 12345) land 0x3fffffff;
  t.state

(** Uniform in [0, bound). *)
let int t bound = if bound <= 0 then 0 else next t mod bound

(** Bernoulli with probability [p]. *)
let flip t p = float_of_int (int t 10000) /. 10000.0 < p

let pick t l = List.nth l (int t (List.length l))

(** Fill an array with small pseudo-random values. *)
let fill ?(bound = 256) t a =
  Array.iteri (fun i _ -> a.(i) <- int t bound) a
