(* Synthetic whole-program workloads standing in for the 19 SPEC2000
   benchmarks of Table 3.

   Table 3 measures executed-*block* counts under a fast functional
   simulator, so what matters is each benchmark's control-flow texture:
   loop-nest shape, trip-count distribution, branch density and bias, and
   code-size mix.  Each recipe encodes those per benchmark (rough
   characterizations from the SPEC suite: mgrid/swim are regular
   loop-dominated FP codes with long trips; gap/crafty/parser are
   branchy integer codes with short trips; etc.), and a seeded generator
   expands a recipe into a deterministic mini-language program. *)

open Trips_lang

type recipe = {
  name : string;
  seed : int;
  outer_iters : int;  (* iterations of the top-level loop *)
  segments : int;  (* independent statement regions in the main loop *)
  branch_density : float;  (* probability a segment is a conditional *)
  branch_bias : float;  (* how lopsided conditionals are (0.5 = even) *)
  while_fraction : float;  (* inner loops that are while (vs for) *)
  trip_choices : int list;  (* inner-loop trip counts *)
  nest_prob : float;  (* probability an inner loop nests another level *)
  stmts_per_block : int;  (* straight-line statements per region *)
}

(* ---- program generation ------------------------------------------------ *)

(* Distinct scratch variables keep segments mostly independent, which
   gives the optimizer realistic room without collapsing everything. *)
let var k = Printf.sprintf "t%d" (k mod 8)

let gen_expr rng depth k =
  let rec go depth =
    if depth = 0 then
      match Rng.int rng 3 with
      | 0 -> Ast.Int (Rng.int rng 64)
      | 1 -> Ast.Var (var (k + Rng.int rng 3))
      | _ -> Ast.Load (Ast.Binop (Trips_ir.Opcode.Rem, Ast.Var (var k), Ast.Int 2048))
    else
      let op =
        Rng.pick rng
          [ Trips_ir.Opcode.Add; Trips_ir.Opcode.Sub; Trips_ir.Opcode.Mul; Trips_ir.Opcode.And; Trips_ir.Opcode.Xor ]
      in
      Ast.Binop (op, go (depth - 1), go (depth - 1))
  in
  go depth

let gen_straight_line rng r k =
  List.init r.stmts_per_block (fun j ->
      if Rng.flip rng 0.25 then
        Ast.Store
          ( Ast.Binop (Trips_ir.Opcode.Rem, Ast.Binop (Trips_ir.Opcode.Add, Ast.Var (var k), Ast.Int (Rng.int rng 512)), Ast.Int 2048),
            gen_expr rng 1 (k + j) )
      else Ast.Assign (var (k + j), gen_expr rng (1 + Rng.int rng 2) (k + j)))

let rec gen_segment rng r k ~depth =
  if Rng.flip rng r.branch_density then begin
    (* conditional segment; bias controls predictability *)
    let threshold = int_of_float (r.branch_bias *. 256.0) in
    let cond =
      Ast.Cmp
        ( Trips_ir.Opcode.Lt,
          Ast.Binop (Trips_ir.Opcode.Rem, Ast.Load (Ast.Binop (Trips_ir.Opcode.Rem, Ast.Var (var k), Ast.Int 2048)), Ast.Int 256),
          Ast.Int threshold )
    in
    let then_branch = gen_straight_line rng r k in
    let else_branch =
      if Rng.flip rng 0.5 then gen_straight_line rng r (k + 1) else []
    in
    [ Ast.If (cond, then_branch, else_branch) ]
  end
  else if depth < 2 && Rng.flip rng r.nest_prob then begin
    (* inner loop *)
    let trips = Rng.pick rng r.trip_choices in
    let body =
      gen_straight_line rng r k
      @ (if Rng.flip rng 0.5 then gen_segment rng r (k + 2) ~depth:(depth + 1)
         else [])
    in
    let ivar = Printf.sprintf "i%d" depth in
    if Rng.flip rng r.while_fraction then
      (* while loop with a data-dependent bound near [trips] *)
      [
        Ast.Assign (ivar, Ast.Int 0);
        Ast.Assign
          ( "$bound",
            Ast.Binop
              ( Trips_ir.Opcode.Add,
                Ast.Int (max 1 (trips - 1)),
                Ast.Binop (Trips_ir.Opcode.Rem, Ast.Load (Ast.Var (var k)), Ast.Int 3) ) );
        Ast.While
          ( Ast.Cmp (Trips_ir.Opcode.Lt, Ast.Var ivar, Ast.Var "$bound"),
            body @ [ Ast.Assign (ivar, Ast.Binop (Trips_ir.Opcode.Add, Ast.Var ivar, Ast.Int 1)) ] );
      ]
    else [ Ast.for_ ivar (Ast.Int 0) (Ast.Int trips) body ]
  end
  else gen_straight_line rng r k

let generate (r : recipe) : Workload.t =
  let rng = Rng.create r.seed in
  let segments =
    List.concat (List.init r.segments (fun k -> gen_segment rng r k ~depth:0))
  in
  let body =
    [
      Ast.Assign ("t0", Ast.Int 1);
      Ast.Assign ("acc", Ast.Int 0);
      Ast.for_ "main" (Ast.Int 0) (Ast.Int r.outer_iters)
        (segments
        @ [
            Ast.Assign
              ( "acc",
                Ast.Binop
                  ( Trips_ir.Opcode.Add,
                    Ast.Var "acc",
                    Ast.Binop (Trips_ir.Opcode.And, Ast.Var (var 0), Ast.Int 1023) ) );
          ]);
      Ast.Return (Some (Ast.Var "acc"));
    ]
  in
  Workload.make ~name:r.name
    ~description:"synthetic SPEC-like program (Table 3 block-count workload)"
    ~memory_words:2048
    ~init_memory:(fun a ->
      let rng = Rng.create (r.seed * 7) in
      Rng.fill rng a)
    { prog_name = r.name; params = []; body }

(* ---- the 19 recipes ---------------------------------------------------- *)

let lp = [ 16; 32; 64 ]  (* long, regular trips (FP loop nests) *)
let mid = [ 4; 8; 16 ]
let short = [ 1; 2; 3; 4 ]  (* integer-code trips *)

let recipes : recipe list =
  [
    { name = "ammp"; seed = 101; outer_iters = 300; segments = 4;
      branch_density = 0.3; branch_bias = 0.5; while_fraction = 0.8;
      trip_choices = short; nest_prob = 0.7; stmts_per_block = 4 };
    { name = "applu"; seed = 102; outer_iters = 120; segments = 3;
      branch_density = 0.1; branch_bias = 0.8; while_fraction = 0.0;
      trip_choices = lp; nest_prob = 0.8; stmts_per_block = 6 };
    { name = "apsi"; seed = 103; outer_iters = 150; segments = 4;
      branch_density = 0.2; branch_bias = 0.7; while_fraction = 0.1;
      trip_choices = mid; nest_prob = 0.7; stmts_per_block = 5 };
    { name = "art"; seed = 104; outer_iters = 500; segments = 3;
      branch_density = 0.5; branch_bias = 0.5; while_fraction = 0.1;
      trip_choices = lp; nest_prob = 0.5; stmts_per_block = 3 };
    { name = "bzip2"; seed = 105; outer_iters = 500; segments = 4;
      branch_density = 0.6; branch_bias = 0.7; while_fraction = 0.4;
      trip_choices = short; nest_prob = 0.5; stmts_per_block = 3 };
    { name = "crafty"; seed = 106; outer_iters = 400; segments = 6;
      branch_density = 0.7; branch_bias = 0.6; while_fraction = 0.3;
      trip_choices = short; nest_prob = 0.3; stmts_per_block = 3 };
    { name = "equake"; seed = 107; outer_iters = 250; segments = 3;
      branch_density = 0.3; branch_bias = 0.8; while_fraction = 0.1;
      trip_choices = mid; nest_prob = 0.6; stmts_per_block = 5 };
    { name = "gap"; seed = 108; outer_iters = 400; segments = 5;
      branch_density = 0.6; branch_bias = 0.55; while_fraction = 0.4;
      trip_choices = short; nest_prob = 0.4; stmts_per_block = 3 };
    { name = "gzip"; seed = 109; outer_iters = 600; segments = 3;
      branch_density = 0.5; branch_bias = 0.7; while_fraction = 0.6;
      trip_choices = short; nest_prob = 0.5; stmts_per_block = 3 };
    { name = "mcf"; seed = 110; outer_iters = 400; segments = 3;
      branch_density = 0.6; branch_bias = 0.6; while_fraction = 0.5;
      trip_choices = short; nest_prob = 0.4; stmts_per_block = 2 };
    { name = "mesa"; seed = 111; outer_iters = 300; segments = 4;
      branch_density = 0.4; branch_bias = 0.75; while_fraction = 0.1;
      trip_choices = mid; nest_prob = 0.6; stmts_per_block = 5 };
    { name = "mgrid"; seed = 112; outer_iters = 80; segments = 2;
      branch_density = 0.05; branch_bias = 0.9; while_fraction = 0.0;
      trip_choices = lp; nest_prob = 0.9; stmts_per_block = 7 };
    { name = "parser"; seed = 113; outer_iters = 450; segments = 5;
      branch_density = 0.7; branch_bias = 0.55; while_fraction = 0.5;
      trip_choices = short; nest_prob = 0.4; stmts_per_block = 3 };
    { name = "sixtrack"; seed = 114; outer_iters = 150; segments = 3;
      branch_density = 0.2; branch_bias = 0.8; while_fraction = 0.0;
      trip_choices = mid; nest_prob = 0.7; stmts_per_block = 6 };
    { name = "swim"; seed = 115; outer_iters = 80; segments = 2;
      branch_density = 0.05; branch_bias = 0.9; while_fraction = 0.0;
      trip_choices = lp; nest_prob = 0.8; stmts_per_block = 7 };
    { name = "twolf"; seed = 116; outer_iters = 400; segments = 5;
      branch_density = 0.6; branch_bias = 0.6; while_fraction = 0.3;
      trip_choices = short; nest_prob = 0.4; stmts_per_block = 4 };
    { name = "vortex"; seed = 117; outer_iters = 350; segments = 5;
      branch_density = 0.5; branch_bias = 0.75; while_fraction = 0.3;
      trip_choices = short; nest_prob = 0.4; stmts_per_block = 4 };
    { name = "vpr"; seed = 118; outer_iters = 400; segments = 4;
      branch_density = 0.5; branch_bias = 0.6; while_fraction = 0.3;
      trip_choices = mid; nest_prob = 0.5; stmts_per_block = 4 };
    { name = "wupwise"; seed = 119; outer_iters = 120; segments = 3;
      branch_density = 0.1; branch_bias = 0.85; while_fraction = 0.0;
      trip_choices = lp; nest_prob = 0.8; stmts_per_block = 6 };
  ]

(** The 19 generated SPEC-like workloads of Table 3. *)
let all : Workload.t list = List.map generate recipes

let by_name name = List.find_opt (fun w -> w.Workload.name = name) all
