(** Deterministic linear-congruential generator for workload data and the
    SPEC-like program generator.  No dependence on [Random], so runs are
    reproducible across OCaml versions. *)

type t

val create : int -> t
val next : t -> int

val int : t -> int -> int
(** Uniform in [0, bound). *)

val flip : t -> float -> bool
(** Bernoulli with the given probability. *)

val pick : t -> 'a list -> 'a

val fill : ?bound:int -> t -> int array -> unit
(** Fill an array with small pseudo-random values. *)
