(** A workload: a mini-language program plus its inputs.

    [init_memory] must be deterministic; every run of a workload
    therefore produces identical results, which the semantic-preservation
    tests rely on. *)

open Trips_lang

type t = {
  name : string;
  description : string;  (** control-flow character being modeled *)
  program : Ast.program;
  args : (string * int) list;  (** parameter values *)
  memory_words : int;
  init_memory : int array -> unit;
  frontend_unroll : int;  (** for-loop unroll factor in the front end *)
}

val make :
  ?args:(string * int) list ->
  ?memory_words:int ->
  ?init_memory:(int array -> unit) ->
  ?frontend_unroll:int ->
  name:string ->
  description:string ->
  Ast.program ->
  t

val memory : t -> int array
(** Instantiate the (freshly initialized) memory image. *)
