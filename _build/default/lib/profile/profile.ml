(* Execution profiles: block counts, edge counts and loop trip-count
   histograms.

   The paper's policies consume an edge-frequency profile, and its loop
   peeling policy additionally consumes trip-count histograms (Section 5).
   A [collector] is fed block transitions online by the functional
   simulator; trip counts are derived during collection using natural-loop
   information from the profiled CFG. *)

open Trips_analysis

module Edge = struct
  type t = int * int

  let equal (a, b) (c, d) = a = c && b = d
  let hash (a, b) = (a * 65599) + b
end

module EdgeTbl = Hashtbl.Make (Edge)

type t = {
  block_counts : (int, int) Hashtbl.t;
  edge_counts : int EdgeTbl.t;
  trip_histograms : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (* loop header -> (trip count -> occurrences) *)
}

type collector = {
  profile : t;
  loops : Loops.t option;
  mutable prev : int option;
  active_trips : (int, int) Hashtbl.t;  (* header -> iterations so far *)
}

let empty () =
  {
    block_counts = Hashtbl.create 64;
    edge_counts = EdgeTbl.create 64;
    trip_histograms = Hashtbl.create 8;
  }

let collector ?loops () =
  { profile = empty (); loops; prev = None; active_trips = Hashtbl.create 8 }

let incr_tbl tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let record_trip p ~header ~trips =
  let hist =
    match Hashtbl.find_opt p.trip_histograms header with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.add p.trip_histograms header h;
      h
  in
  incr_tbl hist trips

(* Trip count = number of back-edge traversals per loop entry, which for a
   test-at-top (while) loop equals the number of body iterations.  Entries
   that exit without iterating record a trip count of zero — the peeling
   policy needs to see those. *)
let flush_trip c header =
  match Hashtbl.find_opt c.active_trips header with
  | Some n ->
    record_trip c.profile ~header ~trips:n;
    Hashtbl.remove c.active_trips header
  | None -> ()

(** Record the execution of block [id], arriving from the previously
    recorded block (if any). *)
let record_block c id =
  incr_tbl c.profile.block_counts id;
  (match c.prev with
  | Some src ->
    let n =
      1 + Option.value ~default:0 (EdgeTbl.find_opt c.profile.edge_counts (src, id))
    in
    EdgeTbl.replace c.profile.edge_counts (src, id) n;
    (match c.loops with
    | Some loops when Loops.is_loop_header loops id ->
      if Loops.is_back_edge loops ~src ~dst:id then
        incr_tbl c.active_trips id
      else begin
        (* fresh entry into the loop: close any previous episode *)
        flush_trip c id;
        Hashtbl.replace c.active_trips id 0
      end
    | Some _ | None -> ())
  | None ->
    (* first block of the run; may itself be a loop header *)
    match c.loops with
    | Some loops when Loops.is_loop_header loops id ->
      Hashtbl.replace c.active_trips id 0
    | Some _ | None -> ());
  c.prev <- Some id

(** Close all in-flight trip-count episodes; call at end of run. *)
let finish c =
  Hashtbl.iter
    (fun header n -> record_trip c.profile ~header ~trips:n)
    c.active_trips;
  Hashtbl.reset c.active_trips;
  c.profile

let block_count p id = Option.value ~default:0 (Hashtbl.find_opt p.block_counts id)

let edge_count p ~src ~dst =
  Option.value ~default:0 (EdgeTbl.find_opt p.edge_counts (src, dst))

(** Probability of taking edge [src -> dst] among all recorded departures
    from [src]; 0 if [src] was never executed. *)
let edge_prob p ~src ~dst =
  let total = block_count p src in
  if total = 0 then 0.0
  else float_of_int (edge_count p ~src ~dst) /. float_of_int total

(** Trip-count histogram of the loop headed by [header], sorted by trip
    count. *)
let trip_histogram p header =
  match Hashtbl.find_opt p.trip_histograms header with
  | None -> []
  | Some h ->
    Hashtbl.fold (fun trips occ acc -> (trips, occ) :: acc) h []
    |> List.sort compare

let average_trip_count p header =
  match trip_histogram p header with
  | [] -> None
  | hist ->
    let total, weighted =
      List.fold_left
        (fun (t, w) (trips, occ) -> (t + occ, w + (trips * occ)))
        (0, 0) hist
    in
    Some (float_of_int weighted /. float_of_int total)

(** Most common trip count, the paper's input to the peeling threshold
    policy. *)
let dominant_trip_count p header =
  match trip_histogram p header with
  | [] -> None
  | hist ->
    let best =
      List.fold_left
        (fun best (trips, occ) ->
          match best with
          | Some (_, bocc) when bocc >= occ -> best
          | _ -> Some (trips, occ))
        None hist
    in
    Option.map fst best

(** Fraction of loop entries whose trip count was at least [n]. *)
let trip_count_at_least p header n =
  match trip_histogram p header with
  | [] -> 0.0
  | hist ->
    let total, ge =
      List.fold_left
        (fun (t, g) (trips, occ) ->
          (t + occ, if trips >= n then g + occ else g))
        (0, 0) hist
    in
    float_of_int ge /. float_of_int total

(** Translate a profile collected on one CFG onto a renaming of its
    blocks, used when transformations copy a profiled CFG. *)
let rename_blocks p f =
  let q = empty () in
  Hashtbl.iter (fun id n -> Hashtbl.replace q.block_counts (f id) n) p.block_counts;
  EdgeTbl.iter
    (fun (s, d) n -> EdgeTbl.replace q.edge_counts (f s, f d) n)
    p.edge_counts;
  Hashtbl.iter
    (fun h hist -> Hashtbl.replace q.trip_histograms (f h) (Hashtbl.copy hist))
    p.trip_histograms;
  q

let pp fmt p =
  Fmt.pf fmt "@[<v>profile:";
  Hashtbl.fold (fun id n acc -> (id, n) :: acc) p.block_counts []
  |> List.sort compare
  |> List.iter (fun (id, n) -> Fmt.pf fmt "@,b%d: %d" id n);
  Fmt.pf fmt "@]"
