(** Execution profiles: block counts, edge counts and loop trip-count
    histograms.

    The paper's block-selection policies consume an edge-frequency
    profile, and its loop-peeling policy additionally consumes trip-count
    histograms (Section 5).  A {!collector} is fed block transitions
    online by the functional simulator; trip counts are derived during
    collection using natural-loop information from the profiled CFG.

    Trip count = number of back-edge traversals per loop entry, which for
    a test-at-top (while) loop equals the number of body iterations;
    entries that exit without iterating record zero. *)

open Trips_analysis

type t

type collector

val empty : unit -> t

val collector : ?loops:Loops.t -> unit -> collector
(** Loop information enables trip-count histograms. *)

val record_block : collector -> int -> unit
(** Record the execution of a block, arriving from the previously
    recorded block (if any). *)

val finish : collector -> t
(** Close all in-flight trip-count episodes; call at end of run. *)

val block_count : t -> int -> int
val edge_count : t -> src:int -> dst:int -> int

val edge_prob : t -> src:int -> dst:int -> float
(** Probability of the edge among all recorded departures from [src]; 0
    when [src] was never executed. *)

val trip_histogram : t -> int -> (int * int) list
(** [(trips, occurrences)] pairs for the loop headed by the block, sorted
    by trip count. *)

val average_trip_count : t -> int -> float option

val dominant_trip_count : t -> int -> int option
(** Most common trip count — the input to the peeling threshold policy. *)

val trip_count_at_least : t -> int -> int -> float
(** [trip_count_at_least p header n]: fraction of the loop's entries that
    ran at least [n] iterations. *)

val rename_blocks : t -> (int -> int) -> t
(** Translate a profile onto a renaming of its blocks. *)

val pp : Format.formatter -> t -> unit
