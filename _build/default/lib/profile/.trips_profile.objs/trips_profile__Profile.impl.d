lib/profile/profile.ml: Fmt Hashtbl List Loops Option Trips_analysis
