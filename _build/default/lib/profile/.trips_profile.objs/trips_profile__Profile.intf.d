lib/profile/profile.mli: Format Loops Trips_analysis
