(** Discrete-phase, CFG-level loop unrolling and peeling.

    The classical transformations a fixed phase ordering (the paper's
    UPIO configuration) applies as separate passes: the whole
    natural-loop body is replicated block-by-block with every iteration
    keeping its own exit test; no predication is involved.  Contrast with
    head duplication (lib/core), which performs peeling and unrolling
    incrementally inside hyperblock formation. *)

open Trips_ir
open Trips_analysis

val unroll : Cfg.t -> Loops.loop -> factor:int -> int
(** Replicate the body so it appears [factor] times per back-edge trip
    ([factor <= 1] is the identity).  Any trip count remains correct.
    Returns the number of blocks added. *)

val peel : Cfg.t -> Loops.loop -> count:int -> int
(** Run [count] copies of the body (each with its own exit test) before
    entering the original loop.  Returns the number of blocks added. *)
