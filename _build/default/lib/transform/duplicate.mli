(** Block duplication helpers shared by tail duplication, head
    duplication and the discrete-phase CFG-level loop transformations.

    Copies keep their exits verbatim, so a self-loop exit in the original
    points at the {e original} from the copy — exactly the rewiring head
    duplication needs (paper Figures 3 and 4). *)

open Trips_ir

val copy_block : Cfg.t -> Block.t -> Block.t
(** Copy under a fresh block id with fresh instruction ids, installed in
    the CFG. *)

val scratch_copy : Cfg.t -> Block.t -> Block.t
(** Same, but not installed — for merges that may be abandoned. *)

val redirect_exits : Block.t -> from_:int -> to_:int -> Block.t
(** Redirect every exit targeting [from_] to [to_] (not installed). *)

val redirect_all : Cfg.t -> int list -> from_:int -> to_:int -> unit
(** Redirect and install for every block in the list. *)
