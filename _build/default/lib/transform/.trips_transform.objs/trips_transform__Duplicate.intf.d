lib/transform/duplicate.mli: Block Cfg Trips_ir
