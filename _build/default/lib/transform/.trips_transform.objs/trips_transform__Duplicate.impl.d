lib/transform/duplicate.ml: Block Cfg List Trips_ir
