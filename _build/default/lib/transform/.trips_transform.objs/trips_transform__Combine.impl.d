lib/transform/combine.ml: Block Cfg Fmt Hashtbl Instr IntMap IntSet List Opcode Option Trips_ir
