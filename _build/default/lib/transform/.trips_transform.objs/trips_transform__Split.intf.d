lib/transform/split.mli: Cfg Trips_ir
