lib/transform/cfg_loop.ml: Block Cfg Duplicate IntMap IntSet List Loops Trips_analysis Trips_ir
