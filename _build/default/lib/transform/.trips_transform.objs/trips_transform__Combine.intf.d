lib/transform/combine.mli: Block Cfg Trips_ir
