lib/transform/cfg_loop.mli: Cfg Loops Trips_analysis Trips_ir
