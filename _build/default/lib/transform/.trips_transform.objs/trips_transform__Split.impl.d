lib/transform/split.ml: Block Cfg List Trips_ir
