(* Block duplication helpers shared by tail duplication, head duplication
   and the discrete-phase CFG-level loop transformations. *)

open Trips_ir

(** Copy block [b] under a fresh id with fresh instruction ids.  Exits are
    copied verbatim, so a self-loop exit in the original points at the
    *original* from the copy — which is exactly the rewiring head
    duplication needs (Figures 3 and 4).  The copy is installed in the
    CFG. *)
let copy_block cfg (b : Block.t) : Block.t =
  let id = Cfg.fresh_block_id cfg in
  let copy = Cfg.refresh_instr_ids cfg { b with Block.id } in
  Cfg.set_block cfg copy;
  copy

(** Copy block [b] under a fresh id without installing it, for scratch
    merges that may be abandoned. *)
let scratch_copy cfg (b : Block.t) : Block.t =
  let id = Cfg.fresh_block_id cfg in
  Cfg.refresh_instr_ids cfg { b with Block.id }

(** Redirect every exit of [b] that targets [from_] to [to_]; returns the
    rewritten block (not installed). *)
let redirect_exits (b : Block.t) ~from_ ~to_ : Block.t =
  Block.map_targets (fun t -> if t = from_ then to_ else t) b

(** Redirect exits of every block in [ids] from [from_] to [to_],
    installing results in the CFG. *)
let redirect_all cfg ids ~from_ ~to_ =
  List.iter
    (fun id ->
      let b = Cfg.block cfg id in
      Cfg.set_block cfg (redirect_exits b ~from_ ~to_))
    ids
