(** The merge primitive: if-convert block S into hyperblock HB.

    All three duplication flavors of the paper reduce to this single
    operation applied to a copy of S whose exits still name the original
    targets:

    - unique predecessor: merge S itself, then delete S;
    - tail duplication / head-duplication peeling: merge a fresh copy
      (a copied self-loop exit points at the original — Figure 3);
    - head-duplication unrolling: [s_label] is HB's own id and S is a
      copy of the saved one-iteration loop body (Figure 4).

    The merge computes the entry predicate from HB's exits that target
    [s_label] (OR-ing several, negations via [xor 1] on the 0/1 branch
    guards), conjoins it with S's instruction and exit guards (emitting
    the conjunction instructions that are the paper's "additional
    predication" cost of duplication), snapshots any register a kept exit
    reads that S redefines — including the entry-predicate register
    itself — and preserves the exactly-one-exit invariant. *)

open Trips_ir

exception Cannot_combine of string
(** Raised when HB has no exit to [s_label], or mixes an unguarded exit
    to it with other exits (whose guards would then be dead). *)

type stats = { combine_instrs : int }
(** Helper instructions (negations, disjunctions, conjunctions,
    snapshots) the merge added. *)

val combine :
  Cfg.t -> hb:Block.t -> s:Block.t -> s_label:int -> Block.t * stats
(** Returns the merged block (HB's id) without installing it; callers
    commit or abandon it.  [s]'s instruction ids must already be fresh if
    [s] is a duplicate. *)
