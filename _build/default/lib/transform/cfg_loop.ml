(* Discrete-phase, CFG-level loop unrolling and peeling.

   These are the classical transformations a fixed phase ordering (the
   paper's UPIO and IUPO configurations) applies as a separate pass: the
   whole natural-loop body is replicated block-by-block, with every
   iteration keeping its own exit test (while-loop unrolling cannot remove
   intermediate tests).  No predication is involved — side entrances never
   arise because copies are chained through their headers.

   Contrast with head duplication (lib/core), which performs the same
   peeling and unrolling *incrementally inside* hyperblock formation. *)

open Trips_ir
open Trips_analysis

(* Copy every block of [body], returning the id map.  Exits are rewired
   inside the copy: targets within the body map to their copies, except
   back edges to the header, which [next_header] overrides (the next
   iteration's header, or the original header for the last copy). *)
let copy_body cfg (l : Loops.loop) ~next_header =
  let mapping =
    IntSet.fold
      (fun id acc ->
        let b = Cfg.block cfg id in
        let copy = Duplicate.copy_block cfg b in
        IntMap.add id copy.Block.id acc)
      l.Loops.body IntMap.empty
  in
  let rewire t =
    if t = l.Loops.header then next_header
    else IntMap.find_or ~default:t t mapping
  in
  IntMap.iter
    (fun _ copy_id ->
      let b = Cfg.block cfg copy_id in
      Cfg.set_block cfg (Block.map_targets rewire b))
    mapping;
  mapping

(* In-body back edges to the header; [body] contains only such sources. *)
let redirect_back_edges cfg (l : Loops.loop) ~to_ =
  IntSet.iter
    (fun latch ->
      let b = Cfg.block cfg latch in
      Cfg.set_block cfg
        (Duplicate.redirect_exits b ~from_:l.Loops.header ~to_))
    l.Loops.latches

(** Unroll the loop so its body appears [factor] times per back-edge trip.
    [factor <= 1] is the identity.  Each replica keeps its exit test, so
    any trip count remains correct.  Returns the number of blocks added. *)
let unroll cfg (l : Loops.loop) ~factor =
  if factor <= 1 then 0
  else begin
    (* Build copies last-to-first so each knows its successor's header. *)
    let rec build j next_header acc =
      if j = 0 then acc
      else
        let mapping = copy_body cfg l ~next_header in
        build (j - 1) (IntMap.find l.Loops.header mapping) (mapping :: acc)
    in
    let mappings = build (factor - 1) l.Loops.header [] in
    (match mappings with
    | first :: _ ->
      redirect_back_edges cfg l ~to_:(IntMap.find l.Loops.header first)
    | [] -> ());
    (factor - 1) * IntSet.cardinal l.Loops.body
  end

(** Peel [count] iterations: the loop entry now runs [count] copies of the
    body (each with its own exit test) before reaching the original loop.
    Returns the number of blocks added. *)
let peel cfg (l : Loops.loop) ~count =
  if count <= 0 then 0
  else begin
    (* Entry edges: predecessors of the header outside the body. *)
    let preds = Cfg.predecessors cfg l.Loops.header in
    let outside = List.filter (fun p -> not (IntSet.mem p l.Loops.body)) preds in
    let rec build j next_header acc =
      if j = 0 then acc
      else
        let mapping = copy_body cfg l ~next_header in
        build (j - 1) (IntMap.find l.Loops.header mapping) (mapping :: acc)
    in
    let mappings = build count l.Loops.header [] in
    (match mappings with
    | first :: _ ->
      let first_header = IntMap.find l.Loops.header first in
      Duplicate.redirect_all cfg outside ~from_:l.Loops.header ~to_:first_header;
      if cfg.Cfg.entry = l.Loops.header then cfg.Cfg.entry <- first_header
    | [] -> ());
    count * IntSet.cardinal l.Loops.body
  end
