(** Block splitting (shared by reverse if-conversion and the optional
    block-splitting extension of hyperblock formation, paper Section 9).
    The first half ends in an unconditional jump to the new second block,
    which keeps all original exits; program order is preserved. *)

open Trips_ir

val split_block : ?at:int -> Cfg.t -> int -> int option
(** Split at instruction index [at] (default: the middle).  [None] when
    either side would be empty. *)
