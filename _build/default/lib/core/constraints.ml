(* TRIPS structural-constraint checking with back-end size estimation.

   Hyperblock formation runs long before register allocation and fanout
   insertion, so [LegalBlock] must *estimate* the final block size
   (paper Section 6): besides the instructions currently in the block it
   accounts for
   - one branch per exit (TRIPS branches are ordinary instructions);
   - fanout movs for values with more consumers than an instruction can
     name as targets;
   - null writes needed to satisfy the constant-output constraint on
     output registers that are only written under a predicate;
   plus the register-read, register-write and load/store-identifier
   budgets. *)

open Trips_ir
open Trips_analysis

type estimate = {
  instrs : int;  (* regular-instruction budget consumed, incl. overheads *)
  loads_stores : int;
  reads : int;  (* architectural register reads (block inputs) *)
  writes : int;  (* architectural register writes (block outputs) *)
}

type limits = {
  max_instrs : int;
  max_load_store : int;
  max_reads : int;
  max_writes : int;
}

let trips_limits =
  {
    max_instrs = Machine.max_instrs;
    max_load_store = Machine.max_load_store;
    max_reads = Machine.max_reads;
    max_writes = Machine.max_writes;
  }

(* Extra movs needed to fan a value out to [consumers] targets when one
   instruction can name at most [Machine.max_targets]: each mov consumes
   one target slot and provides [max_targets]. *)
let fanout_movs consumers =
  if consumers <= Machine.max_targets then 0
  else consumers - Machine.max_targets

(** Estimate the resources block [b] will occupy after the back end runs,
    given the registers live out of it. *)
let estimate (b : Block.t) ~live_out : estimate =
  let defs = Block.defs b in
  let outputs = IntSet.inter defs live_out in
  let reads = IntSet.cardinal (Liveness.block_inputs b ~live_out) in
  let writes = IntSet.cardinal outputs in
  let loads_stores = Block.num_load_store b in
  (* consumer counts per defined register: operand occurrences + exit
     reads + one output-write slot if live out *)
  let consumers = Hashtbl.create 32 in
  let bump r n =
    if IntSet.mem r defs then
      Hashtbl.replace consumers r (n + Option.value ~default:0 (Hashtbl.find_opt consumers r))
  in
  List.iter
    (fun i -> List.iter (fun r -> bump r 1) (Instr.uses i))
    b.Block.instrs;
  IntSet.iter (fun r -> bump r 1) (Block.exit_uses b);
  IntSet.iter (fun r -> bump r 1) outputs;
  let fanout =
    Hashtbl.fold (fun _ n acc -> acc + fanout_movs n) consumers 0
  in
  (* null writes: an output register all of whose definitions are guarded
     needs a predicated-complement null write so the block always emits
     the same number of outputs *)
  let unconditional = Block.must_defs b in
  let nullws =
    IntSet.cardinal (IntSet.diff outputs unconditional)
  in
  let branches = List.length b.Block.exits in
  {
    instrs = Block.size b + branches + fanout + nullws;
    loads_stores;
    reads;
    writes;
  }

(** Does the estimate fit the limits, with [slack] instruction slots held
    back for register-allocator spill code? *)
let legal ?(slack = 0) limits e =
  e.instrs <= limits.max_instrs - slack
  && e.loads_stores <= limits.max_load_store
  && e.reads <= limits.max_reads
  && e.writes <= limits.max_writes

(** Fullness of a block as a fraction of the instruction budget, used in
    reporting. *)
let utilization limits e =
  float_of_int e.instrs /. float_of_int limits.max_instrs

let pp_estimate fmt e =
  Fmt.pf fmt "instrs=%d ls=%d reads=%d writes=%d" e.instrs e.loads_stores
    e.reads e.writes
