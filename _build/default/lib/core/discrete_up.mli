(** Discrete unroll/peel phases for the classical orderings of Table 1.

    UPIO unrolls and peels {e before} if-conversion: CFG-level body
    replication (tests retained) with a factor chosen from a pessimistic
    pre-predication size estimate, innermost loops only.  IUPO unrolls
    and peels {e after} if-conversion: loops are single self-looping
    hyperblocks by then, so the factor is accurate, but it is applied in
    one shot with no interleaved optimization — which is what separates
    it from convergent formation. *)

open Trips_ir
open Trips_profile

val peel_count :
  Profile.t -> header:int -> max_peel:int -> coverage:float -> int
(** Largest [k <= max_peel] such that at least [coverage] of the loop's
    entries run [>= k] iterations. *)

val run_before_formation : Policy.config -> Cfg.t -> Profile.t -> int * int
(** UPIO's U and P.  Returns (unrolled, peeled) iteration counts. *)

val run_after_formation :
  Policy.config -> Cfg.t -> Profile.t -> Formation.stats -> unit
(** IUPO's U and P, accumulating into the given statistics. *)
