lib/core/phases.ml: Discrete_up Formation Policy Profile Trips_opt Trips_profile
