lib/core/policy.ml: Block Cfg Constraints Float IntMap IntSet Latency List Profile Trips_ir Trips_profile
