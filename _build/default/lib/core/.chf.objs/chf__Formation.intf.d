lib/core/formation.mli: Block Cfg Format Hashtbl Policy Profile Trips_analysis Trips_ir Trips_profile
