lib/core/phases.mli: Formation Policy Profile Trips_ir Trips_profile
