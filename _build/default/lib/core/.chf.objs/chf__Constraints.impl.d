lib/core/constraints.ml: Block Fmt Hashtbl Instr IntSet List Liveness Machine Option Trips_analysis Trips_ir
