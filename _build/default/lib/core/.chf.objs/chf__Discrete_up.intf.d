lib/core/discrete_up.mli: Cfg Formation Policy Profile Trips_ir Trips_profile
