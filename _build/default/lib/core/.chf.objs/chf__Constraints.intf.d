lib/core/constraints.mli: Block Format IntSet Trips_ir
