lib/core/policy.mli: Cfg Constraints Profile Trips_ir Trips_profile
