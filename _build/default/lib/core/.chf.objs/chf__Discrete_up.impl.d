lib/core/discrete_up.ml: Block Cfg Constraints Formation IntSet List Liveness Loops Order Policy Profile Trips_analysis Trips_ir Trips_profile Trips_transform
