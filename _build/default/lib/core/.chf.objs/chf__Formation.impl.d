lib/core/formation.ml: Block Cfg Combine Constraints Fmt Hashtbl List Liveness Loops Option Order Policy Profile Trips_analysis Trips_ir Trips_opt Trips_profile Trips_transform
