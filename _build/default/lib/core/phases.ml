(* The phase orderings compared in Table 1.

   Parenthesized phases are merged into convergent formation's iterative
   loop; unparenthesized ones run as discrete passes:

   - BB      : basic blocks as TRIPS blocks (baseline);
   - UPIO    : CFG-level Unroll+Peel, then incremental If-conversion with
               tail duplication, then scalar Optimization;
   - IUPO    : If-conversion first, then Unroll+Peel with accurate
               post-if-conversion sizes, then Optimization;
   - (IUP)O  : convergent formation with head duplication (I, U and P
               interleaved) but optimization only at the end;
   - (IUPO)  : full convergent formation — optimization runs after every
               merge, so size estimates are tight and more blocks fit. *)

open Trips_profile

type ordering =
  | Basic_blocks
  | Upio
  | Iupo
  | Iup_o  (* (IUP)O *)
  | Iupo_merged  (* (IUPO) *)

let all = [ Basic_blocks; Upio; Iupo; Iup_o; Iupo_merged ]

let name = function
  | Basic_blocks -> "BB"
  | Upio -> "UPIO"
  | Iupo -> "IUPO"
  | Iup_o -> "(IUP)O"
  | Iupo_merged -> "(IUPO)"

(** Apply phase ordering [o] to [cfg] in place.  [config] supplies the
    block-selection policy and structural limits (Table 1 uses the greedy
    breadth-first EDGE policy throughout).  Classical scalar optimization
    runs first in every configuration, mirroring the Scale front end.
    Returns m/t/u/p statistics. *)
let apply ?(config = Policy.edge_default) o cfg (profile : Profile.t) :
    Formation.stats =
  let optimize () = Trips_opt.Optimizer.optimize_cfg cfg in
  optimize ();
  match o with
  | Basic_blocks -> Formation.empty_stats ()
  | Upio ->
    let u, p = Discrete_up.run_before_formation config cfg profile in
    let stats =
      Formation.run
        { config with Policy.enable_head_dup = false; iterate_opt = false }
        cfg profile
    in
    stats.Formation.unrolls <- stats.Formation.unrolls + u;
    stats.Formation.peels <- stats.Formation.peels + p;
    optimize ();
    stats
  | Iupo ->
    let stats =
      Formation.run
        { config with Policy.enable_head_dup = false; iterate_opt = false }
        cfg profile
    in
    Discrete_up.run_after_formation config cfg profile stats;
    optimize ();
    stats
  | Iup_o ->
    let stats =
      Formation.run
        { config with Policy.enable_head_dup = true; iterate_opt = false }
        cfg profile
    in
    optimize ();
    stats
  | Iupo_merged ->
    let stats =
      Formation.run
        { config with Policy.enable_head_dup = true; iterate_opt = true }
        cfg profile
    in
    optimize ();
    stats
