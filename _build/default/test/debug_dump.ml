open Trips_harness
open Trips_workloads

let () =
  let w = Option.get (Micro.by_name Sys.argv.(1)) in
  let o = match Sys.argv.(2) with
    | "UPIO" -> Chf.Phases.Upio | "IUPO" -> Chf.Phases.Iupo
    | "IUP_O" -> Chf.Phases.Iup_o | "BB" -> Chf.Phases.Basic_blocks
    | _ -> Chf.Phases.Iupo_merged in
  let c = Pipeline.compile ~backend:true o w in
  let memory = Workload.memory w in
  let r = Trips_sim.Cycle_sim.run ~trace:8 ~registers:c.Pipeline.registers ~memory c.Pipeline.cfg in
  Fmt.pr "cycles=%d blocks=%d fired=%d mispred=%d acc=%.3f@."
    r.Trips_sim.Cycle_sim.cycles r.Trips_sim.Cycle_sim.blocks r.Trips_sim.Cycle_sim.instrs_fired
    r.Trips_sim.Cycle_sim.mispredictions r.Trips_sim.Cycle_sim.predictor_accuracy;
  if Array.length Sys.argv > 3 then Fmt.pr "%a@." Trips_ir.Cfg.pp c.Pipeline.cfg
