test/test_workloads.ml: Alcotest Fmt Generators List Micro Option Rng Spec_like Trips_analysis Trips_harness Trips_ir Trips_profile Trips_sim Trips_workloads Workload
