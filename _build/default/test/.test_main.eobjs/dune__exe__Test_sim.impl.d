test/test_sim.ml: Alcotest Array Block Cache Cfg Chf Cycle_sim Fmt Func_sim Instr List Machine Option Predictor Trips_harness Trips_ir Trips_profile Trips_sim Trips_workloads
