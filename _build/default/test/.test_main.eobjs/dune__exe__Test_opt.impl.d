test/test_opt.ml: Alcotest Array Block Cfg Generators Instr IntSet List Opcode QCheck2 QCheck_alcotest Trips_harness Trips_ir Trips_opt Trips_sim Trips_workloads
