test/test_analysis.ml: Alcotest Block Cfg Dominators Generators Guard_logic Hashtbl Instr IntMap IntSet List Liveness Loops Opcode Order QCheck2 QCheck_alcotest Trips_analysis Trips_ir Trips_lang
