test/test_ir.ml: Alcotest Array Block Builder Cfg Instr IntSet List Opcode QCheck2 QCheck_alcotest Trips_ir Trips_sim
