test/test_integration.ml: Alcotest Chf Figure7 Fmt Generators List Micro Option Pipeline QCheck2 QCheck_alcotest Spec_like Stats Table1 Trips_harness Trips_ir Trips_sim Trips_workloads Workload
