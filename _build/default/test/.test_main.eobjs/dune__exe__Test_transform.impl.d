test/test_transform.ml: Alcotest Array Block Cfg Cfg_loop Combine Duplicate Instr List Opcode Printf Trips_analysis Trips_ir Trips_lang Trips_sim Trips_transform
