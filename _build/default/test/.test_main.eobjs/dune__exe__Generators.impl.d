test/generators.ml: Array Ast Block Cfg Chf Fmt Instr List Opcode Printf QCheck2 Trips_analysis Trips_harness Trips_ir Trips_lang Trips_sim Trips_workloads
