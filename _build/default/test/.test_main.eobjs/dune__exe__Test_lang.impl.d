test/test_lang.ml: Alcotest Array Ast Chf Func_sim Generators Inline List Lower Parser QCheck2 QCheck_alcotest Stdlib Trips_harness Trips_lang Trips_sim Trips_workloads Unroll_for
