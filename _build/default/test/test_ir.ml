(* Unit and property tests for the IR substrate. *)

open Trips_ir

let check = Alcotest.check
let qtest name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

(* ---- opcodes ----------------------------------------------------------- *)

let test_binop_semantics () =
  check Alcotest.int "add" 7 (Opcode.eval_binop Opcode.Add 3 4);
  check Alcotest.int "sub" (-1) (Opcode.eval_binop Opcode.Sub 3 4);
  check Alcotest.int "mul" 12 (Opcode.eval_binop Opcode.Mul 3 4);
  check Alcotest.int "div by zero is total" 0 (Opcode.eval_binop Opcode.Div 3 0);
  check Alcotest.int "rem by zero is total" 0 (Opcode.eval_binop Opcode.Rem 3 0);
  check Alcotest.int "shl" 12 (Opcode.eval_binop Opcode.Shl 3 2);
  check Alcotest.int "asr negative" (-2) (Opcode.eval_binop Opcode.Asr (-8) 2)

let test_cmp_semantics () =
  List.iter
    (fun (op, a, b, expect) ->
      check Alcotest.int (Opcode.cmpop_to_string op) expect
        (Opcode.eval_cmp op a b))
    [
      (Opcode.Eq, 3, 3, 1); (Opcode.Eq, 3, 4, 0);
      (Opcode.Ne, 3, 4, 1); (Opcode.Lt, -1, 0, 1);
      (Opcode.Le, 0, 0, 1); (Opcode.Gt, 1, 0, 1);
      (Opcode.Ge, 0, 1, 0);
    ]

let all_cmps = Opcode.[ Eq; Ne; Lt; Le; Gt; Ge ]

let negate_cmp_complement =
  qtest "negate_cmp complements"
    QCheck2.Gen.(triple (int_bound 5) (int_range (-50) 50) (int_range (-50) 50))
    (fun (opi, a, b) ->
      let op = List.nth all_cmps opi in
      Opcode.eval_cmp op a b + Opcode.eval_cmp (Opcode.negate_cmp op) a b = 1)

let commutative_ops_commute =
  qtest "commutative binops commute"
    QCheck2.Gen.(triple (int_bound 10) (int_range (-100) 100) (int_range (-100) 100))
    (fun (opi, a, b) ->
      let ops =
        Opcode.[ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Asr ]
      in
      let op = List.nth ops opi in
      (not (Opcode.is_commutative op))
      || Opcode.eval_binop op a b = Opcode.eval_binop op b a)

(* ---- instructions ------------------------------------------------------ *)

let instr op = Instr.make 0 op
let guarded g op = Instr.make ~guard:g 0 op

let test_defs_uses () =
  let i = instr (Instr.Binop (Opcode.Add, 5, Instr.Reg 1, Instr.Reg 2)) in
  check Alcotest.(list int) "binop defs" [ 5 ] (Instr.defs i);
  check Alcotest.(list int) "binop uses" [ 1; 2 ] (Instr.uses i);
  let st = instr (Instr.Store (Instr.Reg 3, Instr.Reg 4, 0)) in
  check Alcotest.(list int) "store defs" [] (Instr.defs st);
  check Alcotest.(list int) "store uses" [ 3; 4 ] (Instr.uses st);
  let g = { Instr.greg = 9; sense = true } in
  let gi = guarded g (Instr.Mov (5, Instr.Imm 1)) in
  check Alcotest.(list int) "guard counted as use" [ 9 ] (Instr.uses gi);
  let nw = instr (Instr.Nullw 7) in
  check Alcotest.(list int) "nullw defs" [ 7 ] (Instr.defs nw);
  check Alcotest.(list int) "nullw uses" [ 7 ] (Instr.uses nw)

let test_map_regs () =
  let g = { Instr.greg = 1; sense = false } in
  let i = guarded g (Instr.Binop (Opcode.Add, 2, Instr.Reg 3, Instr.Imm 7)) in
  let j = Instr.map_regs (fun r -> r + 100) i in
  check Alcotest.(list int) "mapped defs" [ 102 ] (Instr.defs j);
  check
    Alcotest.(list int)
    "mapped uses (guard first)" [ 101; 103 ] (Instr.uses j)

(* ---- blocks ------------------------------------------------------------ *)

let mk_block instrs exits = Block.make 0 instrs exits
let ret_exit = { Block.eguard = None; target = Block.Ret None }

let test_must_defs_predication () =
  let g = { Instr.greg = 1; sense = true } in
  let b =
    mk_block
      [
        instr (Instr.Mov (10, Instr.Imm 1));
        guarded g (Instr.Mov (11, Instr.Imm 2));
      ]
      [ ret_exit ]
  in
  check Alcotest.bool "unguarded def is a must-def" true
    (IntSet.mem 10 (Block.must_defs b));
  check Alcotest.bool "guarded def is not a must-def" false
    (IntSet.mem 11 (Block.must_defs b))

let test_upward_exposed () =
  let g = { Instr.greg = 1; sense = true } in
  let b =
    mk_block
      [
        instr (Instr.Mov (10, Instr.Reg 20));
        (* use after unguarded def: not exposed *)
        instr (Instr.Binop (Opcode.Add, 11, Instr.Reg 10, Instr.Imm 1));
        (* guarded def exposes its own register *)
        guarded g (Instr.Mov (12, Instr.Imm 5));
        instr (Instr.Binop (Opcode.Add, 13, Instr.Reg 12, Instr.Imm 1));
      ]
      [ ret_exit ]
  in
  let exposed = Block.upward_exposed_uses b in
  check Alcotest.bool "incoming operand exposed" true (IntSet.mem 20 exposed);
  check Alcotest.bool "defined-then-used not exposed" false (IntSet.mem 10 exposed);
  check Alcotest.bool "guard register exposed" true (IntSet.mem 1 exposed);
  check Alcotest.bool "conditionally-defined register exposed" true
    (IntSet.mem 12 exposed)

let test_exit_uses () =
  let g = { Instr.greg = 3; sense = true } in
  let b =
    mk_block []
      [
        { Block.eguard = Some g; target = Block.Goto 0 };
        {
          Block.eguard = Some { Instr.greg = 3; sense = false };
          target = Block.Ret (Some (Instr.Reg 4));
        };
      ]
  in
  let uses = Block.exit_uses b in
  check Alcotest.bool "guard read" true (IntSet.mem 3 uses);
  check Alcotest.bool "ret operand read" true (IntSet.mem 4 uses);
  (* self-target bookkeeping *)
  check Alcotest.(list int) "successors" [ 0 ] (Block.successors b)

let test_block_counts () =
  let b =
    mk_block
      [
        instr (Instr.Load (1, Instr.Imm 0, 0));
        instr (Instr.Store (Instr.Reg 1, Instr.Imm 1, 0));
        instr (Instr.Mov (2, Instr.Imm 3));
      ]
      [ ret_exit ]
  in
  check Alcotest.int "size" 3 (Block.size b);
  check Alcotest.int "loads" 1 (Block.num_loads b);
  check Alcotest.int "stores" 1 (Block.num_stores b);
  check Alcotest.int "load/store ids" 2 (Block.num_load_store b)

(* ---- cfg --------------------------------------------------------------- *)

let diamond () =
  let cfg = Cfg.create ~name:"diamond" () in
  let ids = List.init 4 (fun _ -> Cfg.fresh_block_id cfg) in
  match ids with
  | [ a; b; c; d ] ->
    let cond = Cfg.fresh_reg cfg in
    let test = Cfg.instr cfg (Instr.Cmp (Opcode.Lt, cond, Instr.Imm 1, Instr.Imm 2)) in
    Cfg.set_block cfg
      (Block.make a [ test ]
         [
           { Block.eguard = Some { Instr.greg = cond; sense = true }; target = Block.Goto b };
           { Block.eguard = Some { Instr.greg = cond; sense = false }; target = Block.Goto c };
         ]);
    Cfg.set_block cfg
      (Block.make b [] [ { Block.eguard = None; target = Block.Goto d } ]);
    Cfg.set_block cfg
      (Block.make c [] [ { Block.eguard = None; target = Block.Goto d } ]);
    Cfg.set_block cfg (Block.make d [] [ ret_exit ]);
    cfg.Cfg.entry <- a;
    (cfg, a, b, c, d)
  | _ -> assert false

let test_cfg_structure () =
  let cfg, a, b, c, d = diamond () in
  Cfg.validate cfg;
  check Alcotest.int "blocks" 4 (Cfg.num_blocks cfg);
  check Alcotest.(list int) "succ of entry" [ b; c ] (List.sort compare (Cfg.successors cfg a));
  check Alcotest.(list int) "preds of join" [ b; c ] (Cfg.predecessors cfg d);
  let copy = Cfg.copy cfg in
  Cfg.remove_block copy d;
  check Alcotest.bool "copy is independent" true (Cfg.mem cfg d && not (Cfg.mem copy d))

let test_validate_rejects () =
  let cfg = Cfg.create () in
  let a = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- a;
  Cfg.set_block cfg
    (Block.make a [] [ { Block.eguard = None; target = Block.Goto 99 } ]);
  Alcotest.check_raises "dangling target"
    (Cfg.Ill_formed "f: block b0 targets missing b99") (fun () ->
      Cfg.validate cfg)

let test_refresh_instr_ids () =
  let cfg, a, _, _, _ = diamond () in
  let b = Cfg.block cfg a in
  let b' = Cfg.refresh_instr_ids cfg b in
  let ids bl = List.map (fun i -> i.Instr.id) bl.Block.instrs in
  check Alcotest.bool "fresh ids differ" true (ids b <> ids b');
  check Alcotest.int "same length" (Block.size b) (Block.size b')

(* ---- builder ----------------------------------------------------------- *)

let test_builder () =
  let bld = Builder.create ~name:"built" () in
  let entry = Builder.start_block bld in
  Builder.set_entry bld entry;
  let r = Builder.emit_value bld (fun d -> Instr.Mov (d, Instr.Imm 42)) in
  Builder.ret ~value:(Instr.Reg r) bld;
  let cfg = Builder.cfg bld in
  Cfg.validate cfg;
  let result = Trips_sim.Func_sim.run ~memory:(Array.make 4 0) cfg in
  check Alcotest.(option int) "returns 42" (Some 42) result.Trips_sim.Func_sim.ret

let suite =
  ( "ir",
    [
      Alcotest.test_case "binop semantics" `Quick test_binop_semantics;
      Alcotest.test_case "cmp semantics" `Quick test_cmp_semantics;
      negate_cmp_complement;
      commutative_ops_commute;
      Alcotest.test_case "defs and uses" `Quick test_defs_uses;
      Alcotest.test_case "map_regs" `Quick test_map_regs;
      Alcotest.test_case "must_defs under predication" `Quick test_must_defs_predication;
      Alcotest.test_case "upward exposed uses" `Quick test_upward_exposed;
      Alcotest.test_case "exit uses" `Quick test_exit_uses;
      Alcotest.test_case "block counts" `Quick test_block_counts;
      Alcotest.test_case "cfg structure" `Quick test_cfg_structure;
      Alcotest.test_case "validate rejects dangling" `Quick test_validate_rejects;
      Alcotest.test_case "refresh instr ids" `Quick test_refresh_instr_ids;
      Alcotest.test_case "builder" `Quick test_builder;
    ] )
