(* Tests for the back end: register allocation (correctness, precoloring,
   bank budgets), fanout insertion (target budgets, semantics) and reverse
   if-conversion (block splitting). *)

open Trips_ir
open Trips_analysis
open Trips_regalloc

let check = Alcotest.check

let compile_through_backend name ordering =
  let w = Option.get (Trips_workloads.Micro.by_name name) in
  let baseline = Generators.baseline_of w in
  let c = Trips_harness.Pipeline.compile ~backend:true ordering w in
  let r = Trips_harness.Pipeline.run_functional c in
  (w, c, baseline, r)

let test_backend_preserves_semantics () =
  List.iter
    (fun name ->
      let _, _, baseline, r =
        compile_through_backend name Chf.Phases.Iupo_merged
      in
      check Alcotest.int (name ^ " checksum")
        baseline.Trips_sim.Func_sim.checksum r.Trips_sim.Func_sim.checksum)
    [ "sieve"; "matrix_1"; "bzip2_3"; "dhry"; "gzip_2"; "twolf_3" ]

let test_cross_block_values_architectural () =
  (* after allocation, every register live across a block boundary is an
     architectural register *)
  List.iter
    (fun name ->
      let _, c, _, _ = compile_through_backend name Chf.Phases.Iupo_merged in
      let cfg = c.Trips_harness.Pipeline.cfg in
      let live = Liveness.compute cfg in
      List.iter
        (fun id ->
          IntSet.iter
            (fun r ->
              check Alcotest.bool
                (Fmt.str "%s: r%d live at b%d boundary is architectural" name r id)
                true (Machine.is_arch r))
            (Liveness.live_in live id))
        (Cfg.block_ids cfg))
    [ "sieve"; "matrix_1"; "parser_1" ]

let test_bank_budgets_respected () =
  List.iter
    (fun name ->
      let _, c, _, _ = compile_through_backend name Chf.Phases.Iupo_merged in
      let viols = Reg_alloc.violations c.Trips_harness.Pipeline.cfg in
      check Alcotest.int (name ^ " bank violations") 0 (List.length viols))
    [ "sieve"; "matrix_1"; "dhry"; "parser_1" ]

let count_consumers (b : Block.t) =
  (* per-definition consumer counts within the block, as fanout sees them *)
  let counts = Hashtbl.create 32 in
  let bump r =
    Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  in
  let rec walk = function
    | [] -> ()
    | (i : Instr.t) :: rest ->
      List.iter
        (fun d ->
          (* uses of d until its next redefinition *)
          let rec scan = function
            | [] -> ()
            | (j : Instr.t) :: tail ->
              if List.mem d (Instr.uses j) then bump d;
              if not (List.mem d (Instr.defs j)) then scan tail
          in
          Hashtbl.remove counts d;
          scan rest)
        (Instr.defs i);
      walk rest
  in
  walk b.Block.instrs;
  counts

let test_fanout_target_budget () =
  let _, c, _, _ = compile_through_backend "matrix_1" Chf.Phases.Iupo_merged in
  let cfg = c.Trips_harness.Pipeline.cfg in
  Cfg.iter_blocks
    (fun b ->
      let counts = count_consumers b in
      Hashtbl.iter
        (fun r n ->
          check Alcotest.bool
            (Fmt.str "b%d: r%d has %d intra-block consumers" b.Block.id r n)
            true
            (n <= Machine.max_targets))
        counts)
    cfg

let test_fanout_semantics_on_wide_value () =
  (* one producer, many consumers: fanout must not change results *)
  let cfg = Cfg.create () in
  let b0 = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- b0;
  let x = 1024 in
  let producer = Cfg.instr cfg (Instr.Mov (x, Instr.Imm 3)) in
  let consumers =
    List.init 9 (fun k ->
        Cfg.instr cfg
          (Instr.Store (Instr.Reg x, Instr.Imm k, 0)))
  in
  Cfg.set_block cfg
    (Block.make b0 (producer :: consumers)
       [ { Block.eguard = None; target = Block.Ret None } ]);
  Cfg.validate cfg;
  let run () =
    let memory = Array.make 16 0 in
    ignore (Trips_sim.Func_sim.run ~memory cfg);
    Array.to_list memory
  in
  let before = run () in
  let added = Fanout.run cfg in
  Cfg.validate cfg;
  check Alcotest.bool "movs inserted" true (added > 0);
  check Alcotest.(list int) "stores unchanged" before (run ())

let test_split_block () =
  let cfg = Cfg.create () in
  let b0 = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- b0;
  let instrs =
    List.init 6 (fun k -> Cfg.instr cfg (Instr.Store (Instr.Imm k, Instr.Imm k, 0)))
  in
  Cfg.set_block cfg
    (Block.make b0 instrs [ { Block.eguard = None; target = Block.Ret None } ]);
  let run () =
    let memory = Array.make 8 0 in
    ignore (Trips_sim.Func_sim.run ~memory cfg);
    Array.to_list memory
  in
  let before = run () in
  (match Reverse_if_convert.split_block cfg b0 with
  | Some new_id ->
    check Alcotest.bool "new block exists" true (Cfg.mem cfg new_id);
    check Alcotest.int "halves" 3 (Block.size (Cfg.block cfg b0));
    check Alcotest.int "halves'" 3 (Block.size (Cfg.block cfg new_id))
  | None -> Alcotest.fail "split refused");
  Cfg.validate cfg;
  check Alcotest.(list int) "semantics preserved" before (run ())

let test_split_refuses_tiny () =
  let cfg = Cfg.create () in
  let b0 = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- b0;
  Cfg.set_block cfg
    (Block.make b0
       [ Cfg.instr cfg (Instr.Mov (1024, Instr.Imm 1)) ]
       [ { Block.eguard = None; target = Block.Ret None } ]);
  check Alcotest.(option int) "refuses one-instruction block" None
    (Reverse_if_convert.split_block cfg b0)

let test_precolored_second_round () =
  (* run RA, split a block, run RA again: new boundary values must avoid
     the already-assigned architectural registers *)
  let w = Option.get (Trips_workloads.Micro.by_name "dhry") in
  let baseline = Generators.baseline_of w in
  let profile, _ = Trips_harness.Pipeline.profile_workload w in
  let cfg, registers = Trips_harness.Pipeline.lower_workload w in
  Trips_opt.Optimizer.optimize_cfg cfg;
  ignore (Chf.Formation.run Chf.Policy.edge_default cfg profile);
  let res1 = Reg_alloc.run cfg in
  (* split the biggest block to create new cross-block values *)
  let biggest =
    List.fold_left
      (fun acc id ->
        match acc with
        | Some b when Block.size (Cfg.block cfg b) >= Block.size (Cfg.block cfg id) -> acc
        | _ -> Some id)
      None (Cfg.block_ids cfg)
  in
  (match biggest with
  | Some id -> ignore (Reverse_if_convert.split_block cfg id)
  | None -> ());
  let res2 = Reg_alloc.run cfg in
  Cfg.validate cfg;
  let mapping r =
    IntMap.find_or ~default:r r
      (IntMap.union (fun _ a _ -> Some a) res2.Reg_alloc.mapping res1.Reg_alloc.mapping)
  in
  let registers = List.map (fun (r, v) -> (mapping (IntMap.find_or ~default:r r res1.Reg_alloc.mapping), v)) registers in
  let memory = Trips_workloads.Workload.memory w in
  let r = Trips_sim.Func_sim.run ~registers ~memory cfg in
  check Alcotest.int "two-round allocation preserves semantics"
    baseline.Trips_sim.Func_sim.checksum r.Trips_sim.Func_sim.checksum

let backend_random_programs =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"full backend preserves random programs" ~count:25
       ~print:Generators.print_workload Generators.random_program_gen
       (fun w ->
         let baseline = Generators.baseline_of w in
         let c =
           Trips_harness.Pipeline.compile ~backend:true Chf.Phases.Iupo_merged w
         in
         let r = Trips_harness.Pipeline.run_functional c in
         r.Trips_sim.Func_sim.checksum = baseline.Trips_sim.Func_sim.checksum))

let test_tasm_emission () =
  let _, c, _, _ = compile_through_backend "gzip_1" Chf.Phases.Iupo_merged in
  let asm = Tasm.to_string c.Trips_harness.Pipeline.cfg in
  check Alcotest.bool "has block headers" true
    (String.length asm > 200
    && List.exists
         (fun line -> String.length line >= 7 && String.sub line 0 7 = ".bbegin")
         (String.split_on_char '\n' asm));
  (* block budget annotations present *)
  check Alcotest.bool "has budget comments" true
    (List.exists
       (fun line ->
         String.length line >= 5 && String.sub line 0 5 = ".bend")
       (String.split_on_char '\n' asm))

let test_dot_export () =
  let _, c, _, _ = compile_through_backend "sieve" Chf.Phases.Iupo_merged in
  let dot = Trips_ir.Dot.to_string c.Trips_harness.Pipeline.cfg in
  check Alcotest.bool "digraph wrapper" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  (* one node line per block *)
  let blocks = Trips_ir.Cfg.num_blocks c.Trips_harness.Pipeline.cfg in
  let node_lines =
    List.filter
      (fun l -> String.length l > 4 && String.sub l 0 3 = "  b"
                && String.contains l '[')
      (String.split_on_char '\n' dot)
  in
  check Alcotest.bool "node per block" true (List.length node_lines >= blocks)

let suite =
  ( "regalloc",
    [
      Alcotest.test_case "tasm emission" `Quick test_tasm_emission;
      Alcotest.test_case "dot export" `Quick test_dot_export;
      Alcotest.test_case "backend preserves semantics" `Quick
        test_backend_preserves_semantics;
      Alcotest.test_case "cross-block values architectural" `Quick
        test_cross_block_values_architectural;
      Alcotest.test_case "bank budgets" `Quick test_bank_budgets_respected;
      Alcotest.test_case "fanout target budget" `Quick test_fanout_target_budget;
      Alcotest.test_case "fanout semantics" `Quick test_fanout_semantics_on_wide_value;
      Alcotest.test_case "split block" `Quick test_split_block;
      Alcotest.test_case "split refuses tiny" `Quick test_split_refuses_tiny;
      Alcotest.test_case "precolored second round" `Quick test_precolored_second_round;
      backend_random_programs;
    ] )
