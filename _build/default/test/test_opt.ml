(* Tests for the scalar optimizer: value numbering (CSE, constant folding,
   boolean simplification, linear chains), dead-code elimination and
   predicate optimization — each checked both on hand-built blocks and for
   semantic preservation via the observed-run harness. *)

open Trips_ir

let check = Alcotest.check

(* Short-hand instruction builders sharing one id counter. *)
let counter = ref 0
let mk ?guard op =
  incr counter;
  Instr.make ?guard !counter op

let g r = { Instr.greg = r; sense = true }
let ng r = { Instr.greg = r; sense = false }

let vn_pass cfg b ~live_out =
  ignore live_out;
  Trips_opt.Local_vn.run cfg b

let dce_pass _cfg b ~live_out = Trips_opt.Dce.run b ~live_out
let pred_pass _cfg b ~live_out = Trips_opt.Predicate_opt.run b ~live_out
let full_pass cfg b ~live_out = Trips_opt.Optimizer.optimize_block cfg b ~live_out

let size_after pass instrs ~observe =
  let cfg = Cfg.create () in
  let b0 = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- b0;
  Cfg.set_block cfg
    (Block.make b0 instrs [ { Block.eguard = None; target = Block.Ret None } ]);
  let live_out = IntSet.of_list_fold observe in
  let b = pass cfg (Cfg.block cfg b0) ~live_out in
  Block.size b

(* ---- value numbering --------------------------------------------------- *)

let test_vn_cse () =
  let instrs =
    [
      mk (Instr.Binop (Opcode.Add, 10, Instr.Reg 1, Instr.Reg 2));
      mk (Instr.Binop (Opcode.Add, 11, Instr.Reg 1, Instr.Reg 2));
      mk (Instr.Binop (Opcode.Add, 12, Instr.Reg 2, Instr.Reg 1));  (* commuted *)
      mk (Instr.Store (Instr.Reg 10, Instr.Imm 0, 0));
      mk (Instr.Store (Instr.Reg 11, Instr.Imm 1, 0));
      mk (Instr.Store (Instr.Reg 12, Instr.Imm 2, 0));
    ]
  in
  let before, after =
    Generators.check_block_transform ~registers:[ (1, 3); (2, 4) ] ~observe:[]
      instrs full_pass
  in
  check Alcotest.(list int) "same stores" before after

let test_vn_constant_folding () =
  let instrs =
    [
      mk (Instr.Mov (10, Instr.Imm 6));
      mk (Instr.Binop (Opcode.Mul, 11, Instr.Reg 10, Instr.Imm 7));
      mk (Instr.Cmp (Opcode.Eq, 12, Instr.Reg 11, Instr.Imm 42));
    ]
  in
  let n = size_after vn_pass instrs ~observe:[ 12 ] in
  (* everything folds to movs; the final value must be constant 1 *)
  let _, after =
    Generators.check_block_transform ~observe:[ 11; 12 ] instrs vn_pass
  in
  check Alcotest.(list int) "folded values" [ 42; 1 ] after;
  check Alcotest.bool "no computation left" true (n <= 3)

let test_vn_algebraic () =
  let cases =
    [
      (Instr.Binop (Opcode.Add, 10, Instr.Reg 1, Instr.Imm 0), 5);
      (Instr.Binop (Opcode.Mul, 10, Instr.Reg 1, Instr.Imm 1), 5);
      (Instr.Binop (Opcode.Mul, 10, Instr.Reg 1, Instr.Imm 0), 0);
      (Instr.Binop (Opcode.Sub, 10, Instr.Reg 1, Instr.Reg 1), 0);
      (Instr.Binop (Opcode.Xor, 10, Instr.Reg 1, Instr.Reg 1), 0);
      (Instr.Binop (Opcode.Or, 10, Instr.Reg 1, Instr.Imm 0), 5);
    ]
  in
  List.iter
    (fun (op, expect) ->
      let _, after =
        Generators.check_block_transform ~registers:[ (1, 5) ] ~observe:[ 10 ]
          [ mk op ] vn_pass
      in
      check Alcotest.(list int) "simplified value" [ expect ] after)
    cases

let test_vn_guard_aware_reuse () =
  (* a guarded computation may not be reused by an unguarded one *)
  let instrs =
    [
      mk (Instr.Cmp (Opcode.Lt, 5, Instr.Reg 1, Instr.Imm 10));
      mk ~guard:(g 5) (Instr.Binop (Opcode.Add, 10, Instr.Reg 2, Instr.Imm 1));
      mk (Instr.Binop (Opcode.Add, 11, Instr.Reg 2, Instr.Imm 1));
    ]
  in
  (* with r1 = 20 the guard is false: r10 keeps its old value (0) while
     r11 must still be 8; a wrong reuse would make r11 read stale r10 *)
  let before, after =
    Generators.check_block_transform
      ~registers:[ (1, 20); (2, 7) ]
      ~observe:[ 10; 11 ] instrs vn_pass
  in
  check Alcotest.(list int) "guard-aware" before after;
  check Alcotest.(list int) "values" [ 0; 8 ] after

let test_vn_bool_simplification () =
  (* or (p and c) (p and not c) collapses to p *)
  let instrs =
    [
      mk (Instr.Cmp (Opcode.Lt, 5, Instr.Reg 1, Instr.Imm 10));  (* p *)
      mk (Instr.Cmp (Opcode.Eq, 6, Instr.Reg 2, Instr.Imm 0));  (* c *)
      mk (Instr.Binop (Opcode.And, 7, Instr.Reg 5, Instr.Reg 6));
      mk (Instr.Binop (Opcode.Xor, 8, Instr.Reg 6, Instr.Imm 1));
      mk (Instr.Binop (Opcode.And, 9, Instr.Reg 5, Instr.Reg 8));
      mk (Instr.Binop (Opcode.Or, 10, Instr.Reg 7, Instr.Reg 9));
      mk (Instr.Store (Instr.Reg 10, Instr.Imm 0, 0));
    ]
  in
  let before, after =
    Generators.check_block_transform ~registers:[ (1, 3); (2, 9) ] ~observe:[ 10 ]
      instrs full_pass
  in
  check Alcotest.(list int) "collapsed to p" before after;
  let n = size_after full_pass instrs ~observe:[ 10 ] in
  check Alcotest.bool "or/and chain eliminated" true (n <= 3)

let test_vn_double_negation () =
  let instrs =
    [
      mk (Instr.Cmp (Opcode.Lt, 5, Instr.Reg 1, Instr.Imm 10));
      mk (Instr.Binop (Opcode.Xor, 6, Instr.Reg 5, Instr.Imm 1));
      mk (Instr.Binop (Opcode.Xor, 7, Instr.Reg 6, Instr.Imm 1));
      mk (Instr.Store (Instr.Reg 7, Instr.Imm 0, 0));
    ]
  in
  let before, after =
    Generators.check_block_transform ~registers:[ (1, 3) ] ~observe:[ 7 ]
      instrs full_pass
  in
  check Alcotest.(list int) "double negation" before after

let test_vn_linear_chains () =
  (* j+1+1+1 collapses onto the base register *)
  let instrs =
    [
      mk (Instr.Binop (Opcode.Add, 10, Instr.Reg 1, Instr.Imm 1));
      mk (Instr.Binop (Opcode.Add, 11, Instr.Reg 10, Instr.Imm 1));
      mk (Instr.Binop (Opcode.Add, 12, Instr.Reg 11, Instr.Imm 1));
      mk (Instr.Binop (Opcode.Sub, 13, Instr.Reg 12, Instr.Imm 2));
    ]
  in
  let cfg = Cfg.create () in
  let b0 = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- b0;
  Cfg.set_block cfg
    (Block.make b0 instrs [ { Block.eguard = None; target = Block.Ret None } ]);
  let b = Trips_opt.Local_vn.run cfg (Cfg.block cfg b0) in
  (* every add now reads the base register r1 directly *)
  let reads_base =
    List.for_all
      (fun (i : Instr.t) ->
        match i.Instr.op with
        | Instr.Binop (_, _, Instr.Reg r, _) -> r = 1
        | _ -> true)
      b.Block.instrs
  in
  check Alcotest.bool "chains rebased" true reads_base;
  let before, after =
    Generators.check_block_transform ~registers:[ (1, 10) ]
      ~observe:[ 10; 11; 12; 13 ] instrs vn_pass
  in
  check Alcotest.(list int) "chain values" before after;
  check Alcotest.(list int) "expected" [ 11; 12; 13; 11 ] after

let test_vn_store_load_forwarding () =
  let instrs =
    [
      mk (Instr.Store (Instr.Reg 1, Instr.Reg 2, 0));
      mk (Instr.Load (10, Instr.Reg 2, 0));
      mk (Instr.Store (Instr.Reg 10, Instr.Imm 5, 0));
    ]
  in
  let n = size_after vn_pass instrs ~observe:[] in
  check Alcotest.int "load forwarded away (store,mov,store)" 3 n;
  let before, after =
    Generators.check_block_transform ~registers:[ (1, 42); (2, 3) ] ~observe:[ 10 ]
      instrs vn_pass
  in
  check Alcotest.(list int) "forwarded value" before after

let test_vn_load_not_forwarded_across_store () =
  let instrs =
    [
      mk (Instr.Load (10, Instr.Reg 2, 0));
      mk (Instr.Store (Instr.Reg 1, Instr.Reg 3, 0));  (* may alias *)
      mk (Instr.Load (11, Instr.Reg 2, 0));
      mk (Instr.Store (Instr.Reg 11, Instr.Imm 5, 0));
    ]
  in
  (* r2 = r3 = same address: the second load must see the stored value *)
  let before, after =
    Generators.check_block_transform
      ~registers:[ (1, 99); (2, 7); (3, 7) ]
      ~observe:[ 10; 11 ] instrs full_pass
  in
  check Alcotest.(list int) "no unsound forwarding" before after;
  check Alcotest.(list int) "second load sees store" [ 0; 99 ] after

let test_vn_guard_constant_resolution () =
  let instrs =
    [
      mk (Instr.Mov (5, Instr.Imm 1));
      mk ~guard:(g 5) (Instr.Mov (10, Instr.Imm 7));   (* guard true: kept *)
      mk ~guard:(ng 5) (Instr.Mov (11, Instr.Imm 8));  (* guard false: deleted *)
      mk (Instr.Store (Instr.Reg 10, Instr.Imm 0, 0));
      mk (Instr.Store (Instr.Reg 11, Instr.Imm 1, 0));
    ]
  in
  let before, after =
    Generators.check_block_transform ~observe:[] instrs vn_pass
  in
  check Alcotest.(list int) "constant guards resolved" before after;
  let n = size_after vn_pass instrs ~observe:[] in
  check Alcotest.bool "false-guarded instr deleted" true (n <= 4)

(* ---- DCE ---------------------------------------------------------------- *)

let test_dce_removes_dead () =
  let instrs =
    [
      mk (Instr.Mov (10, Instr.Imm 1));  (* dead *)
      mk (Instr.Mov (11, Instr.Imm 2));  (* live-out *)
      mk (Instr.Binop (Opcode.Add, 12, Instr.Reg 11, Instr.Imm 1));  (* dead *)
    ]
  in
  let n = size_after dce_pass instrs ~observe:[ 11 ] in
  check Alcotest.int "only live-out survives" 1 n

let test_dce_keeps_stores_and_guards () =
  let instrs =
    [
      mk (Instr.Cmp (Opcode.Lt, 5, Instr.Reg 1, Instr.Imm 3));
      mk ~guard:(g 5) (Instr.Store (Instr.Reg 1, Instr.Imm 0, 0));
    ]
  in
  let n = size_after dce_pass instrs ~observe:[] in
  check Alcotest.int "store and its guard kept" 2 n

let test_dce_guarded_def_does_not_kill () =
  (* r10 live-out; the guarded redefinition must keep the earlier def *)
  let instrs =
    [
      mk (Instr.Mov (10, Instr.Imm 1));
      mk ~guard:(g 5) (Instr.Mov (10, Instr.Imm 2));
    ]
  in
  let n = size_after dce_pass instrs ~observe:[ 10 ] in
  check Alcotest.int "both defs kept" 2 n

(* ---- predicate optimization -------------------------------------------- *)

let test_predopt_drops_chain () =
  let instrs =
    [
      mk (Instr.Cmp (Opcode.Lt, 5, Instr.Reg 1, Instr.Imm 3));
      mk ~guard:(g 5) (Instr.Binop (Opcode.Add, 10, Instr.Reg 2, Instr.Imm 1));
      mk ~guard:(g 5) (Instr.Binop (Opcode.Mul, 11, Instr.Reg 10, Instr.Imm 2));
      mk ~guard:(g 5) (Instr.Store (Instr.Reg 11, Instr.Imm 0, 0));
    ]
  in
  let cfg = Cfg.create () in
  let b = Block.make 0 instrs [ { Block.eguard = None; target = Block.Ret None } ] in
  ignore cfg;
  let b' = Trips_opt.Predicate_opt.run b ~live_out:IntSet.empty in
  let guards =
    List.length (List.filter (fun i -> i.Instr.guard <> None) b'.Block.instrs)
  in
  check Alcotest.int "only the store stays guarded" 1 guards;
  let before, after =
    Generators.check_block_transform ~registers:[ (1, 10); (2, 4) ] ~observe:[]
      instrs pred_pass
  in
  check Alcotest.(list int) "semantics preserved (guard false)" before after

let test_predopt_respects_liveout () =
  let instrs =
    [
      mk (Instr.Cmp (Opcode.Lt, 5, Instr.Reg 1, Instr.Imm 3));
      mk ~guard:(g 5) (Instr.Binop (Opcode.Add, 10, Instr.Reg 2, Instr.Imm 1));
    ]
  in
  let cfg = Cfg.create () in
  ignore cfg;
  let b = Block.make 0 instrs [ { Block.eguard = None; target = Block.Ret None } ] in
  let b' = Trips_opt.Predicate_opt.run b ~live_out:(IntSet.singleton 10) in
  let guards =
    List.length (List.filter (fun i -> i.Instr.guard <> None) b'.Block.instrs)
  in
  check Alcotest.int "live-out def keeps its guard" 1 guards

(* ---- whole-pass property ----------------------------------------------- *)

(* Random guarded straight-line blocks: the full optimizer must preserve
   observable semantics. *)
let random_block_gen =
  QCheck2.Gen.(
    let op_gen =
      oneof
        [
          return Opcode.Add; return Opcode.Sub; return Opcode.Mul;
          return Opcode.And; return Opcode.Or; return Opcode.Xor;
        ]
    in
    let operand_gen =
      oneof
        [ map (fun r -> Instr.Reg (10 + (r mod 8))) (int_bound 100);
          map (fun n -> Instr.Imm (n - 8)) (int_bound 16) ]
    in
    let instr_gen =
      let* kind = int_bound 9 in
      let* d = map (fun r -> 10 + (r mod 8)) (int_bound 100) in
      let* a = operand_gen in
      let* b = operand_gen in
      let* op = op_gen in
      let* guard_kind = int_bound 3 in
      let guard =
        (* guards read r17, which instructions may also redefine *)
        match guard_kind with
        | 0 -> Some { Instr.greg = 17; sense = true }
        | 1 -> Some { Instr.greg = 17; sense = false }
        | _ -> None
      in
      return
        (match kind with
        | 0 | 1 | 2 | 3 -> (guard, Instr.Binop (op, d, a, b))
        | 4 | 5 -> (guard, Instr.Cmp (Opcode.Lt, d, a, b))
        | 6 -> (guard, Instr.Mov (d, a))
        | 7 -> (guard, Instr.Load (d, a, 0))
        | _ -> (guard, Instr.Store (a, b, 0)))
    in
    list_size (int_range 1 25) instr_gen)

let optimizer_preserves_random_blocks =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"optimizer preserves random guarded blocks"
       ~count:500 random_block_gen (fun specs ->
         counter := 1000;
         let instrs = List.map (fun (guard, op) -> mk ?guard op) specs in
         let observe = [ 10; 11; 12; 13; 14; 15; 16; 17 ] in
         let registers = List.mapi (fun k r -> (r, (k * 3) + 1)) observe in
         let before, after =
           Generators.check_block_transform ~registers ~observe instrs full_pass
         in
         before = after))

(* ---- global value numbering --------------------------------------------- *)

let test_gvn_cross_block () =
  (* the same expression computed in a dominator and a dominated block:
     the second occurrence becomes a copy *)
  let cfg = Cfg.create () in
  let a = Cfg.fresh_block_id cfg in
  let b = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- a;
  let x = Cfg.fresh_reg cfg and y = Cfg.fresh_reg cfg in
  let t1 = Cfg.fresh_reg cfg and t2 = Cfg.fresh_reg cfg in
  Cfg.set_block cfg
    (Block.make a
       [
         Cfg.instr cfg (Instr.Mov (x, Instr.Imm 6));
         Cfg.instr cfg (Instr.Mov (y, Instr.Imm 7));
         Cfg.instr cfg (Instr.Binop (Opcode.Mul, t1, Instr.Reg x, Instr.Reg y));
         Cfg.instr cfg (Instr.Store (Instr.Reg t1, Instr.Imm 0, 0));
       ]
       [ { Block.eguard = None; target = Block.Goto b } ]);
  Cfg.set_block cfg
    (Block.make b
       [
         Cfg.instr cfg (Instr.Binop (Opcode.Mul, t2, Instr.Reg x, Instr.Reg y));
         Cfg.instr cfg (Instr.Store (Instr.Reg t2, Instr.Imm 1, 0));
       ]
       [ { Block.eguard = None; target = Block.Ret None } ]);
  Cfg.validate cfg;
  let hits = Trips_opt.Gvn.run cfg in
  check Alcotest.int "one reuse" 1 hits;
  let has_mul bl =
    List.exists
      (fun (i : Instr.t) ->
        match i.Instr.op with Instr.Binop (Opcode.Mul, _, _, _) -> true | _ -> false)
      (Cfg.block cfg bl).Block.instrs
  in
  check Alcotest.bool "dominator keeps the mul" true (has_mul a);
  check Alcotest.bool "dominated block reuses" false (has_mul b);
  let memory = Array.make 4 0 in
  ignore (Trips_sim.Func_sim.run ~memory cfg);
  check Alcotest.(list int) "values" [ 42; 42; 0; 0 ] (Array.to_list memory)

let test_gvn_respects_multidef () =
  (* a register redefined on some path is not reused across blocks *)
  let cfg = Cfg.create () in
  let a = Cfg.fresh_block_id cfg in
  let b = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- a;
  let x = Cfg.fresh_reg cfg in
  let t1 = Cfg.fresh_reg cfg and t2 = Cfg.fresh_reg cfg in
  Cfg.set_block cfg
    (Block.make a
       [
         Cfg.instr cfg (Instr.Mov (x, Instr.Imm 6));
         Cfg.instr cfg (Instr.Binop (Opcode.Add, t1, Instr.Reg x, Instr.Imm 1));
         Cfg.instr cfg (Instr.Mov (x, Instr.Imm 100));  (* x redefined! *)
         Cfg.instr cfg (Instr.Store (Instr.Reg t1, Instr.Imm 0, 0));
       ]
       [ { Block.eguard = None; target = Block.Goto b } ]);
  Cfg.set_block cfg
    (Block.make b
       [
         Cfg.instr cfg (Instr.Binop (Opcode.Add, t2, Instr.Reg x, Instr.Imm 1));
         Cfg.instr cfg (Instr.Store (Instr.Reg t2, Instr.Imm 1, 0));
       ]
       [ { Block.eguard = None; target = Block.Ret None } ]);
  Cfg.validate cfg;
  ignore (Trips_opt.Gvn.run cfg);
  let memory = Array.make 4 0 in
  ignore (Trips_sim.Func_sim.run ~memory cfg);
  check Alcotest.(list int) "second add sees new x" [ 7; 101; 0; 0 ]
    (Array.to_list memory)

let gvn_preserves_random_programs =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"gvn preserves random programs" ~count:40
       ~print:Generators.print_workload Generators.random_program_gen
       (fun w ->
         let baseline = Generators.baseline_of w in
         let cfg, registers = Trips_harness.Pipeline.lower_workload w in
         ignore (Trips_opt.Gvn.run cfg);
         Cfg.validate cfg;
         let memory = Trips_workloads.Workload.memory w in
         let r = Trips_sim.Func_sim.run ~registers ~memory cfg in
         r.Trips_sim.Func_sim.checksum = baseline.Trips_sim.Func_sim.checksum))

let suite =
  ( "opt",
    [
      Alcotest.test_case "gvn cross-block reuse" `Quick test_gvn_cross_block;
      Alcotest.test_case "gvn respects redefinition" `Quick test_gvn_respects_multidef;
      gvn_preserves_random_programs;
      Alcotest.test_case "vn cse" `Quick test_vn_cse;
      Alcotest.test_case "vn constant folding" `Quick test_vn_constant_folding;
      Alcotest.test_case "vn algebraic" `Quick test_vn_algebraic;
      Alcotest.test_case "vn guard-aware reuse" `Quick test_vn_guard_aware_reuse;
      Alcotest.test_case "vn boolean simplification" `Quick test_vn_bool_simplification;
      Alcotest.test_case "vn double negation" `Quick test_vn_double_negation;
      Alcotest.test_case "vn linear chains" `Quick test_vn_linear_chains;
      Alcotest.test_case "vn store-load forwarding" `Quick test_vn_store_load_forwarding;
      Alcotest.test_case "vn aliasing safe" `Quick test_vn_load_not_forwarded_across_store;
      Alcotest.test_case "vn constant guards" `Quick test_vn_guard_constant_resolution;
      Alcotest.test_case "dce removes dead" `Quick test_dce_removes_dead;
      Alcotest.test_case "dce keeps stores" `Quick test_dce_keeps_stores_and_guards;
      Alcotest.test_case "dce guarded defs" `Quick test_dce_guarded_def_does_not_kill;
      Alcotest.test_case "predopt drops chain" `Quick test_predopt_drops_chain;
      Alcotest.test_case "predopt respects live-out" `Quick test_predopt_respects_liveout;
      optimizer_preserves_random_blocks;
    ] )
