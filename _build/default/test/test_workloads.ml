(* Tests for the workload suite: determinism, the documented control-flow
   characters that the experiments rely on, and the SPEC-like generator. *)

open Trips_workloads

let check = Alcotest.check

let test_micro_roster () =
  check Alcotest.int "24 microbenchmarks" 24 (List.length Micro.all);
  let names = List.map (fun w -> w.Workload.name) Micro.all in
  check Alcotest.bool "unique names" true
    (List.length (List.sort_uniq compare names) = 24);
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " present") true (Micro.by_name n <> None))
    [ "ammp_1"; "bzip2_3"; "gzip_1"; "matrix_1"; "sieve"; "vadd"; "dhry" ]

let test_micro_deterministic () =
  List.iter
    (fun w ->
      let a = Generators.baseline_of w in
      let b = Generators.baseline_of w in
      check Alcotest.int (w.Workload.name ^ " deterministic")
        a.Trips_sim.Func_sim.checksum b.Trips_sim.Func_sim.checksum)
    Micro.all

let test_micro_terminate_reasonably () =
  List.iter
    (fun w ->
      let r = Generators.baseline_of w in
      check Alcotest.bool
        (Fmt.str "%s runs %d instrs" w.Workload.name r.Trips_sim.Func_sim.instrs_executed)
        true
        (r.Trips_sim.Func_sim.instrs_executed > 500
        && r.Trips_sim.Func_sim.instrs_executed < 3_000_000))
    Micro.all

let test_ammp_trip_counts () =
  (* ammp_1's inner while loops must have small trip counts (the paper's
     head-duplication case) *)
  let w = Option.get (Micro.by_name "ammp_1") in
  let profile, _ = Trips_harness.Pipeline.profile_workload w in
  let cfg, _ = Trips_harness.Pipeline.lower_workload w in
  let loops = Trips_analysis.Loops.compute cfg in
  let small_trip_loops =
    List.filter
      (fun (l : Trips_analysis.Loops.loop) ->
        match
          Trips_profile.Profile.average_trip_count profile l.Trips_analysis.Loops.header
        with
        | Some avg -> avg > 0.5 && avg < 6.0
        | None -> false)
      (Trips_analysis.Loops.all_loops loops)
  in
  check Alcotest.bool "at least two small-trip while loops" true
    (List.length small_trip_loops >= 2)

let test_bzip2_3_rare_branch () =
  (* the side block must be rare (~2%) for the Table 2 story to hold *)
  let w = Option.get (Micro.by_name "bzip2_3") in
  let profile, _ = Trips_harness.Pipeline.profile_workload w in
  let cfg, _ = Trips_harness.Pipeline.lower_workload w in
  let rare_edge_exists =
    List.exists
      (fun b ->
        List.exists
          (fun s ->
            let p =
              Trips_profile.Profile.edge_prob profile
                ~src:b.Trips_ir.Block.id ~dst:s
            in
            p > 0.0 && p < 0.10
            && Trips_profile.Profile.block_count profile b.Trips_ir.Block.id > 100)
          (Trips_ir.Block.distinct_successors b))
      (Trips_ir.Cfg.blocks cfg)
  in
  check Alcotest.bool "rare branch present" true rare_edge_exists

let test_parser_unpredictable_branches () =
  let w = Option.get (Micro.by_name "parser_1") in
  let r = Generators.baseline_of w in
  check Alcotest.bool "runs" true (r.Trips_sim.Func_sim.blocks_executed > 1000)

let test_spec_roster () =
  check Alcotest.int "19 SPEC-like programs" 19 (List.length Spec_like.all);
  let expected =
    [
      "ammp"; "applu"; "apsi"; "art"; "bzip2"; "crafty"; "equake"; "gap";
      "gzip"; "mcf"; "mesa"; "mgrid"; "parser"; "sixtrack"; "swim"; "twolf";
      "vortex"; "vpr"; "wupwise";
    ]
  in
  List.iter
    (fun n -> check Alcotest.bool (n ^ " present") true (Spec_like.by_name n <> None))
    expected

let test_spec_deterministic_and_nontrivial () =
  List.iter
    (fun w ->
      let a = Generators.baseline_of w in
      let b = Generators.baseline_of w in
      check Alcotest.int (w.Workload.name ^ " deterministic")
        a.Trips_sim.Func_sim.checksum b.Trips_sim.Func_sim.checksum;
      check Alcotest.bool (w.Workload.name ^ " nontrivial") true
        (a.Trips_sim.Func_sim.blocks_executed > 50))
    Spec_like.all

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check Alcotest.(list int) "same stream" xs ys;
  check Alcotest.bool "bounded" true (List.for_all (fun x -> x >= 0 && x < 1000) xs)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "micro roster" `Quick test_micro_roster;
      Alcotest.test_case "micro deterministic" `Slow test_micro_deterministic;
      Alcotest.test_case "micro sizes" `Slow test_micro_terminate_reasonably;
      Alcotest.test_case "ammp trip counts" `Quick test_ammp_trip_counts;
      Alcotest.test_case "bzip2_3 rare branch" `Quick test_bzip2_3_rare_branch;
      Alcotest.test_case "parser_1 runs" `Quick test_parser_unpredictable_branches;
      Alcotest.test_case "spec roster" `Quick test_spec_roster;
      Alcotest.test_case "spec deterministic" `Slow test_spec_deterministic_and_nontrivial;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    ] )
