(* Tests for the structural transformations: the Combine merge primitive
   (if-conversion with entry predicates, snapshots, guard conjunction),
   duplication helpers and CFG-level loop unrolling/peeling. *)

open Trips_ir
open Trips_transform

let check = Alcotest.check

let run_cfg ?(registers = []) ?(memory_words = 64) cfg =
  let memory = Array.make memory_words 0 in
  let r = Trips_sim.Func_sim.run ~registers ~memory cfg in
  (r, memory)

(* A diamond: entry computes c = (r1 < 10); then-branch adds 100,
   else-branch adds 200; join stores the result and returns it. *)
let make_diamond () =
  let cfg = Cfg.create ~name:"diamond" () in
  let a = Cfg.fresh_block_id cfg in
  let b = Cfg.fresh_block_id cfg in
  let c = Cfg.fresh_block_id cfg in
  let d = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- a;
  let cond = Cfg.fresh_reg cfg in
  let acc = Cfg.fresh_reg cfg in
  Cfg.set_block cfg
    (Block.make a
       [
         Cfg.instr cfg (Instr.Mov (acc, Instr.Reg 1024));
         Cfg.instr cfg (Instr.Cmp (Opcode.Lt, cond, Instr.Reg 1024, Instr.Imm 10));
       ]
       [
         { Block.eguard = Some { Instr.greg = cond; sense = true }; target = Block.Goto b };
         { Block.eguard = Some { Instr.greg = cond; sense = false }; target = Block.Goto c };
       ]);
  Cfg.set_block cfg
    (Block.make b
       [ Cfg.instr cfg (Instr.Binop (Opcode.Add, acc, Instr.Reg acc, Instr.Imm 100)) ]
       [ { Block.eguard = None; target = Block.Goto d } ]);
  Cfg.set_block cfg
    (Block.make c
       [ Cfg.instr cfg (Instr.Binop (Opcode.Add, acc, Instr.Reg acc, Instr.Imm 200)) ]
       [ { Block.eguard = None; target = Block.Goto d } ]);
  Cfg.set_block cfg
    (Block.make d
       [ Cfg.instr cfg (Instr.Store (Instr.Reg acc, Instr.Imm 0, 0)) ]
       [ { Block.eguard = None; target = Block.Ret (Some (Instr.Reg acc)) } ]);
  Cfg.validate cfg;
  (cfg, a, b, c, d, acc)

let test_combine_unique_pred () =
  (* merging B into A consumes the (cond,true) exit and guards B's add *)
  let cfg, a, b, _, _, _ = make_diamond () in
  let hb = Cfg.block cfg a in
  let s = Cfg.block cfg b in
  let merged, stats = Combine.combine cfg ~hb ~s ~s_label:b in
  check Alcotest.int "no helper instructions needed" 0
    stats.Combine.combine_instrs;
  check Alcotest.int "exits: kept false-exit + B's exit" 2
    (List.length merged.Block.exits);
  let guarded_adds =
    List.filter
      (fun (i : Instr.t) ->
        match i.Instr.op with Instr.Binop (Opcode.Add, _, _, _) -> i.Instr.guard <> None | _ -> false)
      merged.Block.instrs
  in
  check Alcotest.int "B's add got the entry guard" 1 (List.length guarded_adds);
  (* commit and check semantics on both sides of the branch *)
  Cfg.set_block cfg merged;
  Cfg.remove_block cfg b;
  Cfg.validate cfg;
  let r1, _ = run_cfg ~registers:[ (1024, 5) ] cfg in
  let r2, _ = run_cfg ~registers:[ (1024, 50) ] cfg in
  check Alcotest.(option int) "then side" (Some 105) r1.Trips_sim.Func_sim.ret;
  check Alcotest.(option int) "else side" (Some 250) r2.Trips_sim.Func_sim.ret

let test_combine_or_entry () =
  (* Merge B, C, then D: D is entered through two guarded exits, so the
     entry predicate is an OR and the merged block keeps the exactly-one-
     exit invariant. *)
  let cfg, a, b, c, d, _ = make_diamond () in
  let merge s_id =
    let hb = Cfg.block cfg a in
    let s = Cfg.block cfg s_id in
    let merged, _ = Combine.combine cfg ~hb ~s ~s_label:s_id in
    Cfg.set_block cfg merged;
    Cfg.remove_block cfg s_id
  in
  merge b;
  merge c;
  merge d;
  Cfg.validate cfg;
  check Alcotest.int "single block left" 1 (Cfg.num_blocks cfg);
  (* strict interpretation checks exit exclusivity *)
  let r1, mem1 = run_cfg ~registers:[ (1024, 5) ] cfg in
  let r2, mem2 = run_cfg ~registers:[ (1024, 50) ] cfg in
  check Alcotest.(option int) "then result" (Some 105) r1.Trips_sim.Func_sim.ret;
  check Alcotest.(option int) "else result" (Some 250) r2.Trips_sim.Func_sim.ret;
  check Alcotest.int "then store" 105 mem1.(0);
  check Alcotest.int "else store" 250 mem2.(0)

let test_combine_snapshot () =
  (* S redefines the register a kept exit's guard reads: the kept exit
     must observe the entry-time value via a snapshot. *)
  let cfg = Cfg.create ~name:"snap" () in
  let a = Cfg.fresh_block_id cfg in
  let s = Cfg.fresh_block_id cfg in
  let out = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- a;
  let c = 1024 in
  Cfg.set_block cfg
    (Block.make a
       [ Cfg.instr cfg (Instr.Cmp (Opcode.Lt, c, Instr.Reg 1025, Instr.Imm 10)) ]
       [
         { Block.eguard = Some { Instr.greg = c; sense = true }; target = Block.Goto s };
         { Block.eguard = Some { Instr.greg = c; sense = false }; target = Block.Goto out };
       ]);
  (* S flips c to 1 unconditionally, then returns 7 *)
  Cfg.set_block cfg
    (Block.make s
       [ Cfg.instr cfg (Instr.Mov (c, Instr.Imm 1)) ]
       [ { Block.eguard = None; target = Block.Ret (Some (Instr.Imm 7)) } ]);
  Cfg.set_block cfg
    (Block.make out [] [ { Block.eguard = None; target = Block.Ret (Some (Instr.Imm 9)) } ]);
  Cfg.validate cfg;
  let hb = Cfg.block cfg a in
  let sb = Cfg.block cfg s in
  let merged, _ = Combine.combine cfg ~hb ~s:sb ~s_label:s in
  Cfg.set_block cfg merged;
  Cfg.remove_block cfg s;
  Cfg.validate cfg;
  (* without the snapshot, the false-exit guard would read the new c=1
     and no exit (or two exits) would fire *)
  let r1, _ = run_cfg ~registers:[ (1025, 5) ] cfg in
  let r2, _ = run_cfg ~registers:[ (1025, 50) ] cfg in
  check Alcotest.(option int) "into S" (Some 7) r1.Trips_sim.Func_sim.ret;
  check Alcotest.(option int) "around S" (Some 9) r2.Trips_sim.Func_sim.ret

let test_combine_rejects_missing_edge () =
  let cfg, a, _, _, d, _ = make_diamond () in
  let hb = Cfg.block cfg a in
  let s = Cfg.block cfg d in
  Alcotest.check_raises "no edge to merge"
    (Combine.Cannot_combine "b0 has no exit to b3") (fun () ->
      ignore (Combine.combine cfg ~hb ~s ~s_label:d))

(* ---- duplication helpers ----------------------------------------------- *)

let test_copy_block_exits_verbatim () =
  (* copying a self-looping block: the copy's "self" exit targets the
     ORIGINAL (Figure 3's B' -> B) *)
  let cfg = Cfg.create () in
  let b = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- b;
  let c = Cfg.fresh_reg cfg in
  Cfg.set_block cfg
    (Block.make b
       [ Cfg.instr cfg (Instr.Cmp (Opcode.Lt, c, Instr.Reg 1024, Instr.Imm 3)) ]
       [
         { Block.eguard = Some { Instr.greg = c; sense = true }; target = Block.Goto b };
         { Block.eguard = Some { Instr.greg = c; sense = false }; target = Block.Ret None };
       ]);
  let copy = Duplicate.copy_block cfg (Cfg.block cfg b) in
  check Alcotest.bool "copy has fresh id" true (copy.Block.id <> b);
  check Alcotest.(list int) "copy still targets original" [ b ]
    (Block.successors copy);
  (* instruction ids must be globally unique *)
  Cfg.validate cfg

(* ---- CFG-level loop transformations ------------------------------------ *)

let trip_sum_workload n =
  let open Trips_lang.Ast in
  {
    prog_name = "trip_sum";
    params = [];
    body =
      [
        "acc" <-- i 0;
        "k" <-- i 0;
        While (v "k" < i n,
          [ "acc" <-- (v "acc" + mem (v "k")); "k" <-- (v "k" + i 1) ]);
        Return (Some (v "acc"));
      ];
  }

let cfg_loop_preserves ~transform n =
  let p = trip_sum_workload n in
  let cfg, _ = Trips_lang.Lower.lower p in
  let init m = Array.iteri (fun k _ -> m.(k) <- (k * 7) mod 13) m in
  let mem0 = Array.make 64 0 in
  init mem0;
  let base = Trips_sim.Func_sim.run ~memory:mem0 cfg in
  let cfg2, _ = Trips_lang.Lower.lower p in
  let loops = Trips_analysis.Loops.compute cfg2 in
  (match Trips_analysis.Loops.all_loops loops with
  | [ l ] -> transform cfg2 l
  | _ -> Alcotest.fail "expected one loop");
  Cfg.validate cfg2;
  let mem1 = Array.make 64 0 in
  init mem1;
  let r = Trips_sim.Func_sim.run ~memory:mem1 cfg2 in
  (base.Trips_sim.Func_sim.ret, r.Trips_sim.Func_sim.ret)

let test_cfg_unroll () =
  List.iter
    (fun (n, factor) ->
      let a, b =
        cfg_loop_preserves n ~transform:(fun cfg l ->
            ignore (Cfg_loop.unroll cfg l ~factor))
      in
      check Alcotest.(option int)
        (Printf.sprintf "unroll n=%d factor=%d" n factor)
        a b)
    [ (0, 2); (1, 2); (7, 2); (7, 3); (8, 4); (13, 5) ]

let test_cfg_peel () =
  List.iter
    (fun (n, count) ->
      let a, b =
        cfg_loop_preserves n ~transform:(fun cfg l ->
            ignore (Cfg_loop.peel cfg l ~count))
      in
      check Alcotest.(option int)
        (Printf.sprintf "peel n=%d count=%d" n count)
        a b)
    [ (0, 1); (1, 1); (2, 3); (7, 2); (7, 8) ]

let test_cfg_unroll_adds_blocks () =
  let p = trip_sum_workload 9 in
  let cfg, _ = Trips_lang.Lower.lower p in
  let before = Cfg.num_blocks cfg in
  let loops = Trips_analysis.Loops.compute cfg in
  let l = List.hd (Trips_analysis.Loops.all_loops loops) in
  let added = Cfg_loop.unroll cfg l ~factor:3 in
  check Alcotest.int "copies added" added (Cfg.num_blocks cfg - before);
  check Alcotest.bool "two body copies" true (added > 0)

let suite =
  ( "transform",
    [
      Alcotest.test_case "combine: unique predecessor" `Quick test_combine_unique_pred;
      Alcotest.test_case "combine: OR entry predicate" `Quick test_combine_or_entry;
      Alcotest.test_case "combine: exit-guard snapshot" `Quick test_combine_snapshot;
      Alcotest.test_case "combine: rejects missing edge" `Quick
        test_combine_rejects_missing_edge;
      Alcotest.test_case "copy keeps original targets" `Quick
        test_copy_block_exits_verbatim;
      Alcotest.test_case "cfg unroll preserves semantics" `Quick test_cfg_unroll;
      Alcotest.test_case "cfg peel preserves semantics" `Quick test_cfg_peel;
      Alcotest.test_case "cfg unroll adds blocks" `Quick test_cfg_unroll_adds_blocks;
    ] )
