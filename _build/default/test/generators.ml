(* Shared QCheck generators and helpers for the test suites. *)

open Trips_ir
open Trips_lang

(* ---- random CFGs (for dominator/liveness cross-checks) --------------- *)

(* A random, connected, strict CFG: block 0 is the entry; every block has
   one or two successors among the existing blocks (forward and backward
   edges allowed), and blocks carry trivial instructions.  Every block is
   reachable by construction (block k>0 receives an edge from some block
   < k). *)
let random_cfg_gen =
  QCheck2.Gen.(
    let* n = int_range 2 14 in
    let* choices = list_repeat (3 * n) (int_bound 1000) in
    return (n, choices))

let build_random_cfg (n, choices) =
  let cfg = Cfg.create ~name:"random" () in
  let pick =
    let cells = ref choices in
    fun bound ->
      match !cells with
      | [] -> 0
      | c :: rest ->
        cells := rest;
        c mod bound
  in
  (* build a spanning structure: block k branches to k+1 and a random
     other block (possibly backward) *)
  for _ = 0 to n - 1 do
    ignore (Cfg.fresh_block_id cfg)
  done;
  for k = 0 to n - 1 do
    let c = Cfg.fresh_reg cfg in
    let test =
      Cfg.instr cfg (Instr.Cmp (Opcode.Lt, c, Instr.Reg 1024, Instr.Imm 5))
    in
    let exits =
      if k = n - 1 then [ { Block.eguard = None; target = Block.Ret None } ]
      else begin
        let other = pick n in
        if other = k + 1 then
          [ { Block.eguard = None; target = Block.Goto (k + 1) } ]
        else
          [
            {
              Block.eguard = Some { Instr.greg = c; sense = true };
              target = Block.Goto (k + 1);
            };
            {
              Block.eguard = Some { Instr.greg = c; sense = false };
              target = Block.Goto other;
            };
          ]
      end
    in
    Cfg.set_block cfg (Block.make k [ test ] exits)
  done;
  cfg.Cfg.entry <- 0;
  Cfg.validate cfg;
  cfg

(* ---- random mini-language programs ------------------------------------ *)

(* Reuse the SPEC-like recipe generator with randomized knobs: it already
   produces deterministic, loop-and-branch-rich programs. *)
let random_recipe_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 100_000 in
    let* outer = int_range 3 25 in
    let* segments = int_range 1 4 in
    let* density10 = int_range 0 8 in
    let* bias10 = int_range 2 9 in
    let* while10 = int_range 0 10 in
    let* nest10 = int_range 0 9 in
    let* stmts = int_range 1 5 in
    return
      {
        Trips_workloads.Spec_like.name = Printf.sprintf "rand%d" seed;
        seed;
        outer_iters = outer;
        segments;
        branch_density = float_of_int density10 /. 10.0;
        branch_bias = float_of_int bias10 /. 10.0;
        while_fraction = float_of_int while10 /. 10.0;
        trip_choices = [ 1; 2; 3; 5 ];
        nest_prob = float_of_int nest10 /. 10.0;
        stmts_per_block = stmts;
      })

let random_program_gen =
  QCheck2.Gen.map Trips_workloads.Spec_like.generate random_recipe_gen

let print_workload (w : Trips_workloads.Workload.t) =
  Fmt.str "%a" Ast.pp_program w.Trips_workloads.Workload.program

(* ---- pipeline helpers -------------------------------------------------- *)

(* Functional result of a workload at the basic-block level. *)
let baseline_of (w : Trips_workloads.Workload.t) =
  let c =
    Trips_harness.Pipeline.compile ~backend:false Chf.Phases.Basic_blocks w
  in
  Trips_harness.Pipeline.run_functional c

(* Build a two-block CFG: [instrs] under test in the entry block, then a
   probe block that stores each observed register into memory and
   returns.  Running it yields the observed register values, so a
   block-level transformation can be checked for semantic preservation
   with the observed registers as its live-out set. *)
let observed_run ?(registers = []) ~observe instrs =
  let cfg = Cfg.create ~name:"single" () in
  let b0 = Cfg.fresh_block_id cfg in
  let b1 = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- b0;
  Cfg.set_block cfg
    (Block.make b0 instrs [ { Block.eguard = None; target = Block.Goto b1 } ]);
  let probes =
    List.mapi
      (fun k r -> Cfg.instr cfg (Instr.Store (Instr.Reg r, Instr.Imm k, 0)))
      observe
  in
  Cfg.set_block cfg
    (Block.make b1 probes [ { Block.eguard = None; target = Block.Ret None } ]);
  Cfg.validate cfg;
  let memory = Array.make (max 1 (List.length observe)) 0 in
  ignore (Trips_sim.Func_sim.run ~registers ~memory cfg);
  (cfg, Array.to_list memory)

(* Apply a block transformation to the entry block of [observed_run]'s
   CFG and return observations before and after. *)
let check_block_transform ?(registers = []) ~observe instrs transform =
  let _, before = observed_run ~registers ~observe instrs in
  let cfg, _ = observed_run ~registers ~observe instrs in
  let live = Trips_analysis.Liveness.compute cfg in
  let entry = Cfg.block cfg cfg.Cfg.entry in
  let live_out = Trips_analysis.Liveness.live_out live cfg.Cfg.entry in
  let entry' = transform cfg entry ~live_out in
  Cfg.set_block cfg entry';
  let memory = Array.make (max 1 (List.length observe)) 0 in
  ignore (Trips_sim.Func_sim.run ~registers ~memory cfg);
  (before, Array.to_list memory)
