(* Tests for the mini-language front end: lowering, control-flow
   constructs, boolean normalization, and front-end for-loop unrolling. *)

open Trips_lang
open Trips_sim

let check = Alcotest.check

let run ?(params = []) ?(memory_words = 64) ?(init = fun _ -> ()) program =
  let cfg, param_regs = Lower.lower program in
  let registers =
    List.map
      (fun (name, value) -> (List.assoc name param_regs, value))
      params
  in
  let memory = Array.make memory_words 0 in
  init memory;
  Func_sim.run ~registers ~memory cfg

let ret r = r.Func_sim.ret

let prog body = Ast.{ prog_name = "t"; params = []; body }
let prog1 p body = Ast.{ prog_name = "t"; params = [ p ]; body }

let test_arith () =
  let open Ast in
  check Alcotest.(option int) "precedence" (Some 14)
    (ret (run (prog [ Return (Some (i 2 + (i 3 * i 4))) ])));
  check Alcotest.(option int) "div" (Some 3)
    (ret (run (prog [ Return (Some (i 10 / i 3)) ])));
  check Alcotest.(option int) "rem" (Some 1)
    (ret (run (prog [ Return (Some (i 10 % i 3)) ])));
  check Alcotest.(option int) "shift" (Some 40)
    (ret (run (prog [ Return (Some (i 10 <<< i 2)) ])))

let test_logic_is_boolean () =
  let open Ast in
  (* And/Or/Not must yield exactly 0 or 1 even on wide values *)
  check Alcotest.(option int) "and" (Some 1)
    (ret (run (prog [ Return (Some (And (i 17, i 5))) ])));
  check Alcotest.(option int) "or of zeros" (Some 0)
    (ret (run (prog [ Return (Some (Or (i 0, i 0))) ])));
  check Alcotest.(option int) "not" (Some 0)
    (ret (run (prog [ Return (Some (Not (i 42))) ])))

let test_if_else () =
  let open Ast in
  let p x =
    prog1 "x"
      [
        If (v "x" > i 10, [ "r" <-- i 1 ], [ "r" <-- i 2 ]);
        Return (Some (v "r"));
      ]
    |> fun pr -> run ~params:[ ("x", x) ] pr
  in
  check Alcotest.(option int) "then" (Some 1) (ret (p 11));
  check Alcotest.(option int) "else" (Some 2) (ret (p 10))

let test_if_without_else () =
  let open Ast in
  let p x =
    run ~params:[ ("x", x) ]
      (prog1 "x"
         [
           "r" <-- i 5;
           If (v "x" = i 0, [ "r" <-- i 9 ], []);
           Return (Some (v "r"));
         ])
  in
  check Alcotest.(option int) "taken" (Some 9) (ret (p 0));
  check Alcotest.(option int) "not taken" (Some 5) (ret (p 1))

let test_while_zero_trips () =
  let open Ast in
  let r =
    run
      (prog
         [
           "n" <-- i 0;
           While (v "n" > i 0, [ "n" <-- (v "n" - i 1) ]);
           Return (Some (i 7));
         ])
  in
  check Alcotest.(option int) "zero-trip while" (Some 7) (ret r)

let test_dowhile () =
  let open Ast in
  let r =
    run
      (prog
         [
           "n" <-- i 0;
           "acc" <-- i 0;
           DoWhile
             ( [ "acc" <-- (v "acc" + i 10); "n" <-- (v "n" + i 1) ],
               v "n" < i 3 );
           Return (Some (v "acc"));
         ])
  in
  check Alcotest.(option int) "do-while runs 3 times" (Some 30) (ret r)

let test_break () =
  let open Ast in
  let r =
    run
      (prog
         [
           "acc" <-- i 0;
           for_ "k" (i 0) (i 100)
             [
               If (v "k" = i 5, [ Break ], []);
               "acc" <-- (v "acc" + v "k");
             ];
           Return (Some (v "acc"));
         ])
  in
  check Alcotest.(option int) "break exits loop" (Some 10) (ret r)

let test_nested_break () =
  let open Ast in
  let r =
    run
      (prog
         [
           "acc" <-- i 0;
           for_ "a" (i 0) (i 3)
             [
               "b" <-- i 0;
               While
                 ( i 1 = i 1,
                   [
                     If (v "b" = i 2, [ Break ], []);
                     "acc" <-- (v "acc" + i 1);
                     "b" <-- (v "b" + i 1);
                   ] );
             ];
           Return (Some (v "acc"));
         ])
  in
  check Alcotest.(option int) "break binds to inner loop" (Some 6) (ret r)

let test_early_return () =
  let open Ast in
  let p x =
    run ~params:[ ("x", x) ]
      (prog1 "x"
         [
           If (v "x" > i 0, [ Return (Some (i 1)) ], []);
           Return (Some (i 2));
         ])
  in
  check Alcotest.(option int) "early" (Some 1) (ret (p 5));
  check Alcotest.(option int) "fallthrough" (Some 2) (ret (p (-5)))

let test_memory_ops () =
  let open Ast in
  let r =
    run ~memory_words:16
      (prog
         [
           Store (i 3, i 11);
           Store (i 4, mem (i 3) + i 1);
           Return (Some (mem (i 4)));
         ])
  in
  check Alcotest.(option int) "store/load chain" (Some 12) (ret r)

(* ---- for-loop unrolling ------------------------------------------------ *)

let sum_to n =
  let open Ast in
  prog1 "n"
    [
      "acc" <-- i 0;
      for_ "k" (i 0) (v "n") [ "acc" <-- (v "acc" + v "k") ];
      Return (Some (v "acc"));
    ]
  |> fun p -> (p, n)

let unroll_preserves_semantics =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"for-loop unrolling preserves sums" ~count:100
       QCheck2.Gen.(pair (int_range 0 40) (int_range 1 8))
       (fun (n, factor) ->
         let p, _ = sum_to n in
         let base = run ~params:[ ("n", n) ] p in
         let unrolled = Unroll_for.apply ~factor p in
         let r = run ~params:[ ("n", n) ] unrolled in
         ret base = ret r))

let test_unroll_skips_breaks () =
  let open Ast in
  let p =
    prog
      [
        "acc" <-- i 0;
        for_ "k" (i 0) (i 10)
          [ If (v "k" = i 4, [ Break ], []); "acc" <-- (v "acc" + i 1) ];
        Return (Some (v "acc"));
      ]
  in
  let unrolled = Unroll_for.apply ~factor:4 p in
  (* loop with break is ineligible: program text unchanged *)
  check Alcotest.bool "break-loop not unrolled" true (Stdlib.( = ) p unrolled)

let test_unroll_nested_targets_inner () =
  let open Ast in
  let p =
    prog
      [
        "acc" <-- i 0;
        for_ "a" (i 0) (i 5)
          [ for_ "b" (i 0) (i 7) [ "acc" <-- (v "acc" + i 1) ] ];
        Return (Some (v "acc"));
      ]
  in
  let unrolled = Unroll_for.apply ~factor:4 p in
  check Alcotest.bool "program changed" true (Stdlib.( <> ) p unrolled);
  check Alcotest.(option int) "same result" (Some 35) (ret (run unrolled))

(* random programs lower and run deterministically *)
let random_programs_lower =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random programs lower, validate and run"
       ~count:60
       ~print:Generators.print_workload Generators.random_program_gen
       (fun w ->
         let r1 = Generators.baseline_of w in
         let r2 = Generators.baseline_of w in
         r1.Func_sim.checksum = r2.Func_sim.checksum))

let guards_are_boolean =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"lowered exit guards always read 0/1 registers" ~count:40
       ~print:Generators.print_workload Generators.random_program_gen
       (fun w ->
         (* interpret and assert the strict exit invariant holds, which
            requires well-formed boolean guards *)
         let r = Generators.baseline_of w in
         r.Func_sim.blocks_executed > 0))

(* ---- concrete-syntax parser -------------------------------------------- *)

let parse_and_run ?(params = []) src =
  let program = Parser.parse_program src in
  run ~params program

let test_parser_expressions () =
  let p src = ret (parse_and_run ("kernel t() { return " ^ src ^ "; }")) in
  check Alcotest.(option int) "precedence * over +" (Some 14) (p "2 + 3 * 4");
  check Alcotest.(option int) "parens" (Some 20) (p "(2 + 3) * 4");
  check Alcotest.(option int) "comparison" (Some 1) (p "3 < 4");
  check Alcotest.(option int) "logic" (Some 1) (p "1 < 2 && 4 > 3");
  check Alcotest.(option int) "bitwise" (Some 6) (p "3 ^ 5");
  check Alcotest.(option int) "shift binds tighter than compare" (Some 1)
    (p "1 << 3 > 7");
  check Alcotest.(option int) "unary minus" (Some (-5)) (p "-5");
  check Alcotest.(option int) "not" (Some 0) (p "!7");
  check Alcotest.(option int) "modulo" (Some 2) (p "17 % 5")

let test_parser_statements () =
  let src =
    {|
      # computes sum of first n odd numbers via a while loop
      kernel odds(n) {
        sum = 0;
        k = 0;
        i = 1;
        while (k < n) {
          sum = sum + i;
          i = i + 2;
          k = k + 1;
        }
        return sum;  // n^2
      }
    |}
  in
  let r = parse_and_run ~params:[ ("n", 9) ] src in
  check Alcotest.(option int) "9^2" (Some 81) (ret r)

let test_parser_full_constructs () =
  let src =
    {|
      kernel mixed(n) {
        acc = 0;
        for (i = 0; i < n; i += 2) {
          mem[i] = i * 3;
        }
        do { acc = acc + mem[acc % 16]; n = n - 1; } while (n > 0);
        while (1 == 1) {
          if (acc > 100) { break; } else { acc = acc + 7; }
        }
        return acc;
      }
    |}
  in
  let r = parse_and_run ~params:[ ("n", 10) ] src in
  check Alcotest.bool "terminates above 100" true
    (match ret r with Some v -> v > 100 | None -> false)

let test_parser_matches_dsl () =
  (* the concrete syntax and the OCaml DSL must agree *)
  let text =
    Parser.parse_program
      "kernel gcd(a, b) { while (b != 0) { t = a % b; a = b; b = t; } return a; }"
  in
  let open Ast in
  let dsl =
    {
      prog_name = "gcd";
      params = [ "a"; "b" ];
      body =
        [
          While
            ( v "b" <> i 0,
              [ "t" <-- (v "a" % v "b"); "a" <-- v "b"; "b" <-- v "t" ] );
          Return (Some (v "a"));
        ];
    }
  in
  check Alcotest.bool "ASTs equal" true (Stdlib.( = ) text dsl)

let test_parser_errors () =
  let fails src =
    match Parser.parse_program src with
    | exception Parser.Parse_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "missing semicolon" true (fails "kernel t() { x = 1 }");
  check Alcotest.bool "bad for index" true
    (fails "kernel t() { for (i = 0; j < 3; i += 1) { } }");
  check Alcotest.bool "unknown char" true (fails "kernel t() { x = 1 @ 2; }");
  check Alcotest.bool "trailing garbage" true (fails "kernel t() { } zzz")

let roundtrip_micro () =
  (* every microbenchmark program survives print -> parse exactly *)
  List.iter
    (fun w ->
      let p = w.Trips_workloads.Workload.program in
      let p' = Parser.parse_program (Parser.print_program p) in
      check Alcotest.bool
        (w.Trips_workloads.Workload.name ^ " round-trips")
        true
        (Stdlib.( = ) p p'))
    Trips_workloads.Micro.all

let roundtrip_random =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parser round-trips random programs" ~count:100
       ~print:(fun w -> Parser.print_program w.Trips_workloads.Workload.program)
       Generators.random_program_gen (fun w ->
         let p = w.Trips_workloads.Workload.program in
         Stdlib.( = ) p (Parser.parse_program (Parser.print_program p))))

(* ---- inlining ----------------------------------------------------------- *)

let parse_inline_run ?(params = []) src =
  let unit_ = Parser.parse_unit src in
  let program = Inline.program_of_unit unit_ in
  run ~params program

let test_inline_simple () =
  let src =
    {|
      kernel square(x) { return x * x; }
      kernel main(n) { return square(n) + square(n + 1); }
    |}
  in
  check Alcotest.(option int) "3^2 + 4^2" (Some 25)
    (ret (parse_inline_run ~params:[ ("n", 3) ] src))

let test_inline_nested_calls () =
  let src =
    {|
      kernel double(x) { return x + x; }
      kernel quad(x) { return double(double(x)); }
      kernel main(n) { return quad(n); }
    |}
  in
  check Alcotest.(option int) "4n" (Some 28)
    (ret (parse_inline_run ~params:[ ("n", 7) ] src))

let test_inline_callee_with_control_flow () =
  let src =
    {|
      kernel max3(a, b, c) {
        m = a;
        if (b > m) { m = b; }
        if (c > m) { m = c; }
        return m;
      }
      kernel main(n) {
        return max3(n, 2 * n - 15, 11);
      }
    |}
  in
  check Alcotest.(option int) "max(10, 5, 11)" (Some 11)
    (ret (parse_inline_run ~params:[ ("n", 10) ] src));
  check Alcotest.(option int) "max(20, 25, 11)" (Some 25)
    (ret (parse_inline_run ~params:[ ("n", 20) ] src))

let test_inline_tail_if_returns () =
  let src =
    {|
      kernel sign(x) {
        if (x > 0) { return 1; } else {
          if (x < 0) { return 0 - 1; } else { return 0; }
        }
      }
      kernel main(n) { return sign(n) + 10 * sign(0 - n); }
    |}
  in
  check Alcotest.(option int) "sign(5)" (Some (-9))
    (ret (parse_inline_run ~params:[ ("n", 5) ] src))

let test_inline_call_in_loop_condition () =
  let src =
    {|
      kernel below(x, lim) { return x < lim; }
      kernel main(n) {
        acc = 0;
        k = 0;
        while (below(k, n)) { acc = acc + k; k = k + 1; }
        return acc;
      }
    |}
  in
  check Alcotest.(option int) "sum 0..9" (Some 45)
    (ret (parse_inline_run ~params:[ ("n", 10) ] src))

let test_inline_locals_do_not_clash () =
  let src =
    {|
      kernel helper(x) { t = x * 2; return t; }
      kernel main(n) {
        t = 100;
        u = helper(n);
        return t + u;
      }
    |}
  in
  check Alcotest.(option int) "caller's t survives" (Some 106)
    (ret (parse_inline_run ~params:[ ("n", 3) ] src))

let test_inline_rejects_recursion () =
  let src =
    {|
      kernel f(x) { return f(x - 1); }
      kernel main(n) { return f(n); }
    |}
  in
  check Alcotest.bool "recursion rejected" true
    (match Inline.program_of_unit (Parser.parse_unit src) with
    | exception Inline.Not_inlinable _ -> true
    | _ -> false)

let test_inline_rejects_mid_return () =
  let src =
    {|
      kernel f(x) {
        if (x > 0) { return 1; }
        x = x + 1;
        return x;
      }
      kernel main(n) { return f(n); }
    |}
  in
  check Alcotest.bool "non-tail return rejected" true
    (match Inline.program_of_unit (Parser.parse_unit src) with
    | exception Inline.Not_inlinable _ -> true
    | _ -> false)

let test_inlined_program_through_pipeline () =
  (* an inlined unit must survive the full compiler *)
  let src =
    {|
      kernel clamp(x, lo, hi) {
        m = x;
        if (m < lo) { m = lo; }
        if (m > hi) { m = hi; }
        return m;
      }
      kernel main(n) {
        acc = 0;
        for (k = 0; k < n; k += 1) {
          acc = acc + clamp(mem[k % 64] - 100, 0 - 50, 50);
        }
        return acc;
      }
    |}
  in
  let program = Inline.program_of_unit (Parser.parse_unit src) in
  let w =
    Trips_workloads.Workload.make ~name:"inlined" ~description:"test"
      ~args:[ ("n", 300) ] ~memory_words:64
      ~init_memory:(fun a -> Array.iteri (fun k _ -> a.(k) <- k * 5) a)
      program
  in
  let baseline = Generators.baseline_of w in
  let c = Trips_harness.Pipeline.compile ~backend:true Chf.Phases.Iupo_merged w in
  let r = Trips_harness.Pipeline.run_functional c in
  check Alcotest.int "pipeline checksum" baseline.Func_sim.checksum
    r.Func_sim.checksum

let suite =
  ( "lang",
    [
      Alcotest.test_case "inline simple" `Quick test_inline_simple;
      Alcotest.test_case "inline nested calls" `Quick test_inline_nested_calls;
      Alcotest.test_case "inline control flow" `Quick test_inline_callee_with_control_flow;
      Alcotest.test_case "inline tail-if returns" `Quick test_inline_tail_if_returns;
      Alcotest.test_case "inline call in loop condition" `Quick
        test_inline_call_in_loop_condition;
      Alcotest.test_case "inline renames locals" `Quick test_inline_locals_do_not_clash;
      Alcotest.test_case "inline rejects recursion" `Quick test_inline_rejects_recursion;
      Alcotest.test_case "inline rejects mid return" `Quick test_inline_rejects_mid_return;
      Alcotest.test_case "inlined unit through pipeline" `Quick
        test_inlined_program_through_pipeline;
      Alcotest.test_case "parser round-trips kernels" `Quick roundtrip_micro;
      roundtrip_random;
      Alcotest.test_case "parser expressions" `Quick test_parser_expressions;
      Alcotest.test_case "parser statements" `Quick test_parser_statements;
      Alcotest.test_case "parser constructs" `Quick test_parser_full_constructs;
      Alcotest.test_case "parser matches DSL" `Quick test_parser_matches_dsl;
      Alcotest.test_case "parser errors" `Quick test_parser_errors;
      Alcotest.test_case "arithmetic" `Quick test_arith;
      Alcotest.test_case "logic is boolean" `Quick test_logic_is_boolean;
      Alcotest.test_case "if/else" `Quick test_if_else;
      Alcotest.test_case "if without else" `Quick test_if_without_else;
      Alcotest.test_case "zero-trip while" `Quick test_while_zero_trips;
      Alcotest.test_case "do-while" `Quick test_dowhile;
      Alcotest.test_case "break" `Quick test_break;
      Alcotest.test_case "nested break" `Quick test_nested_break;
      Alcotest.test_case "early return" `Quick test_early_return;
      Alcotest.test_case "memory ops" `Quick test_memory_ops;
      unroll_preserves_semantics;
      Alcotest.test_case "unroll skips break loops" `Quick test_unroll_skips_breaks;
      Alcotest.test_case "unroll handles nests" `Quick test_unroll_nested_targets_inner;
      random_programs_lower;
      guards_are_boolean;
    ] )
