(* Fuzz subsystem: generator validity, the differential oracle's
   accept/reject behavior, corpus round-trip and the committed
   reproducer replay gate, the shrinker, campaign determinism — and the
   pipeline degradation corners the fuzzer leans on: split-and-retry
   after a back-end rejection, backend-off after repeated rejections,
   and structured [Timed_out] flowing through a sweep without aborting
   siblings. *)

open Trips_ir
open Trips_fuzz
open Trips_workloads
open Trips_harness

let check = Alcotest.check

(* ---- generator --------------------------------------------------------- *)

(* Every CFG shape must produce a structurally valid, self-contained
   case: any oracle failure indicts the pipeline, never the input. *)
let test_gen_shapes_valid () =
  List.iter
    (fun shape ->
      List.iter
        (fun seed ->
          let case = Gen.generate shape ~seed in
          match case.Gen.payload with
          | Gen.Cfg_case { cfg; registers; _ } ->
            let params = IntSet.of_list (List.map fst registers) in
            (match
               Trips_verify.Cfg_verify.check ~allow_unreachable:false ~params
                 cfg
             with
            | [] -> ()
            | viols ->
              Alcotest.failf "%s seed %d: %a" (Gen.shape_name shape) seed
                Fmt.(list ~sep:(any "; ") Trips_verify.Cfg_verify.pp_violation)
                viols)
          | Gen.Lang_case _ -> ())
        [ 1; 77; 4242 ])
    Gen.all_shapes

let test_gen_deterministic () =
  List.iter
    (fun shape ->
      let render c = Corpus.render c in
      check Alcotest.string
        (Gen.shape_name shape ^ " deterministic per seed")
        (render (Gen.generate shape ~seed:123))
        (render (Gen.generate shape ~seed:123)))
    Gen.all_shapes

(* ---- oracle ------------------------------------------------------------ *)

(* One case per shape from the campaign stream must pass end to end
   (seed 42 is the acceptance campaign; its first round covers every
   shape). *)
let test_oracle_passes_sample () =
  List.iter
    (fun i ->
      let case = Gen.generate_nth ~base_seed:42 i in
      match Oracle.check case with
      | Oracle.Pass -> ()
      | Oracle.Fail { stage; bucket; reason } ->
        Alcotest.failf "case %d (%s): %s / %s: %s" i
          (Gen.shape_name case.Gen.shape)
          stage bucket reason)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]

(* A structurally corrupted input must be rejected up front, in the
   input-verify stage, with an [input:*] bucket — the oracle never
   blames the pipeline for a bad case. *)
let test_oracle_rejects_corruption () =
  let case = Gen.generate_nth ~base_seed:42 0 in
  match case.Gen.payload with
  | Gen.Lang_case _ -> Alcotest.fail "expected a CFG case at index 0"
  | Gen.Cfg_case { cfg; registers; mem_words } -> (
    match
      Trips_verify.Chaos.inject
        (Random.State.make [| 1 |])
        Trips_verify.Chaos.Strip_exits cfg
    with
    | None -> Alcotest.fail "no injection site for strip-exits"
    | Some inj -> (
      let corrupted =
        { case with
          Gen.payload =
            Gen.Cfg_case { cfg = inj.Trips_verify.Chaos.cfg; registers; mem_words }
        }
      in
      match Oracle.check corrupted with
      | Oracle.Pass -> Alcotest.fail "corrupted case passed the oracle"
      | Oracle.Fail { stage; bucket; _ } ->
        check Alcotest.string "rejected in input verification" "input-verify"
          stage;
        check Alcotest.bool "bucket marks a generator-side problem" true
          (String.length bucket >= 6 && String.sub bucket 0 6 = "input:")))

(* ---- corpus ------------------------------------------------------------ *)

let test_corpus_roundtrip () =
  List.iter
    (fun i ->
      let case = Gen.generate_nth ~base_seed:7 i in
      let text = Corpus.render ~bucket:"unit:test" case in
      match Corpus.parse text with
      | Error msg ->
        Alcotest.failf "%s: %s" (Gen.shape_name case.Gen.shape) msg
      | Ok entry ->
        check
          Alcotest.(option string)
          (Gen.shape_name case.Gen.shape ^ " bucket preserved")
          (Some "unit:test") entry.Corpus.bucket;
        check Alcotest.string
          (Gen.shape_name case.Gen.shape ^ " stable under re-render")
          text
          (Corpus.render ?bucket:entry.Corpus.bucket entry.Corpus.case))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_corpus_parse_error () =
  (match Corpus.parse "this is not a corpus file\n" with
  | Ok _ -> Alcotest.fail "garbage parsed"
  | Error _ -> ());
  match Corpus.parse "" with
  | Ok _ -> Alcotest.fail "empty input parsed"
  | Error _ -> ()

let test_replay_reports_parse_error () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "chfz-bad-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir "broken.chfz" in
  let oc = open_out path in
  output_string oc "not a corpus file\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.rmdir dir)
    (fun () ->
      match Fuzzer.replay ~dir with
      | Ok _ -> Alcotest.fail "broken corpus replayed"
      | Error msg ->
        check Alcotest.bool "error names the file" true
          (let sub = "broken.chfz" in
           let n = String.length sub and m = String.length msg in
           let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
           go 0))

(* The committed reproducers (minimized findings from past campaigns and
   one exemplar per shape) must all pass: a regression reopens the
   finding.  [dune runtest] runs from [_build/default/test], so the
   corpus directory is a sibling. *)
let test_corpus_replay_gate () =
  match Fuzzer.replay ~dir:"corpus" with
  | Error msg -> Alcotest.failf "corpus unreadable: %s" msg
  | Ok r ->
    check Alcotest.bool "corpus is non-empty" true (r.Fuzzer.r_executed > 0);
    List.iter
      (fun f ->
        Alcotest.failf "reproducer regressed: %s (%s)" f.Fuzzer.fd_bucket
          f.Fuzzer.fd_reason)
      r.Fuzzer.r_findings;
    check Alcotest.int "every reproducer passes" r.Fuzzer.r_executed
      r.Fuzzer.r_passed

(* ---- shrinker ---------------------------------------------------------- *)

(* Against a synthetic oracle ("any case with >= 2 blocks fails") the
   shrinker must return a smaller same-bucket failing case, never a
   passing or invalid one. *)
let test_shrink_synthetic () =
  let case = Gen.generate Gen.Nested_loops ~seed:5 in
  let blocks c =
    match c.Gen.payload with
    | Gen.Cfg_case { cfg; _ } -> Cfg.num_blocks cfg
    | Gen.Lang_case _ -> 0
  in
  let oracle c =
    if blocks c >= 2 then
      Oracle.Fail
        { stage = "unit"; bucket = "unit:too-many-blocks"; reason = "n >= 2" }
    else Oracle.Pass
  in
  let orig = blocks case in
  check Alcotest.bool "input is shrinkable" true (orig > 2);
  let min = Shrink.shrink ~oracle ~bucket:"unit:too-many-blocks" case in
  check Alcotest.bool "shrunk case is strictly smaller" true
    (blocks min < orig);
  check Alcotest.bool "shrunk case still fails in the same bucket" true
    (match oracle min with
    | Oracle.Fail { bucket = "unit:too-many-blocks"; _ } -> true
    | _ -> false);
  (* the shrunk CFG is still a valid, self-contained input *)
  match min.Gen.payload with
  | Gen.Lang_case _ -> ()
  | Gen.Cfg_case { cfg; registers; _ } ->
    let params = IntSet.of_list (List.map fst registers) in
    check Alcotest.int "shrunk case still verifies" 0
      (List.length
         (Trips_verify.Cfg_verify.check ~allow_unreachable:false ~params cfg))

(* A bucket nothing smaller reproduces: shrink must hand back the
   original case, not a passing reduction. *)
let test_shrink_keeps_original_when_stuck () =
  let case = Gen.generate Gen.Giant_block ~seed:9 in
  let oracle _ = Oracle.Pass in
  let min = Shrink.shrink ~oracle ~bucket:"unit:never" case in
  check Alcotest.string "unshrinkable case returned unchanged"
    (Corpus.render case) (Corpus.render min)

(* ---- campaign driver --------------------------------------------------- *)

let stable_of_report (r : Fuzzer.report) =
  ( (r.Fuzzer.r_seed, r.Fuzzer.r_requested, r.Fuzzer.r_executed, r.Fuzzer.r_passed),
    List.map
      (fun f ->
        (f.Fuzzer.fd_index, f.Fuzzer.fd_seed, f.Fuzzer.fd_stage,
         f.Fuzzer.fd_bucket, f.Fuzzer.fd_count))
      r.Fuzzer.r_findings )

let test_fuzzer_deterministic () =
  let run () = Fuzzer.run ~count:12 ~seed:11 () in
  check Alcotest.bool "same seed, same campaign (modulo wall clock)" true
    (stable_of_report (run ()) = stable_of_report (run ()))

let test_fuzzer_report_rendering () =
  let r = Fuzzer.run ~count:4 ~seed:11 () in
  let text = Fmt.str "%a" Fuzzer.pp_report r in
  check Alcotest.bool "summary mentions the seed" true
    (let sub = "seed 11" in
     let n = String.length sub and m = String.length text in
     let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
     go 0);
  let json = Fuzzer.report_json r in
  check Alcotest.bool "json carries the header fields" true
    (let contains sub s =
       let n = String.length sub and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains "\"seed\":11" json
     && contains "\"executed\":4" json
     && contains "\"findings\":[" json)

(* ---- pipeline degradation corners -------------------------------------- *)

let sieve () = Option.get (Micro.by_name "sieve")

(* One injected back-end rejection: the pipeline must recompile with
   over-budget hyperblocks pre-split, keep the back end, flag the
   configuration as degraded — and still compute the right answer. *)
let test_degradation_split_and_retry () =
  Trips_regalloc.Backend.reject_for_tests := 1;
  Fun.protect
    ~finally:(fun () -> Trips_regalloc.Backend.reject_for_tests := 0)
    (fun () ->
      let w = sieve () in
      let bb = Pipeline.compile ~backend:false Chf.Phases.Basic_blocks w in
      let baseline = Pipeline.run_functional bb in
      let c = Pipeline.compile Chf.Phases.Iupo_merged w in
      check Alcotest.bool "degraded flagged" true c.Pipeline.degraded;
      check Alcotest.bool "back end retried and kept" true
        (c.Pipeline.backend <> None);
      check Alcotest.int "injection consumed" 0
        !Trips_regalloc.Backend.reject_for_tests;
      let final = Pipeline.run_functional c in
      check Alcotest.int "degraded compile still correct"
        baseline.Trips_sim.Func_sim.checksum
        final.Trips_sim.Func_sim.checksum)

(* Two rejections in a row exhaust split-and-retry: the back end is
   switched off for the cell rather than failing the compile, and the
   formed (unallocated) CFG still verifies functionally. *)
let test_degradation_backend_off () =
  Trips_regalloc.Backend.reject_for_tests := 2;
  Fun.protect
    ~finally:(fun () -> Trips_regalloc.Backend.reject_for_tests := 0)
    (fun () ->
      let w = sieve () in
      let bb = Pipeline.compile ~backend:false Chf.Phases.Basic_blocks w in
      let baseline = Pipeline.run_functional bb in
      let c = Pipeline.compile Chf.Phases.Iupo_merged w in
      check Alcotest.bool "degraded flagged" true c.Pipeline.degraded;
      check Alcotest.bool "back end disabled after retry exhaustion" true
        (c.Pipeline.backend = None);
      let final = Pipeline.run_functional c in
      check Alcotest.int "backend-off compile still correct"
        baseline.Trips_sim.Func_sim.checksum
        final.Trips_sim.Func_sim.checksum)

(* ---- watchdog corners -------------------------------------------------- *)

let clear_stage_policy () = Trips_obs.Watchdog.set_stage_policy ()

(* A formation stage that exhausts its budget must surface as a
   structured [Timed_out] failure naming the stage — never retried as a
   crash would be, never an opaque exception. *)
let test_timeout_is_structured () =
  Trips_obs.Watchdog.set_stage_policy ~fuel:1 ~stages:[ "formation" ] ();
  Fun.protect ~finally:clear_stage_policy (fun () ->
      match Pipeline.compile_checked Chf.Phases.Iupo_merged (sieve ()) with
      | Ok _ -> Alcotest.fail "expected a timeout"
      | Error f -> (
        check Alcotest.string "phase is formation" "formation"
          f.Pipeline.fail_phase;
        match f.Pipeline.fail_kind with
        | Pipeline.Crash -> Alcotest.fail "classified as a crash"
        | Pipeline.Timed_out { to_stage; to_reason; _ } ->
          check Alcotest.string "timeout names the stage" "formation" to_stage;
          check Alcotest.bool "reason is the fuel budget" true
            (match to_reason with
            | Trips_obs.Watchdog.Fuel _ -> true
            | Trips_obs.Watchdog.Deadline _ -> false)))

(* A sweep with one cell timing out (formation fuel exhausted) and one
   crashing (a poisoned workload failing in lowering, outside the
   budgeted stage) must complete, record both structured failures with
   their distinct kinds, and still render. *)
let test_sweep_survives_timeout_and_crash () =
  let poisoned =
    let w = Option.get (Micro.by_name "vadd") in
    { w with Workload.name = "poisoned"; args = [ ("no_such_param", 1) ] }
  in
  Trips_obs.Watchdog.set_stage_policy ~fuel:1 ~stages:[ "formation" ] ();
  let outcome =
    Fun.protect ~finally:clear_stage_policy (fun () ->
        Table1.run ~workloads:[ poisoned; sieve () ] ())
  in
  let timed_out, crashed =
    List.partition
      (fun (f : Pipeline.failure) ->
        match f.Pipeline.fail_kind with
        | Pipeline.Timed_out _ -> true
        | Pipeline.Crash -> false)
      outcome.Table1.failures
  in
  check Alcotest.bool "sieve cell recorded as timed out" true
    (List.exists
       (fun (f : Pipeline.failure) -> f.Pipeline.fail_workload = "sieve")
       timed_out);
  check Alcotest.bool "poisoned cell recorded as crash" true
    (List.exists
       (fun (f : Pipeline.failure) ->
         f.Pipeline.fail_workload = "poisoned"
         && f.Pipeline.fail_phase = "lower")
       crashed);
  (* rendering the partial table must not raise *)
  ignore (Fmt.str "%a" Table1.render outcome);
  (* the policy is cleared: the same sweep now completes cleanly *)
  let healthy = Table1.run ~workloads:[ sieve () ] () in
  check Alcotest.int "no failures once the policy is cleared" 0
    (List.length healthy.Table1.failures);
  check Alcotest.int "row restored" 1 (List.length healthy.Table1.rows)

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "generator shapes valid" `Quick test_gen_shapes_valid;
      Alcotest.test_case "generator deterministic" `Quick test_gen_deterministic;
      Alcotest.test_case "oracle passes campaign sample" `Slow
        test_oracle_passes_sample;
      Alcotest.test_case "oracle rejects corrupted input" `Quick
        test_oracle_rejects_corruption;
      Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip;
      Alcotest.test_case "corpus parse error" `Quick test_corpus_parse_error;
      Alcotest.test_case "replay reports parse error" `Quick
        test_replay_reports_parse_error;
      Alcotest.test_case "corpus replay gate" `Slow test_corpus_replay_gate;
      Alcotest.test_case "shrinker minimizes" `Quick test_shrink_synthetic;
      Alcotest.test_case "shrinker keeps stuck case" `Quick
        test_shrink_keeps_original_when_stuck;
      Alcotest.test_case "campaign deterministic" `Slow test_fuzzer_deterministic;
      Alcotest.test_case "campaign report rendering" `Slow
        test_fuzzer_report_rendering;
      Alcotest.test_case "degradation: split and retry" `Quick
        test_degradation_split_and_retry;
      Alcotest.test_case "degradation: backend off" `Quick
        test_degradation_backend_off;
      Alcotest.test_case "watchdog: structured timeout" `Quick
        test_timeout_is_structured;
      Alcotest.test_case "watchdog: sweep survives timeout and crash" `Slow
        test_sweep_survives_timeout_and_crash;
    ] )
