(* Provenance and attribution tests: lineage stamping at lowering,
   retagging through formation's duplicating transforms, the decision
   log, the cycle-attribution partition invariants, report determinism
   across --jobs, the --no-provenance byte-identity guarantee, and the
   constraint pre-filter regression (a store-dense kernel must bump the
   counter). *)

open Trips_ir
open Trips_harness

let check = Alcotest.check

let workload name = Option.get (Trips_workloads.Micro.by_name name)

let all_instrs cfg =
  List.concat_map (fun b -> b.Block.instrs) (Cfg.blocks cfg)

let classes_of cfg =
  List.sort_uniq compare
    (List.map (fun i -> Lineage.class_name i.Instr.lineage) (all_instrs cfg))

(* Lowering stamps every instruction with its origin block and the
   Original placement. *)
let test_lower_stamps_origins () =
  Lineage.set_enabled true;
  let cfg, _ = Pipeline.lower_workload (workload "sieve") in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          check Alcotest.int
            (Fmt.str "origin of i%d is its block" i.Instr.id)
            b.Block.id i.Instr.lineage.Lineage.origin;
          check Alcotest.string "placement is Original" "original"
            (Lineage.class_name i.Instr.lineage))
        b.Block.instrs)
    cfg

(* Formation retags merged-in copies: a formed sieve must contain
   if-converted, duplicated and helper instructions, every one still
   naming a real origin block, and the surviving hyperblocks carry a
   step-numbered decision log. *)
let test_formation_retags () =
  Lineage.set_enabled true;
  let c = Pipeline.compile ~backend:false Chf.Phases.Iupo_merged (workload "sieve") in
  let cfg = c.Pipeline.cfg in
  let cls = classes_of cfg in
  check Alcotest.bool "if-converted instructions present" true
    (List.mem "if_conv" cls);
  check Alcotest.bool "duplicated instructions present" true
    (List.mem "tail_dup" cls || List.mem "unroll" cls || List.mem "peel" cls);
  check Alcotest.bool "predication helpers tagged" true
    (List.mem "helper" cls);
  check Alcotest.bool "no instruction lost its lineage" false
    (List.mem "unknown" cls);
  List.iter
    (fun i ->
      check Alcotest.bool "origin names a block id" true
        (i.Instr.lineage.Lineage.origin >= 0))
    (all_instrs cfg);
  (* at least one hyperblock has a decision log, and steps count 1..n *)
  let logged =
    List.filter_map
      (fun b ->
        match Cfg.decisions cfg b.Block.id with [] -> None | ds -> Some ds)
      (Cfg.blocks cfg)
  in
  check Alcotest.bool "some block has formation decisions" true (logged <> []);
  List.iter
    (fun ds ->
      List.iteri
        (fun idx d ->
          check Alcotest.int "decision steps are 1..n in order" (idx + 1)
            d.Lineage.d_step)
        ds)
    logged

(* Cfg.copy preserves both the per-instruction tags and the decision
   log (trial-install snapshots must not strip provenance). *)
let test_lineage_survives_copy () =
  Lineage.set_enabled true;
  let c = Pipeline.compile ~backend:false Chf.Phases.Iupo_merged (workload "gzip_1") in
  let cfg = c.Pipeline.cfg in
  let dup = Cfg.copy cfg in
  check
    Alcotest.(list string)
    "instruction classes survive copy" (classes_of cfg) (classes_of dup);
  List.iter
    (fun b ->
      check
        Alcotest.(list string)
        "decision log survives copy"
        (List.map Lineage.describe_decision (Cfg.decisions cfg b.Block.id))
        (List.map Lineage.describe_decision (Cfg.decisions dup b.Block.id)))
    (Cfg.blocks cfg)

(* Acceptance: --no-provenance is byte-identical on compiler output.
   Lineage is inert metadata; the printed CFG and the emitted assembly
   must not change when it is disabled. *)
let test_no_provenance_byte_identical () =
  let dump w =
    let c = Pipeline.compile ~backend:true Chf.Phases.Iupo_merged (workload w) in
    Fmt.str "%a" Cfg.pp c.Pipeline.cfg
    ^ Trips_regalloc.Tasm.to_string c.Pipeline.cfg
  in
  Fun.protect
    ~finally:(fun () -> Lineage.set_enabled true)
    (fun () ->
      List.iter
        (fun w ->
          Lineage.set_enabled true;
          let tagged = dump w in
          Lineage.set_enabled false;
          let untagged = dump w in
          check Alcotest.string
            (w ^ ": CFG and assembly identical with provenance off") tagged
            untagged)
        [ "sieve"; "gzip_1"; "vadd" ])

(* Attribution partitions: per block, the lineage-class fetch counts sum
   to the block's fetched slots (and likewise fired); per function, the
   per-block cycles sum to the run total. *)
let test_attribution_partitions () =
  Lineage.set_enabled true;
  let r =
    Reporter.report_workload ~ordering:Chf.Phases.Iupo_merged (workload "sieve")
  in
  check Alcotest.bool "some block executed" true
    (List.exists (fun b -> b.Trips_obs.Report.execs > 0) r.Trips_obs.Report.blocks);
  List.iter
    (fun b ->
      let open Trips_obs.Report in
      let sum f = List.fold_left (fun acc c -> acc + f c) 0 b.classes in
      check Alcotest.int
        (Fmt.str "b%d: class fetch counts partition fetched slots" b.block)
        b.fetched
        (sum (fun c -> c.cc_fetched));
      check Alcotest.int
        (Fmt.str "b%d: class fired counts partition fired slots" b.block)
        b.fired
        (sum (fun c -> c.cc_fired));
      check Alcotest.bool "fired never exceeds fetched" true
        (b.fired <= b.fetched))
    r.Trips_obs.Report.blocks;
  check Alcotest.int "per-block cycles partition the run total"
    r.Trips_obs.Report.total_cycles
    (List.fold_left
       (fun acc b -> acc + b.Trips_obs.Report.cycles)
       0 r.Trips_obs.Report.blocks)

(* Acceptance: the rendered report and its JSON are byte-identical at
   any --jobs setting, and the JSON passes a syntax check. *)
let test_report_jobs_invariant () =
  Lineage.set_enabled true;
  let ws =
    List.filter_map Trips_workloads.Micro.by_name [ "sieve"; "vadd"; "gzip_1" ]
  in
  let run jobs =
    let o = Reporter.run ~jobs ~workloads:ws () in
    check Alcotest.int "no failures" 0 (List.length o.Reporter.failures);
    ( Fmt.str "%a" Reporter.render o,
      Trips_obs.Report.to_json o.Reporter.reports )
  in
  let t1, j1 = run 1 in
  let t4, j4 = run 4 in
  check Alcotest.string "text report identical across -j 1 / -j 4" t1 t4;
  check Alcotest.string "json report identical across -j 1 / -j 4" j1 j4

(* Satellite regression: the constraint pre-filter genuinely fires on a
   store-dense kernel (the 24 paper kernels are all instruction-budget
   bound, so this was silently 0 in BENCH_formation.json). *)
let test_prefilter_fires_on_store_dense () =
  let w = workload "fill12" in
  let profile, _ = Pipeline.profile_workload w in
  let cfg, _ = Pipeline.lower_workload w in
  Trips_opt.Optimizer.optimize_cfg cfg;
  Trips_obs.Metrics.reset ();
  ignore (Chf.Formation.run Chf.Policy.edge_default cfg profile);
  let snap = Trips_obs.Metrics.snapshot () in
  let hits = Trips_obs.Metrics.counter_value snap "formation.prefilter.hits" in
  check Alcotest.bool
    (Fmt.str "store-dense kernel bumps the pre-filter (got %d)" hits)
    true (hits > 0)

(* ... and the store-dense kernels still compile correctly end to end. *)
let test_store_dense_verified () =
  List.iter
    (fun w ->
      let bb = Pipeline.compile ~backend:true Chf.Phases.Basic_blocks w in
      let baseline = Pipeline.run_functional bb in
      let c = Pipeline.compile ~backend:true Chf.Phases.Iupo_merged w in
      ignore (Pipeline.verify_against ~baseline c))
    Trips_workloads.Micro.store_dense

let suite =
  ( "provenance",
    [
      Alcotest.test_case "lowering stamps origins" `Quick
        test_lower_stamps_origins;
      Alcotest.test_case "formation retags copies" `Quick test_formation_retags;
      Alcotest.test_case "lineage survives Cfg.copy" `Quick
        test_lineage_survives_copy;
      Alcotest.test_case "--no-provenance byte-identical" `Quick
        test_no_provenance_byte_identical;
      Alcotest.test_case "attribution partitions totals" `Quick
        test_attribution_partitions;
      Alcotest.test_case "report invariant across --jobs" `Quick
        test_report_jobs_invariant;
      Alcotest.test_case "pre-filter fires on store-dense" `Quick
        test_prefilter_fires_on_store_dense;
      Alcotest.test_case "store-dense kernels verified" `Quick
        test_store_dense_verified;
    ] )
