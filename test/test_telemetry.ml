(* Request-scoped telemetry: the rolling window's bucket arithmetic
   (expiry across the ring seam, epoch-aligned merge), the per-request
   collector lifecycle (span-tree well-formedness, window reconciliation,
   ring eviction), and the TRIPS_NO_REQ_TELEMETRY escape hatch. *)

open Trips_obs

let check = Alcotest.check

let hatch_off () =
  (* Make sure the escape hatch is not inherited from the environment. *)
  Unix.putenv Telemetry.hatch ""

(* ---- rolling window ---------------------------------------------------- *)

(* A fresh window answers with empty lists, not zero-filled quantiles. *)
let test_window_empty () =
  let w = Telemetry.Window.create ~buckets:4 ~bucket_s:1.0 () in
  let s = Telemetry.Window.snapshot ~now:10.0 w in
  check Alcotest.int "no counters" 0 (List.length s.Telemetry.Window.w_counters);
  check Alcotest.int "no gauges" 0 (List.length s.Telemetry.Window.w_gauges);
  check Alcotest.int "no histograms" 0
    (List.length s.Telemetry.Window.w_histograms);
  check (Alcotest.float 1e-9) "span still reported" 4.0
    s.Telemetry.Window.w_span_s;
  check Alcotest.int "absent counter reads 0" 0
    (Telemetry.Window.counter_value s "nope");
  check Alcotest.bool "absent histogram is None" true
    (Telemetry.Window.quantiles s "nope" = None)

(* Buckets expire individually as [now] advances, including across the
   ring seam where a new epoch reclaims an old bucket's slot. *)
let test_window_expiry_seam () =
  let module W = Telemetry.Window in
  let w = W.create ~buckets:4 ~bucket_s:1.0 () in
  W.observe w ~now:0.5 "lat" 10.0;
  W.observe w ~now:3.5 "lat" 20.0;
  W.incr w ~now:0.5 "req";
  W.incr w ~now:3.5 "req";
  (* At 3.9 both buckets (epochs 0 and 3) are inside the 4s window. *)
  let s = W.snapshot ~now:3.9 w in
  check Alcotest.int "both samples live" 2
    (match W.quantiles s "lat" with Some q -> q.W.q_count | None -> 0);
  check Alcotest.int "both increments live" 2 (W.counter_value s "req");
  (* At 4.6 epoch 0 has aged out; epoch 3 remains. *)
  let s = W.snapshot ~now:4.6 w in
  (match W.quantiles s "lat" with
  | Some q ->
    check Alcotest.int "old bucket expired" 1 q.W.q_count;
    check (Alcotest.float 1e-9) "surviving sample" 20.0 q.W.q_max
  | None -> Alcotest.fail "expected the 3.5s sample to survive at 4.6");
  check Alcotest.int "counter follows" 1 (W.counter_value s "req");
  (* Writing at 4.2 lands in epoch 4, which reuses epoch 0's slot: the
     seam write must not resurrect the expired samples. *)
  W.observe w ~now:4.2 "lat" 30.0;
  let s = W.snapshot ~now:4.6 w in
  (match W.quantiles s "lat" with
  | Some q ->
    check Alcotest.int "seam write joins the window" 2 q.W.q_count;
    check (Alcotest.float 1e-9) "sum is 20+30" 50.0 q.W.q_sum
  | None -> Alcotest.fail "expected two live samples after the seam write");
  (* A write into the past (older epoch than the slot now holds) is
     refused rather than polluting the newer bucket. *)
  W.observe w ~now:0.7 "lat" 999.0;
  let s = W.snapshot ~now:4.6 w in
  (match W.quantiles s "lat" with
  | Some q ->
    check Alcotest.int "stale write refused" 2 q.W.q_count;
    check (Alcotest.float 1e-9) "max unchanged" 30.0 q.W.q_max
  | None -> Alcotest.fail "window emptied unexpectedly");
  (* Far enough ahead, everything expires. *)
  let s = W.snapshot ~now:9.0 w in
  check Alcotest.bool "fully drained" true (s.W.w_histograms = [])

(* Domain-local windows written concurrently merge into one, with
   epoch alignment through absolute time. *)
let test_window_merge_domains () =
  let module W = Telemetry.Window in
  let mk vals =
    let w = W.create ~buckets:8 ~bucket_s:1.0 () in
    fun () ->
      List.iter
        (fun (now, x) ->
          W.observe w ~now "lat" x;
          W.incr w ~now "n")
        vals;
      w
  in
  let d1 = Domain.spawn (mk [ (100.2, 1.0); (101.4, 3.0) ]) in
  let d2 = Domain.spawn (mk [ (100.8, 2.0); (102.1, 4.0) ]) in
  let w1 = Domain.join d1 and w2 = Domain.join d2 in
  let into = W.create ~buckets:8 ~bucket_s:1.0 () in
  W.set_gauge into "depth" 1.0;
  W.set_gauge w2 "depth" 7.0;
  W.merge ~into ~now:102.5 w1;
  W.merge ~into ~now:102.5 w2;
  let s = W.snapshot ~now:102.5 into in
  (match W.quantiles s "lat" with
  | Some q ->
    check Alcotest.int "all four samples" 4 q.W.q_count;
    check (Alcotest.float 1e-9) "sum" 10.0 q.W.q_sum;
    check (Alcotest.float 1e-9) "min" 1.0 q.W.q_min;
    check (Alcotest.float 1e-9) "max" 4.0 q.W.q_max;
    check (Alcotest.float 1e-9) "p50 nearest-rank" 2.0 q.W.q_p50
  | None -> Alcotest.fail "merge lost the histogram");
  check Alcotest.int "counters sum" 4 (W.counter_value s "n");
  check Alcotest.bool "src gauge overwrites" true
    (s.W.w_gauges = [ ("depth", 7.0) ])

(* ---- collector lifecycle ----------------------------------------------- *)

let run_request ?chaos_seed ~outcome body =
  let ctx = Telemetry.mint ?chaos_seed () in
  let act =
    Telemetry.start ctx ~kind:"compile" ~queue_wait_s:0.0005
  in
  Telemetry.run act body;
  Telemetry.finish act ~outcome;
  match ctx with Some c -> c.Telemetry.tc_id | None -> Alcotest.fail "no ctx"

(* A request driven through start/run/finish yields a well-formed span
   tree, and the window's outcome accounting reconciles with a lifetime
   tally kept by hand. *)
let test_collector_roundtrip () =
  hatch_off ();
  Telemetry.reset ();
  let id =
    run_request ~outcome:"ok" (fun () ->
        Trace.span "lower" (fun () ->
            Trace.record "opt-pass" [ ("pass", Trace.Str "licm") ];
            Metrics.incr "form.attempt";
            Trace.span "formation" (fun () -> Metrics.incr "form.attempt")))
  in
  let id2 = run_request ~outcome:"failed" (fun () -> ()) in
  let tr =
    match Telemetry.find id with
    | Some tr -> tr
    | None -> Alcotest.fail "finished trace not in ring"
  in
  (match Telemetry.check tr with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("malformed span tree: " ^ m));
  check Alcotest.string "outcome stamped" "ok" tr.Telemetry.tr_outcome;
  check Alcotest.string "kind stamped" "compile" tr.Telemetry.tr_kind;
  let names =
    List.map (fun (sp : Telemetry.span) -> sp.Telemetry.sp_name)
      tr.Telemetry.tr_spans
  in
  check
    Alcotest.(list string)
    "frame spans then instrumentation spans"
    [ "request"; "queue-wait"; "execute"; "lower"; "formation" ]
    names;
  check Alcotest.bool "note captured" true
    (List.exists
       (fun (nt : Telemetry.note) -> nt.Telemetry.nt_kind = "opt-pass")
       tr.Telemetry.tr_notes);
  check
    Alcotest.(list (pair string int))
    "request-private counter deltas"
    [ ("form.attempt", 2) ]
    tr.Telemetry.tr_counters;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let txt = Telemetry.render tr in
  check Alcotest.bool "render mentions every span" true
    (List.for_all (contains txt) names);
  (* Window reconciliation: exactly one appearance per request, under
     the right outcome class. *)
  let s = Telemetry.win_snapshot () in
  let module W = Telemetry.Window in
  check Alcotest.int "one ok in window" 1 (W.counter_value s "serve.req.ok");
  check Alcotest.int "one failed in window" 1
    (W.counter_value s "serve.req.failed");
  (match W.quantiles s "serve.latency_s" with
  | Some q -> check Alcotest.int "latency sampled once per request" 2 q.W.q_count
  | None -> Alcotest.fail "latency histogram missing");
  check Alcotest.bool "second trace also retained" true
    (Telemetry.find id2 <> None)

(* The ring is bounded: oldest finished traces are evicted first. *)
let test_ring_eviction () =
  hatch_off ();
  Telemetry.reset ();
  Telemetry.set_ring_capacity 2;
  let ids =
    List.map
      (fun i -> run_request ~outcome:"ok" (fun () -> ignore i))
      [ 1; 2; 3 ]
  in
  (match ids with
  | [ a; b; c ] ->
    check Alcotest.bool "oldest evicted" true (Telemetry.find a = None);
    check Alcotest.bool "newer kept" true (Telemetry.find b <> None);
    check Alcotest.bool "newest kept" true (Telemetry.find c <> None);
    check Alcotest.int "recent is newest-first, bounded" 2
      (List.length (Telemetry.recent ()))
  | _ -> Alcotest.fail "expected three ids");
  Telemetry.set_ring_capacity 64;
  Telemetry.reset ()

(* Under TRIPS_NO_REQ_TELEMETRY everything declines: no ctx, no
   collector, no window writes — the byte-identity escape hatch. *)
let test_escape_hatch () =
  hatch_off ();
  Telemetry.reset ();
  Unix.putenv Telemetry.hatch "1";
  check Alcotest.bool "disabled" false (Telemetry.enabled ());
  check Alcotest.bool "mint declines" true (Telemetry.mint () = None);
  check Alcotest.bool "start declines" true
    (Telemetry.start None ~kind:"compile" ~queue_wait_s:0.0 = None);
  Telemetry.win_incr "serve.req.ok";
  Telemetry.win_observe "serve.latency_s" 1.0;
  Telemetry.win_gauge "serve.queue.depth" 3.0;
  let s = Telemetry.win_snapshot () in
  check Alcotest.int "no counter leaked" 0
    (Telemetry.Window.counter_value s "serve.req.ok");
  check Alcotest.bool "no gauge leaked" true
    (s.Telemetry.Window.w_gauges = []);
  Unix.putenv Telemetry.hatch "";
  check Alcotest.bool "re-enabled when cleared" true (Telemetry.enabled ())

(* A request's event stream is the sequential order of its own worker
   domain: two identical bodies collect identical span/note skeletons
   even when other domains run telemetry concurrently. *)
let test_stream_domain_invariant () =
  hatch_off ();
  Telemetry.reset ();
  let body () =
    Trace.span "lower" (fun () ->
        Trace.record "opt-pass" [ ("pass", Trace.Str "licm") ];
        Trace.span "formation" (fun () -> ()))
  in
  let skeleton id =
    match Telemetry.find id with
    | None -> Alcotest.fail "trace missing"
    | Some tr ->
      ( List.map
          (fun (sp : Telemetry.span) ->
            (sp.Telemetry.sp_id, sp.Telemetry.sp_parent, sp.Telemetry.sp_name))
          tr.Telemetry.tr_spans,
        List.map
          (fun (nt : Telemetry.note) ->
            (nt.Telemetry.nt_span, nt.Telemetry.nt_kind))
          tr.Telemetry.tr_notes )
  in
  let id1 = run_request ~outcome:"ok" body in
  let noisy =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            ignore (run_request ~outcome:"ok" body);
            ()))
  in
  let id2 = run_request ~outcome:"ok" body in
  Array.iter Domain.join noisy;
  check
    Alcotest.(
      pair
        (list (triple int int string))
        (list (pair int string)))
    "identical skeleton regardless of concurrent requests" (skeleton id1)
    (skeleton id2);
  Telemetry.reset ()

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "window: empty" `Quick test_window_empty;
      Alcotest.test_case "window: expiry across ring seam" `Quick
        test_window_expiry_seam;
      Alcotest.test_case "window: merge across domains" `Quick
        test_window_merge_domains;
      Alcotest.test_case "collector: roundtrip + reconciliation" `Quick
        test_collector_roundtrip;
      Alcotest.test_case "collector: ring eviction" `Quick test_ring_eviction;
      Alcotest.test_case "escape hatch" `Quick test_escape_hatch;
      Alcotest.test_case "stream invariant across domains" `Quick
        test_stream_domain_invariant;
    ] )
