(* Tests for the simulators: functional interpreter semantics and
   invariants, the branch predictor, the cache model and the cycle-level
   timing model's sanity properties. *)

open Trips_ir
open Trips_sim

let check = Alcotest.check

(* ---- functional simulator ---------------------------------------------- *)

let single_block instrs exits =
  let cfg = Cfg.create () in
  let b0 = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- b0;
  Cfg.set_block cfg (Block.make b0 instrs exits);
  cfg

let mkins =
  let c = ref 0 in
  fun ?guard op ->
    incr c;
    Instr.make ?guard !c op

let test_guard_semantics () =
  let g = { Instr.greg = 1024; sense = true } in
  let cfg =
    single_block
      [
        mkins (Instr.Mov (1024, Instr.Imm 0));
        mkins ~guard:g (Instr.Mov (1025, Instr.Imm 7));  (* skipped *)
        mkins ~guard:{ g with Instr.sense = false } (Instr.Mov (1026, Instr.Imm 9));
      ]
      [ { Block.eguard = None; target = Block.Ret (Some (Instr.Reg 1026)) } ]
  in
  let r = Func_sim.run ~memory:(Array.make 4 0) cfg in
  check Alcotest.(option int) "false-guarded skipped, true-guarded ran" (Some 9)
    r.Func_sim.ret;
  check Alcotest.int "fired count excludes nullified" 2 r.Func_sim.instrs_executed;
  check Alcotest.int "fetched counts everything" 3 r.Func_sim.instrs_fetched

let test_exit_invariant_violation () =
  (* two unguardable-true exits: strict mode must fail *)
  let cfg =
    single_block
      [ mkins (Instr.Mov (1024, Instr.Imm 1)) ]
      [
        { Block.eguard = Some { Instr.greg = 1024; sense = true }; target = Block.Ret None };
        { Block.eguard = Some { Instr.greg = 1024; sense = true }; target = Block.Ret None };
      ]
  in
  check Alcotest.bool "strict mode raises" true
    (try
       ignore (Func_sim.run ~memory:(Array.make 4 0) cfg);
       false
     with Func_sim.Exit_invariant_violated _ -> true)

let test_no_exit_fires () =
  let cfg =
    single_block
      [ mkins (Instr.Mov (1024, Instr.Imm 0)) ]
      [
        { Block.eguard = Some { Instr.greg = 1024; sense = true }; target = Block.Ret None };
      ]
  in
  check Alcotest.bool "no exit raises" true
    (try
       ignore (Func_sim.run ~memory:(Array.make 4 0) cfg);
       false
     with Func_sim.Exit_invariant_violated _ -> true)

let test_fuel () =
  let cfg = Cfg.create () in
  let b0 = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- b0;
  Cfg.set_block cfg
    (Block.make b0
       [ mkins (Instr.Mov (1024, Instr.Imm 1)) ]
       [ { Block.eguard = None; target = Block.Goto b0 } ]);
  check Alcotest.bool "fuel exhaustion raises" true
    (try
       ignore (Func_sim.run ~fuel:100 ~memory:(Array.make 4 0) cfg);
       false
     with Func_sim.Out_of_fuel _ -> true)

let test_fuel_boundary () =
  (* fuel is the number of dynamic instructions the run may execute:
     a 3-instruction program completes under fuel=3 and raises under
     fuel=2 (the old spend-then-check order admitted only fuel-1) *)
  let mk () =
    single_block
      [
        mkins (Instr.Mov (1024, Instr.Imm 1));
        mkins (Instr.Mov (1025, Instr.Imm 2));
        mkins (Instr.Mov (1026, Instr.Imm 3));
      ]
      [ { Block.eguard = None; target = Block.Ret (Some (Instr.Reg 1026)) } ]
  in
  let r = Func_sim.run ~fuel:3 ~memory:(Array.make 4 0) (mk ()) in
  check Alcotest.(option int) "exactly enough fuel completes" (Some 3)
    r.Func_sim.ret;
  check Alcotest.bool "one unit short raises" true
    (try
       ignore (Func_sim.run ~fuel:2 ~memory:(Array.make 4 0) (mk ()));
       false
     with Func_sim.Out_of_fuel _ -> true)

let test_empty_memory () =
  (* semantics stay total on a zero-length memory: loads read 0, stores
     vanish, and the timing model charges no memory system *)
  let mk () =
    single_block
      [
        mkins (Instr.Store (Instr.Imm 42, Instr.Imm 3, 0));
        mkins (Instr.Load (1024, Instr.Imm 3, 0));
      ]
      [ { Block.eguard = None; target = Block.Ret (Some (Instr.Reg 1024)) } ]
  in
  let r = Func_sim.run ~memory:[||] (mk ()) in
  check Alcotest.(option int) "store vanished, load read 0" (Some 0)
    r.Func_sim.ret;
  let rc = Cycle_sim.run ~memory:[||] (mk ()) in
  check Alcotest.(option int) "cycle model agrees" (Some 0) rc.Cycle_sim.ret;
  check Alcotest.bool "no cache accesses charged" true
    (rc.Cycle_sim.cache_miss_rate = 0.0)

let test_memory_wrapping () =
  let cfg =
    single_block
      [
        mkins (Instr.Store (Instr.Imm 42, Instr.Imm (-1), 0));
        mkins (Instr.Load (1024, Instr.Imm 15, 0));
      ]
      [ { Block.eguard = None; target = Block.Ret (Some (Instr.Reg 1024)) } ]
  in
  let r = Func_sim.run ~memory:(Array.make 16 0) cfg in
  check Alcotest.(option int) "negative address wraps to top" (Some 42) r.Func_sim.ret

let test_profile_collection () =
  let w = Option.get (Trips_workloads.Micro.by_name "ammp_1") in
  let profile, result = Trips_harness.Pipeline.profile_workload w in
  check Alcotest.bool "blocks counted" true (result.Func_sim.blocks_executed > 0);
  (* edge probabilities from any block sum to <= 1 + epsilon *)
  let cfg, _ = Trips_harness.Pipeline.lower_workload w in
  Cfg.iter_blocks
    (fun b ->
      let succs = Block.distinct_successors b in
      let total =
        List.fold_left
          (fun acc s ->
            acc +. Trips_profile.Profile.edge_prob profile ~src:b.Block.id ~dst:s)
          0.0 succs
      in
      check Alcotest.bool
        (Fmt.str "b%d outgoing probability mass %.2f" b.Block.id total)
        true
        (total <= 1.0001))
    cfg

(* ---- predictor --------------------------------------------------------- *)

let test_predictor_learns_loop () =
  let p = Predictor.create () in
  (* steady loop: block 5 -> 5 -> ... learns quickly *)
  for _ = 1 to 50 do
    ignore (Predictor.update p ~block:5 ~actual:5)
  done;
  check Alcotest.bool "high accuracy on a steady loop" true
    (Predictor.accuracy p > 0.9);
  (* a loop exit is a miss, but a single one *)
  let correct = Predictor.update p ~block:5 ~actual:9 in
  check Alcotest.bool "exit mispredicts" false correct

let test_predictor_hysteresis () =
  (* no history bits: direct-mapped table, so the entry is stable *)
  let p = Predictor.create ~history_bits:0 () in
  for _ = 1 to 20 do
    ignore (Predictor.update p ~block:1 ~actual:2)
  done;
  (* one noise event must not flip the stored target *)
  ignore (Predictor.update p ~block:1 ~actual:3);
  check Alcotest.(option int) "target retained" (Some 2)
    (Predictor.predict p ~block:1)

(* ---- cache -------------------------------------------------------------- *)

let test_cache_basics () =
  let c = Cache.create ~size_words:64 ~line_words:8 () in
  check Alcotest.bool "cold miss" false (Cache.access c ~addr:0);
  check Alcotest.bool "same line hits" true (Cache.access c ~addr:7);
  check Alcotest.bool "next line misses" false (Cache.access c ~addr:8);
  (* direct-mapped conflict: addr 0 and addr 64 share a set *)
  ignore (Cache.access c ~addr:64);
  check Alcotest.bool "conflict evicts" false (Cache.access c ~addr:0)

(* ---- cycle simulator ---------------------------------------------------- *)

let cycle_of name ordering =
  let w = Option.get (Trips_workloads.Micro.by_name name) in
  let c = Trips_harness.Pipeline.compile ~backend:true ordering w in
  Trips_harness.Pipeline.run_cycles c

let test_cycle_matches_functional () =
  let w = Option.get (Trips_workloads.Micro.by_name "sieve") in
  let c = Trips_harness.Pipeline.compile ~backend:true Chf.Phases.Iupo_merged w in
  let f = Trips_harness.Pipeline.run_functional c in
  let t = Trips_harness.Pipeline.run_cycles c in
  check Alcotest.int "same checksum" f.Func_sim.checksum t.Cycle_sim.checksum;
  check Alcotest.int "same block count" f.Func_sim.blocks_executed t.Cycle_sim.blocks;
  check Alcotest.(option int) "same return" f.Func_sim.ret t.Cycle_sim.ret

let test_cycle_sanity () =
  let r = cycle_of "sieve" Chf.Phases.Basic_blocks in
  (* cycles must cover at least issue-width-limited execution *)
  check Alcotest.bool "cycles >= instructions / width" true
    (r.Cycle_sim.cycles * Machine.issue_width >= r.Cycle_sim.instrs_fired);
  check Alcotest.bool "cycles at least commit-bound" true
    (r.Cycle_sim.cycles >= 2 * r.Cycle_sim.blocks);
  check Alcotest.bool "some mispredictions on a branchy kernel" true
    (r.Cycle_sim.mispredictions > 0)

let test_cycle_deterministic () =
  let a = cycle_of "dhry" Chf.Phases.Iupo_merged in
  let b = cycle_of "dhry" Chf.Phases.Iupo_merged in
  check Alcotest.int "deterministic cycles" a.Cycle_sim.cycles b.Cycle_sim.cycles;
  check Alcotest.int "deterministic mispredictions" a.Cycle_sim.mispredictions
    b.Cycle_sim.mispredictions

let test_flush_penalty_visible () =
  (* raising the flush penalty cannot make programs faster *)
  let w = Option.get (Trips_workloads.Micro.by_name "art_1") in
  let c = Trips_harness.Pipeline.compile ~backend:true Chf.Phases.Basic_blocks w in
  let base = Trips_harness.Pipeline.run_cycles c in
  let slow =
    Trips_harness.Pipeline.run_cycles
      ~timing:{ Cycle_sim.default_timing with Cycle_sim.flush_penalty = 100 }
      c
  in
  check Alcotest.bool "bigger flush penalty, more cycles" true
    (slow.Cycle_sim.cycles >= base.Cycle_sim.cycles)

let test_block_overhead_visible () =
  let w = Option.get (Trips_workloads.Micro.by_name "vadd") in
  let c = Trips_harness.Pipeline.compile ~backend:true Chf.Phases.Basic_blocks w in
  let base = Trips_harness.Pipeline.run_cycles c in
  let heavy =
    Trips_harness.Pipeline.run_cycles
      ~timing:{ Cycle_sim.default_timing with Cycle_sim.block_overhead = 30 }
      c
  in
  check Alcotest.bool "per-block overhead dominates block-bound code" true
    (heavy.Cycle_sim.cycles > base.Cycle_sim.cycles)

let test_spatial_model () =
  (* unoptimized placement (grid mode) must be no faster than the flat
     (optimized-placement) default, and both must agree functionally *)
  let w = Option.get (Trips_workloads.Micro.by_name "doppler_GMTI") in
  let c = Trips_harness.Pipeline.compile ~backend:true Chf.Phases.Iupo_merged w in
  let flat = Trips_harness.Pipeline.run_cycles c in
  let spatial =
    Trips_harness.Pipeline.run_cycles
      ~timing:{ Cycle_sim.default_timing with Cycle_sim.spatial_grid = 4 }
      c
  in
  check Alcotest.int "same checksum" spatial.Cycle_sim.checksum flat.Cycle_sim.checksum;
  check Alcotest.bool "spatial routing costs at least as much" true
    (spatial.Cycle_sim.cycles >= flat.Cycle_sim.cycles);
  (* a pricier network slows things further *)
  let pricey =
    Trips_harness.Pipeline.run_cycles
      ~timing:{ Cycle_sim.default_timing with Cycle_sim.operand_hop = 4 }
      c
  in
  check Alcotest.bool "operand network visible" true
    (pricey.Cycle_sim.cycles > spatial.Cycle_sim.cycles)

(* ---- cycle-model fast paths (DESIGN.md §16) ----------------------------- *)

let sim_hatches = [ "TRIPS_NO_SIM_FAST"; "TRIPS_NO_SIM_MEMO" ]

(* [on] lists the hatches whose fast path stays enabled (empty value =
   enabled); everything else is engaged for the call *)
let with_hatches on f =
  List.iter
    (fun h -> Unix.putenv h (if List.mem h on then "" else "1"))
    sim_hatches;
  Fun.protect
    ~finally:(fun () -> List.iter (fun h -> Unix.putenv h "") sim_hatches)
    f

let compile_micro name =
  let w = Option.get (Trips_workloads.Micro.by_name name) in
  Trips_harness.Pipeline.compile ~backend:true Chf.Phases.Iupo_merged w

(* Render everything observable about a cycle run — result fields,
   per-block attribution, and the first blocks of the timing trace — so
   equivalence checks compare byte-for-byte. *)
let render_cycle_run ?sample (c : Trips_harness.Pipeline.compiled) =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let a = Attribution.create () in
  let memory = Trips_workloads.Workload.memory c.Trips_harness.Pipeline.workload in
  let r =
    Cycle_sim.run ~trace:8 ~trace_ppf:fmt ?sample ~attribution:a
      ~registers:c.Trips_harness.Pipeline.registers ~memory
      c.Trips_harness.Pipeline.cfg
  in
  Fmt.pf fmt
    "cycles=%d blocks=%d fired=%d fetched=%d mispred=%d acc=%.6f miss=%.6f \
     ret=%a checksum=%d@."
    r.Cycle_sim.cycles r.Cycle_sim.blocks r.Cycle_sim.instrs_fired
    r.Cycle_sim.instrs_fetched r.Cycle_sim.mispredictions
    r.Cycle_sim.predictor_accuracy r.Cycle_sim.cache_miss_rate
    Fmt.(Dump.option int)
    r.Cycle_sim.ret r.Cycle_sim.checksum;
  List.iter
    (fun (row : Attribution.row) ->
      Fmt.pf fmt "b%d execs=%d fetched=%d fired=%d cycles=%d flushes=%d %a@."
        row.Attribution.r_block row.Attribution.r_execs
        row.Attribution.r_fetched row.Attribution.r_fired
        row.Attribution.r_cycles row.Attribution.r_flushes
        Fmt.(list ~sep:sp (fun ppf (cls, f, fi) -> pf ppf "%s:%d/%d" cls f fi))
        row.Attribution.r_classes)
    (Attribution.rows a);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_fast_path_equivalence () =
  (* the ring issue core and the timing memo, alone and together, must
     be byte-identical to the legacy path: cycles, attribution rows and
     the timing trace all included *)
  List.iter
    (fun name ->
      let c = compile_micro name in
      let golden = with_hatches [] (fun () -> render_cycle_run c) in
      List.iter
        (fun (mode, on) ->
          let got = with_hatches on (fun () -> render_cycle_run c) in
          check Alcotest.string (name ^ ": " ^ mode ^ " byte-identical") golden
            got)
        [
          ("ring core only", [ "TRIPS_NO_SIM_FAST" ]);
          ("memo only", [ "TRIPS_NO_SIM_MEMO" ]);
          ("ring + memo", sim_hatches);
        ])
    [ "sieve"; "gzip_1" ]

let test_ring_bounded () =
  (* the ring allocator's memory is bounded by the in-flight window, not
     by simulated time: its final capacity stays orders of magnitude
     below the cycle count (the legacy table held one entry per cycle) *)
  Trips_obs.Metrics.reset ();
  let r = cycle_of "sieve" Chf.Phases.Iupo_merged in
  let snap = Trips_obs.Metrics.snapshot () in
  let cap = Trips_obs.Metrics.counter_value snap "sim.cycle.ring.capacity" in
  check Alcotest.bool "ring in use" true (cap > 0);
  check Alcotest.bool
    (Fmt.str "capacity %d stays far below %d cycles" cap r.Cycle_sim.cycles)
    true
    (cap * 4 < r.Cycle_sim.cycles)

let test_predictor_accounting () =
  (* [Predictor.update]'s verdict is the single source of truth, so the
     flush count reconciles exactly with the predictor's own counters on
     a misprediction-heavy run *)
  Trips_obs.Metrics.reset ();
  let r = cycle_of "art_1" Chf.Phases.Basic_blocks in
  let snap = Trips_obs.Metrics.snapshot () in
  let c = Trips_obs.Metrics.counter_value snap in
  check Alcotest.bool "misprediction-heavy" true
    (r.Cycle_sim.mispredictions > 0);
  check Alcotest.int "flushes = lookups - hits"
    (c "sim.predictor.lookups" - c "sim.predictor.hits")
    (c "sim.cycle.flushes");
  check Alcotest.int "result field agrees with the metric"
    r.Cycle_sim.mispredictions (c "sim.cycle.flushes")

let test_sampled_mode () =
  let c = compile_micro "sieve" in
  let exact = Trips_harness.Pipeline.run_cycles c in
  let sampled = Trips_harness.Pipeline.run_cycles ~sample:8 c in
  check Alcotest.bool "exact mode reports no bound" true
    (exact.Cycle_sim.sample_error_bound = None);
  (match sampled.Cycle_sim.sample_error_bound with
  | None -> Alcotest.fail "sampled run must report a measured error bound"
  | Some b ->
    check Alcotest.bool (Fmt.str "measured bound %.4f within 0.05" b) true
      (b <= 0.05));
  check Alcotest.int "functional outputs unchanged" exact.Cycle_sim.checksum
    sampled.Cycle_sim.checksum;
  let dev =
    abs_float (float_of_int (sampled.Cycle_sim.cycles - exact.Cycle_sim.cycles))
    /. float_of_int (max 1 exact.Cycle_sim.cycles)
  in
  check Alcotest.bool (Fmt.str "cycle deviation %.4f within 0.05" dev) true
    (dev <= 0.05)

let test_attribution_partition_modes () =
  (* the attribution partition invariants (class fetches sum to block
     fetches, block cycles sum to the run total) hold under every fast
     path, including sampled mode — skipped instances still count *)
  let c = compile_micro "sieve" in
  let check_mode name ?sample on =
    with_hatches on (fun () ->
        let a = Attribution.create () in
        let r = Trips_harness.Pipeline.run_cycles ?sample ~attribution:a c in
        let rows = Attribution.rows a in
        check Alcotest.bool (name ^ ": rows present") true (rows <> []);
        List.iter
          (fun (row : Attribution.row) ->
            let sum f =
              List.fold_left (fun acc cl -> acc + f cl) 0
                row.Attribution.r_classes
            in
            check Alcotest.int
              (Fmt.str "%s: b%d class fetches partition block fetches" name
                 row.Attribution.r_block)
              row.Attribution.r_fetched
              (sum (fun (_, f, _) -> f));
            check Alcotest.int
              (Fmt.str "%s: b%d class fired partition block fired" name
                 row.Attribution.r_block)
              row.Attribution.r_fired
              (sum (fun (_, _, fi) -> fi)))
          rows;
        check Alcotest.int (name ^ ": block cycles partition the run total")
          r.Cycle_sim.cycles
          (List.fold_left
             (fun acc (row : Attribution.row) -> acc + row.Attribution.r_cycles)
             0 rows))
  in
  check_mode "fast" sim_hatches;
  check_mode "memo only" [ "TRIPS_NO_SIM_MEMO" ];
  check_mode "sampled" ~sample:8 sim_hatches

let suite =
  ( "sim",
    [
      Alcotest.test_case "spatial placement model" `Quick test_spatial_model;
      Alcotest.test_case "guard semantics" `Quick test_guard_semantics;
      Alcotest.test_case "exit invariant violation" `Quick test_exit_invariant_violation;
      Alcotest.test_case "no exit fires" `Quick test_no_exit_fires;
      Alcotest.test_case "fuel" `Quick test_fuel;
      Alcotest.test_case "fuel boundary" `Quick test_fuel_boundary;
      Alcotest.test_case "empty memory" `Quick test_empty_memory;
      Alcotest.test_case "memory wrapping" `Quick test_memory_wrapping;
      Alcotest.test_case "profile collection" `Quick test_profile_collection;
      Alcotest.test_case "predictor learns loops" `Quick test_predictor_learns_loop;
      Alcotest.test_case "predictor hysteresis" `Quick test_predictor_hysteresis;
      Alcotest.test_case "cache basics" `Quick test_cache_basics;
      Alcotest.test_case "cycle matches functional" `Quick test_cycle_matches_functional;
      Alcotest.test_case "cycle sanity" `Quick test_cycle_sanity;
      Alcotest.test_case "cycle deterministic" `Quick test_cycle_deterministic;
      Alcotest.test_case "flush penalty visible" `Quick test_flush_penalty_visible;
      Alcotest.test_case "block overhead visible" `Quick test_block_overhead_visible;
      Alcotest.test_case "fast-path byte equivalence" `Quick
        test_fast_path_equivalence;
      Alcotest.test_case "ring allocator bounded" `Quick test_ring_bounded;
      Alcotest.test_case "predictor accounting reconciles" `Quick
        test_predictor_accounting;
      Alcotest.test_case "sampled mode bounded" `Quick test_sampled_mode;
      Alcotest.test_case "attribution partitions under fast paths" `Quick
        test_attribution_partition_modes;
    ] )
