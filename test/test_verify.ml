(* Verify subsystem: typed structural violations with loci, the
   tolerated-baseline parameter handling, the chaos fault-injection
   suite, per-phase differential checking, transform invariant
   preservation, and sweep resilience under a poisoned workload. *)

open Trips_ir
open Trips_verify
open Trips_workloads
open Trips_harness

let check = Alcotest.check

(* A minimal well-formed CFG: b0 (cmp; two guarded exits) -> b1 | b2,
   both returning.  All registers virtual, defined before use. *)
let small_cfg () =
  let cfg = Cfg.create ~name:"small" () in
  let b0 = Cfg.fresh_block_id cfg in
  let b1 = Cfg.fresh_block_id cfg in
  let b2 = Cfg.fresh_block_id cfg in
  let p = Cfg.fresh_reg cfg in
  let test = Cfg.instr cfg (Instr.Cmp (Opcode.Lt, p, Instr.Imm 1, Instr.Imm 5)) in
  Cfg.set_block cfg
    (Block.make b0 [ test ]
       [
         { Block.eguard = Some { Instr.greg = p; sense = true }; target = Block.Goto b1 };
         { Block.eguard = Some { Instr.greg = p; sense = false }; target = Block.Goto b2 };
       ]);
  let ret_block id =
    let r = Cfg.fresh_reg cfg in
    let m = Cfg.instr cfg (Instr.Mov (r, Instr.Imm id)) in
    Block.make id [ m ] [ { Block.eguard = None; target = Block.Ret (Some (Instr.Reg r)) } ]
  in
  Cfg.set_block cfg (ret_block b1);
  Cfg.set_block cfg (ret_block b2);
  cfg.Cfg.entry <- b0;
  cfg

let test_clean_cfg () =
  check Alcotest.int "no violations" 0 (List.length (Cfg_verify.check (small_cfg ())))

let test_missing_entry () =
  let cfg = small_cfg () in
  cfg.Cfg.entry <- 99;
  match Cfg_verify.check cfg with
  | [ Cfg_verify.Missing_entry { entry = 99 } ] -> ()
  | vs -> Alcotest.failf "expected Missing_entry 99, got %a" Fmt.(list Cfg_verify.pp_violation) vs

let test_no_exit () =
  let cfg = small_cfg () in
  let b1 = Cfg.block cfg 1 in
  Cfg.set_block cfg { b1 with Block.exits = [] };
  let vs = Cfg_verify.check cfg in
  check Alcotest.bool "No_exit b1 reported" true
    (List.exists (function Cfg_verify.No_exit { block = 1 } -> true | _ -> false) vs);
  let l = Cfg_verify.locus (List.hd vs) in
  check Alcotest.(option int) "locus block" (Some 1) l.Cfg_verify.at_block

let test_multiple_unguarded () =
  let cfg = small_cfg () in
  let b1 = Cfg.block cfg 1 in
  Cfg.set_block cfg
    {
      b1 with
      Block.exits =
        { Block.eguard = None; target = Block.Ret None }
        :: { Block.eguard = None; target = Block.Goto 2 }
        :: b1.Block.exits;
    };
  let vs = Cfg_verify.check cfg in
  check Alcotest.bool "Multiple_unguarded_exits reported" true
    (List.exists
       (function
         | Cfg_verify.Multiple_unguarded_exits { block = 1; count = 3 } -> true
         | _ -> false)
       vs)

let test_dangling_edge () =
  let cfg = small_cfg () in
  let b1 = Cfg.block cfg 1 in
  Cfg.set_block cfg
    { b1 with Block.exits = [ { Block.eguard = None; target = Block.Goto 77 } ] };
  let vs = Cfg_verify.check cfg in
  check Alcotest.bool "Dangling_edge reported" true
    (List.exists
       (function
         | Cfg_verify.Dangling_edge { block = 1; target = 77 } -> true
         | _ -> false)
       vs)

let test_unreachable_block () =
  let cfg = small_cfg () in
  let orphan = Cfg.fresh_block_id cfg in
  Cfg.set_block cfg
    (Block.make orphan [] [ { Block.eguard = None; target = Block.Ret None } ]);
  let vs = Cfg_verify.check cfg in
  check Alcotest.bool "Unreachable_block reported" true
    (List.exists
       (function
         | Cfg_verify.Unreachable_block { block } -> block = orphan
         | _ -> false)
       vs);
  check Alcotest.int "suppressed when allowed" 0
    (List.length (Cfg_verify.check ~allow_unreachable:true cfg))

let test_duplicate_instr_id () =
  let cfg = small_cfg () in
  let b1 = Cfg.block cfg 1 in
  Cfg.set_block cfg { b1 with Block.instrs = b1.Block.instrs @ b1.Block.instrs };
  let vs = Cfg_verify.check cfg in
  check Alcotest.bool "Duplicate_instr_id reported" true
    (List.exists
       (function Cfg_verify.Duplicate_instr_id { block = 1; _ } -> true | _ -> false)
       vs)

let test_undefined_use_and_params () =
  let cfg = small_cfg () in
  let b1 = Cfg.block cfg 1 in
  let ghost = Cfg.fresh_reg cfg in
  let bad = Cfg.instr cfg (Instr.Mov (Cfg.fresh_reg cfg, Instr.Reg ghost)) in
  Cfg.set_block cfg { b1 with Block.instrs = b1.Block.instrs @ [ bad ] };
  let vs = Cfg_verify.check cfg in
  (match
     List.find_opt
       (function Cfg_verify.Undefined_use _ -> true | _ -> false)
       vs
   with
  | Some (Cfg_verify.Undefined_use { block; instr; reg; in_guard }) ->
    check Alcotest.int "locus block" 1 block;
    check Alcotest.(option int) "locus instr" (Some bad.Instr.id) instr;
    check Alcotest.int "locus reg" ghost reg;
    check Alcotest.bool "not a guard use" false in_guard
  | _ -> Alcotest.fail "expected Undefined_use");
  (* declaring the register a workload parameter tolerates the read *)
  check Alcotest.int "tolerated as parameter" 0
    (List.length (Cfg_verify.check ~params:(IntSet.singleton ghost) cfg));
  (* and undefined_regs surfaces exactly that register for baselines *)
  check Alcotest.bool "undefined_regs finds it" true
    (IntSet.mem ghost (Cfg_verify.undefined_regs cfg))

let test_over_budget () =
  let cfg = small_cfg () in
  let b1 = Cfg.block cfg 1 in
  let loads =
    List.init
      (Chf.Constraints.trips_limits.Chf.Constraints.max_load_store + 1)
      (fun k -> Cfg.instr cfg (Instr.Load (Cfg.fresh_reg cfg, Instr.Imm k, 0)))
  in
  Cfg.set_block cfg { b1 with Block.instrs = b1.Block.instrs @ loads };
  check Alcotest.int "no budget check without limits" 0
    (List.length (Cfg_verify.check cfg));
  let vs = Cfg_verify.check ~limits:Chf.Constraints.trips_limits cfg in
  check Alcotest.bool "Over_budget reported" true
    (List.exists
       (function Cfg_verify.Over_budget { block = 1; _ } -> true | _ -> false)
       vs)

let test_check_exn_and_dot_dump () =
  let cfg = small_cfg () in
  cfg.Cfg.entry <- 99;
  (match Cfg_verify.check_exn cfg with
  | () -> Alcotest.fail "expected Invalid"
  | exception Cfg_verify.Invalid (name, vs) ->
    check Alcotest.string "names the cfg" "small" name;
    check Alcotest.bool "carries violations" true (vs <> []));
  let cfg = small_cfg () in
  let b1 = Cfg.block cfg 1 in
  Cfg.set_block cfg { b1 with Block.exits = [] };
  let vs = Cfg_verify.check cfg in
  let dot = Cfg_verify.dot_dump cfg vs in
  check Alcotest.bool "dot highlights the locus" true
    (let has s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     has dot "fillcolor")

(* ---- property: generator CFGs are clean, transforms keep them clean -- *)

let reg1024 = IntSet.singleton Trips_ir.Machine.first_virtual_reg

let prop_random_cfgs_clean =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random CFGs satisfy the invariants" ~count:200
       Generators.random_cfg_gen (fun g ->
         let cfg = Generators.build_random_cfg g in
         Cfg_verify.check ~params:reg1024 cfg = []))

(* Split, unroll and peel applied to a lowered workload must preserve
   the structural invariants and the functional checksum. *)
let checksum_of ~registers cfg w =
  let memory = Workload.memory w in
  let r = Trips_sim.Func_sim.run ~registers ~memory cfg in
  r.Trips_sim.Func_sim.checksum

let transform_victims = [ "sieve"; "gzip_1"; "art_1" ]

let test_split_preserves_invariants () =
  List.iter
    (fun name ->
      let w = Option.get (Micro.by_name name) in
      let cfg, registers = Pipeline.lower_workload w in
      let params =
        List.fold_left (fun s (r, _) -> IntSet.add r s) IntSet.empty registers
      in
      let before = checksum_of ~registers cfg w in
      let split_any = ref false in
      List.iter
        (fun b ->
          match Trips_transform.Split.split_block cfg b.Block.id with
          | Some _ -> split_any := true
          | None -> ())
        (Cfg.blocks cfg);
      check Alcotest.bool (name ^ ": something split") true !split_any;
      check Alcotest.int
        (name ^ ": invariants preserved by split")
        0
        (List.length (Cfg_verify.check ~params cfg));
      check Alcotest.int (name ^ ": checksum preserved") before (checksum_of ~registers cfg w))
    transform_victims

let test_loop_transforms_preserve_invariants () =
  List.iter
    (fun name ->
      let w = Option.get (Micro.by_name name) in
      let cfg, registers = Pipeline.lower_workload w in
      let params =
        List.fold_left (fun s (r, _) -> IntSet.add r s) IntSet.empty registers
      in
      let before = checksum_of ~registers cfg w in
      let loops = Trips_analysis.Loops.compute cfg in
      (match Trips_analysis.Loops.all_loops loops with
      | [] -> ()
      | l :: _ ->
        ignore (Trips_transform.Cfg_loop.peel cfg l ~count:1);
        let loops = Trips_analysis.Loops.compute cfg in
        (match Trips_analysis.Loops.all_loops loops with
        | [] -> ()
        | l :: _ -> ignore (Trips_transform.Cfg_loop.unroll cfg l ~factor:2)));
      check Alcotest.int
        (name ^ ": invariants preserved by peel+unroll")
        0
        (List.length (Cfg_verify.check ~params cfg));
      check Alcotest.int (name ^ ": checksum preserved") before (checksum_of ~registers cfg w))
    transform_victims

(* formation under every ordering passes the per-phase differential
   checker on random programs *)
let prop_diff_check_random_programs =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"per-phase checks pass on random programs" ~count:12
       ~print:Generators.print_workload Generators.random_program_gen
       (fun w ->
         let cfg, registers = Pipeline.lower_workload w in
         let profile, _ = Pipeline.profile_workload w in
         match
           Diff_check.run ~registers
             ~fresh_memory:(fun () -> Workload.memory w)
             Chf.Phases.Iupo_merged cfg profile
         with
         | Ok _ -> true
         | Error f ->
           QCheck2.Test.fail_reportf "%s: %a" w.Workload.name
             Diff_check.pp_failure f))

let test_diff_check_all_orderings_sieve () =
  let w = Option.get (Micro.by_name "sieve") in
  List.iter
    (fun ordering ->
      let cfg, registers = Pipeline.lower_workload w in
      let profile, _ = Pipeline.profile_workload w in
      match
        Diff_check.run ~registers
          ~fresh_memory:(fun () -> Workload.memory w)
          ordering cfg profile
      with
      | Ok _ -> ()
      | Error f ->
        Alcotest.failf "sieve/%s: %a" (Chf.Phases.name ordering)
          Diff_check.pp_failure f)
    Chf.Phases.all

(* ---- chaos: every fault class must be detected ------------------------ *)

let test_chaos_all_faults_detected () =
  let w = Option.get (Micro.by_name "sieve") in
  let c = Pipeline.compile ~backend:false Chf.Phases.Iupo_merged w in
  List.iter
    (fun seed ->
      let outcomes =
        Chaos.run_suite ~seed ~registers:c.Pipeline.registers
          ~fresh_memory:(fun () -> Workload.memory w)
          c.Pipeline.cfg
      in
      check Alcotest.int
        (Fmt.str "all fault classes injected (seed %d)" seed)
        (List.length Chaos.all_faults) (List.length outcomes);
      List.iter
        (fun o ->
          check Alcotest.bool
            (Fmt.str "%s detected (seed %d)" (Chaos.fault_name o.Chaos.o_fault) seed)
            true
            (o.Chaos.o_detection <> None))
        outcomes)
    [ 7; 42; 1234 ]

(* Every chaos class must not only be detected but produce a *distinct*
   structured failure: the triage fingerprint (verifier constructor,
   Over_budget refined by axes, or the detection kind) names the fault
   class that caused it.  Classes whose detection depends on the random
   injection site (a corrupted value may diverge or crash) list every
   admissible fingerprint; the single-fingerprint classes must be
   pairwise distinct. *)
let chaos_fingerprint (o : Chaos.outcome) =
  match o.Chaos.o_detection with
  | None -> "undetected"
  | Some (Chaos.Structural v) ->
    "structural:" ^ Trips_fuzz.Triage.of_violations [ v ]
  | Some (Chaos.Behavioral _) -> "behavioral:diverged"
  | Some (Chaos.Crashed _) -> "crashed"
  | Some (Chaos.Hung { reason = Trips_obs.Watchdog.Fuel _; _ }) -> "hung:fuel"
  | Some (Chaos.Hung { reason = Trips_obs.Watchdog.Deadline _; _ }) ->
    "hung:deadline"

let test_chaos_classes_distinct () =
  let w = Option.get (Micro.by_name "sieve") in
  let c = Pipeline.compile ~backend:false Chf.Phases.Iupo_merged w in
  let outcomes =
    Chaos.run_suite ~seed:42 ~registers:c.Pipeline.registers
      ~fresh_memory:(fun () -> Workload.memory w)
      c.Pipeline.cfg
  in
  check Alcotest.int "every fault class reachable"
    (List.length Chaos.all_faults) (List.length outcomes);
  let expected =
    [
      (Chaos.Drop_entry, [ "structural:missing-entry" ]);
      (Chaos.Dangle_edge, [ "structural:dangling-edge" ]);
      (Chaos.Strip_exits, [ "structural:no-exit" ]);
      (Chaos.Double_unguarded, [ "structural:multi-unguarded" ]);
      (Chaos.Clone_instr_id, [ "structural:dup-instr-id" ]);
      ( Chaos.Undefined_use,
        [ "structural:undefined-use"; "structural:undefined-guard" ] );
      (Chaos.Corrupt_predicate, [ "behavioral:diverged"; "crashed" ]);
      (Chaos.Oversubscribe_loads, [ "structural:over-budget[ls]" ]);
      (Chaos.Orphan_block, [ "structural:unreachable" ]);
      (Chaos.Corrupt_arithmetic, [ "behavioral:diverged"; "crashed" ]);
      (Chaos.Stall_spin, [ "hung:fuel"; "hung:deadline" ]);
      (Chaos.Alloc_spike, [ "structural:over-budget[instrs]" ]);
    ]
  in
  List.iter
    (fun (o : Chaos.outcome) ->
      let fp = chaos_fingerprint o in
      let allowed = List.assoc o.Chaos.o_fault expected in
      check Alcotest.bool
        (Fmt.str "%s -> %s (allowed: %s)"
           (Chaos.fault_name o.Chaos.o_fault)
           fp
           (String.concat " | " allowed))
        true (List.mem fp allowed))
    outcomes;
  let deterministic =
    List.filter_map
      (fun (_, fps) -> match fps with [ fp ] -> Some fp | _ -> None)
      expected
  in
  check Alcotest.int "single-fingerprint classes pairwise distinct"
    (List.length deterministic)
    (List.length (List.sort_uniq compare deterministic))

let test_chaos_deterministic () =
  let w = Option.get (Micro.by_name "vadd") in
  let c = Pipeline.compile ~backend:false Chf.Phases.Iupo_merged w in
  let run () =
    Chaos.run_suite ~seed:99 ~registers:c.Pipeline.registers
      ~fresh_memory:(fun () -> Workload.memory w)
      c.Pipeline.cfg
    |> List.map (fun o -> (Chaos.fault_name o.Chaos.o_fault, o.Chaos.o_note))
  in
  check
    Alcotest.(list (pair string string))
    "same seed, same injections" (run ()) (run ())

(* ---- sweep resilience ------------------------------------------------- *)

(* A workload binding a parameter the program does not declare fails in
   lowering; the sweep must complete and report it, not abort. *)
let poisoned () =
  let w = Option.get (Micro.by_name "vadd") in
  { w with Workload.name = "poisoned"; args = [ ("no_such_param", 1) ] }

let test_sweep_survives_poisoned_workload () =
  let good = Option.get (Micro.by_name "sieve") in
  let outcome = Table1.run ~workloads:[ poisoned (); good ] () in
  check Alcotest.int "good row survives" 1 (List.length outcome.Table1.rows);
  check Alcotest.bool "failure recorded" true (outcome.Table1.failures <> []);
  let f = List.hd outcome.Table1.failures in
  check Alcotest.string "names the workload" "poisoned" f.Pipeline.fail_workload;
  check Alcotest.string "names the phase" "lower" f.Pipeline.fail_phase;
  (* rendering the partial table must not raise *)
  ignore (Fmt.str "%a" Table1.render outcome)

let test_compile_checked_poisoned () =
  match Pipeline.compile_checked ~backend:false Chf.Phases.Iupo_merged (poisoned ()) with
  | Ok _ -> Alcotest.fail "expected a failure report"
  | Error f ->
    check Alcotest.string "workload" "poisoned" f.Pipeline.fail_workload;
    check Alcotest.string "phase" "lower" f.Pipeline.fail_phase;
    check Alcotest.bool "reason mentions the parameter" true
      (let s = f.Pipeline.fail_reason in
       let n = String.length "no_such_param" in
       let rec go i =
         i + n <= String.length s
         && (String.sub s i n = "no_such_param" || go (i + 1))
       in
       go 0)

let test_verify_against_structured_payload () =
  let w = Option.get (Micro.by_name "sieve") in
  let bb = Pipeline.compile ~backend:false Chf.Phases.Basic_blocks w in
  let baseline = Pipeline.run_functional bb in
  let c = Pipeline.compile ~backend:false Chf.Phases.Iupo_merged w in
  (* corrupt one store's value; verify_against must name the workload and
     ordering in its payload *)
  let cfg = c.Pipeline.cfg in
  Cfg.iter_blocks
    (fun b ->
      let instrs =
        List.map
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Store (_, a, off) ->
              { i with Instr.op = Instr.Store (Instr.Imm 4242, a, off) }
            | _ -> i)
          b.Block.instrs
      in
      Cfg.set_block cfg { b with Block.instrs })
    cfg;
  match Pipeline.verify_against ~baseline c with
  | _ -> Alcotest.fail "expected Miscompiled"
  | exception Pipeline.Miscompiled d ->
    check Alcotest.string "payload names workload" "sieve" d.Pipeline.div_workload;
    check Alcotest.bool "payload names ordering" true
      (d.Pipeline.div_ordering = Chf.Phases.Iupo_merged);
    check Alcotest.bool "checksums differ" true (d.Pipeline.div_got <> d.Pipeline.div_expected)

let suite =
  ( "verify",
    [
      Alcotest.test_case "clean CFG" `Quick test_clean_cfg;
      Alcotest.test_case "missing entry" `Quick test_missing_entry;
      Alcotest.test_case "no exit" `Quick test_no_exit;
      Alcotest.test_case "multiple unguarded exits" `Quick test_multiple_unguarded;
      Alcotest.test_case "dangling edge" `Quick test_dangling_edge;
      Alcotest.test_case "unreachable block" `Quick test_unreachable_block;
      Alcotest.test_case "duplicate instruction id" `Quick test_duplicate_instr_id;
      Alcotest.test_case "undefined use + params" `Quick test_undefined_use_and_params;
      Alcotest.test_case "over budget" `Quick test_over_budget;
      Alcotest.test_case "check_exn and dot dump" `Quick test_check_exn_and_dot_dump;
      prop_random_cfgs_clean;
      Alcotest.test_case "split preserves invariants" `Quick
        test_split_preserves_invariants;
      Alcotest.test_case "loop transforms preserve invariants" `Quick
        test_loop_transforms_preserve_invariants;
      prop_diff_check_random_programs;
      Alcotest.test_case "diff check, all orderings" `Slow
        test_diff_check_all_orderings_sieve;
      Alcotest.test_case "chaos: all faults detected" `Slow
        test_chaos_all_faults_detected;
      Alcotest.test_case "chaos: deterministic" `Quick test_chaos_deterministic;
      Alcotest.test_case "chaos: classes distinct" `Slow
        test_chaos_classes_distinct;
      Alcotest.test_case "sweep survives poisoned workload" `Quick
        test_sweep_survives_poisoned_workload;
      Alcotest.test_case "compile_checked reports poisoned" `Quick
        test_compile_checked_poisoned;
      Alcotest.test_case "verify_against structured payload" `Quick
        test_verify_against_structured_payload;
    ] )
