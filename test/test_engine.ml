(* The staged sweep engine: domain-pool determinism (jobs-invariant
   output), prefix-cache transparency (cache-on ≡ cache-off), exception
   isolation per slot, and fault containment — a chaos-corrupted cell in
   a parallel sweep must produce one structured failure without
   disturbing its sibling rows. *)

open Trips_workloads
open Trips_harness

let check = Alcotest.check

(* ---- Engine.map -------------------------------------------------------- *)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected cell error: %s" (Printexc.to_string e)

let test_map_order () =
  let xs = List.init 37 Fun.id in
  let expect = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      let got = List.map ok_or_fail (Engine.map ~jobs (fun x -> x * x) xs) in
      check Alcotest.(list int) (Fmt.str "jobs=%d preserves order" jobs) expect
        got)
    [ 1; 2; 4; 64 (* more domains than items *) ]

let test_map_exception_isolation () =
  let f x = if x mod 3 = 1 then failwith (string_of_int x) else x * 2 in
  let results = Engine.map ~jobs:4 f (List.init 10 Fun.id) in
  List.iteri
    (fun i r ->
      match r with
      | Ok v ->
        check Alcotest.bool "slot not poisoned" true (i mod 3 <> 1);
        check Alcotest.int "slot value" (i * 2) v
      | Error (Failure m) ->
        check Alcotest.bool "failing slot" true (i mod 3 = 1);
        check Alcotest.string "slot's own exception" (string_of_int i) m
      | Error e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e))
    results

let test_map_empty_and_defaults () =
  check Alcotest.int "empty input" 0 (List.length (Engine.map ~jobs:8 Fun.id []));
  check Alcotest.bool "default_jobs >= 1" true (Engine.default_jobs () >= 1)

(* Regression: a Domain.spawn failure mid-pool used to leak the already-
   spawned helper domains (they were never joined).  With the injected
   spawn limit, map must still complete every slot on the calling domain
   plus the helpers that did start, join them all, and count the
   degradation in the metrics registry. *)
let test_map_degrades_on_spawn_failure () =
  Trips_obs.Metrics.reset ();
  Engine.spawn_limit_for_tests := Some 1;
  Fun.protect
    ~finally:(fun () -> Engine.spawn_limit_for_tests := None)
    (fun () ->
      let xs = List.init 40 Fun.id in
      let expect = List.map (fun x -> x * 3) xs in
      let got = List.map ok_or_fail (Engine.map ~jobs:8 (fun x -> x * 3) xs) in
      check Alcotest.(list int) "all slots complete despite spawn failure"
        expect got);
  check Alcotest.int "degradation recorded" 1
    (Trips_obs.Metrics.counter_value
       (Trips_obs.Metrics.snapshot ())
       "engine.spawn_failures");
  (* and with the limit cleared, the full pool works again *)
  let got = List.map ok_or_fail (Engine.map ~jobs:4 succ (List.init 8 Fun.id)) in
  check Alcotest.(list int) "pool restored" (List.init 8 succ) got

(* ---- sweep determinism ------------------------------------------------- *)

(* cheap microbenchmarks only: these properties re-run full table sweeps *)
let pool = [ "sieve"; "vadd"; "gzip_1"; "matrix_1"; "bzip2_3"; "ammp_1" ]

let workloads_of names = List.filter_map Micro.by_name names

let render_table1 outcome = Fmt.str "%a" Table1.render outcome

let prop_jobs_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"table1 rows are byte-identical across -j"
       ~count:4
       QCheck2.Gen.(
         pair
           (map
              (fun bits ->
                match
                  List.filteri (fun i _ -> List.nth bits (i mod List.length bits))
                    pool
                with
                | [] -> [ "sieve" ]
                | names -> names)
              (list_size (return 6) bool))
           (int_range 2 4))
       (fun (names, jobs) ->
         let ws = workloads_of names in
         let seq = render_table1 (Table1.run ~jobs:1 ~workloads:ws ()) in
         let par = render_table1 (Table1.run ~jobs ~workloads:ws ()) in
         if seq <> par then
           QCheck2.Test.fail_reportf "-j%d diverged on {%s}" jobs
             (String.concat ", " names);
         true))

let prop_cache_transparent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"prefix cache never changes table1 output"
       ~count:3
       QCheck2.Gen.(
         map
           (fun k -> List.filteri (fun i _ -> i <= k) pool)
           (int_range 1 (List.length pool - 1)))
       (fun names ->
         let ws = workloads_of names in
         let cached = Stage.create () in
         let hot = render_table1 (Table1.run ~cache:cached ~workloads:ws ()) in
         let cold =
           render_table1 (Table1.run ~cache:(Stage.disabled ()) ~workloads:ws ())
         in
         let s = Stage.stats cached in
         if s.Stage.cache_hits = 0 then
           QCheck2.Test.fail_reportf "expected cache hits on {%s}"
             (String.concat ", " names);
         if hot <> cold then
           QCheck2.Test.fail_reportf "cache changed output on {%s}"
             (String.concat ", " names);
         true))

(* ---- speculative jobs --------------------------------------------------- *)

(* Cancellation is checked at dequeue time: on a zero-worker pool nothing
   runs until await helps, so a spec cancelled before its await never
   executes, while an uncancelled one runs on the awaiting caller. *)
let test_spec_cancel_and_await () =
  let pool = Engine.Pool.create ~workers:0 () in
  let ran = Atomic.make 0 in
  let s1 = Engine.Pool.submit_spec pool (fun () -> Atomic.incr ran) in
  let s2 = Engine.Pool.submit_spec pool (fun () -> Atomic.incr ran) in
  Engine.Pool.cancel_spec s2;
  Engine.Pool.await_spec pool s1;
  Engine.Pool.await_spec pool s2;
  check Alcotest.int "cancelled-before-start spec never ran" 1
    (Atomic.get ran);
  Engine.Pool.shutdown pool

(* ---- fault containment in a parallel sweep ----------------------------- *)

(* A sweep whose cell corrupts its own compiled CFG (via the chaos
   injector) for exactly one victim workload, then checksum-verifies: the
   corruption must surface as one structured failure in the victim's
   slot, with every sibling row complete — under both -j 1 and -j 4. *)
let chaos_spec victim : (string, int) Sweep.spec =
  {
    Sweep.columns = [ "clean"; "chaos" ];
    baseline_backend = false;
    baseline_cycles = false;
    cell =
      (fun ~cache baseline w col ->
        match Pipeline.compile_checked ?cache ~backend:false Chf.Phases.Iupo_merged w with
        | Error f -> Error f
        | Ok c -> (
          let verify c =
            match
              Pipeline.verify_against ~baseline:baseline.Sweep.base_functional c
            with
            | r -> Ok r.Trips_sim.Func_sim.blocks_executed
            | exception e ->
              Error
                (Pipeline.failure_of_exn ~workload:w
                   ~ordering:(Some Chf.Phases.Iupo_merged) e)
          in
          if col = "chaos" && w.Workload.name = victim then begin
            (* draw injection sites like Chaos.run_suite until one is
               actually observable (a dead stripped block would pass) *)
            let rng = Random.State.make [| 1234 |] in
            let rec attempt k =
              if k = 0 then Alcotest.fail "no chaos injection diverged"
              else
                match
                  Trips_verify.Chaos.inject rng Trips_verify.Chaos.Strip_exits
                    c.Pipeline.cfg
                with
                | None -> Alcotest.fail "chaos injector found no site"
                | Some inj -> (
                  match verify { c with Pipeline.cfg = inj.Trips_verify.Chaos.cfg } with
                  | Ok _ -> attempt (k - 1)
                  | Error f -> Error f)
            in
            attempt 8
          end
          else verify c));
  }

let test_parallel_chaos_containment () =
  let victim = "vadd" in
  let ws = workloads_of [ "sieve"; victim; "gzip_1" ] in
  let outcomes =
    List.map
      (fun jobs -> Sweep.run ~cache:(Stage.create ()) ~jobs (chaos_spec victim) ws)
      [ 1; 4 ]
  in
  List.iter
    (fun (o : int Sweep.outcome) ->
      check Alcotest.int "every row survives" (List.length ws)
        (List.length o.Sweep.rows);
      check Alcotest.int "exactly one structured failure" 1
        (List.length o.Sweep.failures);
      let f = List.hd o.Sweep.failures in
      check Alcotest.string "failure names the victim" victim
        f.Pipeline.fail_workload;
      List.iter
        (fun (r : int Sweep.row) ->
          let expected_cells =
            if r.Sweep.row_workload = victim then 1 else 2
          in
          check Alcotest.int
            (Fmt.str "cells of %s intact" r.Sweep.row_workload)
            expected_cells
            (List.length r.Sweep.row_cells))
        o.Sweep.rows)
    outcomes;
  let project (o : int Sweep.outcome) =
    ( List.map (fun r -> (r.Sweep.row_workload, r.Sweep.row_cells)) o.Sweep.rows,
      List.map (Fmt.str "%a" Pipeline.pp_failure) o.Sweep.failures )
  in
  match outcomes with
  | [ seq; par ] ->
    check Alcotest.bool "parallel outcome equals sequential" true
      (project seq = project par)
  | _ -> assert false

let suite =
  ( "engine",
    [
      Alcotest.test_case "map preserves input order" `Quick test_map_order;
      Alcotest.test_case "map isolates exceptions per slot" `Quick
        test_map_exception_isolation;
      Alcotest.test_case "map edge cases" `Quick test_map_empty_and_defaults;
      Alcotest.test_case "map degrades on spawn failure" `Quick
        test_map_degrades_on_spawn_failure;
      prop_jobs_invariant;
      prop_cache_transparent;
      Alcotest.test_case "spec jobs: cancel before start, await joins" `Quick
        test_spec_cancel_and_await;
      Alcotest.test_case "parallel sweep contains a chaos-corrupted cell"
        `Quick test_parallel_chaos_containment;
    ] )
