(* End-to-end integration tests: every microbenchmark under every phase
   ordering and policy must produce the basic-block baseline's functional
   checksum, respect the structural constraints, and run to completion
   under the cycle-level model.  Random mini-language programs are pushed
   through the full pipeline as the strongest property. *)

open Trips_workloads
open Trips_harness

let check = Alcotest.check

let orderings = Chf.Phases.all

let policies =
  [
    ("bf", Chf.Policy.edge_default);
    ( "df",
      {
        Chf.Policy.edge_default with
        Chf.Policy.heuristic = Chf.Policy.Depth_first { min_merge_prob = 0.12 };
      } );
    ( "vliw",
      {
        Chf.Policy.edge_default with
        Chf.Policy.heuristic = Chf.Policy.Vliw Chf.Policy.default_vliw;
      } );
  ]

(* every workload x ordering: semantics + constraints (breadth-first) *)
let test_all_micro_all_orderings () =
  List.iter
    (fun w ->
      let baseline = Generators.baseline_of w in
      List.iter
        (fun ordering ->
          let c = Pipeline.compile ~backend:true ordering w in
          let r = Pipeline.run_functional c in
          check Alcotest.int
            (Fmt.str "%s/%s checksum" w.Workload.name (Chf.Phases.name ordering))
            baseline.Trips_sim.Func_sim.checksum r.Trips_sim.Func_sim.checksum)
        orderings)
    Micro.all

(* every policy on the policy-sensitive kernels, through the cycle model *)
let test_policies_on_sensitive_kernels () =
  List.iter
    (fun name ->
      let w = Option.get (Micro.by_name name) in
      let baseline = Generators.baseline_of w in
      List.iter
        (fun (pname, config) ->
          let c = Pipeline.compile ~config ~backend:true Chf.Phases.Iupo_merged w in
          let r = Pipeline.run_functional c in
          check Alcotest.int
            (Fmt.str "%s/%s checksum" name pname)
            baseline.Trips_sim.Func_sim.checksum r.Trips_sim.Func_sim.checksum;
          let t = Pipeline.run_cycles c in
          check Alcotest.bool
            (Fmt.str "%s/%s cycle sim terminates" name pname)
            true
            (t.Trips_sim.Cycle_sim.cycles > 0))
        policies)
    [ "bzip2_3"; "parser_1"; "gzip_1"; "art_3"; "ammp_1" ]

(* SPEC-like programs through formation (functional path of Table 3) *)
let test_spec_like_formation () =
  List.iter
    (fun w ->
      let baseline = Generators.baseline_of w in
      let c = Pipeline.compile ~backend:false Chf.Phases.Iupo_merged w in
      let r = Pipeline.run_functional c in
      check Alcotest.int
        (w.Workload.name ^ " checksum")
        baseline.Trips_sim.Func_sim.checksum r.Trips_sim.Func_sim.checksum;
      check Alcotest.bool
        (w.Workload.name ^ " fewer blocks executed")
        true
        (r.Trips_sim.Func_sim.blocks_executed
        <= baseline.Trips_sim.Func_sim.blocks_executed))
    Spec_like.all

(* the strongest property: random programs, random orderings, full
   pipeline with back end, strict exit checking throughout *)
let random_full_pipeline =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random programs survive the full pipeline"
       ~count:40
       ~print:(fun (w, _) -> Generators.print_workload w)
       QCheck2.Gen.(pair Generators.random_program_gen (int_bound 4))
       (fun (w, ord_idx) ->
         let ordering = List.nth orderings ord_idx in
         let baseline = Generators.baseline_of w in
         let c = Pipeline.compile ~backend:true ordering w in
         let r = Pipeline.run_functional c in
         r.Trips_sim.Func_sim.checksum = baseline.Trips_sim.Func_sim.checksum))

(* experiment harness plumbing *)
let test_table1_row_consistency () =
  let w = Option.get (Micro.by_name "gzip_1") in
  let outcome = Table1.run ~workloads:[ w ] () in
  check Alcotest.int "no failures" 0 (List.length outcome.Table1.failures);
  match outcome.Table1.rows with
  | [ row ] ->
    check Alcotest.int "four cells" 4 (List.length row.Table1.cells);
    check Alcotest.bool "baseline positive" true (row.Table1.bb_cycles > 0);
    List.iter
      (fun (c : Table1.cell) ->
        let expected =
          Stats.percent_improvement ~base:row.Table1.bb_cycles ~v:c.Table1.cycles
        in
        check (Alcotest.float 0.001) "improvement consistent" expected
          c.Table1.improvement)
      row.Table1.cells
  | _ -> Alcotest.fail "expected one row"

let test_figure7_regression_positive () =
  let outcome =
    Table1.run
      ~workloads:(List.filter_map Micro.by_name [ "gzip_1"; "sieve"; "vadd"; "art_1" ])
      ()
  in
  let points = Figure7.points_of_table1 outcome.Table1.rows in
  check Alcotest.int "4 workloads x 4 configs" 16 (List.length points);
  let reg = Figure7.regression points in
  check Alcotest.bool "positive correlation" true (reg.Stats.slope > 0.0)

let test_stats_regression () =
  let pts = [ (1.0, 2.0); (2.0, 4.0); (3.0, 6.0) ] in
  let r = Stats.linear_regression pts in
  check (Alcotest.float 1e-6) "slope" 2.0 r.Stats.slope;
  check (Alcotest.float 1e-6) "intercept" 0.0 r.Stats.intercept;
  check (Alcotest.float 1e-6) "r2" 1.0 r.Stats.r2;
  let noisy = [ (1.0, 2.0); (2.0, 3.5); (3.0, 6.5); (4.0, 7.9) ] in
  let rn = Stats.linear_regression noisy in
  check Alcotest.bool "noisy r2 in (0,1)" true (rn.Stats.r2 > 0.5 && rn.Stats.r2 <= 1.0)

let test_verification_catches_bad_compile () =
  (* corrupting a compiled CFG must trip the checksum verifier *)
  let w = Option.get (Micro.by_name "sieve") in
  let bb = Pipeline.compile ~backend:false Chf.Phases.Basic_blocks w in
  let baseline = Pipeline.run_functional bb in
  let c = Pipeline.compile ~backend:false Chf.Phases.Iupo_merged w in
  (* corrupt every store's value so the hot path is definitely hit *)
  let cfg = c.Pipeline.cfg in
  let corrupted = ref false in
  Trips_ir.Cfg.iter_blocks
    (fun b ->
      let instrs =
        List.map
          (fun (i : Trips_ir.Instr.t) ->
            match i.Trips_ir.Instr.op with
            | Trips_ir.Instr.Store (_, a, off) ->
              corrupted := true;
              {
                i with
                Trips_ir.Instr.op =
                  Trips_ir.Instr.Store (Trips_ir.Instr.Imm 12345, a, off);
              }
            | _ -> i)
          b.Trips_ir.Block.instrs
      in
      Trips_ir.Cfg.set_block cfg { b with Trips_ir.Block.instrs })
    cfg;
  check Alcotest.bool "corruption detected" true
    (!corrupted
    &&
    try
      ignore (Pipeline.verify_against ~baseline c);
      false
    with Pipeline.Miscompiled _ -> true)

let suite =
  ( "integration",
    [
      Alcotest.test_case "all micro x all orderings" `Slow
        test_all_micro_all_orderings;
      Alcotest.test_case "policies on sensitive kernels" `Slow
        test_policies_on_sensitive_kernels;
      Alcotest.test_case "SPEC-like formation" `Slow test_spec_like_formation;
      random_full_pipeline;
      Alcotest.test_case "table1 consistency" `Quick test_table1_row_consistency;
      Alcotest.test_case "figure7 regression" `Quick test_figure7_regression_positive;
      Alcotest.test_case "stats regression" `Quick test_stats_regression;
      Alcotest.test_case "verifier catches corruption" `Quick
        test_verification_catches_bad_compile;
    ] )
