(* Observability subsystem tests: trace determinism across --jobs, stable
   JSON rendering, the metrics registry, and the formation decision log —
   including the retry-pool contract the trace exposed (structural
   failures are dropped, never retried) and rollback completeness after
   any failed merge attempt. *)

open Trips_ir
open Trips_obs

let check = Alcotest.check

(* ---- trace primitives -------------------------------------------------- *)

let test_trace_json_stable () =
  let ev =
    {
      Trace.cell = 3;
      seq = 7;
      kind = "merge-attempt";
      fields =
        [
          ("seed", Trace.Int 4);
          ("prob", Trace.Float 0.25);
          ("classify", Trace.Str "simple");
          ("ok", Trace.Bool true);
          ("msg", Trace.Str "quote\" and \\slash");
        ];
    }
  in
  check Alcotest.string "field order and escaping preserved"
    "{\"cell\":3,\"seq\":7,\"kind\":\"merge-attempt\",\"seed\":4,\"prob\":0.25,\
     \"classify\":\"simple\",\"ok\":true,\"msg\":\"quote\\\" and \\\\slash\"}"
    (Trace.to_json ev)

let test_trace_cell_tagging () =
  let _ = Trace.stop () in
  Trace.start ();
  Trace.record "a" [];
  Trace.with_cell 5 (fun () ->
      Trace.record "b" [];
      Trace.record "c" []);
  Trace.record "d" [];
  let evs = Trace.stop () in
  check
    Alcotest.(list (pair int (pair int string)))
    "sorted (cell, seq) stream"
    [ (-1, (0, "a")); (-1, (1, "d")); (5, (0, "b")); (5, (1, "c")) ]
    (List.map (fun e -> (e.Trace.cell, (e.Trace.seq, e.Trace.kind))) evs);
  (* recording after stop is a no-op *)
  Trace.record "late" [];
  check Alcotest.int "nothing recorded while off" 0 (List.length (Trace.stop ()))

let test_metrics_registry () =
  Metrics.reset ();
  Metrics.incr "b.counter";
  Metrics.incr ~by:4 "a.counter";
  Metrics.incr ~by:(-1) "a.counter";
  Metrics.observe "lat" 2.0;
  Metrics.observe "lat" 6.0;
  let s = Metrics.snapshot () in
  check Alcotest.(list (pair string int)) "counters sorted by name"
    [ ("a.counter", 3); ("b.counter", 1) ]
    s.Metrics.counters;
  check Alcotest.int "absent counter reads 0" 0
    (Metrics.counter_value s "nope");
  (match s.Metrics.histograms with
  | [ ("lat", h) ] ->
    check Alcotest.int "histo count" 2 h.Metrics.h_count;
    check (Alcotest.float 1e-9) "histo sum" 8.0 h.Metrics.h_sum;
    check (Alcotest.float 1e-9) "histo min" 2.0 h.Metrics.h_min;
    check (Alcotest.float 1e-9) "histo max" 6.0 h.Metrics.h_max
  | _ -> Alcotest.fail "expected exactly the lat histogram");
  check Alcotest.string "json is sorted and stable"
    "{\"counters\":{\"a.counter\":3,\"b.counter\":1},\"histograms\":{\"lat\":\
     {\"count\":2,\"sum\":8,\"min\":2,\"max\":6}}}"
    (Metrics.to_json s);
  Metrics.reset ();
  check Alcotest.int "reset drops counters" 0
    (List.length (Metrics.snapshot ()).Metrics.counters)

(* ---- formation decision log -------------------------------------------- *)

(* Hand-built three-block loop: the seed b0 branches to the loop body b1
   (back edge to b0) and to the exit block b2. *)
let loop_cfg () =
  let cfg = Cfg.create ~name:"obs-loop" () in
  for _ = 0 to 2 do
    ignore (Cfg.fresh_block_id cfg)
  done;
  let g r sense = Some { Instr.greg = r; sense } in
  Cfg.set_block cfg
    (Block.make 0
       [
         Cfg.instr cfg (Instr.Binop (Opcode.Add, 1, Instr.Reg 1, Instr.Imm 1));
         Cfg.instr cfg (Instr.Cmp (Opcode.Lt, 2, Instr.Reg 1, Instr.Imm 3));
       ]
       [
         { Block.eguard = g 2 true; target = Block.Goto 1 };
         { Block.eguard = g 2 false; target = Block.Goto 2 };
       ]);
  Cfg.set_block cfg
    (Block.make 1
       [ Cfg.instr cfg (Instr.Mov (3, Instr.Imm 1)) ]
       [ { Block.eguard = None; target = Block.Goto 0 } ]);
  Cfg.set_block cfg
    (Block.make 2
       [ Cfg.instr cfg (Instr.Mov (4, Instr.Imm 7)) ]
       [ { Block.eguard = None; target = Block.Ret None } ]);
  cfg.Cfg.entry <- 0;
  Cfg.validate cfg;
  cfg

let profile_of cfg =
  let memory = Array.make 8 0 in
  let _, profile =
    Trips_sim.Func_sim.run_profiled ~registers:[ (1, 0) ] ~memory cfg
  in
  profile

let with_chaos hook f =
  Chf.Formation.chaos_combine_failure := Some hook;
  Fun.protect
    ~finally:(fun () -> Chf.Formation.chaos_combine_failure := None)
    f

(* Satellite 1: a candidate whose combine fails structurally must be
   dropped, not parked in the size-retry pool — under the old behavior it
   was retried after the next successful merge, doubling the structural
   failure (and, before the budget, looping).  The trace pins it down:
   exactly one structural event for the poisoned candidate. *)
let test_structural_failure_not_retried () =
  let cfg = loop_cfg () in
  let profile = profile_of cfg in
  let st = Chf.Formation.make Chf.Policy.edge_default cfg profile in
  let _ = Trace.stop () in
  Trace.start ();
  with_chaos
    (fun ~hb_id:_ ~s_id ~kind:_ -> s_id = 1)
    (fun () -> Chf.Formation.expand_block st 0);
  let evs = Trace.stop () in
  let attempts_on b1 =
    List.filter
      (fun e ->
        e.Trace.kind = "merge-attempt"
        && List.assoc "cand" e.Trace.fields = Trace.Int b1)
      evs
  in
  check Alcotest.int "poisoned candidate attempted exactly once" 1
    (List.length (attempts_on 1));
  (match attempts_on 1 with
  | [ e ] ->
    check Alcotest.bool "and the attempt is the structural reject" true
      (List.assoc "outcome" e.Trace.fields = Trace.Str "structural")
  | _ -> ());
  check Alcotest.int "one structural failure counted" 1
    st.Chf.Formation.stats.Chf.Formation.combine_failures;
  check Alcotest.int "the sibling merge still landed" 1
    st.Chf.Formation.stats.Chf.Formation.merges;
  check Alcotest.bool "failed candidate survives as its own block" true
    (Cfg.mem cfg 1)

(* Per-attempt outcomes and the stats counters must agree: the trace is
   the decision log, the counters its aggregate. *)
let test_trace_matches_stats () =
  let w = Option.get (Trips_workloads.Micro.by_name "sieve") in
  let profile, _ = Trips_harness.Pipeline.profile_workload w in
  let cfg, _ = Trips_harness.Pipeline.lower_workload w in
  Trips_opt.Optimizer.optimize_cfg cfg;
  let _ = Trace.stop () in
  Trace.start ();
  let stats = Chf.Formation.run Chf.Policy.edge_default cfg profile in
  let evs = Trace.stop () in
  let outcome_count o =
    List.length
      (List.filter
         (fun e ->
           e.Trace.kind = "merge-attempt"
           && List.assoc "outcome" e.Trace.fields = Trace.Str o)
         evs)
  in
  check Alcotest.int "success events = merges" stats.Chf.Formation.merges
    (outcome_count "success");
  check Alcotest.int "size events = size_rejections"
    stats.Chf.Formation.size_rejections (outcome_count "size");
  check Alcotest.int "structural events = combine_failures"
    stats.Chf.Formation.combine_failures (outcome_count "structural");
  check Alcotest.int "success+size+structural = attempts"
    stats.Chf.Formation.attempts
    (outcome_count "success" + outcome_count "size"
    + outcome_count "structural")

(* Tentpole acceptance: the full table-1 sweep records the same trace for
   every --jobs setting, and metrics aggregate identically. *)
let test_trace_jobs_invariant () =
  let ws =
    List.filter_map Trips_workloads.Micro.by_name [ "sieve"; "vadd"; "gzip_1" ]
  in
  let run jobs =
    Metrics.reset ();
    let _ = Trace.stop () in
    Trace.start ();
    ignore (Trips_harness.Table1.run ~cache:(Trips_harness.Stage.create ()) ~jobs ~workloads:ws ());
    let evs = Trace.stop () in
    let counters =
      (* drop timing-dependent histograms; counters are deterministic *)
      (Metrics.snapshot ()).Metrics.counters
      |> List.filter (fun (name, _) -> name <> "stage.cache.hit" && name <> "stage.cache.miss")
    in
    (List.map Trace.to_json evs, counters)
  in
  let evs1, counters1 = run 1 in
  let evs4, counters4 = run 4 in
  check Alcotest.bool "some events recorded" true (List.length evs1 > 0);
  check Alcotest.(list string) "trace identical across -j 1 / -j 4" evs1 evs4;
  check
    Alcotest.(list (pair string int))
    "deterministic counters identical across -j" counters1 counters4

(* Satellite 4: after ANY failure outcome the CFG must be bit-identical
   to its pre-attempt snapshot — blocks, entry, and the fresh-id
   counters (a leaked counter bump changes every later allocation).
   Random programs, every classifiable (seed, cand) pair, with
   chaos-injected structural failures on half the attempts and tight
   limits to provoke genuine size rejections on the rest. *)
let snapshot cfg =
  ( cfg.Cfg.entry,
    cfg.Cfg.next_block,
    cfg.Cfg.next_instr,
    cfg.Cfg.next_reg,
    List.map (Cfg.block cfg) (List.sort compare (Cfg.block_ids cfg)) )

let prop_failure_rolls_back =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"any failed merge attempt leaves the CFG bit-identical"
       ~count:25
       ~print:(fun (w, _) -> Generators.print_workload w)
       QCheck2.Gen.(pair Generators.random_program_gen (int_bound 1000))
       (fun (w, salt) ->
         let profile, _ = Trips_harness.Pipeline.profile_workload w in
         let cfg, _ = Trips_harness.Pipeline.lower_workload w in
         let tight =
           {
             Chf.Constraints.trips_limits with
             Chf.Constraints.max_instrs = 12;
           }
         in
         let config =
           { Chf.Policy.edge_default with Chf.Policy.limits = tight; slack = 0 }
         in
         let st = Chf.Formation.make config cfg profile in
         (* tolerate the lowered CFG's own parameter reads in the
            verifier, so only attempt-introduced damage is flagged *)
         let tolerated = Trips_verify.Cfg_verify.undefined_regs cfg in
         let failures = ref 0 in
         List.iter
           (fun hb_id ->
             if Cfg.mem cfg hb_id then
               List.iter
                 (fun s_id ->
                   match Chf.Formation.classify st ~hb_id ~s_id with
                   | None -> ()
                   | Some kind ->
                     let inject = (hb_id + s_id + salt) mod 2 = 0 in
                     let before = snapshot cfg in
                     let outcome =
                       with_chaos
                         (fun ~hb_id:_ ~s_id:_ ~kind:_ -> inject)
                         (fun () ->
                           Chf.Formation.merge_blocks st ~hb_id ~s_id ~kind)
                     in
                     (match outcome with
                     | Chf.Formation.Success _ -> ()
                     | Chf.Formation.Structural_failure _
                     | Chf.Formation.Size_rejected _ ->
                       incr failures;
                       if snapshot cfg <> before then
                         QCheck2.Test.fail_reportf
                           "CFG changed after failed merge %d <- %d" hb_id s_id;
                       if
                         Trips_verify.Cfg_verify.check ~allow_unreachable:true
                           ~params:tolerated cfg
                         <> []
                       then
                         QCheck2.Test.fail_reportf
                           "CFG un-verifiable after failed merge %d <- %d"
                           hb_id s_id))
                 (Block.distinct_successors (Cfg.block cfg hb_id)))
           (List.sort compare (Cfg.block_ids cfg));
         (* the generator must actually exercise the failure paths *)
         !failures > 0))

let suite =
  ( "obs",
    [
      Alcotest.test_case "trace json is stable" `Quick test_trace_json_stable;
      Alcotest.test_case "trace cell tagging" `Quick test_trace_cell_tagging;
      Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
      Alcotest.test_case "structural failure never retried" `Quick
        test_structural_failure_not_retried;
      Alcotest.test_case "trace agrees with stats" `Quick
        test_trace_matches_stats;
      Alcotest.test_case "trace invariant across --jobs" `Quick
        test_trace_jobs_invariant;
      prop_failure_rolls_back;
    ] )
