(* Observability subsystem tests: trace determinism across --jobs, stable
   JSON rendering, the metrics registry, and the formation decision log —
   including the retry-pool contract the trace exposed (structural
   failures are dropped, never retried) and rollback completeness after
   any failed merge attempt. *)

open Trips_ir
open Trips_obs

let check = Alcotest.check

(* ---- trace primitives -------------------------------------------------- *)

let test_trace_json_stable () =
  let ev =
    {
      Trace.cell = 3;
      seq = 7;
      kind = "merge-attempt";
      fields =
        [
          ("seed", Trace.Int 4);
          ("prob", Trace.Float 0.25);
          ("classify", Trace.Str "simple");
          ("ok", Trace.Bool true);
          ("msg", Trace.Str "quote\" and \\slash");
        ];
    }
  in
  check Alcotest.string "field order and escaping preserved"
    "{\"cell\":3,\"seq\":7,\"kind\":\"merge-attempt\",\"seed\":4,\"prob\":0.25,\
     \"classify\":\"simple\",\"ok\":true,\"msg\":\"quote\\\" and \\\\slash\"}"
    (Trace.to_json ev)

let test_trace_cell_tagging () =
  let _ = Trace.stop () in
  Trace.start ();
  Trace.record "a" [];
  Trace.with_cell 5 (fun () ->
      Trace.record "b" [];
      Trace.record "c" []);
  Trace.record "d" [];
  let evs = Trace.stop () in
  check
    Alcotest.(list (pair int (pair int string)))
    "sorted (cell, seq) stream"
    [ (-1, (0, "a")); (-1, (1, "d")); (5, (0, "b")); (5, (1, "c")) ]
    (List.map (fun e -> (e.Trace.cell, (e.Trace.seq, e.Trace.kind))) evs);
  (* recording after stop is a no-op *)
  Trace.record "late" [];
  check Alcotest.int "nothing recorded while off" 0 (List.length (Trace.stop ()))

(* Capture diverts raw events into a buffer instead of the live stream;
   replay re-records them at the replay point, where they pick up the
   *current* cell and sequence numbers — the mechanism that lets a
   speculative trial's trace land at its serve position byte-identically
   to a live run. *)
let test_trace_capture_replay () =
  let _ = Trace.stop () in
  Trace.start ();
  Trace.record "live-1" [ ("n", Trace.Int 1) ];
  let v, cap =
    Trace.capture (fun () ->
        Trace.record "diverted" [ ("n", Trace.Int 2) ];
        Trace.record "diverted" [ ("n", Trace.Int 3) ];
        17)
  in
  check Alcotest.int "capture returns the thunk's value" 17 v;
  Trace.record "live-2" [];
  Trace.replay cap;
  let evs = Trace.stop () in
  check
    Alcotest.(list (pair int string))
    "diverted events landed at the replay point with fresh seqs"
    [ (0, "live-1"); (1, "live-2"); (2, "diverted"); (3, "diverted") ]
    (List.map (fun e -> (e.Trace.seq, e.Trace.kind)) evs);
  (* nested capture restores the enclosing buffer *)
  Trace.start ();
  let (), outer =
    Trace.capture (fun () ->
        Trace.record "outer" [];
        let (), inner = Trace.capture (fun () -> Trace.record "inner" []) in
        Trace.replay inner;
        Trace.record "outer-after" [])
  in
  Trace.replay outer;
  check
    Alcotest.(list string)
    "nested capture nests into the enclosing buffer"
    [ "outer"; "inner"; "outer-after" ]
    (List.map (fun e -> e.Trace.kind) (Trace.stop ()))

(* Metrics capture: counter increments divert into a delta list (the
   registry is untouched) and apply lands them later; observe stays
   global either way. *)
let test_metrics_capture_apply () =
  Metrics.reset ();
  Metrics.incr "outside";
  let v, deltas =
    Metrics.capture (fun () ->
        Metrics.incr "inside";
        Metrics.incr ~by:2 "inside";
        Metrics.incr "other";
        5)
  in
  check Alcotest.int "capture returns the thunk's value" 5 v;
  let s = Metrics.snapshot () in
  check Alcotest.int "captured incr did not hit the registry" 0
    (Metrics.counter_value s "inside");
  check Alcotest.int "enclosing counters unaffected" 1
    (Metrics.counter_value s "outside");
  check
    Alcotest.(list (pair string int))
    "deltas are name-sorted totals"
    [ ("inside", 3); ("other", 1) ]
    deltas;
  Metrics.apply deltas;
  Metrics.apply deltas;
  let s = Metrics.snapshot () in
  check Alcotest.int "apply is additive" 6 (Metrics.counter_value s "inside");
  Metrics.reset ()

let test_metrics_registry () =
  Metrics.reset ();
  Metrics.incr "b.counter";
  Metrics.incr ~by:4 "a.counter";
  Metrics.incr ~by:(-1) "a.counter";
  Metrics.observe "lat" 2.0;
  Metrics.observe "lat" 6.0;
  let s = Metrics.snapshot () in
  check Alcotest.(list (pair string int)) "counters sorted by name"
    [ ("a.counter", 3); ("b.counter", 1) ]
    s.Metrics.counters;
  check Alcotest.int "absent counter reads 0" 0
    (Metrics.counter_value s "nope");
  (match s.Metrics.histograms with
  | [ ("lat", h) ] ->
    check Alcotest.int "histo count" 2 h.Metrics.h_count;
    check (Alcotest.float 1e-9) "histo sum" 8.0 h.Metrics.h_sum;
    check (Alcotest.float 1e-9) "histo min" 2.0 h.Metrics.h_min;
    check (Alcotest.float 1e-9) "histo max" 6.0 h.Metrics.h_max;
    check (Alcotest.float 1e-9) "histo p50" 2.0 h.Metrics.h_p50;
    check (Alcotest.float 1e-9) "histo p90" 6.0 h.Metrics.h_p90;
    check (Alcotest.float 1e-9) "histo p99" 6.0 h.Metrics.h_p99
  | _ -> Alcotest.fail "expected exactly the lat histogram");
  check Alcotest.string "json is sorted and stable"
    "{\"counters\":{\"a.counter\":3,\"b.counter\":1},\"gauges\":{},\
     \"histograms\":{\"lat\":\
     {\"count\":2,\"sum\":8,\"min\":2,\"max\":6,\"p50\":2,\"p90\":6,\"p99\":6}}}"
    (Metrics.to_json s);
  Metrics.reset ();
  check Alcotest.int "reset drops counters" 0
    (List.length (Metrics.snapshot ()).Metrics.counters)

(* Gauges: last value wins under set, add accumulates, render/json keep
   them between counters and histograms, sorted by name. *)
let test_metrics_gauges () =
  Metrics.reset ();
  Metrics.set_gauge "z.depth" 3.0;
  Metrics.set_gauge "z.depth" 1.0;
  Metrics.add_gauge "a.util" 0.25;
  Metrics.add_gauge "a.util" 0.5;
  let s = Metrics.snapshot () in
  check
    Alcotest.(list (pair string (float 1e-9)))
    "gauges sorted, set overwrites, add accumulates"
    [ ("a.util", 0.75); ("z.depth", 1.0) ]
    s.Metrics.gauges;
  check (Alcotest.float 1e-9) "gauge_value hit" 1.0
    (Metrics.gauge_value s "z.depth");
  check (Alcotest.float 1e-9) "gauge_value miss is 0" 0.0
    (Metrics.gauge_value s "nope");
  check Alcotest.string "gauges in json between counters and histograms"
    "{\"counters\":{},\"gauges\":{\"a.util\":0.75,\"z.depth\":1},\
     \"histograms\":{}}"
    (Metrics.to_json s);
  Metrics.reset ();
  check Alcotest.int "reset drops gauges" 0
    (List.length (Metrics.snapshot ()).Metrics.gauges)

(* ---- spans and the Chrome exporter ------------------------------------- *)

let span_events evs =
  List.filter (fun e -> e.Trace.kind = "span") evs

let test_span_api () =
  let _ = Trace.stop () in
  (* span mode off: the body runs, on_close fires, nothing is recorded *)
  Trace.start ();
  let closed = ref (-1.0) in
  let r = Trace.span ~on_close:(fun dt -> closed := dt) "work" (fun () -> 42) in
  check Alcotest.int "span returns the body's value" 42 r;
  check Alcotest.bool "on_close fired with a duration" true (!closed >= 0.0);
  check Alcotest.int "no span events outside span mode" 0
    (List.length (span_events (Trace.stop ())));
  (* on_close fires even when the body raises, and when tracing is off *)
  closed := -1.0;
  (try Trace.span ~on_close:(fun dt -> closed := dt) "boom" (fun () ->
       failwith "x")
   with Failure _ -> ());
  check Alcotest.bool "on_close fired on exception, tracing off" true
    (!closed >= 0.0);
  (* span mode on: a span event with name/ts/dur, extra fields appended,
     and point events stamped with ts *)
  Trace.start ~spans:true ();
  ignore
    (Trace.span
       ~fields:[ ("workload", Trace.Str "sieve") ]
       "stage.formation"
       (fun () -> Trace.record "point" [ ("x", Trace.Int 1) ]));
  let evs = Trace.stop () in
  (match span_events evs with
  | [ e ] ->
    check Alcotest.bool "span carries its name" true
      (List.assoc "name" e.Trace.fields = Trace.Str "stage.formation");
    let dur =
      match List.assoc "dur" e.Trace.fields with
      | Trace.Float d -> d
      | _ -> -1.0
    in
    check Alcotest.bool "span has a non-negative µs duration" true (dur >= 0.0);
    check Alcotest.bool "span keeps caller fields" true
      (List.assoc "workload" e.Trace.fields = Trace.Str "sieve")
  | l -> Alcotest.failf "expected exactly one span event, got %d" (List.length l));
  (match List.find_opt (fun e -> e.Trace.kind = "point") evs with
  | Some e ->
    check Alcotest.bool "point events gain a ts stamp in span mode" true
      (List.mem_assoc "ts" e.Trace.fields)
  | None -> Alcotest.fail "point event lost")

(* Minimal recursive-descent JSON syntax checker (the tree has no JSON
   library): accepts exactly the RFC 8259 value grammar we emit.  Raises
   on the first syntax error. *)
let json_validate s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "invalid JSON at byte %d: %s" !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal l =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l
    then pos := !pos + String.length l
    else fail ("expected " ^ l)
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let d = ref 0 in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        incr d;
        advance ()
      done;
      if !d = 0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Tentpole acceptance: the Chrome exporter emits syntactically valid
   trace-event JSON — spans as complete events, points as instants, cells
   as thread ids. *)
let test_chrome_trace_valid () =
  let _ = Trace.stop () in
  Trace.start ~spans:true ();
  Trace.record "merge-attempt"
    [ ("cand", Trace.Int 3); ("outcome", Trace.Str "success") ];
  ignore
    (Trace.span
       ~fields:[ ("workload", Trace.Str "quote\"me") ]
       "stage.formation"
       (fun () -> ()));
  Trace.with_cell 2 (fun () ->
      Trace.record "opt-pass" [ ("pass", Trace.Str "dce") ]);
  let evs = Trace.stop () in
  let js = Trace.to_chrome_json evs in
  json_validate js;
  check Alcotest.bool "spans are complete events" true
    (contains js "\"ph\":\"X\"");
  check Alcotest.bool "points are instants" true (contains js "\"ph\":\"i\"");
  check Alcotest.bool "span name survives" true
    (contains js "\"name\":\"stage.formation\"");
  check Alcotest.bool "cells map to thread ids" true (contains js "\"tid\":3");
  check Alcotest.bool "durations present" true (contains js "\"dur\":");
  (* the validator itself must reject garbage, or the test is vacuous *)
  check Alcotest.bool "validator rejects malformed input" true
    (try
       json_validate "[{\"a\":1,}]";
       false
     with _ -> true)

(* Stage timers ride Trace.span (satellite: the refactor must keep
   feeding the stage.time.* histograms). *)
let test_stage_time_uses_span () =
  let _ = Trace.stop () in
  Metrics.reset ();
  Trips_harness.Stage.reset_timings ();
  Trace.start ~spans:true ();
  let v = Trips_harness.Stage.time Trips_harness.Stage.Lower (fun () -> 7) in
  let evs = Trace.stop () in
  check Alcotest.int "timed body result" 7 v;
  check Alcotest.int "one stage span recorded" 1
    (List.length (span_events evs));
  (match Metrics.snapshot () with
  | s -> (
    match List.assoc_opt "stage.time.lower" s.Metrics.histograms with
    | Some h -> check Alcotest.int "histogram observed once" 1 h.Metrics.h_count
    | None -> Alcotest.fail "stage.time.lower histogram missing"));
  check Alcotest.bool "cumulative timing accounted" true
    ((Trips_harness.Stage.timings ()).Trips_harness.Stage.lower_s >= 0.0)

(* Satellite: quantile math and the JSON golden under interleaved
   multi-domain registration — field order inside a histogram is fixed,
   keys are sorted, and nearest-rank quantiles are deterministic however
   the observations interleave. *)
let test_metrics_multidomain_golden () =
  Metrics.reset ();
  let worker entries () =
    List.iter
      (fun (c, h, v) ->
        Metrics.incr c;
        Metrics.observe h v)
      entries
  in
  let d1 =
    Domain.spawn
      (worker [ ("z.counter", "sim.lat", 4.0); ("a.counter", "form.lat", 1.0) ])
  in
  let d2 =
    Domain.spawn
      (worker [ ("m.counter", "sim.lat", 2.0); ("a.counter", "form.lat", 3.0) ])
  in
  Domain.join d1;
  Domain.join d2;
  let s = Metrics.snapshot () in
  check Alcotest.string "sorted keys, stable field order, exact quantiles"
    "{\"counters\":{\"a.counter\":2,\"m.counter\":1,\"z.counter\":1},\
     \"gauges\":{},\
     \"histograms\":{\"form.lat\":{\"count\":2,\"sum\":4,\"min\":1,\"max\":3,\
     \"p50\":1,\"p90\":3,\"p99\":3},\"sim.lat\":{\"count\":2,\"sum\":6,\
     \"min\":2,\"max\":4,\"p50\":2,\"p90\":4,\"p99\":4}}}"
    (Metrics.to_json s)

(* Quantiles are nearest-rank over the full sample multiset. *)
let test_metrics_quantiles () =
  Metrics.reset ();
  for i = 1 to 100 do
    Metrics.observe "q" (float_of_int i)
  done;
  (match (Metrics.snapshot ()).Metrics.histograms with
  | [ ("q", h) ] ->
    check (Alcotest.float 1e-9) "p50 of 1..100" 50.0 h.Metrics.h_p50;
    check (Alcotest.float 1e-9) "p90 of 1..100" 90.0 h.Metrics.h_p90;
    check (Alcotest.float 1e-9) "p99 of 1..100" 99.0 h.Metrics.h_p99;
    check (Alcotest.float 1e-9) "min" 1.0 h.Metrics.h_min;
    check (Alcotest.float 1e-9) "max" 100.0 h.Metrics.h_max
  | _ -> Alcotest.fail "expected exactly the q histogram");
  Metrics.reset ()

(* ---- formation decision log -------------------------------------------- *)

(* Hand-built three-block loop: the seed b0 branches to the loop body b1
   (back edge to b0) and to the exit block b2. *)
let loop_cfg () =
  let cfg = Cfg.create ~name:"obs-loop" () in
  for _ = 0 to 2 do
    ignore (Cfg.fresh_block_id cfg)
  done;
  let g r sense = Some { Instr.greg = r; sense } in
  Cfg.set_block cfg
    (Block.make 0
       [
         Cfg.instr cfg (Instr.Binop (Opcode.Add, 1, Instr.Reg 1, Instr.Imm 1));
         Cfg.instr cfg (Instr.Cmp (Opcode.Lt, 2, Instr.Reg 1, Instr.Imm 3));
       ]
       [
         { Block.eguard = g 2 true; target = Block.Goto 1 };
         { Block.eguard = g 2 false; target = Block.Goto 2 };
       ]);
  Cfg.set_block cfg
    (Block.make 1
       [ Cfg.instr cfg (Instr.Mov (3, Instr.Imm 1)) ]
       [ { Block.eguard = None; target = Block.Goto 0 } ]);
  Cfg.set_block cfg
    (Block.make 2
       [ Cfg.instr cfg (Instr.Mov (4, Instr.Imm 7)) ]
       [ { Block.eguard = None; target = Block.Ret None } ]);
  cfg.Cfg.entry <- 0;
  Cfg.validate cfg;
  cfg

let profile_of cfg =
  let memory = Array.make 8 0 in
  let _, profile =
    Trips_sim.Func_sim.run_profiled ~registers:[ (1, 0) ] ~memory cfg
  in
  profile

let with_chaos hook f =
  Chf.Formation.chaos_combine_failure := Some hook;
  Fun.protect
    ~finally:(fun () -> Chf.Formation.chaos_combine_failure := None)
    f

(* Satellite 1: a candidate whose combine fails structurally must be
   dropped, not parked in the size-retry pool — under the old behavior it
   was retried after the next successful merge, doubling the structural
   failure (and, before the budget, looping).  The trace pins it down:
   exactly one structural event for the poisoned candidate. *)
let test_structural_failure_not_retried () =
  let cfg = loop_cfg () in
  let profile = profile_of cfg in
  let st = Chf.Formation.make Chf.Policy.edge_default cfg profile in
  let _ = Trace.stop () in
  Trace.start ();
  with_chaos
    (fun ~hb_id:_ ~s_id ~kind:_ -> s_id = 1)
    (fun () -> Chf.Formation.expand_block st 0);
  let evs = Trace.stop () in
  let attempts_on b1 =
    List.filter
      (fun e ->
        e.Trace.kind = "merge-attempt"
        && List.assoc "cand" e.Trace.fields = Trace.Int b1)
      evs
  in
  check Alcotest.int "poisoned candidate attempted exactly once" 1
    (List.length (attempts_on 1));
  (match attempts_on 1 with
  | [ e ] ->
    check Alcotest.bool "and the attempt is the structural reject" true
      (List.assoc "outcome" e.Trace.fields = Trace.Str "structural")
  | _ -> ());
  check Alcotest.int "one structural failure counted" 1
    st.Chf.Formation.stats.Chf.Formation.combine_failures;
  check Alcotest.int "the sibling merge still landed" 1
    st.Chf.Formation.stats.Chf.Formation.merges;
  check Alcotest.bool "failed candidate survives as its own block" true
    (Cfg.mem cfg 1)

(* Per-attempt outcomes and the stats counters must agree: the trace is
   the decision log, the counters its aggregate. *)
let test_trace_matches_stats () =
  let w = Option.get (Trips_workloads.Micro.by_name "sieve") in
  let profile, _ = Trips_harness.Pipeline.profile_workload w in
  let cfg, _ = Trips_harness.Pipeline.lower_workload w in
  Trips_opt.Optimizer.optimize_cfg cfg;
  let _ = Trace.stop () in
  Trace.start ();
  let stats = Chf.Formation.run Chf.Policy.edge_default cfg profile in
  let evs = Trace.stop () in
  let outcome_count o =
    List.length
      (List.filter
         (fun e ->
           e.Trace.kind = "merge-attempt"
           && List.assoc "outcome" e.Trace.fields = Trace.Str o)
         evs)
  in
  check Alcotest.int "success events = merges" stats.Chf.Formation.merges
    (outcome_count "success");
  check Alcotest.int "size events = size_rejections"
    stats.Chf.Formation.size_rejections (outcome_count "size");
  check Alcotest.int "structural events = combine_failures"
    stats.Chf.Formation.combine_failures (outcome_count "structural");
  check Alcotest.int "success+size+structural = attempts"
    stats.Chf.Formation.attempts
    (outcome_count "success" + outcome_count "size"
    + outcome_count "structural")

(* Tentpole acceptance: the full table-1 sweep records the same trace for
   every --jobs setting, and metrics aggregate identically. *)
let test_trace_jobs_invariant () =
  let ws =
    List.filter_map Trips_workloads.Micro.by_name [ "sieve"; "vadd"; "gzip_1" ]
  in
  let run jobs =
    Metrics.reset ();
    let _ = Trace.stop () in
    Trace.start ();
    ignore (Trips_harness.Table1.run ~cache:(Trips_harness.Stage.create ()) ~jobs ~workloads:ws ());
    let evs = Trace.stop () in
    let counters =
      (* drop timing-dependent histograms; counters are deterministic *)
      (Metrics.snapshot ()).Metrics.counters
      |> List.filter (fun (name, _) -> name <> "stage.cache.hit" && name <> "stage.cache.miss")
    in
    (List.map Trace.to_json evs, counters)
  in
  let evs1, counters1 = run 1 in
  let evs4, counters4 = run 4 in
  check Alcotest.bool "some events recorded" true (List.length evs1 > 0);
  check Alcotest.(list string) "trace identical across -j 1 / -j 4" evs1 evs4;
  check
    Alcotest.(list (pair string int))
    "deterministic counters identical across -j" counters1 counters4

(* Satellite 4: after ANY failure outcome the CFG must be bit-identical
   to its pre-attempt snapshot — blocks, entry, and the fresh-id
   counters (a leaked counter bump changes every later allocation).
   Random programs, every classifiable (seed, cand) pair, with
   chaos-injected structural failures on half the attempts and tight
   limits to provoke genuine size rejections on the rest. *)
let snapshot cfg =
  ( cfg.Cfg.entry,
    cfg.Cfg.next_block,
    cfg.Cfg.next_instr,
    cfg.Cfg.next_reg,
    List.map (Cfg.block cfg) (List.sort compare (Cfg.block_ids cfg)) )

let prop_failure_rolls_back =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"any failed merge attempt leaves the CFG bit-identical"
       ~count:25
       ~print:(fun (w, _) -> Generators.print_workload w)
       QCheck2.Gen.(pair Generators.random_program_gen (int_bound 1000))
       (fun (w, salt) ->
         let profile, _ = Trips_harness.Pipeline.profile_workload w in
         let cfg, _ = Trips_harness.Pipeline.lower_workload w in
         let tight =
           {
             Chf.Constraints.trips_limits with
             Chf.Constraints.max_instrs = 12;
           }
         in
         let config =
           { Chf.Policy.edge_default with Chf.Policy.limits = tight; slack = 0 }
         in
         let st = Chf.Formation.make config cfg profile in
         (* tolerate the lowered CFG's own parameter reads in the
            verifier, so only attempt-introduced damage is flagged *)
         let tolerated = Trips_verify.Cfg_verify.undefined_regs cfg in
         let failures = ref 0 in
         List.iter
           (fun hb_id ->
             if Cfg.mem cfg hb_id then
               List.iter
                 (fun s_id ->
                   match Chf.Formation.classify st ~hb_id ~s_id with
                   | None -> ()
                   | Some kind ->
                     let inject = (hb_id + s_id + salt) mod 2 = 0 in
                     let before = snapshot cfg in
                     let outcome =
                       with_chaos
                         (fun ~hb_id:_ ~s_id:_ ~kind:_ -> inject)
                         (fun () ->
                           Chf.Formation.merge_blocks st ~hb_id ~s_id ~kind)
                     in
                     (match outcome with
                     | Chf.Formation.Success _ -> ()
                     | Chf.Formation.Structural_failure _
                     | Chf.Formation.Size_rejected _ ->
                       incr failures;
                       if snapshot cfg <> before then
                         QCheck2.Test.fail_reportf
                           "CFG changed after failed merge %d <- %d" hb_id s_id;
                       if
                         Trips_verify.Cfg_verify.check ~allow_unreachable:true
                           ~params:tolerated cfg
                         <> []
                       then
                         QCheck2.Test.fail_reportf
                           "CFG un-verifiable after failed merge %d <- %d"
                           hb_id s_id))
                 (Block.distinct_successors (Cfg.block cfg hb_id)))
           (List.sort compare (Cfg.block_ids cfg));
         (* the generator must actually exercise the failure paths *)
         !failures > 0))

let suite =
  ( "obs",
    [
      Alcotest.test_case "trace json is stable" `Quick test_trace_json_stable;
      Alcotest.test_case "trace cell tagging" `Quick test_trace_cell_tagging;
      Alcotest.test_case "trace capture/replay" `Quick
        test_trace_capture_replay;
      Alcotest.test_case "metrics capture/apply" `Quick
        test_metrics_capture_apply;
      Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
      Alcotest.test_case "metrics gauges" `Quick test_metrics_gauges;
      Alcotest.test_case "span api" `Quick test_span_api;
      Alcotest.test_case "chrome trace is valid json" `Quick
        test_chrome_trace_valid;
      Alcotest.test_case "stage timers ride spans" `Quick
        test_stage_time_uses_span;
      Alcotest.test_case "metrics multi-domain golden" `Quick
        test_metrics_multidomain_golden;
      Alcotest.test_case "metrics quantiles" `Quick test_metrics_quantiles;
      Alcotest.test_case "structural failure never retried" `Quick
        test_structural_failure_not_retried;
      Alcotest.test_case "trace agrees with stats" `Quick
        test_trace_matches_stats;
      Alcotest.test_case "trace invariant across --jobs" `Quick
        test_trace_jobs_invariant;
      prop_failure_rolls_back;
    ] )
