(* Tests for convergent hyperblock formation: the constraint checker, the
   merge classification (Figure 5's case split), head duplication as
   peeling/unrolling, policies, and whole-CFG invariants. *)

open Trips_ir
open Trips_analysis

let check = Alcotest.check

(* ---- constraints -------------------------------------------------------- *)

let mkins =
  let c = ref 0 in
  fun ?guard op ->
    incr c;
    Instr.make ?guard !c op

let ret_exit = { Block.eguard = None; target = Block.Ret None }

let test_estimate_counts () =
  let g = { Instr.greg = 1; sense = true } in
  let b =
    Block.make 0
      [
        mkins (Instr.Load (10, Instr.Reg 2, 0));
        mkins (Instr.Store (Instr.Reg 10, Instr.Reg 2, 1));
        mkins ~guard:g (Instr.Mov (11, Instr.Imm 5));
      ]
      [ ret_exit ]
  in
  let live_out = IntSet.singleton 11 in
  let e = Chf.Constraints.estimate b ~live_out in
  check Alcotest.int "loads+stores" 2 e.Chf.Constraints.loads_stores;
  check Alcotest.int "writes (r11 live out)" 1 e.Chf.Constraints.writes;
  (* 3 instrs + 1 exit + 1 nullw for the guarded-only output r11 *)
  check Alcotest.int "instruction budget" 5 e.Chf.Constraints.instrs;
  check Alcotest.bool "reads include guard and address" true
    (e.Chf.Constraints.reads >= 2)

let test_legal_limits () =
  let limits = Chf.Constraints.trips_limits in
  let ok = { Chf.Constraints.instrs = 128; loads_stores = 32; reads = 32; writes = 32 } in
  check Alcotest.bool "at the limits" true (Chf.Constraints.legal limits ok);
  check Alcotest.bool "slack shrinks budget" false
    (Chf.Constraints.legal ~slack:1 limits ok);
  List.iter
    (fun e ->
      check Alcotest.bool "over some limit" false (Chf.Constraints.legal limits e))
    [
      { ok with Chf.Constraints.instrs = 129 };
      { ok with Chf.Constraints.loads_stores = 33 };
      { ok with Chf.Constraints.reads = 33 };
      { ok with Chf.Constraints.writes = 33 };
    ]

let test_fanout_estimate_grows () =
  (* a value consumed many times needs fanout movs in the estimate *)
  let uses =
    List.init 8 (fun k ->
        mkins (Instr.Binop (Opcode.Add, 20 + k, Instr.Reg 10, Instr.Imm k)))
  in
  let b =
    Block.make 0 (mkins (Instr.Mov (10, Instr.Imm 1)) :: uses) [ ret_exit ]
  in
  let e = Chf.Constraints.estimate b ~live_out:IntSet.empty in
  check Alcotest.bool "fanout movs counted" true
    (e.Chf.Constraints.instrs > 9 + 1)

(* ---- formation on kernels ---------------------------------------------- *)

let form workload_name config =
  let w = Option.get (Trips_workloads.Micro.by_name workload_name) in
  let profile, _ = Trips_harness.Pipeline.profile_workload w in
  let cfg, registers = Trips_harness.Pipeline.lower_workload w in
  Trips_opt.Optimizer.optimize_cfg cfg;
  let stats = Chf.Formation.run config cfg profile in
  (cfg, stats, registers, w)

let test_formation_preserves_each_kernel () =
  List.iter
    (fun name ->
      let w = Option.get (Trips_workloads.Micro.by_name name) in
      let baseline = Generators.baseline_of w in
      let cfg, _, registers, _ = form name Chf.Policy.edge_default in
      let memory = Trips_workloads.Workload.memory w in
      let r = Trips_sim.Func_sim.run ~registers ~memory cfg in
      check Alcotest.int
        (name ^ " checksum")
        baseline.Trips_sim.Func_sim.checksum r.Trips_sim.Func_sim.checksum)
    [ "sieve"; "gzip_1"; "bzip2_3"; "ammp_1"; "dhry" ]

let test_formed_blocks_respect_constraints () =
  List.iter
    (fun name ->
      let cfg, _, _, _ = form name Chf.Policy.edge_default in
      let live = Liveness.compute cfg in
      Cfg.iter_blocks
        (fun b ->
          let e =
            Chf.Constraints.estimate b
              ~live_out:(Liveness.live_out live b.Block.id)
          in
          check Alcotest.bool
            (Fmt.str "%s b%d within limits (%a)" name b.Block.id
               Chf.Constraints.pp_estimate e)
            true
            (Chf.Constraints.legal Chf.Constraints.trips_limits e))
        cfg)
    [ "sieve"; "gzip_1"; "matrix_1"; "parser_1"; "dhry" ]

let test_formation_reduces_blocks () =
  let w = Option.get (Trips_workloads.Micro.by_name "gzip_1") in
  let cfg0, _ = Trips_harness.Pipeline.lower_workload w in
  let before = Cfg.num_blocks cfg0 in
  let cfg, stats, _, _ = form "gzip_1" Chf.Policy.edge_default in
  check Alcotest.bool "blocks reduced" true (Cfg.num_blocks cfg < before);
  check Alcotest.bool "merges happened" true (stats.Chf.Formation.merges > 0)

let test_head_dup_unrolls_self_loop () =
  (* gzip_1's hot loop collapses into a self-loop block and then unrolls *)
  let cfg, stats, _, _ = form "vadd" Chf.Policy.edge_default in
  check Alcotest.bool "unrolled at least once" true (stats.Chf.Formation.unrolls > 0);
  let has_self_loop =
    List.exists (fun id -> List.mem id (Cfg.successors cfg id)) (Cfg.block_ids cfg)
  in
  check Alcotest.bool "self-loop block exists" true has_self_loop

let test_head_dup_disabled () =
  let config = { Chf.Policy.edge_default with Chf.Policy.enable_head_dup = false } in
  let _, stats, _, _ = form "vadd" config in
  check Alcotest.int "no unrolls" 0 stats.Chf.Formation.unrolls;
  check Alcotest.int "no peels" 0 stats.Chf.Formation.peels

let test_tail_dup_disabled () =
  let config = { Chf.Policy.edge_default with Chf.Policy.enable_tail_dup = false } in
  let _, stats, _, _ = form "bzip2_3" config in
  check Alcotest.int "no tail dups" 0 stats.Chf.Formation.tail_dups

let test_depth_first_tail_duplicates_merge_point () =
  (* the paper's bzip2_3 story: DF excludes the rare block, so the merge
     block holding the induction update is tail duplicated *)
  let df =
    {
      Chf.Policy.edge_default with
      Chf.Policy.heuristic = Chf.Policy.Depth_first { min_merge_prob = 0.12 };
    }
  in
  let _, df_stats, _, _ = form "bzip2_3" df in
  let _, bf_stats, _, _ = form "bzip2_3" Chf.Policy.edge_default in
  check Alcotest.bool "DF tail-duplicates" true
    (df_stats.Chf.Formation.tail_dups > 0);
  check Alcotest.bool "BF avoids duplication on the diamond" true
    (bf_stats.Chf.Formation.tail_dups <= df_stats.Chf.Formation.tail_dups)

let test_vliw_prepass_restricts () =
  (* VLIW's path pre-pass excludes parser_1's rare heavy paths, so the
     formed code keeps more (cold) blocks than breadth-first, which
     merges every path *)
  let vliw =
    {
      Chf.Policy.edge_default with
      Chf.Policy.heuristic = Chf.Policy.Vliw Chf.Policy.default_vliw;
    }
  in
  let vliw_cfg, _, _, _ = form "parser_1" vliw in
  let bf_cfg, _, _, _ = form "parser_1" Chf.Policy.edge_default in
  check Alcotest.bool "VLIW keeps at least as many blocks as BF" true
    (Trips_ir.Cfg.num_blocks vliw_cfg >= Trips_ir.Cfg.num_blocks bf_cfg)

(* formation must keep the strict exactly-one-exit invariant: strict
   interpretation of every formed kernel exercises it *)
let formation_keeps_exit_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"formation keeps strict exit invariant (random programs)"
       ~count:30 ~print:Generators.print_workload Generators.random_program_gen
       (fun w ->
         let baseline = Generators.baseline_of w in
         let profile, _ = Trips_harness.Pipeline.profile_workload w in
         let cfg, registers = Trips_harness.Pipeline.lower_workload w in
         Trips_opt.Optimizer.optimize_cfg cfg;
         ignore (Chf.Formation.run Chf.Policy.edge_default cfg profile);
         let memory = Trips_workloads.Workload.memory w in
         let r = Trips_sim.Func_sim.run ~strict_exits:true ~registers ~memory cfg in
         r.Trips_sim.Func_sim.checksum = baseline.Trips_sim.Func_sim.checksum))

(* peel statistics respect the trip-count gate *)
let test_peel_gated_by_trip_counts () =
  let config = { Chf.Policy.edge_default with Chf.Policy.peel_coverage = 1.1 } in
  (* coverage > 1 is unsatisfiable for any histogram: no peeling *)
  let _, stats, _, _ = form "ammp_1" config in
  check Alcotest.int "no peels at impossible coverage" 0 stats.Chf.Formation.peels

let test_unroll_capped () =
  (* the cap is per loop; vadd (front-end unrolled) has up to four loops *)
  let capped = { Chf.Policy.edge_default with Chf.Policy.max_unroll = 1 } in
  let _, stats1, _, _ = form "vadd" capped in
  let _, stats8, _, _ = form "vadd" Chf.Policy.edge_default in
  check Alcotest.bool "capped at one per loop" true
    (stats1.Chf.Formation.unrolls <= 4);
  check Alcotest.bool "higher cap unrolls more" true
    (stats8.Chf.Formation.unrolls >= stats1.Chf.Formation.unrolls)

let test_block_splitting_extension () =
  (* with a tight instruction budget, splitting lets part of a too-big
     candidate merge; semantics must be preserved either way *)
  let tight_limits =
    { Chf.Constraints.trips_limits with Chf.Constraints.max_instrs = 24 }
  in
  let base =
    { Chf.Policy.edge_default with Chf.Policy.limits = tight_limits; slack = 0 }
  in
  let with_split = { base with Chf.Policy.enable_block_splitting = true } in
  let w = Option.get (Trips_workloads.Micro.by_name "dhry") in
  let baseline = Generators.baseline_of w in
  List.iter
    (fun (label, config) ->
      let profile, _ = Trips_harness.Pipeline.profile_workload w in
      let cfg, registers = Trips_harness.Pipeline.lower_workload w in
      Trips_opt.Optimizer.optimize_cfg cfg;
      let stats = Chf.Formation.run config cfg profile in
      let memory = Trips_workloads.Workload.memory w in
      let r = Trips_sim.Func_sim.run ~registers ~memory cfg in
      check Alcotest.int (label ^ " semantics")
        baseline.Trips_sim.Func_sim.checksum r.Trips_sim.Func_sim.checksum;
      if label = "split" then
        check Alcotest.bool "splitting used" true
          (stats.Chf.Formation.block_splits > 0))
    [ ("nosplit", base); ("split", with_split) ]

(* ---- fast-path equivalence --------------------------------------------- *)

let fast_path_hatches =
  [
    "TRIPS_NO_PREFILTER";
    "TRIPS_NO_INCR_LIVENESS";
    "TRIPS_NO_LOOP_REUSE";
    "TRIPS_NO_CAND_POOL";
    "TRIPS_NO_TRIAL_CACHE";
    "TRIPS_NO_SPEC_TRIALS";
  ]

let with_hatches v f =
  List.iter (fun h -> Unix.putenv h v) fast_path_hatches;
  Fun.protect
    ~finally:(fun () -> List.iter (fun h -> Unix.putenv h "") fast_path_hatches)
    f

(* Run formation on a workload and capture everything observable: the
   final CFG (entry + every block record), the statistics, and the full
   sorted trace rendered to JSON. *)
let form_traced w =
  let profile, _ = Trips_harness.Pipeline.profile_workload w in
  let cfg, _ = Trips_harness.Pipeline.lower_workload w in
  Trips_opt.Optimizer.optimize_cfg cfg;
  let _ = Trips_obs.Trace.stop () in
  Trips_obs.Trace.start ();
  let stats = Chf.Formation.run Chf.Policy.edge_default cfg profile in
  let trace = List.map Trips_obs.Trace.to_json (Trips_obs.Trace.stop ()) in
  let blocks =
    List.map (Cfg.block cfg) (List.sort compare (Cfg.block_ids cfg))
  in
  ((cfg.Cfg.entry, blocks), stats, trace)

(* The contract every fast path must honor (DESIGN.md §12): with the
   pre-filter, incremental liveness, loop-forest reuse and the indexed
   pool all enabled, the final CFG, the statistics and the byte-rendered
   trace are identical to a run with every escape hatch engaged — the
   fast paths are pure strength reductions, never behavior changes. *)
let fast_paths_are_output_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"CHK fast paths are output-invariant (random programs)" ~count:20
       ~print:Generators.print_workload Generators.random_program_gen
       (fun w ->
         let fast = with_hatches "" (fun () -> form_traced w) in
         let slow = with_hatches "1" (fun () -> form_traced w) in
         fast = slow))

(* The speculation contract: with a scheduler installed (inline, and a
   real one-worker pool) and the trial cache on, formation's CFG, stats
   and byte-rendered trace equal the all-hatches-off oracle — a stale
   cached verdict being served would show up as a divergence here — and
   the trial accounting balances: every speculative trial ends exactly
   once, served from the cache or wasted. *)
let speculation_matches_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"CHK speculative trials are output-invariant (random programs)"
       ~count:12 ~print:Generators.print_workload Generators.random_program_gen
       (fun w ->
         let with_sched sched f =
           Chf.Formation.set_scheduler (Some sched);
           Chf.Formation.set_spec_trials 3;
           Fun.protect
             ~finally:(fun () ->
               Chf.Formation.set_scheduler None;
               Chf.Formation.set_spec_trials 4)
             f
         in
         let form_spec sched =
           with_sched sched (fun () ->
               Trips_obs.Metrics.reset ();
               let out = with_hatches "" (fun () -> form_traced w) in
               let c =
                 Trips_obs.Metrics.counter_value
                   (Trips_obs.Metrics.snapshot ())
               in
               ( out,
                 c "formation.trials.speculative",
                 c "formation.trials.cached",
                 c "formation.trials.wasted" ))
         in
         let oracle = with_hatches "1" (fun () -> form_traced w) in
         let inline_out, isp, ica, iwa =
           form_spec Chf.Formation.inline_scheduler
         in
         let pool = Trips_harness.Engine.Pool.create ~workers:1 () in
         let pooled_out, psp, pca, pwa =
           Fun.protect
             ~finally:(fun () -> Trips_harness.Engine.Pool.shutdown pool)
             (fun () ->
               form_spec (Trips_harness.Engine.formation_scheduler pool))
         in
         if inline_out <> oracle then
           QCheck2.Test.fail_report "inline speculation diverged from oracle";
         if pooled_out <> oracle then
           QCheck2.Test.fail_report "pooled speculation diverged from oracle";
         if isp <> ica + iwa then
           QCheck2.Test.fail_reportf
             "inline trial accounting: %d spec <> %d cached + %d wasted" isp
             ica iwa;
         if psp <> pca + pwa then
           QCheck2.Test.fail_reportf
             "pooled trial accounting: %d spec <> %d cached + %d wasted" psp
             pca pwa;
         true))

(* The pre-filter's additive lower bound must never exceed the true
   post-optimization estimate: the audit hook forces every attempt down
   the full trial path and hands the test both numbers, over kernels
   covering stores, loops, unrolling, peeling and tail duplication. *)
let test_prefilter_bound_is_sound () =
  let fired = ref 0 in
  Chf.Formation.prefilter_audit :=
    Some
      (fun ~bound ~est ->
        incr fired;
        let open Chf.Constraints in
        if
          not
            (bound.instrs <= est.instrs
            && bound.loads_stores <= est.loads_stores
            && bound.reads <= est.reads
            && bound.writes <= est.writes)
        then
          Alcotest.failf "prefilter bound exceeds true estimate: %a > %a"
            pp_estimate bound pp_estimate est);
  Fun.protect
    ~finally:(fun () -> Chf.Formation.prefilter_audit := None)
    (fun () ->
      List.iter
        (fun name -> ignore (form name Chf.Policy.edge_default))
        [ "sieve"; "gzip_1"; "bzip2_3"; "ammp_1"; "matrix_1"; "parser_1";
          "dhry"; "vadd" ]);
  check Alcotest.bool "audit hook fired" true (!fired > 0)

(* ---- rollback of hidden state ------------------------------------------ *)

(* Regression for a trial-merge rollback gap: when a *failed* unroll was
   the attempt that re-saved the stale one-iteration body, rollback used
   to leave the re-saved body behind, so a later unroll duplicated a
   different (larger) body than a run that never made the failed attempt.
   Driving the same merge sequence with and without a chaos-failed unroll
   in the middle must produce bit-identical CFGs. *)
let rollback_cfg () =
  let cfg = Cfg.create ~name:"rollback" () in
  for _ = 0 to 2 do
    ignore (Cfg.fresh_block_id cfg)
  done;
  let g r sense = Some { Instr.greg = r; sense } in
  Cfg.set_block cfg
    (Block.make 0
       [
         Cfg.instr cfg (Instr.Binop (Opcode.Add, 1, Instr.Reg 1, Instr.Imm 1));
         Cfg.instr cfg (Instr.Cmp (Opcode.Lt, 2, Instr.Reg 1, Instr.Imm 3));
         Cfg.instr cfg (Instr.Cmp (Opcode.Lt, 3, Instr.Reg 1, Instr.Imm 6));
       ]
       [
         { Block.eguard = g 2 true; target = Block.Goto 0 };
         { Block.eguard = g 3 true; target = Block.Goto 1 };
         { Block.eguard = g 3 false; target = Block.Goto 2 };
       ]);
  Cfg.set_block cfg
    (Block.make 1
       [ Cfg.instr cfg (Instr.Mov (4, Instr.Imm 1)) ]
       [ { Block.eguard = None; target = Block.Goto 0 } ]);
  Cfg.set_block cfg
    (Block.make 2
       [ Cfg.instr cfg (Instr.Mov (5, Instr.Imm 7)) ]
       [ { Block.eguard = None; target = Block.Ret None } ]);
  cfg.Cfg.entry <- 0;
  Cfg.validate cfg;
  cfg

(* The trial-verdict cache's soundness rests on commit-only version
   bumps: a committed merge must move the version of every block it
   writes (plus the commit epoch), and a failed trial must move
   nothing — that is what lets verdicts computed before a failed head
   attempt survive it. *)
let test_commit_bumps_versions_failed_trial_does_not () =
  let cfg = rollback_cfg () in
  let st =
    Chf.Formation.make Chf.Policy.edge_default cfg
      (Trips_profile.Profile.empty ())
  in
  let v id = Cfg.block_version cfg id in
  let epoch () = st.Chf.Formation.commit_epoch in
  let v0 = v 0 and v1 = v 1 and e0 = epoch () in
  Chf.Formation.chaos_combine_failure :=
    Some (fun ~hb_id:_ ~s_id:_ ~kind:_ -> true);
  Fun.protect
    ~finally:(fun () -> Chf.Formation.chaos_combine_failure := None)
    (fun () ->
      match
        Chf.Formation.merge_blocks st ~hb_id:0 ~s_id:1
          ~kind:Chf.Formation.Simple
      with
      | Chf.Formation.Structural_failure _ -> ()
      | _ -> Alcotest.fail "chaos-injected merge should fail");
  check Alcotest.int "failed trial leaves hb version" v0 (v 0);
  check Alcotest.int "failed trial leaves successor version" v1 (v 1);
  check Alcotest.int "failed trial leaves commit epoch" e0 (epoch ());
  let expect_success label = function
    | Chf.Formation.Success _ -> ()
    | Chf.Formation.Structural_failure m ->
      Alcotest.failf "%s failed structurally: %s" label m
    | Chf.Formation.Size_rejected _ -> Alcotest.failf "%s size-rejected" label
  in
  (* a committed simple merge writes both the hyperblock and the
     merged-away successor *)
  expect_success "simple b1"
    (Chf.Formation.merge_blocks st ~hb_id:0 ~s_id:1 ~kind:Chf.Formation.Simple);
  check Alcotest.bool "commit bumps hb version" true (v 0 > v0);
  check Alcotest.bool "commit bumps merged-away version" true (v 1 > v1);
  check Alcotest.int "commit bumps epoch" (e0 + 1) (epoch ());
  (* an unroll writes only the hyperblock *)
  let v0' = v 0 and v2 = v 2 in
  expect_success "unroll"
    (Chf.Formation.merge_blocks st ~hb_id:0 ~s_id:0 ~kind:Chf.Formation.Unroll);
  check Alcotest.bool "unroll bumps hb version" true (v 0 > v0');
  check Alcotest.int "unroll leaves untouched block" v2 (v 2);
  check Alcotest.int "unroll bumps epoch" (e0 + 2) (epoch ())

let test_failed_unroll_leaves_no_hidden_state () =
  let drive ~with_failed_unroll =
    let cfg = rollback_cfg () in
    let st =
      Chf.Formation.make Chf.Policy.edge_default cfg
        (Trips_profile.Profile.empty ())
    in
    let expect_success label outcome =
      match outcome with
      | Chf.Formation.Success _ -> ()
      | Chf.Formation.Structural_failure m ->
        Alcotest.failf "%s failed structurally: %s" label m
      | Chf.Formation.Size_rejected _ -> Alcotest.failf "%s size-rejected" label
    in
    (* 1: unroll saves the one-iteration body of b0 *)
    expect_success "unroll#1"
      (Chf.Formation.merge_blocks st ~hb_id:0 ~s_id:0 ~kind:Chf.Formation.Unroll);
    (* 2: merging b1 away makes that saved body stale (it targets b1) *)
    expect_success "simple b1"
      (Chf.Formation.merge_blocks st ~hb_id:0 ~s_id:1 ~kind:Chf.Formation.Simple);
    (* 3 (run A only): a chaos-failed unroll re-saves the body before
       failing; the rollback must restore the stale entry *)
    if with_failed_unroll then begin
      Chf.Formation.chaos_combine_failure :=
        Some (fun ~hb_id:_ ~s_id:_ ~kind:_ -> true);
      Fun.protect
        ~finally:(fun () -> Chf.Formation.chaos_combine_failure := None)
        (fun () ->
          match
            Chf.Formation.merge_blocks st ~hb_id:0 ~s_id:0
              ~kind:Chf.Formation.Unroll
          with
          | Chf.Formation.Structural_failure _ -> ()
          | _ -> Alcotest.fail "chaos-injected unroll should fail")
    end;
    (* 4: grow b0 (tail-dup keeps b2 alive), so the body a leaked step-3
       re-save captured differs from the body a fresh re-save captures *)
    expect_success "tail dup b2"
      (Chf.Formation.merge_blocks st ~hb_id:0 ~s_id:2
         ~kind:Chf.Formation.Tail_dup);
    (* 5: the next unroll re-saves from the current block either way *)
    expect_success "unroll#2"
      (Chf.Formation.merge_blocks st ~hb_id:0 ~s_id:0 ~kind:Chf.Formation.Unroll);
    ( cfg.Cfg.entry,
      List.map (Cfg.block cfg) (List.sort compare (Cfg.block_ids cfg)) )
  in
  let with_failure = drive ~with_failed_unroll:true in
  let without_failure = drive ~with_failed_unroll:false in
  check Alcotest.bool
    "failed unroll is invisible: both runs produce identical CFGs" true
    (with_failure = without_failure)

let suite =
  ( "formation",
    [
      Alcotest.test_case "failed unroll leaves no hidden state" `Quick
        test_failed_unroll_leaves_no_hidden_state;
      Alcotest.test_case "block splitting extension" `Quick
        test_block_splitting_extension;
      Alcotest.test_case "estimate counts" `Quick test_estimate_counts;
      Alcotest.test_case "legal limits" `Quick test_legal_limits;
      Alcotest.test_case "fanout estimate" `Quick test_fanout_estimate_grows;
      Alcotest.test_case "kernels preserved" `Quick test_formation_preserves_each_kernel;
      Alcotest.test_case "constraints respected" `Quick
        test_formed_blocks_respect_constraints;
      Alcotest.test_case "blocks reduced" `Quick test_formation_reduces_blocks;
      Alcotest.test_case "head dup unrolls" `Quick test_head_dup_unrolls_self_loop;
      Alcotest.test_case "head dup disabled" `Quick test_head_dup_disabled;
      Alcotest.test_case "tail dup disabled" `Quick test_tail_dup_disabled;
      Alcotest.test_case "DF forces tail dup (bzip2_3)" `Quick
        test_depth_first_tail_duplicates_merge_point;
      Alcotest.test_case "VLIW prepass restricts" `Quick test_vliw_prepass_restricts;
      formation_keeps_exit_invariant;
      Alcotest.test_case "peel gated by trips" `Quick test_peel_gated_by_trip_counts;
      Alcotest.test_case "unroll capped" `Quick test_unroll_capped;
      fast_paths_are_output_invariant;
      speculation_matches_oracle;
      Alcotest.test_case "commit bumps versions, failed trial does not"
        `Quick test_commit_bumps_versions_failed_trial_does_not;
      Alcotest.test_case "prefilter bound is sound" `Quick
        test_prefilter_bound_is_sound;
    ] )
