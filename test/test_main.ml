(* Entry point for the full test suite: one Alcotest run over all
   per-library suites.  Property tests (qcheck) are registered as
   alcotest cases inside each suite. *)

let () =
  Alcotest.run "trips-chf"
    [
      Test_ir.suite;
      Test_analysis.suite;
      Test_lang.suite;
      Test_opt.suite;
      Test_transform.suite;
      Test_formation.suite;
      Test_regalloc.suite;
      Test_sim.suite;
      Test_workloads.suite;
      Test_verify.suite;
      Test_engine.suite;
      Test_obs.suite;
      Test_telemetry.suite;
      Test_provenance.suite;
      Test_fuzz.suite;
      Test_serve.suite;
      Test_integration.suite;
    ]
