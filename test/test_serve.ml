(* Tests for the resident compilation service: wire protocol framing and
   session-type enforcement, the shared content-addressed store (LRU +
   counters + thread safety), the bounded scheduler's structured overload
   modes, end-to-end byte identity over a real socket, and the
   resident-pool-vs-legacy Engine.map equivalence property behind
   TRIPS_NO_RESIDENT_POOL. *)

module P = Trips_serve.Protocol
module Scheduler = Trips_serve.Scheduler
module Store = Trips_store.Store
module Engine = Trips_harness.Engine
module Watchdog = Trips_obs.Watchdog

let spec =
  {
    P.cs_workload = "sieve";
    cs_ordering = "iupo-merged";
    cs_policy = "bf";
    cs_backend = true;
    cs_verify = false;
    cs_deadline_s = None;
    cs_chaos_seed = None;
  }

(* Run [k] with a connected (in_channel, out_channel) pair over a pipe —
   enough to exercise the real framed readers/writers without a socket. *)
let with_pipe k =
  let r, w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr r and oc = Unix.out_channel_of_descr w in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      close_in_noerr ic)
    (fun () -> k ic oc)

(* ---- protocol ---------------------------------------------------------- *)

let test_request_round_trip () =
  let reqs =
    [
      P.Packed (P.Compile spec);
      P.Packed
        (P.Report
           {
             P.rs_workloads = [ "sieve"; "vadd" ];
             rs_ordering = "iupo-merged";
             rs_policy = "bf";
             rs_deadline_s = Some 1.5;
           });
      P.Packed
        (P.Sweep_cell
           { P.ss_table = "table1"; ss_workloads = []; ss_deadline_s = None });
      P.Packed P.Stats;
      P.Packed P.Shutdown;
    ]
  in
  List.iter
    (fun (P.Packed req) ->
      with_pipe (fun ic oc ->
          let ctx = Trips_obs.Telemetry.mint ~deadline_s:0.5 () in
          P.write_request oc ?ctx (P.wire_of_request req);
          let ctx', wire = P.read_request ic in
          Alcotest.(check bool) "ctx survives the wire" true (ctx = ctx');
          let (P.Packed decoded) = P.request_of_wire wire in
          let same =
            match (req, decoded) with
            | P.Compile a, P.Compile b -> a = b
            | P.Report a, P.Report b -> a = b
            | P.Sweep_cell a, P.Sweep_cell b -> a = b
            | P.Stats, P.Stats -> true
            | P.Shutdown, P.Shutdown -> true
            | _ -> false
          in
          Alcotest.(check bool) "request survives the wire" true same))
    reqs

let test_reply_round_trip () =
  with_pipe (fun ic oc ->
      let req = P.Compile spec in
      P.write_reply oc (P.reply_to_wire req (Ok "report text"));
      (match P.reply_of_wire req (P.read_reply ic) with
      | Ok text -> Alcotest.(check string) "payload" "report text" text
      | Error _ -> Alcotest.fail "expected Ok");
      P.write_reply oc
        (P.reply_to_wire req (Error (P.Overloaded { ov_pending = 3; ov_depth = 3 })));
      match P.reply_of_wire req (P.read_reply ic) with
      | Error (P.Overloaded { ov_pending = 3; ov_depth = 3 }) -> ()
      | _ -> Alcotest.fail "expected Overloaded")

let test_version_mismatch () =
  with_pipe (fun ic oc ->
      output_string oc "CHFS";
      output_char oc (Char.chr (P.version + 1));
      output_string oc "junk that must never be unmarshaled";
      flush oc;
      match P.read_request ic with
      | _ -> Alcotest.fail "version skew accepted"
      | exception P.Protocol_error _ -> ())

let test_bad_magic () =
  with_pipe (fun ic oc ->
      output_string oc "HTTP/";
      flush oc;
      match P.read_request ic with
      | _ -> Alcotest.fail "bad magic accepted"
      | exception P.Protocol_error _ -> ())

let test_session_type_enforced () =
  (* A reply whose shape contradicts the request's type index must be a
     structured protocol error, not a crash or a silent misread. *)
  let wrong = P.reply_to_wire (P.Compile spec) (Ok "text") in
  (match P.reply_of_wire P.Stats wrong with
  | _ -> Alcotest.fail "stats request accepted an output reply"
  | exception P.Protocol_error _ -> ());
  match P.reply_of_wire (P.Compile spec) (P.error_reply "boom") with
  | _ -> Alcotest.fail "error frame decoded as a payload"
  | exception P.Protocol_error _ -> ()

(* ---- content-addressed store ------------------------------------------- *)

let k src = { Store.src; stage = "compile"; config = "cfg" }

let test_store_counters () =
  let s = Store.create ~capacity:8 ~name:"t.counters" () in
  Alcotest.(check (option string)) "miss" None (Store.find s (k "a"));
  Store.add s (k "a") "A";
  Alcotest.(check (option string)) "hit" (Some "A") (Store.find s (k "a"));
  Store.record_miss s;
  let c = Store.counters s in
  Alcotest.(check int) "hits" 1 c.Store.hits;
  Alcotest.(check int) "misses" 2 c.Store.misses;
  Alcotest.(check int) "entries" 1 c.Store.entries;
  Alcotest.(check int) "capacity" 8 c.Store.capacity;
  Alcotest.(check (float 1e-9))
    "hit rate" (1.0 /. 3.0) (Store.hit_rate c)

let test_store_lru_eviction () =
  let s = Store.create ~capacity:2 ~name:"t.lru" () in
  Store.add s (k "a") "A";
  Store.add s (k "b") "B";
  (* touching [a] refreshes its recency, so the next insert evicts [b] *)
  ignore (Store.find s (k "a"));
  Store.add s (k "c") "C";
  Alcotest.(check (option string)) "a survives" (Some "A") (Store.find s (k "a"));
  Alcotest.(check (option string)) "b evicted" None (Store.find s (k "b"));
  Alcotest.(check (option string)) "c present" (Some "C") (Store.find s (k "c"));
  let c = Store.counters s in
  Alcotest.(check int) "one eviction" 1 c.Store.evictions;
  Alcotest.(check int) "bounded" 2 c.Store.entries

let test_store_key_separation () =
  (* the key is the full (src, stage, config) triple: any differing
     component addresses a distinct artifact *)
  let s = Store.create ~capacity:8 ~name:"t.keys" () in
  Store.add s { Store.src = "s"; stage = "compile"; config = "c1" } "one";
  Store.add s { Store.src = "s"; stage = "compile"; config = "c2" } "two";
  Store.add s { Store.src = "s"; stage = "prefix"; config = "c1" } "three";
  Alcotest.(check (option string))
    "config digest discriminates" (Some "one")
    (Store.find s { Store.src = "s"; stage = "compile"; config = "c1" });
  Alcotest.(check (option string))
    "stage discriminates" (Some "three")
    (Store.find s { Store.src = "s"; stage = "prefix"; config = "c1" });
  Alcotest.(check int) "three entries" 3 (Store.counters s).Store.entries

let test_store_concurrent () =
  let s = Store.create ~capacity:4 ~name:"t.concurrent" () in
  let threads = 4 and per_thread = 200 and keyspace = 8 in
  let bad = Atomic.make 0 in
  let worker tid =
    Thread.create
      (fun tid ->
        for i = 0 to per_thread - 1 do
          let src = Printf.sprintf "w%d" ((i + tid) mod keyspace) in
          let v = Store.find_or_add s (k src) (fun key -> "v:" ^ key.Store.src) in
          if v <> "v:" ^ src then Atomic.incr bad
        done)
      tid
  in
  List.init threads worker |> List.iter Thread.join;
  Alcotest.(check int) "every lookup returned its own key's value" 0
    (Atomic.get bad);
  let c = Store.counters s in
  Alcotest.(check int) "every lookup counted" (threads * per_thread)
    (c.Store.hits + c.Store.misses);
  Alcotest.(check bool) "population bounded" true (c.Store.entries <= 4)

(* ---- scheduler --------------------------------------------------------- *)

let test_scheduler_concurrent_determinism () =
  let sched = Scheduler.create ~workers:2 ~run:(fun n -> n * n) () in
  Fun.protect
    ~finally:(fun () -> Scheduler.drain sched)
    (fun () ->
      let bad = Atomic.make 0 in
      let client tid =
        Thread.create
          (fun tid ->
            for i = 0 to 24 do
              let n = (tid * 100) + i in
              match Scheduler.run_sync sched n with
              | Scheduler.Done r when r = n * n -> ()
              | _ -> Atomic.incr bad
            done)
          tid
      in
      List.init 4 client |> List.iter Thread.join;
      Alcotest.(check int) "every job got its own answer" 0 (Atomic.get bad);
      let c = Scheduler.counters sched in
      Alcotest.(check int) "completed" 100 c.Scheduler.k_completed;
      Alcotest.(check int) "pending" 0 c.Scheduler.k_pending)

let test_scheduler_crash_isolation () =
  let run n = if n = 13 then failwith "boom" else n in
  let sched = Scheduler.create ~workers:1 ~run () in
  Fun.protect
    ~finally:(fun () -> Scheduler.drain sched)
    (fun () ->
      (match Scheduler.run_sync sched 13 with
      | Scheduler.Crashed (Failure m) when m = "boom" -> ()
      | _ -> Alcotest.fail "expected Crashed");
      (* the crash is confined: the same pool keeps answering *)
      (match Scheduler.run_sync sched 7 with
      | Scheduler.Done 7 -> ()
      | _ -> Alcotest.fail "pool wedged after a crash");
      let c = Scheduler.counters sched in
      Alcotest.(check int) "one crash" 1 c.Scheduler.k_crashed;
      (* completed counts successes only; the crash has its own counter *)
      Alcotest.(check int) "one success" 1 c.Scheduler.k_completed;
      Alcotest.(check int) "nothing pending" 0 c.Scheduler.k_pending)

let test_scheduler_sheds_overflow () =
  let m = Mutex.create () and cv = Condition.create () in
  let released = ref false in
  let gate () =
    Mutex.lock m;
    while not !released do
      Condition.wait cv m
    done;
    Mutex.unlock m
  in
  let sched =
    Scheduler.create ~workers:1 ~queue_depth:2
      ~run:(fun n ->
        if n < 0 then gate ();
        n)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Scheduler.drain sched)
    (fun () ->
      let t1 =
        match Scheduler.submit sched (-1) with
        | Ok t -> t
        | Error _ -> Alcotest.fail "first admit refused"
      in
      let t2 =
        match Scheduler.submit sched (-2) with
        | Ok t -> t
        | Error _ -> Alcotest.fail "second admit refused"
      in
      (* in-flight = depth: the next submission must shed, structurally *)
      (match Scheduler.submit sched 3 with
      | Error (Scheduler.Overloaded { ov_pending = 2; ov_depth = 2 }) -> ()
      | Ok _ -> Alcotest.fail "overflow admitted"
      | Error _ -> Alcotest.fail "expected Overloaded");
      Mutex.lock m;
      released := true;
      Condition.broadcast cv;
      Mutex.unlock m;
      (match (Scheduler.await sched t1, Scheduler.await sched t2) with
      | Scheduler.Done -1, Scheduler.Done -2 -> ()
      | _ -> Alcotest.fail "gated jobs lost");
      let c = Scheduler.counters sched in
      Alcotest.(check int) "one shed" 1 c.Scheduler.k_shed;
      Alcotest.(check int) "sheds are not submissions" 2 c.Scheduler.k_submitted)

let test_scheduler_deadline () =
  let deadline_of n = if n < 0 then Some 0.005 else None in
  let run n =
    if n < 0 then
      let rec spin () : int =
        Watchdog.check ();
        spin ()
      in
      spin ()
    else n * 2
  in
  let sched = Scheduler.create ~workers:1 ~deadline_of ~run () in
  Fun.protect
    ~finally:(fun () -> Scheduler.drain sched)
    (fun () ->
      (match Scheduler.run_sync sched (-1) with
      | Scheduler.Timed_out { to_deadline_s; to_spent_s } ->
        Alcotest.(check (float 1e-9)) "deadline echoed" 0.005 to_deadline_s;
        Alcotest.(check bool) "spent at least the budget" true
          (to_spent_s >= 0.005)
      | _ -> Alcotest.fail "expected Timed_out");
      (* the expiry did not poison the worker domain *)
      (match Scheduler.run_sync sched 21 with
      | Scheduler.Done 42 -> ()
      | _ -> Alcotest.fail "pool wedged after a timeout");
      let c = Scheduler.counters sched in
      Alcotest.(check int) "one timeout" 1 c.Scheduler.k_timed_out)

let test_scheduler_drain_refuses () =
  let sched = Scheduler.create ~workers:1 ~run:(fun n -> n) () in
  (match Scheduler.run_sync sched 1 with
  | Scheduler.Done 1 -> ()
  | _ -> Alcotest.fail "warm-up job failed");
  Scheduler.drain sched;
  Scheduler.drain sched;
  (* idempotent *)
  match Scheduler.submit sched 2 with
  | Error Scheduler.Draining -> ()
  | Ok _ -> Alcotest.fail "drained scheduler admitted a job"
  | Error _ -> Alcotest.fail "expected Draining"

(* ---- end-to-end byte identity ------------------------------------------ *)

let test_served_byte_identity () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ()) "chfc-test-serve.sock"
  in
  let srv =
    Trips_serve.Server.start ~workers:1 ~quiet:true ~socket ()
  in
  let served =
    Trips_serve.Client.with_conn ~socket (fun c ->
        Trips_serve.Client.rpc c
          (P.Compile { spec with P.cs_workload = "vadd" }))
  in
  let stats =
    Trips_serve.Client.with_conn ~socket (fun c ->
        Trips_serve.Client.rpc c P.Stats)
  in
  Trips_serve.Client.with_conn ~socket (fun c ->
      Trips_serve.Client.rpc c P.Shutdown);
  Trips_serve.Server.wait srv;
  let oneshot =
    match Trips_workloads.Micro.by_name "vadd" with
    | None -> Alcotest.fail "workload vadd missing"
    | Some w -> (
      match
        Trips_serve.Worker.compile_report ~ordering:Chf.Phases.Iupo_merged
          ~config:Chf.Policy.edge_default ~backend:true ~verify:false w
      with
      | Ok (_, text) -> text
      | Error m -> Alcotest.fail ("one-shot compile failed: " ^ m))
  in
  (match served with
  | Ok text ->
    Alcotest.(check string) "served = one-shot, byte for byte" oneshot text
  | Error _ -> Alcotest.fail "served compile failed");
  Alcotest.(check int) "daemon answered with its protocol version" P.version
    stats.P.st_version;
  Alcotest.(check bool) "the compile was counted" true
    (stats.P.st_completed >= 1)

(* ---- resident pool vs legacy spawn-per-call map ------------------------ *)

let with_hatch name k =
  Unix.putenv name "1";
  Fun.protect ~finally:(fun () -> Unix.putenv name "") k

let normalize rs =
  List.map
    (function Ok v -> Ok v | Error e -> Error (Printexc.to_string e))
    rs

let pool_equivalence_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"Engine.map: resident pool = legacy spawn-per-call (slots, errors)"
       ~count:40
       QCheck2.Gen.(list_size (int_bound 24) (int_bound 1000))
       (fun xs ->
         let f x = if x mod 7 = 0 then failwith "seven" else (x * x) + 1 in
         let fast = normalize (Engine.map ~jobs:4 f xs) in
         let legacy =
           with_hatch "TRIPS_NO_RESIDENT_POOL" (fun () ->
               normalize (Engine.map ~jobs:4 f xs))
         in
         fast = legacy))

let suite =
  ( "serve",
    [
      Alcotest.test_case "protocol: request wire round-trip" `Quick
        test_request_round_trip;
      Alcotest.test_case "protocol: reply wire round-trip" `Quick
        test_reply_round_trip;
      Alcotest.test_case "protocol: version skew is a structured error" `Quick
        test_version_mismatch;
      Alcotest.test_case "protocol: bad magic is a structured error" `Quick
        test_bad_magic;
      Alcotest.test_case "protocol: reply shape checked against the session type"
        `Quick test_session_type_enforced;
      Alcotest.test_case "store: hit/miss/eviction counters" `Quick
        test_store_counters;
      Alcotest.test_case "store: LRU eviction respects recency" `Quick
        test_store_lru_eviction;
      Alcotest.test_case "store: (src, stage, config) triple addresses" `Quick
        test_store_key_separation;
      Alcotest.test_case "store: concurrent find_or_add is consistent" `Quick
        test_store_concurrent;
      Alcotest.test_case "scheduler: concurrent submits, deterministic answers"
        `Quick test_scheduler_concurrent_determinism;
      Alcotest.test_case "scheduler: a crash is confined to its job" `Quick
        test_scheduler_crash_isolation;
      Alcotest.test_case "scheduler: overflow sheds with Overloaded" `Quick
        test_scheduler_sheds_overflow;
      Alcotest.test_case "scheduler: deadline expiry does not wedge the pool"
        `Quick test_scheduler_deadline;
      Alcotest.test_case "scheduler: drain refuses new work, idempotently"
        `Quick test_scheduler_drain_refuses;
      Alcotest.test_case "serve: socket round-trip is byte-identical" `Quick
        test_served_byte_identity;
      pool_equivalence_prop;
    ] )
