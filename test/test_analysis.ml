(* Tests for the CFG analyses: orders, dominators (cross-checked against a
   naive set-based solver on random CFGs), natural loops, refined liveness
   and guard implication. *)

open Trips_ir
open Trips_analysis

let check = Alcotest.check

(* ---- a naive dominator solver for cross-checking ---------------------- *)

(* dom(entry) = {entry}; dom(b) = {b} ∪ ⋂ dom(pred). *)
let naive_dominators cfg =
  let ids = Order.postorder cfg in
  let all = IntSet.of_list_fold ids in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun id ->
      Hashtbl.replace dom id
        (if id = cfg.Cfg.entry then IntSet.singleton id else all))
    ids;
  let preds = Cfg.predecessor_map cfg in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        if id <> cfg.Cfg.entry then begin
          let ps =
            IntSet.elements (IntMap.find_or ~default:IntSet.empty id preds)
          in
          let ps = List.filter (fun p -> IntSet.mem p all) ps in
          let inter =
            match ps with
            | [] -> IntSet.singleton id
            | first :: rest ->
              List.fold_left
                (fun acc p -> IntSet.inter acc (Hashtbl.find dom p))
                (Hashtbl.find dom first) rest
          in
          let now = IntSet.add id inter in
          if not (IntSet.equal now (Hashtbl.find dom id)) then begin
            Hashtbl.replace dom id now;
            changed := true
          end
        end)
      ids
  done;
  dom

let dominators_match_naive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"CHK dominators match naive solver" ~count:150
       Generators.random_cfg_gen (fun spec ->
         let cfg = Generators.build_random_cfg spec in
         let dom = Dominators.compute cfg in
         let naive = naive_dominators cfg in
         let ids = Order.postorder cfg in
         List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 Dominators.dominates dom a b
                 = IntSet.mem a (Hashtbl.find naive b))
               ids)
           ids))

let idom_is_dominator =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"idom strictly dominates" ~count:150
       Generators.random_cfg_gen (fun spec ->
         let cfg = Generators.build_random_cfg spec in
         let dom = Dominators.compute cfg in
         List.for_all
           (fun b ->
             match Dominators.idom dom b with
             | None -> b = cfg.Cfg.entry
             | Some p -> p <> b && Dominators.dominates dom p b)
           (Order.postorder cfg)))

let tree_preorder_complete =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"dominator-tree preorder covers reachable blocks"
       ~count:100 Generators.random_cfg_gen (fun spec ->
         let cfg = Generators.build_random_cfg spec in
         let dom = Dominators.compute cfg in
         let pre = Dominators.tree_preorder dom in
         List.sort compare pre = List.sort compare (Order.postorder cfg)))

(* ---- orders ------------------------------------------------------------ *)

let rpo_respects_edges =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"entry is first in reverse postorder" ~count:100
       Generators.random_cfg_gen (fun spec ->
         let cfg = Generators.build_random_cfg spec in
         match Order.reverse_postorder cfg with
         | first :: _ -> first = cfg.Cfg.entry
         | [] -> false))

let test_prune_unreachable () =
  let cfg = Cfg.create () in
  let a = Cfg.fresh_block_id cfg in
  let dead = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- a;
  let ret = [ { Block.eguard = None; target = Block.Ret None } ] in
  Cfg.set_block cfg (Block.make a [] ret);
  Cfg.set_block cfg (Block.make dead [] ret);
  Order.prune_unreachable cfg;
  check Alcotest.bool "dead block removed" false (Cfg.mem cfg dead);
  check Alcotest.bool "entry kept" true (Cfg.mem cfg a)

(* ---- loops ------------------------------------------------------------- *)

let loop_program =
  let open Trips_lang.Ast in
  {
    prog_name = "nest";
    params = [];
    body =
      [
        "acc" <-- i 0;
        for_ "x" (i 0) (i 4)
          [ for_ "y" (i 0) (i 3) [ "acc" <-- (v "acc" + v "y") ] ];
        Return (Some (v "acc"));
      ];
  }

let test_loop_nest () =
  let cfg, _ = Trips_lang.Lower.lower loop_program in
  let loops = Loops.compute cfg in
  let all = Loops.all_loops loops in
  check Alcotest.int "two loops" 2 (List.length all);
  let outer = List.find (fun l -> l.Loops.depth = 1) all in
  let inner = List.find (fun l -> l.Loops.depth = 2) all in
  check Alcotest.bool "inner nested in outer" true
    (IntSet.subset inner.Loops.body outer.Loops.body);
  check Alcotest.bool "inner header inside outer body" true
    (IntSet.mem inner.Loops.header outer.Loops.body);
  check Alcotest.bool "back edge detected" true
    (IntSet.exists
       (fun l -> Loops.is_back_edge loops ~src:l ~dst:inner.Loops.header)
       inner.Loops.latches)

let headers_dominate_bodies =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"loop headers dominate their bodies" ~count:150
       Generators.random_cfg_gen (fun spec ->
         let cfg = Generators.build_random_cfg spec in
         let dom = Dominators.compute cfg in
         let loops = Loops.compute cfg in
         List.for_all
           (fun l ->
             IntSet.for_all
               (fun b -> Dominators.dominates dom l.Loops.header b)
               l.Loops.body)
           (Loops.all_loops loops)))

let loop_exits_leave_body =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"loop exits lead outside the body" ~count:150
       Generators.random_cfg_gen (fun spec ->
         let cfg = Generators.build_random_cfg spec in
         let loops = Loops.compute cfg in
         List.for_all
           (fun l ->
             List.for_all
               (fun (src, dst) ->
                 IntSet.mem src l.Loops.body && not (IntSet.mem dst l.Loops.body))
               l.Loops.exits)
           (Loops.all_loops loops)))

(* ---- guard logic ------------------------------------------------------- *)

let test_guard_implication () =
  let cfg = Cfg.create () in
  let gi op = Cfg.instr cfg op in
  let instrs =
    [
      gi (Instr.Cmp (Opcode.Lt, 10, Instr.Reg 1, Instr.Imm 5));
      gi (Instr.Cmp (Opcode.Eq, 11, Instr.Reg 2, Instr.Imm 0));
      gi (Instr.Binop (Opcode.And, 12, Instr.Reg 10, Instr.Reg 11));
      gi (Instr.Binop (Opcode.And, 13, Instr.Reg 12, Instr.Reg 14));
    ]
  in
  let defs = Guard_logic.build_defs instrs in
  let g r = { Instr.greg = r; sense = true } in
  check Alcotest.bool "reflexive" true (Guard_logic.implies defs (g 10) (g 10));
  check Alcotest.bool "and implies operand" true
    (Guard_logic.implies defs (g 12) (g 10));
  check Alcotest.bool "nested and implies grand-operand" true
    (Guard_logic.implies defs (g 13) (g 11));
  check Alcotest.bool "operand does not imply and" false
    (Guard_logic.implies defs (g 10) (g 12));
  check Alcotest.bool "negative sense only matches exactly" false
    (Guard_logic.implies defs { Instr.greg = 12; sense = false } (g 10))

let test_guard_logic_multidef () =
  let cfg = Cfg.create () in
  let instrs =
    [
      Cfg.instr cfg (Instr.Binop (Opcode.And, 12, Instr.Reg 10, Instr.Reg 11));
      Cfg.instr cfg (Instr.Binop (Opcode.And, 12, Instr.Reg 20, Instr.Reg 21));
    ]
  in
  let defs = Guard_logic.build_defs instrs in
  let g r = { Instr.greg = r; sense = true } in
  check Alcotest.bool "multiply-defined guard is opaque" false
    (Guard_logic.implies defs (g 12) (g 10))

(* ---- liveness ---------------------------------------------------------- *)

let test_liveness_basic () =
  let cfg, _ = Trips_lang.Lower.lower loop_program in
  let live = Liveness.compute cfg in
  (* the loop header must keep the accumulator alive around the back edge *)
  let loops = Loops.compute cfg in
  let outer = List.find (fun l -> l.Loops.depth = 1) (Loops.all_loops loops) in
  check Alcotest.bool "something is live around the outer loop" true
    (not (IntSet.is_empty (Liveness.live_in live outer.Loops.header)))

let test_refined_liveness_soft () =
  (* A guarded definition of a temp whose only later use is under the
     same guard must NOT be live-in when nothing downstream reads it. *)
  let cfg = Cfg.create () in
  let b0 = Cfg.fresh_block_id cfg in
  let b1 = Cfg.fresh_block_id cfg in
  cfg.Cfg.entry <- b0;
  let g = { Instr.greg = 1; sense = true } in
  let instrs =
    [
      Cfg.instr cfg (Instr.Cmp (Opcode.Lt, 1, Instr.Reg 2, Instr.Imm 5));
      Cfg.instr ~guard:g cfg (Instr.Mov (10, Instr.Imm 7));
      Cfg.instr ~guard:g cfg (Instr.Binop (Opcode.Add, 3, Instr.Reg 3, Instr.Reg 10));
    ]
  in
  Cfg.set_block cfg
    (Block.make b0 instrs
       [
         { Block.eguard = Some g; target = Block.Goto b0 };
         { Block.eguard = Some { g with Instr.sense = false }; target = Block.Goto b1 };
       ]);
  Cfg.set_block cfg
    (Block.make b1
       [ Cfg.instr cfg (Instr.Store (Instr.Reg 3, Instr.Imm 0, 0)) ]
       [ { Block.eguard = None; target = Block.Ret None } ]);
  Cfg.validate cfg;
  let live = Liveness.compute cfg in
  check Alcotest.bool "temp r10 not live around self loop" false
    (IntSet.mem 10 (Liveness.live_in live b0));
  check Alcotest.bool "accumulator r3 live around self loop" true
    (IntSet.mem 3 (Liveness.live_in live b0));
  check Alcotest.bool "r3 is a block input" true
    (IntSet.mem 3 (Liveness.block_inputs (Cfg.block cfg b0)
                     ~live_out:(Liveness.live_out live b0)))

let test_hard_exposure_on_weak_guard () =
  (* A use under an unrelated guard after a guarded def exposes the
     register: the incoming value can be observed. *)
  let b =
    Block.make 0
      [
        Instr.make ~guard:{ Instr.greg = 1; sense = true } 0 (Instr.Mov (10, Instr.Imm 7));
        Instr.make ~guard:{ Instr.greg = 2; sense = true } 1
          (Instr.Binop (Opcode.Add, 11, Instr.Reg 10, Instr.Imm 1));
      ]
      [ { Block.eguard = None; target = Block.Ret None } ]
  in
  let gk = Liveness.gen_kill b in
  check Alcotest.bool "r10 hard-exposed" true (IntSet.mem 10 gk.Liveness.hard)

let liveness_upper_bounded_by_classic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"refined live-in is a subset of classic exposure closure"
       ~count:100 Generators.random_cfg_gen (fun spec ->
         let cfg = Generators.build_random_cfg spec in
         let live = Liveness.compute cfg in
         List.for_all
           (fun id ->
             let b = Cfg.block cfg id in
             let classic =
               IntSet.union
                 (Block.upward_exposed_uses b)
                 (Liveness.live_out live id)
             in
             IntSet.subset (Liveness.live_in live id) classic)
           (Order.postorder cfg)))

(* ---- incremental liveness ---------------------------------------------- *)

(* Random CFG, then a random sequence of edits shaped like the ones
   formation performs: body rewrites, exit retargets, spliced-in fresh
   blocks, and simple merges that delete the absorbed successor.  After
   every edit, [Liveness.update] seeded with the pre-edit solution must
   agree block-for-block with a fresh [compute] on the edited graph —
   the update is exact, not approximate. *)
let incremental_edit_gen =
  QCheck2.Gen.(
    let* spec = Generators.random_cfg_gen in
    let* edits = list_repeat 24 (int_bound 100_000) in
    return (spec, edits))

(* Applies one edit; returns the touched block ids ([] for a no-op). *)
let apply_random_edit cfg pick =
  let ids = Order.postorder cfg in
  let n = List.length ids in
  let k = List.nth ids (pick n) in
  let b = Cfg.block cfg k in
  let append_store () =
    let i =
      Cfg.instr cfg (Instr.Store (Instr.Reg (1 + pick 8), Instr.Imm 0, 0))
    in
    Cfg.set_block cfg { b with Block.instrs = b.Block.instrs @ [ i ] };
    [ k ]
  in
  match pick 5 with
  | 0 -> append_store ()
  | 1 ->
    (* an unconditional definition kills the register at the block top *)
    let i = Cfg.instr cfg (Instr.Mov (1 + pick 8, Instr.Imm 3)) in
    Cfg.set_block cfg { b with Block.instrs = i :: b.Block.instrs };
    [ k ]
  | 2 ->
    (* retarget the first Goto exit to another existing block (may
       orphan blocks — update must not care about unreachable ones) *)
    let tgt = List.nth ids (pick n) in
    let replaced = ref false in
    let exits =
      List.map
        (fun e ->
          match e.Block.target with
          | Block.Goto _ when not !replaced ->
            replaced := true;
            { e with Block.target = Block.Goto tgt }
          | _ -> e)
        b.Block.exits
    in
    if !replaced then begin
      Cfg.set_block cfg { b with Block.exits };
      [ k ]
    end
    else []
  | 3 -> (
    (* splice a fresh empty forwarding block into the first Goto edge:
       exercises the added-block path *)
    let goto_tgt =
      List.find_map
        (fun e ->
          match e.Block.target with Block.Goto t -> Some t | _ -> None)
        b.Block.exits
    in
    match goto_tgt with
    | None -> []
    | Some t ->
      let nb = Cfg.fresh_block_id cfg in
      Cfg.set_block cfg
        (Block.make nb [] [ { Block.eguard = None; target = Block.Goto t } ]);
      let replaced = ref false in
      let exits =
        List.map
          (fun e ->
            match e.Block.target with
            | Block.Goto t' when t' = t && not !replaced ->
              replaced := true;
              { e with Block.target = Block.Goto nb }
            | _ -> e)
          b.Block.exits
      in
      Cfg.set_block cfg { b with Block.exits };
      [ k; nb ])
  | _ -> (
    (* simple merge: absorb a unique successor with a unique
       predecessor, deleting it — the removed-block path *)
    let preds = Cfg.predecessor_map cfg in
    let candidate =
      List.find_map
        (fun k ->
          let b = Cfg.block cfg k in
          match b.Block.exits with
          | [ { Block.eguard = None; target = Block.Goto t } ]
            when t <> k
                 && t <> cfg.Cfg.entry
                 && IntSet.equal
                      (IntMap.find_or ~default:IntSet.empty t preds)
                      (IntSet.singleton k) ->
            Some (k, t)
          | _ -> None)
        ids
    in
    match candidate with
    | None -> append_store ()
    | Some (k, t) ->
      let bk = Cfg.block cfg k and bt = Cfg.block cfg t in
      Cfg.set_block cfg
        {
          bk with
          Block.instrs = bk.Block.instrs @ bt.Block.instrs;
          exits = bt.Block.exits;
        };
      Cfg.remove_block cfg t;
      [ k; t ])

let incremental_liveness_matches_full =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"CHK incremental liveness update equals full recompute"
       ~count:120 incremental_edit_gen (fun (spec, edits) ->
         let cfg = Generators.build_random_cfg spec in
         let pick =
           let cells = ref edits in
           fun bound ->
             match !cells with
             | [] -> 0
             | c :: rest ->
               cells := rest;
               c mod bound
         in
         let cache = Liveness.gk_cache () in
         let live = ref (Liveness.compute ~cache cfg) in
         let ok = ref true in
         for _ = 1 to 5 do
           let touched = apply_random_edit cfg pick in
           live := Liveness.update ~cache !live cfg ~touched;
           let full = Liveness.compute cfg in
           ok :=
             !ok
             && List.for_all
                  (fun id ->
                    IntSet.equal (Liveness.live_in !live id)
                      (Liveness.live_in full id)
                    && IntSet.equal (Liveness.live_out !live id)
                         (Liveness.live_out full id))
                  (Order.postorder cfg)
         done;
         !ok))

let suite =
  ( "analysis",
    [
      dominators_match_naive;
      idom_is_dominator;
      tree_preorder_complete;
      rpo_respects_edges;
      Alcotest.test_case "prune unreachable" `Quick test_prune_unreachable;
      Alcotest.test_case "loop nest" `Quick test_loop_nest;
      headers_dominate_bodies;
      loop_exits_leave_body;
      Alcotest.test_case "guard implication" `Quick test_guard_implication;
      Alcotest.test_case "guard logic multidef" `Quick test_guard_logic_multidef;
      Alcotest.test_case "liveness basic" `Quick test_liveness_basic;
      Alcotest.test_case "refined liveness drops dead temps" `Quick
        test_refined_liveness_soft;
      Alcotest.test_case "weak guard exposes" `Quick test_hard_exposure_on_weak_guard;
      liveness_upper_bounded_by_classic;
      incremental_liveness_matches_full;
    ] )
