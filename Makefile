# Convenience targets; everything is plain dune underneath.

CHAOS_SEED ?= 42

.PHONY: all build test chaos trace-check equiv-check check bench \
	bench-formation bench-all clean

all: build

build:
	dune build

test: build
	dune runtest

# Fault-injection suite: every injected fault class must be detected.
chaos: build
	dune exec bin/chfc.exe -- chaos $(CHAOS_SEED) --workload sieve
	dune exec bin/chfc.exe -- chaos $(CHAOS_SEED) --workload gzip_1 --ordering upio

# Trace determinism: the formation decision log of a table-1 cell must be
# identical under -j 1 and -j 4 (two workloads, so -j 4 actually runs the
# parallel engine path).  Events are (cell, seq)-sorted on write, so a
# plain byte comparison is the determinism check.
trace-check: build
	dune exec bin/chfc.exe -- table1 -w sieve -w vadd -j 1 --trace _build/trace-j1.jsonl > /dev/null
	dune exec bin/chfc.exe -- table1 -w sieve -w vadd -j 4 --trace _build/trace-j4.jsonl > /dev/null
	cmp _build/trace-j1.jsonl _build/trace-j4.jsonl
	@echo "trace-check: event streams identical across -j 1 / -j 4"

# Fast-path equivalence: the formation suite includes the property test
# that formation with every TRIPS_NO_* escape hatch engaged produces
# byte-identical CFGs, stats and traces to the default fast paths.
equiv-check: build
	dune exec test/test_main.exe -- test formation

check: build test chaos trace-check equiv-check

# Full-sweep benchmark of the staged engine (writes BENCH_sweep.json).
bench: build
	dune exec bench/main.exe -- sweep

# Formation fast-path attribution: legacy path (hatches engaged) vs the
# pre-filter, incremental liveness, loop-forest reuse and indexed pool,
# with an identical-output assertion (writes BENCH_formation.json).
bench-formation: build
	dune exec bench/main.exe -- formation

# Every experiment: tables, figure, ablations, Bechamel micro-benchmarks.
bench-all: build
	dune exec bench/main.exe

clean:
	dune clean
