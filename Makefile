# Convenience targets; everything is plain dune underneath.

CHAOS_SEED ?= 42
FUZZ_SEED ?= 42

.PHONY: all build test chaos fuzz-smoke trace-check equiv-check report-check \
	serve-smoke telemetry-check bench-diff check bench bench-formation \
	bench-serve bench-sim bench-all clean

all: build

build:
	dune build

test: build
	dune runtest

# Fault-injection suite: every injected fault class must be detected.
chaos: build
	dune exec bin/chfc.exe -- chaos $(CHAOS_SEED) --workload sieve
	dune exec bin/chfc.exe -- chaos $(CHAOS_SEED) --workload gzip_1 --ordering upio

# Fuzz smoke: a fixed-seed ~200-case adversarial campaign (exits non-zero
# on any finding) plus a replay of the committed regression corpus, whose
# pass rate must be 100%.  The time budget keeps a pathological machine
# from wedging the gate; early-stopped campaigns still report.
fuzz-smoke: build
	dune exec bin/chfc.exe -- fuzz --seed $(FUZZ_SEED) --count 200 --time-budget 120
	dune exec bin/chfc.exe -- fuzz --replay test/corpus

# Trace determinism: the formation decision log of a table-1 cell must be
# identical under -j 1 and -j 4 (two workloads, so -j 4 actually runs the
# parallel engine path).  Events are (cell, seq)-sorted on write, so a
# plain byte comparison is the determinism check.
trace-check: build
	dune exec bin/chfc.exe -- table1 -w sieve -w vadd -j 1 --trace _build/trace-j1.jsonl > /dev/null
	dune exec bin/chfc.exe -- table1 -w sieve -w vadd -j 4 --trace _build/trace-j4.jsonl > /dev/null
	cmp _build/trace-j1.jsonl _build/trace-j4.jsonl
	@echo "trace-check: event streams identical across -j 1 / -j 4"

# Fast-path equivalence: the formation suite includes the property test
# that formation with every TRIPS_NO_* escape hatch engaged produces
# byte-identical CFGs, stats and traces to the default fast paths; the
# sim suite does the same for the cycle model's ring/memo fast paths
# (results, attribution rows and timing traces, all byte-compared).
# The second formation run repeats the suite with the trial cache and
# speculation hatched off, so the oracle side of every equivalence
# property is itself exercised both ways.
equiv-check: build
	dune exec test/test_main.exe -- test formation
	TRIPS_NO_TRIAL_CACHE=1 TRIPS_NO_SPEC_TRIALS=1 \
		dune exec test/test_main.exe -- test formation
	dune exec test/test_main.exe -- test sim

# Report determinism: the per-block utilization report on two fixed
# workloads must be byte-identical under -j 1 and -j 4 (the cycle model
# has no wall clock, so the golden is machine-independent too).
report-check: build
	dune exec bin/chfc.exe -- report -w sieve -w gzip_1 -j 1 --out _build/report-j1.txt
	dune exec bin/chfc.exe -- report -w sieve -w gzip_1 -j 4 --out _build/report-j4.txt
	cmp _build/report-j1.txt _build/report-j4.txt
	cmp _build/report-j1.txt test/golden/report_check.txt
	@echo "report-check: reports identical across -j 1 / -j 4 and match the golden"

# End-to-end gate for the resident compile service: boots a daemon on a
# private socket, replays good / chaos-poisoned / past-deadline requests
# over real connections, byte-compares a served compile against the
# one-shot pipeline, checks the stats accounting, and asserts a clean
# drain-and-unlink shutdown.
serve-smoke: build
	dune exec tools/serve_smoke.exe

# Request-scoped telemetry gate: boots a daemon, drives a deterministic
# request mix, byte-compares the Prometheus exposition against the
# committed golden (volatile floats masked; integers are structural),
# replays one request's span tree from the daemon ring asserting
# well-formedness, and checks served replies stay byte-identical to the
# one-shot pipeline both with telemetry collecting and under
# TRIPS_NO_REQ_TELEMETRY.  Regenerate the golden with --write-golden.
telemetry-check: build
	dune exec tools/telemetry_check.exe

# Fresh formation + serve benches vs the committed BENCH_*.json
# baselines.  Warn-only: wall clocks vary across machines; counters that
# collapse to zero or outputs that diverge are called out.  The fresh
# runs write to _build/bench so the committed baselines are never
# clobbered.
bench-diff: build
	mkdir -p _build/bench
	TRIPS_BENCH_DIR=_build/bench dune exec bench/main.exe -- formation > /dev/null
	dune exec tools/bench_diff.exe -- BENCH_formation.json _build/bench/BENCH_formation.json
	TRIPS_BENCH_DIR=_build/bench dune exec bench/main.exe -- serve > /dev/null
	dune exec tools/bench_diff.exe -- BENCH_serve.json _build/bench/BENCH_serve.json
	TRIPS_BENCH_DIR=_build/bench dune exec bench/main.exe -- sim > /dev/null
	dune exec tools/bench_diff.exe -- BENCH_sim.json _build/bench/BENCH_sim.json

check: build test chaos fuzz-smoke trace-check equiv-check report-check \
	serve-smoke telemetry-check bench-diff

# Full-sweep benchmark of the staged engine (writes BENCH_sweep.json).
bench: build
	dune exec bench/main.exe -- sweep

# Formation fast-path attribution: legacy path (hatches engaged) vs the
# pre-filter, incremental liveness, loop-forest reuse and indexed pool,
# plus jobs-sensitivity rows (speculative trials at -j1/-j2/-j4, K=4)
# with an identical-output assertion across every configuration (writes
# BENCH_formation.json, including the runtime-measured core count).
bench-formation: build
	dune exec bench/main.exe -- formation

# Resident-service load test: boots a daemon, replays hundreds of
# concurrent requests from persistent client connections, and records
# throughput, latency quantiles, store hit rates and shed/timeout/crash
# accounting (writes BENCH_serve.json).
bench-serve: build
	dune exec bench/main.exe -- serve

# Cycle-model fast-path attribution: legacy per-cycle hashtable path vs
# the ring issue core, the timing memo and sampled simulation, with a
# byte-identity assertion across every exact configuration and a
# measured error bound for the sampled one (writes BENCH_sim.json).
bench-sim: build
	dune exec bench/main.exe -- sim

# Every experiment: tables, figure, ablations, Bechamel micro-benchmarks.
bench-all: build
	dune exec bench/main.exe

clean:
	dune clean
