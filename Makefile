# Convenience targets; everything is plain dune underneath.

CHAOS_SEED ?= 42

.PHONY: all build test chaos check bench clean

all: build

build:
	dune build

test: build
	dune runtest

# Fault-injection suite: every injected fault class must be detected.
chaos: build
	dune exec bin/chfc.exe -- chaos $(CHAOS_SEED) --workload sieve
	dune exec bin/chfc.exe -- chaos $(CHAOS_SEED) --workload gzip_1 --ordering upio

check: build test chaos

bench: build
	dune exec bench/main.exe

clean:
	dune clean
