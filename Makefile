# Convenience targets; everything is plain dune underneath.

CHAOS_SEED ?= 42

.PHONY: all build test chaos check bench bench-all clean

all: build

build:
	dune build

test: build
	dune runtest

# Fault-injection suite: every injected fault class must be detected.
chaos: build
	dune exec bin/chfc.exe -- chaos $(CHAOS_SEED) --workload sieve
	dune exec bin/chfc.exe -- chaos $(CHAOS_SEED) --workload gzip_1 --ordering upio

check: build test chaos

# Full-sweep benchmark of the staged engine (writes BENCH_sweep.json).
bench: build
	dune exec bench/main.exe -- sweep

# Every experiment: tables, figure, ablations, Bechamel micro-benchmarks.
bench-all: build
	dune exec bench/main.exe

clean:
	dune clean
