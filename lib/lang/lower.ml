(* Lowering from the mini-language AST to the RISC-like CFG.

   Every conditional branch condition is normalized to a 0/1 register, so
   exit guards always read boolean values — the invariant the predicate
   negation (xor 1) in if-conversion relies on.  [For] loops hoist their
   bound into a hidden temporary evaluated once; the loop itself lowers to
   the same test-at-top shape as [While], which is what lets CFG-level
   unrolling treat them uniformly. *)

open Trips_ir

type env = {
  b : Builder.t;
  vars : (string, int) Hashtbl.t;
  mutable temp_counter : int;
}

let reg_of env x =
  match Hashtbl.find_opt env.vars x with
  | Some r -> r
  | None ->
    let r = Builder.fresh_reg env.b in
    Hashtbl.add env.vars x r;
    r

let fresh_temp_name env =
  env.temp_counter <- env.temp_counter + 1;
  Fmt.str "$t%d" env.temp_counter

(* Does this expression always evaluate to 0 or 1? *)
let rec is_boolean = function
  | Ast.Cmp _ | Ast.Not _ | Ast.And _ | Ast.Or _ -> true
  | Ast.Int (0 | 1) -> true
  | Ast.Int _ | Ast.Var _ | Ast.Load _ | Ast.Binop _ | Ast.Call _ -> false

and lower_expr env (e : Ast.expr) : Instr.operand =
  match e with
  | Ast.Int n -> Instr.Imm n
  | Ast.Var x -> Instr.Reg (reg_of env x)
  | Ast.Load a ->
    let addr = lower_expr env a in
    Instr.Reg (Builder.emit_value env.b (fun d -> Instr.Load (d, addr, 0)))
  | Ast.Binop (op, a, b) ->
    let a = lower_expr env a in
    let b = lower_expr env b in
    Instr.Reg (Builder.emit_value env.b (fun d -> Instr.Binop (op, d, a, b)))
  | Ast.Cmp (op, a, b) ->
    let a = lower_expr env a in
    let b = lower_expr env b in
    Instr.Reg (Builder.emit_value env.b (fun d -> Instr.Cmp (op, d, a, b)))
  | Ast.Not a ->
    let a = lower_expr env a in
    Instr.Reg
      (Builder.emit_value env.b (fun d -> Instr.Cmp (Opcode.Eq, d, a, Instr.Imm 0)))
  | Ast.And (a, b) ->
    let a = lower_bool env a in
    let b = lower_bool env b in
    Instr.Reg
      (Builder.emit_value env.b (fun d -> Instr.Binop (Opcode.And, d, a, b)))
  | Ast.Or (a, b) ->
    let a = lower_bool env a in
    let b = lower_bool env b in
    Instr.Reg
      (Builder.emit_value env.b (fun d -> Instr.Binop (Opcode.Or, d, a, b)))
  | Ast.Call (f, _) ->
    (* the front-end inliner must run first (Figure 6: inlining precedes
       everything); reaching here is a pipeline mistake *)
    Fmt.invalid_arg "Lower: unresolved call to %s (run Inline.program_of_unit)" f

(* Lower to an operand guaranteed to hold 0 or 1. *)
and lower_bool env e : Instr.operand =
  let v = lower_expr env e in
  if is_boolean e then v
  else
    Instr.Reg
      (Builder.emit_value env.b (fun d -> Instr.Cmp (Opcode.Ne, d, v, Instr.Imm 0)))

(* Lower a branch condition into a register holding 0 or 1. *)
let lower_cond env e : int =
  match lower_bool env e with
  | Instr.Reg r -> r
  | Instr.Imm n ->
    (* constant condition: still needs a register for the exit guard *)
    Builder.emit_value env.b (fun d ->
        Instr.Mov (d, Instr.Imm (if n <> 0 then 1 else 0)))

(* [lower_stmts env breaks stmts] lowers into the currently open block and
   returns [true] when control can fall through to whatever follows. *)
let rec lower_stmts env breaks (stmts : Ast.stmt list) : bool =
  match stmts with
  | [] -> true
  | s :: rest ->
    if lower_stmt env breaks s then lower_stmts env breaks rest else false

and lower_stmt env breaks (s : Ast.stmt) : bool =
  match s with
  | Ast.Assign (x, e) ->
    let v = lower_expr env e in
    let r = reg_of env x in
    Builder.emit env.b (Instr.Mov (r, v));
    true
  | Ast.Store (a, e) ->
    let addr = lower_expr env a in
    let v = lower_expr env e in
    Builder.emit env.b (Instr.Store (v, addr, 0));
    true
  | Ast.Return e ->
    let v = Option.map (lower_expr env) e in
    Builder.ret ?value:v env.b;
    false
  | Ast.Break -> (
    match breaks with
    | [] -> invalid_arg "Lower: break outside a loop"
    | target :: _ ->
      Builder.jump env.b target;
      false)
  | Ast.If (c, then_s, []) ->
    let cond = lower_cond env c in
    let then_id = Builder.reserve env.b in
    let join_id = Builder.reserve env.b in
    Builder.branch env.b cond ~if_true:then_id ~if_false:join_id;
    ignore (Builder.start_block ~id:then_id env.b);
    if lower_stmts env breaks then_s then Builder.jump env.b join_id;
    ignore (Builder.start_block ~id:join_id env.b);
    true
  | Ast.If (c, then_s, else_s) ->
    let cond = lower_cond env c in
    let then_id = Builder.reserve env.b in
    let else_id = Builder.reserve env.b in
    let join_id = Builder.reserve env.b in
    Builder.branch env.b cond ~if_true:then_id ~if_false:else_id;
    ignore (Builder.start_block ~id:then_id env.b);
    let then_falls = lower_stmts env breaks then_s in
    if then_falls then Builder.jump env.b join_id;
    ignore (Builder.start_block ~id:else_id env.b);
    let else_falls = lower_stmts env breaks else_s in
    if else_falls then Builder.jump env.b join_id;
    if then_falls || else_falls then begin
      ignore (Builder.start_block ~id:join_id env.b);
      true
    end
    else false
  | Ast.While (c, body) ->
    let header = Builder.reserve env.b in
    let body_id = Builder.reserve env.b in
    let exit_id = Builder.reserve env.b in
    Builder.jump env.b header;
    ignore (Builder.start_block ~id:header env.b);
    let cond = lower_cond env c in
    Builder.branch env.b cond ~if_true:body_id ~if_false:exit_id;
    ignore (Builder.start_block ~id:body_id env.b);
    if lower_stmts env (exit_id :: breaks) body then Builder.jump env.b header;
    ignore (Builder.start_block ~id:exit_id env.b);
    true
  | Ast.DoWhile (body, c) ->
    let body_id = Builder.reserve env.b in
    let exit_id = Builder.reserve env.b in
    Builder.jump env.b body_id;
    ignore (Builder.start_block ~id:body_id env.b);
    let falls = lower_stmts env (exit_id :: breaks) body in
    if falls then begin
      let cond = lower_cond env c in
      Builder.branch env.b cond ~if_true:body_id ~if_false:exit_id
    end;
    if falls || List.exists Ast.stmt_contains_break body then begin
      ignore (Builder.start_block ~id:exit_id env.b);
      true
    end
    else false
  | Ast.For { var; lo; hi; step; body } ->
    (* Hoist the bound, then reuse the While shape. *)
    let bound = fresh_temp_name env in
    let desugared =
      [
        Ast.Assign (var, lo);
        Ast.Assign (bound, hi);
        Ast.While
          ( Ast.Cmp (Opcode.Lt, Ast.Var var, Ast.Var bound),
            body
            @ [ Ast.Assign (var, Ast.Binop (Opcode.Add, Ast.Var var, Ast.Int step)) ]
          );
      ]
    in
    lower_stmts env breaks desugared

(** Lower a program.  Returns the CFG and the registers assigned to the
    program's parameters (callers initialize them via the simulator). *)
let lower (p : Ast.program) : Cfg.t * (string * int) list =
  let b = Builder.create ~name:p.Ast.prog_name () in
  let env = { b; vars = Hashtbl.create 16; temp_counter = 0 } in
  let param_regs = List.map (fun x -> (x, reg_of env x)) p.Ast.params in
  let entry = Builder.start_block b in
  Builder.set_entry b entry;
  if lower_stmts env [] p.Ast.body then Builder.ret b;
  let cfg = Builder.cfg b in
  Cfg.validate cfg;
  if Lineage.enabled () then Cfg.stamp_origins cfg;
  (cfg, param_regs)
