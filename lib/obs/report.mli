(** Per-function / per-block utilization reports ([chfc report]).

    The presentation half of the provenance layer: the harness hands
    this module plain data rows (block sizes, dynamic fetch/fire
    counts, cycle shares, flushes, per-lineage-class breakdowns and the
    formation decisions that built each block); rendering mirrors the
    axes of the paper's Tables 2-3 — %% of 128-slot capacity used,
    useful-instruction ratio, duplication-origin work executed vs
    wasted, and the top-10 worst blocks.

    Deterministic by construction: the cycle model has no wall clock,
    rows arrive sorted, formats are fixed — so reports are
    byte-identical across machines and [--jobs] settings. *)

type class_count = { cls : string; cc_fetched : int; cc_fired : int }

type block_row = {
  block : int;  (** block id in the final CFG *)
  static_size : int;  (** static instruction count *)
  execs : int;  (** dynamic block instances *)
  fetched : int;  (** dynamic instruction slots mapped *)
  fired : int;  (** slots that actually executed *)
  cycles : int;  (** share of the function's total cycles *)
  flushes : int;
  classes : class_count list;  (** sorted by class name *)
  decisions : string list;  (** formation decisions, chronological *)
}

type func_report = {
  fn : string;  (** workload name *)
  capacity : int;  (** machine slot capacity (128) *)
  total_cycles : int;
  blocks : block_row list;  (** sorted by block id *)
}

val pct : int -> int -> float
(** [pct part whole] as a percentage; 0 when [whole] is 0. *)

val dup_counts : block_row -> int * int
(** (fetched, fired) slots placed by tail duplication, unrolling or
    peeling. *)

val wasted : block_row -> int
(** Predicated-off slots: fetched but never fired. *)

val worst : ?n:int -> func_report list -> (string * block_row) list
(** The [n] (default 10) blocks with the most wasted slots across all
    functions, with a total tie-break order. *)

val render : Format.formatter -> func_report list -> unit
(** Deterministic text tables, one per function, plus the worst-blocks
    ranking. *)

val to_json : func_report list -> string
(** Deterministic JSON with fixed field order. *)
