(* Named-counter / histogram registry.  One global mutex guards both
   tables; every operation is a handful of hashtable accesses, and
   publishers bump per-run aggregates (not per-instruction events), so
   contention is negligible even under -j N sweeps.  Histograms keep
   their full sample multiset (per-run aggregates: dozens of samples,
   not millions), so snapshot-time quantiles are exact and — being a
   property of the multiset — independent of how the observing domains
   interleaved. *)

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}

(* live accumulation state behind a [histogram]; samples in reversed
   observation order *)
type agg = {
  mutable a_count : int;
  mutable a_sum : float;
  mutable a_min : float;
  mutable a_max : float;
  mutable a_samples : float list;
}

let mutex = Mutex.create ()
let counter_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let gauge_tbl : (string, float) Hashtbl.t = Hashtbl.create 16
let histo_tbl : (string, agg) Hashtbl.t = Hashtbl.create 16

(* Capture mode diverts a thunk's counter increments into a domain-local
   table instead of the global registry; [apply] adds the deltas back
   later.  Counters are commutative sums, so capture-then-apply is
   indistinguishable from inline increments — formation's speculative
   trials use this so a cancelled trial's counts never leak and a
   harvested one lands exactly once.  Histogram [observe]s stay global
   (they record real work done, wherever it ran). *)
type deltas = (string * int) list

let capture_key : (string, int) Hashtbl.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let capture f =
  let slot = Domain.DLS.get capture_key in
  let saved = !slot in
  let tbl = Hashtbl.create 16 in
  slot := Some tbl;
  let v = Fun.protect ~finally:(fun () -> slot := saved) f in
  let ds =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (v, ds)

let incr ?(by = 1) name =
  match !(Domain.DLS.get capture_key) with
  | Some tbl ->
    let v = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
    Hashtbl.replace tbl name (v + by)
  | None ->
    (* captured deltas reach the collector when [apply]ed, so the
       notification lives on the uncaptured path only — a trial's counts
       land in the owning request exactly once, like everywhere else *)
    if Telemetry.active () then Telemetry.count ~by name;
    Mutex.protect mutex (fun () ->
        let v = Option.value ~default:0 (Hashtbl.find_opt counter_tbl name) in
        Hashtbl.replace counter_tbl name (v + by))

let set_gauge name v =
  Mutex.protect mutex (fun () -> Hashtbl.replace gauge_tbl name v)

let add_gauge name dv =
  Mutex.protect mutex (fun () ->
      let v = Option.value ~default:0.0 (Hashtbl.find_opt gauge_tbl name) in
      Hashtbl.replace gauge_tbl name (v +. dv))

let apply ds = List.iter (fun (name, by) -> incr ~by name) ds

let observe name x =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt histo_tbl name with
      | None ->
        Hashtbl.replace histo_tbl name
          { a_count = 1; a_sum = x; a_min = x; a_max = x; a_samples = [ x ] }
      | Some a ->
        a.a_count <- a.a_count + 1;
        a.a_sum <- a.a_sum +. x;
        a.a_min <- Float.min a.a_min x;
        a.a_max <- Float.max a.a_max x;
        a.a_samples <- x :: a.a_samples)

let reset () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset counter_tbl;
      Hashtbl.reset gauge_tbl;
      Hashtbl.reset histo_tbl)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Exact nearest-rank quantile over the ascending-sorted samples. *)
let quantile_of_sorted sorted n q =
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    List.nth sorted (rank - 1)
  end

let snapshot () =
  Mutex.protect mutex (fun () ->
      let histograms =
        sorted_bindings histo_tbl
        |> List.map (fun (name, a) ->
               let sorted = List.sort compare a.a_samples in
               let q p = quantile_of_sorted sorted a.a_count p in
               ( name,
                 {
                   h_count = a.a_count;
                   h_sum = a.a_sum;
                   h_min = a.a_min;
                   h_max = a.a_max;
                   h_p50 = q 0.5;
                   h_p90 = q 0.9;
                   h_p99 = q 0.99;
                 } ))
      in
      {
        counters = sorted_bindings counter_tbl;
        gauges = sorted_bindings gauge_tbl;
        histograms;
      })

let counter_value s name =
  Option.value ~default:0 (List.assoc_opt name s.counters)

let gauge_value s name =
  Option.value ~default:0.0 (List.assoc_opt name s.gauges)

let render fmt s =
  Format.fprintf fmt "@[<v>metrics:@,";
  List.iter
    (fun (name, v) -> Format.fprintf fmt "  %-36s %12d@," name v)
    s.counters;
  List.iter
    (fun (name, v) -> Format.fprintf fmt "  %-36s %12.3f  (gauge)@," name v)
    s.gauges;
  if s.histograms <> [] then begin
    Format.fprintf fmt "  %-36s %8s %12s %10s %10s %10s %10s %10s@,"
      "histogram" "count" "mean" "min" "max" "p50" "p90" "p99";
    List.iter
      (fun (name, h) ->
        let mean = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count in
        Format.fprintf fmt
          "  %-36s %8d %12.6f %10.6f %10.6f %10.6f %10.6f %10.6f@," name
          h.h_count mean h.h_min h.h_max h.h_p50 h.h_p90 h.h_p99)
      s.histograms
  end;
  Format.fprintf fmt "@]"

let to_json s =
  let buf = Buffer.create 512 in
  let sep = ref false in
  let comma () = if !sep then Buffer.add_char buf ','; sep := true in
  Buffer.add_string buf "{\"counters\":{";
  List.iter
    (fun (name, v) ->
      comma ();
      Buffer.add_string buf (Printf.sprintf "%S:%d" name v))
    s.counters;
  Buffer.add_string buf "},\"gauges\":{";
  sep := false;
  List.iter
    (fun (name, v) ->
      comma ();
      Buffer.add_string buf (Printf.sprintf "%S:%.12g" name v))
    s.gauges;
  Buffer.add_string buf "},\"histograms\":{";
  sep := false;
  List.iter
    (fun (name, h) ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf
           "%S:{\"count\":%d,\"sum\":%.12g,\"min\":%.12g,\"max\":%.12g,\"p50\":%.12g,\"p90\":%.12g,\"p99\":%.12g}"
           name h.h_count h.h_sum h.h_min h.h_max h.h_p50 h.h_p90 h.h_p99))
    s.histograms;
  Buffer.add_string buf "}}";
  Buffer.contents buf
