(* Named-counter / histogram registry.  One global mutex guards both
   tables; every operation is a handful of hashtable accesses, and
   publishers bump per-run aggregates (not per-instruction events), so
   contention is negligible even under -j N sweeps. *)

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram) list;
}

let mutex = Mutex.create ()
let counter_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let histo_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let incr ?(by = 1) name =
  Mutex.protect mutex (fun () ->
      let v = Option.value ~default:0 (Hashtbl.find_opt counter_tbl name) in
      Hashtbl.replace counter_tbl name (v + by))

let observe name x =
  Mutex.protect mutex (fun () ->
      let h =
        match Hashtbl.find_opt histo_tbl name with
        | None -> { h_count = 1; h_sum = x; h_min = x; h_max = x }
        | Some h ->
          {
            h_count = h.h_count + 1;
            h_sum = h.h_sum +. x;
            h_min = Float.min h.h_min x;
            h_max = Float.max h.h_max x;
          }
      in
      Hashtbl.replace histo_tbl name h)

let reset () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset counter_tbl;
      Hashtbl.reset histo_tbl)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  Mutex.protect mutex (fun () ->
      { counters = sorted_bindings counter_tbl;
        histograms = sorted_bindings histo_tbl })

let counter_value s name =
  Option.value ~default:0 (List.assoc_opt name s.counters)

let render fmt s =
  Format.fprintf fmt "@[<v>metrics:@,";
  List.iter
    (fun (name, v) -> Format.fprintf fmt "  %-36s %12d@," name v)
    s.counters;
  if s.histograms <> [] then begin
    Format.fprintf fmt "  %-36s %8s %12s %10s %10s@," "histogram" "count"
      "mean" "min" "max";
    List.iter
      (fun (name, h) ->
        let mean = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count in
        Format.fprintf fmt "  %-36s %8d %12.6f %10.6f %10.6f@," name h.h_count
          mean h.h_min h.h_max)
      s.histograms
  end;
  Format.fprintf fmt "@]"

let to_json s =
  let buf = Buffer.create 512 in
  let sep = ref false in
  let comma () = if !sep then Buffer.add_char buf ','; sep := true in
  Buffer.add_string buf "{\"counters\":{";
  List.iter
    (fun (name, v) ->
      comma ();
      Buffer.add_string buf (Printf.sprintf "%S:%d" name v))
    s.counters;
  Buffer.add_string buf "},\"histograms\":{";
  sep := false;
  List.iter
    (fun (name, h) ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf "%S:{\"count\":%d,\"sum\":%.12g,\"min\":%.12g,\"max\":%.12g}"
           name h.h_count h.h_sum h.h_min h.h_max))
    s.histograms;
  Buffer.add_string buf "}}";
  Buffer.contents buf
