(* Cooperative watchdog: domain-local deadline/fuel scopes polled by the
   pipeline's long loops.  See the .mli for the design. *)

type reason =
  | Deadline of float
  | Fuel of int

exception
  Timed_out of {
    wd_stage : string;
    wd_reason : reason;
    wd_spent_s : float;
  }

let pp_reason fmt = function
  | Deadline s -> Fmt.pf fmt "deadline %gs" s
  | Fuel n -> Fmt.pf fmt "fuel %d" n

let pp_timed_out fmt (stage, reason, spent) =
  Fmt.pf fmt "stage %s exceeded its %a after %.3fs" stage pp_reason reason
    spent

(* One scope per domain; [run] saves and restores the previous scope, so
   nesting behaves like a stack without allocating one. *)
type scope = {
  sc_stage : string;
  sc_deadline : float option;  (* absolute Unix time *)
  sc_budget_s : float option;  (* the relative budget, for the payload *)
  sc_fuel_budget : int option;
  sc_started : float;
  mutable sc_fuel : int;  (* remaining; ignored when no fuel budget *)
}

let key : scope option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () =
  match !(Domain.DLS.get key) with
  | Some s -> s.sc_deadline <> None || s.sc_fuel_budget <> None
  | None -> false

let trip s reason =
  raise
    (Timed_out
       {
         wd_stage = s.sc_stage;
         wd_reason = reason;
         wd_spent_s = Unix.gettimeofday () -. s.sc_started;
       })

let check () =
  match !(Domain.DLS.get key) with
  | None -> ()
  | Some s ->
    (match s.sc_fuel_budget with
    | Some budget ->
      s.sc_fuel <- s.sc_fuel - 1;
      if s.sc_fuel < 0 then trip s (Fuel budget)
    | None -> ());
    (match (s.sc_deadline, s.sc_budget_s) with
    | Some d, Some b -> if Unix.gettimeofday () > d then trip s (Deadline b)
    | _ -> ())

let run ?deadline_s ?fuel ~stage f =
  match (deadline_s, fuel) with
  | None, None -> f ()
  | _ ->
    let cell = Domain.DLS.get key in
    let outer = !cell in
    let now = Unix.gettimeofday () in
    (* inherit the tighter deadline: an inner scope must not outlive the
       stage that encloses it *)
    let deadline, budget_s =
      let mine =
        Option.map (fun b -> (now +. b, b)) deadline_s
      in
      let inherited =
        match outer with
        | Some o -> (
          match (o.sc_deadline, o.sc_budget_s) with
          | Some d, Some b -> Some (d, b)
          | _ -> None)
        | None -> None
      in
      match (mine, inherited) with
      | Some (d, b), Some (d', b') ->
        if d <= d' then (Some d, Some b) else (Some d', Some b')
      | Some (d, b), None -> (Some d, Some b)
      | None, Some (d, b) -> (Some d, Some b)
      | None, None -> (None, None)
    in
    let scope =
      {
        sc_stage = stage;
        sc_deadline = deadline;
        sc_budget_s = budget_s;
        sc_fuel_budget = fuel;
        sc_started = now;
        sc_fuel = Option.value ~default:0 fuel;
      }
    in
    cell := Some scope;
    Fun.protect ~finally:(fun () -> cell := outer) f

(* ---- global stage policy ---------------------------------------------- *)

type policy = {
  p_deadline_s : float option;
  p_fuel : int option;
  p_stages : string list option;  (* None = every stage *)
}

let policy : policy option Atomic.t = Atomic.make None

let set_stage_policy ?deadline_s ?fuel ?stages () =
  match (deadline_s, fuel) with
  | None, None -> Atomic.set policy None
  | _ ->
    Atomic.set policy
      (Some { p_deadline_s = deadline_s; p_fuel = fuel; p_stages = stages })

let stage_policy name =
  match Atomic.get policy with
  | None -> None
  | Some p ->
    let applies =
      match p.p_stages with
      | None -> true
      | Some names -> List.mem name names
    in
    if applies then Some (p.p_deadline_s, p.p_fuel) else None
