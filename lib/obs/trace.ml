(* Domain-safe structured event tracing.

   Design constraints, in order:

   - recording must be deterministic across [--jobs] settings after
     sorting, so events carry a (cell, seq) coordinate assigned on the
     recording domain: the cell is the engine slot being executed (every
     slot runs start-to-finish on one domain) and seq counts emissions
     within that slot.  Sorting by (cell, seq) therefore reconstructs
     exactly the stream a sequential run produces;
   - recording must be cheap when off: one atomic load;
   - recording must be safe from any domain: the shared buffer append is
     the only cross-domain interaction and sits under a mutex.

   The (cell, seq) state is domain-local (DLS), not global: two domains
   running different cells never contend on it, and a domain outside any
   [with_cell] span (single compiles, tests) records under cell -1 with
   a monotonically increasing seq. *)

(* [value] is shared with Telemetry so instrumentation sites feed both
   the global stream and a per-request collector with one field list. *)
type value = Telemetry.value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event = {
  cell : int;
  seq : int;
  kind : string;
  fields : (string * value) list;
}

let enabled = Atomic.make false
let mutex = Mutex.create ()
let events : event list ref = ref []  (* reversed emission order *)

(* Span mode adds wall-clock timestamps ([ts]/[dur] fields) to the
   stream for the Chrome-trace exporter.  It is a separate switch from
   [enabled] because timestamps — and the cell a cached computation's
   span lands on — are inherently nondeterministic, so they must never
   enter the default stream, whose -j1/-j4 byte identity is contractual
   (make trace-check). *)
let spans_flag = Atomic.make false
let base_time = Atomic.make 0.0

type tagging = { mutable cur_cell : int; mutable cur_seq : int }

let tag_key = Domain.DLS.new_key (fun () -> { cur_cell = -1; cur_seq = 0 })

(* Gated emitters (formation attempts, optimizer passes) build their
   field lists when either consumer is listening: the global stream, or
   a request-scoped collector on this domain. *)
let is_enabled () = Atomic.get enabled || Telemetry.active ()
let spans_enabled () = Atomic.get spans_flag

let start ?(spans = false) () =
  Mutex.protect mutex (fun () -> events := []);
  let t = Domain.DLS.get tag_key in
  t.cur_seq <- 0;
  Atomic.set base_time (Unix.gettimeofday ());
  Atomic.set spans_flag spans;
  Atomic.set enabled true

let compare_event a b =
  match compare a.cell b.cell with 0 -> compare a.seq b.seq | c -> c

let stop () =
  Atomic.set enabled false;
  Atomic.set spans_flag false;
  let evs = Mutex.protect mutex (fun () ->
      let evs = !events in
      events := [];
      evs)
  in
  List.sort compare_event (List.rev evs)

let with_cell cell f =
  let t = Domain.DLS.get tag_key in
  let old_cell = t.cur_cell and old_seq = t.cur_seq in
  t.cur_cell <- cell;
  t.cur_seq <- 0;
  Fun.protect
    ~finally:(fun () ->
      t.cur_cell <- old_cell;
      t.cur_seq <- old_seq)
    f

let now_us () = (Unix.gettimeofday () -. Atomic.get base_time) *. 1e6

let push ev =
  Mutex.protect mutex (fun () -> events := ev :: !events)

(* Capture mode diverts the raw (kind, fields) pairs a thunk records
   into a domain-local buffer instead of the shared stream; [replay]
   re-records them later through the normal path, which stamps them with
   the replaying domain's (cell, seq) — and, in span mode, a fresh [ts].
   A speculative trial captured on a worker and replayed at the exact
   stream position where the sequential trial would have run therefore
   produces byte-identical sorted output.  Capture is checked *before*
   the span-ts append so no worker-side wall clock leaks into the
   buffer. *)
type captured = (string * (string * value) list) list

let capture_key : captured ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let capture f =
  let slot = Domain.DLS.get capture_key in
  let saved = !slot in
  let buf = ref [] in
  slot := Some buf;
  let v = Fun.protect ~finally:(fun () -> slot := saved) f in
  (v, List.rev !buf)

let record kind fields =
  let tele = Telemetry.active () in
  if Atomic.get enabled || tele then begin
    match !(Domain.DLS.get capture_key) with
    | Some buf ->
      (* capture diverts everything — a request-scoped collector sees
         captured events at replay time, never twice *)
      buf := (kind, fields) :: !buf
    | None ->
      if tele then Telemetry.note kind fields;
      if Atomic.get enabled then begin
        let fields =
          (* span mode: place point events on the exporter's timeline *)
          if Atomic.get spans_flag then fields @ [ ("ts", Float (now_us ())) ]
          else fields
        in
        let t = Domain.DLS.get tag_key in
        let ev = { cell = t.cur_cell; seq = t.cur_seq; kind; fields } in
        t.cur_seq <- t.cur_seq + 1;
        push ev
      end
  end

let replay cap = List.iter (fun (kind, fields) -> record kind fields) cap

(* [span] always times the thunk and reports the duration to [on_close]
   (even on exception) — callers like [Stage.time] keep their wall-clock
   accounting whether or not tracing is on.  The "span" event itself is
   emitted only in span mode. *)
let span ?(fields = []) ?on_close name f =
  let tele = Telemetry.active () in
  if tele then Telemetry.span_enter name fields;
  let t0 = Unix.gettimeofday () in
  let finish () =
    let dt = Unix.gettimeofday () -. t0 in
    if tele then Telemetry.span_exit ~dur_s:dt;
    (match on_close with Some g -> g dt | None -> ());
    if Atomic.get enabled && Atomic.get spans_flag then begin
      let ts = (t0 -. Atomic.get base_time) *. 1e6 in
      let ev_fields =
        ("name", Str name) :: ("ts", Float ts)
        :: ("dur", Float (dt *. 1e6))
        :: fields
      in
      let t = Domain.DLS.get tag_key in
      let ev =
        { cell = t.cur_cell; seq = t.cur_seq; kind = "span"; fields = ev_fields }
      in
      t.cur_seq <- t.cur_seq + 1;
      push ev
    end
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

(* ---- JSON -------------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* %.12g is stable for the probabilities and deltas we record and
       has no locale dependence *)
    Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'

(* Chrome trace-event format (the JSON-array flavor): spans become
   complete events (ph "X") with microsecond ts/dur, everything else an
   instant (ph "i") carrying its fields as args.  Cells map to thread
   ids (tid = cell + 1, so the out-of-sweep cell -1 is tid 0), which
   lays a sweep out one engine slot per track in chrome://tracing or
   Perfetto. *)
let to_chrome_json events =
  let buf = Buffer.create 4096 in
  let add_args fields =
    Buffer.add_string buf "\"args\":{";
    List.iteri
      (fun k (name, v) ->
        if k > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf name;
        Buffer.add_string buf "\":";
        add_value buf v)
      fields;
    Buffer.add_char buf '}'
  in
  let fnum = function
    | Some (Float f) -> f
    | Some (Int n) -> float_of_int n
    | _ -> 0.0
  in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun k ev ->
      if k > 0 then Buffer.add_string buf ",\n";
      let tid = ev.cell + 1 in
      match ev.kind with
      | "span" ->
        let name =
          match List.assoc_opt "name" ev.fields with
          | Some (Str s) -> s
          | _ -> "span"
        in
        let ts = fnum (List.assoc_opt "ts" ev.fields) in
        let dur = fnum (List.assoc_opt "dur" ev.fields) in
        let args =
          List.filter
            (fun (k, _) -> k <> "name" && k <> "ts" && k <> "dur")
            ev.fields
        in
        Buffer.add_string buf "{\"name\":\"";
        escape buf name;
        Buffer.add_string buf
          (Printf.sprintf "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,"
             ts dur tid);
        add_args args;
        Buffer.add_char buf '}'
      | kind ->
        let ts = fnum (List.assoc_opt "ts" ev.fields) in
        let args = List.filter (fun (k, _) -> k <> "ts") ev.fields in
        Buffer.add_string buf "{\"name\":\"";
        escape buf kind;
        Buffer.add_string buf
          (Printf.sprintf "\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"s\":\"t\","
             ts tid);
        add_args args;
        Buffer.add_char buf '}')
    events;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let to_json ev =
  let buf = Buffer.create 160 in
  Buffer.add_string buf "{\"cell\":";
  Buffer.add_string buf (string_of_int ev.cell);
  Buffer.add_string buf ",\"seq\":";
  Buffer.add_string buf (string_of_int ev.seq);
  Buffer.add_string buf ",\"kind\":\"";
  escape buf ev.kind;
  Buffer.add_char buf '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      escape buf k;
      Buffer.add_string buf "\":";
      add_value buf v)
    ev.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf
