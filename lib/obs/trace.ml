(* Domain-safe structured event tracing.

   Design constraints, in order:

   - recording must be deterministic across [--jobs] settings after
     sorting, so events carry a (cell, seq) coordinate assigned on the
     recording domain: the cell is the engine slot being executed (every
     slot runs start-to-finish on one domain) and seq counts emissions
     within that slot.  Sorting by (cell, seq) therefore reconstructs
     exactly the stream a sequential run produces;
   - recording must be cheap when off: one atomic load;
   - recording must be safe from any domain: the shared buffer append is
     the only cross-domain interaction and sits under a mutex.

   The (cell, seq) state is domain-local (DLS), not global: two domains
   running different cells never contend on it, and a domain outside any
   [with_cell] span (single compiles, tests) records under cell -1 with
   a monotonically increasing seq. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  cell : int;
  seq : int;
  kind : string;
  fields : (string * value) list;
}

let enabled = Atomic.make false
let mutex = Mutex.create ()
let events : event list ref = ref []  (* reversed emission order *)

type tagging = { mutable cur_cell : int; mutable cur_seq : int }

let tag_key = Domain.DLS.new_key (fun () -> { cur_cell = -1; cur_seq = 0 })

let is_enabled () = Atomic.get enabled

let start () =
  Mutex.protect mutex (fun () -> events := []);
  let t = Domain.DLS.get tag_key in
  t.cur_seq <- 0;
  Atomic.set enabled true

let compare_event a b =
  match compare a.cell b.cell with 0 -> compare a.seq b.seq | c -> c

let stop () =
  Atomic.set enabled false;
  let evs = Mutex.protect mutex (fun () ->
      let evs = !events in
      events := [];
      evs)
  in
  List.sort compare_event (List.rev evs)

let with_cell cell f =
  let t = Domain.DLS.get tag_key in
  let old_cell = t.cur_cell and old_seq = t.cur_seq in
  t.cur_cell <- cell;
  t.cur_seq <- 0;
  Fun.protect
    ~finally:(fun () ->
      t.cur_cell <- old_cell;
      t.cur_seq <- old_seq)
    f

let record kind fields =
  if Atomic.get enabled then begin
    let t = Domain.DLS.get tag_key in
    let ev = { cell = t.cur_cell; seq = t.cur_seq; kind; fields } in
    t.cur_seq <- t.cur_seq + 1;
    Mutex.protect mutex (fun () -> events := ev :: !events)
  end

(* ---- JSON -------------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* %.12g is stable for the probabilities and deltas we record and
       has no locale dependence *)
    Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'

let to_json ev =
  let buf = Buffer.create 160 in
  Buffer.add_string buf "{\"cell\":";
  Buffer.add_string buf (string_of_int ev.cell);
  Buffer.add_string buf ",\"seq\":";
  Buffer.add_string buf (string_of_int ev.seq);
  Buffer.add_string buf ",\"kind\":\"";
  escape buf ev.kind;
  Buffer.add_char buf '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      escape buf k;
      Buffer.add_string buf "\":";
      add_value buf v)
    ev.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf
