(* Request-scoped telemetry: trace contexts, per-request span trees and
   a rolling-window aggregation layer.

   This module is deliberately self-contained (no dependency on Trace or
   Metrics — both of *them* call in here), so it can sit at the bottom
   of the obs stack: Trace.span / Trace.record / Metrics.incr notify the
   collector installed on the calling domain, and the serve scheduler
   owns the collector's lifecycle (start at dequeue, finish at
   completion).

   Determinism contract: nothing in this module touches the Trace event
   stream or the Metrics registry, so with no collector installed — the
   one-shot CLI, tests, or any process under TRIPS_NO_REQ_TELEMETRY —
   every existing output is byte-identical.  Within one request the
   collector is purely domain-local (a request executes start-to-finish
   on one worker domain), so the per-request event order is the
   sequential order regardless of [--jobs]. *)

type value = Int of int | Float of float | Str of string | Bool of bool

(* ---- escape hatch ------------------------------------------------------ *)

let hatch = "TRIPS_NO_REQ_TELEMETRY"

let enabled () =
  match Sys.getenv_opt hatch with Some s when s <> "" -> false | _ -> true

(* ---- trace context ----------------------------------------------------- *)

type ctx = {
  tc_id : string;
  tc_parent : int;
  tc_deadline_s : float option;
  tc_chaos_seed : int option;
}

let mint_counter = Atomic.make 0

let mint ?deadline_s ?chaos_seed () =
  if not (enabled ()) then None
  else begin
    let n = Atomic.fetch_and_add mint_counter 1 in
    (* pid + monotone counter + wall clock, digested: unique across the
       daemon's clients without sharing any state between them *)
    let raw =
      Printf.sprintf "%d.%d.%.9f" (Unix.getpid ()) n (Unix.gettimeofday ())
    in
    let id = "req-" ^ String.sub (Digest.to_hex (Digest.string raw)) 0 12 in
    Some { tc_id = id; tc_parent = 0; tc_deadline_s = deadline_s; tc_chaos_seed = chaos_seed }
  end

(* ---- rolling window ---------------------------------------------------- *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let quantile_of_sorted sorted n q =
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    List.nth sorted (rank - 1)
  end

module Window = struct
  type quantiles = {
    q_count : int;
    q_sum : float;
    q_min : float;
    q_max : float;
    q_p50 : float;
    q_p90 : float;
    q_p99 : float;
  }

  type snapshot = {
    w_span_s : float;
    w_counters : (string * int) list;
    w_gauges : (string * float) list;
    w_histograms : (string * quantiles) list;
  }

  (* One fixed-width time bucket.  [b_epoch] is the absolute bucket
     index (now / bucket_s); a bucket whose epoch has rotated out of the
     live range is logically empty and is reset lazily on reuse. *)
  type bucket = {
    mutable b_epoch : int;  (* -1 = never used *)
    b_counts : (string, int) Hashtbl.t;
    b_samples : (string, float list ref) Hashtbl.t;
  }

  type t = {
    w_m : Mutex.t;
    w_bucket_s : float;
    w_buckets : bucket array;
    w_gauge_tbl : (string, float) Hashtbl.t;
  }

  let create ?(buckets = 30) ?(bucket_s = 1.0) () =
    {
      w_m = Mutex.create ();
      w_bucket_s = (if bucket_s <= 0.0 then 1.0 else bucket_s);
      w_buckets =
        Array.init (max 1 buckets) (fun _ ->
            { b_epoch = -1; b_counts = Hashtbl.create 8; b_samples = Hashtbl.create 8 });
      w_gauge_tbl = Hashtbl.create 8;
    }

  let span_s t = float_of_int (Array.length t.w_buckets) *. t.w_bucket_s
  let epoch_of t now = int_of_float (now /. t.w_bucket_s)
  let now_or = function Some n -> n | None -> Unix.gettimeofday ()

  let live t ~epoch_now e =
    e >= 0 && e > epoch_now - Array.length t.w_buckets && e <= epoch_now

  (* with [w_m] held: the bucket slot for [epoch], reset if it still
     holds an older rotation; [None] if a newer epoch already occupies
     the slot (writing "into the past" across the ring seam). *)
  let bucket_at t epoch =
    let n = Array.length t.w_buckets in
    let b = t.w_buckets.(((epoch mod n) + n) mod n) in
    if b.b_epoch = epoch then Some b
    else if b.b_epoch > epoch then None
    else begin
      Hashtbl.reset b.b_counts;
      Hashtbl.reset b.b_samples;
      b.b_epoch <- epoch;
      Some b
    end

  let incr t ?now ?(by = 1) name =
    let now = now_or now in
    Mutex.protect t.w_m (fun () ->
        match bucket_at t (epoch_of t now) with
        | None -> ()
        | Some b ->
          let v = Option.value ~default:0 (Hashtbl.find_opt b.b_counts name) in
          Hashtbl.replace b.b_counts name (v + by))

  let observe t ?now name x =
    let now = now_or now in
    Mutex.protect t.w_m (fun () ->
        match bucket_at t (epoch_of t now) with
        | None -> ()
        | Some b -> (
          match Hashtbl.find_opt b.b_samples name with
          | Some r -> r := x :: !r
          | None -> Hashtbl.replace b.b_samples name (ref [ x ])))

  let set_gauge t name v =
    Mutex.protect t.w_m (fun () -> Hashtbl.replace t.w_gauge_tbl name v)

  let gauge_value t name =
    Mutex.protect t.w_m (fun () -> Hashtbl.find_opt t.w_gauge_tbl name)

  (* Copy [src]'s live buckets into [into], aligning epochs through
     absolute time (the two windows may use different bucket widths).
     Locks are taken one at a time — src is drained to a list first — so
     merging in both directions from two domains cannot deadlock. *)
  let merge ~into ?now src =
    if into != src then begin
      let now = now_or now in
      let data, gauges =
        Mutex.protect src.w_m (fun () ->
            ( Array.to_list src.w_buckets
              |> List.filter_map (fun b ->
                     if b.b_epoch < 0 then None
                     else
                       Some
                         ( b.b_epoch,
                           sorted_bindings b.b_counts,
                           Hashtbl.fold
                             (fun k r acc -> (k, !r) :: acc)
                             b.b_samples [] )),
              sorted_bindings src.w_gauge_tbl ))
      in
      Mutex.protect into.w_m (fun () ->
          let epoch_now = epoch_of into now in
          List.iter
            (fun (src_epoch, counts, samples) ->
              let t0 = float_of_int src_epoch *. src.w_bucket_s in
              let epoch = epoch_of into t0 in
              if live into ~epoch_now epoch then
                match bucket_at into epoch with
                | None -> ()
                | Some b ->
                  List.iter
                    (fun (k, v) ->
                      let cur =
                        Option.value ~default:0 (Hashtbl.find_opt b.b_counts k)
                      in
                      Hashtbl.replace b.b_counts k (cur + v))
                    counts;
                  List.iter
                    (fun (k, xs) ->
                      match Hashtbl.find_opt b.b_samples k with
                      | Some r -> r := xs @ !r
                      | None -> Hashtbl.replace b.b_samples k (ref xs))
                    samples)
            data;
          List.iter
            (fun (k, v) -> Hashtbl.replace into.w_gauge_tbl k v)
            gauges)
    end

  let snapshot ?now t =
    let now = now_or now in
    Mutex.protect t.w_m (fun () ->
        let epoch_now = epoch_of t now in
        let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
        let samples : (string, float list) Hashtbl.t = Hashtbl.create 16 in
        Array.iter
          (fun b ->
            if live t ~epoch_now b.b_epoch then begin
              Hashtbl.iter
                (fun k v ->
                  let cur = Option.value ~default:0 (Hashtbl.find_opt counts k) in
                  Hashtbl.replace counts k (cur + v))
                b.b_counts;
              Hashtbl.iter
                (fun k r ->
                  let cur =
                    Option.value ~default:[] (Hashtbl.find_opt samples k)
                  in
                  Hashtbl.replace samples k (!r @ cur))
                b.b_samples
            end)
          t.w_buckets;
        let histograms =
          sorted_bindings samples
          |> List.map (fun (name, xs) ->
                 let sorted = List.sort compare xs in
                 let n = List.length sorted in
                 let q p = quantile_of_sorted sorted n p in
                 let sum = List.fold_left ( +. ) 0.0 sorted in
                 ( name,
                   {
                     q_count = n;
                     q_sum = sum;
                     q_min = (match sorted with x :: _ -> x | [] -> 0.0);
                     q_max =
                       (match List.rev sorted with x :: _ -> x | [] -> 0.0);
                     q_p50 = q 0.5;
                     q_p90 = q 0.9;
                     q_p99 = q 0.99;
                   } ))
        in
        {
          w_span_s = span_s t;
          w_counters = sorted_bindings counts;
          w_gauges = sorted_bindings t.w_gauge_tbl;
          w_histograms = histograms;
        })

  let reset t =
    Mutex.protect t.w_m (fun () ->
        Array.iter
          (fun b ->
            b.b_epoch <- -1;
            Hashtbl.reset b.b_counts;
            Hashtbl.reset b.b_samples)
          t.w_buckets;
        Hashtbl.reset t.w_gauge_tbl)

  let counter_value s name =
    Option.value ~default:0 (List.assoc_opt name s.w_counters)

  let quantiles s name = List.assoc_opt name s.w_histograms
end

(* the daemon's window: 30 one-second buckets *)
let global_window = Window.create ()

let win_incr ?by name = if enabled () then Window.incr global_window ?by name
let win_observe name x = if enabled () then Window.observe global_window name x
let win_gauge name v = if enabled () then Window.set_gauge global_window name v
let win_snapshot () = Window.snapshot global_window

(* ---- per-request span-tree collector ----------------------------------- *)

type span = {
  sp_id : int;
  sp_parent : int;  (* -1 for the root "request" span *)
  sp_name : string;
  sp_fields : (string * value) list;
  sp_start_us : float;  (* relative to request admission *)
  mutable sp_dur_us : float;  (* negative while open *)
}

type note = {
  nt_span : int;
  nt_ts_us : float;
  nt_kind : string;
  nt_fields : (string * value) list;
}

type trace = {
  tr_id : string;
  tr_kind : string;
  tr_queue_wait_s : float;
  mutable tr_outcome : string;
  mutable tr_total_s : float;
  mutable tr_spans : span list;  (* creation order *)
  mutable tr_notes : note list;  (* emission order *)
  mutable tr_counters : (string * int) list;  (* sorted by name *)
}

type active = {
  a_tr : trace;
  a_t0 : float;  (* wall clock at execute start *)
  a_base_us : float;  (* queue wait, in µs: offset of execute on the timeline *)
  mutable a_next_id : int;
  mutable a_stack : span list;  (* open spans, innermost first *)
  mutable a_spans_rev : span list;
  mutable a_notes_rev : note list;
  a_counts : (string, int) Hashtbl.t;
}

let slot_key : active option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = Option.is_some !(Domain.DLS.get slot_key)

let now_us a = ((Unix.gettimeofday () -. a.a_t0) *. 1e6) +. a.a_base_us

let start ctx ~kind ~queue_wait_s =
  match ctx with
  | None -> None
  | Some _ when not (enabled ()) -> None
  | Some c ->
    let qus = queue_wait_s *. 1e6 in
    let tr =
      {
        tr_id = c.tc_id;
        tr_kind = kind;
        tr_queue_wait_s = queue_wait_s;
        tr_outcome = "";
        tr_total_s = 0.0;
        tr_spans = [];
        tr_notes = [];
        tr_counters = [];
      }
    in
    (* Three synthesized spans frame the request's timeline: the root
       covers admission to completion, queue-wait the time spent queued
       (already over, so closed immediately), execute everything the
       worker does — pipeline spans nest under it via the stack. *)
    let root_fields =
      (match c.tc_deadline_s with
      | Some d -> [ ("deadline_s", Float d) ]
      | None -> [])
      @
      match c.tc_chaos_seed with
      | Some s -> [ ("chaos_seed", Int s) ]
      | None -> []
    in
    let root =
      { sp_id = 0; sp_parent = -1; sp_name = "request"; sp_fields = root_fields;
        sp_start_us = 0.0; sp_dur_us = -1.0 }
    in
    let qw =
      { sp_id = 1; sp_parent = 0; sp_name = "queue-wait"; sp_fields = [];
        sp_start_us = 0.0; sp_dur_us = qus }
    in
    let ex =
      { sp_id = 2; sp_parent = 0; sp_name = "execute"; sp_fields = [];
        sp_start_us = qus; sp_dur_us = -1.0 }
    in
    Some
      {
        a_tr = tr;
        a_t0 = Unix.gettimeofday ();
        a_base_us = qus;
        a_next_id = 3;
        a_stack = [ ex; root ];
        a_spans_rev = [ ex; qw; root ];
        a_notes_rev = [];
        a_counts = Hashtbl.create 16;
      }

let run act f =
  match act with
  | None -> f ()
  | Some _ ->
    let slot = Domain.DLS.get slot_key in
    let saved = !slot in
    slot := act;
    Fun.protect ~finally:(fun () -> slot := saved) f

let span_enter name fields =
  match !(Domain.DLS.get slot_key) with
  | None -> ()
  | Some a ->
    let parent = match a.a_stack with sp :: _ -> sp.sp_id | [] -> 0 in
    let sp =
      { sp_id = a.a_next_id; sp_parent = parent; sp_name = name;
        sp_fields = fields; sp_start_us = now_us a; sp_dur_us = -1.0 }
    in
    a.a_next_id <- a.a_next_id + 1;
    a.a_stack <- sp :: a.a_stack;
    a.a_spans_rev <- sp :: a.a_spans_rev

let span_exit ~dur_s =
  match !(Domain.DLS.get slot_key) with
  | None -> ()
  | Some a -> (
    match a.a_stack with
    | sp :: rest when sp.sp_id > 2 ->
      (* the synthesized frame spans (ids 0–2) are closed by [finish],
         never by an instrumentation exit *)
      sp.sp_dur_us <- dur_s *. 1e6;
      a.a_stack <- rest;
      win_observe ("span." ^ sp.sp_name ^ "_s") dur_s
    | _ -> ())

let note kind fields =
  match !(Domain.DLS.get slot_key) with
  | None -> ()
  | Some a ->
    let parent = match a.a_stack with sp :: _ -> sp.sp_id | [] -> 0 in
    a.a_notes_rev <-
      { nt_span = parent; nt_ts_us = now_us a; nt_kind = kind; nt_fields = fields }
      :: a.a_notes_rev

let count ?(by = 1) name =
  match !(Domain.DLS.get slot_key) with
  | None -> ()
  | Some a ->
    let v = Option.value ~default:0 (Hashtbl.find_opt a.a_counts name) in
    Hashtbl.replace a.a_counts name (v + by)

(* ---- finished-trace ring ----------------------------------------------- *)

let ring_m = Mutex.create ()
let ring : trace Queue.t = Queue.create ()
let ring_cap = ref 64
let set_ring_capacity n = ring_cap := max 1 n

let finish act ~outcome =
  match act with
  | None -> ()
  | Some a ->
    let end_us = now_us a in
    let exec_s = (end_us -. a.a_base_us) /. 1e6 in
    (* a non-local exit (watchdog timeout, crash) unwinds through
       Trace.span's finishers, so instrumentation spans are already
       closed; anything still open here is a frame span (or a bug in an
       instrumentation site), which we close at the request's end *)
    List.iter
      (fun sp ->
        if sp.sp_dur_us < 0.0 then sp.sp_dur_us <- end_us -. sp.sp_start_us)
      a.a_stack;
    a.a_stack <- [];
    let tr = a.a_tr in
    tr.tr_outcome <- outcome;
    tr.tr_total_s <- tr.tr_queue_wait_s +. exec_s;
    tr.tr_spans <- List.rev a.a_spans_rev;
    tr.tr_notes <- List.rev a.a_notes_rev;
    tr.tr_counters <- sorted_bindings a.a_counts;
    Mutex.protect ring_m (fun () ->
        Queue.push tr ring;
        while Queue.length ring > !ring_cap do
          ignore (Queue.pop ring)
        done);
    win_incr ("serve.req." ^ outcome);
    win_observe "serve.latency_s" tr.tr_total_s;
    win_observe "serve.queue_wait_s" tr.tr_queue_wait_s;
    win_observe "serve.execute_s" exec_s

let find id =
  Mutex.protect ring_m (fun () ->
      Queue.fold
        (fun acc tr -> if tr.tr_id = id then Some tr else acc)
        None ring)

let recent () =
  Mutex.protect ring_m (fun () -> List.rev (List.of_seq (Queue.to_seq ring)))

let reset () =
  Mutex.protect ring_m (fun () -> Queue.clear ring);
  Window.reset global_window

(* ---- rendering and well-formedness ------------------------------------- *)

let pp_value buf = function
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Str s -> Buffer.add_string buf s

let pp_fields buf fields =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      pp_value buf v)
    fields

let render tr =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "request    : %s (%s)\n" tr.tr_id tr.tr_kind;
  Printf.bprintf buf "outcome    : %s\n" tr.tr_outcome;
  Printf.bprintf buf "queue-wait : %.3f ms\n" (tr.tr_queue_wait_s *. 1e3);
  Printf.bprintf buf "total      : %.3f ms\n" (tr.tr_total_s *. 1e3);
  Buffer.add_string buf "spans:\n";
  let children = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt children sp.sp_parent) in
      Hashtbl.replace children sp.sp_parent (sp :: cur))
    (List.rev tr.tr_spans);
  let notes_of = Hashtbl.create 16 in
  List.iter
    (fun nt ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt notes_of nt.nt_span) in
      Hashtbl.replace notes_of nt.nt_span (nt :: cur))
    (List.rev tr.tr_notes);
  let rec walk depth sp =
    Printf.bprintf buf "  %s%-*s %10.3f ms  +%.3f ms"
      (String.make (2 * depth) ' ')
      (max 1 (28 - (2 * depth)))
      sp.sp_name
      (sp.sp_dur_us /. 1e3)
      (sp.sp_start_us /. 1e3);
    pp_fields buf sp.sp_fields;
    Buffer.add_char buf '\n';
    List.iter
      (fun nt ->
        Printf.bprintf buf "  %s· [%s]"
          (String.make (2 * (depth + 1)) ' ')
          nt.nt_kind;
        pp_fields buf nt.nt_fields;
        Buffer.add_char buf '\n')
      (Option.value ~default:[] (Hashtbl.find_opt notes_of sp.sp_id));
    List.iter (walk (depth + 1))
      (Option.value ~default:[] (Hashtbl.find_opt children sp.sp_id))
  in
  List.iter (walk 0) (Option.value ~default:[] (Hashtbl.find_opt children (-1)));
  if tr.tr_counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) -> Printf.bprintf buf "  %-36s %10d\n" name v)
      tr.tr_counters
  end;
  Buffer.contents buf

exception Malformed of string

let check tr =
  let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt in
  (* clock-jitter slack: spans time themselves with separate wall-clock
     reads, so nested bounds can disagree by a few µs of rounding *)
  let eps = 50.0 in
  let total_us = tr.tr_total_s *. 1e6 in
  let by_id = Hashtbl.create 16 in
  try
    List.iter (fun sp -> Hashtbl.replace by_id sp.sp_id sp) tr.tr_spans;
    if tr.tr_outcome = "" then fail "request has no outcome";
    List.iter
      (fun sp ->
        if sp.sp_dur_us < 0.0 then fail "span %s (#%d) never closed" sp.sp_name sp.sp_id;
        if sp.sp_start_us < -.eps then
          fail "span %s (#%d) starts before the request" sp.sp_name sp.sp_id;
        if sp.sp_start_us +. sp.sp_dur_us > total_us +. eps then
          fail "span %s (#%d) outlives the request" sp.sp_name sp.sp_id;
        if sp.sp_parent = -1 then begin
          if sp.sp_id <> 0 then
            fail "span %s (#%d) claims to be a root" sp.sp_name sp.sp_id
        end
        else
          match Hashtbl.find_opt by_id sp.sp_parent with
          | None -> fail "span %s (#%d) has no parent" sp.sp_name sp.sp_id
          | Some p ->
            if p.sp_id >= sp.sp_id then
              fail "span %s (#%d) precedes its parent" sp.sp_name sp.sp_id;
            if
              sp.sp_start_us +. eps < p.sp_start_us
              || sp.sp_start_us +. sp.sp_dur_us
                 > p.sp_start_us +. p.sp_dur_us +. eps
            then fail "span %s (#%d) escapes its parent" sp.sp_name sp.sp_id)
      tr.tr_spans;
    List.iter
      (fun nt ->
        if not (Hashtbl.mem by_id nt.nt_span) then
          fail "note [%s] attached to unknown span #%d" nt.nt_kind nt.nt_span)
      tr.tr_notes;
    Ok ()
  with Malformed msg -> Error msg
