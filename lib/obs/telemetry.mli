(** Request-scoped telemetry for the resident compile service.

    Three layers, all inert unless the serve scheduler installs a
    collector on the executing domain:

    - a {!ctx} minted per client RPC and carried in the protocol frame,
      so every compile/report/sweep-cell request is individually
      attributable;
    - a per-request {e span tree} assembled from the existing
      {!Trace.span} / {!Trace.record} / {!Metrics.incr} call sites
      (those modules notify this one when a collector is {!active}),
      kept in a bounded in-process ring of recently finished requests;
    - a rolling {!Window} of fixed-width time buckets answering "what is
      p99 latency {e right now}" rather than over process lifetime.

    Determinism: this module never writes to the Trace stream or the
    Metrics registry, so with no collector installed — the one-shot CLI,
    or any process under [TRIPS_NO_REQ_TELEMETRY] — every existing
    output is byte-identical.  A request executes start-to-finish on one
    worker domain, so its event order is the sequential order regardless
    of [--jobs]. *)

type value = Int of int | Float of float | Str of string | Bool of bool
(** Field values; {!Trace.value} is an alias of this type, so the two
    are interchangeable at every instrumentation site. *)

val hatch : string
(** The escape-hatch variable name, ["TRIPS_NO_REQ_TELEMETRY"]. *)

val enabled : unit -> bool
(** False when [TRIPS_NO_REQ_TELEMETRY] is set non-empty: {!mint}
    returns [None], {!start} declines, and the global-window helpers
    become no-ops — the escape hatch for byte-identity comparisons. *)

(** {1 Trace context} *)

type ctx = {
  tc_id : string;  (** ["req-<hex>"], unique per minted request *)
  tc_parent : int;  (** parent span id on the client side (0 = root) *)
  tc_deadline_s : float option;
  tc_chaos_seed : int option;
}

val mint : ?deadline_s:float -> ?chaos_seed:int -> unit -> ctx option
(** Mint a fresh request context ([None] under the escape hatch).
    Called by [Client.rpc] for job-carrying requests. *)

(** {1 Rolling window} *)

module Window : sig
  type t
  (** A mutex-guarded ring of fixed-width time buckets.  Ops take an
      optional [?now] (seconds, as from [Unix.gettimeofday]) so tests
      can drive the clock deterministically. *)

  type quantiles = {
    q_count : int;
    q_sum : float;
    q_min : float;
    q_max : float;
    q_p50 : float;  (** exact nearest-rank over the window's samples *)
    q_p90 : float;
    q_p99 : float;
  }

  type snapshot = {
    w_span_s : float;  (** window length covered: buckets × bucket_s *)
    w_counters : (string * int) list;  (** sorted by name *)
    w_gauges : (string * float) list;  (** sorted by name *)
    w_histograms : (string * quantiles) list;  (** sorted by name *)
  }

  val create : ?buckets:int -> ?bucket_s:float -> unit -> t
  (** Default 30 buckets × 1s: a 30-second window. *)

  val incr : t -> ?now:float -> ?by:int -> string -> unit
  val observe : t -> ?now:float -> string -> float -> unit

  val set_gauge : t -> string -> float -> unit
  (** Gauges are last-value-wins and not bucketed (a gauge is a level,
      not a flow — expiring it with a bucket would invent a zero). *)

  val gauge_value : t -> string -> float option

  val merge : into:t -> ?now:float -> t -> unit
  (** Fold [src]'s live buckets into [into], aligning epochs through
      absolute time (bucket widths may differ); [src]'s gauges overwrite
      [into]'s.  Buckets older than [into]'s window are dropped.  Safe
      against concurrent writers on either side. *)

  val snapshot : ?now:float -> t -> snapshot
  (** Aggregate over the buckets still inside the window at [now]:
      summed counters, exact nearest-rank quantiles over the union of
      samples.  An empty window yields empty lists (no zero-filled
      quantiles). *)

  val reset : t -> unit

  val counter_value : snapshot -> string -> int
  (** 0 when absent. *)

  val quantiles : snapshot -> string -> quantiles option
end

val global_window : Window.t
(** The daemon's window (30 × 1s).  The helpers below write to it only
    when {!enabled}; read it with {!win_snapshot}. *)

val win_incr : ?by:int -> string -> unit
val win_observe : string -> float -> unit
val win_gauge : string -> float -> unit
val win_snapshot : unit -> Window.snapshot

(** {1 Per-request collector}

    Lifecycle, owned by the serve scheduler: {!start} when the job is
    dequeued (queue wait now known), {!run} around the worker thunk
    (installs the collector domain-locally so Trace/Metrics notify it),
    {!finish} once the outcome is classified.  The [active option]
    threading keeps every call a no-op when telemetry is off. *)

type span = {
  sp_id : int;  (** creation order; children have larger ids *)
  sp_parent : int;  (** [-1] only for the root "request" span *)
  sp_name : string;
  sp_fields : (string * value) list;
  sp_start_us : float;  (** µs since request admission *)
  mutable sp_dur_us : float;  (** negative while still open *)
}

type note = {
  nt_span : int;  (** enclosing span id *)
  nt_ts_us : float;
  nt_kind : string;  (** e.g. ["opt-pass"], ["merge-attempt"] *)
  nt_fields : (string * value) list;
}

type trace = {
  tr_id : string;
  tr_kind : string;  (** ["compile"] | ["report"] | ["sweep-cell"] *)
  tr_queue_wait_s : float;
  mutable tr_outcome : string;  (** ["ok"], ["timed_out"], ["crashed"], ... *)
  mutable tr_total_s : float;  (** queue wait + execution *)
  mutable tr_spans : span list;  (** creation order; [0] is the root *)
  mutable tr_notes : note list;  (** emission order *)
  mutable tr_counters : (string * int) list;  (** sorted by name *)
}

type active

val start : ctx option -> kind:string -> queue_wait_s:float -> active option
(** Open a collector for a dequeued request; synthesizes the root
    ["request"] span and its ["queue-wait"] / ["execute"] children.
    [None] in, or the escape hatch set, [None] out. *)

val run : active option -> (unit -> 'a) -> 'a
(** Run the worker thunk with the collector installed domain-locally
    (restored on exit, even on exception). *)

val finish : active option -> outcome:string -> unit
(** Close the frame spans, stamp the outcome, push the finished trace
    into the ring, and record the request into the global window
    ([serve.req.<outcome>] counter; [serve.latency_s],
    [serve.queue_wait_s], [serve.execute_s] histograms). *)

val active : unit -> bool
(** Whether a collector is installed on the calling domain — the guard
    Trace and Metrics use before notifying. *)

val span_enter : string -> (string * value) list -> unit
(** Called by [Trace.span] on entry; opens a child of the innermost open
    span. *)

val span_exit : dur_s:float -> unit
(** Called by [Trace.span] on exit (normal or exceptional); closes the
    innermost instrumentation span and records [span.<name>_s] into the
    global window.  Never closes the synthesized frame spans. *)

val note : string -> (string * value) list -> unit
(** Called by [Trace.record]; attaches a point event to the innermost
    open span. *)

val count : ?by:int -> string -> unit
(** Called by [Metrics.incr]; accumulates into the request's private
    counter table (surfaced as [tr_counters]). *)

(** {1 Finished-trace ring} *)

val set_ring_capacity : int -> unit
(** Default 64; oldest traces are evicted first. *)

val find : string -> trace option
(** Look up a finished request by id ([None] once evicted). *)

val recent : unit -> trace list
(** Newest first. *)

val reset : unit -> unit
(** Clear the ring and the global window (tests). *)

(** {1 Rendering and validation} *)

val render : trace -> string
(** Human-readable span tree: one line per span (duration, offset,
    fields), notes nested under their spans, then the request's counter
    deltas. *)

val check : trace -> (unit, string) result
(** Well-formedness: every span closed, parented (parents precede
    children), and within its parent's and the request's bounds (modulo
    µs clock jitter); every note attached to a known span. *)
