(** Process-wide named-counter / histogram metrics registry.

    Counters and histograms are registered implicitly on first use by
    dotted name (["formation.attempts"], ["stage.time.lower"], ...).
    All operations are domain-safe; increments from parallel sweep
    domains aggregate into the same registry.

    Unlike {!Trace}, metrics are observational aggregates — they are not
    part of any determinism contract (timings differ run to run). *)

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;  (** exact nearest-rank quantiles over all samples; *)
  h_p90 : float;  (** a property of the sample multiset, so identical *)
  h_p99 : float;  (** however the observing domains interleaved *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
  histograms : (string * histogram) list;  (** sorted by name *)
}

val incr : ?by:int -> string -> unit
(** Add [by] (default 1; may be negative) to the named counter.  Also
    notifies the request-scoped {!Telemetry} collector when one is
    active on the calling domain. *)

val set_gauge : string -> float -> unit
(** Set a gauge to an absolute level (queue depth, pool utilization —
    values that go up {e and} down, where a counter's monotone sum would
    be meaningless). *)

val add_gauge : string -> float -> unit
(** Adjust a gauge by a delta (starts from 0). *)

type deltas = (string * int) list
(** Counter increments recorded under {!capture}, sorted by name. *)

val capture : (unit -> 'a) -> 'a * deltas
(** [capture f] runs [f] with the calling domain's {!incr} calls
    diverted into a private table; returns [f]'s result and the summed
    deltas.  Counters are commutative, so {!apply}ing the deltas later
    is indistinguishable from having incremented inline.  {!observe} is
    unaffected (histograms stay global).  Nests; if [f] raises, the
    deltas are discarded. *)

val apply : deltas -> unit
(** Add captured deltas to the global registry (or to an enclosing
    capture, if one is active on this domain). *)

val observe : string -> float -> unit
(** Record one sample into the named histogram. *)

val reset : unit -> unit
(** Drop every counter, gauge and histogram. *)

val snapshot : unit -> snapshot

val counter_value : snapshot -> string -> int
(** 0 when the counter never fired. *)

val gauge_value : snapshot -> string -> float
(** 0.0 when the gauge was never set. *)

val render : Format.formatter -> snapshot -> unit
(** Human-readable table: counters, then gauges, then histograms with
    count/mean/min/max/p50/p90/p99. *)

val to_json : snapshot -> string
(** [{"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
    "sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}}}] with names
    sorted and field order fixed — stable for diffing. *)
