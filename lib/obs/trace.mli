(** Domain-safe structured event tracing.

    A trace is a flat stream of {!event}s recorded from anywhere in the
    stack (formation, the optimizer, the harness).  Recording is a no-op
    until {!start}; {!stop} returns the events sorted by [(cell, seq)],
    which makes the stream {e deterministic} across [--jobs] settings:
    every event is tagged with the engine slot ("cell") it was recorded
    under, and numbered sequentially within that cell, so however the
    domains interleave, sorting recovers the same stream a sequential run
    produces.

    Events carry their fields as an ordered association list; JSON
    rendering preserves that order, so two identical events always render
    to identical bytes (stable field order). *)

type value = Telemetry.value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
      (** Shared with {!Telemetry} so one field list feeds both the
          global stream and a per-request collector. *)

type event = {
  cell : int;  (** engine slot index; [-1] outside a parallel sweep *)
  seq : int;  (** emission index within the cell *)
  kind : string;  (** e.g. ["merge-attempt"], ["opt-pass"] *)
  fields : (string * value) list;  (** rendered in this order *)
}

val start : ?spans:bool -> unit -> unit
(** Clear any previous trace and start recording.  [spans] additionally
    records {!span} events and stamps every point event with a wall-clock
    ["ts"] field (microseconds since [start]) for the Chrome-trace
    exporter.  Span mode is off by default because wall-clock timestamps
    are inherently nondeterministic and would break the [-j1]/[-j4] byte
    identity of the default stream. *)

val stop : unit -> event list
(** Stop recording; return the events sorted by [(cell, seq)] and clear
    the buffer. *)

val is_enabled : unit -> bool
(** Cheap guard for callers that want to skip building field lists.
    True when the global stream is recording {e or} a request-scoped
    {!Telemetry} collector is installed on the calling domain — either
    consumer wants the events. *)

val spans_enabled : unit -> bool
(** Whether span mode is on (see {!start}). *)

val span :
  ?fields:(string * value) list ->
  ?on_close:(float -> unit) ->
  string ->
  (unit -> 'a) ->
  'a
(** [span name f] times [f] and, in span mode, records a ["span"] event
    with [name], ["ts"] and ["dur"] fields (microseconds).  [on_close]
    receives the duration in seconds — always, even when tracing is off
    or [f] raises — so callers can keep their own accounting on the same
    clock ({!Stage.time} builds on this).  When a {!Telemetry} collector
    is active on this domain the span also lands in the owning request's
    span tree. *)

val record : string -> (string * value) list -> unit
(** [record kind fields] appends one event tagged with the calling
    domain's current cell, and notifies the request-scoped collector if
    one is active.  No-op when both are off. *)

val with_cell : int -> (unit -> 'a) -> 'a
(** [with_cell i f] runs [f] with the calling domain's cell index set to
    [i] and its sequence counter reset to [0]; restores the previous
    tagging on exit.  The engine wraps every sweep slot in this. *)

type captured
(** Events recorded by a thunk under {!capture}, held back from the
    shared stream until {!replay}. *)

val capture : (unit -> 'a) -> 'a * captured
(** [capture f] runs [f] with the calling domain's {!record} calls
    diverted into a private buffer; returns [f]'s result and the buffer.
    Nothing reaches the shared stream, and no (cell, seq) coordinates or
    span timestamps are assigned yet.  Nests (inner capture shadows the
    outer); if [f] raises, the buffer is discarded.  Formation's
    speculative trials run under this so a worker-side trial can later
    be replayed at the exact stream position the sequential trial would
    have occupied. *)

val replay : captured -> unit
(** Re-record captured events through the normal {!record} path: they
    are stamped with the replaying domain's current (cell, seq) — and,
    in span mode, a fresh [ts] — exactly as if recorded inline here. *)

val compare_event : event -> event -> int
(** Orders by [(cell, seq)] — the deterministic trace order. *)

val to_json : event -> string
(** One JSON object, no trailing newline.  Field order: [cell], [seq],
    [kind], then [fields] in emission order. *)

val to_chrome_json : event list -> string
(** The whole stream in Chrome trace-event format (JSON-array flavor):
    spans become complete events ([ph "X"]) with microsecond [ts]/[dur],
    everything else an instant ([ph "i"]) with its fields as [args];
    cells map to thread ids.  Open the result in [chrome://tracing] or
    Perfetto. *)
