(** Domain-safe structured event tracing.

    A trace is a flat stream of {!event}s recorded from anywhere in the
    stack (formation, the optimizer, the harness).  Recording is a no-op
    until {!start}; {!stop} returns the events sorted by [(cell, seq)],
    which makes the stream {e deterministic} across [--jobs] settings:
    every event is tagged with the engine slot ("cell") it was recorded
    under, and numbered sequentially within that cell, so however the
    domains interleave, sorting recovers the same stream a sequential run
    produces.

    Events carry their fields as an ordered association list; JSON
    rendering preserves that order, so two identical events always render
    to identical bytes (stable field order). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  cell : int;  (** engine slot index; [-1] outside a parallel sweep *)
  seq : int;  (** emission index within the cell *)
  kind : string;  (** e.g. ["merge-attempt"], ["opt-pass"] *)
  fields : (string * value) list;  (** rendered in this order *)
}

val start : unit -> unit
(** Clear any previous trace and start recording. *)

val stop : unit -> event list
(** Stop recording; return the events sorted by [(cell, seq)] and clear
    the buffer. *)

val is_enabled : unit -> bool
(** Cheap guard for callers that want to skip building field lists. *)

val record : string -> (string * value) list -> unit
(** [record kind fields] appends one event tagged with the calling
    domain's current cell.  No-op when tracing is off. *)

val with_cell : int -> (unit -> 'a) -> 'a
(** [with_cell i f] runs [f] with the calling domain's cell index set to
    [i] and its sequence counter reset to [0]; restores the previous
    tagging on exit.  The engine wraps every sweep slot in this. *)

val compare_event : event -> event -> int
(** Orders by [(cell, seq)] — the deterministic trace order. *)

val to_json : event -> string
(** One JSON object, no trailing newline.  Field order: [cell], [seq],
    [kind], then [fields] in emission order. *)
