(* Per-function / per-block utilization reports.

   This is the presentation half of the provenance layer: the harness
   compiles a workload, runs the cycle simulator with an attribution
   collector, and hands this module plain data rows — block sizes,
   dynamic fetch/fire counts, cycle shares, flushes, the per-lineage-
   class breakdown and the formation decisions that built each block.
   Rendering mirrors the axes of the paper's Tables 2-3: how much of the
   128-slot block capacity formation filled, how much fetched work was
   useful (fired) vs predicated off, and how much of it duplication
   placed there.

   Everything here is deterministic: the cycle model is a timing
   calculation (no wall clock), rows arrive sorted, and the renderers
   use fixed formats — so the same workload produces byte-identical
   reports on any machine at any --jobs setting (make report-check). *)

type class_count = { cls : string; cc_fetched : int; cc_fired : int }

type block_row = {
  block : int;  (* block id in the final CFG *)
  static_size : int;  (* static instruction count *)
  execs : int;  (* dynamic block instances *)
  fetched : int;  (* dynamic instruction slots mapped *)
  fired : int;  (* slots that actually executed *)
  cycles : int;  (* share of the function's total cycles *)
  flushes : int;
  classes : class_count list;  (* sorted by class name *)
  decisions : string list;  (* formation decisions, chronological *)
}

type func_report = {
  fn : string;  (* workload name *)
  capacity : int;  (* machine slot capacity (128) *)
  total_cycles : int;
  blocks : block_row list;  (* sorted by block id *)
}

(* ---- derived quantities ------------------------------------------------- *)

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let duplication_classes = [ "tail_dup"; "unroll"; "peel" ]

(* (fetched, fired) slots placed by a duplicating transform *)
let dup_counts row =
  List.fold_left
    (fun (f, e) c ->
      if List.mem c.cls duplication_classes then
        (f + c.cc_fetched, e + c.cc_fired)
      else (f, e))
    (0, 0) row.classes

let wasted row = row.fetched - row.fired

(* ---- worst-blocks ranking ----------------------------------------------- *)

(** The [n] blocks with the most predicated-off (wasted) fetch slots
    across all functions; ties break by cycles, then name/id, so the
    ranking is total. *)
let worst ?(n = 10) reports =
  let all =
    List.concat_map (fun r -> List.map (fun b -> (r.fn, b)) r.blocks) reports
  in
  let cmp (fa, a) (fb, b) =
    match compare (wasted b) (wasted a) with
    | 0 -> (
      match compare b.cycles a.cycles with
      | 0 -> compare (fa, a.block) (fb, b.block)
      | c -> c)
    | c -> c
  in
  let sorted = List.sort cmp all in
  List.filteri (fun i _ -> i < n) sorted

(* ---- text rendering ------------------------------------------------------ *)

let pp_classes fmt row =
  Fmt.pf fmt "%a"
    (Fmt.list ~sep:(Fmt.any ", ") (fun fmt c ->
         Fmt.pf fmt "%s %d/%d (%.1f%%)" c.cls c.cc_fetched row.fetched
           (pct c.cc_fetched row.fetched)))
    row.classes

let pp_block capacity total_cycles fmt row =
  Fmt.pf fmt "  b%-4d size %3d/%d (%5.1f%%)  execs %6d  fetched %8d  fired %8d (%5.1f%% useful)  cycles %8d (%5.1f%%)  flushes %4d@,"
    row.block row.static_size capacity
    (pct row.static_size capacity)
    row.execs row.fetched row.fired (pct row.fired row.fetched) row.cycles
    (pct row.cycles total_cycles)
    row.flushes;
  if row.classes <> [] then Fmt.pf fmt "        classes: %a@," pp_classes row;
  let dup_fetched, dup_fired = dup_counts row in
  if dup_fetched > 0 then
    Fmt.pf fmt "        duplication: fetched %d, executed %d, wasted %d@,"
      dup_fetched dup_fired (dup_fetched - dup_fired);
  if row.decisions <> [] then
    Fmt.pf fmt "        formed by: %a@,"
      (Fmt.list ~sep:(Fmt.any "; ") Fmt.string)
      row.decisions

let pp_func fmt r =
  let fetched = List.fold_left (fun a b -> a + b.fetched) 0 r.blocks in
  let fired = List.fold_left (fun a b -> a + b.fired) 0 r.blocks in
  let static = List.fold_left (fun a b -> a + b.static_size) 0 r.blocks in
  let n = List.length r.blocks in
  let mean_size = if n = 0 then 0.0 else float_of_int static /. float_of_int n in
  Fmt.pf fmt "@[<v>function %s: cycles %d, blocks %d, mean size %.1f/%d (%.1f%% of capacity), useful %.1f%%@,"
    r.fn r.total_cycles n mean_size r.capacity
    (100.0 *. mean_size /. float_of_int r.capacity)
    (pct fired fetched);
  List.iter (fun b -> pp_block r.capacity r.total_cycles fmt b) r.blocks;
  Fmt.pf fmt "@]"

let render fmt reports =
  Fmt.pf fmt "@[<v>";
  List.iter (fun r -> Fmt.pf fmt "%a@," pp_func r) reports;
  (match worst reports with
  | [] -> ()
  | ws ->
    Fmt.pf fmt "worst blocks by predicated-off (wasted) fetch slots:@,";
    List.iteri
      (fun i (fn, b) ->
        Fmt.pf fmt "  %2d. %s b%d: wasted %d of %d fetched, cycles %d%s@," (i + 1)
          fn b.block (wasted b) b.fetched b.cycles
          (if b.decisions = [] then ""
           else "  [" ^ String.concat "; " b.decisions ^ "]"))
      ws);
  Fmt.pf fmt "@]"

(* ---- JSON ---------------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_json reports =
  let buf = Buffer.create 4096 in
  let str s =
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  in
  Buffer.add_string buf "{\"functions\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      str r.fn;
      Buffer.add_string buf
        (Printf.sprintf ",\"capacity\":%d,\"cycles\":%d,\"blocks\":["
           r.capacity r.total_cycles);
      List.iteri
        (fun j b ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "{\"block\":%d,\"size\":%d,\"execs\":%d,\"fetched\":%d,\"fired\":%d,\"cycles\":%d,\"flushes\":%d,\"classes\":{"
               b.block b.static_size b.execs b.fetched b.fired b.cycles
               b.flushes);
          List.iteri
            (fun k c ->
              if k > 0 then Buffer.add_char buf ',';
              str c.cls;
              Buffer.add_string buf
                (Printf.sprintf ":{\"fetched\":%d,\"fired\":%d}" c.cc_fetched
                   c.cc_fired))
            b.classes;
          Buffer.add_string buf "},\"decisions\":[";
          List.iteri
            (fun k d ->
              if k > 0 then Buffer.add_char buf ',';
              str d)
            b.decisions;
          Buffer.add_string buf "]}")
        r.blocks;
      Buffer.add_string buf "]}")
    reports;
  Buffer.add_string buf "]}";
  Buffer.contents buf
