(** Cooperative per-stage watchdog: wall-clock deadlines and fuel
    budgets for the long loops of the pipeline.

    The convergent formation loop and the simulators are exactly the
    code a pathological input can spin: an adversarial CFG can make
    formation retry merges for minutes, and a block with no instructions
    can loop the functional simulator forever without ever burning its
    {e instruction}-count fuel.  The watchdog bounds both failure modes
    cooperatively: a scope installed around a stage carries an absolute
    deadline and/or a fuel budget, the hot loops poll {!check} (a
    domain-local read — a few nanoseconds when no scope is active), and
    an exhausted budget raises the structured {!Timed_out} exception,
    which the pipeline's degradation machinery turns into a per-cell
    failure report instead of a hung sweep.

    Scopes are domain-local (each sweep row runs its own), nest by
    taking the tighter deadline, and cost nothing when absent: with no
    deadline or fuel configured anywhere, every output of the system is
    byte-identical to a build without the watchdog. *)

type reason =
  | Deadline of float  (** the configured budget, in seconds *)
  | Fuel of int  (** the configured budget, in {!check} calls *)

exception
  Timed_out of {
    wd_stage : string;  (** label of the scope that expired *)
    wd_reason : reason;
    wd_spent_s : float;  (** wall-clock spent in the scope at the trip *)
  }

val pp_reason : Format.formatter -> reason -> unit

val pp_timed_out : Format.formatter -> string * reason * float -> unit
(** Render the payload of a {!Timed_out} as one line. *)

val active : unit -> bool
(** Is a scope with a deadline or fuel budget installed on this domain? *)

val run : ?deadline_s:float -> ?fuel:int -> stage:string -> (unit -> 'a) -> 'a
(** Run the thunk under a scope.  [deadline_s] is relative wall-clock
    seconds from now; [fuel] a budget of {!check} calls.  With neither,
    the thunk runs scope-free (the call is a no-op wrapper).  Nested
    scopes keep the {e tighter} of the inherited and the new deadline
    (fuel is per-scope).  The scope is removed on exit, normal or
    exceptional. *)

val check : unit -> unit
(** Poll the active scope: decrement fuel, compare the clock.
    @raise Timed_out when either budget is exhausted.  A no-op (one
    domain-local read) when no scope is active. *)

(** {2 Global stage policy}

    [Stage.time] consults this policy and wraps each pipeline stage it
    times in a scope — the hook the sweep harness and [chfc
    --stage-deadline] use to bound every cell of an experiment without
    threading options through every call site.  Set from the main domain
    before a sweep; read from worker domains. *)

val set_stage_policy :
  ?deadline_s:float -> ?fuel:int -> ?stages:string list -> unit -> unit
(** Install the policy: every stage named in [stages] (default: all
    stages) gets [deadline_s]/[fuel].  Call with neither budget to clear
    the policy. *)

val stage_policy : string -> (float option * int option) option
(** Budgets for stage [name] under the current policy, or [None] when
    the watchdog is off (or the policy names other stages only). *)
