(* Textual reproducer corpus: a stable, diffable, line-oriented
   rendering of one fuzz case.  Writer and parser round-trip exactly
   (asserted in the tests), so minimized reproducers commit as
   regression files and replay across sessions. *)

open Trips_ir

type entry = { bucket : string option; case : Gen.case }

(* ---- rendering --------------------------------------------------------- *)

let all_binops =
  Opcode.
    [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Asr ]

let all_cmpops = Opcode.[ Eq; Ne; Lt; Le; Gt; Ge ]

let binop_of_string s =
  List.find_opt (fun b -> Opcode.binop_to_string b = s) all_binops

let cmpop_of_string s =
  List.find_opt (fun c -> Opcode.cmpop_to_string c = s) all_cmpops

let operand_str = function
  | Instr.Reg r -> Fmt.str "reg %d" r
  | Instr.Imm k -> Fmt.str "imm %d" k

let op_str = function
  | Instr.Binop (b, d, x, y) ->
    Fmt.str "%s %d %s %s" (Opcode.binop_to_string b) d (operand_str x)
      (operand_str y)
  | Instr.Cmp (c, d, x, y) ->
    Fmt.str "cmp %s %d %s %s" (Opcode.cmpop_to_string c) d (operand_str x)
      (operand_str y)
  | Instr.Mov (d, x) -> Fmt.str "mov %d %s" d (operand_str x)
  | Instr.Load (d, a, o) -> Fmt.str "load %d %s %d" d (operand_str a) o
  | Instr.Store (v, a, o) -> Fmt.str "store %s %s %d" (operand_str v) (operand_str a) o
  | Instr.Nullw r -> Fmt.str "nullw %d" r

let guard_str = function
  | None -> ""
  | Some { Instr.greg; sense } -> Fmt.str "g %d %d " greg (if sense then 1 else 0)

let render ?bucket (case : Gen.case) =
  let buf = Buffer.create 1024 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# chfc fuzz reproducer";
  line "shape %s" (Gen.shape_name case.Gen.shape);
  line "seed %d" case.Gen.seed;
  Option.iter (fun b -> line "bucket %s" b) bucket;
  (match case.Gen.payload with
  | Gen.Lang_case r ->
    line "recipe-name %s" r.Trips_workloads.Spec_like.name;
    line "recipe-seed %d" r.Trips_workloads.Spec_like.seed;
    line "recipe-outer %d" r.Trips_workloads.Spec_like.outer_iters;
    line "recipe-segments %d" r.Trips_workloads.Spec_like.segments;
    line "recipe-density %f" r.Trips_workloads.Spec_like.branch_density;
    line "recipe-bias %f" r.Trips_workloads.Spec_like.branch_bias;
    line "recipe-while %f" r.Trips_workloads.Spec_like.while_fraction;
    line "recipe-nest %f" r.Trips_workloads.Spec_like.nest_prob;
    line "recipe-stmts %d" r.Trips_workloads.Spec_like.stmts_per_block;
    line "recipe-trips %s"
      (String.concat ","
         (List.map string_of_int r.Trips_workloads.Spec_like.trip_choices))
  | Gen.Cfg_case { cfg; registers; mem_words } ->
    line "name %s" cfg.Cfg.name;
    line "mem %d" mem_words;
    List.iter (fun (r, v) -> line "reg %d %d" r v) registers;
    line "entry %d" cfg.Cfg.entry;
    List.iter
      (fun id ->
        let b = Cfg.block cfg id in
        line "block %d" id;
        List.iter
          (fun (i : Instr.t) ->
            line "  i %d %s%s" i.Instr.id (guard_str i.Instr.guard)
              (op_str i.Instr.op))
          b.Block.instrs;
        List.iter
          (fun (e : Block.exit_) ->
            let tgt =
              match e.Block.target with
              | Block.Goto d -> Fmt.str "goto %d" d
              | Block.Ret None -> "ret none"
              | Block.Ret (Some o) -> Fmt.str "ret %s" (operand_str o)
            in
            line "  x %s%s" (guard_str e.Block.eguard) tgt)
          b.Block.exits;
        line "end")
      (Cfg.block_ids cfg));
  Buffer.contents buf

(* ---- parsing ----------------------------------------------------------- *)

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

exception Bad of string

let int_of w = match int_of_string_opt w with
  | Some n -> n
  | None -> raise (Bad ("expected integer, got " ^ w))

let float_of w = match float_of_string_opt w with
  | Some f -> f
  | None -> raise (Bad ("expected float, got " ^ w))

let parse_operand = function
  | "reg" :: r :: rest -> (Instr.Reg (int_of r), rest)
  | "imm" :: k :: rest -> (Instr.Imm (int_of k), rest)
  | w :: _ -> raise (Bad ("expected operand, got " ^ w))
  | [] -> raise (Bad "expected operand, got end of line")

let parse_guard = function
  | "g" :: r :: s :: rest ->
    (Some { Instr.greg = int_of r; sense = int_of s <> 0 }, rest)
  | rest -> (None, rest)

let parse_op ws =
  match ws with
  | "cmp" :: c :: d :: rest ->
    let c = match cmpop_of_string c with
      | Some c -> c
      | None -> raise (Bad ("unknown cmp op " ^ c))
    in
    let x, rest = parse_operand rest in
    let y, rest = parse_operand rest in
    if rest <> [] then raise (Bad "trailing tokens");
    Instr.Cmp (c, int_of d, x, y)
  | "mov" :: d :: rest ->
    let x, rest = parse_operand rest in
    if rest <> [] then raise (Bad "trailing tokens");
    Instr.Mov (int_of d, x)
  | "load" :: d :: rest ->
    let a, rest = parse_operand rest in
    (match rest with
    | [ o ] -> Instr.Load (int_of d, a, int_of o)
    | _ -> raise (Bad "load: expected offset"))
  | "store" :: rest ->
    let v, rest = parse_operand rest in
    let a, rest = parse_operand rest in
    (match rest with
    | [ o ] -> Instr.Store (v, a, int_of o)
    | _ -> raise (Bad "store: expected offset"))
  | [ "nullw"; r ] -> Instr.Nullw (int_of r)
  | b :: d :: rest -> (
    match binop_of_string b with
    | None -> raise (Bad ("unknown op " ^ b))
    | Some b ->
      let x, rest = parse_operand rest in
      let y, rest = parse_operand rest in
      if rest <> [] then raise (Bad "trailing tokens");
      Instr.Binop (b, int_of d, x, y))
  | _ -> raise (Bad "malformed instruction")

let parse_target = function
  | [ "goto"; d ] -> Block.Goto (int_of d)
  | [ "ret"; "none" ] -> Block.Ret None
  | "ret" :: rest ->
    let o, rest = parse_operand rest in
    if rest <> [] then raise (Bad "trailing tokens");
    Block.Ret (Some o)
  | _ -> raise (Bad "malformed exit target")

type st = {
  mutable shape : Gen.shape option;
  mutable seed : int option;
  mutable bucket : string option;
  mutable name : string;
  mutable mem : int;
  mutable regs : (int * int) list;
  mutable entry : int option;
  mutable blocks : (int * Instr.t list * Block.exit_ list) list;
  (* recipe fields, only meaningful for lang cases *)
  mutable r_name : string;
  mutable r_seed : int;
  mutable r_outer : int;
  mutable r_segments : int;
  mutable r_density : float;
  mutable r_bias : float;
  mutable r_while : float;
  mutable r_nest : float;
  mutable r_stmts : int;
  mutable r_trips : int list;
}

let parse text =
  let st =
    {
      shape = None; seed = None; bucket = None; name = "corpus"; mem = 256;
      regs = []; entry = None; blocks = [];
      r_name = "corpus"; r_seed = 1; r_outer = 1; r_segments = 1;
      r_density = 0.0; r_bias = 0.5; r_while = 0.0; r_nest = 0.0;
      r_stmts = 1; r_trips = [ 1 ];
    }
  in
  let cur : (int * Instr.t list ref * Block.exit_ list ref) option ref = ref None in
  let lineno = ref 0 in
  try
    String.split_on_char '\n' text
    |> List.iter (fun raw ->
           incr lineno;
           let l = String.trim raw in
           if l = "" || l.[0] = '#' then ()
           else
             match (words l, !cur) with
             | "i" :: id :: rest, Some (_, instrs, _) ->
               let guard, rest = parse_guard rest in
               instrs := Instr.make ?guard (int_of id) (parse_op rest) :: !instrs
             | "x" :: rest, Some (_, _, exits) ->
               let eguard, rest = parse_guard rest in
               exits := { Block.eguard; target = parse_target rest } :: !exits
             | [ "end" ], Some (id, instrs, exits) ->
               st.blocks <- (id, List.rev !instrs, List.rev !exits) :: st.blocks;
               cur := None
             | [ "block"; id ], None -> cur := Some (int_of id, ref [], ref [])
             | [ "shape"; s ], None -> (
               match Gen.shape_of_name s with
               | Some sh -> st.shape <- Some sh
               | None -> raise (Bad ("unknown shape " ^ s)))
             | [ "seed"; n ], None -> st.seed <- Some (int_of n)
             | "bucket" :: rest, None -> st.bucket <- Some (String.concat " " rest)
             | [ "name"; n ], None -> st.name <- n
             | [ "mem"; n ], None -> st.mem <- int_of n
             | [ "reg"; r; v ], None -> st.regs <- (int_of r, int_of v) :: st.regs
             | [ "entry"; n ], None -> st.entry <- Some (int_of n)
             | [ "recipe-name"; n ], None -> st.r_name <- n
             | [ "recipe-seed"; n ], None -> st.r_seed <- int_of n
             | [ "recipe-outer"; n ], None -> st.r_outer <- int_of n
             | [ "recipe-segments"; n ], None -> st.r_segments <- int_of n
             | [ "recipe-density"; f ], None -> st.r_density <- float_of f
             | [ "recipe-bias"; f ], None -> st.r_bias <- float_of f
             | [ "recipe-while"; f ], None -> st.r_while <- float_of f
             | [ "recipe-nest"; f ], None -> st.r_nest <- float_of f
             | [ "recipe-stmts"; n ], None -> st.r_stmts <- int_of n
             | [ "recipe-trips"; ts ], None ->
               st.r_trips <-
                 String.split_on_char ',' ts |> List.map int_of
             | _ -> raise (Bad ("unrecognized line: " ^ l)));
    if !cur <> None then raise (Bad "unterminated block");
    let shape = match st.shape with
      | Some s -> s
      | None -> raise (Bad "missing shape")
    in
    let seed = match st.seed with
      | Some s -> s
      | None -> raise (Bad "missing seed")
    in
    let case =
      match shape with
      | Gen.Lang_program ->
        {
          Gen.shape; seed;
          payload =
            Gen.Lang_case
              {
                Trips_workloads.Spec_like.name = st.r_name;
                seed = st.r_seed;
                outer_iters = st.r_outer;
                segments = st.r_segments;
                branch_density = st.r_density;
                branch_bias = st.r_bias;
                while_fraction = st.r_while;
                trip_choices = st.r_trips;
                nest_prob = st.r_nest;
                stmts_per_block = st.r_stmts;
              };
        }
      | _ ->
        let entry = match st.entry with
          | Some e -> e
          | None -> raise (Bad "missing entry")
        in
        let cfg = Cfg.create ~name:st.name () in
        let max_block = ref 0 and max_instr = ref 0 and max_reg = ref 0 in
        List.iter
          (fun (id, instrs, exits) ->
            max_block := max !max_block id;
            List.iter
              (fun (i : Instr.t) ->
                max_instr := max !max_instr i.Instr.id;
                List.iter (fun r -> max_reg := max !max_reg r)
                  (Instr.defs i @ Instr.uses i))
              instrs;
            Cfg.set_block cfg (Block.make id instrs exits))
          (List.rev st.blocks);
        cfg.Cfg.entry <- entry;
        cfg.Cfg.next_block <- !max_block + 1;
        cfg.Cfg.next_instr <- !max_instr + 1;
        cfg.Cfg.next_reg <- max (!max_reg + 1) Machine.first_virtual_reg;
        Cfg.validate cfg;
        {
          Gen.shape; seed;
          payload =
            Gen.Cfg_case
              { cfg; registers = List.rev st.regs; mem_words = st.mem };
        }
    in
    Ok { bucket = st.bucket; case }
  with
  | Bad msg -> Error (Fmt.str "line %d: %s" !lineno msg)
  | Cfg.Ill_formed msg -> Error ("ill-formed CFG: " ^ msg)

(* ---- filesystem -------------------------------------------------------- *)

let save ~dir ~name ?bucket case =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".chfz") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?bucket case));
  path

let load_dir dir =
  if not (Sys.file_exists dir) then Ok []
  else
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".chfz")
      |> List.sort compare
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest -> (
        let path = Filename.concat dir f in
        let ic = open_in_bin path in
        let text =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match parse text with
        | Ok e -> go ((f, e) :: acc) rest
        | Error msg -> Error (Fmt.str "%s: %s" path msg))
    in
    go [] files
