(** Crash bucketing: map an oracle failure to a stable fingerprint.

    Two failing fuzz cases land in the same bucket when they broke the
    same way: the same pipeline stage, the same exception constructor or
    verifier violation set, the same over-budget axes.  Buckets are what
    the fuzzer deduplicates, shrinks and reports on — a thousand cases
    tripping one formation bug is one bucket with a count, not a
    thousand findings. *)

val slug : string -> string
(** Collapse a free-form message to a filename-safe fingerprint atom:
    lowercase, [[a-z0-9]] runs kept, everything else a single dash. *)

val of_violations : Trips_verify.Cfg_verify.violation list -> string
(** Fingerprint of a structural-violation set: the sorted, deduplicated
    constructor names, with {!Trips_verify.Cfg_verify.Over_budget}
    refined by which budget axes are exceeded (an instruction-count
    blowout and an LSID blowout are different bugs). *)

val of_exn : stage:string -> exn -> string
(** Fingerprint of an escaped exception: the constructor (not the
    payload, which varies per case), prefixed by the stage. A
    {!Trips_obs.Watchdog.Timed_out} becomes [timeout:<scope>]. *)

val of_diff_failure : Trips_verify.Diff_check.failure -> string
(** Fingerprint of a per-phase differential failure: the failing phase
    plus the kind (structural fingerprint, divergence, or crash). *)

val divergence : stage:string -> string
(** Fingerprint for an end-to-end checksum mismatch at [stage]. *)
