(** Textual reproducer corpus under [test/corpus/].

    A corpus file is a self-contained, line-oriented rendering of one
    fuzz case — either a full CFG (blocks, instructions, guards, exits,
    initial registers and memory size) or a mini-language recipe — plus
    the bucket it was filed under.  The format is stable and diffable,
    so minimized reproducers commit as regression tests and replay
    byte-for-byte across sessions ([chfc fuzz --corpus DIR]). *)

type entry = { bucket : string option; case : Gen.case }

val render : ?bucket:string -> Gen.case -> string
(** Serialize a case to the corpus text format. *)

val parse : string -> (entry, string) result
(** Parse a corpus file's contents; [Error] carries a message with the
    offending line. *)

val save : dir:string -> name:string -> ?bucket:string -> Gen.case -> string
(** Write the case to [dir/name.chfz] (creating [dir] if needed) and
    return the path. *)

val load_dir : string -> ((string * entry) list, string) result
(** Parse every [*.chfz] file in the directory, sorted by filename; the
    first unparsable file fails the whole load. *)
