(** Seeded adversarial case generator for the fuzzer.

    Every shape targets a hard case of hyperblock formation: irreducible
    regions that defeat loop-based head duplication, blocks sitting
    exactly at the 32-store budget, deep dataflow-predicate chains,
    switch-style indirect fanout, register-bank pressure near the 32
    read/write budgets, degenerate single blocks near the 128-slot cap,
    random strict CFGs, and whole mini-language programs with
    adversarial control-flow knobs.

    All generated CFGs are valid inputs by construction: structurally
    well formed ({!Trips_ir.Cfg.validate} and
    {!Trips_verify.Cfg_verify.check} clean), self-contained (no
    parameter registers), and terminating (every loop counts down a
    counter initialized in the entry block), so any oracle failure
    indicts the pipeline, never the case.  Generation is deterministic
    per seed. *)

open Trips_ir

type shape =
  | Irreducible  (** a two-entry loop: head duplication cannot normalize it *)
  | Nested_loops  (** a depth-2..4 counted loop nest *)
  | Store_dense  (** chained blocks at exactly the 32-store budget *)
  | Predicate_chain  (** a deep chain of guarded computes and compares *)
  | Fanout  (** a switch-style dispatch with 6..10 one-hot guarded exits *)
  | Bank_pressure  (** cross-block value sets near the 32 read/write budgets *)
  | Giant_block  (** one block near the 128-instruction cap, self-looping *)
  | Random_cfg  (** a random connected strict CFG, forward-progress execution *)
  | Lang_program  (** a mini-language program with adversarial recipe knobs *)

val all_shapes : shape list
val shape_name : shape -> string
val shape_of_name : string -> shape option

type payload =
  | Cfg_case of {
      cfg : Cfg.t;
      registers : (int * int) list;  (** parameter preloads (usually empty) *)
      mem_words : int;
    }
  | Lang_case of Trips_workloads.Spec_like.recipe

type case = { shape : shape; seed : int; payload : payload }

val memory_of : mem_words:int -> int array
(** The deterministic initial memory image every CFG-case run uses. *)

val generate : shape -> seed:int -> case
(** Build one case; deterministic per [(shape, seed)]. *)

val generate_nth : base_seed:int -> int -> case
(** Case [i] of a campaign: shapes round-robin so every campaign covers
    all of them, with a per-case seed derived from [base_seed] and [i]. *)
