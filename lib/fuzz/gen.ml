(* Seeded adversarial case generator.  Every CFG case is valid and
   terminating by construction: loops count down a counter initialized
   in the entry block, guards are defined before use in their own block,
   and multi-way exits carry one-hot guard sets — so an oracle failure
   always indicts the pipeline, never the case. *)

open Trips_ir

type shape =
  | Irreducible
  | Nested_loops
  | Store_dense
  | Predicate_chain
  | Fanout
  | Bank_pressure
  | Giant_block
  | Random_cfg
  | Lang_program

let all_shapes =
  [
    Irreducible; Nested_loops; Store_dense; Predicate_chain; Fanout;
    Bank_pressure; Giant_block; Random_cfg; Lang_program;
  ]

let shape_name = function
  | Irreducible -> "irreducible"
  | Nested_loops -> "nested-loops"
  | Store_dense -> "store-dense"
  | Predicate_chain -> "predicate-chain"
  | Fanout -> "fanout"
  | Bank_pressure -> "bank-pressure"
  | Giant_block -> "giant-block"
  | Random_cfg -> "random-cfg"
  | Lang_program -> "lang-program"

let shape_of_name s = List.find_opt (fun sh -> shape_name sh = s) all_shapes

type payload =
  | Cfg_case of {
      cfg : Cfg.t;
      registers : (int * int) list;
      mem_words : int;
    }
  | Lang_case of Trips_workloads.Spec_like.recipe

type case = { shape : shape; seed : int; payload : payload }

let mem_words = 256

let memory_of ~mem_words = Array.init mem_words (fun i -> (i * 7) mod 31)

(* ---- CFG-building helpers --------------------------------------------- *)

let ret_exit = { Block.eguard = None; target = Block.Ret None }
let goto b = { Block.eguard = None; target = Block.Goto b }

let gif r b =
  { Block.eguard = Some { Instr.greg = r; sense = true }; target = Block.Goto b }

let gelse r b =
  { Block.eguard = Some { Instr.greg = r; sense = false }; target = Block.Goto b }

(* counter decrement + "still positive" test, appended to a latch block *)
let count_down cfg c =
  let p = Cfg.fresh_reg cfg in
  ( [
      Cfg.instr cfg (Instr.Binop (Opcode.Sub, c, Instr.Reg c, Instr.Imm 1));
      Cfg.instr cfg (Instr.Cmp (Opcode.Gt, p, Instr.Reg c, Instr.Imm 0));
    ],
    p )

let mov cfg d v = Cfg.instr cfg (Instr.Mov (d, Instr.Imm v))

let store cfg v addr = Cfg.instr cfg (Instr.Store (v, Instr.Imm (addr mod mem_words), 0))

let finish shape seed cfg =
  Cfg.validate cfg;
  (* one case in seven runs against a zero-length memory: the total
     semantics (loads read 0, stores vanish) must survive every
     transformation and both simulators, not just the happy path.
     Immediate addresses still use the module-level [mem_words], so
     generation itself never divides by the case's memory size. *)
  let mem_words = if seed mod 7 = 0 then 0 else mem_words in
  { shape; seed; payload = Cfg_case { cfg; registers = []; mem_words } }

(* ---- shapes ------------------------------------------------------------ *)

(* A two-entry loop {b, c}: entry branches into either side on a data
   test, and each side jumps to the other while a shared counter stays
   positive.  No single header dominates the region, so loop-based head
   duplication (peel/unroll) cannot normalize it — formation must cope
   with tail duplication alone. *)
let gen_irreducible rng seed =
  let cfg = Cfg.create ~name:(Fmt.str "fz-irr-%d" seed) () in
  let entry = Cfg.fresh_block_id cfg in
  let b = Cfg.fresh_block_id cfg in
  let c = Cfg.fresh_block_id cfg in
  let x = Cfg.fresh_block_id cfg in
  let cnt = Cfg.fresh_reg cfg in
  let sel = Cfg.fresh_reg cfg in
  let p = Cfg.fresh_reg cfg in
  let n = 6 + Random.State.int rng 14 in
  Cfg.set_block cfg
    (Block.make entry
       [
         mov cfg cnt n;
         mov cfg sel (seed land 1);
         Cfg.instr cfg (Instr.Cmp (Opcode.Eq, p, Instr.Reg sel, Instr.Imm 0));
       ]
       [ gif p b; gelse p c ]);
  let side id other addr =
    let decs, q = count_down cfg cnt in
    Cfg.set_block cfg
      (Block.make id
         (decs @ [ store cfg (Instr.Reg cnt) addr ])
         [ gif q other; gelse q x ])
  in
  side b c (Random.State.int rng 64);
  side c b (64 + Random.State.int rng 64);
  Cfg.set_block cfg (Block.make x [] [ ret_exit ]);
  cfg.Cfg.entry <- entry;
  finish Irreducible seed cfg

(* A counted loop nest of depth 2..4: init_i -> head_i -> ... inner ...
   -> latch_i, each level with its own countdown counter.  Stresses
   unroll/peel interaction across levels and trip-count profiles. *)
let gen_nested_loops rng seed =
  let cfg = Cfg.create ~name:(Fmt.str "fz-nest-%d" seed) () in
  let depth = 2 + Random.State.int rng 3 in
  let acc = Cfg.fresh_reg cfg in
  (* level i builds init -> head -> (inner levels) -> latch, looping
     latch -> head while its counter is positive and falling through to
     [exit_to] when it runs out *)
  let rec level i ~exit_to =
    let trips = 2 + Random.State.int rng 3 in
    let cnt = Cfg.fresh_reg cfg in
    let init = Cfg.fresh_block_id cfg in
    let head = Cfg.fresh_block_id cfg in
    let latch = Cfg.fresh_block_id cfg in
    let inner_entry =
      if i + 1 = depth then latch else level (i + 1) ~exit_to:latch
    in
    Cfg.set_block cfg (Block.make init [ mov cfg cnt trips ] [ goto head ]);
    Cfg.set_block cfg
      (Block.make head
         [
           Cfg.instr cfg
             (Instr.Binop (Opcode.Add, acc, Instr.Reg acc, Instr.Reg cnt));
           store cfg (Instr.Reg acc) ((i * 16) + Random.State.int rng 16);
         ]
         [ goto inner_entry ]);
    let decs, p = count_down cfg cnt in
    Cfg.set_block cfg (Block.make latch decs [ gif p head; gelse p exit_to ]);
    init
  in
  let entry = Cfg.fresh_block_id cfg in
  let out = Cfg.fresh_block_id cfg in
  let top_init = level 0 ~exit_to:out in
  Cfg.set_block cfg (Block.make entry [ mov cfg acc 0 ] [ goto top_init ]);
  Cfg.set_block cfg (Block.make out [] [ ret_exit ]);
  cfg.Cfg.entry <- entry;
  finish Nested_loops seed cfg

(* A chain of 2..4 blocks each carrying exactly the 32-store budget,
   looped a few times: formation must refuse every merge on the LSID
   axis while the pre-filter and trial-install paths agree. *)
let gen_store_dense rng seed =
  let cfg = Cfg.create ~name:(Fmt.str "fz-store-%d" seed) () in
  let k = 2 + Random.State.int rng 3 in
  let entry = Cfg.fresh_block_id cfg in
  let chain = List.init k (fun _ -> Cfg.fresh_block_id cfg) in
  let out = Cfg.fresh_block_id cfg in
  let cnt = Cfg.fresh_reg cfg in
  Cfg.set_block cfg
    (Block.make entry
       [ mov cfg cnt (2 + Random.State.int rng 3) ]
       [ goto (List.hd chain) ]);
  List.iteri
    (fun i id ->
      let stores =
        List.init Machine.max_load_store (fun j ->
            store cfg (Instr.Imm ((i * 37) + j)) ((i * Machine.max_load_store) + j))
      in
      let last = i = k - 1 in
      if last then begin
        let decs, p = count_down cfg cnt in
        Cfg.set_block cfg
          (Block.make id (stores @ decs) [ gif p (List.hd chain); gelse p out ])
      end
      else Cfg.set_block cfg (Block.make id stores [ goto (List.nth chain (i + 1)) ]))
    chain;
  Cfg.set_block cfg (Block.make out [] [ ret_exit ]);
  cfg.Cfg.entry <- entry;
  finish Store_dense seed cfg

(* One block with a deep chain of compares and guarded computes — each
   instruction predicated on the previous predicate — ending in a
   guarded two-way exit.  Stresses predicate-aware liveness and the
   exactly-one-exit invariant under deep dataflow predication. *)
let gen_predicate_chain rng seed =
  let cfg = Cfg.create ~name:(Fmt.str "fz-pred-%d" seed) () in
  let entry = Cfg.fresh_block_id cfg in
  let chain = Cfg.fresh_block_id cfg in
  let a = Cfg.fresh_block_id cfg in
  let b = Cfg.fresh_block_id cfg in
  let latch = Cfg.fresh_block_id cfg in
  let out = Cfg.fresh_block_id cfg in
  let cnt = Cfg.fresh_reg cfg in
  let x = Cfg.fresh_reg cfg in
  Cfg.set_block cfg
    (Block.make entry
       [ mov cfg cnt (2 + Random.State.int rng 4); mov cfg x (seed mod 97) ]
       [ goto chain ]);
  let depth = 8 + Random.State.int rng 16 in
  let instrs = ref [] in
  let prev = ref None in
  for i = 0 to depth - 1 do
    let p = Cfg.fresh_reg cfg in
    let guard =
      Option.map (fun g -> { Instr.greg = g; sense = i land 1 = 0 }) !prev
    in
    instrs :=
      Cfg.instr ?guard cfg
        (Instr.Binop (Opcode.Xor, x, Instr.Reg x, Instr.Imm (i + 1)))
      :: Cfg.instr cfg (Instr.Cmp (Opcode.Gt, p, Instr.Reg x, Instr.Imm i))
      :: !instrs;
    prev := Some p
  done;
  let last = Option.get !prev in
  Cfg.set_block cfg (Block.make chain (List.rev !instrs) [ gif last a; gelse last b ]);
  Cfg.set_block cfg
    (Block.make a [ store cfg (Instr.Reg x) (seed mod 32) ] [ goto latch ]);
  Cfg.set_block cfg
    (Block.make b [ store cfg (Instr.Imm 5) (32 + (seed mod 32)) ] [ goto latch ]);
  let decs, p = count_down cfg cnt in
  Cfg.set_block cfg (Block.make latch decs [ gif p chain; gelse p out ]);
  Cfg.set_block cfg (Block.make out [] [ ret_exit ]);
  cfg.Cfg.entry <- entry;
  finish Predicate_chain seed cfg

(* A switch-style dispatch: the selector varies per iteration and every
   target is a distinct guarded exit (one-hot by construction), the
   indirect-branch texture that forces heavy tail duplication. *)
let gen_fanout rng seed =
  let cfg = Cfg.create ~name:(Fmt.str "fz-fan-%d" seed) () in
  let k = 6 + Random.State.int rng 5 in
  let entry = Cfg.fresh_block_id cfg in
  let dispatch = Cfg.fresh_block_id cfg in
  let targets = List.init k (fun _ -> Cfg.fresh_block_id cfg) in
  let latch = Cfg.fresh_block_id cfg in
  let out = Cfg.fresh_block_id cfg in
  let cnt = Cfg.fresh_reg cfg in
  let base = Cfg.fresh_reg cfg in
  let s = Cfg.fresh_reg cfg in
  Cfg.set_block cfg
    (Block.make entry
       [ mov cfg cnt (4 + Random.State.int rng 8); mov cfg base (seed mod 1009) ]
       [ goto dispatch ]);
  let tests =
    List.mapi
      (fun i _ ->
        let e = Cfg.fresh_reg cfg in
        (e, Cfg.instr cfg (Instr.Cmp (Opcode.Eq, e, Instr.Reg s, Instr.Imm i))))
      targets
  in
  Cfg.set_block cfg
    (Block.make dispatch
       ([
          Cfg.instr cfg (Instr.Binop (Opcode.Add, s, Instr.Reg base, Instr.Reg cnt));
          Cfg.instr cfg (Instr.Binop (Opcode.Rem, s, Instr.Reg s, Instr.Imm k));
        ]
       @ List.map snd tests)
       (List.map2 (fun (e, _) t -> gif e t) tests targets));
  List.iteri
    (fun i t ->
      Cfg.set_block cfg
        (Block.make t
           [ store cfg (Instr.Imm (i * 11)) (i + (seed mod 16)) ]
           [ goto latch ]))
    targets;
  let decs, p = count_down cfg cnt in
  Cfg.set_block cfg (Block.make latch decs [ gif p dispatch; gelse p out ]);
  Cfg.set_block cfg (Block.make out [] [ ret_exit ]);
  cfg.Cfg.entry <- entry;
  finish Fanout seed cfg

(* Two blocks exchanging a wide set of live values: the producer defines
   ~28 distinct registers, the consumer reads them all — right at the
   32-read/32-write budgets, where merging must fail on the bank axes
   and fanout insertion works hardest. *)
let gen_bank_pressure rng seed =
  let cfg = Cfg.create ~name:(Fmt.str "fz-bank-%d" seed) () in
  let entry = Cfg.fresh_block_id cfg in
  let producer = Cfg.fresh_block_id cfg in
  let consumer = Cfg.fresh_block_id cfg in
  let out = Cfg.fresh_block_id cfg in
  let cnt = Cfg.fresh_reg cfg in
  let width = 24 + Random.State.int rng 5 in
  let vals = List.init width (fun _ -> Cfg.fresh_reg cfg) in
  Cfg.set_block cfg
    (Block.make entry
       [ mov cfg cnt (2 + Random.State.int rng 3) ]
       [ goto producer ]);
  Cfg.set_block cfg
    (Block.make producer
       (List.mapi (fun i r -> mov cfg r ((i * 13) + (seed mod 7))) vals)
       [ goto consumer ]);
  let acc = Cfg.fresh_reg cfg in
  let sums =
    mov cfg acc 0
    :: List.map
         (fun r ->
           Cfg.instr cfg (Instr.Binop (Opcode.Add, acc, Instr.Reg acc, Instr.Reg r)))
         vals
  in
  let decs, p = count_down cfg cnt in
  Cfg.set_block cfg
    (Block.make consumer
       (sums @ [ store cfg (Instr.Reg acc) (seed mod mem_words) ] @ decs)
       [ gif p producer; gelse p out ]);
  Cfg.set_block cfg (Block.make out [] [ ret_exit ]);
  cfg.Cfg.entry <- entry;
  finish Bank_pressure seed cfg

(* A single self-looping block already near the 128-instruction cap:
   nothing can merge into it, unrolling must be refused, and every
   budget estimate sits at the edge. *)
let gen_giant_block rng seed =
  let cfg = Cfg.create ~name:(Fmt.str "fz-giant-%d" seed) () in
  let entry = Cfg.fresh_block_id cfg in
  let giant = Cfg.fresh_block_id cfg in
  let out = Cfg.fresh_block_id cfg in
  let cnt = Cfg.fresh_reg cfg in
  let x = Cfg.fresh_reg cfg in
  Cfg.set_block cfg
    (Block.make entry
       [ mov cfg cnt (2 + Random.State.int rng 3); mov cfg x 1 ]
       [ goto giant ]);
  let body = 100 + Random.State.int rng 20 in
  let instrs = ref [] in
  for i = 0 to body - 1 do
    let op =
      if i mod 11 = 10 then
        Instr.Store (Instr.Reg x, Instr.Imm (i mod mem_words), 0)
      else
        Instr.Binop
          ( (if i land 1 = 0 then Opcode.Add else Opcode.Xor),
            x, Instr.Reg x, Instr.Imm (i + 1) )
    in
    instrs := Cfg.instr cfg op :: !instrs
  done;
  let decs, p = count_down cfg cnt in
  Cfg.set_block cfg
    (Block.make giant (List.rev !instrs @ decs) [ gif p giant; gelse p out ]);
  Cfg.set_block cfg (Block.make out [] [ ret_exit ]);
  cfg.Cfg.entry <- entry;
  finish Giant_block seed cfg

(* A random connected strict CFG: block k always has an edge to k+1 and
   possibly a second edge elsewhere.  A backward second edge gets a
   guard that is statically false (the selector is fixed in the entry),
   so formation sees arbitrary cyclic structure while execution makes
   forward progress only — terminating by construction. *)
let gen_random_cfg rng seed =
  let cfg = Cfg.create ~name:(Fmt.str "fz-rand-%d" seed) () in
  let n = 4 + Random.State.int rng 13 in
  for _ = 1 to n do
    ignore (Cfg.fresh_block_id cfg)
  done;
  let sel = Cfg.fresh_reg cfg in
  let selv = Random.State.int rng 7 in
  for k = 0 to n - 1 do
    let filler =
      let r = Cfg.fresh_reg cfg in
      [
        mov cfg r ((k * 5) + 1);
        Cfg.instr cfg (Instr.Binop (Opcode.Mul, r, Instr.Reg r, Instr.Imm (k + 2)));
        store cfg (Instr.Reg r) (k * 3);
      ]
    in
    let pre = if k = 0 then [ mov cfg sel selv ] else [] in
    let tests, exits =
      if k = n - 1 then ([], [ ret_exit ])
      else
        let other = Random.State.int rng n in
        if other = k + 1 || Random.State.bool rng then ([], [ goto (k + 1) ])
        else begin
          let g = Cfg.fresh_reg cfg in
          (* threshold picks which way the guard resolves: a backward
             second edge must statically lose so execution stays
             forward-moving; a forward one may win *)
          let threshold =
            if other <= k then 100 else if Random.State.bool rng then 100 else 3
          in
          let test =
            Cfg.instr cfg (Instr.Cmp (Opcode.Lt, g, Instr.Reg sel, Instr.Imm threshold))
          in
          ([ test ], [ gif g (k + 1); gelse g other ])
        end
    in
    Cfg.set_block cfg (Block.make k (pre @ filler @ tests) exits)
  done;
  cfg.Cfg.entry <- 0;
  finish Random_cfg seed cfg

(* A whole mini-language program with adversarial knobs: deeper nests,
   denser branching and more lopsided biases than the SPEC-like recipes
   use, exercising the full lower->profile->form->backend->sim path. *)
let gen_lang_program rng seed =
  let ri lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let recipe =
    {
      Trips_workloads.Spec_like.name = Fmt.str "fz-lang-%d" seed;
      seed;
      outer_iters = ri 3 40;
      segments = ri 1 6;
      branch_density = float_of_int (ri 0 10) /. 10.0;
      branch_bias = float_of_int (ri 1 9) /. 10.0;
      while_fraction = float_of_int (ri 0 10) /. 10.0;
      trip_choices = [ 1; 2; 3; 5; 8 ];
      nest_prob = float_of_int (ri 0 10) /. 10.0;
      stmts_per_block = ri 1 8;
    }
  in
  { shape = Lang_program; seed; payload = Lang_case recipe }

(* ---- entry points ------------------------------------------------------ *)

let generate shape ~seed =
  let rng = Random.State.make [| seed; Hashtbl.hash (shape_name shape) |] in
  match shape with
  | Irreducible -> gen_irreducible rng seed
  | Nested_loops -> gen_nested_loops rng seed
  | Store_dense -> gen_store_dense rng seed
  | Predicate_chain -> gen_predicate_chain rng seed
  | Fanout -> gen_fanout rng seed
  | Bank_pressure -> gen_bank_pressure rng seed
  | Giant_block -> gen_giant_block rng seed
  | Random_cfg -> gen_random_cfg rng seed
  | Lang_program -> gen_lang_program rng seed

let generate_nth ~base_seed i =
  let shape = List.nth all_shapes (i mod List.length all_shapes) in
  (* splitmix-style stride keeps per-case seeds well separated without
     any shared mutable RNG, so cases replay independently *)
  let seed = (base_seed * 1_000_003) + (i * 7919) + 1 in
  generate shape ~seed
