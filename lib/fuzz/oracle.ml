(* The differential oracle.  Each step that can implicate the pipeline
   is caught and bucketed; only generator bugs (invalid or diverging
   inputs) use the "input" stages, which the test suite asserts never
   fire. *)

open Trips_ir
open Trips_sim
open Trips_verify

type verdict =
  | Pass
  | Fail of { stage : string; bucket : string; reason : string }

let fail stage bucket reason = Fail { stage; bucket; reason }

let orderings =
  [ Chf.Phases.Upio; Chf.Phases.Iupo; Chf.Phases.Iup_o; Chf.Phases.Iupo_merged ]

let ordering_for ~seed = List.nth orderings (abs seed mod List.length orderings)

let config_for ~seed =
  if abs seed mod 5 = 3 then
    { Chf.Policy.edge_default with
      Chf.Policy.heuristic = Chf.Policy.Depth_first { min_merge_prob = 0.05 } }
  else Chf.Policy.edge_default

(* The PR-4 contract: with every fast-path escape hatch engaged,
   formation's final CFG and statistics are identical.  Compared on a
   canonical rendering of the graph (entry + blocks in id order). *)
let fast_path_hatches =
  [
    "TRIPS_NO_PREFILTER";
    "TRIPS_NO_INCR_LIVENESS";
    "TRIPS_NO_LOOP_REUSE";
    "TRIPS_NO_CAND_POOL";
    "TRIPS_NO_TRIAL_CACHE";
    "TRIPS_NO_SPEC_TRIALS";
  ]

let with_hatches v f =
  List.iter (fun h -> Unix.putenv h v) fast_path_hatches;
  Fun.protect
    ~finally:(fun () -> List.iter (fun h -> Unix.putenv h "") fast_path_hatches)
    f

let formation_snapshot ~config cfg profile =
  let cfg = Cfg.copy cfg in
  let stats = Chf.Formation.run config cfg profile in
  let blocks = List.map (Cfg.block cfg) (List.sort compare (Cfg.block_ids cfg)) in
  ((cfg.Cfg.entry, blocks), stats)

let check_equiv ~config cfg profile =
  match
    let fast = with_hatches "" (fun () -> formation_snapshot ~config cfg profile) in
    let slow = with_hatches "1" (fun () -> formation_snapshot ~config cfg profile) in
    (fast, slow)
  with
  | exception e -> Some (fail "equiv" (Triage.of_exn ~stage:"equiv" e) (Printexc.to_string e))
  | fast, slow ->
    if fast = slow then None
    else
      Some
        (fail "equiv" "equiv:fast-path-divergence"
           "fast-path formation differs from all-hatches-off formation")

(* ---- raw CFG cases ----------------------------------------------------- *)

let check_cfg_case ~fuel ~seed ~cfg ~registers ~mem_words =
  let fresh_memory () = Gen.memory_of ~mem_words in
  let params = IntSet.of_list (List.map fst registers) in
  let config = config_for ~seed in
  let ordering = ordering_for ~seed in
  let limits = config.Chf.Policy.limits in
  (* 1. the input must verify cleanly: anything else is a generator bug *)
  match Cfg_verify.check ~allow_unreachable:false ~params cfg with
  | _ :: _ as viols ->
    fail "input-verify"
      ("input:" ^ Triage.of_violations viols)
      (Fmt.str "%a" Fmt.(list ~sep:(any "; ") Cfg_verify.pp_violation) viols)
  | [] -> (
    (* Budgets are enforced on the FINAL output, after the back end: the
       pipeline's contract lets formation exceed limits transiently (a
       later merge can grow an already-formed block's live-out estimate)
       and repairs by reverse if-conversion during allocation.  Enforced
       only when the input itself fits, so a case built over the caps
       reports only regressions. *)
    let limits_opt =
      match Cfg_verify.check ~allow_unreachable:false ~params ~limits cfg with
      | [] -> Some limits
      | _ :: _ -> None
    in
    match Func_sim.run ~fuel ~registers ~memory:(fresh_memory ()) cfg with
    | exception e ->
      fail "input-sim" ("input:" ^ Triage.of_exn ~stage:"sim" e) (Printexc.to_string e)
    | baseline -> (
      match
        Func_sim.run_profiled ~fuel ~registers ~memory:(fresh_memory ()) cfg
      with
      | exception e ->
        fail "profile" (Triage.of_exn ~stage:"profile" e) (Printexc.to_string e)
      | _, profile -> (
        let work = Cfg.copy cfg in
        match
          Diff_check.run ~config ~fuel ~registers ~fresh_memory ordering work
            profile
        with
        | Error f ->
          fail "formation" (Triage.of_diff_failure f)
            (Fmt.str "%a" Diff_check.pp_failure f)
        | exception e ->
          fail "formation" (Triage.of_exn ~stage:"formation" e) (Printexc.to_string e)
        | Ok _ -> (
          match Trips_regalloc.Backend.run work with
          | exception e ->
            fail "backend" (Triage.of_exn ~stage:"backend" e) (Printexc.to_string e)
          | report -> (
            let registers' =
              List.map
                (fun (r, v) ->
                  (IntMap.find_or ~default:r r report.Trips_regalloc.Backend.mapping, v))
                registers
            in
            let params' = IntSet.of_list (List.map fst registers') in
            (* the pipeline's own contract (Diff_check, split-and-retry)
               tolerates unreachable leftovers; only flag regressions *)
            match
              Cfg_verify.check ~allow_unreachable:true ~params:params'
                ?limits:limits_opt work
            with
            | _ :: _ as viols ->
              fail "post-backend-verify" ("backend:" ^ Triage.of_violations viols)
                (Fmt.str "%a"
                   Fmt.(list ~sep:(any "; ") Cfg_verify.pp_violation)
                   viols)
            | [] -> (
              match
                Func_sim.run ~fuel ~registers:registers'
                  ~memory:(fresh_memory ()) work
              with
              | exception e ->
                fail "final-sim" (Triage.of_exn ~stage:"final-sim" e)
                  (Printexc.to_string e)
              | final ->
                if final.Func_sim.checksum <> baseline.Func_sim.checksum then
                  fail "final-sim"
                    (Triage.divergence ~stage:"final-sim")
                    (Fmt.str "checksum %d, baseline %d" final.Func_sim.checksum
                       baseline.Func_sim.checksum)
                else
                  Option.value
                    (check_equiv ~config cfg profile)
                    ~default:Pass))))))

(* ---- mini-language cases ----------------------------------------------- *)

let check_lang_case ~seed recipe =
  let open Trips_harness in
  let w = Trips_workloads.Spec_like.generate recipe in
  let ordering = ordering_for ~seed in
  match Pipeline.compile ~backend:false Chf.Phases.Basic_blocks w with
  | exception e ->
    fail "lang-baseline" ("input:" ^ Triage.of_exn ~stage:"baseline" e)
      (Printexc.to_string e)
  | base_c -> (
    match Pipeline.run_functional base_c with
    | exception e ->
      fail "lang-baseline" ("input:" ^ Triage.of_exn ~stage:"baseline" e)
        (Printexc.to_string e)
    | baseline -> (
      match Pipeline.compile ~verify:true ordering w with
      | exception Pipeline.Verify_failed { vf_failure; _ } ->
        fail "formation" (Triage.of_diff_failure vf_failure)
          (Fmt.str "%a" Diff_check.pp_failure vf_failure)
      | exception e ->
        fail "pipeline" (Triage.of_exn ~stage:"pipeline" e) (Printexc.to_string e)
      | c -> (
        match Pipeline.verify_against ~baseline c with
        | exception e ->
          fail "verify" (Triage.of_exn ~stage:"verify" e) (Printexc.to_string e)
        | _ -> (
          match
            let profile, _ = Pipeline.profile_workload w in
            let cfg, _ = Pipeline.lower_workload w in
            Trips_opt.Optimizer.optimize_cfg cfg;
            (cfg, profile)
          with
          | exception e ->
            fail "equiv" (Triage.of_exn ~stage:"equiv" e) (Printexc.to_string e)
          | cfg, profile ->
            Option.value
              (check_equiv ~config:(config_for ~seed) cfg profile)
              ~default:Pass))))

let check ?(fuel = 2_000_000) (case : Gen.case) =
  match case.Gen.payload with
  | Gen.Cfg_case { cfg; registers; mem_words } ->
    check_cfg_case ~fuel ~seed:case.Gen.seed ~cfg ~registers ~mem_words
  | Gen.Lang_case recipe -> check_lang_case ~seed:case.Gen.seed recipe
