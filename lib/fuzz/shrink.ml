(* Greedy reproducer minimization: try reductions, keep those that stay
   valid and keep failing in the same bucket. *)

open Trips_ir

(* ---- CFG reductions ---------------------------------------------------- *)

(* Delete block [victim], rerouting every edge into it: to its own first
   Goto successor when that is a different block, else to a Ret.  The
   entry block is never deleted. *)
let drop_block cfg victim =
  if victim = cfg.Cfg.entry then None
  else
    match Cfg.block_opt cfg victim with
    | None -> None
    | Some vb ->
      let cfg = Cfg.copy cfg in
      let replacement =
        List.find_map
          (fun (e : Block.exit_) ->
            match e.Block.target with
            | Block.Goto d when d <> victim -> Some (Block.Goto d)
            | _ -> None)
          vb.Block.exits
        |> Option.value ~default:(Block.Ret None)
      in
      List.iter
        (fun (b : Block.t) ->
          if b.Block.id <> victim then begin
            let exits =
              List.map
                (fun (e : Block.exit_) ->
                  match e.Block.target with
                  | Block.Goto d when d = victim -> { e with Block.target = replacement }
                  | _ -> e)
                b.Block.exits
            in
            Cfg.set_block cfg { b with Block.exits }
          end)
        (Cfg.blocks cfg);
      Cfg.remove_block cfg victim;
      Some cfg

let drop_instr cfg block_id instr_idx =
  match Cfg.block_opt cfg block_id with
  | None -> None
  | Some b when List.length b.Block.instrs <= instr_idx -> None
  | Some b ->
    let cfg = Cfg.copy cfg in
    let instrs = List.filteri (fun i _ -> i <> instr_idx) b.Block.instrs in
    Cfg.set_block cfg { b with Block.instrs };
    Some cfg

(* Collapse a block's exits to just the first arm, unguarded. *)
let collapse_exits cfg block_id =
  match Cfg.block_opt cfg block_id with
  | None -> None
  | Some b when List.length b.Block.exits <= 1 -> None
  | Some b ->
    let cfg = Cfg.copy cfg in
    let first = List.hd b.Block.exits in
    Cfg.set_block cfg
      { b with Block.exits = [ { first with Block.eguard = None } ] };
    Some cfg

(* A reduced CFG is admissible as a fuzz input only if it is
   structurally valid, verifier-clean, and terminates quickly. *)
let admissible ~registers ~mem_words cfg =
  match Cfg.validate cfg with
  | exception Cfg.Ill_formed _ -> false
  | () -> (
    let params = IntSet.of_list (List.map fst registers) in
    match
      Trips_verify.Cfg_verify.check ~allow_unreachable:false ~params cfg
    with
    | _ :: _ -> false
    | [] -> (
      match
        Trips_obs.Watchdog.run ~fuel:200_000 ~stage:"shrink-sim" (fun () ->
            Trips_sim.Func_sim.run ~fuel:2_000_000 ~registers
              ~memory:(Gen.memory_of ~mem_words) cfg)
      with
      | exception _ -> false
      | _ -> true))

let cfg_candidates (case : Gen.case) cfg registers mem_words =
  let remake cfg =
    { case with Gen.payload = Gen.Cfg_case { cfg; registers; mem_words } }
  in
  let ids = Cfg.block_ids cfg in
  let blocks = List.map (fun id -> (id, Cfg.block cfg id)) ids in
  List.concat
    [
      (* coarsest first: whole blocks, then exits, then instructions *)
      List.filter_map (fun id -> drop_block cfg id) ids;
      List.filter_map (fun (id, _) -> collapse_exits cfg id) blocks;
      List.concat_map
        (fun (id, b) ->
          List.init (List.length b.Block.instrs) (fun i -> drop_instr cfg id i)
          |> List.filter_map Fun.id)
        blocks;
    ]
  |> List.filter (admissible ~registers ~mem_words)
  |> List.map remake

(* ---- recipe reductions ------------------------------------------------- *)

let recipe_candidates (case : Gen.case) (r : Trips_workloads.Spec_like.recipe) =
  let open Trips_workloads.Spec_like in
  let remake r = { case with Gen.payload = Gen.Lang_case r } in
  let shrink_int v lo = if v > lo then [ lo; (v + lo) / 2 ] else [] in
  let shrink_float v = if v > 0.0 then [ 0.0; v /. 2.0 ] else [] in
  List.concat
    [
      List.map (fun v -> { r with outer_iters = v }) (shrink_int r.outer_iters 1);
      List.map (fun v -> { r with segments = v }) (shrink_int r.segments 1);
      List.map (fun v -> { r with stmts_per_block = v }) (shrink_int r.stmts_per_block 1);
      List.map (fun v -> { r with nest_prob = v }) (shrink_float r.nest_prob);
      List.map (fun v -> { r with branch_density = v }) (shrink_float r.branch_density);
      List.map (fun v -> { r with while_fraction = v }) (shrink_float r.while_fraction);
      (if List.length r.trip_choices > 1 then
         [ { r with trip_choices = [ List.hd r.trip_choices ] } ]
       else []);
    ]
  |> List.sort_uniq compare
  |> List.filter (fun r' -> r' <> r)
  |> List.map remake

let size_of (case : Gen.case) =
  match case.Gen.payload with
  | Gen.Cfg_case { cfg; _ } -> (Cfg.num_blocks cfg * 1000) + Cfg.total_instrs cfg
  | Gen.Lang_case r ->
    let open Trips_workloads.Spec_like in
    (r.outer_iters * 100) + (r.segments * 50) + (r.stmts_per_block * 10)
    + int_of_float ((r.nest_prob +. r.branch_density +. r.while_fraction) *. 30.)

let candidates (case : Gen.case) =
  match case.Gen.payload with
  | Gen.Cfg_case { cfg; registers; mem_words } ->
    cfg_candidates case cfg registers mem_words
  | Gen.Lang_case r -> recipe_candidates case r

let shrink ?(max_oracle_calls = 300) ~oracle ~bucket case =
  let calls = ref 0 in
  let still_fails c =
    if !calls >= max_oracle_calls then false
    else begin
      incr calls;
      match oracle c with
      | Oracle.Fail { bucket = b; _ } -> b = bucket
      | Oracle.Pass -> false
      | exception _ -> false
    end
  in
  (* greedy first-improvement: take the first smaller candidate that
     still fails the same way, restart from it *)
  let rec go current =
    if !calls >= max_oracle_calls then current
    else
      let smaller =
        candidates current
        |> List.filter (fun c -> size_of c < size_of current)
        |> List.sort (fun a b -> compare (size_of a) (size_of b))
      in
      match List.find_opt still_fails smaller with
      | Some better -> go better
      | None -> current
  in
  go case
