(* The fuzzing campaign driver: generate -> oracle (under a per-case
   watchdog) -> bucket -> shrink -> serialize. *)

type finding = {
  fd_index : int;
  fd_seed : int;
  fd_shape : Gen.shape;
  fd_stage : string;
  fd_bucket : string;
  fd_reason : string;
  fd_count : int;
  fd_min : Gen.case option;
  fd_repro : string option;
}

type report = {
  r_seed : int;
  r_requested : int;
  r_executed : int;
  r_passed : int;
  r_findings : finding list;
  r_elapsed_s : float;
  r_early_stop : bool;
}

(* Oracle under the per-case watchdog: a hang anywhere in the stack
   becomes a structured timeout verdict instead of wedging the loop. *)
let checked_case ~case_deadline_s case =
  match
    Trips_obs.Watchdog.run ~deadline_s:case_deadline_s ~stage:"fuzz-case"
      (fun () -> Oracle.check case)
  with
  | verdict -> verdict
  | exception Trips_obs.Watchdog.Timed_out { wd_stage; wd_reason; wd_spent_s } ->
    Oracle.Fail
      {
        stage = "watchdog";
        bucket = "timeout:" ^ Triage.slug wd_stage;
        reason =
          Fmt.str "%a" Trips_obs.Watchdog.pp_timed_out
            (wd_stage, wd_reason, wd_spent_s);
      }
  | exception e ->
    (* the oracle buckets everything it can attribute; anything escaping
       is a harness-level crash, still worth a finding *)
    Oracle.Fail
      {
        stage = "harness";
        bucket = Triage.of_exn ~stage:"harness" e;
        reason = Printexc.to_string e;
      }

let repro_name ~index ~bucket (case : Gen.case) =
  Fmt.str "%s-%s-%04d" (Gen.shape_name case.Gen.shape) (Triage.slug bucket) index

let run ?(count = 200) ?time_budget_s ?(minimize = false) ?corpus_out
    ?(case_deadline_s = 10.0) ?(progress = fun _ -> ()) ~seed () =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let over_budget () =
    match time_budget_s with Some b -> elapsed () > b | None -> false
  in
  let buckets : (string, finding) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let executed = ref 0 and passed = ref 0 in
  let early = ref false in
  (let i = ref 0 in
   while !i < count && not !early do
     if over_budget () then early := true
     else begin
       let case = Gen.generate_nth ~base_seed:seed !i in
       (match checked_case ~case_deadline_s case with
       | Oracle.Pass -> incr passed
       | Oracle.Fail { stage; bucket; reason } -> (
         match Hashtbl.find_opt buckets bucket with
         | Some f -> Hashtbl.replace buckets bucket { f with fd_count = f.fd_count + 1 }
         | None ->
           order := bucket :: !order;
           Hashtbl.add buckets bucket
             {
               fd_index = !i;
               fd_seed = case.Gen.seed;
               fd_shape = case.Gen.shape;
               fd_stage = stage;
               fd_bucket = bucket;
               fd_reason = reason;
               fd_count = 1;
               fd_min = None;
               fd_repro = None;
             }));
       incr executed;
       progress !i;
       incr i
     end
   done);
  (* minimize and serialize each bucket's first case *)
  let finalize f =
    let case = Gen.generate_nth ~base_seed:seed f.fd_index in
    let minimized =
      if not minimize then None
      else
        Some
          (Shrink.shrink
             ~oracle:(checked_case ~case_deadline_s)
             ~bucket:f.fd_bucket case)
    in
    let repro =
      Option.map
        (fun dir ->
          Corpus.save ~dir
            ~name:(repro_name ~index:f.fd_index ~bucket:f.fd_bucket case)
            ~bucket:f.fd_bucket
            (Option.value minimized ~default:case))
        corpus_out
    in
    { f with fd_min = minimized; fd_repro = repro }
  in
  let findings =
    List.rev !order
    |> List.map (fun b -> finalize (Hashtbl.find buckets b))
  in
  {
    r_seed = seed;
    r_requested = count;
    r_executed = !executed;
    r_passed = !passed;
    r_findings = findings;
    r_elapsed_s = elapsed ();
    r_early_stop = !early;
  }

let replay ~dir =
  let t0 = Unix.gettimeofday () in
  match Corpus.load_dir dir with
  | Error msg -> Error msg
  | Ok entries ->
    let executed = ref 0 and passed = ref 0 in
    let findings = ref [] in
    List.iteri
      (fun i (file, { Corpus.case; _ }) ->
        incr executed;
        match checked_case ~case_deadline_s:30.0 case with
        | Oracle.Pass -> incr passed
        | Oracle.Fail { stage; bucket; reason } ->
          findings :=
            {
              fd_index = i;
              fd_seed = case.Gen.seed;
              fd_shape = case.Gen.shape;
              fd_stage = stage;
              fd_bucket = bucket;
              fd_reason = file ^ ": " ^ reason;
              fd_count = 1;
              fd_min = None;
              fd_repro = Some (Filename.concat dir file);
            }
            :: !findings)
      entries;
    Ok
      {
        r_seed = 0;
        r_requested = List.length entries;
        r_executed = !executed;
        r_passed = !passed;
        r_findings = List.rev !findings;
        r_elapsed_s = Unix.gettimeofday () -. t0;
        r_early_stop = false;
      }

(* ---- reporting --------------------------------------------------------- *)

let min_blocks (case : Gen.case) =
  match case.Gen.payload with
  | Gen.Cfg_case { cfg; _ } -> Some (Trips_ir.Cfg.num_blocks cfg)
  | Gen.Lang_case _ -> None

let pp_finding fmt f =
  Fmt.pf fmt "@[<v2>%s  (%d case%s, first #%d, %s seed %d)@,stage: %s@,%s%a%a@]"
    f.fd_bucket f.fd_count
    (if f.fd_count = 1 then "" else "s")
    f.fd_index
    (Gen.shape_name f.fd_shape)
    f.fd_seed f.fd_stage f.fd_reason
    Fmt.(
      option (fun fmt c ->
          match min_blocks c with
          | Some n -> pf fmt "@,minimized to %d blocks" n
          | None -> pf fmt "@,minimized recipe"))
    f.fd_min
    Fmt.(option (fmt "@,repro: %s"))
    f.fd_repro

let pp_report fmt r =
  Fmt.pf fmt "fuzz: seed %d: %d/%d cases, %d passed, %d bucket%s, %.1fs%s@."
    r.r_seed r.r_executed r.r_requested r.r_passed
    (List.length r.r_findings)
    (if List.length r.r_findings = 1 then "" else "s")
    r.r_elapsed_s
    (if r.r_early_stop then " (time budget hit)" else "");
  List.iter (fun f -> Fmt.pf fmt "%a@." pp_finding f) r.r_findings

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_json r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "{\"seed\":%d,\"requested\":%d,\"executed\":%d,\"passed\":%d,\"elapsed_s\":%.3f,\"early_stop\":%b,\"findings\":["
    r.r_seed r.r_requested r.r_executed r.r_passed r.r_elapsed_s r.r_early_stop;
  List.iteri
    (fun i f ->
      if i > 0 then add ",";
      add
        "{\"bucket\":\"%s\",\"stage\":\"%s\",\"shape\":\"%s\",\"seed\":%d,\"first_case\":%d,\"count\":%d,\"reason\":\"%s\""
        (json_escape f.fd_bucket) (json_escape f.fd_stage)
        (Gen.shape_name f.fd_shape) f.fd_seed f.fd_index f.fd_count
        (json_escape f.fd_reason);
      (match Option.bind f.fd_min min_blocks with
      | Some n -> add ",\"min_blocks\":%d" n
      | None -> ());
      (match f.fd_repro with
      | Some p -> add ",\"repro\":\"%s\"" (json_escape p)
      | None -> ());
      add "}")
    r.r_findings;
  add "]}";
  Buffer.contents buf
