(** The fuzzing campaign driver.

    Generates cases ({!Gen}), runs the differential oracle ({!Oracle})
    under a per-case watchdog scope, buckets failures ({!Triage}),
    optionally minimizes each first-of-bucket finding ({!Shrink}) and
    writes reproducers to a corpus directory ({!Corpus}).  Also replays
    an existing corpus as a regression suite.  Everything is
    deterministic per seed except wall-clock fields. *)

type finding = {
  fd_index : int;  (** campaign position of the first case in the bucket *)
  fd_seed : int;
  fd_shape : Gen.shape;
  fd_stage : string;
  fd_bucket : string;
  fd_reason : string;
  fd_count : int;  (** cases that landed in this bucket *)
  fd_min : Gen.case option;  (** minimized reproducer, when [minimize] *)
  fd_repro : string option;  (** corpus path written, when [corpus_out] *)
}

type report = {
  r_seed : int;
  r_requested : int;
  r_executed : int;
  r_passed : int;
  r_findings : finding list;  (** one per bucket, first occurrence order *)
  r_elapsed_s : float;
  r_early_stop : bool;  (** the time budget expired before [count] cases *)
}

val run :
  ?count:int ->
  ?time_budget_s:float ->
  ?minimize:bool ->
  ?corpus_out:string ->
  ?case_deadline_s:float ->
  ?progress:(int -> unit) ->
  seed:int ->
  unit ->
  report
(** Run a campaign of [count] (default 200) cases from [seed].
    [time_budget_s] (default none) stops early once exceeded;
    [case_deadline_s] (default 10) bounds each case via the watchdog, so
    a formation hang becomes a [timeout:*] finding instead of a wedge;
    [minimize] shrinks each bucket's first case; [corpus_out] writes
    (minimized) reproducers there.  [progress] is called per case. *)

val replay : dir:string -> (report, string) result
(** Run the oracle over every corpus file in [dir] (sorted); a corpus
    case that no longer passes is a finding.  [Error] for an unreadable
    or unparsable corpus. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable campaign summary with per-bucket findings. *)

val report_json : report -> string
(** The same report as a single JSON object. *)
