(* Crash bucketing: stable fingerprints for oracle failures, so the
   fuzzer reports one bucket per distinct breakage rather than one
   finding per case. *)

open Trips_verify

let slug s =
  let buf = Buffer.create (String.length s) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c ->
        Buffer.add_char buf c;
        last_dash := false
      | _ ->
        if not !last_dash then Buffer.add_char buf '-';
        last_dash := true)
    s;
  let s = Buffer.contents buf in
  (* trim a trailing dash left by non-alphanumeric suffixes *)
  if s <> "" && s.[String.length s - 1] = '-' then
    String.sub s 0 (String.length s - 1)
  else s

(* Over_budget is refined by the exceeded axes: blowing the instruction
   budget and blowing the LSID budget are different bugs. *)
let violation_atom = function
  | Cfg_verify.Missing_entry _ -> "missing-entry"
  | Cfg_verify.No_exit _ -> "no-exit"
  | Cfg_verify.Multiple_unguarded_exits _ -> "multi-unguarded"
  | Cfg_verify.Dangling_edge _ -> "dangling-edge"
  | Cfg_verify.Unreachable_block _ -> "unreachable"
  | Cfg_verify.Duplicate_instr_id _ -> "dup-instr-id"
  | Cfg_verify.Undefined_use { in_guard; _ } ->
    if in_guard then "undefined-guard" else "undefined-use"
  | Cfg_verify.Over_budget { estimate = e; limits = l; _ } ->
    let axes =
      List.filter_map
        (fun (name, got, cap) -> if got > cap then Some name else None)
        [
          ("instrs", e.Chf.Constraints.instrs, l.Chf.Constraints.max_instrs);
          ("ls", e.Chf.Constraints.loads_stores, l.Chf.Constraints.max_load_store);
          ("reads", e.Chf.Constraints.reads, l.Chf.Constraints.max_reads);
          ("writes", e.Chf.Constraints.writes, l.Chf.Constraints.max_writes);
        ]
    in
    "over-budget[" ^ String.concat "," axes ^ "]"

let of_violations viols =
  let atoms = List.sort_uniq compare (List.map violation_atom viols) in
  String.concat "+" atoms

let of_exn ~stage exn =
  match exn with
  | Trips_obs.Watchdog.Timed_out { wd_stage; _ } -> "timeout:" ^ slug wd_stage
  | Cfg_verify.Invalid (_, viols) -> stage ^ ":invalid:" ^ of_violations viols
  | Trips_ir.Cfg.Ill_formed _ -> stage ^ ":ill-formed"
  | Trips_sim.Func_sim.Out_of_fuel _ -> stage ^ ":out-of-fuel"
  | Trips_sim.Func_sim.Exit_invariant_violated _ -> stage ^ ":exit-invariant"
  | Trips_harness.Pipeline.Miscompiled _ -> stage ^ ":miscompiled"
  | Stack_overflow -> stage ^ ":stack-overflow"
  | Failure _ -> stage ^ ":failure"
  | Invalid_argument _ -> stage ^ ":invalid-argument"
  | Not_found -> stage ^ ":not-found"
  | Assert_failure _ -> stage ^ ":assert"
  | e ->
    (* fall back to the constructor: the head of the printed form,
       payload stripped, so messages that embed per-case data still
       bucket together *)
    let s = Printexc.to_string e in
    let head =
      match String.index_opt s '(' with
      | Some i -> String.sub s 0 i
      | None -> ( match String.index_opt s ' ' with
        | Some i -> String.sub s 0 i
        | None -> s)
    in
    stage ^ ":" ^ slug head

let of_diff_failure (f : Diff_check.failure) =
  let kind =
    match f.Diff_check.kind with
    | Diff_check.Structural viols -> "invalid:" ^ of_violations viols
    | Diff_check.Diverged _ -> "diverged"
    | Diff_check.Crashed msg ->
      (* a watchdog trip inside a phase step surfaces here as a crash
         string; keep it in the timeout bucket family *)
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      if contains "Timed_out" msg then "timeout:phase"
      else "crash:" ^ slug (String.sub msg 0 (min 24 (String.length msg)))
  in
  "formation:" ^ slug f.Diff_check.phase ^ ":" ^ kind

let divergence ~stage = stage ^ ":diverged"
