(** The differential oracle: everything we can check about one case.

    For a CFG case: the input must verify cleanly and terminate (else
    the generator, not the pipeline, is at fault); then a phase ordering
    runs under {!Trips_verify.Diff_check} (structural invariants plus
    functional re-simulation after {e every} phase), the back end runs
    and the result is re-verified, the final checksum must match the
    input's, and formation with all fast-path escape hatches engaged
    must produce the identical CFG and statistics (the PR-4 equivalence
    property).  For a mini-language case the full
    {!Trips_harness.Pipeline} runs with per-phase verification against
    the basic-block baseline.

    Budget limits are enforced through the phases only when the input
    itself fits them, so a case built {e near} the caps (giant blocks)
    reports only regressions. *)

type verdict =
  | Pass
  | Fail of { stage : string; bucket : string; reason : string }

val ordering_for : seed:int -> Chf.Phases.ordering
(** The phase ordering a case of this seed is checked under (cases cycle
    through the four formed orderings deterministically). *)

val config_for : seed:int -> Chf.Policy.config
(** The formation policy for this seed: mostly the EDGE default, with a
    depth-first slice to exercise pathological tail duplication. *)

val check : ?fuel:int -> Gen.case -> verdict
(** Run the full oracle stack on one case.  [fuel] (default 2M) bounds
    every functional simulation.  Never raises for a pipeline defect —
    those become [Fail] — but a {!Trips_obs.Watchdog.Timed_out} from an
    enclosing per-case scope propagates where it cannot be attributed
    to a specific oracle step. *)
