(** Greedy reproducer minimization.

    Given a failing case and the bucket it failed in, repeatedly try
    structure-removing reductions — drop a block (rerouting its
    predecessors), drop one instruction, collapse a multi-way exit to
    its first arm — and keep any reduction that (a) still yields a
    valid, terminating input and (b) still fails the oracle {e in the
    same bucket}.  Mini-language cases shrink their recipe knobs
    instead.  Greedy first-improvement, bounded by an oracle-call
    budget, so minimization always terminates. *)

val shrink :
  ?max_oracle_calls:int ->
  oracle:(Gen.case -> Oracle.verdict) ->
  bucket:string ->
  Gen.case ->
  Gen.case
(** Smallest same-bucket failing case found within the budget (default
    300 oracle calls); the input case itself if nothing smaller fails
    the same way. *)
