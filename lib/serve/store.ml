(* Mutex-guarded content-addressed LRU store.

   The recency list is an intrusive doubly-linked list threaded through
   the hash-table nodes, so find/add/evict are all O(1) under the lock.
   The lock covers only table and list manipulation — producers compute
   artifacts outside it (see [find_or_add]), so a slow compilation never
   serializes the other domains' lookups.

   Counter updates happen under the same lock; the Metrics mirror is
   bumped outside it (Metrics has its own lock, and nesting the two
   would order them for no benefit). *)

type key = { src : string; stage : string; config : string }

type 'a node = {
  nk : key;
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward most-recent *)
  mutable next : 'a node option;  (* toward least-recent *)
}

type 'a t = {
  sname : string;
  capacity : int;
  table : (key, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used; evicted first *)
  m : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let create ?(capacity = 512) ~name () =
  {
    sname = name;
    capacity = max 1 capacity;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    m = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let name t = t.sname

let metric t suffix =
  let name = "store." ^ t.sname ^ "." ^ suffix in
  Trips_obs.Metrics.incr name;
  (* same name in the rolling window, so the exposition surface can
     report a recent hit rate next to the lifetime one *)
  Trips_obs.Telemetry.win_incr name

(* ---- recency list (call with t.m held) -------------------------------- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_over_capacity t =
  let evicted = ref 0 in
  while Hashtbl.length t.table > t.capacity do
    match t.tail with
    | None -> assert false (* population > 0 implies a tail *)
    | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.nk;
      t.evictions <- t.evictions + 1;
      incr evicted
  done;
  !evicted

(* ---- operations -------------------------------------------------------- *)

let find t k =
  let r =
    Mutex.protect t.m (fun () ->
        match Hashtbl.find_opt t.table k with
        | Some n ->
          unlink t n;
          push_front t n;
          t.hits <- t.hits + 1;
          Some n.value
        | None ->
          t.misses <- t.misses + 1;
          None)
  in
  metric t (match r with Some _ -> "hit" | None -> "miss");
  r

let add t k v =
  let evicted =
    Mutex.protect t.m (fun () ->
        (match Hashtbl.find_opt t.table k with
        | Some n ->
          (* replace in place; a concurrent double-compute's second insert
             lands here with an identical (deterministic) value *)
          n.value <- v;
          unlink t n;
          push_front t n
        | None ->
          let n = { nk = k; value = v; prev = None; next = None } in
          Hashtbl.replace t.table k n;
          push_front t n);
        evict_over_capacity t)
  in
  for _ = 1 to evicted do
    metric t "eviction"
  done

let find_or_add t k produce =
  match find t k with
  | Some v -> v
  | None ->
    let v = produce k in
    add t k v;
    v

let record_miss t =
  Mutex.protect t.m (fun () -> t.misses <- t.misses + 1);
  metric t "miss"

let counters t =
  Mutex.protect t.m (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0.0 else float_of_int c.hits /. float_of_int total
