(** The [chfc serve] daemon: socket front end, scheduler, worker pool.

    {!start} binds a Unix-domain socket and returns immediately; an
    accept thread hands each connection to its own handler thread, which
    reads {!Protocol} frames and answers them through the typed
    {!Protocol.dispatch} — job requests go through the bounded
    {!Scheduler} onto the resident worker-domain pool, [Stats] and
    [Shutdown] are answered inline.

    Both artifact stores (lower+profile prefixes, rendered outputs) are
    shared across every connection and worker domain.

    Shutdown — a [Shutdown] request, or {!stop} in process — is
    acknowledged first, then the daemon stops accepting, drains admitted
    jobs, joins the pool and removes the socket; {!wait} returns when
    that has finished. *)

type t

val start :
  ?workers:int ->
  ?queue_depth:int ->
  ?default_deadline_s:float ->
  ?store_capacity:int ->
  ?slo_p99_s:float ->
  ?slo_error_rate:float ->
  ?trace_ring:int ->
  ?quiet:bool ->
  socket:string ->
  unit ->
  t
(** Defaults: [workers] = {!Trips_harness.Engine.default_jobs},
    [queue_depth] = [4 * workers], no default deadline,
    [store_capacity] = the store's default, [quiet] = false.  A stale
    socket file from a dead daemon is unlinked before binding.

    [slo_p99_s] / [slo_error_rate] arm the scheduler's SLO sentinel
    (see {!Scheduler.slo}); [trace_ring] resizes the bounded ring of
    finished request traces (default 64). *)

val scheduler :
  t ->
  ( Protocol.job * Trips_obs.Telemetry.ctx option,
    Protocol.output )
  Scheduler.t
(** The daemon's scheduler — exposed for in-process tests and stats.
    Jobs carry the request's telemetry context beside them. *)

val stats : t -> Protocol.stats_payload

val stop : t -> unit
(** Initiate shutdown from within the process (idempotent; also what a
    [Shutdown] request triggers). *)

val wait : t -> unit
(** Block until shutdown has completed (socket closed and removed,
    scheduler drained, pool joined). *)
