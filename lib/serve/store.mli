(** Content-addressed artifact store shared across concurrent requests.

    A store is a mutex-guarded, size-bounded LRU table from a structured
    {!key} — (source digest, stage, configuration digest) — to an
    artifact.  It generalizes the per-sweep [Stage] prefix cache into the
    cache the compilation service shares across {e requests}: two clients
    compiling the same source under the same configuration hit the same
    entry, whichever worker domain serves them.

    Artifacts must be treated as immutable once stored (consumers that
    need to mutate take their own copy, exactly like [Stage.instantiate])
    and the producing computation must be deterministic: under those two
    rules a concurrent double-compute on one key is benign — the second
    insert wins with an identical value — and a cached reply is
    byte-identical to a recomputed one, which is the determinism contract
    [chfc serve] advertises.

    Every store keeps hit/miss/eviction counters (also mirrored into the
    {!Trips_obs.Metrics} registry under ["store.<name>.hit|miss|eviction"])
    so [--cache-stats] and the [Stats] protocol request can report shared
    cache effectiveness. *)

type key = {
  src : string;  (** content digest of the source (e.g. [Stage.content_key]) *)
  stage : string;  (** pipeline stage the artifact belongs to ("prefix", "compile", ...) *)
  config : string;  (** digest of everything else the artifact depends on *)
}

type 'a t

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** current population *)
  capacity : int;  (** LRU bound *)
}

val create : ?capacity:int -> name:string -> unit -> 'a t
(** An empty store bounded to [capacity] entries (default 512, floored at
    1).  [name] labels the metrics and [--cache-stats] lines. *)

val name : 'a t -> string

val find : 'a t -> key -> 'a option
(** Lookup; a hit refreshes the entry's recency. Counts hit or miss. *)

val add : 'a t -> key -> 'a -> unit
(** Insert (or replace) at most-recent position, evicting
    least-recently-used entries beyond capacity.  Does not count a hit or
    a miss. *)

val find_or_add : 'a t -> key -> (key -> 'a) -> 'a
(** [find] then, on a miss, compute {e outside the lock} and [add].
    Concurrent misses on one key both compute; deterministic producers
    make that race benign. *)

val record_miss : 'a t -> unit
(** Count a miss without touching the table — used by pass-through
    ("disabled") cache fronts so cache-on and cache-off runs report
    comparable counters. *)

val counters : 'a t -> counters

val hit_rate : counters -> float
(** hits / (hits + misses), 0 when no lookups happened. *)
