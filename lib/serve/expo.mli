(** Exposition surfaces over the daemon's {!Protocol.stats_payload}.

    Shared by [chfc stats --prom], the live [--watch] refresh and the
    [make telemetry-check] gate, so what the gate byte-compares is
    exactly what an operator scrapes. *)

val render_prom : Protocol.stats_payload -> string
(** Prometheus-style text: lifetime scalars in fixed order, per-store
    counters, then the rolling window (counters, gauges, p50/p90/p99
    series), each section sorted by name.  Deterministic modulo float
    values: integers are structural, every float renders as ["%.6f"] —
    the masking rule the golden test relies on. *)

val trace_to_chrome : Trips_obs.Telemetry.trace -> string
(** One finished request's span tree in Chrome trace-event format, via
    the existing {!Trips_obs.Trace.to_chrome_json} exporter — open in
    [chrome://tracing] or Perfetto. *)
