(** The typed client ↔ scheduler ↔ worker protocol of [chfc serve].

    The protocol follows the multiparty-session style of ocaml-mpst's
    explicit-handler encoding: each role implements a {e closed} record
    of handlers, one per message it can receive, and the request type is
    a GADT whose index is the reply type — so a client that sends
    {!Stats} gets a {!stats_payload} back {e by type}, a scheduler that
    forgot to handle [Shutdown] does not compile, and a reply of the
    wrong shape is a type error in-process (and a structured
    {!Protocol_error} across the wire, where the index is checked against
    the decoded frame).

    Three roles:

    - {b client} ([chfc submit] / [chfc shutdown] / the load harness)
      speaks {!request}s through [Client.rpc].
    - {b scheduler} (the daemon's connection threads) implements
      {!scheduler_handlers}: job messages are queued onto the worker
      pool, control messages ([Stats], [Shutdown]) are answered
      directly.
    - {b worker} (the resident domain pool) implements {!worker}: one
      handler per job kind, pure compile work, no protocol state.

    Wire encoding is versioned: every frame starts with a magic tag and
    a version byte, so an old client talking to a new daemon fails with
    a structured error, not a marshal crash.

    Since v2 every request frame also carries the client-minted
    {!Trips_obs.Telemetry.ctx} ([None] for control requests or under
    [TRIPS_NO_REQ_TELEMETRY]), which the scheduler installs around the
    worker thunk so the whole pipeline's instrumentation tags the owning
    request. *)

module Telemetry = Trips_obs.Telemetry

(** {1 Message payloads} *)

type compile_spec = {
  cs_workload : string;  (** workload name, resolved by the worker *)
  cs_ordering : string;  (** "bb" | "upio" | "iupo" | "iup-o" | "iupo-merged" *)
  cs_policy : string;  (** "bf" | "df" | "vliw" *)
  cs_backend : bool;
  cs_verify : bool;  (** per-phase differential verification *)
  cs_deadline_s : float option;  (** per-request watchdog override *)
  cs_chaos_seed : int option;
      (** fault-inject the compiled CFG before checksum verification — a
          deliberately poisoned request for isolation testing; it must
          fail structurally without disturbing sibling requests *)
}

type report_spec = {
  rs_workloads : string list;  (** [[]] = the default microbenchmark set *)
  rs_ordering : string;
  rs_policy : string;
  rs_deadline_s : float option;
}

type sweep_spec = {
  ss_table : string;  (** "table1" | "table2" | "table3" | "figure7" *)
  ss_workloads : string list;  (** [[]] = the table's default set *)
  ss_deadline_s : float option;
}

type store_counters = {
  sc_name : string;
  sc_hits : int;
  sc_misses : int;
  sc_evictions : int;
  sc_entries : int;
  sc_capacity : int;
}

type stats_payload = {
  st_version : int;  (** the daemon's {!version} *)
  st_uptime_s : float;
  st_workers : int;
  st_queue_depth : int;
  st_pending : int;  (** jobs admitted and not yet completed *)
  st_submitted : int;
  st_completed : int;
  st_shed : int;  (** rejected with {!Overloaded} *)
  st_timed_out : int;
  st_crashed : int;
  st_stores : store_counters list;  (** prefix store, output store, ... *)
  st_degraded : bool;  (** the SLO sentinel's verdict on the window *)
  st_window : Telemetry.Window.snapshot;
      (** rolling-window counters / gauges / quantiles *)
}

type served_error =
  | Bad_request of string  (** unknown workload / ordering / policy / table *)
  | Compile_failed of string  (** the pipeline failed; rendered reason *)
  | Overloaded of { ov_pending : int; ov_depth : int }
      (** load-shed: the scheduler's in-flight bound was reached *)
  | Timed_out of { te_deadline_s : float; te_spent_s : float }
      (** the per-job watchdog deadline expired *)
  | Draining  (** the daemon is shutting down *)

type output = (string, served_error) result
(** Every job reply: the exact text the one-shot CLI would print, or a
    structured failure. *)

val pp_served_error : Format.formatter -> served_error -> unit

val output_class : output -> string
(** The rolling-window outcome class of a completed job: ["ok"],
    ["bad_request"], ["failed"], ["shed"], ["timed_out"] or
    ["draining"]. *)

(** {1 Typed requests (the session types)} *)

type _ request =
  | Compile : compile_spec -> output request
  | Report : report_spec -> output request
  | Sweep_cell : sweep_spec -> output request
  | Stats : stats_payload request
  | Trace_of : string -> Telemetry.trace option request
      (** fetch one finished request's span tree from the daemon's
          bounded ring ([None] = unknown id or already evicted) *)
  | Shutdown : unit request

type packed = Packed : 'a request -> packed

(** {1 Role handler records} *)

type job =
  | Job_compile of compile_spec
  | Job_report of report_spec
  | Job_sweep of sweep_spec
      (** the queueable subset of the protocol — what the scheduler may
          hand to the worker pool *)

val job_deadline : job -> float option
(** The per-request deadline override carried by the spec, if any. *)

val job_kind : job -> string
(** "compile" | "report" | "sweep-cell" — for metrics and logs. *)

type worker = {
  w_compile : compile_spec -> output;
  w_report : report_spec -> output;
  w_sweep_cell : sweep_spec -> output;
}
(** The worker role: one handler per job kind.  Closed — adding a job
    constructor breaks every worker implementation at compile time. *)

val run_worker : worker -> job -> output

type scheduler_handlers = {
  sh_job : Telemetry.ctx option -> job -> output;
      (** queue onto the pool and await; the context (if any) rides
          along so the executing worker can attribute its events *)
  sh_stats : unit -> stats_payload;
  sh_trace : string -> Telemetry.trace option;
  sh_shutdown : unit -> unit;
}
(** The scheduler role: jobs are delegated, control is answered
    directly. *)

val dispatch : scheduler_handlers -> ctx:Telemetry.ctx option -> 'a request -> 'a
(** Type-indexed dispatch: the reply type follows the request
    constructor, so a handler returning the wrong shape is a type
    error. *)

(** {1 Versioned wire encoding} *)

val version : int

exception Protocol_error of string
(** Bad magic, version mismatch, or a reply whose shape contradicts the
    request's type index. *)

type wire_request
type wire_reply

val wire_of_request : 'a request -> wire_request
val request_of_wire : wire_request -> packed

val reply_to_wire : 'a request -> 'a -> wire_reply

val reply_of_wire : 'a request -> wire_reply -> 'a
(** @raise Protocol_error when the frame does not carry the reply shape
    the request's type index promises (a role violation by the peer). *)

val error_reply : string -> wire_reply
(** A server-side protocol-level error frame (decoded by
    {!reply_of_wire} into {!Protocol_error}). *)

val write_request : out_channel -> ?ctx:Telemetry.ctx -> wire_request -> unit
val read_request : in_channel -> Telemetry.ctx option * wire_request
val write_reply : out_channel -> wire_reply -> unit
val read_reply : in_channel -> wire_reply
(** Framed I/O: magic + version byte + marshaled payload; writers flush.
    A request frame carries the minted telemetry context beside the
    message.  Readers raise {!Protocol_error} on bad magic or version
    skew and [End_of_file] on a closed peer. *)
