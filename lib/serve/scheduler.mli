(** Bounded async job scheduler over the resident {!Trips_harness.Engine.Pool}.

    The scheduler is the daemon's admission layer: connection threads
    submit jobs, worker domains execute them, and every overload mode is
    a structured outcome instead of a wedged daemon —

    - the in-flight bound ([queue_depth]) sheds excess load with
      {!Overloaded} (pending count included, so clients can back off);
    - a per-job wall-clock deadline runs the job under a cooperative
      {!Trips_obs.Watchdog} scope and surfaces expiry as {!Timed_out}
      without poisoning the worker domain;
    - a job that raises is confined to its own {!Crashed} outcome —
      sibling jobs and the pool never observe it;
    - once {!drain} begins, new submissions are refused with
      {!Draining} while admitted jobs run to completion.

    The scheduler is generic in the job and result types so its
    semantics are testable with synthetic jobs; the serve daemon
    instantiates it with {!Protocol.job} and the worker role's handler
    record. *)

type 'r outcome =
  | Done of 'r
  | Overloaded of { ov_pending : int; ov_depth : int }
      (** shed at admission: in-flight count was at the depth bound *)
  | Timed_out of { to_deadline_s : float; to_spent_s : float }
      (** the job's watchdog budget expired mid-run *)
  | Crashed of exn  (** the job raised; confined to this outcome *)
  | Draining  (** refused: {!drain} had begun *)

type counters = {
  k_workers : int;
  k_queue_depth : int;
  k_pending : int;  (** admitted and not yet completed *)
  k_submitted : int;  (** admitted (sheds and drains excluded) *)
  k_completed : int;
  k_shed : int;
  k_timed_out : int;
  k_crashed : int;
}

type slo = {
  slo_p99_s : float option;
      (** breach when the window's p99 of [serve.latency_s] exceeds this *)
  slo_error_rate : float option;
      (** breach when (failed + timed out + crashed + shed + draining) /
          total over the window exceeds this fraction *)
}
(** Thresholds for the SLO sentinel, evaluated against the rolling
    window after every completion and every refusal.  The degraded bit
    flips in both directions — the daemon recovers once the breaching
    requests age out of the window — and only the false→true transition
    bumps the [serve.slo.breach] metric. *)

type ('j, 'r) t

type 'r ticket
(** An admitted job's handle; redeem with {!await} (at most once). *)

val create :
  ?queue_depth:int ->
  ?default_deadline_s:float ->
  ?deadline_of:('j -> float option) ->
  ?ctx_of:('j -> Trips_obs.Telemetry.ctx option) ->
  ?kind_of:('j -> string) ->
  ?class_of:('r -> string) ->
  ?slo:slo ->
  workers:int ->
  run:('j -> 'r) ->
  unit ->
  ('j, 'r) t
(** [create ~workers ~run ()] spawns a resident pool of [workers]
    domains executing [run].  [queue_depth] (default [4 * max 1
    workers]) bounds jobs in flight — queued plus running.  A job's
    deadline is [deadline_of job] (default: none) falling back to
    [default_deadline_s]; jobs with a deadline run inside
    [Watchdog.run ~stage:"serve"], so the pipeline's cooperative
    {!Trips_obs.Watchdog.check} polls bound them.

    Telemetry: [ctx_of] (default: none) extracts the request context
    carried beside a job; when present, a {!Trips_obs.Telemetry}
    collector is opened at dequeue with the measured queue wait,
    installed around the run, and finished with the outcome class —
    [class_of] (default ["ok"]) classifies a [Done] result, timeouts and
    crashes classify themselves.  [kind_of] names the job kind in the
    trace.  [slo] arms the sentinel (see {!slo}); it reads the global
    rolling window, so it only fires when telemetry is enabled. *)

val submit : ('j, 'r) t -> 'j -> ('r ticket, 'r outcome) result
(** Admit a job, or refuse with [Error Overloaded] / [Error Draining].
    Admission and the in-flight count are atomic: at most [queue_depth]
    jobs are in flight at any instant. *)

val await : ('j, 'r) t -> 'r ticket -> 'r outcome
(** Block until the job completes ([Done] / [Timed_out] / [Crashed]).
    The calling thread only blocks — it never steals pool work (it is
    an I/O thread, not a compile domain) — except on a fully degraded
    pool, where the pool runs the job on the awaiting caller. *)

val run_sync : ('j, 'r) t -> 'j -> 'r outcome
(** [submit] + [await] in one call — the connection-thread fast path. *)

val counters : ('j, 'r) t -> counters

val degraded : ('j, 'r) t -> bool
(** The SLO sentinel's current verdict (always false without [slo]). *)

val drain : ('j, 'r) t -> unit
(** Stop admitting, wait for every admitted job to complete, shut the
    pool down (joining its domains).  Idempotent. *)
