(* The chfc serve daemon: socket front end, scheduler, worker pool.

   Thread/domain split: systhreads do the I/O (one accept thread, one
   thread per connection — they block on sockets and on job completion),
   domains do the compiling (the scheduler's resident Engine pool).  A
   connection thread never steals pool work; it parks in
   [Scheduler.await ~help:false] so a slow client can't capture a
   compile domain.

   Shutdown sequencing: the Shutdown ack is written by the connection
   thread *before* teardown begins (the handler itself is a no-op and
   the connection loop initiates after flushing the reply), then the
   accept loop is woken by a self-connect poke, stops accepting, drains
   the scheduler, joins the pool, closes and unlinks the socket, and
   broadcasts completion to [wait]. *)

module Store = Trips_store.Store
module Engine = Trips_harness.Engine
module Stage = Trips_harness.Stage
module Telemetry = Trips_obs.Telemetry

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  sched : (Protocol.job * Telemetry.ctx option, Protocol.output) Scheduler.t;
  worker : Worker.t;
  started_at : float;
  quiet : bool;
  stopping : bool Atomic.t;
  fm : Mutex.t;
  fc : Condition.t;
  mutable finished : bool;
}

let scheduler t = t.sched

let stats t =
  let k = Scheduler.counters t.sched in
  let store name (c : Store.counters) =
    {
      Protocol.sc_name = name;
      sc_hits = c.Store.hits;
      sc_misses = c.Store.misses;
      sc_evictions = c.Store.evictions;
      sc_entries = c.Store.entries;
      sc_capacity = c.Store.capacity;
    }
  in
  {
    Protocol.st_version = Protocol.version;
    st_uptime_s = Unix.gettimeofday () -. t.started_at;
    st_workers = k.Scheduler.k_workers;
    st_queue_depth = k.Scheduler.k_queue_depth;
    st_pending = k.Scheduler.k_pending;
    st_submitted = k.Scheduler.k_submitted;
    st_completed = k.Scheduler.k_completed;
    st_shed = k.Scheduler.k_shed;
    st_timed_out = k.Scheduler.k_timed_out;
    st_crashed = k.Scheduler.k_crashed;
    st_stores =
      [
        store "serve.prefix"
          (Stage.store_counters (Worker.prefix_cache t.worker));
        store "serve.output" (Store.counters (Worker.output_store t.worker));
      ];
    st_degraded = Scheduler.degraded t.sched;
    st_window = Telemetry.win_snapshot ();
  }

(* Every scheduler outcome is a structured reply; a crashed job is
   confined to its own Compile_failed answer. *)
let output_of_outcome : Protocol.output Scheduler.outcome -> Protocol.output =
  function
  | Scheduler.Done o -> o
  | Scheduler.Overloaded { ov_pending; ov_depth } ->
    Error (Protocol.Overloaded { ov_pending; ov_depth })
  | Scheduler.Timed_out { to_deadline_s; to_spent_s } ->
    Error
      (Protocol.Timed_out
         { te_deadline_s = to_deadline_s; te_spent_s = to_spent_s })
  | Scheduler.Crashed e -> Error (Protocol.Compile_failed (Printexc.to_string e))
  | Scheduler.Draining -> Error Protocol.Draining

(* Wake the accept loop so it notices [stopping]. *)
let poke t =
  try
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    Unix.close fd
  with _ -> () (* accept loop already gone: nothing to wake *)

let initiate t = if Atomic.compare_and_set t.stopping false true then poke t

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let handlers =
    {
      Protocol.sh_job =
        (fun ctx job ->
          output_of_outcome (Scheduler.run_sync t.sched (job, ctx)));
      sh_stats = (fun () -> stats t);
      sh_trace = Telemetry.find;
      (* ack first: the connection loop initiates after the reply has
         been flushed, so the shutdown client always hears back *)
      sh_shutdown = (fun () -> ());
    }
  in
  let rec loop () =
    match Protocol.read_request ic with
    | ctx, wire -> (
      match Protocol.request_of_wire wire with
      | Protocol.Packed req ->
        let reply =
          match Protocol.dispatch handlers ~ctx req with
          | v -> Protocol.reply_to_wire req v
          | exception e -> Protocol.error_reply (Printexc.to_string e)
        in
        Protocol.write_reply oc reply;
        (match req with
        | Protocol.Shutdown -> initiate t
        | _ -> loop ()))
    | exception End_of_file -> ()
    | exception Protocol.Protocol_error msg -> (
      (* a skewed or alien peer: answer structurally, then hang up *)
      try Protocol.write_reply oc (Protocol.error_reply msg)
      with Sys_error _ | Unix.Unix_error _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      try close_out oc with Sys_error _ | Unix.Unix_error _ -> ())
    loop

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Atomic.get t.stopping then (
          (* the self-connect poke (or a client racing shutdown) *)
          try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          ignore (Thread.create (fun () -> handle_conn t fd) ());
          loop ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ();
  Scheduler.drain t.sched;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ());
  if not t.quiet then
    Fmt.epr "serve: drained, socket %s removed@." t.socket_path;
  Mutex.protect t.fm (fun () ->
      t.finished <- true;
      Condition.broadcast t.fc)

let start ?workers ?queue_depth ?default_deadline_s ?store_capacity
    ?slo_p99_s ?slo_error_rate ?trace_ring ?(quiet = false) ~socket () =
  (* a client hanging up mid-reply must be an EPIPE on its connection
     thread, not a fatal signal for the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let workers =
    match workers with Some w -> max 1 w | None -> Engine.default_jobs ()
  in
  let prefix_store =
    Store.create ?capacity:store_capacity ~name:"serve.prefix" ()
  in
  let output_store =
    Store.create ?capacity:store_capacity ~name:"serve.output" ()
  in
  let worker = Worker.create ~prefix_store ~output_store () in
  let handlers = Worker.handlers worker in
  (match trace_ring with
  | Some n -> Telemetry.set_ring_capacity n
  | None -> ());
  let slo =
    match (slo_p99_s, slo_error_rate) with
    | None, None -> None
    | _ ->
      Some { Scheduler.slo_p99_s; slo_error_rate }
  in
  let sched =
    Scheduler.create ?queue_depth ?default_deadline_s
      ~deadline_of:(fun (job, _) -> Protocol.job_deadline job)
      ~ctx_of:snd
      ~kind_of:(fun (job, _) -> Protocol.job_kind job)
      ~class_of:Protocol.output_class ?slo ~workers
      ~run:(fun (job, _) -> Protocol.run_worker handlers job)
      ()
  in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     if Sys.file_exists socket then Unix.unlink socket;
     Unix.bind listen_fd (Unix.ADDR_UNIX socket);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      socket_path = socket;
      listen_fd;
      sched;
      worker;
      started_at = Unix.gettimeofday ();
      quiet;
      stopping = Atomic.make false;
      fm = Mutex.create ();
      fc = Condition.create ();
      finished = false;
    }
  in
  if not quiet then
    Fmt.epr
      "serve: listening on %s (protocol v%d, %d worker domain(s), depth %d)@."
      socket Protocol.version workers
      (Scheduler.counters sched).Scheduler.k_queue_depth;
  ignore (Thread.create (fun () -> accept_loop t) ());
  t

let stop = initiate

let wait t =
  Mutex.lock t.fm;
  while not t.finished do
    Condition.wait t.fc t.fm
  done;
  Mutex.unlock t.fm
