(* The worker role: execute serve jobs against shared artifact stores.

   Two stores back every worker domain:

   - the lower+profile prefix store, shared with the one-shot sweeps
     through Stage.of_store, so concurrent requests for the same source
     share the expensive front half of the pipeline;

   - a rendered-output store keyed by (workload content digest, job
     kind, configuration): a repeated request is answered from the store
     without compiling at all.  Outputs are deterministic, so a stored
     reply is byte-identical to a recomputed one — the same argument that
     makes the prefix cache sound.

   The compile report text lives here (not in bin/chfc.ml) and the CLI
   prints it verbatim, so "served output = one-shot output" holds by
   construction. *)

open Trips_workloads
open Trips_harness
module Store = Trips_store.Store
module Trace = Trips_obs.Trace

(* ---- name resolution (shared with the chfc CLI) ------------------------ *)

let find_workload name =
  match Micro.by_name name with
  | Some w -> Ok w
  | None -> (
    match Spec_like.by_name name with
    | Some w -> Ok w
    | None ->
      Error (`Msg (Fmt.str "unknown workload %S; try `chfc list`" name)))

let ordering_of_name = function
  | "bb" -> Ok Chf.Phases.Basic_blocks
  | "upio" -> Ok Chf.Phases.Upio
  | "iupo" -> Ok Chf.Phases.Iupo
  | "iup-o" -> Ok Chf.Phases.Iup_o
  | "iupo-merged" | "convergent" -> Ok Chf.Phases.Iupo_merged
  | s -> Error (`Msg (Fmt.str "unknown ordering %S" s))

let policy_of_name = function
  | "bf" -> Ok Chf.Policy.edge_default
  | "df" ->
    Ok
      {
        Chf.Policy.edge_default with
        Chf.Policy.heuristic = Chf.Policy.Depth_first { min_merge_prob = 0.12 };
      }
  | "vliw" ->
    Ok
      {
        Chf.Policy.edge_default with
        Chf.Policy.heuristic = Chf.Policy.Vliw Chf.Policy.default_vliw;
      }
  | s -> Error (`Msg (Fmt.str "unknown policy %S (bf|df|vliw)" s))

(* ---- the one-shot compile report --------------------------------------- *)

(* The exact report the CLI has always printed, rendered to a string.
   Line for line the format strings match the historical [Fmt.pr] calls;
   none contains a break hint, so rendering through a buffer formatter
   cannot re-flow them and the bytes are identical. *)
let compile_report ?cache ~ordering ~config ~backend ~verify w =
  try
    let bb =
      Pipeline.compile ?cache ~config ~backend Chf.Phases.Basic_blocks w
    in
    let baseline = Pipeline.run_functional bb in
    let bb_cycles = Pipeline.run_cycles bb in
    let c = Pipeline.compile ?cache ~config ~backend ~verify ordering w in
    let r = Pipeline.verify_against ~baseline c in
    let cycles = Pipeline.run_cycles c in
    (* report rendering under its own span, so a request's latency
       breakdown separates compute from formatting *)
    Trace.span "render" (fun () ->
    let buf = Buffer.create 512 in
    let fmt = Format.formatter_of_buffer buf in
    Fmt.pf fmt "workload        : %s (%s)@." w.Workload.name
      w.Workload.description;
    Fmt.pf fmt "ordering        : %s@." (Chf.Phases.name ordering);
    Fmt.pf fmt "merges m/t/u/p  : %a@." Chf.Formation.pp_stats c.Pipeline.stats;
    Fmt.pf fmt "static          : %d blocks, %d instructions@."
      c.Pipeline.static_blocks c.Pipeline.static_instrs;
    (match c.Pipeline.backend with
    | Some rep ->
      Fmt.pf fmt
        "back end        : %d cross-block values, %d fanout movs, %d splits@."
        rep.Trips_regalloc.Backend.cross_block_values
        rep.Trips_regalloc.Backend.fanout_movs rep.Trips_regalloc.Backend.splits
    | None -> ());
    Fmt.pf fmt "functional      : ret=%a, %d blocks, %d instructions executed@."
      Fmt.(option int)
      r.Trips_sim.Func_sim.ret r.Trips_sim.Func_sim.blocks_executed
      r.Trips_sim.Func_sim.instrs_executed;
    Fmt.pf fmt "cycles          : %d (basic blocks: %d, %+.1f%%)@."
      cycles.Trips_sim.Cycle_sim.cycles bb_cycles.Trips_sim.Cycle_sim.cycles
      (Stats.percent_improvement ~base:bb_cycles.Trips_sim.Cycle_sim.cycles
         ~v:cycles.Trips_sim.Cycle_sim.cycles);
    Fmt.pf fmt
      "mispredictions  : %d (accuracy %.1f%%), D-cache miss rate %.1f%%@."
      cycles.Trips_sim.Cycle_sim.mispredictions
      (100.0 *. cycles.Trips_sim.Cycle_sim.predictor_accuracy)
      (100.0 *. cycles.Trips_sim.Cycle_sim.cache_miss_rate);
    Fmt.pf fmt
      "verified        : functional checksum matches basic-block baseline@.";
    if verify then
      Fmt.pf fmt "per-phase       : structural + differential checks passed@.";
    Format.pp_print_flush fmt ();
    Ok (c, Buffer.contents buf))
  with
  | Pipeline.Verify_failed { vf_workload; vf_ordering; vf_failure } ->
    Error
      (Fmt.str "%s/%s: phase verification failed: %a" vf_workload
         (Chf.Phases.name vf_ordering) Trips_verify.Diff_check.pp_failure
         vf_failure)
  | Pipeline.Miscompiled d ->
    Error (Fmt.str "miscompiled: %a" Pipeline.pp_divergence d)

(* ---- the worker role ---------------------------------------------------- *)

type t = {
  prefix_store : Stage.prefix Store.t;
  outputs : string Store.t;
}

let create ?prefix_store ?output_store () =
  {
    prefix_store =
      (match prefix_store with
      | Some s -> s
      | None -> Store.create ~name:"serve.prefix" ());
    outputs =
      (match output_store with
      | Some s -> s
      | None -> Store.create ~name:"serve.output" ());
  }

let prefix_cache t = Stage.of_store t.prefix_store
let output_store t = t.outputs

(* A chaos-poisoned compile: inject the Strip_exits fault into a copy of
   the compiled CFG, confirm the structural verifier sees the damage,
   and raise.  The raise is the point — the request must surface as a
   crash outcome confined to its own job. *)
let poison ~seed cfg =
  let rng = Random.State.make [| seed |] in
  let rec attempt k =
    if k = 0 then failwith (Fmt.str "chaos(seed %d): no injection site" seed)
    else
      match Trips_verify.Chaos.inject rng Trips_verify.Chaos.Strip_exits cfg with
      | Some inj -> inj
      | None -> attempt (k - 1)
  in
  let inj = attempt 8 in
  match Trips_verify.Cfg_verify.check inj.Trips_verify.Chaos.cfg with
  | [] ->
    failwith
      (Fmt.str "chaos(seed %d): injection escaped the structural verifier"
         seed)
  | v :: _ ->
    failwith
      (Fmt.str "chaos(seed %d): %s: %a" seed inj.Trips_verify.Chaos.note
         Trips_verify.Cfg_verify.pp_violation v)

let bad_request msg = Error (Protocol.Bad_request msg)

(* Rendered outputs are cached under (content digest, kind, config).
   Chaos-poisoned requests bypass the store entirely: they raise. *)
let with_output_cache t ~src ~kind ~config compute =
  let key = { Store.src; stage = "output." ^ kind; config } in
  match Store.find t.outputs key with
  | Some text ->
    if Trace.is_enabled () then
      Trace.record "store"
        [
          ("store", Trace.Str "serve.output");
          ("kind", Trace.Str kind);
          ("hit", Trace.Bool true);
        ];
    Ok text
  | None -> (
    match compute () with
    | Ok text ->
      Store.add t.outputs key text;
      Ok text
    | Error _ as e -> e)

let w_compile t (s : Protocol.compile_spec) : Protocol.output =
  match
    ( find_workload s.Protocol.cs_workload,
      ordering_of_name s.Protocol.cs_ordering,
      policy_of_name s.Protocol.cs_policy )
  with
  | Error (`Msg m), _, _ | _, Error (`Msg m), _ | _, _, Error (`Msg m) ->
    bad_request m
  | Ok w, Ok ordering, Ok config -> (
    let cache = Stage.of_store t.prefix_store in
    let compile () =
      match
        compile_report ~cache ~ordering ~config ~backend:s.Protocol.cs_backend
          ~verify:s.Protocol.cs_verify w
      with
      | Ok (c, text) -> Ok (c, text)
      | Error m -> Error (Protocol.Compile_failed m)
    in
    match s.Protocol.cs_chaos_seed with
    | Some seed -> (
      (* poisoned: compile, inject, raise — never cached *)
      match compile () with
      | Error _ as e -> e
      | Ok (c, _) -> poison ~seed c.Pipeline.cfg)
    | None ->
      let config_key =
        Fmt.str "%s/%s/backend=%b/verify=%b" s.Protocol.cs_ordering
          s.Protocol.cs_policy s.Protocol.cs_backend s.Protocol.cs_verify
      in
      with_output_cache t ~src:(Stage.content_key w) ~kind:"compile"
        ~config:config_key (fun () -> Result.map snd (compile ())))

let micro_selection = function
  | [] -> Ok Micro.all
  | names ->
    List.fold_right
      (fun name acc ->
        Result.bind acc (fun ws ->
            Result.map (fun w -> w :: ws) (find_workload name)))
      names (Ok [])

(* one digest covering the whole workload selection, in order *)
let selection_key ws =
  Digest.to_hex (Digest.string (String.concat ";" (List.map Stage.content_key ws)))

let w_report t (s : Protocol.report_spec) : Protocol.output =
  match
    ( micro_selection s.Protocol.rs_workloads,
      ordering_of_name s.Protocol.rs_ordering,
      policy_of_name s.Protocol.rs_policy )
  with
  | Error (`Msg m), _, _ | _, Error (`Msg m), _ | _, _, Error (`Msg m) ->
    bad_request m
  | Ok workloads, Ok ordering, Ok config ->
    let config_key =
      Fmt.str "%s/%s" s.Protocol.rs_ordering s.Protocol.rs_policy
    in
    with_output_cache t ~src:(selection_key workloads) ~kind:"report"
      ~config:config_key (fun () ->
        let cache = Stage.of_store t.prefix_store in
        let o = Reporter.run ~config ~cache ~jobs:1 ~ordering ~workloads () in
        Ok (Trace.span "render" (fun () -> Fmt.str "%a" Reporter.render o)))

let w_sweep_cell t (s : Protocol.sweep_spec) : Protocol.output =
  let spec_selection = function
    | [] -> Ok Spec_like.all
    | names ->
      List.fold_right
        (fun name acc ->
          Result.bind acc (fun ws ->
              Result.map (fun w -> w :: ws) (find_workload name)))
        names (Ok [])
  in
  let render =
    match s.Protocol.ss_table with
    | "table1" ->
      Result.map
        (fun ws cache ->
          Fmt.str "%a" Table1.render (Table1.run ~cache ~jobs:1 ~workloads:ws ()))
        (micro_selection s.Protocol.ss_workloads)
    | "table2" ->
      Result.map
        (fun ws cache ->
          Fmt.str "%a" Table2.render (Table2.run ~cache ~jobs:1 ~workloads:ws ()))
        (micro_selection s.Protocol.ss_workloads)
    | "table3" ->
      Result.map
        (fun ws cache ->
          Fmt.str "%a" Table3.render (Table3.run ~cache ~jobs:1 ~workloads:ws ()))
        (spec_selection s.Protocol.ss_workloads)
    | "figure7" ->
      Result.map
        (fun ws cache ->
          Fmt.str "%a" Figure7.render (Table1.run ~cache ~jobs:1 ~workloads:ws ()))
        (micro_selection s.Protocol.ss_workloads)
    | t -> Error (`Msg (Fmt.str "unknown table %S (table1|table2|table3|figure7)" t))
  in
  match render with
  | Error (`Msg m) -> bad_request m
  | Ok render ->
    let selection =
      match s.Protocol.ss_table with
      | "table3" -> spec_selection s.Protocol.ss_workloads
      | _ -> micro_selection s.Protocol.ss_workloads
    in
    let src =
      match selection with Ok ws -> selection_key ws | Error _ -> "?"
    in
    with_output_cache t ~src ~kind:"sweep" ~config:s.Protocol.ss_table
      (fun () -> Ok (render (Stage.of_store t.prefix_store)))

let handlers t =
  {
    Protocol.w_compile = w_compile t;
    w_report = w_report t;
    w_sweep_cell = w_sweep_cell t;
  }
