(* The client role: one Unix-domain socket connection, typed RPCs.

   [rpc] is the session from the client's side: frame the typed request,
   read exactly one reply frame, and decode it against the request's
   type index — a daemon answering with the wrong shape is a structured
   Protocol_error, not a segfault-by-Marshal. *)

type conn = { ic : in_channel; oc : out_channel }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

module Telemetry = Trips_obs.Telemetry

(* Job-carrying requests get a fresh context minted here — the id the
   user can later feed to [chfc trace] — seeded with the spec's deadline
   and chaos seed so the daemon-side trace is self-describing.  Control
   requests travel bare. *)
let mint_ctx : type a. a Protocol.request -> Telemetry.ctx option = function
  | Protocol.Compile c ->
    Telemetry.mint ?deadline_s:c.cs_deadline_s ?chaos_seed:c.cs_chaos_seed ()
  | Protocol.Report r -> Telemetry.mint ?deadline_s:r.rs_deadline_s ()
  | Protocol.Sweep_cell s -> Telemetry.mint ?deadline_s:s.ss_deadline_s ()
  | Protocol.Stats | Protocol.Trace_of _ | Protocol.Shutdown -> None

let rpc_traced conn (type a) (req : a Protocol.request) :
    string option * a =
  let ctx = mint_ctx req in
  Protocol.write_request conn.oc ?ctx (Protocol.wire_of_request req);
  let reply = Protocol.reply_of_wire req (Protocol.read_reply conn.ic) in
  (Option.map (fun c -> c.Telemetry.tc_id) ctx, reply)

let rpc conn req = snd (rpc_traced conn req)

let close conn =
  (* both channels share the socket fd; closing the out channel flushes
     and closes it, so the in channel is torn down without the fd *)
  (try close_out conn.oc with Sys_error _ | Unix.Unix_error _ -> ());
  try close_in_noerr conn.ic with Sys_error _ -> ()

let with_conn ~socket f =
  let conn = connect ~socket in
  Fun.protect ~finally:(fun () -> close conn) (fun () -> f conn)
