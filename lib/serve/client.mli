(** The client role: typed RPCs against a running [chfc serve] daemon.

    A connection is a Unix-domain socket speaking {!Protocol} frames;
    {!rpc} is the whole session type from the client's side — send one
    typed request, receive the reply the request's type index promises.
    Several RPCs may share one connection; the daemon answers them in
    order. *)

type conn

val connect : socket:string -> conn
(** @raise Unix.Unix_error when the daemon is not listening. *)

val rpc : conn -> 'a Protocol.request -> 'a
(** @raise Protocol.Protocol_error on version skew or a reply that
    violates the session type; [End_of_file] if the daemon vanished. *)

val rpc_traced : conn -> 'a Protocol.request -> string option * 'a
(** Like {!rpc}, also returning the request id minted into the frame's
    telemetry context — the handle for [chfc trace <id>].  [None] for
    control requests or under [TRIPS_NO_REQ_TELEMETRY]. *)

val close : conn -> unit

val with_conn : socket:string -> (conn -> 'a) -> 'a
(** Connect, run, close (also on exception). *)
