(* The typed client/scheduler/worker protocol of `chfc serve`.

   Modeled on ocaml-mpst's explicit-handler session style: the request
   type is a GADT indexed by its reply type, and each role implements a
   closed record of handlers — one field per message it can receive.
   In-process, a protocol violation (wrong reply shape, unhandled
   message) is a type error; across the wire, the decoded frame is
   checked against the request's type index and a mismatch raises a
   structured [Protocol_error] instead of a marshal crash.

   Wire layer: every frame is

     "CHFS" | version byte | Marshal payload

   The magic rejects non-protocol peers, the version byte rejects skewed
   binaries (client and daemon must be the same build for [Marshal] to be
   sound — that is exactly what the version check enforces), and the
   marshaled payload is a plain variant, so framing is self-delimiting
   via [Marshal]'s own header. *)

module Telemetry = Trips_obs.Telemetry

(* ---- message payloads -------------------------------------------------- *)

type compile_spec = {
  cs_workload : string;
  cs_ordering : string;
  cs_policy : string;
  cs_backend : bool;
  cs_verify : bool;
  cs_deadline_s : float option;
  cs_chaos_seed : int option;
}

type report_spec = {
  rs_workloads : string list;
  rs_ordering : string;
  rs_policy : string;
  rs_deadline_s : float option;
}

type sweep_spec = {
  ss_table : string;
  ss_workloads : string list;
  ss_deadline_s : float option;
}

type store_counters = {
  sc_name : string;
  sc_hits : int;
  sc_misses : int;
  sc_evictions : int;
  sc_entries : int;
  sc_capacity : int;
}

type stats_payload = {
  st_version : int;
  st_uptime_s : float;
  st_workers : int;
  st_queue_depth : int;
  st_pending : int;
  st_submitted : int;
  st_completed : int;
  st_shed : int;
  st_timed_out : int;
  st_crashed : int;
  st_stores : store_counters list;
  st_degraded : bool;
  st_window : Telemetry.Window.snapshot;
}

type served_error =
  | Bad_request of string
  | Compile_failed of string
  | Overloaded of { ov_pending : int; ov_depth : int }
  | Timed_out of { te_deadline_s : float; te_spent_s : float }
  | Draining

type output = (string, served_error) result

let pp_served_error fmt = function
  | Bad_request msg -> Fmt.pf fmt "bad request: %s" msg
  | Compile_failed msg -> Fmt.pf fmt "compile failed: %s" msg
  | Overloaded { ov_pending; ov_depth } ->
    Fmt.pf fmt "overloaded: %d jobs in flight (depth %d)" ov_pending ov_depth
  | Timed_out { te_deadline_s; te_spent_s } ->
    Fmt.pf fmt "timed out: %.3fs spent, deadline %.3fs" te_spent_s
      te_deadline_s
  | Draining -> Fmt.pf fmt "draining: the daemon is shutting down"

(* outcome class of a completed job, as recorded in the rolling window
   (the scheduler classifies timeouts and crashes before it ever builds
   an [output], so those classes are stamped scheduler-side) *)
let output_class : output -> string = function
  | Ok _ -> "ok"
  | Error (Bad_request _) -> "bad_request"
  | Error (Compile_failed _) -> "failed"
  | Error (Overloaded _) -> "shed"
  | Error (Timed_out _) -> "timed_out"
  | Error Draining -> "draining"

(* ---- typed requests ---------------------------------------------------- *)

type _ request =
  | Compile : compile_spec -> output request
  | Report : report_spec -> output request
  | Sweep_cell : sweep_spec -> output request
  | Stats : stats_payload request
  | Trace_of : string -> Telemetry.trace option request
  | Shutdown : unit request

type packed = Packed : 'a request -> packed

(* ---- role handler records ---------------------------------------------- *)

type job =
  | Job_compile of compile_spec
  | Job_report of report_spec
  | Job_sweep of sweep_spec

let job_deadline = function
  | Job_compile c -> c.cs_deadline_s
  | Job_report r -> r.rs_deadline_s
  | Job_sweep s -> s.ss_deadline_s

let job_kind = function
  | Job_compile _ -> "compile"
  | Job_report _ -> "report"
  | Job_sweep _ -> "sweep-cell"

type worker = {
  w_compile : compile_spec -> output;
  w_report : report_spec -> output;
  w_sweep_cell : sweep_spec -> output;
}

let run_worker (w : worker) = function
  | Job_compile c -> w.w_compile c
  | Job_report r -> w.w_report r
  | Job_sweep s -> w.w_sweep_cell s

type scheduler_handlers = {
  sh_job : Telemetry.ctx option -> job -> output;
  sh_stats : unit -> stats_payload;
  sh_trace : string -> Telemetry.trace option;
  sh_shutdown : unit -> unit;
}

let dispatch : type a. scheduler_handlers -> ctx:Telemetry.ctx option -> a request -> a =
 fun h ~ctx -> function
  | Compile c -> h.sh_job ctx (Job_compile c)
  | Report r -> h.sh_job ctx (Job_report r)
  | Sweep_cell s -> h.sh_job ctx (Job_sweep s)
  | Stats -> h.sh_stats ()
  | Trace_of id -> h.sh_trace id
  | Shutdown -> h.sh_shutdown ()

(* ---- versioned wire encoding ------------------------------------------- *)

(* v2: the request frame gained the telemetry context and the Trace_of
   request; the stats payload gained the window snapshot and degraded
   bit.  A v1 peer is rejected with the structured skew error below. *)
let version = 2
let magic = "CHFS"

exception Protocol_error of string

type wire_request =
  | W_compile of compile_spec
  | W_report of report_spec
  | W_sweep of sweep_spec
  | W_stats
  | W_trace of string
  | W_shutdown

type wire_reply =
  | R_output of output
  | R_stats of stats_payload
  | R_trace of Telemetry.trace option
  | R_unit
  | R_error of string  (* protocol-level failure reported by the peer *)

let wire_of_request : type a. a request -> wire_request = function
  | Compile c -> W_compile c
  | Report r -> W_report r
  | Sweep_cell s -> W_sweep s
  | Stats -> W_stats
  | Trace_of id -> W_trace id
  | Shutdown -> W_shutdown

let request_of_wire = function
  | W_compile c -> Packed (Compile c)
  | W_report r -> Packed (Report r)
  | W_sweep s -> Packed (Sweep_cell s)
  | W_stats -> Packed Stats
  | W_trace id -> Packed (Trace_of id)
  | W_shutdown -> Packed Shutdown

let reply_to_wire : type a. a request -> a -> wire_reply =
 fun req reply ->
  match req with
  | Compile _ -> R_output reply
  | Report _ -> R_output reply
  | Sweep_cell _ -> R_output reply
  | Stats -> R_stats reply
  | Trace_of _ -> R_trace reply
  | Shutdown -> R_unit

(* The request's type index names the only frame shape a conforming peer
   may answer with; anything else is a role violation. *)
let reply_of_wire : type a. a request -> wire_reply -> a =
 fun req reply ->
  let violation expected =
    raise
      (Protocol_error
         (Fmt.str "reply shape violates the session type: expected %s"
            expected))
  in
  match (req, reply) with
  | _, R_error msg -> raise (Protocol_error msg)
  | Compile _, R_output o -> o
  | Report _, R_output o -> o
  | Sweep_cell _, R_output o -> o
  | Stats, R_stats s -> s
  | Trace_of _, R_trace t -> t
  | Shutdown, R_unit -> ()
  | (Compile _ | Report _ | Sweep_cell _), _ -> violation "output"
  | Stats, _ -> violation "stats"
  | Trace_of _, _ -> violation "trace"
  | Shutdown, _ -> violation "unit"

let error_reply msg = R_error msg

(* ---- framing ----------------------------------------------------------- *)

let write_frame oc v =
  output_string oc magic;
  output_byte oc version;
  Marshal.to_channel oc v [];
  flush oc

let read_frame ic =
  let header = really_input_string ic (String.length magic + 1) in
  let tag = String.sub header 0 (String.length magic) in
  if tag <> magic then
    raise (Protocol_error (Fmt.str "bad magic %S (not a chfc serve peer)" tag));
  let v = Char.code header.[String.length magic] in
  if v <> version then
    raise
      (Protocol_error
         (Fmt.str "protocol version mismatch: peer speaks v%d, this is v%d" v
            version));
  Marshal.from_channel ic

(* A request frame carries the minted telemetry context beside the
   message — [None] for control requests, or whenever the client runs
   under TRIPS_NO_REQ_TELEMETRY. *)
let write_request oc ?ctx (r : wire_request) =
  write_frame oc ((ctx : Telemetry.ctx option), r)

let read_request ic : Telemetry.ctx option * wire_request = read_frame ic
let write_reply oc (r : wire_reply) = write_frame oc r
let read_reply ic : wire_reply = read_frame ic
