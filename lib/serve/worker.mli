(** The worker role: execute serve jobs against shared artifact stores.

    One {!t} is shared by every worker domain of the daemon: it carries
    the shared lower+profile prefix cache (a {!Trips_harness.Stage.cache}
    view over a {!Trips_store.Store}) and a second store of rendered
    outputs keyed by (workload content digest, job kind, configuration).
    Repeated requests for the same source under the same configuration
    are served from the store; everything in both stores is immutable and
    produced deterministically, so a stored reply is byte-identical to a
    recomputed one.

    The compile text is rendered by {!compile_report}, which the one-shot
    [chfc compile] prints verbatim — served output equals CLI output by
    construction, not by parallel maintenance of two printers. *)

open Trips_workloads
open Trips_harness

(** {1 Name resolution (shared with the [chfc] CLI)} *)

val find_workload : string -> (Workload.t, [ `Msg of string ]) result
val ordering_of_name : string -> (Chf.Phases.ordering, [ `Msg of string ]) result
val policy_of_name : string -> (Chf.Policy.config, [ `Msg of string ]) result

(** {1 The one-shot compile report} *)

val compile_report :
  ?cache:Stage.cache ->
  ordering:Chf.Phases.ordering ->
  config:Chf.Policy.config ->
  backend:bool ->
  verify:bool ->
  Workload.t ->
  (Pipeline.compiled * string, string) result
(** Compile a workload and render the [chfc compile] report text
    (workload/ordering/merges/static/back end/functional/cycles/
    mispredictions/verified lines, one per line, exactly as the CLI
    prints them).  [Error msg] carries the rendered verification or
    miscompilation failure. *)

(** {1 The worker role} *)

type t

val create :
  ?prefix_store:Stage.prefix Trips_store.Store.t ->
  ?output_store:string Trips_store.Store.t ->
  unit ->
  t
(** Fresh stores by default; the daemon passes its shared ones. *)

val prefix_cache : t -> Stage.cache
val output_store : t -> string Trips_store.Store.t

val handlers : t -> Protocol.worker
(** The closed handler record: compile, report, sweep-cell.  Handlers
    return structured {!Protocol.served_error}s for bad names and
    pipeline failures; a chaos-poisoned compile ([cs_chaos_seed]) raises
    after fault injection — deliberately, to exercise the scheduler's
    per-job crash isolation end to end. *)
