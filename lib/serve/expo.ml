(* Exposition surfaces for the daemon's stats payload.

   [render_prom] is the golden-tested one: Prometheus text format with a
   fixed line order (scalars in declaration order, then stores, then the
   window's counters / gauges / quantile series, each sorted by name —
   every list in the payload is already name-sorted, so the output is a
   pure function of the payload).  Floats always render with a decimal
   point ("%.6f"), which is what lets the telemetry-check gate mask
   volatile values with one rule: integers are structural, floats are
   wall-clock. *)

module Telemetry = Trips_obs.Telemetry

let label_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_prom (st : Protocol.stats_payload) =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.bprintf buf fmt in
  let int_metric name v = line "%s %d\n" name v in
  let float_metric name v = line "%s %.6f\n" name v in
  line "# chfc serve exposition (stable ordering; floats are volatile)\n";
  int_metric "chfc_protocol_version" st.Protocol.st_version;
  float_metric "chfc_uptime_seconds" st.Protocol.st_uptime_s;
  int_metric "chfc_workers" st.Protocol.st_workers;
  int_metric "chfc_queue_depth_limit" st.Protocol.st_queue_depth;
  int_metric "chfc_requests_pending" st.Protocol.st_pending;
  int_metric "chfc_requests_submitted_total" st.Protocol.st_submitted;
  int_metric "chfc_requests_completed_total" st.Protocol.st_completed;
  int_metric "chfc_requests_shed_total" st.Protocol.st_shed;
  int_metric "chfc_requests_timed_out_total" st.Protocol.st_timed_out;
  int_metric "chfc_requests_crashed_total" st.Protocol.st_crashed;
  int_metric "chfc_degraded" (if st.Protocol.st_degraded then 1 else 0);
  List.iter
    (fun (s : Protocol.store_counters) ->
      let l fmt_name v =
        line "%s{store=\"%s\"} %d\n" fmt_name (label_escape s.Protocol.sc_name) v
      in
      l "chfc_store_hits_total" s.Protocol.sc_hits;
      l "chfc_store_misses_total" s.Protocol.sc_misses;
      l "chfc_store_evictions_total" s.Protocol.sc_evictions;
      l "chfc_store_entries" s.Protocol.sc_entries;
      l "chfc_store_capacity" s.Protocol.sc_capacity)
    st.Protocol.st_stores;
  let w = st.Protocol.st_window in
  float_metric "chfc_window_seconds" w.Telemetry.Window.w_span_s;
  List.iter
    (fun (name, v) ->
      line "chfc_window_count{name=\"%s\"} %d\n" (label_escape name) v)
    w.Telemetry.Window.w_counters;
  List.iter
    (fun (name, v) ->
      line "chfc_window_gauge{name=\"%s\"} %.6f\n" (label_escape name) v)
    w.Telemetry.Window.w_gauges;
  List.iter
    (fun (name, (q : Telemetry.Window.quantiles)) ->
      let n = label_escape name in
      line "chfc_window_quantile{name=\"%s\",q=\"0.5\"} %.6f\n" n
        q.Telemetry.Window.q_p50;
      line "chfc_window_quantile{name=\"%s\",q=\"0.9\"} %.6f\n" n
        q.Telemetry.Window.q_p90;
      line "chfc_window_quantile{name=\"%s\",q=\"0.99\"} %.6f\n" n
        q.Telemetry.Window.q_p99;
      line "chfc_window_quantile_count{name=\"%s\"} %d\n" n
        q.Telemetry.Window.q_count;
      line "chfc_window_quantile_sum{name=\"%s\"} %.6f\n" n
        q.Telemetry.Window.q_sum)
    w.Telemetry.Window.w_histograms;
  Buffer.contents buf

(* A finished request's span tree as Trace events, through the existing
   Chrome exporter: spans become ph "X" complete events, notes instants.
   Telemetry.value and Trace.value are the same type, so fields pass
   through untouched. *)
let trace_to_chrome (tr : Telemetry.trace) =
  let module Trace = Trips_obs.Trace in
  let span_events =
    List.mapi
      (fun i (sp : Telemetry.span) ->
        {
          Trace.cell = -1;
          seq = i;
          kind = "span";
          fields =
            ("name", Trace.Str sp.Telemetry.sp_name)
            :: ("ts", Trace.Float sp.Telemetry.sp_start_us)
            :: ("dur", Trace.Float sp.Telemetry.sp_dur_us)
            :: sp.Telemetry.sp_fields;
        })
      tr.Telemetry.tr_spans
  in
  let base = List.length span_events in
  let note_events =
    List.mapi
      (fun i (nt : Telemetry.note) ->
        {
          Trace.cell = -1;
          seq = base + i;
          kind = nt.Telemetry.nt_kind;
          fields =
            nt.Telemetry.nt_fields @ [ ("ts", Trace.Float nt.Telemetry.nt_ts_us) ];
        })
      tr.Telemetry.tr_notes
  in
  Trace.to_chrome_json (span_events @ note_events)
