(* Bounded async job scheduler over the resident Engine pool.

   Admission control lives here, execution lives in Engine.Pool, and
   the boundary is deliberate: the pool knows nothing about deadlines or
   load, the scheduler knows nothing about domains or queues.  Every
   overload mode is a structured outcome —

     shed          -> Overloaded {pending; depth}   (at admission)
     deadline      -> Timed_out {deadline; spent}   (cooperative watchdog)
     job raised    -> Crashed exn                   (confined to the job)
     shutting down -> Draining                      (at admission)

   — so a flooded, poisoned or stuck-client daemon degrades request by
   request instead of wedging.

   Counters are classified on the worker domain, in the job wrapper
   itself, which keeps them truthful even when an awaiting client has
   gone away: pending is decremented and completed/timed_out/crashed
   bumped the moment the job finishes, not when somebody looks. *)

module Engine = Trips_harness.Engine
module Watchdog = Trips_obs.Watchdog

type 'r outcome =
  | Done of 'r
  | Overloaded of { ov_pending : int; ov_depth : int }
  | Timed_out of { to_deadline_s : float; to_spent_s : float }
  | Crashed of exn
  | Draining

type counters = {
  k_workers : int;
  k_queue_depth : int;
  k_pending : int;
  k_submitted : int;
  k_completed : int;
  k_shed : int;
  k_timed_out : int;
  k_crashed : int;
}

type ('j, 'r) t = {
  pool : Engine.Pool.t;
  run : 'j -> 'r;
  deadline_of : 'j -> float option;
  default_deadline_s : float option;
  queue_depth : int;
  m : Mutex.t;
  idle : Condition.t;  (* signaled when pending returns to 0 *)
  mutable pending : int;
  mutable submitted : int;
  mutable completed : int;
  mutable shed : int;
  mutable timed_out : int;
  mutable crashed : int;
  mutable draining : bool;
}

type 'r ticket = 'r outcome Engine.Pool.job

let create ?queue_depth ?default_deadline_s ?deadline_of ~workers ~run () =
  let queue_depth =
    match queue_depth with Some d -> max 1 d | None -> 4 * max 1 workers
  in
  {
    pool = Engine.Pool.create ~workers ();
    run;
    deadline_of = Option.value deadline_of ~default:(fun _ -> None);
    default_deadline_s;
    queue_depth;
    m = Mutex.create ();
    idle = Condition.create ();
    pending = 0;
    submitted = 0;
    completed = 0;
    shed = 0;
    timed_out = 0;
    crashed = 0;
    draining = false;
  }

(* Run one job on a worker domain and classify its ending.  The watchdog
   scope is installed here — on the executing domain — so the pipeline's
   cooperative [Watchdog.check] polls see it; a [Timed_out] raised by a
   nested stage scope is classified identically. *)
let execute t job =
  let deadline_s =
    match t.deadline_of job with
    | Some _ as d -> d
    | None -> t.default_deadline_s
  in
  let finish outcome counter =
    Mutex.protect t.m (fun () ->
        t.pending <- t.pending - 1;
        counter ();
        if t.pending = 0 then Condition.broadcast t.idle);
    outcome
  in
  match
    match deadline_s with
    | None -> t.run job
    | Some d -> Watchdog.run ~deadline_s:d ~stage:"serve" (fun () -> t.run job)
  with
  | r -> finish (Done r) (fun () -> t.completed <- t.completed + 1)
  | exception Watchdog.Timed_out { wd_reason; wd_spent_s; _ } ->
    let to_deadline_s =
      match wd_reason with
      | Watchdog.Deadline d -> d
      | Watchdog.Fuel _ -> Option.value deadline_s ~default:0.0
    in
    finish
      (Timed_out { to_deadline_s; to_spent_s = wd_spent_s })
      (fun () ->
        t.timed_out <- t.timed_out + 1;
        Trips_obs.Metrics.incr "serve.timed_out")
  | exception e ->
    finish (Crashed e)
      (fun () ->
        t.crashed <- t.crashed + 1;
        Trips_obs.Metrics.incr "serve.crashed")

let submit t job =
  (* admission and the in-flight count move together under the mutex, so
     the depth bound is exact under concurrent submitters *)
  let admitted =
    Mutex.protect t.m (fun () ->
        if t.draining then Error Draining
        else if t.pending >= t.queue_depth then begin
          t.shed <- t.shed + 1;
          Trips_obs.Metrics.incr "serve.shed";
          Error
            (Overloaded { ov_pending = t.pending; ov_depth = t.queue_depth })
        end
        else begin
          t.pending <- t.pending + 1;
          t.submitted <- t.submitted + 1;
          Ok ()
        end)
  in
  match admitted with
  | Error _ as e -> e
  | Ok () -> (
    (* the wrapper never raises, so the pool job always carries an
       outcome; Pool.submit itself can refuse only after shutdown, which
       admission already excluded — but a racing drain loses gracefully *)
    match Engine.Pool.submit t.pool (fun () -> execute t job) with
    | ticket -> Ok ticket
    | exception Invalid_argument _ ->
      Mutex.protect t.m (fun () ->
          t.pending <- t.pending - 1;
          t.submitted <- t.submitted - 1;
          if t.pending = 0 then Condition.broadcast t.idle);
      Error Draining)

let await t ticket =
  match Engine.Pool.await ~help:false t.pool ticket with
  | Ok outcome -> outcome
  | Error e -> Crashed e (* unreachable: [execute] never raises *)

let run_sync t job =
  match submit t job with Error o -> o | Ok ticket -> await t ticket

let counters t =
  Mutex.protect t.m (fun () ->
      {
        k_workers = Engine.Pool.size t.pool;
        k_queue_depth = t.queue_depth;
        k_pending = t.pending;
        k_submitted = t.submitted;
        k_completed = t.completed;
        k_shed = t.shed;
        k_timed_out = t.timed_out;
        k_crashed = t.crashed;
      })

let drain t =
  Mutex.lock t.m;
  t.draining <- true;
  while t.pending > 0 do
    Condition.wait t.idle t.m
  done;
  Mutex.unlock t.m;
  Engine.Pool.shutdown t.pool
