(* Bounded async job scheduler over the resident Engine pool.

   Admission control lives here, execution lives in Engine.Pool, and
   the boundary is deliberate: the pool knows nothing about deadlines or
   load, the scheduler knows nothing about domains or queues.  Every
   overload mode is a structured outcome —

     shed          -> Overloaded {pending; depth}   (at admission)
     deadline      -> Timed_out {deadline; spent}   (cooperative watchdog)
     job raised    -> Crashed exn                   (confined to the job)
     shutting down -> Draining                      (at admission)

   — so a flooded, poisoned or stuck-client daemon degrades request by
   request instead of wedging.

   Counters are classified on the worker domain, in the job wrapper
   itself, which keeps them truthful even when an awaiting client has
   gone away: pending is decremented and completed/timed_out/crashed
   bumped the moment the job finishes, not when somebody looks.

   Telemetry also lives in the wrapper: the request's context (carried
   beside the job) opens a collector when the job is dequeued — queue
   wait now known — is installed domain-locally around the run, and is
   closed with the outcome class the moment it is decided.  The SLO
   sentinel re-reads the rolling window after every completion (and
   every shed), so a degraded daemon notices within one request. *)

module Engine = Trips_harness.Engine
module Watchdog = Trips_obs.Watchdog
module Metrics = Trips_obs.Metrics
module Telemetry = Trips_obs.Telemetry

type 'r outcome =
  | Done of 'r
  | Overloaded of { ov_pending : int; ov_depth : int }
  | Timed_out of { to_deadline_s : float; to_spent_s : float }
  | Crashed of exn
  | Draining

type counters = {
  k_workers : int;
  k_queue_depth : int;
  k_pending : int;
  k_submitted : int;
  k_completed : int;
  k_shed : int;
  k_timed_out : int;
  k_crashed : int;
}

type slo = {
  slo_p99_s : float option;
  slo_error_rate : float option;
}

type ('j, 'r) t = {
  pool : Engine.Pool.t;
  run : 'j -> 'r;
  deadline_of : 'j -> float option;
  ctx_of : 'j -> Telemetry.ctx option;
  kind_of : 'j -> string;
  class_of : 'r -> string;
  slo : slo option;
  default_deadline_s : float option;
  queue_depth : int;
  m : Mutex.t;
  idle : Condition.t;  (* signaled when pending returns to 0 *)
  mutable pending : int;
  mutable submitted : int;
  mutable completed : int;
  mutable shed : int;
  mutable timed_out : int;
  mutable crashed : int;
  mutable degraded : bool;
  mutable draining : bool;
}

type 'r ticket = 'r outcome Engine.Pool.job

let create ?queue_depth ?default_deadline_s ?deadline_of ?ctx_of ?kind_of
    ?class_of ?slo ~workers ~run () =
  let queue_depth =
    match queue_depth with Some d -> max 1 d | None -> 4 * max 1 workers
  in
  {
    pool = Engine.Pool.create ~workers ();
    run;
    deadline_of = Option.value deadline_of ~default:(fun _ -> None);
    ctx_of = Option.value ctx_of ~default:(fun _ -> None);
    kind_of = Option.value kind_of ~default:(fun _ -> "job");
    class_of = Option.value class_of ~default:(fun _ -> "ok");
    slo;
    default_deadline_s;
    queue_depth;
    m = Mutex.create ();
    idle = Condition.create ();
    pending = 0;
    submitted = 0;
    completed = 0;
    shed = 0;
    timed_out = 0;
    crashed = 0;
    degraded = false;
    draining = false;
  }

(* Queue depth and pool utilization are levels, not flows — they go up
   and down — so they live in gauges (lifetime registry and rolling
   window both), published outside the scheduler mutex: Metrics and the
   window have their own locks, and nesting would order them for no
   benefit. *)
let publish_gauges t =
  let pending, workers =
    Mutex.protect t.m (fun () -> (t.pending, Engine.Pool.size t.pool))
  in
  let util =
    if workers = 0 then 0.0
    else Float.min 1.0 (float_of_int pending /. float_of_int workers)
  in
  Metrics.set_gauge "serve.queue.depth" (float_of_int pending);
  Metrics.set_gauge "serve.pool.utilization" util;
  Telemetry.win_gauge "serve.queue.depth" (float_of_int pending);
  Telemetry.win_gauge "serve.pool.utilization" util

(* Compare the rolling window against the configured thresholds and flip
   the degraded bit accordingly — in both directions, so the daemon
   recovers once the breaching requests age out of the window.  Only the
   false→true transition counts as a breach event. *)
let evaluate_slo t =
  match t.slo with
  | None -> ()
  | Some slo ->
    let snap = Telemetry.win_snapshot () in
    let c name = Telemetry.Window.counter_value snap name in
    let ok = c "serve.req.ok" and bad = c "serve.req.bad_request" in
    let errs =
      c "serve.req.failed" + c "serve.req.timed_out" + c "serve.req.crashed"
      + c "serve.req.shed" + c "serve.req.draining"
    in
    let total = ok + bad + errs in
    let lat_breach =
      match (slo.slo_p99_s, Telemetry.Window.quantiles snap "serve.latency_s") with
      | Some th, Some q -> q.Telemetry.Window.q_p99 > th
      | _ -> false
    in
    let err_breach =
      match slo.slo_error_rate with
      | Some th ->
        total > 0 && float_of_int errs /. float_of_int total > th
      | None -> false
    in
    let breached = lat_breach || err_breach in
    let flipped =
      Mutex.protect t.m (fun () ->
          let was = t.degraded in
          t.degraded <- breached;
          breached && not was)
    in
    if flipped then Metrics.incr "serve.slo.breach"

let degraded t = Mutex.protect t.m (fun () -> t.degraded)

(* Run one job on a worker domain and classify its ending.  The watchdog
   scope is installed here — on the executing domain — so the pipeline's
   cooperative [Watchdog.check] polls see it; a [Timed_out] raised by a
   nested stage scope is classified identically.  The telemetry
   collector wraps the same extent, so the watchdog trip, the stage
   spans and the pass events all land in the owning request's trace. *)
let execute t ~queued_at job =
  let queue_wait_s = Float.max 0.0 (Unix.gettimeofday () -. queued_at) in
  let act =
    Telemetry.start (t.ctx_of job) ~kind:(t.kind_of job) ~queue_wait_s
  in
  let finish ~cls outcome counter =
    Telemetry.finish act ~outcome:cls;
    Mutex.protect t.m (fun () ->
        t.pending <- t.pending - 1;
        counter ();
        if t.pending = 0 then Condition.broadcast t.idle);
    publish_gauges t;
    evaluate_slo t;
    outcome
  in
  let deadline_s =
    match t.deadline_of job with
    | Some _ as d -> d
    | None -> t.default_deadline_s
  in
  match
    Telemetry.run act (fun () ->
        match deadline_s with
        | None -> t.run job
        | Some d ->
          Watchdog.run ~deadline_s:d ~stage:"serve" (fun () -> t.run job))
  with
  | r -> finish ~cls:(t.class_of r) (Done r) (fun () -> t.completed <- t.completed + 1)
  | exception Watchdog.Timed_out { wd_reason; wd_spent_s; _ } ->
    let to_deadline_s =
      match wd_reason with
      | Watchdog.Deadline d -> d
      | Watchdog.Fuel _ -> Option.value deadline_s ~default:0.0
    in
    finish ~cls:"timed_out"
      (Timed_out { to_deadline_s; to_spent_s = wd_spent_s })
      (fun () ->
        t.timed_out <- t.timed_out + 1;
        Metrics.incr "serve.timed_out")
  | exception e ->
    finish ~cls:"crashed" (Crashed e)
      (fun () ->
        t.crashed <- t.crashed + 1;
        Metrics.incr "serve.crashed")

let submit t job =
  (* admission and the in-flight count move together under the mutex, so
     the depth bound is exact under concurrent submitters *)
  let queued_at = Unix.gettimeofday () in
  let admitted =
    Mutex.protect t.m (fun () ->
        if t.draining then Error Draining
        else if t.pending >= t.queue_depth then begin
          t.shed <- t.shed + 1;
          Metrics.incr "serve.shed";
          Error
            (Overloaded { ov_pending = t.pending; ov_depth = t.queue_depth })
        end
        else begin
          t.pending <- t.pending + 1;
          t.submitted <- t.submitted + 1;
          Ok t.pending
        end)
  in
  match admitted with
  | Error o ->
    (* refusals never reach a worker, so their window accounting — each
       request in exactly one outcome class — happens here *)
    (match o with
    | Overloaded _ -> Telemetry.win_incr "serve.req.shed"
    | _ -> Telemetry.win_incr "serve.req.draining");
    evaluate_slo t;
    Error o
  | Ok depth_now -> (
    Telemetry.win_observe "serve.queue_depth" (float_of_int depth_now);
    publish_gauges t;
    (* the wrapper never raises, so the pool job always carries an
       outcome; Pool.submit itself can refuse only after shutdown, which
       admission already excluded — but a racing drain loses gracefully *)
    match Engine.Pool.submit t.pool (fun () -> execute t ~queued_at job) with
    | ticket -> Ok ticket
    | exception Invalid_argument _ ->
      Mutex.protect t.m (fun () ->
          t.pending <- t.pending - 1;
          t.submitted <- t.submitted - 1;
          if t.pending = 0 then Condition.broadcast t.idle);
      Error Draining)

let await t ticket =
  match Engine.Pool.await ~help:false t.pool ticket with
  | Ok outcome -> outcome
  | Error e -> Crashed e (* unreachable: [execute] never raises *)

let run_sync t job =
  match submit t job with Error o -> o | Ok ticket -> await t ticket

let counters t =
  Mutex.protect t.m (fun () ->
      {
        k_workers = Engine.Pool.size t.pool;
        k_queue_depth = t.queue_depth;
        k_pending = t.pending;
        k_submitted = t.submitted;
        k_completed = t.completed;
        k_shed = t.shed;
        k_timed_out = t.timed_out;
        k_crashed = t.crashed;
      })

let drain t =
  Mutex.lock t.m;
  t.draining <- true;
  while t.pending > 0 do
    Condition.wait t.idle t.m
  done;
  Mutex.unlock t.m;
  Engine.Pool.shutdown t.pool
