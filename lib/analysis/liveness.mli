(** Backward liveness over blocks, predication-refined.

    Classic predication-aware liveness treats every guarded definition as
    exposing its register (the incoming value flows through when the
    guard is false).  That is sound but catastrophically conservative for
    hyperblocks: a temporary whose guarded definition sits in a self-loop
    block becomes live around the loop forever, blocking predicate
    optimization and inflating register pressure.

    This analysis splits each block's exposure into a [hard] set (the
    incoming value is definitely observable) and a [soft] set (a guarded
    definition's flow-through value escapes only if the register is live
    out), using {!Guard_logic} implication: a use whose own guard implies
    the last definition's guard only executes when that definition did.
    The least fixpoint of

    {[ live_in = hard ∪ (soft ∩ live_out) ∪ (live_out − kill) ]}

    certifies exactly that a soft register's stale value can never reach
    an observer. *)

open Trips_ir

type gen_kill = { hard : IntSet.t; soft : IntSet.t; kill : IntSet.t }

val gen_kill : Block.t -> gen_kill
(** Per-block generator/killer sets (see module description). *)

type t

type gk_cache
(** Memo table for per-block gen/kill sets, keyed on block identity.
    Blocks are immutable records, so a cached entry is valid exactly as
    long as the same block record is still installed in the CFG.  Pass a
    persistent cache when recomputing liveness after single-block edits
    (formation re-checks constraints after every merge attempt) so only
    the edited block pays for gen/kill extraction again; the fixpoint is
    the unique least solution, so results are identical with or without
    the cache. *)

val gk_cache : unit -> gk_cache

val compute : ?cache:gk_cache -> Cfg.t -> t

val update : ?cache:gk_cache -> t -> Cfg.t -> touched:int list -> t
(** [update t cfg ~touched] re-solves the fixpoint after an edit that
    replaced, added or removed exactly the blocks in [touched] (removed
    blocks are recognized by their absence from [cfg]); every other
    block's successor list and body must be unchanged since [t] was
    computed.  Only the region that can reach an edited block is reset
    and re-solved — the rest keeps its old (still exact) solution — so
    the result is the unique least fixpoint, identical to a full
    {!compute} on the edited graph.  Formation uses this after every
    trial merge, where an edit touches one block and removes at most
    one. *)

val version : t -> int
(** Globally unique stamp of this instance: every {!compute} or
    {!update} result carries a fresh one, so two liveness values with
    equal versions are the same instance.  Formation's trial-verdict
    cache folds this into its read-set keys. *)

val live_in : t -> int -> IntSet.t
val live_out : t -> int -> IntSet.t

val block_inputs : Block.t -> live_out:IntSet.t -> IntSet.t
(** Registers a block must read as inputs given what is live out of it —
    the refined register-read set used by the structural-constraint
    estimator and the bank-budget checker. *)
