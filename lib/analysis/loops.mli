(** Natural-loop discovery.

    A back edge is an edge [t -> h] whose target dominates its source;
    the natural loop of [h] is the union, over its back edges, of all
    blocks that reach a latch without passing through [h].  Irreducible
    cycles are not reported as loops. *)

open Trips_ir

type loop = {
  header : int;
  body : IntSet.t;  (** includes the header *)
  latches : IntSet.t;  (** sources of back edges into the header *)
  exits : (int * int) list;  (** edges (from inside the body, to outside) *)
  depth : int;  (** nesting depth, outermost = 1 *)
}

type t

val compute : Cfg.t -> t

val version : t -> int
(** Globally unique stamp of this loop forest: every {!compute} result
    carries a fresh one, so equal versions mean the same instance.
    Formation's trial-verdict cache folds this into its read-set keys. *)

val loop_headed_by : t -> int -> loop option
val is_loop_header : t -> int -> bool

val innermost : t -> int -> loop option
(** Innermost loop containing a block, if any. *)

val is_back_edge : t -> src:int -> dst:int -> bool
(** Does [src -> dst] close a natural loop ([dst] a header, [src] one of
    its latches)? *)

val all_loops : t -> loop list
val pp_loop : Format.formatter -> loop -> unit
