(* Natural-loop discovery.

   A back edge is an edge [t -> h] whose target dominates its source; the
   natural loop of [h] is the union, over its back edges, of all blocks
   that reach a latch without passing through [h].  Irreducible cycles
   (which head and tail duplication do not create from our reducible front
   end, but random tests might) are simply not reported as loops. *)

open Trips_ir

type loop = {
  header : int;
  body : IntSet.t;  (* includes the header *)
  latches : IntSet.t;  (* sources of back edges into the header *)
  exits : (int * int) list;  (* edges (from-in-body, to-outside) *)
  depth : int;  (* nesting depth, outermost = 1 *)
}

type t = {
  loops : loop IntMap.t;  (* keyed by header *)
  loop_of_block : int IntMap.t;
      (* block -> header of the innermost loop containing it *)
  version : int;  (* globally unique instance stamp (see [version]) *)
}

let version_counter = Atomic.make 0
let version t = t.version

let compute cfg =
  let dom = Dominators.compute cfg in
  let preds = Cfg.predecessor_map cfg in
  let reachable = Order.reachable cfg in
  (* Collect back edges grouped by header. *)
  let back_edges = Hashtbl.create 8 in
  IntSet.iter
    (fun src ->
      List.iter
        (fun dst ->
          if Dominators.dominates dom dst src then
            Hashtbl.replace back_edges dst
              (IntSet.add src
                 (Option.value ~default:IntSet.empty
                    (Hashtbl.find_opt back_edges dst))))
        (Cfg.successors cfg src))
    reachable;
  (* Natural loop body: backward reachability from the latches, stopping
     at the header. *)
  let body_of header latches =
    let body = ref (IntSet.singleton header) in
    let rec add id =
      if not (IntSet.mem id !body) then begin
        body := IntSet.add id !body;
        IntSet.iter add (IntMap.find_or ~default:IntSet.empty id preds)
      end
    in
    IntSet.iter add latches;
    !body
  in
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        let body = body_of header latches in
        let exits =
          IntSet.fold
            (fun b acc ->
              List.fold_left
                (fun acc s ->
                  if IntSet.mem s body then acc else (b, s) :: acc)
                acc
                (Cfg.successors cfg b))
            body []
        in
        IntMap.add header { header; body; latches; exits; depth = 1 } acc)
      back_edges IntMap.empty
  in
  (* Nesting depth: a loop is nested in every other loop whose body
     contains its header. *)
  let loops =
    IntMap.map
      (fun l ->
        let depth =
          IntMap.fold
            (fun h other acc ->
              if h <> l.header && IntSet.mem l.header other.body then acc + 1
              else acc)
            loops 1
        in
        { l with depth })
      loops
  in
  (* Innermost loop per block = containing loop with the greatest depth. *)
  let loop_of_block =
    IntMap.fold
      (fun _ l acc ->
        IntSet.fold
          (fun b acc ->
            match IntMap.find_opt b acc with
            | Some h when (IntMap.find h loops).depth >= l.depth -> acc
            | _ -> IntMap.add b l.header acc)
          l.body acc)
      loops IntMap.empty
  in
  { loops; loop_of_block; version = Atomic.fetch_and_add version_counter 1 + 1 }

let loop_headed_by t header = IntMap.find_opt header t.loops
let is_loop_header t id = IntMap.mem id t.loops

(** Innermost loop containing [id], if any. *)
let innermost t id =
  Option.bind (IntMap.find_opt id t.loop_of_block) (fun h ->
      IntMap.find_opt h t.loops)

(** [is_back_edge t ~src ~dst] holds when [src -> dst] closes a natural
    loop, i.e. [dst] is a header and [src] one of its latches. *)
let is_back_edge t ~src ~dst =
  match IntMap.find_opt dst t.loops with
  | Some l -> IntSet.mem src l.latches
  | None -> false

let all_loops t = IntMap.values t.loops

let pp_loop fmt l =
  Fmt.pf fmt "loop@b%d depth=%d body=%a latches=%a" l.header l.depth IntSet.pp
    l.body IntSet.pp l.latches
