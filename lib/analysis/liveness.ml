(* Backward liveness over blocks, predication-refined.

   Classic predication-aware liveness treats every guarded definition as
   exposing its register (the incoming value flows through when the guard
   is false).  That is sound but catastrophically conservative for
   hyperblocks: a temporary whose guarded definition sits in a self-loop
   block becomes live around the loop forever, which blocks predicate
   optimization and inflates register pressure.

   We split each block's upward-exposed set in two:

   - [hard]: registers whose incoming value some instruction or exit can
     definitely observe — a use with no prior unconditional definition,
     unless the last prior definition is guarded and the use's own guard
     *implies* that guard (then the use only executes when the definition
     did);
   - [soft]: registers with a guarded definition whose flow-through value
     escapes only if the register is live out of the block.

   The dataflow equation  live_in = hard ∪ (soft ∩ live_out) ∪
   (live_out − kill)  is monotone in live_out, so the least fixpoint is
   well-defined; it certifies exactly that a soft register's stale value
   can never reach an observer. *)

open Trips_ir

type gen_kill = { hard : IntSet.t; soft : IntSet.t; kill : IntSet.t }

(** Per-block generator/killer sets (see module comment). *)
type last_def = Must | May of Trips_ir.Instr.guard | May_opaque
(* May_opaque: conditional definition whose guard register was later
   redefined, so its guard can no longer be compared by name *)

let gen_kill (b : Block.t) : gen_kill =
  let defs = Guard_logic.build_defs b.Block.instrs in
  let last_def : (int, last_def) Hashtbl.t = Hashtbl.create 32 in
  let hard = ref IntSet.empty in
  let soft = ref IntSet.empty in
  let observe_use ~pos guard r =
    match Hashtbl.find_opt last_def r with
    | Some Must -> ()  (* dominated by an unconditional definition *)
    | Some (May g) ->
      if not (Guard_logic.option_implies ~use_pos:pos defs guard g) then
        hard := IntSet.add r !hard
    | Some May_opaque | None -> hard := IntSet.add r !hard
  in
  List.iteri
    (fun pos (i : Instr.t) ->
      (* the guard register itself is read unconditionally *)
      (match i.Instr.guard with
      | Some g -> observe_use ~pos None g.Instr.greg
      | None -> ());
      let operand_regs =
        List.filter
          (fun r ->
            match i.Instr.guard with
            | Some g -> r <> g.Instr.greg
            | None -> true)
          (Instr.uses i)
      in
      List.iter (observe_use ~pos i.Instr.guard) operand_regs;
      List.iter
        (fun d ->
          (match i.Instr.guard with
          | Some _ when Hashtbl.find_opt last_def d <> Some Must ->
            (* incoming value may still flow through this conditional
               definition: exposure pending liveness *)
            soft := IntSet.add d !soft
          | Some _ | None -> ());
          Hashtbl.replace last_def d
            (match i.Instr.guard with None -> Must | Some g -> May g);
          (* a definition of a register that some recorded guard reads
             makes that guard stale: poison the record *)
          Hashtbl.filter_map_inplace
            (fun _ entry ->
              match entry with
              | May g when g.Instr.greg = d -> Some May_opaque
              | other -> Some other)
            last_def)
        (Instr.defs i))
    b.Block.instrs;
  (* exits: guard registers are evaluated unconditionally; return
     operands are read when the exit fires (conservatively: hard) *)
  IntSet.iter (fun r -> observe_use ~pos:max_int None r) (Block.exit_uses b);
  (* debugging escape hatch: fall back to classic (exposure-only)
     predication-aware liveness to bisect refinement-related issues *)
  if Sys.getenv_opt "TRIPS_CONSERVATIVE_LIVENESS" <> None then begin
    hard := IntSet.union !hard (Block.upward_exposed_uses b);
    soft := IntSet.empty
  end;
  let kill = Block.must_defs b in
  let soft = IntSet.diff (IntSet.diff !soft !hard) kill in
  { hard = !hard; soft; kill }

type t = {
  live_in : IntSet.t IntMap.t;
  live_out : IntSet.t IntMap.t;
  gk : gen_kill IntMap.t;
  succs : int list IntMap.t;  (* successor lists at solve time *)
  preds : IntSet.t IntMap.t;  (* inverse of [succs] *)
  order : int IntMap.t;  (* postorder position, worklist priority only *)
  version : int;  (* globally unique instance stamp (see [version]) *)
}

(* Every solve — full or incremental — gets a fresh stamp from a global
   atomic counter, so [version] identifies a liveness instance without
   comparing its (large, persistent) maps. *)
let version_counter = Atomic.make 0
let fresh_version () = Atomic.fetch_and_add version_counter 1 + 1
let version t = t.version

(* Blocks are immutable records replaced wholesale (see [Cfg]), so a
   block's gen/kill sets can be memoized under physical equality: a
   cached entry is valid exactly as long as the block record it was
   computed from is still installed.  Callers that recompute liveness
   after single-block edits (formation re-checks constraints after every
   merge attempt) pass a persistent cache so only the edited block pays
   for gen/kill again; the fixpoint below is the unique least solution,
   so cached and uncached runs are indistinguishable. *)
type gk_cache = (int, Block.t * gen_kill) Hashtbl.t

let gk_cache () : gk_cache = Hashtbl.create 64

let gen_kill_memo cache (b : Block.t) =
  match cache with
  | None -> gen_kill b
  | Some tbl -> (
    match Hashtbl.find_opt tbl b.Block.id with
    | Some (b', gk) when b' == b -> gk
    | Some _ | None ->
      let gk = gen_kill b in
      Hashtbl.replace tbl b.Block.id (b, gk);
      gk)

let compute ?cache cfg =
  let ids = Order.postorder cfg in
  let gk =
    List.fold_left
      (fun acc id -> IntMap.add id (gen_kill_memo cache (Cfg.block cfg id)) acc)
      IntMap.empty ids
  in
  (* successor lists are loop-invariant across fixpoint rounds *)
  let succs =
    List.fold_left
      (fun acc id -> IntMap.add id (Cfg.successors cfg id) acc)
      IntMap.empty ids
  in
  let live_in = Hashtbl.create 64 and live_out = Hashtbl.create 64 in
  List.iter
    (fun id ->
      Hashtbl.replace live_in id IntSet.empty;
      Hashtbl.replace live_out id IntSet.empty)
    ids;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        let out =
          List.fold_left
            (fun acc s ->
              IntSet.union acc
                (Option.value ~default:IntSet.empty (Hashtbl.find_opt live_in s)))
            IntSet.empty
            (IntMap.find_or ~default:[] id succs)
        in
        let g = IntMap.find id gk in
        let inn =
          IntSet.union g.hard
            (IntSet.union
               (IntSet.inter g.soft out)
               (IntSet.diff out g.kill))
        in
        if
          not
            (IntSet.equal out (Hashtbl.find live_out id)
            && IntSet.equal inn (Hashtbl.find live_in id))
        then begin
          Hashtbl.replace live_out id out;
          Hashtbl.replace live_in id inn;
          changed := true
        end)
      ids
  done;
  let to_map h =
    Hashtbl.fold (fun k v acc -> IntMap.add k v acc) h IntMap.empty
  in
  let preds =
    IntMap.fold
      (fun src ss acc ->
        List.fold_left
          (fun acc s ->
            IntMap.add s
              (IntSet.add src (IntMap.find_or ~default:IntSet.empty s acc))
              acc)
          acc ss)
      succs IntMap.empty
  in
  let order =
    List.fold_left
      (fun (k, acc) id -> (k + 1, IntMap.add id k acc))
      (0, IntMap.empty) ids
    |> snd
  in
  { live_in = to_map live_in; live_out = to_map live_out; gk; succs; preds;
    order; version = fresh_version () }

(* ---- incremental re-solve ---------------------------------------------- *)

(* After an edit that replaced or removed a handful of blocks, the least
   fixpoint can change only where the edit is *backward-reachable*: a
   block's live sets depend on its forward cone, so a block that cannot
   reach any edited block keeps its exact old solution.  Re-running the
   worklist from the stale solution is NOT sound — a register whose
   liveness was sustained through a cycle of un-edited blocks can keep
   itself alive forever once its real source disappeared (the classic
   stale-overapproximation trap).  Instead we reset the affected region
   (ancestors of the edited blocks) to bottom and ascend again; the
   boundary (non-ancestors) is frozen at its old — still exact — values,
   so the ascent converges to the global least fixpoint, identical to a
   full {!compute}.  See DESIGN.md §12. *)
let update ?cache t cfg ~touched =
  let present, removed = List.partition (Cfg.mem cfg) touched in
  (* 1. refresh the edge maps and gen/kill for the edited blocks *)
  let preds = ref t.preds in
  let retarget id old_s new_s =
    List.iter
      (fun s ->
        preds :=
          IntMap.add s
            (IntSet.remove id (IntMap.find_or ~default:IntSet.empty s !preds))
            !preds)
      old_s;
    List.iter
      (fun s ->
        preds :=
          IntMap.add s
            (IntSet.add id (IntMap.find_or ~default:IntSet.empty s !preds))
            !preds)
      new_s
  in
  let succs = ref t.succs and gk = ref t.gk in
  let seeds = ref IntSet.empty in
  List.iter
    (fun id ->
      let new_s = Cfg.successors cfg id in
      retarget id (IntMap.find_or ~default:[] id !succs) new_s;
      succs := IntMap.add id new_s !succs;
      gk := IntMap.add id (gen_kill_memo cache (Cfg.block cfg id)) !gk;
      seeds := IntSet.add id !seeds)
    present;
  let live_in = ref t.live_in and live_out = ref t.live_out in
  List.iter
    (fun id ->
      retarget id (IntMap.find_or ~default:[] id !succs) [];
      (* un-edited blocks that still referenced the removed block's
         live-in are stale too *)
      seeds := IntSet.union !seeds (IntMap.find_or ~default:IntSet.empty id !preds);
      succs := IntMap.remove id !succs;
      gk := IntMap.remove id !gk;
      preds := IntMap.remove id !preds;
      live_in := IntMap.remove id !live_in;
      live_out := IntMap.remove id !live_out)
    removed;
  (* 2. affected region: backward closure of the seeds *)
  let affected = ref IntSet.empty in
  let rec close id =
    if not (IntSet.mem id !affected) then begin
      affected := IntSet.add id !affected;
      IntSet.iter close (IntMap.find_or ~default:IntSet.empty id !preds)
    end
  in
  IntSet.iter close !seeds;
  (* 3. reset the region to bottom, then ascend with a worklist *)
  IntSet.iter
    (fun id ->
      live_in := IntMap.add id IntSet.empty !live_in;
      live_out := IntMap.add id IntSet.empty !live_out)
    !affected;
  let position id = IntMap.find_or ~default:max_int id t.order in
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let push id =
    if not (Hashtbl.mem queued id) then begin
      Hashtbl.replace queued id ();
      Queue.push id queue
    end
  in
  (* seed successors-first (postorder) so the first sweep is productive *)
  IntSet.elements !affected
  |> List.sort (fun a b -> compare (position a) (position b))
  |> List.iter push;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    Hashtbl.remove queued id;
    match IntMap.find_opt id !gk with
    | None -> ()  (* not part of the solved (reachable) region *)
    | Some g ->
      let out =
        List.fold_left
          (fun acc s ->
            IntSet.union acc (IntMap.find_or ~default:IntSet.empty s !live_in))
          IntSet.empty
          (IntMap.find_or ~default:[] id !succs)
      in
      let inn =
        IntSet.union g.hard
          (IntSet.union (IntSet.inter g.soft out) (IntSet.diff out g.kill))
      in
      let in_changed =
        not (IntSet.equal inn (IntMap.find_or ~default:IntSet.empty id !live_in))
      in
      if
        in_changed
        || not
             (IntSet.equal out
                (IntMap.find_or ~default:IntSet.empty id !live_out))
      then begin
        live_in := IntMap.add id inn !live_in;
        live_out := IntMap.add id out !live_out;
        if in_changed then
          IntSet.iter push (IntMap.find_or ~default:IntSet.empty id !preds)
      end
  done;
  {
    live_in = !live_in;
    live_out = !live_out;
    gk = !gk;
    succs = !succs;
    preds = !preds;
    order = t.order;
    version = fresh_version ();
  }

let live_in t id = IntMap.find_or ~default:IntSet.empty id t.live_in
let live_out t id = IntMap.find_or ~default:IntSet.empty id t.live_out

(** Registers a block must read as inputs given what is live out of it —
    the refined register-read set used by the structural-constraint
    estimator. *)
let block_inputs (b : Block.t) ~live_out =
  let g = gen_kill b in
  IntSet.union g.hard (IntSet.inter g.soft live_out)
