(** Declarative experiment sweeps over the shared engine.

    A sweep is a cross-product of workloads (rows) and configurations
    (columns): per row, compile the basic-block baseline, then compile,
    checksum-verify and measure one cell per column.  The per-experiment
    modules (Tables 1–3, Figure 7) supply only axes, a cell function and
    a renderer; prefix caching ({!Stage}), domain-pool parallelism
    ({!Engine}), graceful failure collection and the deterministic merge
    order live here, once.

    Rows are the unit of parallelism; results always merge in workload
    order (then column order within a row), so [~jobs:N] output is
    byte-identical to [~jobs:1]. *)

open Trips_sim
open Trips_workloads

type baseline = {
  base_compiled : Pipeline.compiled;  (** BB compile of the row *)
  base_functional : Func_sim.result;
  base_cycles : Cycle_sim.result option;
      (** present when the spec asked for a cycle-simulated baseline *)
}

type ('col, 'cell) spec = {
  columns : 'col list;
  baseline_backend : bool;
      (** compile the BB baseline through the back end *)
  baseline_cycles : bool;  (** cycle-simulate the BB baseline *)
  cell :
    cache:Stage.cache option ->
    baseline ->
    Workload.t ->
    'col ->
    ('cell, Pipeline.failure) result;
      (** compile and measure one configuration; pass [?cache] through
          to {!Pipeline.compile_checked} *)
}

type 'cell row = {
  row_workload : string;
  row_baseline : baseline;
  row_cells : 'cell list;  (** successful columns only, in column order *)
}

type 'cell outcome = {
  rows : 'cell row list;
  failures : Pipeline.failure list;  (** in sweep order *)
}

val run :
  ?cache:Stage.cache ->
  ?jobs:int ->
  ('col, 'cell) spec ->
  Workload.t list ->
  'cell outcome
(** Sweep every workload over every column.  A failed baseline drops the
    row; a failed cell drops the cell; either is recorded as a
    structured failure and the sweep always completes.  [cache] is
    shared across all rows (and safely across domains). *)
