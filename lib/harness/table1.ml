(* Table 1: cycle-count improvement of the four phase orderings over the
   basic-block baseline on the 24 microbenchmarks, with m/t/u/p merge
   statistics, under the greedy breadth-first EDGE policy.

   A workload or configuration that fails to compile (or miscompiles) is
   recorded as a structured failure and the sweep continues; the
   rendered table marks the missing cells and lists the failures. *)

open Trips_workloads

type cell = {
  ordering : Chf.Phases.ordering;
  cycles : int;
  dyn_blocks : int;  (* dynamic blocks executed *)
  stats : Chf.Formation.stats;
  improvement : float;  (* % cycles saved vs BB *)
}

type row = {
  workload : string;
  bb_cycles : int;
  bb_blocks : int;
  cells : cell list;  (* successful configurations only *)
}

type outcome = { rows : row list; failures : Pipeline.failure list }

let orderings =
  [ Chf.Phases.Upio; Chf.Phases.Iupo; Chf.Phases.Iup_o; Chf.Phases.Iupo_merged ]

(* Compile, baseline-check and cycle-simulate one configuration;
   exceptions past compile_checked (miscompares, simulator faults) are
   classified into failures too. *)
let run_cell ?config ?verify ~baseline ~bb_cycle (w : Workload.t) ordering :
    (cell, Pipeline.failure) result =
  match Pipeline.compile_checked ?config ?verify ~backend:true ordering w with
  | Error f -> Error f
  | Ok c -> (
    match
      ignore (Pipeline.verify_against ~baseline c);
      Pipeline.run_cycles c
    with
    | r ->
      Ok
        {
          ordering;
          cycles = r.Trips_sim.Cycle_sim.cycles;
          dyn_blocks = r.Trips_sim.Cycle_sim.blocks;
          stats = c.Pipeline.stats;
          improvement =
            Stats.percent_improvement ~base:bb_cycle.Trips_sim.Cycle_sim.cycles
              ~v:r.Trips_sim.Cycle_sim.cycles;
        }
    | exception e ->
      Error (Pipeline.failure_of_exn ~workload:w ~ordering:(Some ordering) e))

let run_row ?config ?verify (w : Workload.t) : (row, Pipeline.failure) result * Pipeline.failure list =
  match Pipeline.compile_checked ?config ?verify ~backend:true Chf.Phases.Basic_blocks w with
  | Error f -> (Error f, [])
  | Ok bb -> (
    match (Pipeline.run_cycles bb, Pipeline.run_functional bb) with
    | exception e ->
      (Error (Pipeline.failure_of_exn ~workload:w ~ordering:(Some Chf.Phases.Basic_blocks) e), [])
    | bb_cycle, baseline ->
      let cells, failures =
        List.fold_left
          (fun (cells, failures) ordering ->
            match run_cell ?config ?verify ~baseline ~bb_cycle w ordering with
            | Ok c -> (c :: cells, failures)
            | Error f -> (cells, f :: failures))
          ([], []) orderings
      in
      ( Ok
          {
            workload = w.Workload.name;
            bb_cycles = bb_cycle.Trips_sim.Cycle_sim.cycles;
            bb_blocks = bb_cycle.Trips_sim.Cycle_sim.blocks;
            cells = List.rev cells;
          },
        List.rev failures ))

(** Run the Table 1 experiment.  [workloads] defaults to all 24
    microbenchmarks; failures are reported, not raised, so the sweep
    always completes. *)
let run ?config ?verify ?(workloads = Micro.all) () : outcome =
  let rows, failures =
    List.fold_left
      (fun (rows, failures) w ->
        match run_row ?config ?verify w with
        | Ok r, fs -> (r :: rows, List.rev_append fs failures)
        | Error f, fs -> (rows, List.rev_append fs (f :: failures)))
      ([], []) workloads
  in
  { rows = List.rev rows; failures = List.rev failures }

let average rows ordering =
  Stats.mean
    (List.filter_map
       (fun r ->
         List.find_opt (fun c -> c.ordering = ordering) r.cells
         |> Option.map (fun c -> c.improvement))
       rows)

let render fmt { rows; failures } =
  Fmt.pf fmt "Table 1: %% cycle improvement over BB and m/t/u/p statistics@.";
  Fmt.pf fmt "%-16s %10s" "benchmark" "BB cycles";
  List.iter
    (fun o -> Fmt.pf fmt " | %-12s %6s" (Chf.Phases.name o) "%")
    orderings;
  Fmt.pf fmt "@.";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-16s %10d" r.workload r.bb_cycles;
      List.iter
        (fun o ->
          match List.find_opt (fun c -> c.ordering = o) r.cells with
          | Some c ->
            Fmt.pf fmt " | %-12s %6.1f"
              (Fmt.str "%a" Chf.Formation.pp_stats c.stats)
              c.improvement
          | None -> Fmt.pf fmt " | %-12s %6s" "failed" "-")
        orderings;
      Fmt.pf fmt "@.")
    rows;
  Fmt.pf fmt "%-16s %10s" "Average" "";
  List.iter
    (fun o -> Fmt.pf fmt " | %-12s %6.1f" "" (average rows o))
    orderings;
  Fmt.pf fmt "@.";
  if failures <> [] then begin
    Fmt.pf fmt "@.%d failure(s):@." (List.length failures);
    List.iter (fun f -> Fmt.pf fmt "  %a@." Pipeline.pp_failure f) failures
  end
