(* Table 1: cycle-count improvement of the four phase orderings over the
   basic-block baseline on the 24 microbenchmarks, with m/t/u/p merge
   statistics, under the greedy breadth-first EDGE policy.

   Expressed as a declarative sweep spec (axes + cell function +
   renderer) over the shared engine: Sweep owns baseline handling,
   prefix caching, parallelism and failure collection.  A workload or
   configuration that fails to compile (or miscompiles) is recorded as a
   structured failure and the sweep continues; the rendered table marks
   the missing cells and lists the failures. *)

open Trips_workloads

type cell = {
  ordering : Chf.Phases.ordering;
  cycles : int;
  dyn_blocks : int;  (* dynamic blocks executed *)
  stats : Chf.Formation.stats;
  improvement : float;  (* % cycles saved vs BB *)
}

type row = {
  workload : string;
  bb_cycles : int;
  bb_blocks : int;
  cells : cell list;  (* successful configurations only *)
}

type outcome = { rows : row list; failures : Pipeline.failure list }

let orderings = Chf.Phases.table_orderings

(* Compile, baseline-check and cycle-simulate one configuration;
   exceptions past compile_checked (miscompares, simulator faults) are
   classified into failures too. *)
let spec ?config ?verify () : (Chf.Phases.ordering, cell) Sweep.spec =
  {
    Sweep.columns = orderings;
    baseline_backend = true;
    baseline_cycles = true;
    cell =
      (fun ~cache baseline w ordering ->
        match
          Pipeline.compile_checked ?cache ?config ?verify ~backend:true
            ordering w
        with
        | Error f -> Error f
        | Ok c -> (
          match
            ignore
              (Pipeline.verify_against
                 ~baseline:baseline.Sweep.base_functional c);
            Pipeline.run_cycles c
          with
          | r ->
            let bb_cycle = Option.get baseline.Sweep.base_cycles in
            Ok
              {
                ordering;
                cycles = r.Trips_sim.Cycle_sim.cycles;
                dyn_blocks = r.Trips_sim.Cycle_sim.blocks;
                stats = c.Pipeline.stats;
                improvement =
                  Stats.percent_improvement
                    ~base:bb_cycle.Trips_sim.Cycle_sim.cycles
                    ~v:r.Trips_sim.Cycle_sim.cycles;
              }
          | exception e ->
            Error (Pipeline.failure_of_exn ~workload:w ~ordering:(Some ordering) e)));
  }

(** Run the Table 1 experiment.  [workloads] defaults to all 24
    microbenchmarks; failures are reported, not raised, so the sweep
    always completes.  [jobs] parallelizes rows over the engine's domain
    pool; [cache] (fresh per run by default) shares the lower+profile
    prefix across the five compiles of every workload. *)
let run ?config ?verify ?(cache = Stage.create ()) ?jobs
    ?(workloads = Micro.all) () : outcome =
  let o = Sweep.run ~cache ?jobs (spec ?config ?verify ()) workloads in
  {
    rows =
      List.map
        (fun (r : cell Sweep.row) ->
          let bb = Option.get r.Sweep.row_baseline.Sweep.base_cycles in
          {
            workload = r.Sweep.row_workload;
            bb_cycles = bb.Trips_sim.Cycle_sim.cycles;
            bb_blocks = bb.Trips_sim.Cycle_sim.blocks;
            cells = r.Sweep.row_cells;
          })
        o.Sweep.rows;
    failures = o.Sweep.failures;
  }

let average rows ordering =
  Stats.mean
    (List.filter_map
       (fun r ->
         List.find_opt (fun c -> c.ordering = ordering) r.cells
         |> Option.map (fun c -> c.improvement))
       rows)

let render fmt { rows; failures } =
  Fmt.pf fmt "Table 1: %% cycle improvement over BB and m/t/u/p statistics@.";
  Fmt.pf fmt "%-16s %10s" "benchmark" "BB cycles";
  List.iter
    (fun o -> Fmt.pf fmt " | %-12s %6s" (Chf.Phases.name o) "%")
    orderings;
  Fmt.pf fmt "@.";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-16s %10d" r.workload r.bb_cycles;
      List.iter
        (fun o ->
          match List.find_opt (fun c -> c.ordering = o) r.cells with
          | Some c ->
            Fmt.pf fmt " | %-12s %6.1f"
              (Fmt.str "%a" Chf.Formation.pp_stats c.stats)
              c.improvement
          | None -> Fmt.pf fmt " | %-12s %6s" "failed" "-")
        orderings;
      Fmt.pf fmt "@.")
    rows;
  Fmt.pf fmt "%-16s %10s" "Average" "";
  List.iter
    (fun o -> Fmt.pf fmt " | %-12s %6.1f" "" (average rows o))
    orderings;
  Fmt.pf fmt "@.";
  if failures <> [] then begin
    Fmt.pf fmt "@.%d failure(s):@." (List.length failures);
    List.iter (fun f -> Fmt.pf fmt "  %a@." Pipeline.pp_failure f) failures
  end
