(** The [chfc report] harness: per-workload compile + attributed cycle
    simulation, assembled into {!Trips_obs.Report} utilization reports.

    Byte-identical output at any [--jobs] setting: each report depends
    only on its own workload and {!Engine.map} preserves input order. *)

open Trips_workloads
open Trips_obs

type outcome = {
  reports : Report.func_report list;  (** workload order *)
  failures : Pipeline.failure list;
}

val report_workload :
  ?cache:Stage.cache ->
  ?config:Chf.Policy.config ->
  ordering:Chf.Phases.ordering ->
  Workload.t ->
  Report.func_report
(** Compile one workload (back end on), cycle-simulate with attribution,
    and assemble its report.  Raises on unrecoverable compile errors —
    {!run} wraps this with failure collection. *)

val run :
  ?config:Chf.Policy.config ->
  ?cache:Stage.cache ->
  ?jobs:int ->
  ?ordering:Chf.Phases.ordering ->
  ?workloads:Workload.t list ->
  unit ->
  outcome
(** Reports for [workloads] (default: the 24 microbenchmarks) under
    [ordering] (default: merged convergent formation).  Failures are
    collected, not raised. *)

val render : Format.formatter -> outcome -> unit
