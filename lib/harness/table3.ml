(* Table 3: percent improvement in executed-block counts over basic
   blocks on the 19 SPEC-like workloads, under the fast functional
   simulator (the paper's argument: block counts correlate with cycles,
   and full programs are too slow for cycle-level simulation). *)

open Trips_workloads

type cell = {
  ordering : Chf.Phases.ordering;
  dyn_blocks : int;
  improvement : float;
}

type row = { workload : string; bb_blocks : int; cells : cell list }

type outcome = { rows : row list; failures : Pipeline.failure list }

let orderings =
  [ Chf.Phases.Upio; Chf.Phases.Iupo; Chf.Phases.Iup_o; Chf.Phases.Iupo_merged ]

let run_cell ~baseline (w : Workload.t) ordering :
    (cell, Pipeline.failure) result =
  (* no back end: Table 3 uses the functional simulator only *)
  match Pipeline.compile_checked ~backend:false ordering w with
  | Error f -> Error f
  | Ok c -> (
    match Pipeline.verify_against ~baseline c with
    | r ->
      Ok
        {
          ordering;
          dyn_blocks = r.Trips_sim.Func_sim.blocks_executed;
          improvement =
            Stats.percent_improvement
              ~base:baseline.Trips_sim.Func_sim.blocks_executed
              ~v:r.Trips_sim.Func_sim.blocks_executed;
        }
    | exception e ->
      Error (Pipeline.failure_of_exn ~workload:w ~ordering:(Some ordering) e))

let run_row (w : Workload.t) : (row, Pipeline.failure) result * Pipeline.failure list =
  match Pipeline.compile_checked ~backend:false Chf.Phases.Basic_blocks w with
  | Error f -> (Error f, [])
  | Ok bb -> (
    match Pipeline.run_functional bb with
    | exception e ->
      ( Error
          (Pipeline.failure_of_exn ~workload:w
             ~ordering:(Some Chf.Phases.Basic_blocks) e),
        [] )
    | baseline ->
      let cells, failures =
        List.fold_left
          (fun (cells, failures) ordering ->
            match run_cell ~baseline w ordering with
            | Ok c -> (c :: cells, failures)
            | Error f -> (cells, f :: failures))
          ([], []) orderings
      in
      ( Ok
          {
            workload = w.Workload.name;
            bb_blocks = baseline.Trips_sim.Func_sim.blocks_executed;
            cells = List.rev cells;
          },
        List.rev failures ))

let run ?(workloads = Spec_like.all) () : outcome =
  let rows, failures =
    List.fold_left
      (fun (rows, failures) w ->
        match run_row w with
        | Ok r, fs -> (r :: rows, List.rev_append fs failures)
        | Error f, fs -> (rows, List.rev_append fs (f :: failures)))
      ([], []) workloads
  in
  { rows = List.rev rows; failures = List.rev failures }

let average rows ordering =
  Stats.mean
    (List.filter_map
       (fun r ->
         List.find_opt (fun c -> c.ordering = ordering) r.cells
         |> Option.map (fun c -> c.improvement))
       rows)

let render fmt { rows; failures } =
  Fmt.pf fmt "Table 3: %% improvement in executed blocks over BB (SPEC-like)@.";
  Fmt.pf fmt "%-10s %12s" "benchmark" "BB blocks";
  List.iter (fun o -> Fmt.pf fmt " | %7s" (Chf.Phases.name o)) orderings;
  Fmt.pf fmt "@.";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-10s %12d" r.workload r.bb_blocks;
      List.iter
        (fun o ->
          match List.find_opt (fun c -> c.ordering = o) r.cells with
          | Some c -> Fmt.pf fmt " | %7.1f" c.improvement
          | None -> Fmt.pf fmt " | %7s" "failed")
        orderings;
      Fmt.pf fmt "@.")
    rows;
  Fmt.pf fmt "%-10s %12s" "Average" "";
  List.iter (fun o -> Fmt.pf fmt " | %7.1f" (average rows o)) orderings;
  Fmt.pf fmt "@.";
  if failures <> [] then begin
    Fmt.pf fmt "@.%d failure(s):@." (List.length failures);
    List.iter (fun f -> Fmt.pf fmt "  %a@." Pipeline.pp_failure f) failures
  end
