(* Table 3: percent improvement in executed-block counts over basic
   blocks on the 19 SPEC-like workloads, under the fast functional
   simulator (the paper's argument: block counts correlate with cycles,
   and full programs are too slow for cycle-level simulation).

   A sweep spec with no back end and no cycle-level baseline: the cell
   measurement is the checksum-verification run itself. *)

open Trips_workloads

type cell = {
  ordering : Chf.Phases.ordering;
  dyn_blocks : int;
  improvement : float;
}

type row = { workload : string; bb_blocks : int; cells : cell list }

type outcome = { rows : row list; failures : Pipeline.failure list }

let orderings = Chf.Phases.table_orderings

let spec : (Chf.Phases.ordering, cell) Sweep.spec =
  {
    Sweep.columns = orderings;
    (* no back end: Table 3 uses the functional simulator only *)
    baseline_backend = false;
    baseline_cycles = false;
    cell =
      (fun ~cache baseline w ordering ->
        match Pipeline.compile_checked ?cache ~backend:false ordering w with
        | Error f -> Error f
        | Ok c -> (
          match
            Pipeline.verify_against ~baseline:baseline.Sweep.base_functional c
          with
          | r ->
            Ok
              {
                ordering;
                dyn_blocks = r.Trips_sim.Func_sim.blocks_executed;
                improvement =
                  Stats.percent_improvement
                    ~base:
                      baseline.Sweep.base_functional
                        .Trips_sim.Func_sim.blocks_executed
                    ~v:r.Trips_sim.Func_sim.blocks_executed;
              }
          | exception e ->
            Error (Pipeline.failure_of_exn ~workload:w ~ordering:(Some ordering) e)));
  }

let run ?(cache = Stage.create ()) ?jobs ?(workloads = Spec_like.all) () :
    outcome =
  let o = Sweep.run ~cache ?jobs spec workloads in
  {
    rows =
      List.map
        (fun (r : cell Sweep.row) ->
          {
            workload = r.Sweep.row_workload;
            bb_blocks =
              r.Sweep.row_baseline.Sweep.base_functional
                .Trips_sim.Func_sim.blocks_executed;
            cells = r.Sweep.row_cells;
          })
        o.Sweep.rows;
    failures = o.Sweep.failures;
  }

let average rows ordering =
  Stats.mean
    (List.filter_map
       (fun r ->
         List.find_opt (fun c -> c.ordering = ordering) r.cells
         |> Option.map (fun c -> c.improvement))
       rows)

let render fmt { rows; failures } =
  Fmt.pf fmt "Table 3: %% improvement in executed blocks over BB (SPEC-like)@.";
  Fmt.pf fmt "%-10s %12s" "benchmark" "BB blocks";
  List.iter (fun o -> Fmt.pf fmt " | %7s" (Chf.Phases.name o)) orderings;
  Fmt.pf fmt "@.";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-10s %12d" r.workload r.bb_blocks;
      List.iter
        (fun o ->
          match List.find_opt (fun c -> c.ordering = o) r.cells with
          | Some c -> Fmt.pf fmt " | %7.1f" c.improvement
          | None -> Fmt.pf fmt " | %7s" "failed")
        orderings;
      Fmt.pf fmt "@.")
    rows;
  Fmt.pf fmt "%-10s %12s" "Average" "";
  List.iter (fun o -> Fmt.pf fmt " | %7.1f" (average rows o)) orderings;
  Fmt.pf fmt "@.";
  if failures <> [] then begin
    Fmt.pf fmt "@.%d failure(s):@." (List.length failures);
    List.iter (fun f -> Fmt.pf fmt "  %a@." Pipeline.pp_failure f) failures
  end
