(* Declarative experiment sweeps over the shared engine.

   Every table/figure of the evaluation is a cross-product of workloads
   (rows) and configurations (columns): compile the basic-block baseline
   for the row, then compile, checksum-verify and measure one cell per
   column.  This module owns that skeleton once — the per-experiment
   modules supply axes, a cell function and a renderer — so the sweep
   machinery (prefix caching, domain-pool parallelism, graceful failure
   collection, deterministic merge order) is written in exactly one
   place.

   Rows are the unit of parallelism: each row's baseline and cells run
   sequentially on one domain, rows are distributed over the Engine
   pool, and results merge in workload order.  A row or cell that fails
   becomes a structured [Pipeline.failure] in sweep order — identical to
   the historical sequential loops — and never disturbs its siblings. *)

open Trips_sim
open Trips_workloads

type baseline = {
  base_compiled : Pipeline.compiled;
  base_functional : Func_sim.result;
  base_cycles : Cycle_sim.result option;
      (* present when the spec asked for a cycle-simulated baseline *)
}

type ('col, 'cell) spec = {
  columns : 'col list;
  baseline_backend : bool;  (* compile the BB baseline through the back end *)
  baseline_cycles : bool;  (* cycle-simulate the BB baseline *)
  cell :
    cache:Stage.cache option ->
    baseline ->
    Workload.t ->
    'col ->
    ('cell, Pipeline.failure) result;
}

type 'cell row = {
  row_workload : string;
  row_baseline : baseline;
  row_cells : 'cell list;  (* successful columns only, in column order *)
}

type 'cell outcome = {
  rows : 'cell row list;
  failures : Pipeline.failure list;
}

(* One row: BB baseline, then every column against it.  Total — any
   escape is classified into a failure by the caller via Engine. *)
let run_row ~cache spec (w : Workload.t) :
    ('cell row, Pipeline.failure) result * Pipeline.failure list =
  match
    Pipeline.compile_checked ?cache ~backend:spec.baseline_backend
      Chf.Phases.Basic_blocks w
  with
  | Error f -> (Error f, [])
  | Ok bb -> (
    match
      let functional = Pipeline.run_functional bb in
      let cycles =
        if spec.baseline_cycles then Some (Pipeline.run_cycles bb) else None
      in
      (functional, cycles)
    with
    | exception e ->
      ( Error
          (Pipeline.failure_of_exn ~workload:w
             ~ordering:(Some Chf.Phases.Basic_blocks) e),
        [] )
    | functional, cycles ->
      let baseline =
        { base_compiled = bb; base_functional = functional;
          base_cycles = cycles }
      in
      let cells, failures =
        List.fold_left
          (fun (cells, failures) col ->
            match spec.cell ~cache baseline w col with
            | Ok c -> (c :: cells, failures)
            | Error f -> (cells, f :: failures))
          ([], []) spec.columns
      in
      ( Ok
          {
            row_workload = w.Workload.name;
            row_baseline = baseline;
            row_cells = List.rev cells;
          },
        List.rev failures ))

let run ?cache ?jobs (spec : ('col, 'cell) spec)
    (workloads : Workload.t list) : 'cell outcome =
  let results = Engine.map ?jobs (run_row ~cache spec) workloads in
  let rows, failures =
    List.fold_left2
      (fun (rows, failures) w result ->
        match result with
        | Ok (Ok r, fs) -> (r :: rows, List.rev_append fs failures)
        | Ok (Error f, fs) -> (rows, List.rev_append fs (f :: failures))
        | Error e ->
          (* a cell let an exception escape [compile_checked]'s net (or
             the engine itself failed); classify it, keep sweeping *)
          (rows, Pipeline.failure_of_exn ~workload:w ~ordering:None e :: failures))
      ([], []) workloads results
  in
  { rows = List.rev rows; failures = List.rev failures }
