(** Table 2: VLIW, convergent-VLIW, depth-first and breadth-first block
    selection heuristics, all inside convergent hyperblock formation, on
    the 24 microbenchmarks. *)

open Trips_workloads

type column = {
  label : string;
  config : Chf.Policy.config;
  ordering : Chf.Phases.ordering;
}

val columns : column list

type cell = {
  label : string;
  cycles : int;
  improvement : float;
  mispredictions : int;
  stats : Chf.Formation.stats;
}

type row = { workload : string; bb_cycles : int; cells : cell list }
(** [cells] holds successful configurations only. *)

type outcome = { rows : row list; failures : Pipeline.failure list }

val spec : (column, cell) Sweep.spec
(** The declarative sweep spec (axes + cell function) behind {!run}. *)

val run :
  ?cache:Stage.cache ->
  ?jobs:int ->
  ?workloads:Workload.t list ->
  unit ->
  outcome
(** Failures are recorded, not raised, so the sweep always completes.
    [jobs] parallelizes rows (output independent of [jobs]); [cache]
    shares lower+profile prefixes, also across experiments. *)

val average : row list -> string -> float
val render : Format.formatter -> outcome -> unit
