(* Domain-pool executor for experiment sweeps.

   Independent sweep cells are pure with respect to each other (every
   compile works on its own CFG copy; cached prefixes are read-only
   after construction), so they can run on separate domains.  Work is
   distributed by an atomic index counter and every result is written
   into its input's slot, so the merge order is deterministic: the
   output list always lines up with the input list regardless of which
   domain ran which cell, and [~jobs:1] executes sequentially on the
   calling domain — bit-identical to the pre-engine sweep loops.

   A cell that raises becomes [Error exn] in its own slot and never
   disturbs its siblings, preserving the graceful-degradation contract
   of the harnesses (failures are collected, sweeps never abort). *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let run_one f x = match f x with y -> Ok y | exception e -> Error e

let map ?jobs (f : 'a -> 'b) (xs : 'a list) : ('b, exn) result list =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if jobs = 1 || n <= 1 then List.map (run_one f) xs
  else begin
    let out = Array.make n (Error Not_found) in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- run_one f arr.(i);
          go ()
        end
      in
      go ()
    in
    let helpers =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list out
  end
