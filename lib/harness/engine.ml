(* Domain-pool executor for experiment sweeps.

   Independent sweep cells are pure with respect to each other (every
   compile works on its own CFG copy; cached prefixes are read-only
   after construction), so they can run on separate domains.  Work is
   distributed by an atomic index counter and every result is written
   into its input's slot, so the merge order is deterministic: the
   output list always lines up with the input list regardless of which
   domain ran which cell, and [~jobs:1] executes sequentially on the
   calling domain — bit-identical to the pre-engine sweep loops.

   A cell that raises becomes [Error exn] in its own slot and never
   disturbs its siblings, preserving the graceful-degradation contract
   of the harnesses (failures are collected, sweeps never abort).

   Every slot runs inside [Trips_obs.Trace.with_cell i], so trace events recorded
   while computing cell [i] carry the coordinate [(i, seq)] no matter
   which domain — or how many domains — executed it.  Sorting a trace by
   that coordinate therefore yields the same stream for every [~jobs]
   setting. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Test-only: make the [k+1]-th Domain.spawn of a [map] call raise, to
   exercise the degradation path.  [None] in production. *)
let spawn_limit_for_tests : int option ref = ref None

let run_one f x = match f x with y -> Ok y | exception e -> Error e

let run_slot f arr out i =
  Trips_obs.Trace.with_cell i (fun () -> out.(i) <- run_one f arr.(i))

let map ?jobs (f : 'a -> 'b) (xs : 'a list) : ('b, exn) result list =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if jobs = 1 || n <= 1 then
    List.mapi
      (fun i x -> Trips_obs.Trace.with_cell i (fun () -> run_one f x))
      xs
  else begin
    let out = Array.make n (Error Not_found) in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_slot f arr out i;
          go ()
        end
      in
      go ()
    in
    (* Helper domains are spawned one at a time and joined in a
       [Fun.protect] finalizer: if a later [Domain.spawn] raises
       (resource exhaustion), the already-running helpers are still
       joined — never leaked — and the sweep completes on the domains
       that did start, because the atomic counter hands the remaining
       slots to whoever is left. *)
    let spawned = ref [] in
    Fun.protect
      ~finally:(fun () -> List.iter Domain.join !spawned)
      (fun () ->
        (try
           for k = 1 to min jobs n - 1 do
             (match !spawn_limit_for_tests with
             | Some limit when k > limit -> failwith "engine: spawn limit"
             | _ -> ());
             let d = Domain.spawn worker in
             spawned := d :: !spawned
           done
         with _ ->
           (* degrade: keep going with the domains we have *)
           Trips_obs.Metrics.incr "engine.spawn_failures");
        worker ());
    Array.to_list out
  end
