(* Domain-pool executor: a resident worker pool plus the sweep [map].

   Historically every [map] call spawned its own helper domains and tore
   them down on exit.  The pool is now a first-class resident object
   ([Pool]): domains are spawned once, jobs are submitted into a shared
   queue and awaited individually, and the pool drains gracefully on
   shutdown.  The long-running compilation service keeps one pool alive
   across requests; [map] creates a transient pool per sweep, which
   preserves its historical contract exactly:

   - deterministic merge: every result is written into its input's slot
     and slots are awaited in input order, so the output list lines up
     with the input list regardless of which domain ran which cell, and
     [~jobs:1] executes sequentially on the calling domain — bit-identical
     to the pre-engine sweep loops;

   - per-slot exception isolation: a cell that raises becomes [Error exn]
     in its own slot and never disturbs its siblings;

   - cell-coordinate tracing: every slot runs inside
     [Trips_obs.Trace.with_cell i], so trace events carry the coordinate
     [(i, seq)] no matter which domain executed it, and sorting a trace
     by that coordinate yields the same stream for every [~jobs] setting;

   - spawn-failure degradation: if a [Domain.spawn] fails mid-pool the
     already-spawned helpers are kept (and joined on shutdown), an
     [engine.spawn_failures] metric is bumped, and the work still
     completes on the domains that did start — in the worst case on the
     calling domain alone, because [Pool.await] lends a hand draining the
     queue while it waits.

   The spawn-per-call implementation is kept verbatim behind the
   [TRIPS_NO_RESIDENT_POOL] escape hatch (any non-empty value), and a
   property test asserts the two paths render byte-identical sweeps. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Test-only: make the [k+1]-th Domain.spawn of a pool (or legacy map)
   raise, to exercise the degradation path.  [None] in production. *)
let spawn_limit_for_tests : int option ref = ref None

let run_one f x = match f x with y -> Ok y | exception e -> Error e

(* [TRIPS_NO_X] convention: any non-empty value disables the feature. *)
let hatch_enabled name =
  match Sys.getenv_opt name with
  | Some s when s <> "" -> false
  | Some _ | None -> true

(* ---- resident pool ----------------------------------------------------- *)

module Pool = struct
  type 'a job = {
    jm : Mutex.t;
    jc : Condition.t;
    mutable result : ('a, exn) result option;
  }

  type t = {
    m : Mutex.t;
    nonempty : Condition.t;  (* queue gained a task, or the pool is closing *)
    queue : (unit -> unit) Queue.t;
    mutable closing : bool;
    mutable domains : unit Domain.t list;
    mutable workers : int;
  }

  let size t = t.workers

  let rec worker_loop t =
    Mutex.lock t.m;
    let rec next () =
      match Queue.take_opt t.queue with
      | Some task ->
        Mutex.unlock t.m;
        task ();
        worker_loop t
      | None ->
        if t.closing then Mutex.unlock t.m (* drained: exit *)
        else begin
          Condition.wait t.nonempty t.m;
          next ()
        end
    in
    next ()

  let create ?(workers = 0) () =
    let t =
      {
        m = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        closing = false;
        domains = [];
        workers = 0;
      }
    in
    (try
       for k = 1 to workers do
         (match !spawn_limit_for_tests with
         | Some limit when k > limit -> failwith "engine: spawn limit"
         | _ -> ());
         let d = Domain.spawn (fun () -> worker_loop t) in
         t.domains <- d :: t.domains;
         t.workers <- t.workers + 1
       done
     with _ ->
       (* degrade: keep the domains we have; await's help loop guarantees
          progress even with zero workers *)
       Trips_obs.Metrics.incr "engine.spawn_failures");
    t

  let submit t f =
    let job = { jm = Mutex.create (); jc = Condition.create (); result = None } in
    let task () =
      let r = run_one f () in
      Mutex.lock job.jm;
      job.result <- Some r;
      Condition.broadcast job.jc;
      Mutex.unlock job.jm
    in
    Mutex.lock t.m;
    if t.closing then begin
      Mutex.unlock t.m;
      invalid_arg "Engine.Pool.submit: pool is shut down"
    end;
    Queue.push task t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.m;
    job

  (* Run one queued task on the calling domain, if any. *)
  let try_run_pending t =
    Mutex.lock t.m;
    let task = Queue.take_opt t.queue in
    Mutex.unlock t.m;
    match task with
    | Some task ->
      task ();
      true
    | None -> false

  let peek job = Mutex.protect job.jm (fun () -> job.result)

  let await ?(help = true) t job =
    (* with zero live workers (fully degraded pool) the caller is the
       only domain that can make progress, so helping is mandatory *)
    let help = help || t.workers = 0 in
    let rec loop () =
      match peek job with
      | Some r -> r
      | None ->
        if help && try_run_pending t then loop ()
        else begin
          (* Our job is no longer queued (someone popped it), so it is
             running on another domain: block until its completion
             broadcast.  The result check under the job mutex closes the
             window between the last peek and the wait. *)
          Mutex.lock job.jm;
          while job.result = None do
            Condition.wait job.jc job.jm
          done;
          let r = Option.get job.result in
          Mutex.unlock job.jm;
          r
        end
    in
    loop ()

  (* Speculative jobs: a cancellable wrapper around [submit].  The
     cancel flag is checked once, when a worker dequeues the task — a
     cancelled speculation that never started costs nothing; one already
     running completes (its output goes to a private result cell the
     submitter will ignore).  [await_spec] joins either way, which gives
     the submitter a happens-before edge on the thunk's writes. *)
  type spec = { cancelled : bool Atomic.t; sjob : unit job }

  let submit_spec t f =
    let cancelled = Atomic.make false in
    let sjob = submit t (fun () -> if not (Atomic.get cancelled) then f ()) in
    { cancelled; sjob }

  let cancel_spec s = Atomic.set s.cancelled true

  let await_spec ?help t s = ignore (await ?help t s.sjob)

  let shutdown t =
    Mutex.lock t.m;
    if t.closing then Mutex.unlock t.m
    else begin
      t.closing <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.m;
      (* help drain so queued work completes even with zero workers *)
      while try_run_pending t do
        ()
      done;
      List.iter Domain.join t.domains;
      t.domains <- [];
      t.workers <- 0
    end
end

(* ---- formation speculation over a pool --------------------------------- *)

(* Adapter from a resident pool to [Formation]'s injected scheduler
   (formation cannot depend on the harness, so the dependency points
   this way).  [join] helps drain the queue while waiting, so the main
   formation loop acts as the pool's +1 worker — on a degraded or
   zero-worker pool the speculative trials simply run on the caller at
   join time, preserving outputs. *)
let formation_scheduler pool : Chf.Formation.scheduler =
  {
    Chf.Formation.spawn =
      (fun thunk ->
        let s = Pool.submit_spec pool thunk in
        {
          Chf.Formation.cancel = (fun () -> Pool.cancel_spec s);
          join = (fun () -> Pool.await_spec ~help:true pool s);
        });
  }

(* ---- legacy spawn-per-call map (TRIPS_NO_RESIDENT_POOL) ---------------- *)

let run_slot f arr out i =
  Trips_obs.Trace.with_cell i (fun () -> out.(i) <- run_one f arr.(i))

let legacy_map jobs (f : 'a -> 'b) (xs : 'a list) : ('b, exn) result list =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let out = Array.make n (Error Not_found) in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run_slot f arr out i;
        go ()
      end
    in
    go ()
  in
  let spawned = ref [] in
  Fun.protect
    ~finally:(fun () -> List.iter Domain.join !spawned)
    (fun () ->
      (try
         for k = 1 to min jobs n - 1 do
           (match !spawn_limit_for_tests with
           | Some limit when k > limit -> failwith "engine: spawn limit"
           | _ -> ());
           let d = Domain.spawn worker in
           spawned := d :: !spawned
         done
       with _ -> Trips_obs.Metrics.incr "engine.spawn_failures");
      worker ());
  Array.to_list out

(* ---- map --------------------------------------------------------------- *)

let map ?jobs (f : 'a -> 'b) (xs : 'a list) : ('b, exn) result list =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let n = List.length xs in
  if jobs = 1 || n <= 1 then
    List.mapi
      (fun i x -> Trips_obs.Trace.with_cell i (fun () -> run_one f x))
      xs
  else if not (hatch_enabled "TRIPS_NO_RESIDENT_POOL") then legacy_map jobs f xs
  else begin
    (* transient pool: the calling domain is the +1 worker (it helps
       drain the queue from [await]), so [jobs] domains work in total,
       exactly like the spawn-per-call model *)
    let pool = Pool.create ~workers:(min jobs n - 1) () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let slots =
          List.mapi
            (fun i x ->
              Pool.submit pool (fun () ->
                  Trips_obs.Trace.with_cell i (fun () -> f x)))
            xs
        in
        (* awaiting in slot order keeps the deterministic merge *)
        List.map (fun job -> Pool.await pool job) slots)
  end
