(** Table 3: percent improvement in executed-block counts over basic
    blocks on the 19 SPEC-like workloads, under the fast functional
    simulator (the paper's SPEC proxy metric). *)

open Trips_workloads

type cell = {
  ordering : Chf.Phases.ordering;
  dyn_blocks : int;
  improvement : float;
}

type row = { workload : string; bb_blocks : int; cells : cell list }
(** [cells] holds successful configurations only. *)

type outcome = { rows : row list; failures : Pipeline.failure list }

val orderings : Chf.Phases.ordering list

val run : ?workloads:Workload.t list -> unit -> outcome
(** Failures are recorded, not raised, so the sweep always completes. *)

val average : row list -> Chf.Phases.ordering -> float
val render : Format.formatter -> outcome -> unit
