(** Table 3: percent improvement in executed-block counts over basic
    blocks on the 19 SPEC-like workloads, under the fast functional
    simulator (the paper's SPEC proxy metric). *)

open Trips_workloads

type cell = {
  ordering : Chf.Phases.ordering;
  dyn_blocks : int;
  improvement : float;
}

type row = { workload : string; bb_blocks : int; cells : cell list }
(** [cells] holds successful configurations only. *)

type outcome = { rows : row list; failures : Pipeline.failure list }

val orderings : Chf.Phases.ordering list
(** = {!Chf.Phases.table_orderings}. *)

val spec : (Chf.Phases.ordering, cell) Sweep.spec
(** The declarative sweep spec (axes + cell function) behind {!run}. *)

val run :
  ?cache:Stage.cache ->
  ?jobs:int ->
  ?workloads:Workload.t list ->
  unit ->
  outcome
(** Failures are recorded, not raised, so the sweep always completes.
    [jobs] parallelizes rows (output independent of [jobs]); [cache]
    shares lower+profile prefixes, also across experiments. *)

val average : row list -> Chf.Phases.ordering -> float
val render : Format.formatter -> outcome -> unit
