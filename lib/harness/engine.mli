(** Domain-pool executor: a resident worker pool plus the sweep {!map}.

    {!Pool} is a resident pool of worker domains fed by a shared job
    queue: spawn once, {!Pool.submit} work from any thread, {!Pool.await}
    results individually, {!Pool.shutdown} drains gracefully.  The
    long-running compilation service ([chfc serve]) keeps one pool alive
    across requests; {!map} builds a transient pool per sweep and
    preserves the historical spawn-per-call contract exactly
    (deterministic slot order, per-slot exception isolation,
    [Trace.with_cell] tagging, spawn-failure degradation). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], floored at 1 — the [-j] default. *)

val spawn_limit_for_tests : int option ref
(** Test-only fault injection: when [Some k], the [k+1]-th
    [Domain.spawn] of a pool creation (or legacy {!map}) raises,
    exercising the degradation path (already-spawned workers are kept
    and joined; the work completes on whatever domains did start).
    [None] in production. *)

(** {1 Resident pool} *)

module Pool : sig
  type t

  type 'a job
  (** A submitted computation; await it at most once per waiter (awaiting
      from several threads is safe — completion is broadcast). *)

  val create : ?workers:int -> unit -> t
  (** Spawn [workers] resident domains (default 0).  If a spawn fails
      mid-creation the pool keeps the domains that did start, bumps the
      [engine.spawn_failures] metric, and still guarantees progress:
      {!await} drains the queue on the calling domain when no workers are
      live. *)

  val size : t -> int
  (** Live worker domains (0 after {!shutdown} or full degradation). *)

  val submit : t -> (unit -> 'a) -> 'a job
  (** Enqueue a computation.  Exceptions it raises are captured into the
      job's result — never into a worker.
      @raise Invalid_argument after {!shutdown}. *)

  val await : ?help:bool -> t -> 'a job -> ('a, exn) result
  (** Block until the job completes.  With [help] (default [true]) the
      calling domain runs other queued jobs while it waits, so a caller
      that submits a batch and awaits it acts as the pool's +1 worker;
      with [~help:false] the caller only blocks (what the service's I/O
      threads want).  Helping is forced when the pool has no live
      workers, so await can never deadlock on a degraded pool. *)

  val shutdown : t -> unit
  (** Graceful drain: stop accepting submissions, let workers finish the
      queue (helping from the calling thread), join every domain.
      Idempotent. *)

  (** {2 Speculative jobs} *)

  type spec
  (** A cancellable speculative computation (unit-valued: it communicates
      through its own side channel). *)

  val submit_spec : t -> (unit -> unit) -> spec
  (** Like {!submit}, but the task checks a cancel flag when a worker
      dequeues it: cancelled-before-start costs nothing.
      @raise Invalid_argument after {!shutdown}. *)

  val cancel_spec : spec -> unit
  (** Best-effort: a task not yet started never runs; one already
      running completes (the submitter ignores its output). *)

  val await_spec : ?help:bool -> t -> spec -> unit
  (** Block until the task completed or was skipped; gives the caller a
      happens-before edge on the thunk's writes.  [help] as in
      {!await}. *)
end

val formation_scheduler : Pool.t -> Chf.Formation.scheduler
(** Adapter from a resident pool to {!Chf.Formation}'s injected
    speculation scheduler: spawn submits a cancellable speculative job,
    join helps drain the queue while waiting (so the formation loop acts
    as the pool's +1 worker, and a degraded pool still makes progress).
    Install with [Formation.set_scheduler (Some (formation_scheduler
    pool))]. *)

(** {1 Sweep map} *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map ~jobs f xs] applies [f] to every element of [xs] on a transient
    pool of [min jobs (length xs) - 1] worker domains plus the calling
    domain (default {!default_jobs}; values < 1 are clamped to 1) and
    returns the results in input order; [~jobs:1] runs sequentially on
    the calling domain.

    Every slot [i] runs inside {!Trips_obs.Trace.with_cell}[ i], so
    trace streams partition deterministically across [jobs] settings.
    A cell that raises becomes [Error exn] in its own slot.

    Setting [TRIPS_NO_RESIDENT_POOL] (any non-empty value) routes the
    call through the historical spawn-per-call implementation — the
    escape hatch behind the pool-equivalence property test. *)
