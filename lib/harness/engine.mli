(** Domain-pool executor for experiment sweeps.

    Runs independent cells on up to [jobs] domains with a deterministic
    merge order: the result list always lines up with the input list,
    whatever the execution interleaving, and [~jobs:1] runs sequentially
    on the calling domain — bit-identical to a plain [List.map].

    Cells must be independent (each sweep cell compiles its own CFG
    copy; shared cached prefixes are read-only), but need not be total:
    a cell that raises becomes [Error exn] in its own slot and never
    disturbs its siblings. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], floored at 1 — the [-j] default. *)

val spawn_limit_for_tests : int option ref
(** Test-only fault injection: when [Some k], the [k+1]-th
    [Domain.spawn] of a {!map} call raises, exercising the degradation
    path (already-spawned helpers are joined, the sweep completes on the
    domains that did start).  [None] in production. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map ~jobs f xs] applies [f] to every element of [xs] on a pool of
    [min jobs (length xs)] domains (default {!default_jobs}; values < 1
    are clamped to 1) and returns the results in input order.

    Every slot [i] runs inside {!Trips_obs.Trace.with_cell}[ i], so
    trace streams partition deterministically across [jobs] settings.

    If a [Domain.spawn] fails mid-pool, the already-spawned helpers are
    joined (never leaked), an [engine.spawn_failures] metric is bumped,
    and the sweep still completes on the calling domain plus whatever
    helpers did start. *)
