(* Table 2: VLIW, convergent-VLIW, depth-first and breadth-first block
   selection heuristics, all inside convergent hyperblock formation, on
   the 24 microbenchmarks. *)

open Trips_workloads

type column = { label : string; config : Chf.Policy.config; ordering : Chf.Phases.ordering }

let columns =
  let base = Chf.Policy.edge_default in
  [
    (* Mahlke-style path-based selection, discrete final optimization *)
    {
      label = "VLIW";
      config = { base with Chf.Policy.heuristic = Chf.Policy.Vliw Chf.Policy.default_vliw };
      ordering = Chf.Phases.Iup_o;
    };
    (* the same heuristic with iterative optimization inside the loop *)
    {
      label = "ConvVLIW";
      config = { base with Chf.Policy.heuristic = Chf.Policy.Vliw Chf.Policy.default_vliw };
      ordering = Chf.Phases.Iupo_merged;
    };
    {
      label = "DF";
      config =
        { base with Chf.Policy.heuristic = Chf.Policy.Depth_first { min_merge_prob = 0.12 } };
      ordering = Chf.Phases.Iupo_merged;
    };
    { label = "BF"; config = base; ordering = Chf.Phases.Iupo_merged };
  ]

type cell = {
  label : string;
  cycles : int;
  improvement : float;
  mispredictions : int;
  stats : Chf.Formation.stats;
}

type row = { workload : string; bb_cycles : int; cells : cell list }

type outcome = { rows : row list; failures : Pipeline.failure list }

let run_cell ~baseline ~bb_cycle (w : Workload.t) col :
    (cell, Pipeline.failure) result =
  match
    Pipeline.compile_checked ~config:col.config ~backend:true col.ordering w
  with
  | Error f -> Error f
  | Ok c -> (
    match
      ignore (Pipeline.verify_against ~baseline c);
      Pipeline.run_cycles c
    with
    | r ->
      Ok
        {
          label = col.label;
          cycles = r.Trips_sim.Cycle_sim.cycles;
          improvement =
            Stats.percent_improvement ~base:bb_cycle.Trips_sim.Cycle_sim.cycles
              ~v:r.Trips_sim.Cycle_sim.cycles;
          mispredictions = r.Trips_sim.Cycle_sim.mispredictions;
          stats = c.Pipeline.stats;
        }
    | exception e ->
      Error (Pipeline.failure_of_exn ~workload:w ~ordering:(Some col.ordering) e))

let run_row (w : Workload.t) : (row, Pipeline.failure) result * Pipeline.failure list =
  match Pipeline.compile_checked ~backend:true Chf.Phases.Basic_blocks w with
  | Error f -> (Error f, [])
  | Ok bb -> (
    match (Pipeline.run_cycles bb, Pipeline.run_functional bb) with
    | exception e ->
      ( Error
          (Pipeline.failure_of_exn ~workload:w
             ~ordering:(Some Chf.Phases.Basic_blocks) e),
        [] )
    | bb_cycle, baseline ->
      let cells, failures =
        List.fold_left
          (fun (cells, failures) col ->
            match run_cell ~baseline ~bb_cycle w col with
            | Ok c -> (c :: cells, failures)
            | Error f -> (cells, f :: failures))
          ([], []) columns
      in
      ( Ok
          {
            workload = w.Workload.name;
            bb_cycles = bb_cycle.Trips_sim.Cycle_sim.cycles;
            cells = List.rev cells;
          },
        List.rev failures ))

let run ?(workloads = Micro.all) () : outcome =
  let rows, failures =
    List.fold_left
      (fun (rows, failures) w ->
        match run_row w with
        | Ok r, fs -> (r :: rows, List.rev_append fs failures)
        | Error f, fs -> (rows, List.rev_append fs (f :: failures)))
      ([], []) workloads
  in
  { rows = List.rev rows; failures = List.rev failures }

let average rows label =
  Stats.mean
    (List.filter_map
       (fun r ->
         List.find_opt (fun c -> c.label = label) r.cells
         |> Option.map (fun c -> c.improvement))
       rows)

let render fmt { rows; failures } =
  Fmt.pf fmt
    "Table 2: %% cycle improvement over BB by block-selection heuristic@.";
  Fmt.pf fmt "%-16s %10s" "benchmark" "BB cycles";
  List.iter (fun (col : column) -> Fmt.pf fmt " | %8s" col.label) columns;
  Fmt.pf fmt "@.";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-16s %10d" r.workload r.bb_cycles;
      List.iter
        (fun (col : column) ->
          match List.find_opt (fun c -> c.label = col.label) r.cells with
          | Some c -> Fmt.pf fmt " | %8.1f" c.improvement
          | None -> Fmt.pf fmt " | %8s" "failed")
        columns;
      Fmt.pf fmt "@.")
    rows;
  Fmt.pf fmt "%-16s %10s" "Average" "";
  List.iter
    (fun (col : column) -> Fmt.pf fmt " | %8.1f" (average rows col.label))
    columns;
  Fmt.pf fmt "@.";
  if failures <> [] then begin
    Fmt.pf fmt "@.%d failure(s):@." (List.length failures);
    List.iter (fun f -> Fmt.pf fmt "  %a@." Pipeline.pp_failure f) failures
  end
