(* Table 2: VLIW, convergent-VLIW, depth-first and breadth-first block
   selection heuristics, all inside convergent hyperblock formation, on
   the 24 microbenchmarks — a sweep spec whose columns carry a policy as
   well as an ordering. *)

open Trips_workloads

type column = { label : string; config : Chf.Policy.config; ordering : Chf.Phases.ordering }

let columns =
  let base = Chf.Policy.edge_default in
  [
    (* Mahlke-style path-based selection, discrete final optimization *)
    {
      label = "VLIW";
      config = { base with Chf.Policy.heuristic = Chf.Policy.Vliw Chf.Policy.default_vliw };
      ordering = Chf.Phases.Iup_o;
    };
    (* the same heuristic with iterative optimization inside the loop *)
    {
      label = "ConvVLIW";
      config = { base with Chf.Policy.heuristic = Chf.Policy.Vliw Chf.Policy.default_vliw };
      ordering = Chf.Phases.Iupo_merged;
    };
    {
      label = "DF";
      config =
        { base with Chf.Policy.heuristic = Chf.Policy.Depth_first { min_merge_prob = 0.12 } };
      ordering = Chf.Phases.Iupo_merged;
    };
    { label = "BF"; config = base; ordering = Chf.Phases.Iupo_merged };
  ]

type cell = {
  label : string;
  cycles : int;
  improvement : float;
  mispredictions : int;
  stats : Chf.Formation.stats;
}

type row = { workload : string; bb_cycles : int; cells : cell list }

type outcome = { rows : row list; failures : Pipeline.failure list }

let spec : (column, cell) Sweep.spec =
  {
    Sweep.columns;
    baseline_backend = true;
    baseline_cycles = true;
    cell =
      (fun ~cache baseline w col ->
        match
          Pipeline.compile_checked ?cache ~config:col.config ~backend:true
            col.ordering w
        with
        | Error f -> Error f
        | Ok c -> (
          match
            ignore
              (Pipeline.verify_against
                 ~baseline:baseline.Sweep.base_functional c);
            Pipeline.run_cycles c
          with
          | r ->
            let bb_cycle = Option.get baseline.Sweep.base_cycles in
            Ok
              {
                label = col.label;
                cycles = r.Trips_sim.Cycle_sim.cycles;
                improvement =
                  Stats.percent_improvement
                    ~base:bb_cycle.Trips_sim.Cycle_sim.cycles
                    ~v:r.Trips_sim.Cycle_sim.cycles;
                mispredictions = r.Trips_sim.Cycle_sim.mispredictions;
                stats = c.Pipeline.stats;
              }
          | exception e ->
            Error
              (Pipeline.failure_of_exn ~workload:w ~ordering:(Some col.ordering) e)));
  }

let run ?(cache = Stage.create ()) ?jobs ?(workloads = Micro.all) () : outcome =
  let o = Sweep.run ~cache ?jobs spec workloads in
  {
    rows =
      List.map
        (fun (r : cell Sweep.row) ->
          let bb = Option.get r.Sweep.row_baseline.Sweep.base_cycles in
          {
            workload = r.Sweep.row_workload;
            bb_cycles = bb.Trips_sim.Cycle_sim.cycles;
            cells = r.Sweep.row_cells;
          })
        o.Sweep.rows;
    failures = o.Sweep.failures;
  }

let average rows label =
  Stats.mean
    (List.filter_map
       (fun r ->
         List.find_opt (fun c -> c.label = label) r.cells
         |> Option.map (fun c -> c.improvement))
       rows)

let render fmt { rows; failures } =
  Fmt.pf fmt
    "Table 2: %% cycle improvement over BB by block-selection heuristic@.";
  Fmt.pf fmt "%-16s %10s" "benchmark" "BB cycles";
  List.iter (fun (col : column) -> Fmt.pf fmt " | %8s" col.label) columns;
  Fmt.pf fmt "@.";
  List.iter
    (fun r ->
      Fmt.pf fmt "%-16s %10d" r.workload r.bb_cycles;
      List.iter
        (fun (col : column) ->
          match List.find_opt (fun c -> c.label = col.label) r.cells with
          | Some c -> Fmt.pf fmt " | %8.1f" c.improvement
          | None -> Fmt.pf fmt " | %8s" "failed")
        columns;
      Fmt.pf fmt "@.")
    rows;
  Fmt.pf fmt "%-16s %10s" "Average" "";
  List.iter
    (fun (col : column) -> Fmt.pf fmt " | %8.1f" (average rows col.label))
    columns;
  Fmt.pf fmt "@.";
  if failures <> [] then begin
    Fmt.pf fmt "@.%d failure(s):@." (List.length failures);
    List.iter (fun f -> Fmt.pf fmt "  %a@." Pipeline.pp_failure f) failures
  end
