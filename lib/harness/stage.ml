(* Staged compilation with content-keyed prefix caching.

   The pipeline of Figure 6 decomposes into five stages:

     lower -> profile -> formation -> backend -> sim

   The lower+profile prefix depends only on the workload's content
   (program, arguments, memory image, unroll factor) — it is identical
   across every phase ordering and policy of a sweep — so it is computed
   once per content key and shared.  The cached artifact is treated as
   immutable: the master CFG is never mutated, and every consumer that
   needs to transform the graph takes a deep copy ({!instantiate}).
   Lowering is deterministic, so a copy of the master is structurally
   identical to a fresh lowering and cached runs produce byte-identical
   experiment output.

   The cache is domain-safe (a mutex guards the table and the hit/miss
   counters); concurrent misses on the same key both compute and the
   second insert wins, which is harmless because the computation is
   deterministic.  Cumulative per-stage wall-clock is accumulated under
   the same discipline so the benchmark harness can attribute sweep time
   to stages across domains. *)

open Trips_ir
open Trips_sim
open Trips_workloads

(* ---- per-stage wall-clock accounting ---------------------------------- *)

type stage = Lower | Profile | Formation | Backend | Sim

type timings = {
  lower_s : float;
  profile_s : float;
  formation_s : float;
  backend_s : float;
  sim_s : float;
}

let timing_mutex = Mutex.create ()
let acc = Array.make 5 0.0

let slot = function
  | Lower -> 0
  | Profile -> 1
  | Formation -> 2
  | Backend -> 3
  | Sim -> 4

let stage_name = function
  | Lower -> "lower"
  | Profile -> "profile"
  | Formation -> "formation"
  | Backend -> "backend"
  | Sim -> "sim"

let reset_timings () =
  Mutex.protect timing_mutex (fun () -> Array.fill acc 0 5 0.0)

let timings () =
  Mutex.protect timing_mutex (fun () ->
      {
        lower_s = acc.(0);
        profile_s = acc.(1);
        formation_s = acc.(2);
        backend_s = acc.(3);
        sim_s = acc.(4);
      })

(* [Trace.span] does the timing (and emits a span event in span mode);
   the [on_close] callback keeps the cumulative per-stage accounting and
   the [stage.time.*] histograms exactly as the ad-hoc timer did —
   durations come off the same clock, exceptions still account. *)
let time stage f =
  let name = stage_name stage in
  (* watchdog: when a global stage policy is installed (sweep harness,
     [chfc --stage-deadline], the fuzzer), the stage body runs under a
     deadline/fuel scope; a cooperative check inside the stage then
     raises [Watchdog.Timed_out], which the pipeline's failure machinery
     reports per cell.  With no policy (the default) the wrapper is the
     identity and timed output is byte-identical to pre-watchdog runs. *)
  let f =
    match Trips_obs.Watchdog.stage_policy name with
    | None -> f
    | Some (deadline_s, fuel) ->
      fun () -> Trips_obs.Watchdog.run ?deadline_s ?fuel ~stage:name f
  in
  Trips_obs.Trace.span ("stage." ^ name)
    ~on_close:(fun dt ->
      Mutex.protect timing_mutex (fun () ->
          acc.(slot stage) <- acc.(slot stage) +. dt);
      Trips_obs.Metrics.observe ("stage.time." ^ name) dt)
    f

let pp_timings fmt t =
  Fmt.pf fmt
    "lower %.2fs, profile %.2fs, formation %.2fs, backend %.2fs, sim %.2fs"
    t.lower_s t.profile_s t.formation_s t.backend_s t.sim_s

(* ---- typed per-stage artifacts ---------------------------------------- *)

type lowered = {
  low_cfg : Cfg.t;
  low_registers : (int * int) list;
}

type profiled = {
  prof_profile : Trips_profile.Profile.t;
  prof_result : Func_sim.result;
}

type prefix = {
  pre_workload : Workload.t;
  pre_key : string;
  pre_master : lowered;  (* never mutated; consumers copy *)
  pre_profiled : profiled;
}

(* The key covers everything the prefix depends on: the AST (pure data,
   safely marshalable), the parameter bindings, the memory image (the
   materialized array stands in for the [init_memory] closure, which
   cannot be hashed) and the front-end unroll factor.  The name and
   description are deliberately excluded — identical content shares a
   prefix. *)
let content_key (w : Workload.t) =
  let image = Workload.memory w in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (w.Workload.program, w.Workload.args, w.Workload.memory_words,
           w.Workload.frontend_unroll, image)
          []))

let lower (w : Workload.t) : lowered =
  time Lower (fun () ->
      let program =
        Trips_lang.Unroll_for.apply ~factor:w.Workload.frontend_unroll
          w.Workload.program
      in
      let cfg, params = Trips_lang.Lower.lower program in
      let registers =
        List.map
          (fun (name, value) ->
            match List.assoc_opt name params with
            | Some r -> (r, value)
            | None ->
              Fmt.invalid_arg "workload %s: unknown parameter %s"
                w.Workload.name name)
          w.Workload.args
      in
      { low_cfg = cfg; low_registers = registers })

let profile (w : Workload.t) (l : lowered) : profiled =
  time Profile (fun () ->
      let loops = Trips_analysis.Loops.compute l.low_cfg in
      let memory = Workload.memory w in
      let result, profile =
        Func_sim.run_profiled ~registers:l.low_registers ~loops ~memory
          l.low_cfg
      in
      { prof_profile = profile; prof_result = result })

let compute_prefix (w : Workload.t) key =
  let master = lower w in
  { pre_workload = w; pre_key = key; pre_master = master;
    pre_profiled = profile w master }

let instantiate (p : prefix) : lowered =
  { p.pre_master with low_cfg = Cfg.copy p.pre_master.low_cfg }

(* ---- content-keyed memo cache ----------------------------------------- *)

(* The cache is a thin front over the shared content-addressed artifact
   store (Trips_store.Store): the store owns the mutex, the LRU bound and
   the hit/miss/eviction counters, so a cache handed out by [of_store]
   shares entries with every other consumer of that store — including
   concurrent `chfc serve` requests.  The historical [cache_stats] view
   and the [stage.cache.*] metrics are preserved on top. *)

module Store = Trips_store.Store

type cache = { enabled : bool; store : prefix Store.t }

type cache_stats = { cache_hits : int; cache_misses : int }

let store_key key = { Store.src = key; stage = "prefix"; config = "" }

let create () =
  { enabled = true; store = Store.create ~name:"stage.prefix" () }

(* A cache that never stores: every lookup recomputes (and counts as a
   miss), which is how cache-on and cache-off sweeps share one code
   path. *)
let disabled () = { (create ()) with enabled = false }

let of_store store = { enabled = true; store }

let store_counters c = Store.counters c.store

let stats c =
  let k = Store.counters c.store in
  { cache_hits = k.Store.hits; cache_misses = k.Store.misses }

let hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0.0
  else float_of_int s.cache_hits /. float_of_int total

let prefix ?cache (w : Workload.t) : prefix =
  match cache with
  | None -> compute_prefix w (content_key w)
  | Some c when not c.enabled ->
    Store.record_miss c.store;
    Trips_obs.Metrics.incr "stage.cache.miss";
    compute_prefix w (content_key w)
  | Some c -> (
    let key = content_key w in
    match Store.find c.store (store_key key) with
    | Some p ->
      Trips_obs.Metrics.incr "stage.cache.hit";
      p
    | None ->
      Trips_obs.Metrics.incr "stage.cache.miss";
      (* compute outside the lock so other domains' lookups proceed *)
      let p = compute_prefix w key in
      Store.add c.store (store_key key) p;
      p)
