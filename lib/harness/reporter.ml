(* The [chfc report] harness: compile each workload, cycle-simulate it
   with an attribution collector, and assemble the per-function
   utilization reports ({!Trips_obs.Report}).

   Determinism across [--jobs]: workloads are mapped over the engine's
   domain pool, but each report depends only on its own workload (the
   compile is deterministic, the cycle model has no wall clock, and
   attribution rows come out sorted), and {!Engine.map} returns results
   in input order — so the assembled report list is byte-identical at
   any parallelism (make report-check). *)

open Trips_ir
open Trips_sim
open Trips_workloads
open Trips_obs

type outcome = {
  reports : Report.func_report list;  (* workload order *)
  failures : Pipeline.failure list;
}

(* One workload -> one report: the final CFG provides static sizes and
   formation decisions, the attributed cycle run the dynamic counts. *)
let report_workload ?cache ?config ~ordering (w : Workload.t) :
    Report.func_report =
  let c = Pipeline.compile ?cache ?config ~backend:true ordering w in
  let attribution = Attribution.create () in
  let r = Pipeline.run_cycles ~attribution c in
  let dyn = Attribution.rows attribution in
  let dyn_of id =
    List.find_opt (fun (row : Attribution.row) -> row.Attribution.r_block = id) dyn
  in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        let id = b.Block.id in
        let execs, fetched, fired, cycles, flushes, classes =
          match dyn_of id with
          | None -> (0, 0, 0, 0, 0, [])
          | Some row ->
            ( row.Attribution.r_execs,
              row.Attribution.r_fetched,
              row.Attribution.r_fired,
              row.Attribution.r_cycles,
              row.Attribution.r_flushes,
              List.map
                (fun (cls, cc_fetched, cc_fired) ->
                  { Report.cls; cc_fetched; cc_fired })
                row.Attribution.r_classes )
        in
        {
          Report.block = id;
          static_size = Block.size b;
          execs;
          fetched;
          fired;
          cycles;
          flushes;
          classes;
          decisions =
            List.map Lineage.describe_decision (Cfg.decisions c.Pipeline.cfg id);
        })
      (Cfg.blocks c.Pipeline.cfg)
  in
  {
    Report.fn = w.Workload.name;
    capacity = Machine.max_instrs;
    total_cycles = r.Cycle_sim.cycles;
    blocks;
  }

(** Build reports for [workloads] (default: the 24 microbenchmarks)
    under [ordering] (default: merged convergent formation, the paper's
    headline configuration).  Failures are collected, not raised. *)
let run ?config ?(cache = Stage.create ()) ?jobs
    ?(ordering = Chf.Phases.Iupo_merged) ?(workloads = Micro.all) () : outcome =
  let results =
    Engine.map ?jobs
      (fun w ->
        match report_workload ~cache ?config ~ordering w with
        | r -> Ok r
        | exception e ->
          Error (Pipeline.failure_of_exn ~workload:w ~ordering:(Some ordering) e))
      workloads
  in
  let reports, failures =
    List.fold_left
      (fun (rs, fs) outcome ->
        match outcome with
        | Ok (Ok r) -> (r :: rs, fs)
        | Ok (Error f) -> (rs, f :: fs)
        | Error e -> raise e)
      ([], []) results
  in
  { reports = List.rev reports; failures = List.rev failures }

let render fmt (o : outcome) =
  Report.render fmt o.reports;
  if o.failures <> [] then begin
    Fmt.pf fmt "@.%d failure(s):@." (List.length o.failures);
    List.iter (fun f -> Fmt.pf fmt "  %a@." Pipeline.pp_failure f) o.failures
  end
