(** Figure 7: cycle-count reduction versus block-count reduction across
    all Table 1 data points, with the linear fit whose r² the paper
    reports, and the Section 7.3 aggregate block-count ratios. *)

type point = {
  workload : string;
  ordering : Chf.Phases.ordering;
  block_reduction : int;
  cycle_reduction : int;
}

val points_of_table1 : Table1.row list -> point list
(** Failed cells are simply absent from the rows, so the scatter is
    built from successful configurations only. *)

val regression : point list -> Stats.regression

val block_ratio : Table1.row list -> Chf.Phases.ordering -> float
(** Aggregate executed-block ratio (BB / configuration). *)

val render : Format.formatter -> Table1.outcome -> unit
