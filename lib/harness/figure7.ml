(* Figure 7: cycle-count reduction versus block-count reduction across
   all Table 1 data points, with the linear fit whose r^2 the paper
   reports (~0.78).  Also computes the Section 7.3 aggregate block-count
   ratios (best static ordering ~2.1x vs convergent ~2.3x). *)

type point = {
  workload : string;
  ordering : Chf.Phases.ordering;
  block_reduction : int;  (* BB dynamic blocks - config dynamic blocks *)
  cycle_reduction : int;
}

let points_of_table1 (rows : Table1.row list) : point list =
  List.concat_map
    (fun (r : Table1.row) ->
      List.map
        (fun (c : Table1.cell) ->
          {
            workload = r.Table1.workload;
            ordering = c.Table1.ordering;
            block_reduction = r.Table1.bb_blocks - c.Table1.dyn_blocks;
            cycle_reduction = r.Table1.bb_cycles - c.Table1.cycles;
          })
        r.Table1.cells)
    rows

let regression points =
  Stats.linear_regression
    (List.map
       (fun p ->
         (float_of_int p.block_reduction, float_of_int p.cycle_reduction))
       points)

(* Aggregate block-count improvement ratio (executed blocks BB / executed
   blocks config) over the microbenchmarks, for one ordering. *)
let block_ratio (rows : Table1.row list) ordering =
  let bb, cfg =
    List.fold_left
      (fun (bb, cfg) (r : Table1.row) ->
        match
          List.find_opt (fun (c : Table1.cell) -> c.Table1.ordering = ordering) r.Table1.cells
        with
        | Some c -> (bb + r.Table1.bb_blocks, cfg + c.Table1.dyn_blocks)
        | None -> (bb, cfg))
      (0, 0) rows
  in
  if cfg = 0 then 0.0 else float_of_int bb /. float_of_int cfg

let render fmt (outcome : Table1.outcome) =
  let rows = outcome.Table1.rows in
  let points = points_of_table1 rows in
  let reg = regression points in
  Fmt.pf fmt
    "Figure 7: cycle reduction vs block reduction (all Table 1 points)@.";
  Fmt.pf fmt "%-16s %-8s %14s %14s@." "benchmark" "config" "d(blocks)"
    "d(cycles)";
  List.iter
    (fun p ->
      Fmt.pf fmt "%-16s %-8s %14d %14d@." p.workload
        (Chf.Phases.name p.ordering) p.block_reduction p.cycle_reduction)
    points;
  Fmt.pf fmt
    "linear fit: cycles_saved = %.2f * blocks_saved + %.1f   (r^2 = %.2f)@."
    reg.Stats.slope reg.Stats.intercept reg.Stats.r2;
  Fmt.pf fmt
    "block-count ratio over BB: best static ordering %.2fx, convergent %.2fx@."
    (Float.max
       (block_ratio rows Chf.Phases.Upio)
       (block_ratio rows Chf.Phases.Iupo))
    (block_ratio rows Chf.Phases.Iupo_merged)
