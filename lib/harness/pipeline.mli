(** The full compiler pipeline of the paper's Figure 6, driven per
    workload: front end (for-loop unrolling, lowering) -> profiling run
    -> hyperblock formation under a phase ordering and policy -> register
    allocation / reverse if-conversion / fanout insertion -> functional
    and cycle-level simulation.

    Every compiled configuration can be checked against the basic-block
    baseline's functional checksum ({!verify_against}), so a
    miscompilation can never silently pollute experiment results; with
    [verify], structure and behavior are additionally re-checked after
    {e every} formation phase via {!Trips_verify.Diff_check}, naming the
    first transform that broke.

    The pipeline degrades gracefully rather than aborting a sweep: a
    back-end rejection triggers a recompile that splits every over-budget
    hyperblock ({!Trips_transform.Split}) before retrying, and
    {!compile_checked} turns any unrecoverable error into a structured
    per-workload {!failure} report. *)

open Trips_ir
open Trips_sim
open Trips_workloads

type divergence = {
  div_workload : string;
  div_ordering : Chf.Phases.ordering;
  div_phase : string option;
      (** first diverging phase ("formation", "optimize", "backend", ...)
          when localizable *)
  div_got : int;
  div_expected : int;
}

exception Miscompiled of divergence

exception
  Verify_failed of {
    vf_workload : string;
    vf_ordering : Chf.Phases.ordering;
    vf_failure : Trips_verify.Diff_check.failure;
  }
(** Raised by [compile ~verify:true] when a phase breaks a structural
    invariant or changes observable behavior. *)

type failure_kind =
  | Crash  (** an exception classified by phase (the historical kind) *)
  | Timed_out of {
      to_stage : string;  (** the watchdog scope that expired *)
      to_reason : Trips_obs.Watchdog.reason;
      to_spent_s : float;
    }
      (** a per-stage watchdog budget expired: the cell was slow or
          hung, not wrong — siblings in the sweep are unaffected *)

type failure = {
  fail_workload : string;
  fail_ordering : Chf.Phases.ordering option;
  fail_phase : string;  (** "lower", "formation", "verify", "backend", ... *)
  fail_reason : string;
  fail_kind : failure_kind;
}
(** A structured per-workload failure report; sweeps record these and
    continue instead of aborting. *)

val pp_divergence : Format.formatter -> divergence -> unit
val pp_failure : Format.formatter -> failure -> unit

type compiled = {
  workload : Workload.t;
  ordering : Chf.Phases.ordering;
  config : Chf.Policy.config;
  cfg : Cfg.t;
  registers : (int * int) list;  (** post-allocation parameter registers *)
  stats : Chf.Formation.stats;
  backend : Trips_regalloc.Backend.report option;
  static_blocks : int;
  static_instrs : int;
  repair_splits : int;
      (** blocks split by the degradation path after a back-end rejection *)
  degraded : bool;  (** the fallback path ran (splits, or back end disabled) *)
}

val lower_workload : Workload.t -> Cfg.t * (int * int) list
(** Front-end unroll + lowering; returns parameter register bindings.
    Thin wrapper over {!Stage.lower}. *)

val profile_workload : Workload.t -> Trips_profile.Profile.t * Func_sim.result
(** Profile at the basic-block level (edges, blocks, trip counts). *)

val compile :
  ?cache:Stage.cache ->
  ?config:Chf.Policy.config ->
  ?backend:bool ->
  ?verify:bool ->
  Chf.Phases.ordering ->
  Workload.t ->
  compiled
(** Compile under a phase ordering (and policy), through the back end
    when [backend] (default true).  [verify] (default false) runs the
    per-phase differential verifier during formation.  [cache] memoizes
    the workload-invariant lower+profile prefix ({!Stage.prefix}), which
    every ordering and policy of the same workload content shares.
    @raise Verify_failed when [verify] and a phase breaks. *)

val compile_checked :
  ?cache:Stage.cache ->
  ?config:Chf.Policy.config ->
  ?backend:bool ->
  ?verify:bool ->
  Chf.Phases.ordering ->
  Workload.t ->
  (compiled, failure) result
(** [compile], but an unrecoverable workload becomes a structured
    failure report instead of an exception. *)

val failure_of_exn :
  workload:Workload.t -> ordering:Chf.Phases.ordering option -> exn -> failure
(** Classify an exception escaping the pipeline into a {!failure} (used
    by the sweep harnesses around {!verify_against} and the simulators). *)

val run_functional : compiled -> Func_sim.result

val run_cycles :
  ?timing:Cycle_sim.timing ->
  ?sample:int ->
  ?attribution:Attribution.t ->
  compiled ->
  Cycle_sim.result
(** [sample >= 2] runs the timing model in sampled mode (see
    {!Trips_sim.Cycle_sim.run}).  [attribution] collects per-block
    lineage attribution ({!Trips_sim.Attribution}) without affecting
    timing. *)

val verify_against : baseline:Func_sim.result -> compiled -> Func_sim.result
(** @raise Miscompiled unless the compiled workload reproduces the
    baseline checksum; the payload names workload, ordering and — when
    localizable by re-running the phases under {!Trips_verify.Diff_check}
    — the first diverging phase. *)
