(* The full compiler pipeline of Figure 6, driven per workload:

   front end (for-loop unrolling, lowering) -> profiling run ->
   hyperblock formation under a phase ordering and policy ->
   register allocation / reverse if-conversion / fanout insertion ->
   functional and cycle-level simulation.

   Every compiled configuration is checked against the basic-block
   baseline's functional checksum, so a miscompilation can never silently
   pollute experiment results; with [verify], the structural invariants
   and the functional behavior are additionally re-checked after every
   formation phase, naming the first transform that broke.

   The pipeline degrades gracefully rather than aborting a sweep: a
   back-end rejection triggers a recompile that splits every over-budget
   hyperblock ([Trips_transform.Split]) before retrying, and
   [compile_checked] turns any unrecoverable error into a structured
   per-workload failure report. *)

open Trips_ir
open Trips_sim
open Trips_workloads

type divergence = {
  div_workload : string;
  div_ordering : Chf.Phases.ordering;
  div_phase : string option;  (* first diverging phase, when localized *)
  div_got : int;
  div_expected : int;
}

exception Miscompiled of divergence

exception
  Verify_failed of {
    vf_workload : string;
    vf_ordering : Chf.Phases.ordering;
    vf_failure : Trips_verify.Diff_check.failure;
  }

type failure_kind =
  | Crash
  | Timed_out of {
      to_stage : string;
      to_reason : Trips_obs.Watchdog.reason;
      to_spent_s : float;
    }

type failure = {
  fail_workload : string;
  fail_ordering : Chf.Phases.ordering option;
  fail_phase : string;
  fail_reason : string;
  fail_kind : failure_kind;
}

let pp_divergence fmt d =
  Fmt.pf fmt "%s under %s%a: checksum %d, baseline %d" d.div_workload
    (Chf.Phases.name d.div_ordering)
    Fmt.(option (fmt " (diverged in phase %s)"))
    d.div_phase d.div_got d.div_expected

let pp_failure fmt f =
  let verb =
    match f.fail_kind with Crash -> "failed" | Timed_out _ -> "timed out"
  in
  Fmt.pf fmt "%s%a %s in %s: %s" f.fail_workload
    Fmt.(option (using Chf.Phases.name (fmt " under %s")))
    f.fail_ordering verb f.fail_phase f.fail_reason

type compiled = {
  workload : Workload.t;
  ordering : Chf.Phases.ordering;
  config : Chf.Policy.config;
  cfg : Cfg.t;
  registers : (int * int) list;  (* post-allocation parameter registers *)
  stats : Chf.Formation.stats;
  backend : Trips_regalloc.Backend.report option;
  static_blocks : int;
  static_instrs : int;
  repair_splits : int;  (* blocks split by degradation after a back-end rejection *)
  degraded : bool;  (* the fallback path ran (splits, or back end disabled) *)
}

(* Lower the workload (with its front-end unroll factor) and bind the
   parameter registers.  Thin wrapper over the [Stage] front end. *)
let lower_workload (w : Workload.t) =
  let l = Stage.lower w in
  (l.Stage.low_cfg, l.Stage.low_registers)

(** Profile the workload at the basic-block level (edge counts, block
    counts, trip-count histograms). *)
let profile_workload (w : Workload.t) =
  let p = Stage.profile w (Stage.lower w) in
  (p.Stage.prof_profile, p.Stage.prof_result)

(* Split every block the TRIPS budget check rejects (middle split,
   repeatedly) until the CFG fits or no split makes progress.  Used by
   the degradation path when the back end rejects a formed CFG. *)
let split_over_budget ~limits cfg =
  let splits = ref 0 in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 16 do
    incr rounds;
    let offenders =
      List.filter_map
        (function
          | Trips_verify.Cfg_verify.Over_budget { block; _ } -> Some block
          | _ -> None)
        (Trips_verify.Cfg_verify.check ~allow_unreachable:true ~limits cfg)
    in
    match offenders with
    | [] -> continue_ := false
    | blocks ->
      let progressed =
        List.fold_left
          (fun acc id ->
            match Trips_transform.Split.split_block cfg id with
            | Some _ ->
              incr splits;
              true
            | None -> acc)
          false blocks
      in
      if not progressed then continue_ := false
  done;
  !splits

(* Run the phase ordering; with [verify], interleave structural and
   differential checks after every phase and raise [Verify_failed] naming
   the first phase that broke an invariant or changed behavior. *)
let form ~verify ~config ordering (w : Workload.t) cfg registers profile =
  Stage.time Stage.Formation (fun () ->
      if not verify then Chf.Phases.apply ~config ordering cfg profile
      else
        match
          Trips_verify.Diff_check.run ~config ~registers
            ~fresh_memory:(fun () -> Workload.memory w)
            ordering cfg profile
        with
        | Ok stats -> stats
        | Error f ->
          raise
            (Verify_failed
               { vf_workload = w.Workload.name; vf_ordering = ordering; vf_failure = f }))

let run_backend cfg = Stage.time Stage.Backend (fun () -> Trips_regalloc.Backend.run cfg)

(** Compile [w] under phase ordering [ordering] (and policy [config]),
    through the back end when [backend] is set.  [verify] re-checks
    invariants and behavior after every formation phase.  [cache]
    memoizes the workload-invariant lower+profile prefix across
    compiles (any ordering/policy of the same content shares it). *)
let compile ?cache ?(config = Chf.Policy.edge_default) ?(backend = true)
    ?(verify = false) ordering (w : Workload.t) : compiled =
  let prefix = Stage.prefix ?cache w in
  let profile = prefix.Stage.pre_profiled.Stage.prof_profile in
  (* every build mutates its own deep copy of the cached master lowering;
     lowering is deterministic, so the copy matches a fresh lowering *)
  let build ~presplit =
    let { Stage.low_cfg = cfg; low_registers = registers } =
      Stage.instantiate prefix
    in
    let stats = form ~verify ~config ordering w cfg registers profile in
    let splits =
      if presplit then split_over_budget ~limits:config.Chf.Policy.limits cfg
      else 0
    in
    (cfg, registers, stats, splits)
  in
  let cfg, registers, stats, backend_report, repair_splits, degraded =
    let cfg, registers, stats, _ = build ~presplit:false in
    if not backend then (cfg, registers, stats, None, 0, false)
    else
      match run_backend cfg with
      | report -> (cfg, registers, stats, Some report, 0, false)
      | exception (Trips_obs.Watchdog.Timed_out _ as e) ->
        (* a timeout is a budget verdict, not a structural rejection:
           retrying would spend the remaining sweep budget re-running
           the same slow cell, so surface it as a failure immediately *)
        raise e
      | exception _ -> (
        (* the back end may have partially rewritten the CFG: rebuild
           from scratch, split every over-budget hyperblock, retry *)
        let cfg, registers, stats, splits = build ~presplit:true in
        match run_backend cfg with
        | report -> (cfg, registers, stats, Some report, splits, true)
        | exception (Trips_obs.Watchdog.Timed_out _ as e) -> raise e
        | exception _ ->
          (* still rejected: last resort is to skip the back end *)
          let cfg, registers, stats, _ = build ~presplit:false in
          (cfg, registers, stats, None, 0, true))
  in
  let registers =
    match backend_report with
    | Some r ->
      List.map
        (fun (reg, value) ->
          (IntMap.find_or ~default:reg reg r.Trips_regalloc.Backend.mapping, value))
        registers
    | None -> registers
  in
  {
    workload = w;
    ordering;
    config;
    cfg;
    registers;
    stats;
    backend = backend_report;
    static_blocks = Cfg.num_blocks cfg;
    static_instrs = Cfg.total_instrs cfg;
    repair_splits;
    degraded;
  }

(** Run the compiled workload functionally. *)
let run_functional (c : compiled) : Func_sim.result =
  Stage.time Stage.Sim (fun () ->
      let memory = Workload.memory c.workload in
      Func_sim.run ~registers:c.registers ~memory c.cfg)

(** Run the compiled workload under the cycle-level timing model.
    [sample] enables sampled simulation (see {!Cycle_sim.run}).
    [attribution] collects per-block lineage attribution ({!Attribution})
    without affecting timing. *)
let run_cycles ?timing ?sample ?attribution (c : compiled) : Cycle_sim.result =
  Stage.time Stage.Sim (fun () ->
      let memory = Workload.memory c.workload in
      Cycle_sim.run ?timing ?sample ?attribution ~registers:c.registers ~memory
        c.cfg)

(* On a checksum mismatch, re-run the formation phases with differential
   checking on a fresh lowering to name the first phase that diverged;
   if they all pass, the divergence came from the back end. *)
let localize_divergence (c : compiled) =
  match
    let profile, _ = profile_workload c.workload in
    let cfg, registers = lower_workload c.workload in
    Trips_verify.Diff_check.run ~config:c.config ~registers
      ~fresh_memory:(fun () -> Workload.memory c.workload)
      c.ordering cfg profile
  with
  | Error f -> Some f.Trips_verify.Diff_check.phase
  | Ok _ -> if c.backend <> None then Some "backend" else None
  | exception _ -> None

(** Raise [Miscompiled] unless [c] produces the same functional checksum
    as the basic-block baseline result [baseline]; the payload names the
    workload, ordering and (when localizable) the diverging phase. *)
let verify_against ~(baseline : Func_sim.result) (c : compiled) =
  let r = run_functional c in
  if r.Func_sim.checksum <> baseline.Func_sim.checksum then
    raise
      (Miscompiled
         {
           div_workload = c.workload.Workload.name;
           div_ordering = c.ordering;
           div_phase = localize_divergence c;
           div_got = r.Func_sim.checksum;
           div_expected = baseline.Func_sim.checksum;
         });
  r

(** Structured failure report for an exception escaping the pipeline. *)
let failure_of_exn ~(workload : Workload.t) ~ordering exn =
  let kind =
    match exn with
    | Trips_obs.Watchdog.Timed_out { wd_stage; wd_reason; wd_spent_s } ->
      Timed_out
        { to_stage = wd_stage; to_reason = wd_reason; to_spent_s = wd_spent_s }
    | _ -> Crash
  in
  let phase, reason =
    match exn with
    | Trips_obs.Watchdog.Timed_out { wd_stage; wd_reason; wd_spent_s } ->
      ( wd_stage,
        Fmt.str "%a" Trips_obs.Watchdog.pp_timed_out
          (wd_stage, wd_reason, wd_spent_s) )
    | Verify_failed { vf_failure; _ } ->
      ( vf_failure.Trips_verify.Diff_check.phase,
        Fmt.str "%a" Trips_verify.Diff_check.pp_failure vf_failure )
    | Miscompiled d -> ("verify", Fmt.str "%a" pp_divergence d)
    | Cfg.Ill_formed m -> ("formation", m)
    | Trips_verify.Cfg_verify.Invalid (name, viols) ->
      ( "verify",
        Fmt.str "%s: %a" name
          Fmt.(list ~sep:(any "; ") Trips_verify.Cfg_verify.pp_violation)
          viols )
    | Func_sim.Out_of_fuel m | Func_sim.Exit_invariant_violated m ->
      ("simulate", m)
    | Invalid_argument m -> ("lower", m)
    | Failure m -> ("compile", m)
    | e -> ("compile", Printexc.to_string e)
  in
  {
    fail_workload = workload.Workload.name;
    fail_ordering = ordering;
    fail_phase = phase;
    fail_reason = reason;
    fail_kind = kind;
  }

(** [compile], but an unrecoverable workload becomes a structured
    per-workload failure report instead of an exception, so experiment
    sweeps always complete. *)
let compile_checked ?cache ?config ?backend ?verify ordering (w : Workload.t) :
    (compiled, failure) result =
  match compile ?cache ?config ?backend ?verify ordering w with
  | c -> Ok c
  | exception e -> Error (failure_of_exn ~workload:w ~ordering:(Some ordering) e)
