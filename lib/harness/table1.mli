(** Table 1: cycle-count improvement of the four phase orderings over
    basic blocks on the 24 microbenchmarks, with the paper's m/t/u/p
    merge statistics, under the greedy breadth-first EDGE policy.  Every
    configuration is checksum-verified before timing; failures are
    recorded and reported, never raised, so a bad workload cannot abort
    the sweep. *)

open Trips_workloads

type cell = {
  ordering : Chf.Phases.ordering;
  cycles : int;
  dyn_blocks : int;  (** dynamic blocks executed *)
  stats : Chf.Formation.stats;
  improvement : float;  (** % cycles saved vs BB *)
}

type row = {
  workload : string;
  bb_cycles : int;
  bb_blocks : int;
  cells : cell list;  (** successful configurations only *)
}

type outcome = { rows : row list; failures : Pipeline.failure list }

val orderings : Chf.Phases.ordering list
(** = {!Chf.Phases.table_orderings}. *)

val spec :
  ?config:Chf.Policy.config ->
  ?verify:bool ->
  unit ->
  (Chf.Phases.ordering, cell) Sweep.spec
(** The declarative sweep spec (axes + cell function) behind {!run}. *)

val run :
  ?config:Chf.Policy.config ->
  ?verify:bool ->
  ?cache:Stage.cache ->
  ?jobs:int ->
  ?workloads:Workload.t list ->
  unit ->
  outcome
(** [verify] additionally runs the per-phase differential verifier on
    every compile.  [jobs] parallelizes rows over the engine's domain
    pool (output is identical for any [jobs]); [cache] (fresh per run by
    default) shares the lower+profile prefix across the row's compiles
    and may be shared across experiments. *)

val average : row list -> Chf.Phases.ordering -> float
val render : Format.formatter -> outcome -> unit
