(** Staged compilation with content-keyed prefix caching.

    The pipeline of Figure 6 decomposes into five stages —

    {[ lower -> profile -> formation -> backend -> sim ]}

    — with a typed artifact per stage.  The lower+profile prefix depends
    only on the workload's content and is identical across every phase
    ordering and policy of a sweep, so {!prefix} memoizes it under a
    {!content_key}.  Cached artifacts are immutable: consumers that
    transform the graph take a deep copy via {!instantiate}.  Lowering
    is deterministic, so a cached sweep is byte-identical to an uncached
    one.

    The cache and the per-stage timers are domain-safe and shared
    freely across the {!Engine} pool. *)

open Trips_ir
open Trips_sim
open Trips_workloads

(** {1 Per-stage wall-clock accounting} *)

type stage = Lower | Profile | Formation | Backend | Sim

type timings = {
  lower_s : float;
  profile_s : float;
  formation_s : float;
  backend_s : float;
  sim_s : float;
}

val time : stage -> (unit -> 'a) -> 'a
(** Run a thunk, attributing its wall-clock to the stage (cumulative
    across domains; exceptions still account their time). *)

val reset_timings : unit -> unit
val timings : unit -> timings
val pp_timings : Format.formatter -> timings -> unit

(** {1 Typed per-stage artifacts} *)

type lowered = {
  low_cfg : Cfg.t;
  low_registers : (int * int) list;  (** parameter register bindings *)
}

type profiled = {
  prof_profile : Trips_profile.Profile.t;
  prof_result : Func_sim.result;  (** the profiling run's result *)
}

type prefix = {
  pre_workload : Workload.t;
  pre_key : string;  (** {!content_key} of the workload *)
  pre_master : lowered;  (** never mutated; use {!instantiate} *)
  pre_profiled : profiled;
}

val content_key : Workload.t -> string
(** Digest of the program AST, arguments, memory image and unroll
    factor — everything the lower+profile prefix depends on.  Name and
    description are excluded: identical content shares a prefix. *)

val lower : Workload.t -> lowered
(** Front-end unroll + lowering (timed as {!Lower}).
    @raise Invalid_argument on an unknown parameter binding. *)

val profile : Workload.t -> lowered -> profiled
(** Basic-block profiling run over the lowered CFG (timed as
    {!Profile}); does not mutate the CFG. *)

val instantiate : prefix -> lowered
(** A fresh deep copy of the master lowering, safe to mutate. *)

(** {1 Content-keyed memo cache}

    The cache is a front over the shared content-addressed artifact
    store ({!Trips_store.Store}): {!of_store} hands out a cache view of a
    store owned by someone else (the [chfc serve] daemon shares one
    across every request), while {!create} makes a private store.  Either
    way the store owns the mutex, the LRU bound and the
    hit/miss/eviction counters. *)

type cache

type cache_stats = { cache_hits : int; cache_misses : int }

val create : unit -> cache

val disabled : unit -> cache
(** A cache that never stores: every lookup recomputes and counts as a
    miss.  Lets cache-on and cache-off sweeps share one code path. *)

val of_store : prefix Trips_store.Store.t -> cache
(** A cache view over a shared store; entries (and counters) are shared
    with every other view of the same store. *)

val store_counters : cache -> Trips_store.Store.counters
(** The backing store's counters, including evictions and population —
    the extended [--cache-stats] view. *)

val stats : cache -> cache_stats
val hit_rate : cache_stats -> float

val prefix : ?cache:cache -> Workload.t -> prefix
(** The lower+profile prefix for [w], memoized on {!content_key} when a
    cache is supplied.  Domain-safe; concurrent misses on one key both
    compute (deterministically, so the race is benign). *)
