(* Fanout insertion.

   A TRIPS instruction encodes at most [Machine.max_targets] explicit
   consumers; a value with more consumers needs a tree of mov
   instructions.  This pass runs after register allocation (Figure 6) and
   rewrites surplus intra-block consumers to read fresh copies.  Exit
   reads and the value's block-output slot stay on the original register,
   counting toward its target budget.

   The inserted movs are unguarded: an unguarded copy aliases the
   register's current value exactly, so every consumer — including ones
   whose guards predicate optimization already dropped — observes the
   same value it would have read from the original register. *)

open Trips_ir

(* Rewrite one block.  For each definition, scan its use range (up to the
   next redefinition) and, when consumers exceed capacity, chain movs:
   each mov consumes one target slot and provides [max_targets]. *)
let expand_block cfg (b : Block.t) : Block.t * int =
  let added = ref 0 in
  let exit_reads = Block.exit_uses b in
  (* registers introduced by this pass; by construction each has at most
     [max_targets] consumers, so they are never fanned again *)
  let fanout_copies = Hashtbl.create 16 in
  let rec rewrite = function
    | [] -> []
    | (i : Instr.t) :: rest ->
      let rest =
        List.fold_left (fun rest d -> fan_def d rest) rest (Instr.defs i)
      in
      i :: rewrite rest
  and fan_def d rest =
    if Hashtbl.mem fanout_copies d then rest
    else begin
    (* instructions in [rest] reading [d], up to its next definition *)
    let rec collect idx = function
      | [] -> []
      | (j : Instr.t) :: tail ->
        let here = if List.mem d (Instr.uses j) then [ idx ] else [] in
        if List.mem d (Instr.defs j) then here
        else here @ collect (idx + 1) tail
    in
    let use_positions = collect 0 rest in
    let fixed = if IntSet.mem d exit_reads then 1 else 0 in
    let n_uses = List.length use_positions in
    if n_uses + fixed <= Machine.max_targets then rest
    else begin
      (* Balanced tree of movs immediately after the producer: copy k
         reads copy (k-1)/2, so fanout latency grows logarithmically in
         the consumer count, as a real fanout-insertion pass arranges.
         [d] keeps one target slot for the tree root, its remaining
         budget for direct uses; every copy's two slots are split between
         tree children and rewritten uses. *)
      let keep = max 0 (Machine.max_targets - fixed - 1) in
      let surplus = n_uses - keep in
      let to_rewrite =
        let sorted = List.sort compare use_positions in
        List.filteri (fun k _ -> k >= keep) sorted
      in
      let movs_needed = surplus in
      let copies =
        Array.init movs_needed (fun _ ->
            let r = Cfg.fresh_reg cfg in
            Hashtbl.replace fanout_copies r ();
            r)
      in
      let movs =
        let lineage =
          if Lineage.enabled () then
            Some { Lineage.origin = b.Block.id; placed = Lineage.Helper "fanout" }
          else None
        in
        List.init movs_needed (fun k ->
            let src = if k = 0 then d else copies.((k - 1) / 2) in
            added := !added + 1;
            Cfg.instr ?lineage cfg (Instr.Mov (copies.(k), Instr.Reg src)))
      in
      (* free slots per copy: Machine.max_targets minus its tree children *)
      let children = Array.make movs_needed 0 in
      for k = 1 to movs_needed - 1 do
        children.((k - 1) / 2) <- children.((k - 1) / 2) + 1
      done;
      let slots = ref [] in
      for k = 0 to movs_needed - 1 do
        for _ = 1 to Machine.max_targets - children.(k) do
          slots := copies.(k) :: !slots
        done
      done;
      (* deepest copies first, so hot consumers sit at the leaves *)
      let slot_list = !slots in
      let assignment = Hashtbl.create 8 in
      List.iteri
        (fun k pos ->
          match List.nth_opt slot_list k with
          | Some copy -> Hashtbl.replace assignment pos copy
          | None -> ())
        to_rewrite;
      let rewritten =
        List.mapi
          (fun idx (j : Instr.t) ->
            match Hashtbl.find_opt assignment idx with
            | Some copy -> substitute_one j ~from_:d ~to_:copy
            | None -> j)
          rest
      in
      movs @ rewritten
    end
    end
  and substitute_one (j : Instr.t) ~from_ ~to_ =
    let subst = function
      | Instr.Reg r when r = from_ -> Instr.Reg to_
      | o -> o
    in
    let op =
      match j.Instr.op with
      | Instr.Binop (o, d, a, b) -> Instr.Binop (o, d, subst a, subst b)
      | Instr.Cmp (o, d, a, b) -> Instr.Cmp (o, d, subst a, subst b)
      | Instr.Mov (d, a) -> Instr.Mov (d, subst a)
      | Instr.Load (d, a, off) -> Instr.Load (d, subst a, off)
      | Instr.Store (v, a, off) -> Instr.Store (subst v, subst a, off)
      | Instr.Nullw r -> Instr.Nullw r
    in
    (* a guard read of the value is a consumer too; the copy holds the
       same value, so retargeting it is sound *)
    let guard =
      match j.Instr.guard with
      | Some g when g.Instr.greg = from_ ->
        Some { g with Instr.greg = to_ }
      | other -> other
    in
    { j with Instr.op; guard }
  in
  let instrs = rewrite b.Block.instrs in
  ({ b with Block.instrs }, !added)

(** Insert fanout movs in every block; returns how many were added. *)
let run cfg =
  List.fold_left
    (fun total id ->
      let b, added = expand_block cfg (Cfg.block cfg id) in
      Cfg.set_block cfg b;
      total + added)
    0 (Cfg.block_ids cfg)
