(** Back-end driver: register allocation, reverse if-conversion on
    constraint violations, then fanout insertion — the lower half of the
    compiler flow in paper Figure 6. *)

open Trips_ir

type report = {
  mapping : int IntMap.t;
      (** original virtual register -> architectural home; callers use it
          to translate front-end register names (e.g. kernel parameters) *)
  cross_block_values : int;
  splits : int;  (** blocks split by reverse if-conversion *)
  fanout_movs : int;
  rounds : int;  (** allocation rounds run *)
}

val run : ?max_rounds:int -> Cfg.t -> report
(** Run the back end on a formed CFG, in place. *)

val reject_for_tests : int ref
(** Test-only fault injection: while positive, each {!run} decrements
    the counter and raises instead of allocating, exercising the
    pipeline's split-and-retry and backend-off degradation paths
    ([0] in production). *)
