(* Back-end driver: register allocation, reverse if-conversion on
   constraint violations, then fanout insertion — the lower half of the
   compiler flow in Figure 6 of the paper. *)

open Trips_ir
open Trips_analysis

type report = {
  mapping : int IntMap.t;  (* original virtual register -> architectural *)
  cross_block_values : int;
  splits : int;  (* blocks split by reverse if-conversion *)
  fanout_movs : int;
  rounds : int;  (* allocation rounds run *)
}

(** Run the back end on a formed CFG, in place.  Returns the allocation
    report; the [mapping] lets callers translate front-end register names
    (e.g. kernel parameters) to their architectural homes. *)
(* Test-only fault injection: while positive, every [run] decrements the
   counter and raises as a budget rejection would.  Lets the degradation
   tests drive the pipeline's split-and-retry and backend-off paths on
   demand (same idiom as [Engine.spawn_limit_for_tests]). *)
let reject_for_tests : int ref = ref 0

(* Blocks whose size estimate exceeds the hard TRIPS frame limits.
   Formation checks each merge against this estimate, but a later merge
   into a different hyperblock can extend a live range through an
   already-formed block, inflating its fanout and null-write overhead
   past the 128-slot frame after the fact; fanout materialization can
   also exceed the estimate's idealized mov count (the tree reserves the
   producer's root slot and fans each definition site separately).
   Reverse if-conversion is the paper's repair for any structural
   constraint the allocator's view exposes (Section 6), so these are
   split and re-processed like bank violations. *)
let over_budget_blocks cfg =
  let live = Liveness.compute cfg in
  List.filter_map
    (fun (b : Block.t) ->
      let live_out = Liveness.live_out live b.Block.id in
      if
        Chf.Constraints.legal Chf.Constraints.trips_limits
          (Chf.Constraints.estimate b ~live_out)
      then None
      else Some b.Block.id)
    (Cfg.blocks cfg)

let run ?(max_rounds = 8) cfg : report =
  if !reject_for_tests > 0 then begin
    decr reject_for_tests;
    failwith "backend: injected rejection (reject_for_tests)"
  end;
  let splits = ref 0 in
  let split_all blocks =
    List.fold_left
      (fun acc id ->
        match Reverse_if_convert.split_block cfg id with
        | Some _ ->
          incr splits;
          true
        | None -> acc)
      false blocks
  in
  let rec allocate mapping round =
    let result = Reg_alloc.run cfg in
    (* compose: earlier names may map through this round's renaming *)
    let mapping =
      IntMap.map
        (fun v -> IntMap.find_or ~default:v v result.Reg_alloc.mapping)
        mapping
      |> IntMap.union (fun _ a _ -> Some a) result.Reg_alloc.mapping
    in
    let over = over_budget_blocks cfg in
    match (Reg_alloc.violations cfg, over) with
    | [], [] -> (mapping, result.Reg_alloc.cross_block_values, round)
    | viols, over when round < max_rounds ->
      let blocks =
        List.sort_uniq compare
          (List.map (fun (v : Reg_alloc.violation) -> v.Reg_alloc.block) viols
          @ over)
      in
      ignore (split_all blocks);
      allocate mapping (round + 1)
    | viols, over ->
      (* give up: report rather than loop; the cycle model still runs *)
      Logs.warn (fun m ->
          m "%s: %d bank / %d budget violations remain after %d allocation \
             rounds"
            cfg.Cfg.name (List.length viols) (List.length over) round);
      (mapping, result.Reg_alloc.cross_block_values, round)
  in
  let mapping, cross_block_values, rounds = allocate IntMap.empty 1 in
  let fanout_movs = ref (Fanout.run cfg) in
  (* the materialized fanout trees can overshoot the pre-fanout
     estimate; split the overflowing block and re-fan the halves (a
     second [Fanout.run] is a no-op on untouched blocks) *)
  let outer = ref 0 in
  let continue_ = ref true in
  while !continue_ && !outer < 4 do
    incr outer;
    match over_budget_blocks cfg with
    | [] -> continue_ := false
    | over ->
      if split_all over then fanout_movs := !fanout_movs + Fanout.run cfg
      else continue_ := false
  done;
  Cfg.validate cfg;
  { mapping; cross_block_values; splits = !splits; fanout_movs = !fanout_movs; rounds }
