(** The 24 microbenchmarks of the paper's Tables 1 and 2.

    The paper derives its microbenchmarks by extracting loops and
    procedures from SPEC2000, GMTI radar kernels, a 10x10 matrix
    multiply, sieve and Dhrystone.  Each is reconstructed here as a
    mini-language kernel with the control-flow character the paper
    attributes to it — trip counts, branch bias, merge-point structure
    and dependence shape are what hyperblock formation reacts to.  Data
    is deterministic. *)

val all : Workload.t list
(** All 24 kernels, in the paper's Table 1 order. *)

val store_dense : Workload.t list
(** Store-dense stress kernels whose unrolled merge estimates hit the
    32-slot load/store budget — the regime the constraint pre-filter
    fires in.  Kept out of {!all} so the 24-kernel tables stay exactly
    the paper's set; [bench formation] and the pre-filter regression
    test add them. *)

val by_name : string -> Workload.t option
(** Searches {!all} and {!store_dense}. *)
