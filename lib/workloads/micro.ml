(* The 24 microbenchmarks of Tables 1 and 2.

   The paper derives its microbenchmarks by extracting loops and
   procedures from SPEC2000, GMTI radar kernels, a 10x10 matrix multiply,
   sieve and Dhrystone.  We reconstruct each as a mini-language kernel
   with the control-flow character the paper attributes to it: trip
   counts, branch bias, merge-point structure and dependence shape are
   the properties hyperblock formation reacts to, so those are what each
   kernel reproduces (see each kernel's [description]).  Data is
   deterministic (seeded LCG). *)

open Trips_lang

let fill_with seed ?bound () a =
  let rng = Rng.create seed in
  Rng.fill ?bound rng a

(* ------------------------------------------------------------------ *)

let vadd =
  let open Ast in
  Workload.make ~name:"vadd"
    ~description:"dense vector add; single for loop, front-end unrolling does the work"
    ~memory_words:8192
    ~init_memory:(fill_with 11 ())
    {
      prog_name = "vadd";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "k" (i 0) (i 1500)
            [
              Store (i 4096 + v "k", mem (v "k") + mem (i 2048 + v "k"));
            ];
          for_ "k" (i 0) (i 1500) [ "acc" <-- (v "acc" + mem (i 4096 + v "k")) ];
          Return (Some (v "acc"));
        ];
    }

let matrix_1 =
  let open Ast in
  Workload.make ~name:"matrix_1"
    ~description:"10x10 integer matrix multiply; perfect for-loop nest, trip 10"
    ~memory_words:512
    ~init_memory:(fill_with 12 ~bound:32 ())
    {
      prog_name = "matrix_1";
      params = [];
      body =
        [
          for_ "r" (i 0) (i 10)
            [
              for_ "c" (i 0) (i 10)
                [
                  "s" <-- i 0;
                  for_ "k" (i 0) (i 10)
                    [
                      "s"
                      <-- (v "s"
                          + (mem ((v "r" * i 10) + v "k")
                            * mem (i 100 + (v "k" * i 10) + v "c")));
                    ];
                  Store (i 200 + (v "r" * i 10) + v "c", v "s");
                ];
            ];
          "acc" <-- i 0;
          for_ "k" (i 0) (i 100) [ "acc" <-- (v "acc" + mem (i 200 + v "k")) ];
          Return (Some (v "acc"));
        ];
    }

let sieve =
  let open Ast in
  Workload.make ~name:"sieve"
    ~description:"prime sieve; outer conditional guarding an inner strided store loop"
    ~memory_words:1200
    {
      prog_name = "sieve";
      params = [];
      body =
        [
          "count" <-- i 0;
          for_ "p" (i 2) (i 600)
            [
              If
                ( mem (v "p") = i 0,
                  [
                    "count" <-- (v "count" + i 1);
                    "j" <-- (v "p" + v "p");
                    While (v "j" < i 600,
                      [ Store (v "j", i 1); "j" <-- (v "j" + v "p") ]);
                  ],
                  [] );
            ];
          Return (Some (v "count"));
        ];
    }

let dct8x8 =
  let open Ast in
  Workload.make ~name:"dct8x8"
    ~description:"8x8 transform; dense mul/add nest with table lookups, trip 8"
    ~memory_words:1024
    ~init_memory:(fill_with 13 ~bound:64 ())
    {
      prog_name = "dct8x8";
      params = [];
      body =
        [
          for_ "u" (i 0) (i 8)
            [
              for_ "x2" (i 0) (i 8)
                [
                  "s" <-- i 0;
                  for_ "x" (i 0) (i 8)
                    [
                      "s"
                      <-- (v "s"
                          + (mem ((v "u" * i 8) + v "x")
                            * mem (i 64 + (v "x" * i 8) + v "x2")));
                    ];
                  Store (i 128 + (v "u" * i 8) + v "x2", v "s" >>> i 3);
                ];
            ];
          "acc" <-- i 0;
          for_ "k" (i 0) (i 64) [ "acc" <-- (v "acc" + mem (i 128 + v "k")) ];
          Return (Some (v "acc"));
        ];
    }

(* while loops with low trip counts: head duplication's best case *)
let init_ammp_1 a =
  let rng = Rng.create 14 in
  Array.iteri (fun k _ -> a.(k) <- 1 + Rng.int rng 5) a

let ammp_1 =
  let open Ast in
  Workload.make ~name:"ammp_1"
    ~description:"outer loop over atoms, two inner while loops with trip counts near 3 (Figure 1 shape)"
    ~memory_words:2048
    ~init_memory:init_ammp_1
    {
      prog_name = "ammp_1";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "atom" (i 0) (i 400)
            [
              "b1" <-- mem (v "atom");
              "k" <-- i 0;
              While (v "k" < v "b1",
                [ "acc" <-- (v "acc" + (v "k" * i 3)); "k" <-- (v "k" + i 1) ]);
              "b2" <-- mem (i 1024 + v "atom");
              "k" <-- i 0;
              While (v "k" < v "b2",
                [ "acc" <-- (v "acc" ^^^ (v "acc" >>> i 2)) ;
                  "acc" <-- (v "acc" + v "k");
                  "k" <-- (v "k" + i 1) ]);
            ];
          Return (Some (v "acc"));
        ];
    }

let ammp_2 =
  let open Ast in
  Workload.make ~name:"ammp_2"
    ~description:"neighbor-list walk: short data-dependent while loop with a guarded update"
    ~memory_words:2048
    ~init_memory:(fun a ->
      let rng = Rng.create 15 in
      Array.iteri (fun k _ -> a.(k) <- Rng.int rng 6) a)
    {
      prog_name = "ammp_2";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "atom" (i 0) (i 500)
            [
              "n" <-- mem (v "atom");
              "k" <-- i 0;
              While
                ( v "k" < v "n",
                  [
                    "d" <-- mem (i 1024 + ((v "atom" + v "k") % i 1024));
                    If (v "d" > i 2, [ "acc" <-- (v "acc" + v "d") ],
                       [ "acc" <-- (v "acc" + i 1) ]);
                    "k" <-- (v "k" + i 1);
                  ] );
            ];
          Return (Some (v "acc"));
        ];
    }

let art_1 =
  let open Ast in
  Workload.make ~name:"art_1"
    ~description:"neural match scan: for loop with a 50/50 data-dependent branch"
    ~memory_words:2048
    ~init_memory:(fill_with 16 ())
    {
      prog_name = "art_1";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "k" (i 0) (i 800)
            [
              "f" <-- mem (v "k" % i 2048);
              If (v "f" > i 128, [ "acc" <-- (v "acc" + v "f") ],
                 [ "acc" <-- (v "acc" + i 1) ]);
            ];
          Return (Some (v "acc"));
        ];
    }

let art_2 =
  let open Ast in
  Workload.make ~name:"art_2"
    ~description:"two-condition weight update: nested data-dependent branches"
    ~memory_words:2048
    ~init_memory:(fill_with 17 ())
    {
      prog_name = "art_2";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "k" (i 0) (i 700)
            [
              "f" <-- mem (v "k" % i 2048);
              If
                ( v "f" > i 64,
                  [
                    If (v "f" > i 192,
                       [ "acc" <-- (v "acc" + (v "f" * i 2)) ],
                       [ "acc" <-- (v "acc" + v "f") ]);
                  ],
                  [ "acc" <-- (v "acc" - i 1) ] );
            ];
          Return (Some (v "acc"));
        ];
    }

let art_3 =
  let open Ast in
  Workload.make ~name:"art_3"
    ~description:"winner search: running-max loop whose update branch is rare and unpredictable"
    ~memory_words:4096
    ~init_memory:(fill_with 18 ~bound:100000 ())
    {
      prog_name = "art_3";
      params = [];
      body =
        [
          "best" <-- i 0 - i 1;
          "idx" <-- i 0;
          for_ "k" (i 0) (i 2000)
            [
              "f" <-- mem (v "k" % i 4096);
              If (v "f" > v "best", [ "best" <-- v "f"; "idx" <-- v "k" ], []);
            ];
          Return (Some (v "best" + v "idx"));
        ];
    }

let bzip2_1 =
  let open Ast in
  Workload.make ~name:"bzip2_1"
    ~description:"byte histogram with a range test; predictable branch, load/store mix"
    ~memory_words:2304
    ~init_memory:(fill_with 19 ())
    {
      prog_name = "bzip2_1";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "k" (i 0) (i 1200)
            [
              "c" <-- mem (v "k" % i 2048);
              If
                ( v "c" < i 240,
                  [
                    Store (i 2048 + (v "c" % i 256),
                           mem (i 2048 + (v "c" % i 256)) + i 1);
                  ],
                  [ "acc" <-- (v "acc" + i 1) ] );
            ];
          for_ "k" (i 0) (i 256) [ "acc" <-- (v "acc" + mem (i 2048 + v "k")) ];
          Return (Some (v "acc"));
        ];
    }

let bzip2_2 =
  let open Ast in
  Workload.make ~name:"bzip2_2"
    ~description:"run-length scan: inner while with small data-dependent trips and a break"
    ~memory_words:4096
    ~init_memory:(fun a ->
      let rng = Rng.create 20 in
      Array.iteri (fun k _ -> a.(k) <- Rng.int rng 4) a)
    {
      prog_name = "bzip2_2";
      params = [];
      body =
        [
          "acc" <-- i 0;
          "p" <-- i 0;
          While
            ( v "p" < i 1500,
              [
                "run" <-- i 1;
                While
                  ( v "p" + v "run" < i 1500,
                    [
                      If (mem (v "p" + v "run") <> mem (v "p"), [ Break ], []);
                      "run" <-- (v "run" + i 1);
                      If (v "run" >= i 8, [ Break ], []);
                    ] );
                "acc" <-- (v "acc" + (v "run" * v "run"));
                "p" <-- (v "p" + v "run");
              ] );
          Return (Some (v "acc"));
        ];
    }

(* The adversarial case of Table 2: excluding the rare block forces tail
   duplication of the merge block containing the induction update, making
   the increment data-dependent on the test. *)
let bzip2_3 =
  let open Ast in
  Workload.make ~name:"bzip2_3"
    ~description:"main loop with a ~2% side block before the merge block holding the induction update"
    ~memory_words:4096
    ~init_memory:(fill_with 21 ())
    {
      prog_name = "bzip2_3";
      params = [];
      body =
        [
          "acc" <-- i 0;
          "j" <-- i 0;
          While
            ( v "j" < i 1500,
              [
                "x" <-- mem (v "j" % i 4096);
                If
                  ( v "x" >= i 251,  (* ~2% of byte values *)
                    [
                      "acc" <-- (v "acc" + (v "x" * i 3));
                      Store (v "j" % i 64, v "acc");
                    ],
                    [] );
                (* merge block: common work + induction update *)
                "acc" <-- (v "acc" + v "x");
                "j" <-- (v "j" + i 1);
              ] );
          Return (Some (v "acc"));
        ];
    }

let init_dhry a =
  let rng = Rng.create 22 in
  Array.iteri (fun k _ -> a.(k) <- Rng.int rng 4) a;
  (* short "strings": runs terminated by 0 every few words *)
  for k = 0 to Array.length a - 1 do
    if k mod 7 = 6 then a.(k) <- 0 else a.(k) <- 1 + (a.(k) land 3)
  done

let dhry =
  let open Ast in
  Workload.make ~name:"dhry"
    ~description:"Dhrystone-like record copies, enum dispatch via nested ifs, short string scans"
    ~memory_words:4096
    ~init_memory:init_dhry
    {
      prog_name = "dhry";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "it" (i 0) (i 300)
            [
              "base" <-- ((v "it" * i 11) % i 2048);
              (* record copy *)
              Store (i 3000 + (v "it" % i 64), mem (v "base"));
              Store (i 3100 + (v "it" % i 64), mem (v "base" + i 1));
              (* enum dispatch *)
              "e" <-- (mem (v "base" + i 2) % i 4);
              If
                ( v "e" = i 0,
                  [ "acc" <-- (v "acc" + i 5) ],
                  [
                    If
                      ( v "e" = i 1,
                        [ "acc" <-- (v "acc" + mem (v "base")) ],
                        [
                          If (v "e" = i 2,
                             [ "acc" <-- (v "acc" * i 2 % i 65536) ],
                             [ "acc" <-- (v "acc" - i 1) ]);
                        ] );
                  ] );
              (* string scan: trips 0..6 *)
              "p" <-- v "base";
              While (mem (v "p") <> i 0,
                [ "acc" <-- (v "acc" + i 1); "p" <-- (v "p" + i 1) ]);
            ];
          Return (Some (v "acc"));
        ];
    }

let doppler_gmti =
  let open Ast in
  Workload.make ~name:"doppler_GMTI"
    ~description:"complex multiply-accumulate over sample vectors; mul-heavy straight line"
    ~memory_words:4096
    ~init_memory:(fill_with 23 ~bound:128 ())
    {
      prog_name = "doppler_GMTI";
      params = [];
      body =
        [
          "re" <-- i 0;
          "im" <-- i 0;
          for_ "k" (i 0) (i 512)
            [
              "ar" <-- mem (v "k");
              "ai" <-- mem (i 1024 + v "k");
              "br" <-- mem (i 2048 + v "k");
              "bi" <-- mem (i 3072 + v "k");
              "re" <-- (v "re" + ((v "ar" * v "br") - (v "ai" * v "bi")));
              "im" <-- (v "im" + ((v "ar" * v "bi") + (v "ai" * v "br")));
            ];
          Return (Some (v "re" + v "im"));
        ];
    }

let init_equake_1 a =
  let rng = Rng.create 24 in
  for k = 0 to 1023 do
    a.(k) <- Rng.int rng 2048
  done;
  for k = 1024 to Array.length a - 1 do
    a.(k) <- Rng.int rng 64
  done

let equake_1 =
  let open Ast in
  Workload.make ~name:"equake_1"
    ~description:"sparse matrix-vector step: index load then data load (indirection chain)"
    ~memory_words:4096
    ~init_memory:init_equake_1
    {
      prog_name = "equake_1";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "k" (i 0) (i 900)
            [
              "idx" <-- mem (v "k" % i 1024);
              "acc" <-- (v "acc" + (mem (i 1024 + (v "idx" % i 3072)) * i 3));
            ];
          Return (Some (v "acc"));
        ];
    }

let fft2_gmti =
  let open Ast in
  Workload.make ~name:"fft2_GMTI"
    ~description:"radix-2 butterflies with a post-loop conditioning test (the head-dup merge case)"
    ~memory_words:2048
    ~init_memory:(fill_with 25 ~bound:512 ())
    {
      prog_name = "fft2_GMTI";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "k" (i 0) (i 256)
            [
              "a" <-- mem (v "k");
              "b" <-- mem (i 256 + v "k");
              Store (i 512 + v "k", v "a" + v "b");
              Store (i 768 + v "k", v "a" - v "b");
            ];
          (* post-conditioning loop with data-dependent trip *)
          "t" <-- mem (i 512);
          While (v "t" > i 0,
            [ "acc" <-- (v "acc" + v "t"); "t" <-- (v "t" >>> i 1) ]);
          for_ "k" (i 0) (i 512) [ "acc" <-- (v "acc" + mem (i 512 + v "k")) ];
          Return (Some (v "acc"));
        ];
    }

let fft4_gmti =
  let open Ast in
  Workload.make ~name:"fft4_GMTI"
    ~description:"radix-4 butterflies: larger loop body, fewer iterations"
    ~memory_words:2048
    ~init_memory:(fill_with 26 ~bound:512 ())
    {
      prog_name = "fft4_GMTI";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "k" (i 0) (i 128)
            [
              "a" <-- mem (v "k");
              "b" <-- mem (i 128 + v "k");
              "c" <-- mem (i 256 + v "k");
              "d" <-- mem (i 384 + v "k");
              "t0" <-- (v "a" + v "c");
              "t1" <-- (v "a" - v "c");
              "t2" <-- (v "b" + v "d");
              "t3" <-- (v "b" - v "d");
              Store (i 512 + v "k", v "t0" + v "t2");
              Store (i 640 + v "k", v "t1" + v "t3");
              Store (i 768 + v "k", v "t0" - v "t2");
              Store (i 896 + v "k", v "t1" - v "t3");
            ];
          for_ "k" (i 0) (i 512) [ "acc" <-- (v "acc" + mem (i 512 + v "k")) ];
          Return (Some (v "acc"));
        ];
    }

let forward_gmti =
  let open Ast in
  Workload.make ~name:"forward_GMTI"
    ~description:"FIR filter: outer loop with trip-8 inner for loop (front-end unroll target)"
    ~memory_words:2048
    ~init_memory:(fill_with 27 ~bound:64 ())
    {
      prog_name = "forward_GMTI";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "n" (i 0) (i 400)
            [
              "s" <-- i 0;
              for_ "t" (i 0) (i 8)
                [ "s" <-- (v "s" + (mem (v "n" + v "t") * mem (i 1024 + v "t"))) ];
              "acc" <-- (v "acc" + (v "s" >>> i 4));
            ];
          Return (Some (v "acc"));
        ];
    }

(* the paper's gzip_1: the whole inner-loop body fits one block after
   if-conversion + optimization, collapsing the block count *)
let gzip_1 =
  let open Ast in
  Workload.make ~name:"gzip_1"
    ~description:"longest-run scanner: small if/else diamond inside a hot while loop"
    ~memory_words:4096
    ~init_memory:(fun a ->
      let rng = Rng.create 28 in
      Array.iteri (fun k _ -> a.(k) <- Rng.int rng 3) a)
    {
      prog_name = "gzip_1";
      params = [];
      body =
        [
          "best" <-- i 0;
          "run" <-- i 0;
          "prev" <-- (i 0 - i 1);
          "p" <-- i 0;
          While
            ( v "p" < i 2000,
              [
                "c" <-- mem (v "p");
                If
                  ( v "c" = v "prev",
                    [ "run" <-- (v "run" + i 1) ],
                    [
                      If (v "run" > v "best", [ "best" <-- v "run" ], []);
                      "run" <-- i 0;
                    ] );
                "prev" <-- v "c";
                "p" <-- (v "p" + i 1);
              ] );
          Return (Some (v "best" + v "run" + v "prev"));
        ];
    }

let gzip_2 =
  let open Ast in
  Workload.make ~name:"gzip_2"
    ~description:"hash-chain probe: bounded while with an early-exit match test"
    ~memory_words:4096
    ~init_memory:(fun a ->
      let rng = Rng.create 29 in
      Array.iteri (fun k _ -> a.(k) <- Rng.int rng 2048) a)
    {
      prog_name = "gzip_2";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "q" (i 0) (i 300)
            [
              "chain" <-- mem (v "q");
              "tries" <-- i 0;
              While
                ( And (v "chain" <> i 0, v "tries" < i 8),
                  [
                    If (mem (v "chain" % i 4096) = v "q",
                       [ "acc" <-- (v "acc" + i 100); Break ], []);
                    "chain" <-- mem (i 2048 + (v "chain" % i 2048));
                    "tries" <-- (v "tries" + i 1);
                  ] );
              "acc" <-- (v "acc" + v "tries");
            ];
          Return (Some (v "acc"));
        ];
    }

let parser_1 =
  let open Ast in
  Workload.make ~name:"parser_1"
    ~description:"token loop with three rare (~1-3%) unpredictable branches guarding heavy work"
    ~memory_words:4096
    ~init_memory:(fill_with 30 ~bound:100000 ())
    {
      prog_name = "parser_1";
      params = [];
      body =
        [
          "acc" <-- i 0;
          for_ "k" (i 0) (i 1000)
            [
              "x" <-- mem (v "k" % i 4096);
              If (v "x" % i 97 = i 0,
                 [ "acc" <-- (v "acc" + (v "x" / i 7)) ], []);
              If (v "x" % i 89 = i 3,
                 [ "acc" <-- (v "acc" + ((v "x" * v "x") % i 1000)) ], []);
              If (v "x" % i 83 = i 7,
                 [ "acc" <-- (v "acc" - (v "x" / i 11)) ], []);
              "acc" <-- (v "acc" + (v "x" &&& i 255));
            ];
          Return (Some (v "acc"));
        ];
    }

let transpose_gmti =
  let open Ast in
  Workload.make ~name:"transpose_GMTI"
    ~description:"32x32 matrix transpose: perfect loop nest of loads and stores"
    ~memory_words:2304
    ~init_memory:(fill_with 31 ())
    {
      prog_name = "transpose_GMTI";
      params = [];
      body =
        [
          for_ "r" (i 0) (i 32)
            [
              for_ "c" (i 0) (i 32)
                [ Store (i 1024 + (v "c" * i 32) + v "r", mem ((v "r" * i 32) + v "c")) ];
            ];
          "acc" <-- i 0;
          for_ "k" (i 0) (i 1024) [ "acc" <-- (v "acc" + mem (i 1024 + v "k")) ];
          Return (Some (v "acc"));
        ];
    }

let twolf_1 =
  let open Ast in
  Workload.make ~name:"twolf_1"
    ~description:"placement cost scan: absolute differences with a rare best-update branch"
    ~memory_words:4096
    ~init_memory:(fill_with 32 ~bound:1024 ())
    {
      prog_name = "twolf_1";
      params = [];
      body =
        [
          "best" <-- i 1000000;
          "acc" <-- i 0;
          for_ "cell" (i 0) (i 700)
            [
              "x" <-- mem (v "cell");
              "y" <-- mem (i 1024 + v "cell");
              "dx" <-- (v "x" - v "y");
              If (v "dx" < i 0, [ "dx" <-- (i 0 - v "dx") ], []);
              "cost" <-- (v "dx" + (v "x" &&& i 15));
              If (v "cost" < v "best", [ "best" <-- v "cost" ], []);
              "acc" <-- (v "acc" + v "cost");
            ];
          Return (Some (v "acc" + v "best"));
        ];
    }

let twolf_3 =
  let open Ast in
  Workload.make ~name:"twolf_3"
    ~description:"swap evaluation: two moderately-biased branches and an accumulation"
    ~memory_words:4096
    ~init_memory:(fill_with 33 ~bound:512 ())
    {
      prog_name = "twolf_3";
      params = [];
      body =
        [
          "gain" <-- i 0;
          for_ "s" (i 0) (i 800)
            [
              "a" <-- mem (v "s" % i 2048);
              "b" <-- mem (i 2048 + (v "s" % i 2048));
              "delta" <-- (v "a" - v "b");
              If
                ( v "delta" > i 0,
                  [ "gain" <-- (v "gain" + v "delta") ],
                  [
                    If (v "delta" < i (-64),
                       [ "gain" <-- (v "gain" - i 1) ], []);
                  ] );
            ];
          Return (Some (v "gain"));
        ];
    }

(** All 24 microbenchmarks, in the paper's Table 1 order. *)
let all : Workload.t list =
  [
    ammp_1;
    ammp_2;
    art_1;
    art_2;
    art_3;
    bzip2_1;
    bzip2_2;
    bzip2_3;
    dct8x8;
    dhry;
    doppler_gmti;
    equake_1;
    fft2_gmti;
    fft4_gmti;
    forward_gmti;
    gzip_1;
    gzip_2;
    matrix_1;
    parser_1;
    sieve;
    transpose_gmti;
    twolf_1;
    twolf_3;
    vadd;
  ]

(* ---- store-dense stress kernels (not part of the 24) ------------------- *)

(* Dense store runs drive a merged-block estimate into the 32-slot
   load/store budget well before the 128-instruction budget — the regime
   where the constraint pre-filter's sound store-count floor can prove a
   merge oversized without trialling it.  The shipped 24 kernels never
   reach that regime (their rejects are all instruction-budget driven,
   see DESIGN.md §12), so these ride along in [bench formation] and in
   the pre-filter regression test rather than in [all]. *)
let store_burst name ~stores ~trip seed =
  let open Ast in
  Workload.make ~name
    ~description:
      (Printf.sprintf
         "%d stores per iteration, trip %d; unrolled estimates hit the \
          load/store budget, exercising the constraint pre-filter"
         stores trip)
    ~memory_words:8192
    ~init_memory:(fill_with seed ())
    {
      prog_name = name;
      params = [];
      body =
        [
          for_ "k" (i 0) (i trip)
            (List.init stores (fun j ->
                 Store (i (Int.mul 256 j) + v "k", v "k" + i j)));
          Return (Some (v "k"));
        ];
    }

(** Store-dense pre-filter stress kernels; separate from {!all} so the
    24-kernel tables stay exactly the paper's set. *)
let store_dense : Workload.t list =
  [
    store_burst "fill12" ~stores:12 ~trip:200 13;
    store_burst "fill16" ~stores:16 ~trip:150 17;
  ]

let by_name name =
  List.find_opt (fun w -> w.Workload.name = name) (all @ store_dense)
