(* Block splitting: divide a block's instruction sequence in two, the
   first half ending in an unconditional jump to the second, which keeps
   all original exits.  Program order — and therefore semantics — is
   preserved; values crossing the split point become block-boundary
   values.

   Two users: reverse if-conversion in the back end (paper Section 6)
   splits blocks that violate bank budgets after register allocation, and
   the optional block-splitting extension of hyperblock formation (paper
   Section 9) splits a too-large merge candidate so its first part can
   still be merged. *)

open Trips_ir

(** Split block [id] at instruction index [at] (defaults to the middle).
    Returns the id of the new second block, or [None] when either side
    would be empty. *)
let split_block ?at cfg id : int option =
  let b = Cfg.block cfg id in
  let n = Block.size b in
  let cut = match at with Some k -> k | None -> n / 2 in
  if cut <= 0 || cut >= n then None
  else begin
    let first = List.filteri (fun k _ -> k < cut) b.Block.instrs in
    let second = List.filteri (fun k _ -> k >= cut) b.Block.instrs in
    let new_id = Cfg.fresh_block_id cfg in
    Cfg.set_block cfg (Block.make new_id second b.Block.exits);
    Cfg.set_block cfg
      (Block.make id first
         [ { Block.eguard = None; target = Block.Goto new_id } ]);
    if Lineage.enabled () then begin
      (* both halves descend from the same formation history *)
      Cfg.copy_decisions cfg ~src:id ~dst:new_id;
      let step = List.length (Cfg.decisions cfg id) + 1 in
      Cfg.record_decision cfg new_id
        (Lineage.decision ~step ~kind:"split" ~src:id)
    end;
    Some new_id
  end
