(* The merge primitive: if-convert block S into hyperblock HB.

   [combine cfg ~hb ~s ~s_label] returns a new block (with HB's id) in
   which S's instructions follow HB's, guarded by the predicate under
   which HB branched to [s_label].  HB's exits that targeted [s_label] are
   consumed; S's exits are appended with their guards conjoined with the
   entry predicate.  All three duplication flavors reduce to this single
   primitive applied to a copy of S:

   - unique predecessor: merge S itself, then delete S;
   - tail duplication / head-duplication peeling: merge a fresh copy of S
     whose exits still name the *original* targets (so a self loop B->B
     copied as B' exits to B, which is precisely Figure 3);
   - head-duplication unrolling: [s_label] is HB's own id and S is a copy
     of the saved one-iteration loop body (Figure 4).

   Correctness subtleties handled here:

   - *Entry predicate.*  If every HB exit targets S the entry predicate is
     trivially true.  A single guarded exit contributes its guard; several
     exits targeting S are OR-ed together (negations materialize as
     [xor r, 1], which is sound because branch guards always hold 0/1 by
     construction).

   - *Guard conjunction.*  An S instruction already guarded by [q] becomes
     guarded by a fresh register [p AND q].  The conjunction instructions
     are emitted immediately before the instruction that needs them and
     cached; the cache is invalidated when S redefines a register it
     depends on (which happens when unrolling merges a copy that reuses
     the same register names).  These extra unpredicated instructions are
     exactly the "additional predication" cost the paper ascribes to
     duplication on a dataflow machine.

   - *Exit-guard snapshots.*  If S redefines a register read by one of
     HB's *remaining* exit guards (e.g. a loop condition recomputed by the
     next iteration), the exit would observe the new value even though it
     logically belongs to the pre-merge path.  We snapshot such registers
     into fresh copies before S's instructions and rewrite the kept exits
     to read the snapshots. *)

open Trips_ir

exception Cannot_combine of string

type stats = { combine_instrs : int }
(** How many helper instructions (negations, disjunctions, conjunctions,
    snapshots) the merge had to add. *)

let is_goto_to label (e : Block.exit_) =
  match e.Block.target with Block.Goto t -> t = label | Block.Ret _ -> false

(* Registers read by an exit: guard register and register return operand. *)
let exit_regs (e : Block.exit_) =
  let g = match e.Block.eguard with Some g -> [ g.Instr.greg ] | None -> [] in
  match e.Block.target with
  | Block.Ret (Some (Instr.Reg r)) -> r :: g
  | Block.Ret _ | Block.Goto _ -> g

let combine cfg ~(hb : Block.t) ~(s : Block.t) ~s_label : Block.t * stats =
  let entry_exits, kept_exits = List.partition (is_goto_to s_label) hb.Block.exits in
  if entry_exits = [] then
    raise
      (Cannot_combine
         (Fmt.str "b%d has no exit to b%d" hb.Block.id s_label));
  let added = ref 0 in
  (* Predication machinery (negations, disjunctions, conjunctions,
     snapshots) is billed to the block whose merge required it. *)
  let helper_lineage =
    { Lineage.origin = s_label; placed = Lineage.Helper "predication" }
  in
  let fresh_instr op =
    incr added;
    let i = Cfg.instr cfg op in
    if Lineage.enabled () then Instr.with_lineage helper_lineage i else i
  in
  (* Instructions prefixed between HB's body and S's body. *)
  let prefix = ref [] in
  let emit_prefix op =
    let i = fresh_instr op in
    prefix := i :: !prefix;
    match Instr.defs i with [ d ] -> d | _ -> assert false
  in
  (* Entry predicate, normalized to a positive register. *)
  let entry_pred =
    if kept_exits = [] then None
    else begin
      let guard_of e =
        match e.Block.eguard with
        | Some g -> g
        | None ->
          (* an unguarded exit always fires, so guarded siblings would be
             dead; such blocks are rejected before merging *)
          raise
            (Cannot_combine
               (Fmt.str "b%d mixes an unguarded exit to b%d with other exits"
                  hb.Block.id s_label))
      in
      match List.map guard_of entry_exits with
      | [ g ] -> Some g
      | gs ->
        let positive g =
          if g.Instr.sense then g.Instr.greg
          else
            emit_prefix
              (Instr.Binop
                 (Opcode.Xor, Cfg.fresh_reg cfg, Instr.Reg g.Instr.greg, Instr.Imm 1))
        in
        let rec fold = function
          | [] -> assert false
          | [ r ] -> r
          | a :: rest ->
            let b = fold rest in
            emit_prefix
              (Instr.Binop (Opcode.Or, Cfg.fresh_reg cfg, Instr.Reg a, Instr.Reg b))
        in
        Some { Instr.greg = fold (List.map positive gs); sense = true }
    end
  in
  (* Snapshot registers that S redefines but kept exits still read. *)
  let s_defs =
    List.fold_left
      (fun acc i ->
        List.fold_left (fun acc r -> IntSet.add r acc) acc (Instr.defs i))
      IntSet.empty s.Block.instrs
  in
  (* If S itself redefines the entry-predicate register (a loop body
     recomputing its own exit test during unrolling), every use of the
     entry predicate must read the entry-time value: snapshot it. *)
  let entry_pred =
    match entry_pred with
    | Some g when IntSet.mem g.Instr.greg s_defs ->
      let snap = Cfg.fresh_reg cfg in
      let i = fresh_instr (Instr.Mov (snap, Instr.Reg g.Instr.greg)) in
      prefix := i :: !prefix;
      Some { g with Instr.greg = snap }
    | other -> other
  in
  let kept_reads =
    List.fold_left
      (fun acc e ->
        List.fold_left (fun acc r -> IntSet.add r acc) acc (exit_regs e))
      IntSet.empty kept_exits
  in
  let clobbered = IntSet.inter s_defs kept_reads in
  let snapshot_map =
    IntSet.fold
      (fun r acc ->
        let r' = Cfg.fresh_reg cfg in
        let i = fresh_instr (Instr.Mov (r', Instr.Reg r)) in
        prefix := i :: !prefix;
        IntMap.add r r' acc)
      clobbered IntMap.empty
  in
  let rename_kept r = IntMap.find_or ~default:r r snapshot_map in
  let kept_exits =
    List.map
      (fun (e : Block.exit_) ->
        let eguard =
          Option.map
            (fun g -> { g with Instr.greg = rename_kept g.Instr.greg })
            e.Block.eguard
        in
        let target =
          match e.Block.target with
          | Block.Ret (Some (Instr.Reg r)) -> Block.Ret (Some (Instr.Reg (rename_kept r)))
          | t -> t
        in
        { Block.eguard; target })
      kept_exits
  in
  (* Conjunction machinery for S's instruction guards and exit guards.
     [pos_cache] maps a (register, sense) pair to a register holding its
     positive 0/1 form; [conj_cache] maps (entry-pred, guard) pairs to the
     conjunction register.  Both are invalidated when S redefines an
     involved register. *)
  let pos_cache : (int * bool, int) Hashtbl.t = Hashtbl.create 8 in
  let conj_cache : (int * bool, int) Hashtbl.t = Hashtbl.create 8 in
  let entry_pos =
    (* computed once, in the prefix, so it snapshots the entry-time value
       even if S later redefines the guard register *)
    match entry_pred with
    | None -> None
    | Some g when g.Instr.sense -> Some g.Instr.greg
    | Some g ->
      Some
        (emit_prefix
           (Instr.Binop
              (Opcode.Xor, Cfg.fresh_reg cfg, Instr.Reg g.Instr.greg, Instr.Imm 1)))
  in
  (* Walk S's instructions, conjoining guards; [out] is built reversed. *)
  let out = ref [] in
  let emit_inline op =
    let i = fresh_instr op in
    out := i :: !out;
    match Instr.defs i with [ d ] -> d | _ -> assert false
  in
  let positive_inline g =
    if g.Instr.sense then g.Instr.greg
    else
      match Hashtbl.find_opt pos_cache (g.Instr.greg, g.Instr.sense) with
      | Some r -> r
      | None ->
        let r =
          emit_inline
            (Instr.Binop
               (Opcode.Xor, Cfg.fresh_reg cfg, Instr.Reg g.Instr.greg, Instr.Imm 1))
        in
        Hashtbl.add pos_cache (g.Instr.greg, g.Instr.sense) r;
        r
  in
  let conjoin q =
    match entry_pos with
    | None -> Some q
    | Some p -> (
      match Hashtbl.find_opt conj_cache (q.Instr.greg, q.Instr.sense) with
      | Some r -> Some { Instr.greg = r; sense = true }
      | None ->
        let qpos = positive_inline q in
        let r =
          emit_inline
            (Instr.Binop
               (Opcode.And, Cfg.fresh_reg cfg, Instr.Reg p, Instr.Reg qpos))
        in
        Hashtbl.add conj_cache (q.Instr.greg, q.Instr.sense) r;
        Some { Instr.greg = r; sense = true })
  in
  let invalidate r =
    Hashtbl.filter_map_inplace
      (fun (src, _) v -> if src = r then None else Some v)
      pos_cache;
    Hashtbl.filter_map_inplace
      (fun (src, _) v -> if src = r then None else Some v)
      conj_cache
  in
  List.iter
    (fun (i : Instr.t) ->
      let guard =
        match (entry_pred, i.Instr.guard) with
        | None, g -> g
        | (Some _ as p), None -> p
        | Some _, Some q -> conjoin q
      in
      out := { i with Instr.guard } :: !out;
      (* the defs of [i] may shadow guard registers used in caches; also
         the snapshot registers are fresh so never collide *)
      List.iter invalidate (Instr.defs i))
    s.Block.instrs;
  (* S's exits, guarded by the conjunction of the entry predicate with
     their own guard, evaluated with end-of-block values. *)
  let s_exits =
    List.map
      (fun (e : Block.exit_) ->
        let eguard =
          match (entry_pred, e.Block.eguard) with
          | None, g -> g
          | (Some _ as p), None -> p
          | Some _, Some q -> conjoin q
        in
        { e with Block.eguard })
      s.Block.exits
  in
  let instrs = hb.Block.instrs @ List.rev !prefix @ List.rev !out in
  let exits = kept_exits @ s_exits in
  (Block.make hb.Block.id instrs exits, { combine_instrs = !added })
