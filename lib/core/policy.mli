(** Block-selection policies for convergent hyperblock formation
    (the paper's [SelectBest], Section 5).

    - breadth-first (the best EDGE heuristic in Table 2) merges
      shallowest candidates first and prefers candidates whose
      predecessors are all already merged, eliminating conditional
      branches without needless duplication;
    - depth-first follows the most frequent path and skips candidates
      rarer than a threshold — which forces the pathological tail
      duplications the paper reports for bzip2_3;
    - the VLIW heuristic (Mahlke et al.) pre-analyzes paths below the
      seed, scoring them by frequency, dependence height and resource
      consumption, and only admits blocks on sufficiently good paths. *)

open Trips_ir
open Trips_profile

type vliw_params = {
  max_paths : int;
  max_path_blocks : int;
  inclusion_ratio : float;  (** admit paths scoring >= ratio * best *)
  dep_height_weight : float;
  resource_weight : float;
}

val default_vliw : vliw_params

type heuristic =
  | Breadth_first
  | Depth_first of { min_merge_prob : float }
  | Vliw of vliw_params

type config = {
  heuristic : heuristic;
  iterate_opt : bool;  (** run scalar optimization inside the merge loop *)
  enable_head_dup : bool;  (** allow peeling and unrolling *)
  enable_tail_dup : bool;
  enable_block_splitting : bool;
      (** Section 9 extension: when a unique-predecessor merge fails only
          on size, split the candidate and merge its first half *)
  max_tail_dup_instrs : int;  (** refuse to duplicate larger blocks *)
  max_unroll : int;  (** iterations appended per loop *)
  max_peel : int;  (** iterations peeled per loop *)
  peel_coverage : float;
      (** peel iteration k only if P(trips >= k) reaches this *)
  slack : int;  (** instruction headroom reserved for spill code *)
  limits : Constraints.limits;
}

val edge_default : config
(** The paper's best-performing EDGE configuration: greedy breadth-first
    merging with head duplication and iterative optimization. *)

type candidate = {
  block_id : int;
  depth : int;  (** merge distance from the seed *)
  prob : float;  (** estimated path probability from the seed *)
}

(** Candidate pool keeping the most promising entry per block id.
    Indexed mode ([create ~indexed:true]) is Hashtbl-backed with O(1)
    insert/replace; Listed mode replicates the historical O(n) list pool
    and backs the [TRIPS_NO_CAND_POOL] escape hatch.  Selector decisions
    never depend on container iteration order (all comparators are
    strict total orders with a block-id tie-break), so traces are
    identical in both modes and across [--jobs] settings. *)
module Pool : sig
  type t

  val create : indexed:bool -> t

  val add : t -> candidate -> unit
  (** Keep the better of the existing and new entry for the block id:
      strictly shallower, or same depth and strictly more probable,
      replaces; ties keep the incumbent. *)

  val add_list : t -> candidate list -> unit
  val remove : t -> int -> unit

  val retain : t -> (candidate -> bool) -> unit
  (** Drop every candidate failing the predicate. *)

  val fold : t -> ('a -> candidate -> 'a) -> 'a -> 'a

  val to_sorted_list : t -> candidate list
  (** Remaining candidates in ascending block-id order — the canonical
      deterministic drain order for budget-exhaustion trace events. *)
end

type selector = {
  select : Pool.t -> candidate option;
      (** Pick the next candidate to merge, removing it from the pool;
          vetoed candidates are dropped from the pool permanently. *)
}

val peek : selector -> Pool.t -> int -> candidate list
(** The next [n] candidates in exact selection order, without consuming
    them: each is selected (which also applies the selector's permanent
    vetoes) and then re-added.  [Pool.add]'s keep-best rule restores the
    pool's contents exactly, so subsequent real selections repeat this
    order.  Formation peeks the candidates it is about to speculate
    on. *)

val make_selector :
  ?preds:(int -> int list) ->
  config ->
  Cfg.t ->
  Profile.t ->
  seed:int ->
  selector
(** Build the selection function for one ExpandBlock run; the VLIW
    heuristic performs its path analysis here.  [preds] supplies a
    block's predecessor list (defaults to {!Cfg.predecessors}, which
    rebuilds the whole predecessor map per call — formation passes its
    edge-versioned cached map instead). *)
