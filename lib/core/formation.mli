(** Convergent hyperblock formation — the paper's core contribution
    (Figure 5).

    {!expand_block} grows a seed block by repeatedly selecting a
    candidate successor (policy-driven), trial-merging it, optimizing the
    merged block when configured to, and committing only when the TRIPS
    structural constraints still hold.  [MergeBlocks]'s case split:

    - unique predecessor: plain merge, the successor disappears;
    - self back edge: unrolling by head duplication — a copy of the
      {e saved one-iteration body} is merged, so each unroll appends one
      iteration rather than doubling (Section 4.1);
    - loop header over a non-back edge: peeling by head duplication;
    - otherwise: classical tail duplication.

    Candidates that failed only because the block was full are retried
    after later merges and optimizations shrink it — the convergence the
    paper's title refers to. *)

open Trips_ir
open Trips_profile

type stats = {
  mutable merges : int;  (** m: successful merges of any kind *)
  mutable tail_dups : int;  (** t *)
  mutable unrolls : int;  (** u *)
  mutable peels : int;  (** p *)
  mutable attempts : int;
  mutable size_rejections : int;
  mutable combine_failures : int;
      (** structural [Cannot_combine] rejections — never retried *)
  mutable block_splits : int;  (** Section 9 extension, when enabled *)
}

val empty_stats : unit -> stats

val pp_stats : Format.formatter -> stats -> unit
(** Prints the paper's [m/t/u/p] quadruple. *)

val publish_metrics : stats -> unit
(** Export the counters into {!Trips_obs.Metrics} under
    [formation.*] names.  Called by {!run}; exposed for drivers that
    invoke {!merge_blocks} directly. *)

type merge_kind = Simple | Unroll | Peel | Tail_dup

val kind_name : merge_kind -> string
(** Lower-case stable name used in trace events. *)

type fast_paths = {
  prefilter : bool;  (** constraint lower-bound pre-filter *)
  incr_liveness : bool;  (** [Liveness.update] instead of full compute *)
  loop_reuse : bool;
      (** loop forest / predecessor map keyed by edge version *)
  cand_pool : bool;  (** indexed candidate pool *)
  trial_cache : bool;  (** versioned trial-verdict cache *)
  spec_trials : bool;  (** speculative parallel trials feeding the cache *)
}
(** Which formation fast paths are enabled; each is read at {!make} from
    its own [TRIPS_NO_PREFILTER] / [TRIPS_NO_INCR_LIVENESS] /
    [TRIPS_NO_LOOP_REUSE] / [TRIPS_NO_CAND_POOL] / [TRIPS_NO_TRIAL_CACHE]
    / [TRIPS_NO_SPEC_TRIALS] escape hatch (any non-empty value disables).
    All are output-invariant: traces, stats and the final CFG are
    byte-identical either way. *)

type perf_counters = {
  mutable prefilter_hits : int;
  mutable live_incremental : int;
  mutable loops_reuse : int;
  mutable trials_spec : int;  (** speculative trials submitted *)
  mutable trials_cached : int;  (** verdicts served from the cache *)
  mutable trials_wasted : int;  (** speculative trials never served *)
}
(** How often each fast path fired; exported by {!run} as the
    [formation.prefilter.hits], [formation.liveness.incremental],
    [formation.loops.reuse] and [formation.trials.*] metrics.  Every
    speculative trial ends served or wasted, so
    [trials_spec = trials_cached + trials_wasted] after {!run}. *)

type state = {
  cfg : Cfg.t;
  profile : Profile.t;
  config : Policy.config;
  stats : stats;
  finalized : (int, unit) Hashtbl.t;
  saved_bodies : (int, Block.t) Hashtbl.t;
  peels_done : (int, int) Hashtbl.t;
  unrolls_done : (int, int) Hashtbl.t;
  mutable version : int;  (** bumped on every CFG change *)
  mutable commit_epoch : int;
      (** bumped only at commit points (merge install, split, prune);
          everything a trial reads is constant within one epoch *)
  mutable edge_version : int;
      (** bumped only when a successor list may have changed *)
  mutable loops_cache : (int * int * Trips_analysis.Loops.t) option;
  mutable preds_cache : (int * IntSet.t IntMap.t) option;
  mutable live_cache : (int * Trips_analysis.Liveness.t) option;
  mutable live_dirty : IntSet.t;
      (** blocks edited since [live_cache] was solved *)
  live_gk : Trips_analysis.Liveness.gk_cache option;
      (** gen/kill memo reused across liveness recomputations; [None] when
          disabled via the [TRIPS_NO_LIVENESS_MEMO] environment variable *)
  floors : (int, Block.t * Constraints.floor) Hashtbl.t;
  body_floors : (int, Block.t * Constraints.floor) Hashtbl.t;
  fast : fast_paths;
  perf : perf_counters;
}

val make : Policy.config -> Cfg.t -> Profile.t -> state

(** {2 Speculation scheduler}

    Formation cannot depend on the harness, so the worker pool is
    injected: {!Trips_harness.Engine.formation_scheduler} builds a
    {!scheduler} over a resident pool and the driver installs it with
    {!set_scheduler}.  With none installed (the default), formation
    never speculates and pays zero overhead. *)

type spec_task = {
  cancel : unit -> unit;
      (** best-effort: a task not yet started never runs; one already
          running completes and is ignored *)
  join : unit -> unit;
      (** wait for completion (or cancellation); establishes the
          happens-before edge on the thunk's writes *)
}

type scheduler = { spawn : (unit -> unit) -> spec_task }

val inline_scheduler : scheduler
(** Runs each thunk immediately on the calling domain: speculation
    without parallelism, for tests and single-core fallbacks. *)

val set_scheduler : scheduler option -> unit
(** Install (or clear) the process-wide speculation scheduler. *)

val set_spec_trials : int -> unit
(** How many pool candidates to trial speculatively while the head
    candidate is evaluated (the [--spec-trials K] flag; default 4;
    clamped at 0, which disables speculation). *)

val classify : ?hb:Block.t -> state -> hb_id:int -> s_id:int -> merge_kind option
(** [LegalMerge] plus the Figure 5 case split; [None] rejects the merge.
    [hb] may pass the already-fetched hyperblock record. *)

type merge_outcome =
  | Success of Constraints.estimate
  | Structural_failure of string
      (** the combiner raised [Cannot_combine]: the merge can never be
          expressed, so the candidate must not be retried *)
  | Size_rejected of Constraints.estimate
      (** merged block exceeded the TRIPS limits; retryable once later
          merges/optimizations shrink the block *)

val chaos_combine_failure :
  (hb_id:int -> s_id:int -> kind:merge_kind -> bool) option ref
(** Test-only fault injection: when set, a merge for which the hook
    returns [true] fails as if [Combine] raised [Cannot_combine],
    exercising the structural-failure rollback paths.  Reset to [None]
    after use. *)

val prefilter_audit :
  (bound:Constraints.estimate -> est:Constraints.estimate -> unit) option ref
(** Test-only soundness audit: when set, the constraint pre-filter never
    shortcuts; every attempt runs the full trial and the hook receives
    the pre-filter lower bound alongside the true post-optimization
    estimate, so tests can assert [bound <= est] fieldwise for every
    attempted merge.  Reset to [None] after use. *)

val merge_blocks :
  ?depth:int ->
  ?prob:float ->
  ?hb:Block.t ->
  state ->
  hb_id:int ->
  s_id:int ->
  kind:merge_kind ->
  merge_outcome
(** [MergeBlocks]: pre-filter against the additive size lower bound,
    then trial-merge, optionally optimize, constraint-check; commits on
    success and rolls back on failure — including the saved
    one-iteration body and the CFG's fresh-id counters, so a failed
    attempt leaves no hidden state behind.  [depth]/[prob] only annotate
    the trace event; [hb] may pass the already-fetched hyperblock
    record. *)

val expand_block : state -> int -> unit
(** [ExpandBlock]: grow the hyperblock seeded at a block until no
    candidate fits. *)

val run : Policy.config -> Cfg.t -> Profile.t -> stats
(** Form hyperblocks over the whole function, hottest seed first
    (profiled execution count), treating formed blocks as final.
    Prunes unreachable blocks and validates the CFG. *)
