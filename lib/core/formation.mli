(** Convergent hyperblock formation — the paper's core contribution
    (Figure 5).

    {!expand_block} grows a seed block by repeatedly selecting a
    candidate successor (policy-driven), trial-merging it, optimizing the
    merged block when configured to, and committing only when the TRIPS
    structural constraints still hold.  [MergeBlocks]'s case split:

    - unique predecessor: plain merge, the successor disappears;
    - self back edge: unrolling by head duplication — a copy of the
      {e saved one-iteration body} is merged, so each unroll appends one
      iteration rather than doubling (Section 4.1);
    - loop header over a non-back edge: peeling by head duplication;
    - otherwise: classical tail duplication.

    Candidates that failed only because the block was full are retried
    after later merges and optimizations shrink it — the convergence the
    paper's title refers to. *)

open Trips_ir
open Trips_profile

type stats = {
  mutable merges : int;  (** m: successful merges of any kind *)
  mutable tail_dups : int;  (** t *)
  mutable unrolls : int;  (** u *)
  mutable peels : int;  (** p *)
  mutable attempts : int;
  mutable size_rejections : int;
  mutable block_splits : int;  (** Section 9 extension, when enabled *)
}

val empty_stats : unit -> stats

val pp_stats : Format.formatter -> stats -> unit
(** Prints the paper's [m/t/u/p] quadruple. *)

type merge_kind = Simple | Unroll | Peel | Tail_dup

type state = {
  cfg : Cfg.t;
  profile : Profile.t;
  config : Policy.config;
  stats : stats;
  finalized : (int, unit) Hashtbl.t;
  saved_bodies : (int, Block.t) Hashtbl.t;
  peels_done : (int, int) Hashtbl.t;
  unrolls_done : (int, int) Hashtbl.t;
  mutable version : int;
  mutable loops_cache : (int * Trips_analysis.Loops.t) option;
  mutable live_cache : (int * Trips_analysis.Liveness.t) option;
  live_gk : Trips_analysis.Liveness.gk_cache option;
      (** gen/kill memo reused across liveness recomputations; [None] when
          disabled via the [TRIPS_NO_LIVENESS_MEMO] environment variable *)
}

val make : Policy.config -> Cfg.t -> Profile.t -> state

val classify : state -> hb_id:int -> s_id:int -> merge_kind option
(** [LegalMerge] plus the Figure 5 case split; [None] rejects the merge. *)

type merge_outcome = Success | Failure

val merge_blocks :
  state -> hb_id:int -> s_id:int -> kind:merge_kind -> merge_outcome
(** [MergeBlocks]: trial-merge, optionally optimize, constraint-check;
    commits on success and rolls back on failure. *)

val expand_block : state -> int -> unit
(** [ExpandBlock]: grow the hyperblock seeded at a block until no
    candidate fits. *)

val run : Policy.config -> Cfg.t -> Profile.t -> stats
(** Form hyperblocks over the whole function, hottest seed first
    (profiled execution count), treating formed blocks as final.
    Prunes unreachable blocks and validates the CFG. *)
