(** TRIPS structural-constraint checking with back-end size estimation.

    Hyperblock formation runs long before register allocation and fanout
    insertion, so [LegalBlock] must {e estimate} the final block size
    (paper Section 6): besides the instructions currently in the block it
    accounts for one branch per exit, fanout movs for over-subscribed
    values, and null writes for the constant-output constraint — plus the
    register-read, register-write and load/store-identifier budgets. *)

open Trips_ir

type estimate = {
  instrs : int;  (** regular-instruction budget consumed, incl. overheads *)
  loads_stores : int;
  reads : int;  (** architectural register reads (block inputs) *)
  writes : int;  (** architectural register writes (block outputs) *)
}

type limits = {
  max_instrs : int;
  max_load_store : int;
  max_reads : int;
  max_writes : int;
}

val trips_limits : limits
(** The TRIPS prototype's 128/32/32/32. *)

val fanout_movs : int -> int
(** Extra movs needed to fan a value out to the given consumer count. *)

val estimate : Block.t -> live_out:IntSet.t -> estimate

type floor
(** Per-block ingredients of {!merge_lower_bound}: the instruction,
    store and store-input counts that no optimizer pass removes.  Cheap
    to compute and valid for as long as the same block record is
    installed, so formation caches one per block id. *)

val block_floor : Block.t -> floor

val merge_lower_bound : hb:floor -> s:floor -> estimate
(** Lower bound on the true {!estimate} of merging [s] into [hb] after
    optimization — never larger than it (audited in tests), so a limit
    check that already fails on the bound can skip the trial merge
    without changing formation's decisions. *)

val legal : ?slack:int -> limits -> estimate -> bool
(** Does the estimate fit, with [slack] instruction slots held back for
    register-allocator spill code? *)

val utilization : limits -> estimate -> float
(** Fullness as a fraction of the instruction budget. *)

val pp_estimate : Format.formatter -> estimate -> unit
