(* TRIPS structural-constraint checking with back-end size estimation.

   Hyperblock formation runs long before register allocation and fanout
   insertion, so [LegalBlock] must *estimate* the final block size
   (paper Section 6): besides the instructions currently in the block it
   accounts for
   - one branch per exit (TRIPS branches are ordinary instructions);
   - fanout movs for values with more consumers than an instruction can
     name as targets;
   - null writes needed to satisfy the constant-output constraint on
     output registers that are only written under a predicate;
   plus the register-read, register-write and load/store-identifier
   budgets. *)

open Trips_ir
open Trips_analysis

type estimate = {
  instrs : int;  (* regular-instruction budget consumed, incl. overheads *)
  loads_stores : int;
  reads : int;  (* architectural register reads (block inputs) *)
  writes : int;  (* architectural register writes (block outputs) *)
}

type limits = {
  max_instrs : int;
  max_load_store : int;
  max_reads : int;
  max_writes : int;
}

let trips_limits =
  {
    max_instrs = Machine.max_instrs;
    max_load_store = Machine.max_load_store;
    max_reads = Machine.max_reads;
    max_writes = Machine.max_writes;
  }

(* Extra movs needed to fan a value out to [consumers] targets when one
   instruction can name at most [Machine.max_targets]: each mov consumes
   one target slot and provides [max_targets]. *)
let fanout_movs consumers =
  if consumers <= Machine.max_targets then 0
  else consumers - Machine.max_targets

(** Estimate the resources block [b] will occupy after the back end runs,
    given the registers live out of it. *)
let estimate (b : Block.t) ~live_out : estimate =
  let defs = Block.defs b in
  let outputs = IntSet.inter defs live_out in
  let reads = IntSet.cardinal (Liveness.block_inputs b ~live_out) in
  let writes = IntSet.cardinal outputs in
  let loads_stores = Block.num_load_store b in
  (* consumer counts per defined register: operand occurrences + exit
     reads + one output-write slot if live out *)
  let consumers = Hashtbl.create 32 in
  let bump r n =
    if IntSet.mem r defs then
      Hashtbl.replace consumers r (n + Option.value ~default:0 (Hashtbl.find_opt consumers r))
  in
  List.iter
    (fun i -> List.iter (fun r -> bump r 1) (Instr.uses i))
    b.Block.instrs;
  IntSet.iter (fun r -> bump r 1) (Block.exit_uses b);
  IntSet.iter (fun r -> bump r 1) outputs;
  let fanout =
    Hashtbl.fold (fun _ n acc -> acc + fanout_movs n) consumers 0
  in
  (* null writes: an output register all of whose definitions are guarded
     needs a predicated-complement null write so the block always emits
     the same number of outputs *)
  let unconditional = Block.must_defs b in
  let nullws =
    IntSet.cardinal (IntSet.diff outputs unconditional)
  in
  let branches = List.length b.Block.exits in
  {
    instrs = Block.size b + branches + fanout + nullws;
    loads_stores;
    reads;
    writes;
  }

(* ---- pre-filter lower bounds (paper Section 5 / DESIGN.md §12) -------- *)

(* Formation trials are expensive (combine + install + liveness fixpoint
   + optimizer + rollback), so the hot loop wants to reject hopeless
   candidates from a cheap, per-block cacheable *lower bound* on the
   merged estimate.  The bound must never exceed the true
   post-optimization estimate — then a fast reject fires only where the
   slow path would also have rejected and formation output is unchanged.

   Derivation (DESIGN.md §12).  [Combine.combine] emits every
   instruction of HB verbatim and every instruction of S with only its
   *guard* replaced; operand registers are never renamed.  The floor
   therefore keeps only what the optimizer (local VN, predicate-opt,
   DCE) provably cannot remove:

   - stores: DCE keeps side effects, predicate-opt never strips a
     store's guard, and local VN deletes a store only when its guard is
     proven constant-false — which requires a constant-false branch
     guard the exit simplifier would already have pruned (audited by
     [Formation.prefilter_audit] over the test workloads);
   - at least one exit always survives (+1 branch instruction);
   - register reads: a store *operand* register (value or address — not
     the guard, which combine rewrites) with no definition in either
     block stays a block input: VN canonicalizes operands toward the
     oldest register holding a value, which for a block input is the
     input register itself, and guarded-copy substitution only replaces
     registers defined by in-block movs.

   Everything else — arithmetic (cross-block CSE), compares (the merged
   branch test), movs (copy propagation), loads (store-to-load
   forwarding), logical ops (predicate simplification), fanout movs,
   null writes, register writes — can in principle be optimized to
   nothing, so it contributes zero.  The result is deliberately weak but
   sound; it fires hardest exactly where trials are most wasted: unroll
   and retry-pool attempts on store-carrying loops, where stores
   accumulate additively and are never optimized away. *)

type floor = {
  fl_stores : int;
  fl_store_inputs : IntSet.t;
      (* store operand registers defined nowhere in the block *)
  fl_defs : IntSet.t;  (* every register the block may define *)
}

(* Value and address operand registers of a store; guard registers are
   excluded because combine replaces guards wholesale. *)
let store_operand_regs (i : Instr.t) =
  match i.Instr.op with
  | Instr.Store (v, a, _) ->
    List.filter_map Instr.reg_of_operand [ v; a ]
  | _ -> []

(** Per-block ingredients of {!merge_lower_bound}; cheap to compute and
    cacheable per block record. *)
let block_floor (b : Block.t) : floor =
  let defs = Block.defs b in
  let store_inputs =
    List.fold_left
      (fun acc (i : Instr.t) ->
        List.fold_left
          (fun acc r -> if IntSet.mem r defs then acc else IntSet.add r acc)
          acc (store_operand_regs i))
      IntSet.empty b.Block.instrs
  in
  {
    fl_stores = List.length (List.filter Instr.is_store b.Block.instrs);
    fl_store_inputs = store_inputs;
    fl_defs = defs;
  }

(** Lower bound on {!estimate} of the optimized merge of [s] into [hb]:
    additive store floors plus the one exit that always survives.  [s]'s
    store inputs only stay inputs when [hb] (whose instructions precede
    [s]'s in the merged block) cannot define them; [hb]'s own store
    inputs are read before any [s] definition, so they stay exposed
    unconditionally. *)
let merge_lower_bound ~(hb : floor) ~(s : floor) : estimate =
  {
    instrs = hb.fl_stores + s.fl_stores + 1;
    loads_stores = hb.fl_stores + s.fl_stores;
    reads =
      IntSet.cardinal
        (IntSet.union hb.fl_store_inputs
           (IntSet.diff s.fl_store_inputs hb.fl_defs));
    writes = 0;
  }

(** Does the estimate fit the limits, with [slack] instruction slots held
    back for register-allocator spill code? *)
let legal ?(slack = 0) limits e =
  e.instrs <= limits.max_instrs - slack
  && e.loads_stores <= limits.max_load_store
  && e.reads <= limits.max_reads
  && e.writes <= limits.max_writes

(** Fullness of a block as a fraction of the instruction budget, used in
    reporting. *)
let utilization limits e =
  float_of_int e.instrs /. float_of_int limits.max_instrs

let pp_estimate fmt e =
  Fmt.pf fmt "instrs=%d ls=%d reads=%d writes=%d" e.instrs e.loads_stores
    e.reads e.writes
