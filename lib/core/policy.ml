(* Block-selection policies for convergent hyperblock formation.

   [ExpandBlock] asks the policy which candidate successor to merge next
   (the paper's [SelectBest], Section 5):

   - breadth-first (the best EDGE heuristic in Table 2) merges shallowest
     candidates first, eliminating conditional branches at the cost of
     including some useless instructions;
   - depth-first follows the most frequent path, skipping candidates
     rarer than a threshold — which is what forces the pathological tail
     duplications the paper reports for bzip2_3;
   - the VLIW heuristic (Mahlke et al.) runs a pre-pass that enumerates
     paths through the acyclic region below the seed, scores them by
     frequency, dependence height and resource consumption, and only
     admits blocks on sufficiently good paths. *)

open Trips_ir
open Trips_profile

type vliw_params = {
  max_paths : int;  (* bound on enumerated paths *)
  max_path_blocks : int;  (* bound on path length *)
  inclusion_ratio : float;  (* admit paths scoring >= ratio * best *)
  dep_height_weight : float;  (* penalty exponent for schedule height *)
  resource_weight : float;  (* penalty exponent for instruction count *)
}

let default_vliw =
  {
    max_paths = 64;
    max_path_blocks = 12;
    inclusion_ratio = 0.25;
    dep_height_weight = 1.0;
    resource_weight = 0.25;
  }

type heuristic =
  | Breadth_first
  | Depth_first of { min_merge_prob : float }
  | Vliw of vliw_params

type config = {
  heuristic : heuristic;
  iterate_opt : bool;  (* run scalar optimizations inside the merge loop *)
  enable_head_dup : bool;  (* allow peeling and unrolling via head dup *)
  enable_tail_dup : bool;
  enable_block_splitting : bool;
      (* Section 9 extension: when a unique-predecessor merge fails only
         on size, split the candidate and merge its first half *)
  max_tail_dup_instrs : int;  (* refuse to duplicate larger blocks *)
  max_unroll : int;  (* iterations appended per loop *)
  max_peel : int;  (* iterations peeled per loop *)
  peel_coverage : float;  (* peel iteration k only if P(trips >= k) >= this *)
  slack : int;  (* instruction headroom reserved for spill code *)
  limits : Constraints.limits;
}

(** The paper's best-performing EDGE configuration: greedy breadth-first
    merging with head duplication and iterative optimization. *)
let edge_default =
  {
    heuristic = Breadth_first;
    iterate_opt = true;
    enable_head_dup = true;
    enable_tail_dup = true;
    enable_block_splitting = false;
    max_tail_dup_instrs = 48;
    max_unroll = 8;
    max_peel = 4;
    peel_coverage = 0.4;
    slack = 8;
    limits = Constraints.trips_limits;
  }

type candidate = {
  block_id : int;
  depth : int;  (* merge distance from the seed *)
  prob : float;  (* estimated path probability from the seed *)
}

(* ---- VLIW path pre-pass ---------------------------------------------- *)

type vliw_prepass = {
  included : IntSet.t;
  rank : float IntMap.t;  (* best path score a block appears on *)
}

let vliw_prepass params cfg profile ~seed =
  let paths = ref [] in
  let num_paths = ref 0 in
  (* Enumerate acyclic paths by probability-weighted DFS. *)
  let rec walk path prob visited id len =
    if !num_paths >= params.max_paths then ()
    else if IntSet.mem id visited || len > params.max_path_blocks then begin
      incr num_paths;
      paths := (List.rev path, prob) :: !paths
    end
    else begin
      let path = id :: path in
      let visited = IntSet.add id visited in
      let succs = Cfg.successors cfg id in
      match succs with
      | [] ->
        incr num_paths;
        paths := (List.rev path, prob) :: !paths
      | _ ->
        List.iter
          (fun s ->
            let p = Profile.edge_prob profile ~src:id ~dst:s in
            walk path (prob *. Float.max p 0.01) visited s (len + 1))
          succs
    end
  in
  walk [] 1.0 IntSet.empty seed 0;
  let measure ids =
    List.fold_left
      (fun (h, s) id ->
        match Cfg.block_opt cfg id with
        | Some b -> (h + Latency.dependence_height b, s + Block.size b)
        | None -> (h, s))
      (0, 0) ids
  in
  let scored =
    List.map
      (fun (ids, prob) ->
        let h, s = measure ids in
        (ids, prob, max 1 h, max 1 s))
      !paths
  in
  match scored with
  | [] -> { included = IntSet.singleton seed; rank = IntMap.empty }
  | _ ->
    let h_min =
      List.fold_left (fun acc (_, _, h, _) -> min acc h) max_int scored
    in
    let s_min =
      List.fold_left (fun acc (_, _, _, s) -> min acc s) max_int scored
    in
    let score (_, prob, h, s) =
      prob
      *. ((float_of_int h_min /. float_of_int h) ** params.dep_height_weight)
      *. ((float_of_int s_min /. float_of_int s) ** params.resource_weight)
    in
    let best =
      List.fold_left (fun acc p -> Float.max acc (score p)) 0.0 scored
    in
    List.fold_left
      (fun acc ((ids, _, _, _) as p) ->
        let sc = score p in
        if sc >= params.inclusion_ratio *. best then
          List.fold_left
            (fun acc id ->
              {
                included = IntSet.add id acc.included;
                rank =
                  (let old = IntMap.find_or ~default:0.0 id acc.rank in
                   IntMap.add id (Float.max old sc) acc.rank);
              })
            acc ids
        else acc)
      { included = IntSet.empty; rank = IntMap.empty }
      scored

(* ---- candidate pool --------------------------------------------------- *)

module Pool = struct
  (* The candidate pool keeps the most promising entry per block id.
     Indexed mode backs it with a [Hashtbl] keyed by block id, so insert
     and replace are O(1) instead of the historical O(n) list scan (O(n²)
     per expansion); Listed mode replicates that list pool exactly and
     backs the [TRIPS_NO_CAND_POOL] escape hatch.  Selection never
     depends on container iteration order: every selector comparator is a
     strict total order (block-id tie-break), so the fold-based maximum —
     and therefore traces — are identical in both modes and across
     [--jobs] settings. *)
  type t =
    | Indexed of (int, candidate) Hashtbl.t
    | Listed of candidate list ref

  let create ~indexed : t =
    if indexed then Indexed (Hashtbl.create 64) else Listed (ref [])

  (* Keep-best rule: strictly shallower, or same depth and strictly more
     probable, replaces; ties keep the incumbent. *)
  let better_entry (c : candidate) (old : candidate) =
    c.depth < old.depth || (c.depth = old.depth && c.prob > old.prob)

  let add t (c : candidate) =
    match t with
    | Indexed h -> (
      match Hashtbl.find_opt h c.block_id with
      | None -> Hashtbl.replace h c.block_id c
      | Some old -> if better_entry c old then Hashtbl.replace h c.block_id c)
    | Listed l -> (
      match List.find_opt (fun x -> x.block_id = c.block_id) !l with
      | None -> l := c :: !l
      | Some old ->
        if better_entry c old then
          l := c :: List.filter (fun x -> x.block_id <> c.block_id) !l)

  let add_list t cs = List.iter (add t) cs

  let remove t id =
    match t with
    | Indexed h -> Hashtbl.remove h id
    | Listed l -> l := List.filter (fun x -> x.block_id <> id) !l

  (** Drop every candidate failing [p] (selector vetoes are permanent). *)
  let retain t p =
    match t with
    | Indexed h ->
      Hashtbl.filter_map_inplace (fun _ c -> if p c then Some c else None) h
    | Listed l -> l := List.filter p !l

  let fold t f acc =
    match t with
    | Indexed h -> Hashtbl.fold (fun _ c acc -> f acc c) h acc
    | Listed l -> List.fold_left f acc !l

  (** Remaining candidates in ascending block-id order — the canonical
      deterministic drain order for budget-exhaustion trace events. *)
  let to_sorted_list t =
    fold t (fun acc c -> c :: acc) []
    |> List.sort (fun a b -> compare a.block_id b.block_id)
end

(* ---- selection -------------------------------------------------------- *)

type selector = {
  (* Pick the next candidate to merge, removing it from the pool; also
     drops vetoed candidates from the pool permanently. *)
  select : Pool.t -> candidate option;
}

(* Maximum of the pool under a *strict total order* [better]: with the
   block-id tie-break the result is independent of fold order. *)
let pick_best better pool =
  Pool.fold pool
    (fun acc c ->
      match acc with
      | None -> Some c
      | Some best -> if better c best then Some c else acc)
    None

(* Deterministic lexicographic comparisons. *)
let bf_better a b =
  a.depth < b.depth
  || (a.depth = b.depth
     && (a.prob > b.prob || (a.prob = b.prob && a.block_id < b.block_id)))

let df_better a b =
  a.depth > b.depth
  || (a.depth = b.depth
     && (a.prob > b.prob || (a.prob = b.prob && a.block_id < b.block_id)))

let take better pool =
  match pick_best better pool with
  | Some c ->
    Pool.remove pool c.block_id;
    Some c
  | None -> None

(** The next [n] candidates in exact selection order, without consuming
    them: select each (which also applies the selector's permanent
    vetoes), then re-add the batch.  Sound because [Pool.add] keeps the
    best entry per block id and selection is a fold under a strict total
    order — re-adding the removed entries restores the pool's contents
    exactly, so the subsequent real selections repeat this order.
    Formation peeks the candidates it is about to speculate on. *)
let peek (sel : selector) pool n =
  let rec take_n acc k =
    if k <= 0 then List.rev acc
    else
      match sel.select pool with
      | None -> List.rev acc
      | Some c -> take_n (c :: acc) (k - 1)
  in
  let cs = take_n [] n in
  Pool.add_list pool cs;
  cs

(** Build the selection function for one [ExpandBlock] run rooted at
    [seed].  The VLIW heuristic performs its path analysis here.
    [preds] supplies a block's predecessor list (same contents as
    {!Cfg.predecessors}); formation passes its edge-versioned cached map
    so the breadth-first duplication check stops rebuilding the full
    predecessor map per candidate. *)
let make_selector ?preds config cfg profile ~seed : selector =
  let preds =
    match preds with Some f -> f | None -> fun id -> Cfg.predecessors cfg id
  in
  match config.heuristic with
  | Breadth_first ->
    (* Breadth-first "merges all paths": among same-depth candidates it
       first takes those whose predecessors are all already inside the
       hyperblock (no duplication needed), so a merge point is merged
       *after* the arms that reach it and needs no tail duplication —
       and its entry predicate collapses to constant true. *)
    let needs_dup (c : candidate) =
      c.block_id = seed || preds c.block_id <> [ seed ]
    in
    let bf_dup_better a b =
      let da = needs_dup a and db = needs_dup b in
      if da <> db then db  (* the no-duplication candidate wins *)
      else bf_better a b
    in
    { select = (fun pool -> take bf_dup_better pool) }
  | Depth_first { min_merge_prob } ->
    {
      select =
        (fun pool ->
          Pool.retain pool (fun c -> c.prob >= min_merge_prob);
          take df_better pool);
    }
  | Vliw params ->
    let pre = vliw_prepass params cfg profile ~seed in
    let rank c = IntMap.find_or ~default:0.0 c.block_id pre.rank in
    let vliw_better a b =
      rank a > rank b
      || (rank a = rank b && bf_better a b)
    in
    {
      select =
        (fun pool ->
          Pool.retain pool (fun c -> IntSet.mem c.block_id pre.included);
          take vliw_better pool);
    }
